package apps

import (
	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// BuildMiniMD links the NAMD analogue: particle dynamics where every step
// allgathers each rank's position block and integrates spring forces
// against a window of global neighbours.
//
// Fidelity to the paper's NAMD characterization (§4.2.2, §6.2):
//
//   - traffic is dominated by user data (position blocks, ~92 %);
//   - every outgoing position block carries an application-level checksum
//     that receivers verify — NAMD's built-in message consistency checks,
//     which detect 46 % of manifested message faults at ~3 % runtime cost;
//   - the reduced total energy is NaN-checked each step (NAMD detects 47 %
//     of its manifested faults, mostly via NaN tests);
//   - particle positions carry sanity bound checks;
//   - the comparison baseline is the rank-0 console output (step/energy
//     lines), exactly as in the paper.
func BuildMiniMD(cfg Config) (*image.Image, error) {
	n := cfg.Scale // particles per rank
	// Each transmitted block is n positions + an envelope slot + a
	// checksum slot.  The envelope models the Charm++ message envelope
	// that NAMD's payloads carry ("Charm++ is considered a part of the
	// user application", §4.2.2): the receiver dereferences it, so
	// envelope corruption causes wild accesses — the crashes in Table
	// 3's message row.
	blk := n + 2
	const (
		window = 4    // neighbour window half-width
		kSpr   = 0.05 // spring constant
		dt     = 0.05 // time step
	)

	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("minimd", image.OwnerUser)

	m.DataString("s_step", "STEP ")
	m.DataString("s_energy", " ENERGY ")
	m.DataString("s_nl", "\n")
	m.DataString("s_done", "minimd: run complete\n")
	m.DataString("s_cksum", "minimd: message checksum mismatch, aborting\n")
	m.DataString("s_nan", "minimd: NaN energy detected, aborting\n")
	m.DataString("s_bound", "minimd: particle position out of bounds, aborting\n")
	m.BSS("g_rank", 4)
	m.BSS("g_size", 4)
	m.BSS("g_gbase", 4) // rank*n: global index of local particle 0
	m.BSS("g_nglob", 4) // n*size
	m.BSS("g_step", 4)
	m.BSS("g_q", 4)    // heap: n f64 positions
	m.BSS("g_v", 4)    // heap: n f64 velocities
	m.BSS("g_sblk", 4) // heap: blk f64 outgoing block
	m.BSS("g_all", 4)  // heap: blk*size f64 allgathered blocks
	m.BSS("g_esum", 8) // local energy accumulator
	m.BSS("g_etot", 8) // reduced global energy
	m.BSS("g_cks", 8)  // checksum accumulator
	m.BSS("g_iobuf", 4)
	m.BSS("g_cfgsum", 8)

	// Cold regions (see addColdCode): NAMD's executed-text working set
	// is only 15 % at startup and 8 % in the compute phase, and its
	// data+BSS+heap load set drops from 60 % to 22 %.
	addColdCode(m, "md", 130, 8)
	addColdData(m, "md", 8<<10)
	params := make([]float64, 128)
	for i := range params {
		params[i] = 0.25 + float64(i)*0.0625
	}
	m.DataF64("d_params", params...)
	// Interaction weight table, indexed by pair distance with no bounds
	// check — the analogue of NAMD's cell/patch indexing, which turns a
	// corrupted position into a wild lookup (the message-fault crashes in
	// Table 3).  Fault-free distances stay well inside the table.
	wtab := make([]float64, 64)
	for i := range wtab {
		wtab[i] = 1.0 - float64(i)*0.002
	}
	m.DataF64("d_wtab", wtab...)

	buildMiniMDInit(m, n)
	buildMiniMDPack(m, n, cfg.Checksums)
	buildMiniMDVerify(m, n, cfg.Checksums)
	buildMiniMDForces(m, n, window, kSpr, dt, cfg.Checks)

	f := m.Func("main")
	f.Prologue(64)
	f.CallArgs("MPI_Init")
	// Register an error handler, as the paper's harness does for every
	// application (§5.1): argument-check failures then surface as the
	// "MPI Detected" manifestation instead of the default fatal abort.
	f.CallArgs("MPI_Errhandler_set", asm.Imm(abi.CommWorld), asm.Sym("md_cold_0"))
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	f.StSym("g_rank", 0, isa.R0)
	f.Muli(isa.R1, isa.R0, n)
	f.StSym("g_gbase", 0, isa.R1)
	f.CallArgs("MPI_Comm_size", asm.Imm(abi.CommWorld))
	f.StSym("g_size", 0, isa.R0)
	f.Muli(isa.R1, isa.R0, n)
	f.StSym("g_nglob", 0, isa.R1)

	alloc := func(sym string, bytes int32) {
		f.CallArgs("malloc", asm.Imm(bytes))
		f.StSym(sym, 0, isa.R0)
	}
	alloc("g_q", n*8)
	alloc("g_v", n*8)
	alloc("g_sblk", blk*8)
	// The allgather target is sized by the true world size.
	f.LdSym(isa.R1, "g_size", 0)
	f.Muli(isa.R1, isa.R1, blk*8)
	f.CallArgs("malloc", asm.Reg(isa.R1))
	f.StSym("g_all", 0, isa.R0)
	emitColdHeapAlloc(f, "g_iobuf", 16<<10, 64)

	f.CallArgs("minimd_init")

	// Time-step loop.
	f.Movi(isa.R4, 0)
	f.StSym("g_step", 0, isa.R4)
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.LdSym(isa.R4, "g_step", 0)
	f.Cmpi(isa.R4, cfg.Steps)
	f.Bge(done)

	f.CallArgs("minimd_pack")
	f.LdSym(isa.R1, "g_sblk", 0)
	f.LdSym(isa.R2, "g_all", 0)
	f.CallArgs("MPI_Allgather", asm.Reg(isa.R1), asm.Imm(blk), asm.Imm(abi.DTF64),
		asm.Reg(isa.R2), asm.Imm(abi.CommWorld))
	f.CallArgs("minimd_verify")
	f.CallArgs("minimd_forces")

	// Reduce the kinetic energy and report from rank 0.
	f.CallArgs("MPI_Allreduce", asm.Sym("g_esum"), asm.Sym("g_etot"),
		asm.Imm(1), asm.Imm(abi.DTF64), asm.Imm(abi.OpSum), asm.Imm(abi.CommWorld))
	if cfg.Checks {
		f.CallArgs("fchecknan", asm.Sym("g_etot"), asm.Sym("s_nan"), asm.Imm(38))
	}
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipPrint := f.NewLabel()
	f.Bne(skipPrint)
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_step"), asm.Imm(5))
	f.LdSym(isa.R1, "g_step", 0)
	f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_energy"), asm.Imm(8))
	f.CallArgs("print_f64", asm.Imm(abi.FdStdout), asm.Sym("g_etot"), asm.Imm(cfg.OutPrecision))
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_nl"), asm.Imm(1))
	f.Label(skipPrint)

	f.LdSym(isa.R4, "g_step", 0)
	f.Addi(isa.R4, isa.R4, 1)
	f.StSym("g_step", 0, isa.R4)
	f.Jmp(loop)
	f.Label(done)

	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipDone := f.NewLabel()
	f.Bne(skipDone)
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_done"), asm.Imm(21))
	f.Label(skipDone)

	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()

	return b.Link(asm.LinkConfig{HeapSize: cfg.HeapSize, StackSize: cfg.StackSize})
}

// buildMiniMDInit seeds positions near their lattice sites with a small
// deterministic perturbation, and small velocities.
func buildMiniMDInit(m *asm.Module, n int32) {
	f := m.Func("minimd_init")
	f.Prologue(64)

	// Startup parameter-table pass: loads that exist only during
	// initialization (the Table 6 working-set drop at the phase shift).
	f.Fldz()
	f.Movi(isa.R4, 0)
	cfgLoop, cfgDone := f.NewLabel(), f.NewLabel()
	f.Label(cfgLoop)
	f.Cmpi(isa.R4, 128*8)
	f.Bge(cfgDone)
	f.MoviSym(isa.R5, "d_params", 0)
	f.Fldx(isa.R5, isa.R4, 0)
	f.Faddp()
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(cfgLoop)
	f.Label(cfgDone)
	f.FstpSym("g_cfgsum", 0)

	f.LdSym(isa.R1, "g_q", 0)
	f.LdSym(isa.R2, "g_v", 0)
	f.LdSym(isa.R3, "g_gbase", 0)
	f.Movi(isa.R4, 0) // byte offset
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.Cmpi(isa.R4, n*8)
	f.Bge(done)
	// gi = gbase + i
	f.Shri(isa.R0, isa.R4, 3)
	f.Add(isa.R0, isa.R0, isa.R3)
	// q = gi + 0.03 * ((gi*31) mod 17 - 8)
	f.Fild(isa.R0) // [gi]
	f.Muli(isa.R5, isa.R0, 31)
	f.Movi(isa.R0, 17)
	f.Rems(isa.R5, isa.R5, isa.R0)
	f.Addi(isa.R5, isa.R5, -8)
	f.Fild(isa.R5) // [p, gi]
	f.FldConst(0.03)
	f.Fmulp() // [0.03p, gi]
	f.Faddp() // [q]
	f.Fstpx(isa.R1, isa.R4, 0)
	// v = 0.02 * ((gi*13) mod 11 - 5)
	f.Shri(isa.R0, isa.R4, 3)
	f.Add(isa.R0, isa.R0, isa.R3)
	f.Muli(isa.R5, isa.R0, 13)
	f.Movi(isa.R0, 11)
	f.Rems(isa.R5, isa.R5, isa.R0)
	f.Addi(isa.R5, isa.R5, -5)
	f.Fild(isa.R5)
	f.FldConst(0.02)
	f.Fmulp()
	f.Fstpx(isa.R2, isa.R4, 0)
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(loop)
	f.Label(done)
	f.Epilogue()
}

// buildMiniMDPack copies the local positions into the outgoing block and
// appends the running-sum checksum (or zero when checksums are disabled —
// the ablation of §7's overhead discussion keeps message sizes equal).
//
// Like NAMD's built-in consistency checks, the checksum is *partial*: it
// covers only the first half of the block.  NAMD detects 46 % of its
// manifested message faults (Table 3) precisely because its checks do not
// cover all transmitted data — "NAMD's checksum only tests user data, not
// headers", and only for some message classes.
func buildMiniMDPack(m *asm.Module, n int32, checksums bool) {
	covered := (n / 4) * 8 // byte extent protected by the (partial) checksum
	f := m.Func("minimd_pack")
	f.Prologue(64)
	f.Fldz()
	f.FstpSym("g_cks", 0)
	f.LdSym(isa.R1, "g_q", 0)
	f.LdSym(isa.R2, "g_sblk", 0)
	f.Movi(isa.R4, 0)
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.Cmpi(isa.R4, n*8)
	f.Bge(done)
	f.Fldx(isa.R1, isa.R4, 0)
	if checksums {
		skipSum := f.NewLabel()
		f.Cmpi(isa.R4, covered)
		f.Bge(skipSum)
		f.Fldst(0) // [q, q]
		f.FldSym("g_cks", 0)
		f.Faddp() // [cks', q]
		f.FstpSym("g_cks", 0)
		f.Label(skipSum)
	}
	f.Fstpx(isa.R2, isa.R4, 0)
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(loop)
	f.Label(done)
	// Envelope slot: the owning rank, dereferenced by every receiver.
	f.LdSym(isa.R0, "g_rank", 0)
	f.Fild(isa.R0)
	f.Fstp(isa.R2, n*8)
	// Checksum slot.
	f.FldSym("g_cks", 0)
	f.Fstp(isa.R2, (n+1)*8)
	f.Epilogue()
}

// buildMiniMDVerify processes every received block: it always
// dereferences the Charm++-style envelope (a corrupted envelope indexes
// wild memory and crashes, as in Table 3's message row), and, when
// checksums are enabled, recomputes the partial checksum and aborts on
// mismatch — NAMD's message consistency check.  The recomputation uses
// the identical summation order, so in a fault-free run the comparison is
// bit-exact; any corruption of a covered word (including one that
// produces NaN) fails the equality test.
func buildMiniMDVerify(m *asm.Module, n int32, checksums bool) {
	blk := n + 2
	covered := (n / 4) * 8
	f := m.Func("minimd_verify")
	f.Prologue(64)
	f.LdSym(isa.R3, "g_all", 0)
	f.Movi(isa.R2, 0) // peer rank r
	outer, outerDone := f.NewLabel(), f.NewLabel()
	f.Label(outer)
	f.LdSym(isa.R0, "g_size", 0)
	f.Cmp(isa.R2, isa.R0)
	f.Bge(outerDone)
	// R5 = base byte offset of block r.
	f.Muli(isa.R5, isa.R2, blk*8)

	// Envelope dispatch: interpret slot n as the owner rank and touch
	// that owner's block, as Charm++ does when it routes a message to
	// its chare.  No bounds check — a corrupted envelope reads wild.
	f.Movi(isa.R4, n*8)
	f.Add(isa.R0, isa.R5, isa.R4)
	f.Fldx(isa.R3, isa.R0, 0) // [env]
	f.Fist(isa.R0)            // owner rank (or garbage)
	f.Muli(isa.R0, isa.R0, blk*8)
	f.Fldx(isa.R3, isa.R0, 0) // the routed block's first word
	f.FstpSym("g_cfgsum", 0)

	if checksums {
		f.Fldz() // [s]
		f.Movi(isa.R4, 0)
		inner, innerDone := f.NewLabel(), f.NewLabel()
		f.Label(inner)
		f.Cmpi(isa.R4, covered)
		f.Bge(innerDone)
		f.Add(isa.R0, isa.R5, isa.R4)
		f.Fldx(isa.R3, isa.R0, 0) // [x, s]
		f.Faddp()                 // [s']
		f.Addi(isa.R4, isa.R4, 8)
		f.Jmp(inner)
		f.Label(innerDone)
		// Compare with the transmitted checksum (slot n+1 of the block).
		f.Movi(isa.R4, (n+1)*8)
		f.Add(isa.R0, isa.R5, isa.R4)
		f.Fldx(isa.R3, isa.R0, 0) // [cks, s]
		f.Fcomp()                 // flags from cks vs s; pops both
		ok := f.NewLabel()
		f.Beq(ok)
		f.CallArgs("app_abort", asm.Sym("s_cksum"), asm.Imm(44))
		f.Label(ok)
	}
	f.Addi(isa.R2, isa.R2, 1)
	f.Jmp(outer)
	f.Label(outerDone)
	f.Epilogue()
}

// buildMiniMDForces integrates spring forces against a window of global
// neighbours read from the allgathered blocks, updates velocities and
// positions, applies the optional bound check, and accumulates kinetic
// energy.
func buildMiniMDForces(m *asm.Module, n, window int32, kSpr, dt float64, checks bool) {
	f := m.Func("minimd_forces")
	f.Prologue(64)
	f.Fldz()
	f.FstpSym("g_esum", 0)
	f.LdSym(isa.R1, "g_q", 0)
	f.LdSym(isa.R2, "g_gbase", 0)
	f.LdSym(isa.R3, "g_all", 0)
	f.Movi(isa.R4, 0) // byte offset of particle i
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.Cmpi(isa.R4, n*8)
	f.Bge(done)

	f.Fldz() // [F]
	for d := -window; d <= window; d++ {
		if d == 0 {
			continue
		}
		skip := f.NewLabel()
		// gd = gbase + i + d, bounds-checked against the global count.
		f.Shri(isa.R0, isa.R4, 3)
		f.Add(isa.R0, isa.R0, isa.R2)
		f.Addi(isa.R0, isa.R0, d)
		f.Cmpi(isa.R0, 0)
		f.Blt(skip)
		f.LdSym(isa.R5, "g_nglob", 0)
		f.Cmp(isa.R0, isa.R5)
		f.Bge(skip)
		// Block element offset: gd + 2*(gd/n) skips each owning block's
		// envelope and checksum slots.
		f.Movi(isa.R5, n)
		f.Divs(isa.R5, isa.R0, isa.R5)
		f.Add(isa.R0, isa.R0, isa.R5)
		f.Add(isa.R0, isa.R0, isa.R5)
		f.Shli(isa.R0, isa.R0, 3)
		// contribution k * wtab[|dq|*64] * (dq - d), dq = qj - qi
		f.Fldx(isa.R3, isa.R0, 0) // [qj, F]
		f.Fldx(isa.R1, isa.R4, 0) // [qi, qj, F]
		f.Fsubp()                 // [dq, F]
		// Distance-indexed weight lookup (unchecked, as in NAMD's cell
		// indexing): a corrupted position yields a wild byte offset.
		f.Fldst(0)       // [dq, dq, F]
		f.Fabs()         // [|dq|, dq, F]
		f.FldConst(64.0) // [64, |dq|, dq, F]
		f.Fmulp()        // [|dq|*64, dq, F]
		f.Fist(isa.R5)   // R5 = byte offset; [dq, F]
		f.Andi(isa.R5, isa.R5, -8)
		f.MoviSym(isa.R0, "d_wtab", 0)
		f.FldConst(float64(d))    // [d, dq, F]
		f.Fsubp()                 // [dq-d, F]
		f.Fldx(isa.R0, isa.R5, 0) // [w, x, F]
		f.Fmulp()                 // [wx, F]
		f.FldConst(kSpr)          // [k, wx, F]
		f.Fmulp()                 // [kwx, F]
		f.Faddp()                 // [F']
		f.Label(skip)
	}

	// v' = v + dt*F ; q' = q + dt*v'
	f.FldConst(dt)
	f.Fmulp() // [dtF]
	f.LdSym(isa.R5, "g_v", 0)
	f.Fldx(isa.R5, isa.R4, 0) // [v, dtF]
	f.Faddp()                 // [v']
	f.Fldst(0)                // [v', v']
	f.Fstpx(isa.R5, isa.R4, 0)
	// energy E += v'^2 (before v' is consumed by the position update)
	f.Fldst(0)
	f.Fldst(0)
	f.Fmulp() // [v'^2, v']
	f.FldSym("g_esum", 0)
	f.Faddp() // [E', v']
	f.FstpSym("g_esum", 0)
	f.FldConst(dt)
	f.Fmulp()                 // [dt*v']
	f.Fldx(isa.R1, isa.R4, 0) // [q, dtv]
	f.Faddp()                 // [q']
	if checks {
		// Bound check: |q'| must stay under 1e3.
		f.Fldst(0)
		f.Fabs()        // [|q|, q']
		f.FldConst(1e3) // [1e3, |q|, q']
		f.Fcomp()       // flags from 1e3 vs |q|; pops both -> [q']
		okb := f.NewLabel()
		f.Bge(okb) // 1e3 >= |q| is fine
		f.CallArgs("app_abort", asm.Sym("s_bound"), asm.Imm(50))
		f.Label(okb)
	}
	f.Fstpx(isa.R1, isa.R4, 0)

	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(loop)
	f.Label(done)
	f.Epilogue()
}
