package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/image"
	"mpifault/internal/report"
	"mpifault/internal/telemetry"
)

func buildWavetoy(t testing.TB) (*image.Image, int) {
	t.Helper()
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		t.Fatal(err)
	}
	return im, a.Default.Ranks
}

// singleProcessCSV runs the reference campaign in-process — the bytes
// every cluster configuration must reproduce exactly.
func singleProcessCSV(t *testing.T, im *image.Image, ranks, injections int, seed uint64, regions []core.Region) []byte {
	t.Helper()
	res, err := core.Run(core.Config{
		Image: im, Ranks: ranks, Injections: injections, Seed: seed, Regions: regions,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report.WriteCampaignCSV(&buf, "wavetoy", res)
	return buf.Bytes()
}

func waitDone(t *testing.T, co *Coordinator, timeout time.Duration) {
	t.Helper()
	select {
	case <-co.Done():
	case <-time.After(timeout):
		t.Fatalf("campaign did not finish within %v: %+v", timeout, co.Status())
	}
}

// TestCoordinatorSmoke is the tier-1 cluster gate: a coordinator behind
// a real HTTP server, the campaign submitted over the wire, two
// in-process workers pulling leases, and the final CSV compared byte for
// byte against the single-process run.
func TestCoordinatorSmoke(t *testing.T) {
	im, ranks := buildWavetoy(t)
	regions := []core.Region{core.RegionRegularReg, core.RegionMessage}
	const injections = 3
	const seed = 5
	want := singleProcessCSV(t, im, ranks, injections, seed, regions)

	co := New(Config{Metrics: telemetry.New()})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	spec, err := json.Marshal(Spec{
		App: "wavetoy", Injections: injections, Seed: seed,
		Regions: []string{"reg", "message"}, LeaseSize: 2, LeaseTTLMillis: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/campaign", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}

	var wg sync.WaitGroup
	defer wg.Wait()
	stop := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(stop) })
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := RunWorker(WorkerOptions{
				URL: srv.URL, Name: name, Poll: 25 * time.Millisecond, Stop: stop,
			}); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}

	waitDone(t, co, 3*time.Minute)
	csv, unclassified, err := co.ResultCSV()
	if err != nil {
		t.Fatal(err)
	}
	if unclassified != 0 {
		t.Fatalf("%d unclassified experiments", unclassified)
	}
	if !bytes.Equal(csv, want) {
		t.Fatalf("cluster CSV differs from single-process run:\n--- cluster\n%s--- single\n%s", csv, want)
	}
	st := co.Status()
	if st.State != "complete" || len(st.Workers) != 2 {
		t.Fatalf("final status %+v", st)
	}
}

// TestCoordinatorWorkerDeathByteIdentity is the acceptance gate: three
// workers, one dies mid-campaign after uploading half a lease, the
// survivors steal the lease and re-run it, and the final CSV is still
// byte-identical to the single-process run — with the spool directory
// independently reconstructing the same bytes via faultmerge's path.
func TestCoordinatorWorkerDeathByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("worker-death integration test is not short")
	}
	im, ranks := buildWavetoy(t)
	regions := []core.Region{core.RegionRegularReg, core.RegionMessage}
	const injections = 4
	const seed = 11
	want := singleProcessCSV(t, im, ranks, injections, seed, regions)

	spool := t.TempDir()
	co := New(Config{Metrics: telemetry.New(), Dir: spool})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	if err := co.Submit(Spec{
		App: "wavetoy", Injections: injections, Seed: seed,
		Regions: []string{"reg", "message"}, LeaseSize: 2, LeaseTTLMillis: 1_000,
	}); err != nil {
		t.Fatal(err)
	}

	// The doomed worker grabs the first lease over the wire, uploads a
	// genuine half-segment, and vanishes without ever heartbeating: the
	// lease must expire, its partial results must survive, and the
	// re-run must agree with them.
	g3, ok, err := co.Acquire("doomed")
	if err != nil || !ok {
		t.Fatalf("doomed acquire: ok=%v err=%v", ok, err)
	}
	plan := core.Plan{Regions: regions, Injections: injections}
	partialRes, err := core.Run(core.Config{
		Image: im, Ranks: ranks, Injections: injections, Seed: seed, Regions: regions,
		Entries: plan.Range(g3.Start, g3.Start+1), KeepExperiments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var seg bytes.Buffer
	enc := json.NewEncoder(&seg)
	if err := enc.Encode(report.CampaignHeader("wavetoy", core.Config{
		Ranks: ranks, Injections: injections, Regions: regions, Seed: seed,
	})); err != nil {
		t.Fatal(err)
	}
	if len(partialRes.Experiments) != 1 {
		t.Fatalf("partial run produced %d experiments, want 1", len(partialRes.Experiments))
	}
	if err := enc.Encode(report.EntryFromExperiment(partialRes.Experiments[0])); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/api/segment?lease=%d&gen=%d&worker=doomed&offset=0", srv.URL, g3.Lease, g3.Gen)
	resp, err := http.Post(url, "application/jsonl", &seg)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("doomed upload: %s", resp.Status)
	}
	// SIGKILL equivalent: no renew, no complete, no further traffic.

	var wg sync.WaitGroup
	defer wg.Wait()
	stop := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(stop) })
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := RunWorker(WorkerOptions{
				URL: srv.URL, Name: name, Poll: 25 * time.Millisecond, Stop: stop,
			}); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}

	waitDone(t, co, 5*time.Minute)
	csv, unclassified, err := co.ResultCSV()
	if err != nil {
		t.Fatal(err)
	}
	if unclassified != 0 {
		t.Fatalf("%d unclassified experiments", unclassified)
	}
	if !bytes.Equal(csv, want) {
		t.Fatalf("cluster CSV differs from single-process run after worker death:\n--- cluster\n%s--- single\n%s", csv, want)
	}
	st := co.Status()
	if st.LeasesStolen < 1 {
		t.Fatalf("expected at least one stolen lease, status %+v", st)
	}
	if st.Duplicates < 1 {
		t.Fatalf("expected the re-run to resolve duplicates, status %+v", st)
	}

	// The spool directory is an independent reconstruction path: the
	// same bytes must come back out of faultmerge's directory merge.
	m, err := report.MergeDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	report.WriteCampaignCSV(&merged, m.App, m.Result)
	if !bytes.Equal(merged.Bytes(), want) {
		t.Fatalf("faultmerge -coord reconstruction differs from single-process run:\n--- merged\n%s--- single\n%s", merged.Bytes(), want)
	}
}
