// Command faultcampaign regenerates Tables 2-4 of the paper: the full
// fault-injection campaign over all eight regions (registers, memory
// sections, messages) for one or all of the three test applications.
//
// Usage:
//
//	faultcampaign [-app wavetoy|minimd|minicam|all] [-n 500] [-seed 1]
//	              [-regions reg,fp,...] [-csv] [-quiet]
//	              [-liveness live|dead] [-predict]
//	              [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// -liveness directs register-region injections by the static analysis
// in internal/analysis: "live" samples only statically-live bits (same
// error coverage, fewer wasted runs — the reported speedup), "dead"
// samples only provably-dead bits (a soundness audit: everything must
// come back Correct).  -predict prints the static AVF forecast next to
// the campaign's measured manifestation rates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/report"
	"mpifault/internal/sampling"
)

func main() {
	app := flag.String("app", "all", "application to inject into (wavetoy, minimd, minicam, all)")
	n := flag.Int("n", 500, "injections per region (paper: 400-1000, 2000 for some message rows)")
	seed := flag.Uint64("seed", 1, "campaign seed (same seed => identical campaign)")
	regions := flag.String("regions", "", "comma-separated region subset (reg,fp,bss,data,stack,text,heap,message)")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of the table layout")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	par := flag.Int("parallel", 0, "concurrent experiment jobs (0 = auto)")
	liveness := flag.String("liveness", "", "direct register injections by static liveness (live or dead)")
	predict := flag.Bool("predict", false, "print the static AVF prediction next to the measured rates")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("faultcampaign: ")

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	var regionList []core.Region
	if *regions != "" {
		for _, s := range strings.Split(*regions, ",") {
			r, err := core.ParseRegion(strings.TrimSpace(s))
			if err != nil {
				log.Fatal(err)
			}
			regionList = append(regionList, r)
		}
	}

	var policy core.LivenessPolicy
	switch *liveness {
	case "":
	case "live":
		policy = core.LiveTargetLive
	case "dead":
		policy = core.LiveTargetDead
	default:
		log.Fatalf("unknown -liveness policy %q (want live or dead)", *liveness)
	}

	names := []string{"wavetoy", "minimd", "minicam"}
	if *app != "all" {
		names = []string{*app}
	}

	if !*quiet {
		if d, err := sampling.EstimationError(0.95, *n); err == nil {
			fmt.Printf("sampling: n=%d per region -> estimation error %.1f%% at 95%% confidence\n",
				*n, 100*d)
		}
	}

	for _, name := range names {
		a, err := apps.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		im, err := a.Build(a.Default)
		if err != nil {
			log.Fatalf("build %s: %v", name, err)
		}
		start := time.Now()
		cfg := core.Config{
			Image:       im,
			Ranks:       a.Default.Ranks,
			Injections:  *n,
			Regions:     regionList,
			Seed:        *seed,
			Parallelism: *par,
		}
		var prog *analysis.Program
		var live *analysis.Liveness
		var abiStats map[string]analysis.ABIStats
		if *liveness != "" || *predict {
			if prog, err = analysis.Analyze(im); err != nil {
				log.Fatalf("analyze %s: %v", name, err)
			}
			live = analysis.ComputeLiveness(prog)
			var abiFindings []analysis.Finding
			abiFindings, abiStats = analysis.ABICheck(prog)
			if total := len(prog.Findings) + len(live.Findings) + len(abiFindings); total > 0 {
				log.Fatalf("%s: static analysis reported %d findings; run faultlint", name, total)
			}
		}
		if *liveness != "" {
			cfg.Liveness = live
			cfg.LivenessPolicy = policy
		}
		if !*quiet {
			cfg.Progress = func(done, total int) {
				if done%50 == 0 || done == total {
					fmt.Fprintf(os.Stderr, "\r%s: %d/%d experiments", name, done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatalf("campaign %s: %v", name, err)
		}
		if *csv {
			report.WriteCampaignCSV(os.Stdout, name, res)
		} else {
			report.WriteCampaign(os.Stdout, fmt.Sprintf("%s, stands in for %s", name, a.Paper), res)
			fmt.Printf("(campaign wall time %.1fs)\n\n", time.Since(start).Seconds())
		}
		if d := res.Directed; d != nil && d.Experiments > 0 {
			fmt.Printf("%s: %s-directed register sampling: %.1f%% of the %d-bit space eligible -> %.1fx fewer injections for equal coverage\n\n",
				name, d.Policy, 100*d.Fraction(), core.RegisterSpaceBits, d.Speedup())
		}
		if *predict {
			rep := analysis.EstimateAVF(prog, live, abiStats, nil)
			rep.App = name
			measured := make(map[string]float64)
			for _, t := range res.Tallies {
				measured[t.Region.String()] = t.ErrorRate() / 100
			}
			fmt.Printf("%s: static AVF prediction vs measured manifestation rate:\n", name)
			rep.WriteAVF(os.Stdout, measured)
			fmt.Println()
		}
	}
}
