package core

import (
	"mpifault/internal/classify"
	"mpifault/internal/telemetry"
)

// campaignMeters pre-resolves every metric a campaign records, once,
// before the worker loop.  The handles come from the nil-safe registry:
// with telemetry disabled they are live-but-unregistered metrics, so
// the workers run the identical code either way — a few uncontended
// atomic adds per experiment, nothing per instruction.
type campaignMeters struct {
	planned, resumed, started, finished *telemetry.Counter
	unapplied, corrupted                *telemetry.Counter
	ckptTaken, ckptHits, ckptMisses     *telemetry.Counter
	ckptFallbacks                       *telemetry.Counter
	instrsSkipped                       *telemetry.Gauge
	inflight                            *telemetry.Gauge
	outcomes                            [classify.NumOutcomes]*telemetry.Counter
	crashLatency, hangLatency           *telemetry.Histogram
	traceDiffed, traceLoc, traceUnloc   *telemetry.Counter
	traceMsgIndex, traceLatency         *telemetry.Histogram
	// traceDiff mirrors Config.TraceDiff so observe can count
	// unlocalized diffable outcomes only when diffing actually ran.
	traceDiff bool
}

func newCampaignMeters(reg *telemetry.Registry) *campaignMeters {
	m := &campaignMeters{
		planned:       reg.Counter(telemetry.MetricExperimentsPlanned),
		resumed:       reg.Counter(telemetry.MetricExperimentsResumed),
		started:       reg.Counter(telemetry.MetricExperimentsStarted),
		finished:      reg.Counter(telemetry.MetricExperimentsFinished),
		unapplied:     reg.Counter(telemetry.MetricUnapplied),
		corrupted:     reg.Counter(telemetry.MetricMessagesCorrupted),
		ckptTaken:     reg.Counter(telemetry.MetricCheckpointsTaken),
		ckptHits:      reg.Counter(telemetry.MetricCheckpointHits),
		ckptMisses:    reg.Counter(telemetry.MetricCheckpointMisses),
		ckptFallbacks: reg.Counter(telemetry.MetricCheckpointFallbacks),
		instrsSkipped: reg.Gauge(telemetry.MetricInstrsSkipped),
		inflight:      reg.Gauge(telemetry.MetricExperimentsInflight),
		crashLatency:  reg.Histogram(telemetry.MetricCrashLatency, telemetry.LatencyBuckets),
		hangLatency:   reg.Histogram(telemetry.MetricHangLatency, telemetry.LatencyBuckets),
		traceDiffed:   reg.Counter(telemetry.MetricTraceDiffed),
		traceLoc:      reg.Counter(telemetry.MetricTraceLocalized),
		traceUnloc:    reg.Counter(telemetry.MetricTraceUnlocalized),
		traceMsgIndex: reg.Histogram(telemetry.MetricTraceDivergenceMsg, telemetry.TraceMessageBuckets),
		traceLatency:  reg.Histogram(telemetry.MetricTraceLatency, telemetry.LatencyBuckets),
	}
	for o := classify.Outcome(0); o < classify.NumOutcomes; o++ {
		m.outcomes[o] = reg.Counter(telemetry.OutcomeMetric(o.String()))
	}
	return m
}

// observe records one finished experiment.
func (m *campaignMeters) observe(e *Experiment) {
	m.finished.Inc()
	m.outcomes[e.Outcome].Inc()
	if e.Unapplied() {
		m.unapplied.Inc()
	} else if e.Region == RegionMessage {
		m.corrupted.Inc()
	}
	if lat, ok := e.Forensics.Latency(); ok {
		switch e.Outcome {
		case classify.Crash:
			m.crashLatency.Observe(lat)
		case classify.Hang:
			m.hangLatency.Observe(lat)
		}
	}
	if m.traceDiff {
		switch e.Outcome {
		case classify.Incorrect, classify.Hang, classify.Crash:
			m.traceDiffed.Inc()
			if d := e.Divergence(); d != nil {
				m.traceLoc.Inc()
				m.traceMsgIndex.Observe(uint64(d.MsgIndex))
				if d.InstrsSinceInjection > 0 {
					m.traceLatency.Observe(d.InstrsSinceInjection)
				}
			} else {
				m.traceUnloc.Inc()
			}
		}
	}
}
