package mpi

import (
	"encoding/binary"
	"math"

	"mpifault/internal/abi"
	"mpifault/internal/vm"
)

// internalCtx maps a communicator's wire context to the hidden context
// its collective traffic travels in (the analogue of MPICH context ids).
func internalCtx(ctx int32) int32 { return ctx + 0x10000 }

// barrier runs the dissemination barrier over the communicator:
// ceil(log2(size)) rounds of header-only control tokens.  This is the
// dominant source of control traffic for barrier-heavy codes like CAM
// (Table 1: 63 % headers).
func (p *Proc) barrier(ci *commInfo, m *vm.Machine) *vm.Trap {
	size := int(ci.size())
	me := int(ci.myRank)
	ctx := internalCtx(ci.ctx)
	p.barrierEpoch++
	epoch := p.barrierEpoch
	for k, round := 1, int32(0); k < size; k, round = k<<1, round+1 {
		to := ci.world(int32((me + k) % size))
		from := ci.world(int32((me - k + size*2) % size))
		tok := &Packet{Kind: KindBarrier, Src: int32(p.rank), Dst: to,
			Tag: sysTag(collBarrier, round), Comm: ctx, Seq: epoch}
		if t := p.sendPacket(tok, m); t != nil {
			return t
		}
		match := func(q *Packet) bool {
			return q.Kind == KindBarrier && q.Src == from &&
				q.Tag == sysTag(collBarrier, round) &&
				q.Comm == ctx && q.Seq == epoch
		}
		if i := p.findStored(match); i >= 0 {
			if _, _, t := p.takeStored(i, m); t != nil {
				return t
			}
			continue
		}
		if _, t := p.waitMatch(match, m); t != nil {
			return t
		}
	}
	return nil
}

// bcastHost distributes payload (authoritative only at the root, comm
// rank 0) down a binomial tree and returns the payload every rank ends
// up with.  Root selection is folded in by rotating the group; see bcast.
func (p *Proc) bcastHost(payload []byte, n uint32, ci *commInfo, m *vm.Machine) ([]byte, *vm.Trap) {
	return p.bcast(payload, n, 0, ci, m)
}

// bcast distributes payload (authoritative only at comm rank root) down
// a binomial tree.
func (p *Proc) bcast(payload []byte, n uint32, root int32, ci *commInfo, m *vm.Machine) ([]byte, *vm.Trap) {
	size := int(ci.size())
	if size == 1 {
		return payload, nil
	}
	ctx := internalCtx(ci.ctx)
	vrank := (int(ci.myRank) - int(root) + size) % size
	tag := sysTag(collBcast, 0)

	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			src := ci.world(int32((vrank - mask + int(root)) % size))
			res, t := p.recvBytes(src, tag, ctx, m)
			if t != nil {
				return nil, t
			}
			if uint32(len(res.payload)) > n {
				return nil, &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
					Msg: "bcast: message longer than buffer"}
			}
			payload = res.payload
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < size {
			dst := ci.world(int32((vrank + mask + int(root)) % size))
			if t := p.sendBytes(dst, tag, ctx, abi.DTByte, payload, m); t != nil {
				return nil, t
			}
		}
		mask >>= 1
	}
	return payload, nil
}

// reduce combines each rank's payload with op up a binomial tree; the
// fully reduced payload is returned at comm rank root (nil elsewhere).
func (p *Proc) reduce(payload []byte, dtype, op, root int32, ci *commInfo, m *vm.Machine) ([]byte, *vm.Trap) {
	size := int(ci.size())
	acc := append([]byte(nil), payload...)
	if size == 1 {
		return acc, nil
	}
	ctx := internalCtx(ci.ctx)
	vrank := (int(ci.myRank) - int(root) + size) % size
	tag := sysTag(collReduce, 0)

	for mask := 1; mask < size; mask <<= 1 {
		if vrank&mask == 0 {
			peer := vrank | mask
			if peer < size {
				src := ci.world(int32((peer + int(root)) % size))
				res, t := p.recvBytes(src, tag, ctx, m)
				if t != nil {
					return nil, t
				}
				var err *vm.Trap
				acc, err = combine(acc, res.payload, dtype, op, m)
				if err != nil {
					return nil, err
				}
			}
		} else {
			parent := ci.world(int32((vrank&^mask + int(root)) % size))
			if t := p.sendBytes(parent, tag, ctx, dtype, acc, m); t != nil {
				return nil, t
			}
			return nil, nil
		}
	}
	return acc, nil
}

// combine applies the reduction op elementwise: out[i] = op(a[i], b[i]).
// A length mismatch means a peer contributed the wrong count — MPICH
// treats that as an internal error.
func combine(a, b []byte, dtype, op int32, m *vm.Machine) ([]byte, *vm.Trap) {
	if len(a) != len(b) {
		return nil, &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
			Msg: "reduce: contribution length mismatch"}
	}
	le := binary.LittleEndian
	switch dtype {
	case abi.DTInt32:
		for i := 0; i+4 <= len(a); i += 4 {
			x, y := int32(le.Uint32(a[i:])), int32(le.Uint32(b[i:]))
			le.PutUint32(a[i:], uint32(reduceI32(x, y, op)))
		}
	case abi.DTF64:
		for i := 0; i+8 <= len(a); i += 8 {
			x := math.Float64frombits(le.Uint64(a[i:]))
			y := math.Float64frombits(le.Uint64(b[i:]))
			le.PutUint64(a[i:], math.Float64bits(reduceF64(x, y, op)))
		}
	default: // DTByte reduces as unsigned bytes
		for i := range a {
			a[i] = byte(reduceI32(int32(a[i]), int32(b[i]), op))
		}
	}
	return a, nil
}

func reduceI32(x, y, op int32) int32 {
	switch op {
	case abi.OpProd:
		return x * y
	case abi.OpMin:
		if y < x {
			return y
		}
		return x
	case abi.OpMax:
		if y > x {
			return y
		}
		return x
	default:
		return x + y
	}
}

func reduceF64(x, y float64, op int32) float64 {
	switch op {
	case abi.OpProd:
		return x * y
	case abi.OpMin:
		return math.Min(x, y)
	case abi.OpMax:
		return math.Max(x, y)
	default:
		return x + y
	}
}

// gatherHost collects each rank's payload at comm rank 0 in rank order.
func (p *Proc) gatherHost(payload []byte, ci *commInfo, m *vm.Machine) ([]byte, *vm.Trap) {
	return p.gather(payload, 0, ci, abi.DTByte, m)
}

// gather collects each rank's payload at comm rank root, concatenated in
// comm-rank order; non-root ranks return nil.
func (p *Proc) gather(payload []byte, root int32, ci *commInfo, dtype int32, m *vm.Machine) ([]byte, *vm.Trap) {
	size := int(ci.size())
	if size == 1 {
		return append([]byte(nil), payload...), nil
	}
	ctx := internalCtx(ci.ctx)
	tag := sysTag(collGather, 0)
	if ci.myRank != root {
		return nil, p.sendBytes(ci.world(root), tag, ctx, dtype, payload, m)
	}
	out := make([]byte, 0, len(payload)*size)
	for r := int32(0); r < int32(size); r++ {
		if r == root {
			out = append(out, payload...)
			continue
		}
		res, t := p.recvBytes(ci.world(r), tag, ctx, m)
		if t != nil {
			return nil, t
		}
		if len(res.payload) != len(payload) {
			return nil, &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
				Msg: "gather: contribution length mismatch"}
		}
		out = append(out, res.payload...)
	}
	return out, nil
}

// scatter hands slice r of root's payload to comm rank r and returns
// this rank's slice.
func (p *Proc) scatter(payload []byte, chunk uint32, root int32, ci *commInfo, dtype int32, m *vm.Machine) ([]byte, *vm.Trap) {
	size := int(ci.size())
	ctx := internalCtx(ci.ctx)
	tag := sysTag(collScatter, 0)
	if ci.myRank == root {
		var mine []byte
		for r := int32(0); r < int32(size); r++ {
			lo := uint32(r) * chunk
			if lo+chunk > uint32(len(payload)) {
				return nil, &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
					Msg: "scatter: send buffer too small"}
			}
			piece := payload[lo : lo+chunk]
			if r == root {
				mine = append([]byte(nil), piece...)
				continue
			}
			if t := p.sendBytes(ci.world(r), tag, ctx, dtype, piece, m); t != nil {
				return nil, t
			}
		}
		return mine, nil
	}
	res, t := p.recvBytes(ci.world(root), tag, ctx, m)
	if t != nil {
		return nil, t
	}
	return res.payload, nil
}

// alltoall exchanges slice j of every rank's payload with comm rank j.
// Peers are visited in increasing round distance; within a round the
// lower-ranked side sends first, which keeps the rendezvous protocol
// deadlock-free.
func (p *Proc) alltoall(payload []byte, chunk uint32, ci *commInfo, dtype int32, m *vm.Machine) ([]byte, *vm.Trap) {
	size := int(ci.size())
	me := int(ci.myRank)
	ctx := internalCtx(ci.ctx)
	tag := sysTag(collAlltoall, 0)
	if uint32(len(payload)) < chunk*uint32(size) {
		return nil, &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
			Msg: "alltoall: send buffer too small"}
	}
	out := make([]byte, chunk*uint32(size))
	copy(out[uint32(me)*chunk:], payload[uint32(me)*chunk:uint32(me+1)*chunk])
	for d := 1; d < size; d++ {
		to := (me + d) % size
		from := (me - d + size) % size
		sendPiece := payload[uint32(to)*chunk : uint32(to+1)*chunk]
		doSend := func() *vm.Trap {
			return p.sendBytes(ci.world(int32(to)), tag, ctx, dtype, sendPiece, m)
		}
		doRecv := func() *vm.Trap {
			res, t := p.recvBytes(ci.world(int32(from)), tag, ctx, m)
			if t != nil {
				return t
			}
			if uint32(len(res.payload)) != chunk {
				return &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
					Msg: "alltoall: chunk length mismatch"}
			}
			copy(out[uint32(from)*chunk:], res.payload)
			return nil
		}
		if me < to {
			if t := doSend(); t != nil {
				return nil, t
			}
			if t := doRecv(); t != nil {
				return nil, t
			}
		} else {
			if t := doRecv(); t != nil {
				return nil, t
			}
			if t := doSend(); t != nil {
				return nil, t
			}
		}
	}
	return out, nil
}
