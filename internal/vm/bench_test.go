package vm

import (
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// benchImage links the mixed integer/FP loop used by the interpreter
// micro-benchmarks: eight instructions per iteration touching the ALU,
// the FP stack and BSS memory, with an effectively endless trip count so
// the instruction budget decides when to stop.
func benchImage(b *testing.B) *image.Image {
	b.Helper()
	ab := asm.NewBuilder()
	m := ab.Module("bench", image.OwnerUser)
	m.BSS("scratch", 16)
	f := m.Func("main")
	f.Movi(isa.R1, 0)
	f.Movi(isa.R2, 1<<30)
	loop := f.NewLabel()
	f.Label(loop)
	f.Addi(isa.R1, isa.R1, 1)
	f.Xori(isa.R3, isa.R1, 0x55)
	f.FldConst(1.5)
	f.FldConst(2.5)
	f.Fmulp()
	f.FstpSym("scratch", 0)
	f.Cmp(isa.R1, isa.R2)
	f.Blt(loop)
	f.Movi(isa.R0, 0)
	f.Sys(abi.SysExit)
	im, err := ab.Link(asm.LinkConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return im
}

// BenchmarkStep measures per-retired-instruction cost of the
// per-instruction interpreter (superblocks disabled): one benchmark op is
// one instruction.  This is the floor the -no-superblock escape hatch and
// the bail/dirty-slot fallback paths run at.
func BenchmarkStep(b *testing.B) {
	im := benchImage(b)
	m := New(im)
	m.DisableSuperblocks()
	m.Handler = &testHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	out := m.Run(uint64(b.N))
	if out.Reason != StopBudget {
		b.Fatalf("unexpected stop: %+v", out)
	}
}

// BenchmarkSuperblockRun is BenchmarkStep through the compiled superblock
// tier (the default execution mode): one benchmark op is one retired
// instruction.  A campaign's wall-clock is almost entirely
// N_experiments x golden_instrs x this number.
func BenchmarkSuperblockRun(b *testing.B) {
	im := benchImage(b)
	m := New(im)
	m.Handler = &testHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	out := m.Run(uint64(b.N))
	if out.Reason != StopBudget {
		b.Fatalf("unexpected stop: %+v", out)
	}
}

// BenchmarkMachineNew measures per-experiment setup cost: every rank of
// every injection run starts with a vm.New of the same image.
func BenchmarkMachineNew(b *testing.B) {
	im := benchImage(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink *Machine
	for i := 0; i < b.N; i++ {
		sink = New(im)
	}
	_ = sink
}
