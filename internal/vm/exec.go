package vm

import (
	"math"

	"mpifault/internal/isa"
)

// Step fetches, decodes and executes one instruction.  It returns nil to
// continue or a Trap describing why execution stopped.
func (m *Machine) Step() *Trap {
	// Fetch.  The hot path is a slot-aligned PC inside text whose
	// predecode slot is clean: the instruction comes straight out of the
	// image's shared predecoded table.  Everything else — text overwritten
	// by the injector, a bit-flipped PC that lost its alignment, or a wild
	// PC outside text — re-decodes the actual bytes, so corrupted
	// encodings fault exactly as they would without the cache.  There is
	// no execute permission, as on classic x86: a wild PC landing in data
	// decodes whatever bytes are there and almost always raises SIGILL on
	// the spot.
	var in isa.Instr
	if off := m.PC - m.text.base; off < m.text.length {
		slot := off / isa.InstrBytes
		if m.pre != nil && off%isa.InstrBytes == 0 &&
			slot < uint32(len(m.pre)) && !m.textSlotDirty(slot) {
			in = m.pre[slot]
		} else {
			if off+isa.InstrBytes > m.text.length {
				return &Trap{Kind: TrapSegv, PC: m.PC, Addr: m.PC, Msg: "instruction fetch"}
			}
			in = isa.Decode(m.text.bytes[off:])
		}
	} else {
		s := m.segFor(m.PC)
		if s == nil || m.PC-s.base+isa.InstrBytes > s.length {
			return &Trap{Kind: TrapSegv, PC: m.PC, Addr: m.PC, Msg: "instruction fetch"}
		}
		in = isa.Decode(s.view(m.PC-s.base, isa.InstrBytes))
	}
	if m.Tracer != nil {
		m.Tracer.Exec(m.PC)
	}
	m.Instrs++
	next := m.PC + isa.InstrBytes

	switch in.Op {
	case isa.OpNop:

	case isa.OpMovi:
		rd, ok := gpr(in.Rd)
		if !ok {
			return m.ill("movi rd")
		}
		m.Regs[rd] = uint32(in.Imm)

	case isa.OpMovr:
		rd, ok1 := gpr(in.Rd)
		ra, ok2 := gpr(in.Ra)
		if !ok1 || !ok2 {
			return m.ill("movr regs")
		}
		m.Regs[rd] = m.Regs[ra]

	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDivs, isa.OpRems,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar:
		rd, ok1 := gpr(in.Rd)
		ra, ok2 := gpr(in.Ra)
		rb, ok3 := gpr(in.Rb)
		if !ok1 || !ok2 || !ok3 {
			return m.ill("alu regs")
		}
		v, t := m.alu(in.Op, m.Regs[ra], m.Regs[rb])
		if t != nil {
			return t
		}
		m.Regs[rd] = v

	case isa.OpNeg:
		rd, ok1 := gpr(in.Rd)
		ra, ok2 := gpr(in.Ra)
		if !ok1 || !ok2 {
			return m.ill("neg regs")
		}
		m.Regs[rd] = uint32(-int32(m.Regs[ra]))

	case isa.OpAddi, isa.OpMuli, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri, isa.OpSari:
		rd, ok1 := gpr(in.Rd)
		ra, ok2 := gpr(in.Ra)
		if !ok1 || !ok2 {
			return m.ill("alui regs")
		}
		v, t := m.alu(in.Op.AluiBase(), m.Regs[ra], uint32(in.Imm))
		if t != nil {
			return t
		}
		m.Regs[rd] = v

	case isa.OpCmp:
		ra, ok1 := gpr(in.Ra)
		rb, ok2 := gpr(in.Rb)
		if !ok1 || !ok2 {
			return m.ill("cmp regs")
		}
		m.setIntFlags(m.Regs[ra], m.Regs[rb])

	case isa.OpCmpi:
		ra, ok := gpr(in.Ra)
		if !ok {
			return m.ill("cmpi reg")
		}
		m.setIntFlags(m.Regs[ra], uint32(in.Imm))

	case isa.OpJmp:
		next = uint32(in.Imm)

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBle, isa.OpBgt,
		isa.OpBltu, isa.OpBgeu, isa.OpBun:
		if m.branchTaken(in.Op) {
			next = uint32(in.Imm)
		}

	case isa.OpCall:
		if t := m.push(next); t != nil {
			return t
		}
		next = uint32(in.Imm)

	case isa.OpCallr:
		ra, ok := gpr(in.Ra)
		if !ok {
			return m.ill("callr reg")
		}
		if t := m.push(next); t != nil {
			return t
		}
		next = m.Regs[ra]

	case isa.OpRet:
		v, t := m.pop()
		if t != nil {
			return t
		}
		next = v

	case isa.OpPush:
		ra, ok := gpr(in.Ra)
		if !ok {
			return m.ill("push reg")
		}
		if t := m.push(m.Regs[ra]); t != nil {
			return t
		}

	case isa.OpPop:
		rd, ok := gpr(in.Rd)
		if !ok {
			return m.ill("pop reg")
		}
		v, t := m.pop()
		if t != nil {
			return t
		}
		m.Regs[rd] = v

	case isa.OpLd:
		rd, ok := gpr(in.Rd)
		addr, ok2 := m.ea(in.Ra, in.Rb, in.Imm)
		if !ok || !ok2 {
			return m.ill("ld regs")
		}
		v, t := m.Load32(addr)
		if t != nil {
			return t
		}
		m.Regs[rd] = v

	case isa.OpSt:
		rc, ok := gpr(in.Rc())
		addr, ok2 := m.ea(in.Ra, in.Rb, in.Imm)
		if !ok || !ok2 {
			return m.ill("st regs")
		}
		if t := m.Store32(addr, m.Regs[rc]); t != nil {
			return t
		}

	case isa.OpLdb:
		rd, ok := gpr(in.Rd)
		addr, ok2 := m.ea(in.Ra, in.Rb, in.Imm)
		if !ok || !ok2 {
			return m.ill("ldb regs")
		}
		v, t := m.Load8(addr)
		if t != nil {
			return t
		}
		m.Regs[rd] = uint32(v)

	case isa.OpStb:
		rc, ok := gpr(in.Rc())
		addr, ok2 := m.ea(in.Ra, in.Rb, in.Imm)
		if !ok || !ok2 {
			return m.ill("stb regs")
		}
		if t := m.Store8(addr, byte(m.Regs[rc])); t != nil {
			return t
		}

	case isa.OpFld:
		addr, ok := m.ea(in.Ra, in.Rb, in.Imm)
		if !ok {
			return m.ill("fld regs")
		}
		v, t := m.LoadF64(addr)
		if t != nil {
			return t
		}
		m.fpush(v)
		m.FP.FOO = addr

	case isa.OpFldz:
		m.fpush(0)

	case isa.OpFld1:
		m.fpush(1)

	case isa.OpFldst:
		m.fpush(m.fget(int(in.Imm)))

	case isa.OpFst, isa.OpFstp:
		addr, ok := m.ea(in.Ra, in.Rb, in.Imm)
		if !ok {
			return m.ill("fst regs")
		}
		if t := m.StoreF64(addr, m.fget(0)); t != nil {
			return t
		}
		m.FP.FOO = addr
		if in.Op == isa.OpFstp {
			m.fpop()
		}

	case isa.OpFaddp, isa.OpFsubp, isa.OpFmulp, isa.OpFdivp:
		a := m.fget(0) // st0
		b := m.fget(1) // st1
		var r float64
		switch in.Op {
		case isa.OpFaddp:
			r = b + a
		case isa.OpFsubp:
			r = b - a
		case isa.OpFmulp:
			r = b * a
		case isa.OpFdivp:
			r = b / a // IEEE: /0 gives ±Inf or NaN, never a trap
		}
		m.fpop()
		m.fset(0, r)

	case isa.OpFchs:
		m.fset(0, -m.fget(0))

	case isa.OpFabs:
		m.fset(0, math.Abs(m.fget(0)))

	case isa.OpFsqrt:
		m.fset(0, math.Sqrt(m.fget(0)))

	case isa.OpFxch:
		i := int(in.Imm)
		a, b := m.fget(0), m.fget(i)
		m.fset(0, b)
		m.fset(i, a)

	case isa.OpFcomp:
		a, b := m.fget(0), m.fget(1)
		m.fpop()
		m.fpop()
		m.Flags = 0
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			m.Flags |= isa.FlagUN
		case a == b:
			m.Flags |= isa.FlagZ
		case a < b:
			m.Flags |= isa.FlagLT | isa.FlagUL
		}

	case isa.OpFxam:
		v := m.fget(0)
		m.Flags &^= isa.FlagZ | isa.FlagUN
		if math.IsNaN(v) {
			m.Flags |= isa.FlagZ | isa.FlagUN
		} else if math.IsInf(v, 0) {
			m.Flags |= isa.FlagZ
		}

	case isa.OpFild:
		ra, ok := gpr(in.Ra)
		if !ok {
			return m.ill("fild reg")
		}
		m.fpush(float64(int32(m.Regs[ra])))

	case isa.OpFist:
		rd, ok := gpr(in.Rd)
		if !ok {
			return m.ill("fist reg")
		}
		v := m.fget(0)
		m.fpop()
		// x86 stores the "integer indefinite" value on NaN or overflow.
		if math.IsNaN(v) || v >= math.MaxInt32 || v <= math.MinInt32-1 {
			m.Regs[rd] = 0x80000000
		} else {
			m.Regs[rd] = uint32(int32(v))
		}

	case isa.OpSys:
		if m.Handler == nil {
			return m.ill("no syscall handler")
		}
		m.PC = next // the handler observes the resumption PC
		if t := m.Handler.Syscall(m, in.Imm); t != nil {
			return t
		}
		m.updateMinSP()
		return nil

	default:
		return m.ill("invalid opcode")
	}

	m.PC = next
	m.updateMinSP()
	return nil
}

// ill builds the SIGILL trap for a bad encoding at the current PC.  It is
// a method rather than a per-Step closure so the interpreter's hot path
// allocates nothing and builds no closure contexts.
func (m *Machine) ill(msg string) *Trap {
	return &Trap{Kind: TrapIll, PC: m.PC, Msg: msg}
}

// gpr validates a register operand byte.  A bit flip in an operand byte
// can produce a register index >= 8, which faults like a bad encoding.
func gpr(r uint8) (int, bool) {
	if int(r) < isa.NumGPR {
		return int(r), true
	}
	return 0, false
}

// ea computes the effective address of the ra + index(rb) + imm memory
// form.  RegNone contributes zero, which also provides absolute
// addressing.
func (m *Machine) ea(ra, rb uint8, imm int32) (uint32, bool) {
	var a uint32
	if ra != isa.RegNone {
		if int(ra) >= isa.NumGPR {
			return 0, false
		}
		a += m.Regs[ra]
	}
	if rb != isa.RegNone {
		if int(rb) >= isa.NumGPR {
			return 0, false
		}
		a += m.Regs[rb]
	}
	return a + uint32(imm), true
}

func (m *Machine) updateMinSP() {
	if sp := m.Regs[isa.SP]; sp < m.MinSP {
		m.MinSP = sp
	}
}

// alu evaluates a three-register integer operation.
func (m *Machine) alu(op isa.Op, a, b uint32) (uint32, *Trap) {
	switch op {
	case isa.OpAdd:
		return a + b, nil
	case isa.OpSub:
		return a - b, nil
	case isa.OpMul:
		return uint32(int32(a) * int32(b)), nil
	case isa.OpDivs, isa.OpRems:
		d := int32(b)
		n := int32(a)
		if d == 0 || (n == math.MinInt32 && d == -1) {
			// x86 raises #DE on both divide-by-zero and INT_MIN/-1.
			return 0, &Trap{Kind: TrapFpe, PC: m.PC, Msg: "integer divide error"}
		}
		if op == isa.OpDivs {
			return uint32(n / d), nil
		}
		return uint32(n % d), nil
	case isa.OpAnd:
		return a & b, nil
	case isa.OpOr:
		return a | b, nil
	case isa.OpXor:
		return a ^ b, nil
	case isa.OpShl:
		return a << (b & 31), nil
	case isa.OpShr:
		return a >> (b & 31), nil
	case isa.OpSar:
		return uint32(int32(a) >> (b & 31)), nil
	}
	return 0, &Trap{Kind: TrapIll, PC: m.PC, Msg: "alu"}
}

func (m *Machine) setIntFlags(a, b uint32) {
	m.Flags = 0
	if a == b {
		m.Flags |= isa.FlagZ
	}
	if int32(a) < int32(b) {
		m.Flags |= isa.FlagLT
	}
	if a < b {
		m.Flags |= isa.FlagUL
	}
}

func (m *Machine) branchTaken(op isa.Op) bool {
	f := m.Flags
	switch op {
	case isa.OpBeq:
		return f&isa.FlagZ != 0
	case isa.OpBne:
		return f&isa.FlagZ == 0
	case isa.OpBlt:
		return f&isa.FlagLT != 0
	case isa.OpBge:
		return f&isa.FlagLT == 0
	case isa.OpBle:
		return f&(isa.FlagLT|isa.FlagZ) != 0
	case isa.OpBgt:
		return f&(isa.FlagLT|isa.FlagZ) == 0
	case isa.OpBltu:
		return f&isa.FlagUL != 0
	case isa.OpBgeu:
		return f&isa.FlagUL == 0
	case isa.OpBun:
		return f&isa.FlagUN != 0
	}
	return false
}

func (m *Machine) push(v uint32) *Trap {
	sp := m.Regs[isa.SP] - 4
	if t := m.Store32(sp, v); t != nil {
		return t
	}
	m.Regs[isa.SP] = sp
	return nil
}

func (m *Machine) pop() (uint32, *Trap) {
	v, t := m.Load32(m.Regs[isa.SP])
	if t != nil {
		return 0, t
	}
	m.Regs[isa.SP] += 4
	return v, nil
}
