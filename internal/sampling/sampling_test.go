package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZForConfidenceKnownValues(t *testing.T) {
	cases := []struct {
		conf, z float64
	}{
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
	}
	for _, c := range cases {
		z, err := ZForConfidence(c.conf)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(z-c.z) > 5e-4 {
			t.Errorf("z(%v) = %v, want %v", c.conf, z, c.z)
		}
	}
}

func TestZRejectsBadConfidence(t *testing.T) {
	for _, c := range []float64{0, 1, -0.5, 1.5} {
		if _, err := ZForConfidence(c); err == nil {
			t.Errorf("confidence %v should be rejected", c)
		}
	}
}

func TestSampleSizeMatchesFormula(t *testing.T) {
	// The classic: 95% confidence, 5% error -> n >= 0.25*(1.96/0.05)^2 = 385.
	n, err := SampleSize(0.95, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n != 385 {
		t.Fatalf("SampleSize(0.95, 0.05) = %d, want 385", n)
	}
}

func TestPaperSection43Numbers(t *testing.T) {
	// §4.3: "we performed 400-500 injections in most regions.  With a
	// confidence interval of 95 percent ... the estimation error d is
	// 4.4-4.9 percent."
	d400, err := EstimationError(0.95, 400)
	if err != nil {
		t.Fatal(err)
	}
	d500, err := EstimationError(0.95, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d400-0.049) > 0.001 {
		t.Errorf("d(n=400) = %.4f, paper says ~4.9%%", d400)
	}
	if math.Abs(d500-0.0438) > 0.001 {
		t.Errorf("d(n=500) = %.4f, paper says ~4.4%%", d500)
	}
}

func TestSampleSizeForOversamplingIsWorstCase(t *testing.T) {
	f := func(p100 uint8) bool {
		p := float64(p100%101) / 100
		nP, err1 := SampleSizeFor(0.95, 0.05, p)
		nMax, err2 := SampleSize(0.95, 0.05)
		return err1 == nil && err2 == nil && nP <= nMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimationErrorInvertsSampleSize(t *testing.T) {
	// Round trip: sample size for error d achieves error <= d.
	for _, d := range []float64{0.02, 0.044, 0.05, 0.1} {
		n, err := SampleSize(0.95, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EstimationError(0.95, n)
		if err != nil {
			t.Fatal(err)
		}
		if got > d+1e-9 {
			t.Errorf("n=%d gives error %v, wanted <= %v", n, got, d)
		}
	}
}

func TestEstimationErrorDecreasesWithN(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{10, 100, 400, 500, 1000, 2000} {
		d, err := EstimationError(0.95, n)
		if err != nil {
			t.Fatal(err)
		}
		if d >= prev {
			t.Fatalf("estimation error not decreasing at n=%d", n)
		}
		prev = d
	}
}

func TestConfidenceInterval(t *testing.T) {
	lo, hi, err := ConfidenceInterval(0.95, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-0.402) > 0.001 || math.Abs(hi-0.598) > 0.001 {
		t.Fatalf("CI = [%v, %v], want ~[0.402, 0.598]", lo, hi)
	}
	// Degenerate proportions clamp to [0,1].
	lo, hi, err = ConfidenceInterval(0.95, 0.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 0 {
		t.Fatalf("CI at p=0 should collapse, got [%v, %v]", lo, hi)
	}
}

func TestQuantileSymmetry(t *testing.T) {
	f := func(u uint16) bool {
		p := (float64(u%9998) + 1) / 10000 // (0, 1)
		return math.Abs(normQuantile(p)+normQuantile(1-p)) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileRoundTripsCDF(t *testing.T) {
	// Phi(Phi^-1(p)) == p to high accuracy across the domain.
	for _, p := range []float64{1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-6} {
		x := normQuantile(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("round trip at p=%v: got %v", p, back)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := SampleSize(0.95, 0); err == nil {
		t.Error("d=0 must error")
	}
	if _, err := SampleSizeFor(0.95, 0.05, 1.5); err == nil {
		t.Error("p>1 must error")
	}
	if _, err := EstimationError(0.95, 0); err == nil {
		t.Error("n=0 must error")
	}
	if _, _, err := ConfidenceInterval(0.95, 0.5, 0); err == nil {
		t.Error("n=0 must error")
	}
	if _, _, err := ConfidenceInterval(0.95, 2, 10); err == nil {
		t.Error("p>1 must error")
	}
}

func TestEffectiveSampleSize(t *testing.T) {
	// Equal weights: n_eff equals n exactly, whatever the scale.
	for _, w := range []float64{0.1, 1, 320} {
		weights := []float64{w, w, w, w}
		n, err := EffectiveSampleSize(weights)
		if err != nil || math.Abs(n-4) > 1e-12 {
			t.Errorf("equal weights %v: n_eff = %v, %v; want 4", w, n, err)
		}
	}
	// Unequal weights shrink n_eff: (1+1+2)^2 / (1+1+4) = 16/6.
	n, err := EffectiveSampleSize([]float64{1, 1, 2})
	if err != nil || math.Abs(n-16.0/6.0) > 1e-12 {
		t.Errorf("n_eff = %v, %v; want 16/6", n, err)
	}
	// A zero weight contributes nothing: one live draw out of two.
	n, err = EffectiveSampleSize([]float64{1, 0})
	if err != nil || n != 1 {
		t.Errorf("n_eff with a zero weight = %v, %v; want 1", n, err)
	}
	// n_eff never exceeds len(weights) (Cauchy–Schwarz).
	if n, _ := EffectiveSampleSize([]float64{3, 1, 0.5, 7}); n > 4 {
		t.Errorf("n_eff = %v exceeds the sample count", n)
	}
	if _, err := EffectiveSampleSize([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := EffectiveSampleSize(nil); err == nil {
		t.Error("empty weight set accepted")
	}
	if _, err := EffectiveSampleSize([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
}

func TestDifferenceBound(t *testing.T) {
	// Equal sizes: the bound is sqrt(2) times a single estimate's error.
	d1, err := EstimationError(0.95, 400)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DifferenceBound(0.95, 400, 400)
	if err != nil || math.Abs(d2-d1*math.Sqrt2) > 1e-12 {
		t.Errorf("DifferenceBound(400,400) = %v, %v; want sqrt(2)*%v", d2, err, d1)
	}
	// The bound is symmetric and dominated by the smaller sample.
	a, _ := DifferenceBound(0.95, 400, 100)
	b, _ := DifferenceBound(0.95, 100, 400)
	if a != b {
		t.Errorf("asymmetric: %v vs %v", a, b)
	}
	single, _ := EstimationError(0.95, 100)
	if a <= single {
		t.Errorf("difference bound %v not wider than the weaker estimate's %v", a, single)
	}
	if _, err := DifferenceBound(0.95, 0, 400); err == nil {
		t.Error("n1 = 0 accepted")
	}
	if _, err := DifferenceBound(1.5, 400, 400); err == nil {
		t.Error("confidence outside (0,1) accepted")
	}
}
