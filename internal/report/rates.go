package report

import (
	"fmt"
	"io"

	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/sampling"
)

// WriteRates renders the per-region manifestation-rate estimates with
// Wilson score CI half-width columns — the estimation-quality view the
// adaptive planner stops on, printed for fixed-n campaigns too.  When
// reweight is true (the campaign ran equivalence pruning), a second
// column pair shows the Horvitz–Thompson reweighted full-space rate with
// a half-width computed at Kish's effective sample size over the
// per-experiment candidate masses: pruning shrinks both the rate and its
// interval by the provably-benign mass it never had to sample.
//
// This table is advisory output; the campaign CSV stays byte-identical
// with or without it (it is never emitted in -csv mode).
func WriteRates(w io.Writer, app string, res *core.Result, confidence, target float64, reweight bool) {
	fmt.Fprintf(w, "Estimated Manifestation Rates (%s)\n", app)
	fmt.Fprintf(w, "%-14s %10s %8s %8s", "Region", "Executions", "Errors%", "±CI%")
	if reweight {
		fmt.Fprintf(w, " %12s %8s", "Reweighted%", "±CI%")
	}
	fmt.Fprintln(w)

	regions := make([]core.Region, len(res.Tallies))
	for i, t := range res.Tallies {
		regions[i] = t.Region
	}
	var weighted []core.WeightedTally
	if reweight && res.Experiments != nil {
		weighted = core.ReweightTallies(regions, res.Experiments)
	}

	for i, t := range res.Tallies {
		fmt.Fprintf(w, "%-14s %10d %8.1f", t.Region, t.Executions, t.ErrorRate())
		if t.Executions == 0 {
			fmt.Fprintf(w, " %8s", "-")
		} else if hw, err := sampling.WilsonHalfWidth(confidence, t.Errors(), t.Executions); err == nil {
			fmt.Fprintf(w, " %8.1f", 100*hw)
		} else {
			fmt.Fprintf(w, " %8s", "-")
		}
		if weighted != nil {
			wt := weighted[i]
			rw, hw, ok := reweightedHalfWidth(confidence, t.Region, res.Experiments, wt)
			if ok {
				fmt.Fprintf(w, " %12.1f %8.1f", rw, 100*hw)
			} else {
				fmt.Fprintf(w, " %12s %8s", "-", "-")
			}
		} else if reweight {
			fmt.Fprintf(w, " %12s %8s", "-", "-")
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(Wilson score intervals at %.0f%% confidence", 100*confidence)
	if target > 0 {
		fmt.Fprintf(w, "; adaptive stopping target d=%.1f%%", 100*target)
	}
	fmt.Fprintf(w, ")\n")
}

// reweightedHalfWidth derives the CI half-width of a region's
// Horvitz–Thompson reweighted rate.  The random part of the estimator is
// the per-experiment candidate mass (the benign remainder is credited to
// Correct deterministically), so the interval is the Wilson half-width
// of the candidate-space proportion at Kish's n_eff, scaled back to the
// full space by the candidate mass share.
func reweightedHalfWidth(confidence float64, region core.Region, experiments []core.Experiment, wt core.WeightedTally) (ratePct, halfWidth float64, ok bool) {
	if wt.TotalMass == 0 {
		return 0, 0, false
	}
	var weights []float64
	var candMass, benignMass uint64
	for i := range experiments {
		if experiments[i].Region != region {
			continue
		}
		c := uint64(core.RegisterSpaceBits - experiments[i].BenignBits)
		if region != core.RegionRegularReg || experiments[i].BenignBits == 0 {
			c = uint64(core.RegisterSpaceBits)
		}
		weights = append(weights, float64(c))
		candMass += c
		benignMass += uint64(core.RegisterSpaceBits) - c
	}
	if candMass == 0 {
		// Everything was provably benign: the rate is exactly 0.
		return 0, 0, true
	}
	nEff, err := sampling.EffectiveSampleSize(weights)
	if err != nil {
		return 0, 0, false
	}
	// Errors only ever land on candidate mass, so the candidate-space
	// proportion is the error mass over the candidate mass.
	pc := float64(wt.Errors()) / float64(candMass)
	hw, err := sampling.WilsonHalfWidthAt(confidence, pc, nEff)
	if err != nil {
		return 0, 0, false
	}
	share := float64(candMass) / float64(wt.TotalMass)
	return wt.ErrorRate(), hw * share, true
}

// ErrorOf reports whether an experiment manifested (any outcome other
// than Correct) — the tally the adaptive planner stops on, exported so
// gates and merges count errors exactly like the planner does.
func ErrorOf(e core.Experiment) bool { return e.Outcome != classify.Correct }
