package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeTableComplete(t *testing.T) {
	for op := Op(1); op < Op(NumOpcodes); op++ {
		if op.String() == "op?" || op.String() == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if !op.Valid() {
			t.Errorf("opcode %d (%s) not Valid", op, op)
		}
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be Valid")
	}
	if Op(NumOpcodes).Valid() {
		t.Error("out-of-range opcode must not be Valid")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int32) bool {
		in := Instr{Op: Op(op), Rd: rd, Ra: ra, Rb: rb, Imm: imm}
		var buf [InstrBytes]byte
		in.Encode(buf[:])
		out := Decode(buf[:])
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(b [InstrBytes]byte) bool {
		in := Decode(b[:])
		_ = in.String() // must not panic either
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBytesMatchesEncode(t *testing.T) {
	in := Instr{Op: OpAddi, Rd: 1, Ra: 2, Imm: -77}
	var buf [InstrBytes]byte
	in.Encode(buf[:])
	got := in.Bytes()
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("Bytes()[%d] = %#x, want %#x", i, got[i], buf[i])
		}
	}
}

func TestImmediateLittleEndian(t *testing.T) {
	in := Instr{Op: OpMovi, Rd: 0, Imm: 0x01020304}
	b := in.Bytes()
	if b[4] != 0x04 || b[5] != 0x03 || b[6] != 0x02 || b[7] != 0x01 {
		t.Fatalf("immediate bytes = % x, want little-endian", b[4:])
	}
}

func TestStoreSourceAliasesRd(t *testing.T) {
	var in Instr
	in.SetRc(5)
	if in.Rc() != 5 || in.Rd != 5 {
		t.Fatal("store source must live in the Rd slot")
	}
}

func TestBranchClassification(t *testing.T) {
	branches := []Op{OpJmp, OpBeq, OpBne, OpBlt, OpBge, OpBle, OpBgt, OpBltu, OpBgeu, OpBun, OpCall}
	seen := map[Op]bool{}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
		seen[op] = true
	}
	for op := Op(1); op < Op(NumOpcodes); op++ {
		if op.IsBranch() && !seen[op] {
			t.Errorf("%s unexpectedly classified as branch", op)
		}
	}
	if OpCallr.IsBranch() {
		t.Error("callr transfers via register, not immediate")
	}
}

func TestMemFormClassification(t *testing.T) {
	for _, op := range []Op{OpLd, OpSt, OpLdb, OpStb, OpFld, OpFst, OpFstp} {
		if !op.IsMemForm() {
			t.Errorf("%s should be mem-form", op)
		}
	}
	for _, op := range []Op{OpAdd, OpMovi, OpFldz, OpSys} {
		if op.IsMemForm() {
			t.Errorf("%s should not be mem-form", op)
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpMovi, Rd: 0, Imm: 42}, "movi r0, 42"},
		{Instr{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Instr{Op: OpLd, Rd: 4, Ra: 7, Rb: RegNone, Imm: 8}, "ld r4, [sp+8]"},
		{Instr{Op: OpSys, Imm: 3}, "sys 3"},
		{Instr{Op: OpInvalid}, "invalid(0x00)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
	// Store form shows the source register on the right.
	st := Instr{Op: OpSt, Ra: 6, Rb: RegNone, Imm: -4}
	st.SetRc(2)
	if got := st.String(); !strings.Contains(got, "fp") || !strings.Contains(got, "r2") {
		t.Errorf("store disasm = %q", got)
	}
}

func TestRegisterNames(t *testing.T) {
	if GPRName(FP) != "fp" || GPRName(SP) != "sp" || GPRName(0) != "r0" {
		t.Fatal("register naming broken")
	}
	if GPRName(99) != "r?" {
		t.Fatal("out-of-range register must name as r?")
	}
	for i := 0; i < NumFPEnv; i++ {
		if FPEnvName(i) == "FP?" {
			t.Errorf("FP env register %d unnamed", i)
		}
	}
}

func TestTagConstants(t *testing.T) {
	// The x87 encodes: 00 valid, 01 zero, 10 special, 11 empty.
	if TagValid != 0 || TagZero != 1 || TagSpecial != 2 || TagEmpty != 3 {
		t.Fatal("tag encoding must follow the x87 layout")
	}
}

// TestAluiBase pins the immediate->register ALU pairing table: every
// immediate form maps to its register-register base operation, and every
// other opcode (including out-of-range values) maps to OpInvalid.
func TestAluiBase(t *testing.T) {
	want := map[Op]Op{
		OpAddi: OpAdd,
		OpMuli: OpMul,
		OpAndi: OpAnd,
		OpOri:  OpOr,
		OpXori: OpXor,
		OpShli: OpShl,
		OpShri: OpShr,
		OpSari: OpSar,
	}
	for op := Op(0); op < Op(NumOpcodes); op++ {
		base, ok := want[op]
		if !ok {
			base = OpInvalid
		}
		if got := op.AluiBase(); got != base {
			t.Errorf("%s.AluiBase() = %s, want %s", op, got, base)
		}
	}
	if got := Op(255).AluiBase(); got != OpInvalid {
		t.Errorf("Op(255).AluiBase() = %s, want invalid", got)
	}
}
