// Package isa defines the instruction-set architecture of the simulated
// 32-bit machine on which guest MPI applications execute.
//
// The design deliberately mirrors the Intel x86-32 environment the paper
// targeted: a small file of general-purpose registers (so most registers
// hold live data at any instant — the root cause of the paper's high
// integer-register error rates), a frame-pointer calling convention (so the
// fault injector can walk stack frames exactly as §3.2 describes), and an
// x87-style floating-point register *stack* with a tag word (so tag-word bit
// flips can turn valid numbers into NaNs, the mechanism §6.1.1 analyses).
//
// Instructions use a fixed 8-byte encoding: one opcode byte, three register
// operand bytes and a 32-bit little-endian immediate.  A fixed encoding
// keeps the interpreter fast while still giving text-segment bit flips
// realistic consequences: a flip in the opcode byte usually produces an
// illegal instruction, a flip in a register byte can select a nonexistent
// register, and a flip in the immediate silently changes addresses and
// constants.
package isa

// General-purpose register indices.  R6 and R7 double as the frame and
// stack pointers, in the spirit of x86's EBP/ESP.
const (
	R0 = 0 // return value / first syscall argument
	R1 = 1
	R2 = 2
	R3 = 3
	R4 = 4
	R5 = 5
	FP = 6 // frame pointer (EBP analogue)
	SP = 7 // stack pointer (ESP analogue)

	// NumGPR is the number of general-purpose registers.
	NumGPR = 8

	// RegNone marks an absent index register in load/store encodings.
	RegNone = 0xFF
)

// Floating-point environment sizes, mirroring the x87 FPU.
const (
	// NumFPReg is the number of physical floating-point stack slots.
	NumFPReg = 8

	// Tag word values, two bits per physical FP register (x87 semantics).
	TagValid   = 0 // slot holds an ordinary finite nonzero number
	TagZero    = 1 // slot holds ±0
	TagSpecial = 2 // slot holds NaN, ±Inf or a denormal
	TagEmpty   = 3 // slot is empty (reads yield the x87 "indefinite" NaN)
)

// GPRName returns the assembler name of a general-purpose register.
func GPRName(r int) string {
	switch r {
	case R0:
		return "r0"
	case R1:
		return "r1"
	case R2:
		return "r2"
	case R3:
		return "r3"
	case R4:
		return "r4"
	case R5:
		return "r5"
	case FP:
		return "fp"
	case SP:
		return "sp"
	default:
		return "r?"
	}
}

// Flag bits of the condition-flags register.
const (
	FlagZ  = 1 << 0 // zero / equal
	FlagLT = 1 << 1 // signed less-than
	FlagUL = 1 << 2 // unsigned less-than
	FlagUN = 1 << 3 // unordered (a floating-point comparand was NaN)
)

// Special floating-point environment register identifiers, used by the
// fault injector to enumerate targets (the paper injects into CWD, SWD,
// TWD, FIP, FCS, FOO and FOS alongside the eight data registers).
const (
	FPEnvCWD = iota // control word
	FPEnvSWD        // status word (bits 11-13 hold the stack top)
	FPEnvTWD        // tag word
	FPEnvFIP        // last instruction pointer
	FPEnvFCS        // last instruction "segment" (decorative, as on x87)
	FPEnvFOO        // last operand offset
	FPEnvFOS        // last operand "segment"
	NumFPEnv
)

// FPEnvName returns the x87-style name of a special FP register.
func FPEnvName(i int) string {
	switch i {
	case FPEnvCWD:
		return "CWD"
	case FPEnvSWD:
		return "SWD"
	case FPEnvTWD:
		return "TWD"
	case FPEnvFIP:
		return "FIP"
	case FPEnvFCS:
		return "FCS"
	case FPEnvFOO:
		return "FOO"
	case FPEnvFOS:
		return "FOS"
	default:
		return "FP?"
	}
}
