package mpi

import (
	"mpifault/internal/abi"
	"mpifault/internal/vm"
)

// Request is a nonblocking operation handle (MPI_Request).  Blocking
// Send/Recv are implemented as start + wait on a request, so every
// message — blocking or not, user or collective-internal — flows through
// one progress engine.
type Request struct {
	id   int32
	send bool
	done bool

	// Receive state.
	buf    uint32
	limit  uint32 // buffer capacity in bytes
	dtype  int32
	src    int32 // world rank or AnySource
	tag    int32
	ctx    int32 // resolved communicator context
	status uint32

	rdvActive bool
	rdvSeq    uint32

	// hostMode receives deliver into hostPayload instead of guest memory
	// (collective-internal transfers).
	hostMode    bool
	hostPayload []byte

	// ci translates world ranks back to communicator ranks for status
	// write-back; nil for internal transfers.
	ci *commInfo

	resSrc int32
	resTag int32
	resLen uint32

	// Trace state: fn is the API-layer call that posted a user receive,
	// set only when the rank has a TraceHook armed; completeRecv then
	// retains the matched payload so releaseRequest can emit the digest
	// event in program order with the resolved envelope.
	fn      string
	resData []byte

	// Send state (rendezvous in flight, waiting for CTS).
	payload []byte
	dst     int32
	seq     uint32
}

// newRequest registers a request and returns it.
func (p *Proc) newRequest(send bool) *Request {
	p.nextReq++
	r := &Request{id: p.nextReq, send: send}
	p.requests[r.id] = r
	return r
}

// lookupRequest resolves a guest request handle.
func (p *Proc) lookupRequest(id int32) (*Request, bool) {
	r, ok := p.requests[id]
	return r, ok
}

// releaseRequest frees a completed handle (MPI_Wait semantics).  For a
// traced user receive this is the digest-emission point: release
// happens in rank program order regardless of how packet arrivals
// interleaved, and the matched envelope (resSrc/resTag) is resolved by
// now, so wildcard receives digest the actual peer and tag.
func (p *Proc) releaseRequest(r *Request, m *vm.Machine) {
	delete(p.requests, r.id)
	if r.fn != "" && r.done && !r.send {
		p.recordTrace(m, CommOp{Fn: r.fn, Peer: r.resSrc, Tag: r.resTag,
			Bytes: r.resLen, Data: r.resData})
		r.resData = nil
	}
}

func removeReq(list []*Request, r *Request) []*Request {
	for i, q := range list {
		if q == r {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// startRecv posts a receive: it first claims any matching parked packet
// (the unexpected queue), otherwise joins the pending list the dispatcher
// completes as packets arrive.
func (p *Proc) startRecv(m *vm.Machine, fn string, buf uint32, limit uint32, dtype, src, tag, ctx int32, status uint32) (*Request, *vm.Trap) {
	r := p.newRequest(false)
	r.buf, r.limit, r.dtype = buf, limit, dtype
	r.src, r.tag, r.ctx, r.status = src, tag, ctx, status
	if p.TraceHook != nil {
		r.fn = fn
	}

	match := matchEnvelope(src, tag, ctx)
	if i := p.findStored(match); i >= 0 {
		pkt, payload, t := p.takeStored(i, m)
		if t != nil {
			return nil, t
		}
		if pkt.Kind == KindRTS {
			if t := p.grantRendezvous(r, pkt, m); t != nil {
				return nil, t
			}
			p.pendingRecvs = append(p.pendingRecvs, r)
			return r, nil
		}
		if t := p.completeRecv(r, pkt, payload, m); t != nil {
			return nil, t
		}
		return r, nil
	}
	p.pendingRecvs = append(p.pendingRecvs, r)
	return r, nil
}

// grantRendezvous answers a matched RTS with a CTS and arms the request
// for the specific data packet.
func (p *Proc) grantRendezvous(r *Request, rts *Packet, m *vm.Machine) *vm.Trap {
	cts := &Packet{Kind: KindCTS, Src: int32(p.rank), Dst: rts.Src,
		Comm: rts.Comm, Seq: rts.Seq}
	if t := p.sendPacket(cts, m); t != nil {
		return t
	}
	r.rdvActive = true
	r.rdvSeq = rts.Seq
	return nil
}

// completeRecv finishes a receive request: truncation check, buffer copy
// and status write-back.
func (p *Proc) completeRecv(r *Request, pkt *Packet, payload []byte, m *vm.Machine) *vm.Trap {
	r.resSrc, r.resTag, r.resLen = pkt.Src, pkt.Tag, uint32(len(payload))
	r.done = true
	if r.fn != "" {
		r.resData = payload
	}
	if r.hostMode {
		r.hostPayload = append([]byte(nil), payload...)
		return nil
	}
	if uint32(len(payload)) > r.limit {
		return &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
			Msg: "message truncated"}
	}
	if len(payload) > 0 {
		if t := m.WriteBytes(r.buf, payload); t != nil {
			return t
		}
	}
	if r.status != 0 {
		return p.writeStatus(r, r.status, m)
	}
	return nil
}

// writeStatus stores {source, tag, count} at addr, translating the world
// source rank into the receive's communicator.
func (p *Proc) writeStatus(r *Request, addr uint32, m *vm.Machine) *vm.Trap {
	src := r.resSrc
	if r.ci != nil {
		src = r.ci.commRankOf(r.resSrc)
	}
	ds := abi.DTSize(r.dtype)
	if ds == 0 {
		ds = 1
	}
	if t := m.Store32(addr, uint32(src)); t != nil {
		return t
	}
	if t := m.Store32(addr+4, uint32(r.resTag)); t != nil {
		return t
	}
	return m.Store32(addr+8, r.resLen/ds)
}

// startRecvHost posts an internal receive that lands in a host buffer.
func (p *Proc) startRecvHost(m *vm.Machine, src, tag, ctx int32) (*Request, *vm.Trap) {
	r := p.newRequest(false)
	r.hostMode = true
	r.src, r.tag, r.ctx = src, tag, ctx
	r.limit = ^uint32(0)

	match := matchEnvelope(src, tag, ctx)
	if i := p.findStored(match); i >= 0 {
		pkt, payload, t := p.takeStored(i, m)
		if t != nil {
			return nil, t
		}
		if pkt.Kind == KindRTS {
			if t := p.grantRendezvous(r, pkt, m); t != nil {
				return nil, t
			}
			p.pendingRecvs = append(p.pendingRecvs, r)
			return r, nil
		}
		if t := p.completeRecv(r, pkt, payload, m); t != nil {
			return nil, t
		}
		return r, nil
	}
	p.pendingRecvs = append(p.pendingRecvs, r)
	return r, nil
}

// startSend begins a send.  Eager messages (and all self-sends, which
// must not rendezvous against ourselves) complete immediately;
// rendezvous sends post an RTS and wait for the CTS in the dispatcher.
func (p *Proc) startSend(m *vm.Machine, payload []byte, dst, tag, ctx, dtype int32) (*Request, *vm.Trap) {
	r := p.newRequest(true)
	if uint32(len(payload)) <= p.w.cfg.EagerThreshold || int(dst) == p.rank {
		pkt := &Packet{Kind: KindEager, Src: int32(p.rank), Dst: dst,
			Tag: tag, Comm: ctx, Dtype: dtype, Payload: payload}
		if int(dst) == p.rank {
			// Loop back through our own unexpected queue (or a posted
			// receive) without touching the Channel.
			if consumed, t := p.dispatch(pkt, m); t != nil {
				return nil, t
			} else if !consumed {
				if t := p.park(pkt, m); t != nil {
					return nil, t
				}
			}
		} else if t := p.sendPacket(pkt, m); t != nil {
			return nil, t
		}
		r.done = true
		return r, nil
	}

	p.nextSeq++
	r.seq = p.nextSeq<<8 | uint32(p.rank&0xFF)
	r.payload, r.dst, r.tag, r.ctx, r.dtype = payload, dst, tag, ctx, dtype
	rts := &Packet{Kind: KindRTS, Src: int32(p.rank), Dst: dst,
		Tag: tag, Comm: ctx, Seq: r.seq, Dtype: dtype,
		Len: uint32(len(payload))}
	if t := p.sendPacket(rts, m); t != nil {
		return nil, t
	}
	// The CTS may already be parked if another operation pulled it.
	if i := p.findStored(func(q *Packet) bool { return q.Kind == KindCTS && q.Seq == r.seq }); i >= 0 {
		if _, _, t := p.takeStored(i, m); t != nil {
			return nil, t
		}
		return r, p.finishRendezvousSend(r, m)
	}
	p.pendingSends = append(p.pendingSends, r)
	return r, nil
}

// finishRendezvousSend ships the data packet after the CTS arrived.
func (p *Proc) finishRendezvousSend(r *Request, m *vm.Machine) *vm.Trap {
	pkt := &Packet{Kind: KindRdvData, Src: int32(p.rank), Dst: r.dst,
		Tag: r.tag, Comm: r.ctx, Seq: r.seq, Dtype: r.dtype,
		Payload: r.payload}
	if t := p.sendPacket(pkt, m); t != nil {
		return t
	}
	r.payload = nil
	r.done = true
	return nil
}

// dispatch routes an incoming packet to the pending requests.  It
// returns true if the packet was consumed.
func (p *Proc) dispatch(pkt *Packet, m *vm.Machine) (bool, *vm.Trap) {
	switch pkt.Kind {
	case KindCTS:
		for _, r := range p.pendingSends {
			if r.seq == pkt.Seq {
				p.pendingSends = removeReq(p.pendingSends, r)
				return true, p.finishRendezvousSend(r, m)
			}
		}
		return false, nil

	case KindRdvData:
		for _, r := range p.pendingRecvs {
			if r.rdvActive && r.rdvSeq == pkt.Seq {
				p.pendingRecvs = removeReq(p.pendingRecvs, r)
				return true, p.completeRecv(r, pkt, pkt.Payload, m)
			}
		}
		return false, nil

	case KindEager:
		for _, r := range p.pendingRecvs {
			if r.rdvActive {
				continue
			}
			if matchEnvelope(r.src, r.tag, r.ctx)(pkt) {
				p.pendingRecvs = removeReq(p.pendingRecvs, r)
				return true, p.completeRecv(r, pkt, pkt.Payload, m)
			}
		}
		return false, nil

	case KindRTS:
		for _, r := range p.pendingRecvs {
			if r.rdvActive {
				continue
			}
			if matchEnvelope(r.src, r.tag, r.ctx)(pkt) {
				return true, p.grantRendezvous(r, pkt, m)
			}
		}
		return false, nil
	}
	return false, nil
}

// progressUntil drives the engine until cond holds: it pulls packets,
// dispatches them to pending requests and parks the rest.
func (p *Proc) progressUntil(cond func() bool, m *vm.Machine) *vm.Trap {
	for !cond() {
		pkt, t := p.pull(m)
		if t != nil {
			return t
		}
		consumed, t := p.dispatch(pkt, m)
		if t != nil {
			return t
		}
		if !consumed {
			if t := p.park(pkt, m); t != nil {
				return t
			}
		}
	}
	return nil
}

// wait blocks until the request completes, then releases it.
func (p *Proc) wait(r *Request, m *vm.Machine) *vm.Trap {
	if t := p.progressUntil(func() bool { return r.done }, m); t != nil {
		return t
	}
	p.releaseRequest(r, m)
	return nil
}
