package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Transport abstracts the Channel layer's byte delivery.  The default
// (nil) transport is in-process queues; TCPTransport moves the same
// framed packets over real loopback sockets, which is what ch_p4 did
// over Ethernet.  The injection point is unchanged either way: the
// receiver-side hook runs on the raw bytes after they are read and
// before they are parsed.
type Transport interface {
	// Send delivers one framed packet from src to dst.  It may block
	// (backpressure) and must be safe for one concurrent writer per src.
	Send(src, dst int, frame []byte) error
	// Close tears down the transport and unblocks readers.
	Close() error
}

// PushPacket enqueues a raw packet for dst, on behalf of a transport's
// receive path.  It performs the same accounting as in-process delivery.
func (w *World) PushPacket(dst int, raw []byte) {
	w.inflight.Add(1)
	w.progress.Add(1)
	select {
	case w.procs[dst].in <- raw:
	case <-w.kill:
		w.inflight.Add(-1)
	}
}

// TCPTransport carries Channel packets over loopback TCP with 4-byte
// length framing — one unidirectional connection per ordered rank pair,
// so each connection has exactly one writer (the sender's goroutine).
type TCPTransport struct {
	w     *World
	size  int
	conns [][]net.Conn // [src][dst], nil on the diagonal

	listeners []net.Listener
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

// NewTCPTransport builds the full mesh for world w and starts the reader
// goroutines.  The caller owns Close.
func NewTCPTransport(w *World) (*TCPTransport, error) {
	t := &TCPTransport{
		w:      w,
		size:   w.Size,
		closed: make(chan struct{}),
	}
	t.conns = make([][]net.Conn, w.Size)
	for i := range t.conns {
		t.conns[i] = make([]net.Conn, w.Size)
	}

	// One listener per rank.
	addrs := make([]string, w.Size)
	for r := 0; r < w.Size; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("mpi: listen for rank %d: %w", r, err)
		}
		t.listeners = append(t.listeners, ln)
		addrs[r] = ln.Addr().String()
	}

	// Accept loops: each accepted connection announces its source rank,
	// then feeds the local rank's queue.
	for r := 0; r < w.Size; r++ {
		r := r
		ln := t.listeners[r]
		// Each rank expects size-1 inbound connections.
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for i := 0; i < t.size-1; i++ {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					conn.Close()
					return
				}
				src := int(binary.LittleEndian.Uint32(hello[:]))
				if src < 0 || src >= t.size {
					conn.Close()
					return
				}
				t.wg.Add(1)
				go t.reader(r, conn)
			}
		}()
	}

	// Dial the mesh.
	for src := 0; src < w.Size; src++ {
		for dst := 0; dst < w.Size; dst++ {
			if src == dst {
				continue
			}
			conn, err := net.Dial("tcp", addrs[dst])
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("mpi: dial %d->%d: %w", src, dst, err)
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(src))
			if _, err := conn.Write(hello[:]); err != nil {
				t.Close()
				return nil, fmt.Errorf("mpi: hello %d->%d: %w", src, dst, err)
			}
			t.conns[src][dst] = conn
		}
	}
	return t, nil
}

// reader drains one inbound connection into the rank's queue.
func (t *TCPTransport) reader(self int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenbuf[:])
		if n > 64<<20 {
			return // insane frame; drop the connection
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		select {
		case <-t.closed:
			return
		default:
		}
		t.w.PushPacket(self, frame)
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(src, dst int, frame []byte) error {
	conn := t.conns[src][dst]
	if conn == nil {
		return fmt.Errorf("mpi: no connection %d->%d", src, dst)
	}
	var lenbuf [4]byte
	binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(frame)))
	if _, err := conn.Write(lenbuf[:]); err != nil {
		return err
	}
	_, err := conn.Write(frame)
	return err
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		for _, ln := range t.listeners {
			ln.Close()
		}
		for _, row := range t.conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
	})
	t.wg.Wait()
	return nil
}
