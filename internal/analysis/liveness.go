package analysis

import (
	"fmt"

	"mpifault/internal/isa"
)

// RegMask is a bitset over the trackable register context: bits 0-7 are
// the GPRs, bit FlagsBit the condition-flags register.  A set bit means
// "live": some execution continuing from this point may read the value
// before overwriting it.  The analysis overapproximates (anything it
// cannot prove dead stays live), so a clear bit is a guarantee.
type RegMask uint16

// FlagsBit is the RegMask bit index of the condition-flags register.
const FlagsBit = isa.NumGPR

const maskAllRegs RegMask = (1 << isa.NumGPR) - 1 // the eight GPRs
const maskAll RegMask = maskAllRegs | 1<<FlagsBit

func regBit(r int) RegMask { return 1 << RegMask(r) }

// Count returns the number of live registers in the mask (flags count
// as one).
func (m RegMask) Count() int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Has reports whether GPR r is live in the mask.
func (m RegMask) Has(r int) bool { return m&regBit(r) != 0 }

// HasFlags reports whether the flags register is live in the mask.
func (m RegMask) HasFlags() bool { return m&(1<<FlagsBit) != 0 }

func (m RegMask) String() string {
	s := ""
	for r := 0; r < isa.NumGPR; r++ {
		if m.Has(r) {
			if s != "" {
				s += ","
			}
			s += isa.GPRName(r)
		}
	}
	if m.HasFlags() {
		if s != "" {
			s += ","
		}
		s += "flags"
	}
	if s == "" {
		return "none"
	}
	return s
}

// funcLive is the per-function dataflow state.
type funcLive struct {
	f *FuncCFG

	// mayUse: registers whose entry value the function (or a callee) may
	// read.  mustDef: registers overwritten on every path to every
	// return (fp/sp excluded: the convention preserves them).  retLive:
	// registers live after the function returns, joined over call sites.
	mayUse, mustDef, retLive RegMask

	liveIn []RegMask // per instruction

	// FP-stack summary: fpNeed values must be on the stack at entry,
	// the depth rises at most fpRise above entry, and a return leaves
	// the depth shifted by fpDelta.  fpDepthIn records the relative
	// depth at each block entry (from the final forward walk).
	fpNeed, fpRise, fpDelta int
	fpDepthIn               []int
}

// Liveness holds the dataflow results for a whole program, plus the
// FP-stack depth findings discovered along the way.
type Liveness struct {
	Prog     *Program
	Findings []Finding

	funcs  map[string]*funcLive
	liveAt map[uint32]RegMask
}

// ComputeLiveness runs the register and FP-stack dataflow over an
// analyzed program: bottom-up function summaries (mayUse as a least
// fixpoint from "uses nothing", mustDef as a greatest fixpoint from
// "defines everything"), then a top-down return-liveness fixpoint joined
// over call sites, and finally per-instruction live-in sets.  Indirect
// calls degrade everything they can reach to fully-conservative.
func ComputeLiveness(prog *Program) *Liveness {
	l := &Liveness{
		Prog:   prog,
		funcs:  make(map[string]*funcLive, len(prog.Funcs)),
		liveAt: make(map[uint32]RegMask),
	}
	for _, f := range prog.Funcs {
		fl := &funcLive{f: f, mustDef: maskAll}
		if prog.hasCallr {
			fl.retLive = maskAll
		}
		l.funcs[f.Sym.Name] = fl
	}

	// Phase A: register summaries.
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			fl := l.funcs[f.Sym.Name]
			liveIn, _ := l.intra(fl, 0)
			entry := RegMask(0)
			if len(liveIn) > 0 {
				entry = liveIn[0]
			}
			mustDef := l.intraMustDef(fl)
			if entry != fl.mayUse || mustDef != fl.mustDef {
				fl.mayUse, fl.mustDef = entry, mustDef
				changed = true
			}
		}
	}

	// Phase B: return-liveness fixpoint and final live-in sets.
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			fl := l.funcs[f.Sym.Name]
			liveIn, callOuts := l.intra(fl, fl.retLive)
			fl.liveIn = liveIn
			for callee, out := range callOuts {
				g := l.funcs[callee]
				if g == nil {
					continue
				}
				if g.retLive|out != g.retLive {
					g.retLive |= out
					changed = true
				}
			}
		}
	}
	for _, f := range prog.Funcs {
		fl := l.funcs[f.Sym.Name]
		for i := range f.Instrs {
			if f.reach[i] {
				l.liveAt[f.Addr(i)] = fl.liveIn[i]
			}
		}
	}

	l.fpAnalysis()
	return l
}

// LiveAt returns the live register mask (bits 0-7 the GPRs, bit 8 the
// flags) at an instruction boundary; ok is false when pc is not a known,
// reachable instruction address.  This implements core.LivenessMap.
func (l *Liveness) LiveAt(pc uint32) (uint16, bool) {
	m, ok := l.liveAt[pc]
	return uint16(m), ok
}

// FuncEntryUse returns the entry may-use mask of the named function.
func (l *Liveness) FuncEntryUse(name string) (RegMask, bool) {
	fl, ok := l.funcs[name]
	if !ok {
		return 0, false
	}
	return fl.mayUse, true
}

// useDef computes one instruction's use and def masks, consulting the
// callee summaries for direct calls.  Indirect calls and unresolvable
// call targets use everything and define nothing.
func (l *Liveness) useDef(in isa.Instr, exitLive RegMask) (use, def RegMask) {
	switch {
	case in.Op == isa.OpCall:
		use = regBit(isa.SP)
		if g := l.calleeOf(in); g != nil {
			use |= g.mayUse
			def = g.mustDef
		} else {
			use = maskAll
		}
		return use, def
	case in.Op == isa.OpCallr:
		return maskAll, 0
	case in.Op == isa.OpRet:
		return regBit(isa.SP) | exitLive, 0
	case isSysExit(in):
		return regBit(0), 0 // exit/abort read only the status in r0
	case in.Op.IsSyscall():
		// The kernel reads up to r0-r3 depending on the syscall number
		// and writes results through pointers or (sometimes) r0; with no
		// per-syscall model, defining nothing is the sound choice.
		return regBit(0) | regBit(1) | regBit(2) | regBit(3), 0
	}
	for _, r := range in.SrcGPRs() {
		use |= regBit(r)
	}
	for _, r := range in.DstGPRs() {
		def |= regBit(r)
	}
	if in.Op.ReadsFlags() {
		use |= 1 << FlagsBit
	}
	if in.Op.WritesFlags() {
		def |= 1 << FlagsBit
	}
	return use, def
}

func (l *Liveness) calleeOf(in isa.Instr) *funcLive {
	if g := l.Prog.funcAt(uint32(in.Imm)); g != nil {
		return l.funcs[g.Sym.Name]
	}
	return nil
}

// intra runs the backward liveness fixpoint over one function with the
// given liveness at returns.  It yields per-instruction live-in masks
// and, per callee, the union of live-out masks at its call sites.
func (l *Liveness) intra(fl *funcLive, exitLive RegMask) ([]RegMask, map[string]RegMask) {
	f := fl.f
	liveIn := make([]RegMask, len(f.Instrs))
	if len(f.Blocks) == 0 {
		return liveIn, nil
	}
	blockIn := make([]RegMask, len(f.Blocks))
	for changed := true; changed; {
		changed = false
		for bi := len(f.Blocks) - 1; bi >= 0; bi-- {
			b := &f.Blocks[bi]
			var out RegMask
			for _, s := range b.Succs {
				out |= blockIn[s]
			}
			for i := b.End - 1; i >= b.Start; i-- {
				use, def := l.useDef(f.Instrs[i], exitLive)
				out = (out &^ def) | use
				liveIn[i] = out
			}
			if blockIn[bi] != out {
				blockIn[bi] = out
				changed = true
			}
		}
	}
	callOuts := make(map[string]RegMask)
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if b.term != termCall || b.callee == "" {
			continue
		}
		var out RegMask
		for _, s := range b.Succs {
			out |= blockIn[s]
		}
		callOuts[b.callee] |= out
	}
	return liveIn, callOuts
}

// intraMustDef runs the forward must-define pass: which registers are
// overwritten on every path from entry to every return.
func (l *Liveness) intraMustDef(fl *funcLive) RegMask {
	f := fl.f
	if len(f.Blocks) == 0 {
		return 0
	}
	defIn := make([]RegMask, len(f.Blocks))
	seen := make([]bool, len(f.Blocks))
	for i := range defIn {
		defIn[i] = maskAll // top: refined by intersection at joins
	}
	defIn[0], seen[0] = 0, true
	atRet := maskAll
	sawRet := false
	for changed := true; changed; {
		changed = false
		for bi := range f.Blocks {
			if !seen[bi] {
				continue
			}
			b := &f.Blocks[bi]
			defs := defIn[bi]
			for i := b.Start; i < b.End; i++ {
				_, def := l.useDef(f.Instrs[i], 0)
				defs |= def
			}
			if b.term == termRet {
				if !sawRet || atRet&defs != atRet {
					atRet &= defs
					sawRet = true
					changed = true
				}
			}
			for _, s := range b.Succs {
				if !seen[s] {
					seen[s], defIn[s] = true, defs
					changed = true
				} else if defIn[s]&defs != defIn[s] {
					defIn[s] &= defs
					changed = true
				}
			}
		}
	}
	if !sawRet {
		return 0 // noreturn: callers never observe its defines
	}
	return atRet &^ (regBit(isa.FP) | regBit(isa.SP))
}

// fpAnalysis computes per-function FP-stack summaries bottom-up, then
// validates absolute entry depths top-down from the entry point.  A
// function that pops more values than it pushed ("over-pop") shows up as
// fpNeed > 0, flagged when no caller provides that depth.
func (l *Liveness) fpAnalysis() {
	for changed := true; changed; {
		changed = false
		for _, f := range l.Prog.Funcs {
			fl := l.funcs[f.Sym.Name]
			need, rise, delta, _, _ := l.fpIntra(fl, false)
			if need != fl.fpNeed || rise != fl.fpRise || delta != fl.fpDelta {
				fl.fpNeed, fl.fpRise, fl.fpDelta = need, rise, delta
				changed = true
			}
		}
	}
	for _, f := range l.Prog.Funcs {
		fl := l.funcs[f.Sym.Name]
		_, _, _, depthIn, findings := l.fpIntra(fl, true)
		fl.fpDepthIn = depthIn
		l.Findings = append(l.Findings, findings...)
	}

	// Absolute entry-depth intervals, walked over the call graph.  The
	// interval is clamped to [0, NumFPReg+1], so the widening terminates
	// even on recursive cycles.
	type interval struct{ lo, hi int }
	depths := make(map[string]interval)
	entry := l.Prog.funcAt(l.Prog.Image.Entry)
	if entry != nil {
		depths[entry.Sym.Name] = interval{0, 0}
	}
	clamp := func(d int) int {
		if d < 0 {
			return 0
		}
		if d > isa.NumFPReg+1 {
			return isa.NumFPReg + 1
		}
		return d
	}
	for changed := true; changed; {
		changed = false
		for _, f := range l.Prog.Funcs {
			iv, ok := depths[f.Sym.Name]
			if !ok {
				continue
			}
			fl := l.funcs[f.Sym.Name]
			for bi := range f.Blocks {
				b := &f.Blocks[bi]
				if b.term != termCall || b.callee == "" || !f.reach[b.Start] {
					continue
				}
				g := l.funcs[b.callee]
				if g == nil {
					continue
				}
				d := l.fpDepthAt(fl, bi)
				callee := interval{clamp(iv.lo + d), clamp(iv.hi + d)}
				if cur, ok := depths[b.callee]; ok {
					if cur.lo < callee.lo {
						callee.lo = cur.lo
					}
					if cur.hi > callee.hi {
						callee.hi = cur.hi
					}
					if callee == cur {
						continue
					}
				}
				depths[b.callee] = callee
				changed = true
			}
		}
	}
	for _, f := range l.Prog.Funcs {
		fl := l.funcs[f.Sym.Name]
		iv, known := depths[f.Sym.Name]
		if !known {
			iv = interval{0, 0} // never called: judge as if entered fresh
		}
		if iv.lo < fl.fpNeed {
			l.Findings = append(l.Findings, Finding{
				Pass: "fpstack", Func: f.Sym.Name, Addr: f.Sym.Addr,
				Msg: fmt.Sprintf("FP stack underflow: needs %d value(s) on entry, callers provide as few as %d", fl.fpNeed, iv.lo),
			})
		}
		if iv.hi+fl.fpRise > isa.NumFPReg {
			l.Findings = append(l.Findings, Finding{
				Pass: "fpstack", Func: f.Sym.Name, Addr: f.Sym.Addr,
				Msg: fmt.Sprintf("FP stack overflow: depth reaches %d, register file holds %d", iv.hi+fl.fpRise, isa.NumFPReg),
			})
		}
	}
}

// fpDepthAt returns the relative FP depth at the end of block bi (i.e.
// at its call instruction, for termCall blocks), re-simulating from the
// recorded block-entry depth.
func (l *Liveness) fpDepthAt(fl *funcLive, bi int) int {
	f := fl.f
	depth := 0
	if bi < len(fl.fpDepthIn) {
		depth = fl.fpDepthIn[bi]
	}
	b := &f.Blocks[bi]
	for i := b.Start; i < b.End-1; i++ {
		depth += l.fpDeltaOf(f.Instrs[i])
	}
	return depth
}

func (l *Liveness) fpDeltaOf(in isa.Instr) int {
	if in.Op == isa.OpCall {
		if g := l.calleeOf(in); g != nil {
			return g.fpDelta
		}
		return 0
	}
	_, delta := in.FPEffect()
	return delta
}

// fpIntra runs the forward FP-depth walk over one function, using the
// current callee summaries.  It returns the function's need/rise/delta
// summary, the per-block entry depths, and (when report is set) the
// depth-consistency findings.
func (l *Liveness) fpIntra(fl *funcLive, report bool) (need, rise, delta int, depthAt []int, findings []Finding) {
	f := fl.f
	if len(f.Blocks) == 0 {
		return 0, 0, 0, nil, nil
	}
	bad := func(i int, format string, args ...interface{}) {
		if report {
			findings = append(findings, Finding{
				Pass: "fpstack", Func: f.Sym.Name, Addr: f.Addr(i), Msg: fmt.Sprintf(format, args...),
			})
		}
	}
	depthIn := make([]int, len(f.Blocks))
	visited := make([]bool, len(f.Blocks))
	joined := make([]bool, len(f.Blocks))
	visited[0] = true
	work := []int{0}
	retDepth, sawRet := 0, false
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		depth := depthIn[bi]
		b := &f.Blocks[bi]
		for i := b.Start; i < b.End; i++ {
			in := f.Instrs[i]
			if !in.Op.Valid() {
				break
			}
			if in.Op == isa.OpCall {
				if g := l.calleeOf(in); g != nil {
					if n := g.fpNeed - depth; n > need {
						need = n
					}
					if r := depth + g.fpRise; r > rise {
						rise = r
					}
					depth += g.fpDelta
				}
				continue
			}
			min, d := in.FPEffect()
			if n := min - depth; n > need {
				need = n
			}
			depth += d
			if depth > rise {
				rise = depth
			}
			if in.Op == isa.OpRet {
				if sawRet && depth != retDepth {
					bad(i, "inconsistent FP stack depth at returns (%+d here vs %+d elsewhere)", depth, retDepth)
				}
				retDepth, sawRet = depth, true
			}
		}
		for _, s := range b.Succs {
			if !visited[s] {
				visited[s] = true
				depthIn[s] = depth
				work = append(work, s)
			} else if depthIn[s] != depth && !joined[s] {
				joined[s] = true
				bad(f.Blocks[s].Start, "inconsistent FP stack depth at join (%+d vs %+d)", depthIn[s], depth)
			}
		}
	}
	if sawRet {
		delta = retDepth
	}
	return need, rise, delta, depthIn, findings
}
