package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/report"
	"mpifault/internal/telemetry"
)

// fakeClock is an injectable Config.Now for the lease-lifecycle tests:
// expiry becomes a deterministic Advance call instead of a sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// The synthetic campaign the protocol tests run: wavetoy, two regions,
// four injections each.  No experiments actually execute — the "workers"
// upload hand-built segments — but the header must describe a real app
// because Submit validates the spec.
const (
	testSeed       = 7
	testInjections = 4
)

var testRegions = []core.Region{core.RegionRegularReg, core.RegionMessage}

func testRanks(t *testing.T) int {
	t.Helper()
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	return a.Default.Ranks
}

func testSpec(leaseSize int, ttl time.Duration) Spec {
	return Spec{
		App:            "wavetoy",
		Injections:     testInjections,
		Seed:           testSeed,
		Regions:        []string{"reg", "message"},
		LeaseSize:      leaseSize,
		LeaseTTLMillis: ttl.Milliseconds(),
	}
}

func testHeader(t *testing.T) report.JournalHeader {
	t.Helper()
	return report.CampaignHeader("wavetoy", core.Config{
		Ranks:      testRanks(t),
		Injections: testInjections,
		Regions:    testRegions,
		Seed:       testSeed,
	})
}

// testExperiment fabricates the deterministic outcome of global plan
// entry g: the same g always yields the same record, mimicking the
// derived-stream determinism the duplicate resolution relies on.
func testExperiment(g int) core.Experiment {
	plan := core.Plan{Regions: testRegions, Injections: testInjections}
	pe := plan.Entry(g)
	outcomes := []classify.Outcome{classify.Correct, classify.Crash, classify.Hang, classify.Incorrect}
	return core.Experiment{
		Region:  pe.Region,
		Index:   pe.Index,
		Rank:    g % 2,
		Trigger: uint64(100 + g),
		Desc:    fmt.Sprintf("rax bit %d", g%64),
		Outcome: outcomes[g%len(outcomes)],
	}
}

// segmentBytes renders a journal segment exactly as a worker would:
// header line plus one line per experiment.
func segmentBytes(t *testing.T, h report.JournalHeader, exps []core.Experiment) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(h); err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		if err := enc.Encode(report.EntryFromExperiment(e)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func expectedCSV(t *testing.T) []byte {
	t.Helper()
	plan := core.Plan{Regions: testRegions, Injections: testInjections}
	exps := make([]core.Experiment, plan.Total())
	for g := range exps {
		exps[g] = testExperiment(g)
	}
	res := &core.Result{
		Tallies:      core.TallyExperiments(testRegions, exps),
		Experiments:  exps,
		Unclassified: core.CountUnapplied(exps),
	}
	var buf bytes.Buffer
	report.WriteCampaignCSV(&buf, "wavetoy", res)
	return buf.Bytes()
}

func mustAppend(t *testing.T, co *Coordinator, g leaseGrant, worker string, offset int, chunk []byte) int {
	t.Helper()
	off, err := co.AppendSegment(g.Lease, g.Gen, worker, offset, chunk)
	if err != nil {
		t.Fatalf("append lease %d gen %d offset %d: %v", g.Lease, g.Gen, offset, err)
	}
	return off
}

// TestLeaseExpiryStealDuplicates walks the whole steal path: a worker
// uploads half its lease and dies; the sweep keeps the intact lines and
// re-queues the lease; the thief re-runs it and its overlapping results
// resolve as duplicates; the final CSV is the single-process bytes.
func TestLeaseExpiryStealDuplicates(t *testing.T) {
	clk := newFakeClock()
	co := New(Config{Metrics: telemetry.New(), Now: clk.Now})
	if err := co.Submit(testSpec(4, time.Second)); err != nil {
		t.Fatal(err)
	}
	h := testHeader(t)

	g1, ok, err := co.Acquire("w1")
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if g1.Lease != 0 || g1.Start != 0 || g1.End != 4 || g1.Gen != 1 {
		t.Fatalf("unexpected first grant %+v", g1)
	}
	// Half the lease arrives, then w1 goes silent.
	partial := segmentBytes(t, h, []core.Experiment{testExperiment(0), testExperiment(1)})
	mustAppend(t, co, g1, "w1", 0, partial)
	if err := co.Renew(g1.Lease, g1.Gen, "w1"); err != nil {
		t.Fatalf("renew before expiry: %v", err)
	}
	clk.Advance(600 * time.Millisecond)
	if err := co.Renew(g1.Lease, g1.Gen, "w1"); err != nil {
		t.Fatalf("renewed lease must stay live: %v", err)
	}
	clk.Advance(1100 * time.Millisecond)

	// w2 arrives after the deadline: the sweep must have ingested the
	// partial segment and re-queued lease 0 behind lease 1.
	g2, ok, err := co.Acquire("w2")
	if err != nil || !ok {
		t.Fatalf("acquire after expiry: ok=%v err=%v", ok, err)
	}
	if g2.Lease != 1 {
		t.Fatalf("expected lease 1 first from the queue, got %d", g2.Lease)
	}
	if st := co.Status(); st.Results != 2 {
		t.Fatalf("partial segment not ingested: %d results", st.Results)
	}
	if err := co.Renew(g1.Lease, g1.Gen, "w1"); err == nil {
		t.Fatal("stale renew of an expired lease must fail")
	}
	if _, err := co.AppendSegment(g1.Lease, g1.Gen, "w1", len(partial), []byte("x\n")); err == nil {
		t.Fatal("stale upload to an expired generation must fail")
	}

	g3, ok, err := co.Acquire("w2")
	if err != nil || !ok {
		t.Fatalf("steal acquire: ok=%v err=%v", ok, err)
	}
	if g3.Lease != 0 || g3.Gen != 2 {
		t.Fatalf("expected stolen lease 0 gen 2, got %+v", g3)
	}
	if st := co.Status(); st.LeasesStolen != 1 {
		t.Fatalf("stolen count = %d, want 1", st.LeasesStolen)
	}

	// The thief re-runs the whole lease: entries 0 and 1 are duplicates
	// and must agree; 2 and 3 are new.
	full0 := segmentBytes(t, h, []core.Experiment{
		testExperiment(0), testExperiment(1), testExperiment(2), testExperiment(3),
	})
	mustAppend(t, co, g3, "w2", 0, full0)
	if err := co.Complete(g3.Lease, g3.Gen, "w2"); err != nil {
		t.Fatalf("complete stolen lease: %v", err)
	}
	full1 := segmentBytes(t, h, []core.Experiment{
		testExperiment(4), testExperiment(5), testExperiment(6), testExperiment(7),
	})
	mustAppend(t, co, g2, "w2", 0, full1)
	if err := co.Complete(g2.Lease, g2.Gen, "w2"); err != nil {
		t.Fatalf("complete lease 1: %v", err)
	}

	st := co.Status()
	if st.State != "complete" || st.Duplicates != 2 || st.Results != 8 {
		t.Fatalf("final status %+v", st)
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("Done channel not closed after completion")
	}
	csv, unclassified, err := co.ResultCSV()
	if err != nil || unclassified != 0 {
		t.Fatalf("ResultCSV: unclassified=%d err=%v", unclassified, err)
	}
	if want := expectedCSV(t); !bytes.Equal(csv, want) {
		t.Fatalf("coordinator CSV differs from single-process bytes:\n--- got\n%s--- want\n%s", csv, want)
	}
}

// TestDuplicateDisagreementFailsCampaign: a stolen lease's re-run must
// reproduce the dead owner's uploaded outcomes bit for bit; a
// disagreement means determinism broke and the campaign fails loudly.
func TestDuplicateDisagreementFailsCampaign(t *testing.T) {
	clk := newFakeClock()
	co := New(Config{Metrics: telemetry.New(), Now: clk.Now})
	if err := co.Submit(testSpec(8, time.Second)); err != nil {
		t.Fatal(err)
	}
	h := testHeader(t)

	g1, ok, err := co.Acquire("w1")
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	all := make([]core.Experiment, 8)
	for g := range all {
		all[g] = testExperiment(g)
	}
	mustAppend(t, co, g1, "w1", 0, segmentBytes(t, h, all))
	clk.Advance(2 * time.Second) // w1 dies without completing

	g2, ok, err := co.Acquire("w2")
	if err != nil || !ok || g2.Gen != 2 {
		t.Fatalf("steal acquire: %+v ok=%v err=%v", g2, ok, err)
	}
	flipped := make([]core.Experiment, len(all))
	copy(flipped, all)
	flipped[3].Outcome = classify.MPIDetected // disagrees with w1's upload
	mustAppend(t, co, g2, "w2", 0, segmentBytes(t, h, flipped))
	if err := co.Complete(g2.Lease, g2.Gen, "w2"); err == nil {
		t.Fatal("disagreeing duplicate must fail completion")
	}
	st := co.Status()
	if st.State != "failed" || !strings.Contains(st.Error, "not deterministic") {
		t.Fatalf("status after disagreement: %+v", st)
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("Done channel not closed on failure")
	}
	if _, _, err := co.Acquire("w3"); err == nil {
		t.Fatal("acquire on a failed campaign must error so workers exit")
	}
}

// TestSegmentResume: chunks address exact byte offsets, so a chunk cut
// anywhere — even mid-line — resumes where it left off, and a replayed
// chunk is rejected with the authoritative offset instead of corrupting
// the segment.
func TestSegmentResume(t *testing.T) {
	co := New(Config{Metrics: telemetry.New(), Now: newFakeClock().Now})
	if err := co.Submit(testSpec(8, time.Minute)); err != nil {
		t.Fatal(err)
	}
	all := make([]core.Experiment, 8)
	for g := range all {
		all[g] = testExperiment(g)
	}
	full := segmentBytes(t, testHeader(t), all)

	g1, ok, err := co.Acquire("w1")
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	cut := len(full)/2 + 3 // deliberately mid-line
	if off := mustAppend(t, co, g1, "w1", 0, full[:cut]); off != cut {
		t.Fatalf("first chunk ack offset %d, want %d", off, cut)
	}
	// Replay of the first chunk (lost ack): rejected, current offset returned.
	off, err := co.AppendSegment(g1.Lease, g1.Gen, "w1", 0, full[:cut])
	if err != errOffsetMismatch || off != cut {
		t.Fatalf("replayed chunk: off=%d err=%v", off, err)
	}
	// A gap (skipped bytes) is rejected the same way.
	if _, err := co.AppendSegment(g1.Lease, g1.Gen, "w1", cut+5, full[cut:]); err != errOffsetMismatch {
		t.Fatalf("gapped chunk: err=%v", err)
	}
	if off, err := co.SegmentOffset(g1.Lease, g1.Gen); err != nil || off != cut {
		t.Fatalf("SegmentOffset=%d err=%v, want %d", off, err, cut)
	}
	if off := mustAppend(t, co, g1, "w1", cut, full[cut:]); off != len(full) {
		t.Fatalf("resume ack offset %d, want %d", off, len(full))
	}
	if err := co.Complete(g1.Lease, g1.Gen, "w1"); err != nil {
		t.Fatalf("complete: %v", err)
	}
	csv, _, err := co.ResultCSV()
	if err != nil {
		t.Fatal(err)
	}
	if want := expectedCSV(t); !bytes.Equal(csv, want) {
		t.Fatal("resumed segment produced different CSV bytes")
	}
}

// TestIncompleteSegmentRequeues: completing a lease whose segment misses
// entries returns it to the queue instead of losing the range.
func TestIncompleteSegmentRequeues(t *testing.T) {
	clk := newFakeClock()
	co := New(Config{Metrics: telemetry.New(), Now: clk.Now})
	if err := co.Submit(testSpec(8, time.Minute)); err != nil {
		t.Fatal(err)
	}
	g1, ok, err := co.Acquire("w1")
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	short := segmentBytes(t, testHeader(t), []core.Experiment{testExperiment(0)})
	mustAppend(t, co, g1, "w1", 0, short)
	if err := co.Complete(g1.Lease, g1.Gen, "w1"); err == nil {
		t.Fatal("complete with a short segment must fail")
	}
	g2, ok, err := co.Acquire("w2")
	if err != nil || !ok || g2.Lease != 0 || g2.Gen != 2 {
		t.Fatalf("requeued lease not re-granted: %+v ok=%v err=%v", g2, ok, err)
	}
	if st := co.Status(); st.LeasesStolen != 1 {
		t.Fatalf("requeue-after-bad-complete should count as stolen, status %+v", st)
	}
}

// TestWorkerJoinsAfterQueueDrains: an empty queue is a "poll again"
// answer, not campaign end — the late worker inherits expired leases.
func TestWorkerJoinsAfterQueueDrains(t *testing.T) {
	clk := newFakeClock()
	co := New(Config{Metrics: telemetry.New(), Now: clk.Now})
	if err := co.Submit(testSpec(8, time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := co.Acquire("w1"); err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	// The queue is drained but the campaign is live: w2 must be told to
	// poll (no grant, no error).
	if _, ok, err := co.Acquire("w2"); ok || err != nil {
		t.Fatalf("drained queue: ok=%v err=%v, want poll-again", ok, err)
	}
	clk.Advance(2 * time.Second)
	g, ok, err := co.Acquire("w2")
	if err != nil || !ok || g.Lease != 0 || g.Gen != 2 {
		t.Fatalf("late worker did not inherit the expired lease: %+v ok=%v err=%v", g, ok, err)
	}
}

// TestRepeatedFailuresFailCampaign: a deterministically unrunnable lease
// must surface as campaign failure, not retry forever.
func TestRepeatedFailuresFailCampaign(t *testing.T) {
	co := New(Config{Metrics: telemetry.New(), Now: newFakeClock().Now, MaxLeaseFailures: 3})
	if err := co.Submit(testSpec(8, time.Minute)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		g, ok, err := co.Acquire("w1")
		if err != nil {
			break
		}
		if !ok {
			t.Fatalf("round %d: no lease", i)
		}
		if err := co.Fail(g.Lease, g.Gen, "w1", "image build exploded"); err != nil {
			t.Fatalf("fail: %v", err)
		}
	}
	st := co.Status()
	if st.State != "failed" || !strings.Contains(st.Error, "image build exploded") {
		t.Fatalf("status after repeated failures: %+v", st)
	}
}

// TestHandlerProtocol drives the HTTP surface end to end with hand-built
// segments: submit, acquire, renew fencing, offset negotiation over the
// wire, completion, and the status/result/metrics documents.
func TestHandlerProtocol(t *testing.T) {
	co := New(Config{Metrics: telemetry.New(), Now: newFakeClock().Now})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	postJSON := func(path string, body any) *http.Response {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Before submission: /status says waiting, acquire says poll again.
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != "waiting" {
		t.Fatalf("pre-submission state %q", st.State)
	}
	resp = postJSON("/api/lease/acquire", map[string]string{"worker": "w1"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("acquire before campaign: %s", resp.Status)
	}

	resp = postJSON("/api/campaign", testSpec(8, time.Minute))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	resp = postJSON("/api/campaign", testSpec(8, time.Minute))
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second submit must 409, got %s", resp.Status)
	}

	resp = postJSON("/api/lease/acquire", map[string]string{"worker": "w1"})
	var grant leaseGrant
	if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || grant.End != 8 || grant.Spec.App != "wavetoy" {
		t.Fatalf("grant %+v (%s)", grant, resp.Status)
	}
	if len(grant.Spec.Regions) != 2 {
		t.Fatalf("grant spec regions %v, want the normalized short names", grant.Spec.Regions)
	}

	// Renew with a stale generation is a 409.
	resp = postJSON("/api/lease/renew", map[string]any{"worker": "w1", "lease": grant.Lease, "gen": grant.Gen + 7})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale renew: %s", resp.Status)
	}

	all := make([]core.Experiment, 8)
	for g := range all {
		all[g] = testExperiment(g)
	}
	full := segmentBytes(t, testHeader(t), all)
	cut := len(full) / 3

	segURL := func(offset int) string {
		return fmt.Sprintf("%s/api/segment?lease=%d&gen=%d&worker=w1&offset=%d", srv.URL, grant.Lease, grant.Gen, offset)
	}
	resp, err = http.Post(segURL(0), "application/jsonl", bytes.NewReader(full[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first chunk: %s", resp.Status)
	}
	// Wrong offset: 409 carrying the authoritative offset.
	resp, err = http.Post(segURL(0), "application/jsonl", bytes.NewReader(full[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replayed chunk: %s", resp.Status)
	}
	var cur struct {
		Offset int `json:"offset"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cur.Offset != cut {
		t.Fatalf("409 offset %d, want %d", cur.Offset, cut)
	}
	// GET resyncs the same way, then the upload resumes.
	resp, err = http.Get(fmt.Sprintf("%s/api/segment?lease=%d&gen=%d", srv.URL, grant.Lease, grant.Gen))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cur.Offset != cut {
		t.Fatalf("GET offset %d, want %d", cur.Offset, cut)
	}
	resp, err = http.Post(segURL(cut), "application/jsonl", bytes.NewReader(full[cut:]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed chunk: %s", resp.Status)
	}

	// /result.csv is a 409 until the campaign completes.
	resp, err = http.Get(srv.URL + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("premature result.csv: %s", resp.Status)
	}

	resp = postJSON("/api/lease/complete", map[string]any{"worker": "w1", "lease": grant.Lease, "gen": grant.Gen})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("complete: %s", resp.Status)
	}
	resp = postJSON("/api/lease/acquire", map[string]string{"worker": "w2"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("acquire after completion must 410, got %s", resp.Status)
	}

	resp, err = http.Get(srv.URL + "/result.csv")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body.Bytes(), expectedCSV(t)) {
		t.Fatalf("result.csv (%s) differs from single-process bytes", resp.Status)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body.Reset()
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{telemetry.MetricCoordResults, telemetry.MetricCoordLeasesCompleted, "mpifault_coord_worker_results_total"} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body.String())
		}
	}
}

// TestHeartbeatRenewalRace hammers the coordinator's mutating endpoints
// from many goroutines with a real clock and a tiny TTL, so renewals,
// expiry sweeps, uploads and steals interleave — the -race build is the
// assertion.
func TestHeartbeatRenewalRace(t *testing.T) {
	co := New(Config{Metrics: telemetry.New()})
	spec := testSpec(1, 20*time.Millisecond) // 8 one-entry leases, aggressive expiry
	if err := co.Submit(spec); err != nil {
		t.Fatal(err)
	}
	h := testHeader(t)

	deadline := time.Now().Add(400 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				g, ok, err := co.Acquire(name)
				if err != nil {
					return // campaign finished or failed; both fine here
				}
				if !ok {
					time.Sleep(time.Millisecond)
					continue
				}
				seg := segmentBytes(t, h, []core.Experiment{testExperiment(g.Start)})
				for off := 0; off < len(seg); off += 16 {
					end := off + 16
					if end > len(seg) {
						end = len(seg)
					}
					co.Renew(g.Lease, g.Gen, name)
					if _, err := co.AppendSegment(g.Lease, g.Gen, name, off, seg[off:end]); err != nil {
						break // lease stolen mid-upload; let it go
					}
				}
				co.Complete(g.Lease, g.Gen, name)
			}
		}(fmt.Sprintf("w%d", i))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			co.Status()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if st := co.Status(); st.State == "failed" {
		t.Fatalf("race hammer failed the campaign: %s", st.Error)
	}
}
