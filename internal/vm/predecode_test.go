package vm

import (
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// predecodeImage links a tiny program with a data word: it bumps the
// word once and exits.
func predecodeImage(t *testing.T) *image.Image {
	t.Helper()
	ab := asm.NewBuilder()
	m := ab.Module("pdt", image.OwnerUser)
	m.DataI32("counter", 41)
	f := m.Func("main")
	f.LdSym(isa.R1, "counter", 0)
	f.Addi(isa.R1, isa.R1, 1)
	f.StSym("counter", 0, isa.R1)
	f.Movi(isa.R0, 0)
	f.Sys(abi.SysExit)
	im, err := ab.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func runToStop(t *testing.T, m *Machine) RunResult {
	t.Helper()
	m.Handler = &testHandler{}
	return m.Run(10_000)
}

// TestPredecodeDirtySlotInvalidation: overwriting a text slot with an
// invalid opcode must take effect on the writing machine — the shared
// predecoded table may not mask the corruption — and must stay invisible
// to a sibling machine on the same image.
func TestPredecodeDirtySlotInvalidation(t *testing.T) {
	im := predecodeImage(t)
	a := New(im)
	b := New(im)
	if a.pre == nil {
		t.Fatal("predecode table not installed")
	}

	// Corrupt the second instruction's opcode byte on machine a only.
	addr := image.TextBase + 1*isa.InstrBytes
	if !a.RawWrite(addr, []byte{0xff}) {
		t.Fatal("text write failed")
	}
	out := runToStop(t, a)
	if out.Trap == nil || out.Trap.Kind != TrapIll {
		t.Fatalf("corrupted machine: got %+v, want SIGILL", out.Trap)
	}
	if out.Trap.PC != addr {
		t.Fatalf("SIGILL at %08x, want %08x", out.Trap.PC, addr)
	}

	out = runToStop(t, b)
	if out.Trap == nil || out.Trap.Kind != TrapExit {
		t.Fatalf("sibling machine: got %+v, want clean exit", out.Trap)
	}
}

// TestCOWSegmentIsolation: a data store on one machine must not leak into
// a sibling machine or back into the image bytes both were loaded from.
func TestCOWSegmentIsolation(t *testing.T) {
	im := predecodeImage(t)
	sym, ok := im.Lookup("counter")
	if !ok {
		t.Fatal("no counter symbol")
	}
	imgByte := im.Data[sym.Addr-im.DataBase]

	a := New(im)
	if out := runToStop(t, a); out.Trap == nil || out.Trap.Kind != TrapExit {
		t.Fatalf("run: %+v", out.Trap)
	}
	got, trap := a.Load32(sym.Addr)
	if trap != nil || got != 42 {
		t.Fatalf("machine a counter = %d (%v), want 42", got, trap)
	}

	// The write must have gone to a private copy.
	if im.Data[sym.Addr-im.DataBase] != imgByte {
		t.Fatal("store leaked into the shared image data")
	}
	b := New(im)
	if got, trap := b.Load32(sym.Addr); trap != nil || got != 41 {
		t.Fatalf("sibling machine counter = %d (%v), want untouched 41", got, trap)
	}
}

// TestMisalignedPCFallback: a PC that is not a multiple of the slot size
// (reachable after a PC bit flip) must behave identically with and
// without the predecode table.
func TestMisalignedPCFallback(t *testing.T) {
	im := predecodeImage(t)
	run := func(disable bool) RunResult {
		m := New(im)
		if disable {
			m.pre = nil
		}
		m.PC = im.Entry + 3 // mid-slot: decodes a garbage byte window
		return runToStop(t, m)
	}
	pre, raw := run(false), run(true)
	if pre.Reason != raw.Reason {
		t.Fatalf("stop reason %v predecoded vs %v byte-decoded", pre.Reason, raw.Reason)
	}
	pk, rk := "none", "none"
	var pp, rp uint32
	if pre.Trap != nil {
		pk, pp = pre.Trap.Kind.String(), pre.Trap.PC
	}
	if raw.Trap != nil {
		rk, rp = raw.Trap.Kind.String(), raw.Trap.PC
	}
	if pk != rk || pp != rp {
		t.Fatalf("trap %s@%08x predecoded vs %s@%08x byte-decoded", pk, pp, rk, rp)
	}
}

// TestLazySegmentReadsZero: unbacked heap and stack memory must read as
// zeros, exactly like the eagerly zero-filled segments they replaced.
func TestLazySegmentReadsZero(t *testing.T) {
	im := predecodeImage(t)
	m := New(im)
	for _, addr := range []uint32{im.HeapBase, im.HeapBase + 12345, im.StackBase() + 64} {
		v, trap := m.Load32(addr)
		if trap != nil {
			t.Fatalf("load %08x: %+v", addr, trap)
		}
		if v != 0 {
			t.Fatalf("fresh memory at %08x reads %d, want 0", addr, v)
		}
	}
	// A write materializes only its own segment and survives readback.
	if trap := m.Store32(im.HeapBase+8, 0xdeadbeef); trap != nil {
		t.Fatalf("store: %+v", trap)
	}
	if v, _ := m.Load32(im.HeapBase + 8); v != 0xdeadbeef {
		t.Fatalf("heap readback = %#x", v)
	}
	if v, _ := m.Load32(im.HeapBase + 12345); v != 0 {
		t.Fatalf("neighbouring heap word dirtied: %#x", v)
	}
}
