package core

import (
	"fmt"
	"sort"
	"strings"

	"mpifault/internal/classify"
	"mpifault/internal/isa"
	"mpifault/internal/rng"
	"mpifault/internal/vm"
)

// This file wires the dataflow equivalence partition (see
// internal/analysis/equivalence.go) into the campaign: pilot sampling
// over the non-benign bits, Horvitz–Thompson reweighting of the tallies
// back to unbiased full-space rates, and the validator that checks every
// static claim against campaign ground truth.  Like LivenessMap, the
// EquivalenceMap interface uses only primitive types so that core never
// imports the analysis package.

// EquivalenceMap supplies the per-PC partition of the 320-bit register
// target space from a static analysis.  benignMask marks fully-benign
// targets (bits 0..NumGPR-1 the GPRs, bit NumGPR the flags word; a
// non-benign flags word still has only its flagsReadableBits low bits
// consequential).  classIDs gives each target's equivalence-class
// identity (0..7 the GPRs, 8 the PC, 9 the flags word) — nonzero for
// every non-benign target, equal across sites whose corruption provably
// flows into the same first use.  StaticBenignAt reports whether a
// data/BSS address lies in a symbol the analysis claims unreferenced.
type EquivalenceMap interface {
	PartitionAt(pc uint32) (benignMask uint16, classIDs [10]uint64, ok bool)
	StaticBenignAt(addr uint32) bool
}

// EquivalencePolicy selects how a register-fault campaign uses an
// EquivalenceMap.
type EquivalencePolicy int

const (
	// EquivOff ignores the map.
	EquivOff EquivalencePolicy = iota
	// EquivAnnotate samples the full space exactly like the undirected
	// baseline — same random draws, same flips, byte-identical outcomes —
	// but stamps each experiment with its class ID and the benign-bit count,
	// turning a full campaign into ground truth the validator can hold
	// against the static claims.
	EquivAnnotate
	// EquivPrune samples only non-benign bits; ReweightTallies restores
	// unbiased full-space rates by crediting the skipped benign mass to
	// Correct.  This is the campaign accelerator.
	EquivPrune
	// EquivAudit samples only provably-benign bits; every outcome must
	// classify Correct, making it the soundness gate for the partition
	// (the equivalence counterpart of LiveTargetDead).
	EquivAudit
)

func (p EquivalencePolicy) String() string {
	switch p {
	case EquivAnnotate:
		return "annotate"
	case EquivPrune:
		return "prune"
	case EquivAudit:
		return "audit"
	default:
		return "off"
	}
}

// ParseEquivalencePolicy resolves the CLI spelling of a policy.
func ParseEquivalencePolicy(s string) (EquivalencePolicy, error) {
	switch s {
	case "", "off":
		return EquivOff, nil
	case "annotate":
		return EquivAnnotate, nil
	case "prune":
		return EquivPrune, nil
	case "audit":
		return EquivAudit, nil
	}
	return 0, fmt.Errorf("core: unknown equivalence policy %q (want annotate, prune or audit)", s)
}

// benignBitsOf counts the provably-benign bits a partition mask claims
// out of the RegisterSpaceBits space: 32 per benign GPR, and either the
// whole flags word or its 28 never-read high bits.
func benignBitsOf(mask uint16) int {
	n := 0
	for g := 0; g < isa.NumGPR; g++ {
		if mask&(1<<g) != 0 {
			n += 32
		}
	}
	if mask&(1<<isa.NumGPR) != 0 {
		n += 32
	} else {
		n += 32 - flagsReadableBits
	}
	return n
}

// bitIsBenign reports whether one (target, bit) point of the register
// space is benign under the mask.
func bitIsBenign(mask uint16, target int, bit uint) bool {
	switch {
	case target < isa.NumGPR:
		return mask&(1<<target) != 0
	case target == isa.NumGPR: // PC is never benign
		return false
	default:
		if mask&(1<<isa.NumGPR) != 0 {
			return true
		}
		return bit >= flagsReadableBits
	}
}

// ApplyRegisterFaultEquiv flips one register-context bit according to
// the equivalence policy at the machine's current PC.  It returns the
// flip description, the flipped bit's class ID (0 when the bit is
// benign or the site unpartitioned), the partition's benign-bit count at
// the site, and the candidate-set size sampled from.  When the map has
// no answer for the PC it falls back to the undirected baseline with
// (classID, benignBits) = (0, 0) — "unannotated".
func ApplyRegisterFaultEquiv(m *vm.Machine, r *rng.Rand, em EquivalenceMap, policy EquivalencePolicy) (desc string, classID uint64, benignBits, candidates int) {
	mask, ids, ok := em.PartitionAt(m.PC)
	switch policy {
	case EquivAnnotate:
		// Exactly the baseline's draws, so a fixed seed yields
		// byte-identical flips and outcomes; only the annotation differs.
		target := r.Intn(10)
		bit := uint(r.Intn(32))
		desc = flipRegisterBit(m, target, bit)
		if !ok {
			return desc, 0, 0, RegisterSpaceBits
		}
		b := benignBitsOf(mask)
		if bitIsBenign(mask, target, bit) {
			return desc, 0, b, RegisterSpaceBits
		}
		return desc, ids[target], b, RegisterSpaceBits

	case EquivPrune:
		if !ok {
			return ApplyRegisterFault(m, r), 0, 0, RegisterSpaceBits
		}
		b := benignBitsOf(mask)
		type span struct {
			target, bits int
			offset       uint
			id           uint64
		}
		var spans []span
		for g := 0; g < isa.NumGPR; g++ {
			if mask&(1<<g) == 0 {
				spans = append(spans, span{g, 32, 0, ids[g]})
			}
		}
		spans = append(spans, span{isa.NumGPR, 32, 0, ids[8]})
		if mask&(1<<isa.NumGPR) == 0 {
			spans = append(spans, span{isa.NumGPR + 1, flagsReadableBits, 0, ids[9]})
		}
		n := 0
		for _, s := range spans {
			n += s.bits
		}
		pick := r.Intn(n)
		for _, s := range spans {
			if pick >= s.bits {
				pick -= s.bits
				continue
			}
			bit := uint(pick) + s.offset
			return flipRegisterBit(m, s.target, bit) + " [equiv]", s.id, b, n
		}
		panic("core: equivalence pick out of range")

	case EquivAudit:
		if !ok {
			// No partition, no claim to audit; skip the flip.  The desc is
			// deliberately not one of the Unapplied sentinels: the run
			// still classifies (necessarily Correct), mirroring the empty
			// candidate set of the dead-directed policy.
			return fmt.Sprintf("no partition at pc %#x", m.PC), 0, 0, 0
		}
		b := benignBitsOf(mask)
		type span struct {
			target, bits int
			offset       uint
		}
		var spans []span
		for g := 0; g < isa.NumGPR; g++ {
			if mask&(1<<g) != 0 {
				spans = append(spans, span{g, 32, 0})
			}
		}
		if mask&(1<<isa.NumGPR) != 0 {
			spans = append(spans, span{isa.NumGPR + 1, 32, 0})
		} else {
			spans = append(spans, span{isa.NumGPR + 1, 32 - flagsReadableBits, flagsReadableBits})
		}
		n := 0
		for _, s := range spans {
			n += s.bits
		}
		if n == 0 {
			return fmt.Sprintf("no benign bits at pc %#x", m.PC), 0, 0, 0
		}
		pick := r.Intn(n)
		for _, s := range spans {
			if pick >= s.bits {
				pick -= s.bits
				continue
			}
			bit := uint(pick) + s.offset
			return flipRegisterBit(m, s.target, bit) + " [equiv-benign]", 0, b, n
		}
		panic("core: equivalence pick out of range")

	default:
		return ApplyRegisterFault(m, r), 0, 0, RegisterSpaceBits
	}
}

// EquivalenceStats aggregates what the partition did for a campaign.
type EquivalenceStats struct {
	Policy      EquivalencePolicy
	Experiments int    // register-region experiments that consulted the map
	Classes     int    // distinct equivalence classes sampled
	Candidates  uint64 // sum of per-injection candidate bits
	BenignBits  uint64 // sum of per-injection provably-benign bits
	Total       uint64 // sum of per-injection full spaces (320 each)
}

// BenignFraction returns the mean provably-benign share of the space.
func (s *EquivalenceStats) BenignFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.BenignBits) / float64(s.Total)
}

// WeightedTally is a Tally over bit-mass instead of experiment counts:
// the Horvitz–Thompson estimator that undoes pruned sampling.  Each
// full-space experiment contributes RegisterSpaceBits of mass to its
// outcome; a pruned register experiment contributes its candidate mass
// (space minus benign bits) to its outcome and the benign remainder to
// Correct — benign bits were excluded precisely because flipping them
// provably classifies Correct.  All arithmetic is integer, so reweighted
// tables are byte-stable across runs and platforms.
type WeightedTally struct {
	Region      Region
	Experiments int
	Outcomes    [classify.NumOutcomes]uint64
	TotalMass   uint64
}

// Errors returns the manifested bit-mass.
func (t *WeightedTally) Errors() uint64 {
	return t.TotalMass - t.Outcomes[classify.Correct]
}

// ErrorRate returns the estimated full-space manifestation percentage.
func (t *WeightedTally) ErrorRate() float64 {
	if t.TotalMass == 0 {
		return 0
	}
	return 100 * float64(t.Errors()) / float64(t.TotalMass)
}

// ReweightTallies builds the per-region weighted tallies for a
// prune-mode campaign.  For any other policy the reweighting would
// double-count (annotate-mode experiments already sample benign bits),
// so callers gate on EquivPrune.
func ReweightTallies(regions []Region, experiments []Experiment) []WeightedTally {
	out := make([]WeightedTally, 0, len(regions))
	for _, region := range regions {
		t := WeightedTally{Region: region}
		for i := range experiments {
			e := &experiments[i]
			if e.Region != region {
				continue
			}
			t.Experiments++
			if region == RegionRegularReg && e.BenignBits > 0 {
				t.Outcomes[e.Outcome] += uint64(RegisterSpaceBits - e.BenignBits)
				t.Outcomes[classify.Correct] += uint64(e.BenignBits)
			} else {
				t.Outcomes[e.Outcome] += RegisterSpaceBits
			}
			t.TotalMass += RegisterSpaceBits
		}
		out = append(out, t)
	}
	return out
}

// EquivFinding is one campaign observation that contradicts a static
// equivalence claim — by construction an analyzer bug, not noise.
type EquivFinding struct {
	Kind string // "benign-manifested", "class-mixed", "data-benign-manifested"
	ID   string // experiment ID (or the first of the class)
	Msg  string
}

func (f EquivFinding) String() string { return fmt.Sprintf("%s: %s: %s", f.Kind, f.ID, f.Msg) }

// ValidateEquivalence checks finished experiments against the partition:
//
//   - A register experiment whose flipped bit the partition calls benign
//     (audit pilots, and annotate-mode draws that landed on benign bits)
//     must classify Correct.
//   - Register experiments in the same equivalence class that flipped
//     the same bit description must agree on outcome wherever they fired
//     on the same rank — a mixed class breaks the "one pilot stands for
//     all members" contract.
//   - A data/BSS experiment whose address the analysis claims
//     unreferenced must classify Correct.
//
// Findings are sorted for deterministic reports.
func ValidateEquivalence(em EquivalenceMap, experiments []Experiment) []EquivFinding {
	var out []EquivFinding

	type classKey struct {
		rank    int
		classID uint64
		desc    string
	}
	classes := make(map[classKey]map[classify.Outcome]string)

	for i := range experiments {
		e := &experiments[i]
		switch e.Region {
		case RegionRegularReg:
			benignPilot := e.ClassID == 0 && e.BenignBits > 0
			if benignPilot && e.Outcome != classify.Correct {
				out = append(out, EquivFinding{
					Kind: "benign-manifested", ID: e.ID(),
					Msg: fmt.Sprintf("%s at trigger %d rank %d classified %s — a provably-benign bit manifested",
						e.Desc, e.Trigger, e.Rank, e.Outcome),
				})
			}
			if e.ClassID != 0 {
				k := classKey{rank: e.Rank, classID: e.ClassID, desc: baseDesc(e.Desc)}
				if classes[k] == nil {
					classes[k] = make(map[classify.Outcome]string)
				}
				if _, seen := classes[k][e.Outcome]; !seen {
					classes[k][e.Outcome] = e.ID()
				}
			}
		case RegionData, RegionBSS:
			addr, ok := staticFaultAddr(e.Desc)
			if ok && em.StaticBenignAt(addr) && e.Outcome != classify.Correct {
				out = append(out, EquivFinding{
					Kind: "data-benign-manifested", ID: e.ID(),
					Msg: fmt.Sprintf("%s rank %d classified %s — fault in an unreferenced symbol manifested",
						e.Desc, e.Rank, e.Outcome),
				})
			}
		}
	}

	for k, outcomes := range classes {
		if len(outcomes) < 2 {
			continue
		}
		var parts []string
		firstID := ""
		for o, id := range outcomes {
			parts = append(parts, fmt.Sprintf("%s (%s)", o, id))
			if firstID == "" || id < firstID {
				firstID = id
			}
		}
		sort.Strings(parts)
		out = append(out, EquivFinding{
			Kind: "class-mixed", ID: firstID,
			Msg: fmt.Sprintf("class %#x rank %d %q has mixed outcomes: %s",
				k.classID, k.rank, k.desc, strings.Join(parts, ", ")),
		})
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

// baseDesc strips the policy suffix (" [equiv]", " [live-directed]", …)
// so class grouping matches flips across policies.
func baseDesc(desc string) string {
	if i := strings.Index(desc, " ["); i >= 0 {
		return desc[:i]
	}
	return desc
}

// staticFaultAddr parses the address out of an ApplyStaticFault
// description ("Data 0x0001a2b4 bit 3", "BSS 0x…").
func staticFaultAddr(desc string) (uint32, bool) {
	var region string
	var addr uint32
	var bit int
	if _, err := fmt.Sscanf(desc, "%s 0x%08x bit %d", &region, &addr, &bit); err != nil {
		return 0, false
	}
	return addr, true
}
