package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// goldenRegistry builds a registry with one of everything, including a
// labelled counter family, so the golden strings below pin the full
// exposition grammar.
func goldenRegistry() *Registry {
	reg := New()
	reg.Counter("mpifault_experiments_finished_total").Add(3)
	reg.Counter(`mpifault_vm_traps_total{signal="SIGSEGV"}`).Add(2)
	reg.Counter(`mpifault_vm_traps_total{signal="SIGFPE"}`).Inc()
	reg.Gauge("mpifault_experiments_inflight").Set(4)
	h := reg.Histogram("mpifault_crash_latency_instructions", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	reg.Counter(MetricTraceDiffed).Add(5)
	reg.Counter(MetricTraceLocalized).Add(4)
	reg.Counter(MetricTraceUnlocalized).Inc()
	mi := reg.Histogram(MetricTraceDivergenceMsg, TraceMessageBuckets)
	mi.Observe(3)
	mi.Observe(42)
	return reg
}

const goldenPrometheus = `# TYPE mpifault_experiments_finished_total counter
mpifault_experiments_finished_total 3
# TYPE mpifault_trace_diffed_total counter
mpifault_trace_diffed_total 5
# TYPE mpifault_trace_localized_total counter
mpifault_trace_localized_total 4
# TYPE mpifault_trace_unlocalized_total counter
mpifault_trace_unlocalized_total 1
# TYPE mpifault_vm_traps_total counter
mpifault_vm_traps_total{signal="SIGFPE"} 1
mpifault_vm_traps_total{signal="SIGSEGV"} 2
# TYPE mpifault_experiments_inflight gauge
mpifault_experiments_inflight 4
# TYPE mpifault_crash_latency_instructions histogram
mpifault_crash_latency_instructions_bucket{le="10"} 1
mpifault_crash_latency_instructions_bucket{le="100"} 2
mpifault_crash_latency_instructions_bucket{le="+Inf"} 3
mpifault_crash_latency_instructions_sum 555
mpifault_crash_latency_instructions_count 3
# TYPE mpifault_trace_divergence_msg_index histogram
mpifault_trace_divergence_msg_index_bucket{le="1"} 0
mpifault_trace_divergence_msg_index_bucket{le="10"} 1
mpifault_trace_divergence_msg_index_bucket{le="100"} 2
mpifault_trace_divergence_msg_index_bucket{le="1000"} 2
mpifault_trace_divergence_msg_index_bucket{le="10000"} 2
mpifault_trace_divergence_msg_index_bucket{le="+Inf"} 2
mpifault_trace_divergence_msg_index_sum 45
mpifault_trace_divergence_msg_index_count 2
`

const goldenJSON = `{
  "counters": {
    "mpifault_experiments_finished_total": 3,
    "mpifault_trace_diffed_total": 5,
    "mpifault_trace_localized_total": 4,
    "mpifault_trace_unlocalized_total": 1,
    "mpifault_vm_traps_total{signal=\"SIGFPE\"}": 1,
    "mpifault_vm_traps_total{signal=\"SIGSEGV\"}": 2
  },
  "gauges": {
    "mpifault_experiments_inflight": 4
  },
  "histograms": {
    "mpifault_crash_latency_instructions": {
      "bounds": [
        10,
        100
      ],
      "counts": [
        1,
        1,
        1
      ],
      "sum": 555,
      "count": 3
    },
    "mpifault_trace_divergence_msg_index": {
      "bounds": [
        1,
        10,
        100,
        1000,
        10000
      ],
      "counts": [
        0,
        1,
        1,
        0,
        0,
        0
      ],
      "sum": 45,
      "count": 2
    }
  }
}
`

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	goldenRegistry().Snapshot().WritePrometheus(&b)
	if b.String() != goldenPrometheus {
		t.Errorf("Prometheus exposition drifted:\ngot:\n%s\nwant:\n%s", b.String(), goldenPrometheus)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenJSON {
		t.Errorf("JSON exposition drifted:\ngot:\n%s\nwant:\n%s", b.String(), goldenJSON)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()

	get := func(path string) (string, string, int) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type"), resp.StatusCode
	}

	body, ctype, code := get("/metrics")
	if code != http.StatusOK || body != goldenPrometheus {
		t.Errorf("/metrics: status %d body:\n%s", code, body)
	}
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}

	body, ctype, code = get("/metrics.json")
	if code != http.StatusOK || body != goldenJSON {
		t.Errorf("/metrics.json: status %d body:\n%s", code, body)
	}
	if ctype != "application/json" {
		t.Errorf("/metrics.json Content-Type = %q", ctype)
	}

	if _, _, code = get("/"); code != http.StatusOK {
		t.Errorf("/ status = %d", code)
	}
	if _, _, code = get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", code)
	}
}

func TestStatusLine(t *testing.T) {
	reg := New()
	reg.Counter(MetricExperimentsPlanned).Add(800)
	reg.Counter(MetricExperimentsFinished).Add(242)
	reg.Counter(MetricExperimentsResumed).Add(100)
	reg.Counter(OutcomeMetric("Correct")).Add(200)
	reg.Counter(OutcomeMetric("Crash")).Add(31)
	reg.Counter(OutcomeMetric("Hang")).Add(11)
	reg.Counter(OutcomeMetric("MPI Detected")) // zero: must not appear

	got := StatusLine(reg.Snapshot(), 10*time.Second)
	want := "342/800 experiments (42.8%) | 24.2/s | ETA 19s | Correct 200 Crash 31 Hang 11"
	if got != want {
		t.Errorf("status line:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestStatusLineEmpty(t *testing.T) {
	if got := StatusLine(New().Snapshot(), time.Second); got != "0 experiments" {
		t.Errorf("empty status line = %q", got)
	}
}
