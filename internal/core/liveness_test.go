package core

import (
	"strings"
	"testing"
	"time"

	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/classify"
	"mpifault/internal/mpi"
)

// TestDeadBitInjectionsAllCorrect is the soundness regression for the
// static liveness analysis: a campaign restricted to provably-dead
// register bits must never manifest.  A single failure here means the
// analyzer marked a consequential bit dead — exactly the bug class the
// dead policy exists to catch.
func TestDeadBitInjectionsAllCorrect(t *testing.T) {
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	appCfg := a.Default
	appCfg.Ranks, appCfg.Steps, appCfg.Scale = 4, 3, 32
	im, err := a.Build(appCfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.Analyze(im)
	if err != nil {
		t.Fatal(err)
	}
	live := analysis.ComputeLiveness(prog)
	if fs := append(prog.Findings, live.Findings...); len(fs) > 0 {
		t.Fatalf("analysis findings on wavetoy: %v", fs)
	}

	res, err := Run(Config{
		Image:           im,
		Ranks:           appCfg.Ranks,
		MPIConfig:       mpi.Config{},
		Injections:      14,
		Regions:         []Region{RegionRegularReg},
		Seed:            7,
		WallLimit:       30 * time.Second,
		KeepExperiments: true,
		Liveness:        live,
		LivenessPolicy:  LiveTargetDead,
	})
	if err != nil {
		t.Fatal(err)
	}

	directed := 0
	for _, e := range res.Experiments {
		if e.Outcome != classify.Correct {
			t.Errorf("dead-bit flip manifested as %v: %q (trigger %d, rank %d)",
				e.Outcome, e.Desc, e.Trigger, e.Rank)
		}
		if strings.Contains(e.Desc, "[dead-directed]") {
			directed++
			if e.Candidates <= 0 || e.Candidates >= RegisterSpaceBits {
				t.Errorf("experiment %q: candidate set %d not a strict subset of %d",
					e.Desc, e.Candidates, RegisterSpaceBits)
			}
		}
	}
	if directed == 0 {
		t.Fatal("no injection actually consulted the liveness map")
	}

	d := res.Directed
	if d == nil {
		t.Fatal("campaign with Liveness set returned nil DirectedStats")
	}
	if d.Policy != LiveTargetDead || d.Experiments != len(res.Experiments) {
		t.Errorf("DirectedStats = %+v, want dead policy over %d experiments", d, len(res.Experiments))
	}
	if f := d.Fraction(); f <= 0 || f >= 1 {
		t.Errorf("dead-candidate fraction = %.3f, want strictly inside (0,1)", f)
	}
}

// TestLiveDirectedSpeedup checks the acceleration bookkeeping for the
// useful policy: live-only sampling prunes the space, so the reported
// speedup must exceed 1x, and every directed experiment's candidate
// count must stay within the full space.
func TestLiveDirectedSpeedup(t *testing.T) {
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	appCfg := a.Default
	appCfg.Ranks, appCfg.Steps, appCfg.Scale = 4, 3, 32
	im, err := a.Build(appCfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.Analyze(im)
	if err != nil {
		t.Fatal(err)
	}
	live := analysis.ComputeLiveness(prog)

	res, err := Run(Config{
		Image:           im,
		Ranks:           appCfg.Ranks,
		MPIConfig:       mpi.Config{},
		Injections:      10,
		Regions:         []Region{RegionRegularReg},
		Seed:            11,
		WallLimit:       30 * time.Second,
		KeepExperiments: true,
		Liveness:        live,
		LivenessPolicy:  LiveTargetLive,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Directed
	if d == nil || d.Experiments == 0 {
		t.Fatalf("DirectedStats = %+v, want live-directed aggregate", d)
	}
	if s := d.Speedup(); s <= 1 {
		t.Errorf("live-directed speedup = %.2fx, want > 1x", s)
	}
	for _, e := range res.Experiments {
		if e.Candidates <= 0 || e.Candidates > RegisterSpaceBits {
			t.Errorf("experiment %q: candidates = %d outside (0, %d]", e.Desc, e.Candidates, RegisterSpaceBits)
		}
	}
}
