package mpi

import (
	"sort"

	"mpifault/internal/abi"
	"mpifault/internal/vm"
)

// commInfo is the per-rank view of one communicator: its wire context id,
// its group (communicator rank -> world rank) and this process's rank
// within it.  MPI_COMM_WORLD and MPI_COMM_SELF are pre-registered; new
// communicators come from MPI_Comm_split / MPI_Comm_dup.
type commInfo struct {
	handle int32
	ctx    int32
	group  []int32 // comm rank -> world rank
	myRank int32
}

func (ci *commInfo) size() int32 { return int32(len(ci.group)) }

// world maps a communicator rank to a world rank.
func (ci *commInfo) world(r int32) int32 { return ci.group[r] }

// commRankOf maps a world rank back into the communicator (-1 if absent).
func (ci *commInfo) commRankOf(world int32) int32 {
	for i, w := range ci.group {
		if w == world {
			return int32(i)
		}
	}
	return -1
}

// initComms registers the built-in communicators for a rank.
func (p *Proc) initComms() {
	world := make([]int32, p.w.Size)
	for i := range world {
		world[i] = int32(i)
	}
	p.comms = map[int32]*commInfo{
		abi.CommWorld: {handle: abi.CommWorld, ctx: abi.CommWorld,
			group: world, myRank: int32(p.rank)},
		abi.CommSelf: {handle: abi.CommSelf, ctx: abi.CommSelf,
			group: []int32{int32(p.rank)}, myRank: 0},
	}
	p.nextComm = 256
}

// resolveComm validates a guest communicator handle.
func (p *Proc) resolveComm(m *vm.Machine, comm int32) (*commInfo, *vm.Trap) {
	ci, ok := p.comms[comm]
	if !ok {
		return nil, p.apiError(m, abi.ErrComm, "invalid communicator %d", comm)
	}
	return ci, nil
}

// registerComm installs a newly created communicator and returns its
// guest handle.
func (p *Proc) registerComm(ctx int32, group []int32, myRank int32) int32 {
	p.nextComm++
	h := p.nextComm
	p.comms[h] = &commInfo{handle: h, ctx: ctx, group: group, myRank: myRank}
	return h
}

// allocCtx reserves n consecutive wire context ids, globally unique in
// the world.  The caller (the parent communicator's rank 0) broadcasts
// the base to the members so every rank agrees.
func (w *World) allocCtx(n int32) int32 {
	return int32(w.ctxCounter.Add(int64(n))) - n + ctxDynamicBase
}

// ctxDynamicBase keeps dynamically allocated contexts clear of the
// built-in communicator handles and below the internal-context offset.
const ctxDynamicBase = 0x400

// commSplit implements the MPI_Comm_split algorithm: allgather
// (color, key, worldRank) over the parent, group by color, order by
// (key, worldRank), and agree on wire contexts via the parent's rank 0.
// color < 0 (MPI_UNDEFINED) yields no new communicator (handle 0).
func (p *Proc) commSplit(parent *commInfo, color, key int32, m *vm.Machine) (int32, *vm.Trap) {
	type triple struct{ color, key, world int32 }
	mine := triple{color, key, int32(p.rank)}

	// Allgather the triples over the parent communicator.
	buf := make([]byte, 12)
	putI32(buf, mine.color)
	putI32(buf[4:], mine.key)
	putI32(buf[8:], mine.world)
	all, t := p.gatherHost(buf, parent, m)
	if t != nil {
		return 0, t
	}
	full, t := p.bcastHost(all, uint32(12*parent.size()), parent, m)
	if t != nil {
		return 0, t
	}
	triples := make([]triple, parent.size())
	for i := range triples {
		triples[i] = triple{
			color: getI32(full[12*i:]),
			key:   getI32(full[12*i+4:]),
			world: getI32(full[12*i+8:]),
		}
	}

	// Distinct colors in ascending order (MPI_UNDEFINED = negative skipped).
	colorSet := map[int32]bool{}
	for _, tr := range triples {
		if tr.color >= 0 {
			colorSet[tr.color] = true
		}
	}
	colors := make([]int32, 0, len(colorSet))
	for c := range colorSet {
		colors = append(colors, c)
	}
	sort.Slice(colors, func(i, j int) bool { return colors[i] < colors[j] })

	// Parent rank 0 allocates one context per color and broadcasts the
	// base, so all members agree on the wire numbering.
	var base int32
	if parent.myRank == 0 {
		if len(colors) > 0 {
			base = p.w.allocCtx(int32(len(colors)))
		}
	}
	bb := make([]byte, 4)
	putI32(bb, base)
	bb, t = p.bcastHost(bb, 4, parent, m)
	if t != nil {
		return 0, t
	}
	base = getI32(bb)

	if color < 0 {
		return 0, nil // MPI_UNDEFINED: not a member of any new group
	}

	// Build my color's group ordered by (key, world rank).
	var members []triple
	for _, tr := range triples {
		if tr.color == color {
			members = append(members, tr)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].world < members[j].world
	})
	group := make([]int32, len(members))
	myRank := int32(-1)
	for i, tr := range members {
		group[i] = tr.world
		if tr.world == int32(p.rank) {
			myRank = int32(i)
		}
	}
	colorIdx := int32(sort.Search(len(colors), func(i int) bool { return colors[i] >= color }))
	return p.registerComm(base+colorIdx, group, myRank), nil
}

// commDup duplicates a communicator into a fresh context.
func (p *Proc) commDup(parent *commInfo, m *vm.Machine) (int32, *vm.Trap) {
	var base int32
	if parent.myRank == 0 {
		base = p.w.allocCtx(1)
	}
	bb := make([]byte, 4)
	putI32(bb, base)
	bb, t := p.bcastHost(bb, 4, parent, m)
	if t != nil {
		return 0, t
	}
	group := append([]int32(nil), parent.group...)
	return p.registerComm(getI32(bb), group, parent.myRank), nil
}

func putI32(b []byte, v int32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getI32(b []byte) int32 {
	return int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}
