#!/bin/sh
# tier1.sh — the repo's tier-1 gate: formatting, vet, build, the full
# test suite under the race detector, and a clean faultlint run over the
# three guest applications.  Exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== faultlint =="
go run ./cmd/faultlint

echo "== benchmark smoke =="
# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash, without measuring anything.
go test -run '^$' -bench . -benchtime 1x ./...

echo "tier1: OK"
