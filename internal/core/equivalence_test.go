package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/classify"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/mpi"
	"mpifault/internal/rng"
	"mpifault/internal/vm"
)

// equivFor builds the full analysis stack (CFG, liveness, dataflow,
// partition) for an image, failing the test on any analyzer finding.
func equivFor(t *testing.T, im *image.Image) *analysis.Equivalence {
	t.Helper()
	prog, err := analysis.Analyze(im)
	if err != nil {
		t.Fatal(err)
	}
	live := analysis.ComputeLiveness(prog)
	flow := analysis.ComputeDataflow(prog, live)
	if fs := append(append(prog.Findings, live.Findings...), flow.Findings...); len(fs) > 0 {
		t.Fatalf("analysis findings: %v", fs)
	}
	_, abiStats := analysis.ABICheck(prog)
	return analysis.ComputeEquivalence(prog, live, flow, abiStats)
}

func wavetoyImage(t *testing.T) (*image.Image, int) {
	t.Helper()
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	appCfg := a.Default
	appCfg.Ranks, appCfg.Steps, appCfg.Scale = 4, 3, 32
	im, err := a.Build(appCfg)
	if err != nil {
		t.Fatal(err)
	}
	return im, appCfg.Ranks
}

// TestEquivAuditAllCorrect is the soundness regression for the
// equivalence partition, the counterpart of TestDeadBitInjectionsAllCorrect:
// a campaign restricted to provably-benign bits must never manifest.  A
// single failure means the analyzer claimed a consequential bit benign —
// exactly the bug class the audit policy exists to catch.
func TestEquivAuditAllCorrect(t *testing.T) {
	im, ranks := wavetoyImage(t)
	eq := equivFor(t, im)

	res, err := Run(Config{
		Image:             im,
		Ranks:             ranks,
		MPIConfig:         mpi.Config{},
		Injections:        14,
		Regions:           []Region{RegionRegularReg},
		Seed:              7,
		WallLimit:         30 * time.Second,
		KeepExperiments:   true,
		Equivalence:       eq,
		EquivalencePolicy: EquivAudit,
	})
	if err != nil {
		t.Fatal(err)
	}

	audited := 0
	for _, e := range res.Experiments {
		if e.Outcome != classify.Correct {
			t.Errorf("benign-bit flip manifested as %v: %q (trigger %d, rank %d)",
				e.Outcome, e.Desc, e.Trigger, e.Rank)
		}
		if strings.Contains(e.Desc, "[equiv-benign]") {
			audited++
			if e.ClassID != 0 || e.BenignBits <= 0 {
				t.Errorf("audit pilot %q: ClassID=%d BenignBits=%d, want 0 and > 0", e.Desc, e.ClassID, e.BenignBits)
			}
			if e.Candidates <= 0 || e.Candidates >= RegisterSpaceBits {
				t.Errorf("audit pilot %q: candidate set %d not a strict subset of %d",
					e.Desc, e.Candidates, RegisterSpaceBits)
			}
		}
	}
	if audited == 0 {
		t.Fatal("no injection actually consulted the equivalence map")
	}

	s := res.Equivalence
	if s == nil {
		t.Fatal("campaign with Equivalence set returned nil EquivalenceStats")
	}
	if s.Policy != EquivAudit || s.Experiments != len(res.Experiments) {
		t.Errorf("EquivalenceStats = %+v, want audit policy over %d experiments", s, len(res.Experiments))
	}
	if f := s.BenignFraction(); f <= 0 || f >= 1 {
		t.Errorf("benign fraction = %.3f, want strictly inside (0,1)", f)
	}

	// The validator must agree that the audit held.
	if fs := ValidateEquivalence(eq, res.Experiments); len(fs) > 0 {
		t.Errorf("ValidateEquivalence on a clean audit: %v", fs)
	}
}

// TestEquivAnnotateMatchesBaseline: annotate mode must draw exactly the
// baseline's random numbers, so a fixed seed yields flip-for-flip and
// outcome-for-outcome identical campaigns; only the class/benign
// annotations differ.
func TestEquivAnnotateMatchesBaseline(t *testing.T) {
	im, ranks := wavetoyImage(t)
	eq := equivFor(t, im)

	base := Config{
		Image:           im,
		Ranks:           ranks,
		MPIConfig:       mpi.Config{},
		Injections:      12,
		Regions:         []Region{RegionRegularReg},
		Seed:            3,
		WallLimit:       30 * time.Second,
		KeepExperiments: true,
	}
	baseline, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	annotated := base
	annotated.Equivalence = eq
	annotated.EquivalencePolicy = EquivAnnotate
	ann, err := Run(annotated)
	if err != nil {
		t.Fatal(err)
	}

	if len(ann.Experiments) != len(baseline.Experiments) {
		t.Fatalf("annotate ran %d experiments, baseline %d", len(ann.Experiments), len(baseline.Experiments))
	}
	stamped := 0
	for i := range ann.Experiments {
		a, b := &ann.Experiments[i], &baseline.Experiments[i]
		if a.Desc != b.Desc || a.Outcome != b.Outcome || a.Trigger != b.Trigger || a.Rank != b.Rank {
			t.Errorf("experiment %d diverged: annotate {%q %v t=%d r=%d} vs baseline {%q %v t=%d r=%d}",
				i, a.Desc, a.Outcome, a.Trigger, a.Rank, b.Desc, b.Outcome, b.Trigger, b.Rank)
		}
		if a.ClassID != 0 || a.BenignBits > 0 {
			stamped++
		}
	}
	if stamped == 0 {
		t.Error("annotate mode stamped no experiment with partition data")
	}

	// Annotate over the full space is the validator's ground truth: on a
	// correct analyzer it must come back clean.
	if fs := ValidateEquivalence(eq, ann.Experiments); len(fs) > 0 {
		t.Errorf("ValidateEquivalence on annotated campaign: %v", fs)
	}
}

// TestEquivPruneDeterministicReweighted: prune mode must be
// deterministic under a fixed seed, and the integer Horvitz–Thompson
// reweighting must conserve mass exactly.
func TestEquivPruneDeterministicReweighted(t *testing.T) {
	im, ranks := wavetoyImage(t)
	eq := equivFor(t, im)

	cfg := Config{
		Image:             im,
		Ranks:             ranks,
		MPIConfig:         mpi.Config{},
		Injections:        12,
		Regions:           []Region{RegionRegularReg},
		Seed:              5,
		WallLimit:         30 * time.Second,
		KeepExperiments:   true,
		Equivalence:       eq,
		EquivalencePolicy: EquivPrune,
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Experiments) != len(second.Experiments) {
		t.Fatalf("rerun changed experiment count: %d vs %d", len(first.Experiments), len(second.Experiments))
	}
	pruned := 0
	for i := range first.Experiments {
		a, b := &first.Experiments[i], &second.Experiments[i]
		if a.Desc != b.Desc || a.Outcome != b.Outcome || a.ClassID != b.ClassID || a.BenignBits != b.BenignBits {
			t.Errorf("experiment %d not deterministic: {%q %v %d %d} vs {%q %v %d %d}",
				i, a.Desc, a.Outcome, a.ClassID, a.BenignBits, b.Desc, b.Outcome, b.ClassID, b.BenignBits)
		}
		if strings.Contains(a.Desc, "[equiv]") {
			pruned++
			if a.Candidates <= 0 || a.Candidates >= RegisterSpaceBits {
				t.Errorf("pruned experiment %q: candidates %d not a strict subset of %d",
					a.Desc, a.Candidates, RegisterSpaceBits)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("no injection actually sampled the pruned space")
	}

	weighted := ReweightTallies([]Region{RegionRegularReg}, first.Experiments)
	if len(weighted) != 1 {
		t.Fatalf("ReweightTallies returned %d tallies, want 1", len(weighted))
	}
	wt := weighted[0]
	if wt.Experiments != len(first.Experiments) {
		t.Errorf("weighted tally covers %d experiments, want %d", wt.Experiments, len(first.Experiments))
	}
	if want := uint64(len(first.Experiments)) * RegisterSpaceBits; wt.TotalMass != want {
		t.Errorf("TotalMass = %d, want %d", wt.TotalMass, want)
	}
	var sum uint64
	for _, o := range wt.Outcomes {
		sum += o
	}
	if sum != wt.TotalMass {
		t.Errorf("outcome mass %d does not conserve total mass %d", sum, wt.TotalMass)
	}
}

// TestEquivalenceLivenessMutuallyExclusive: the two directed policies
// redistribute the same random draws differently, so combining them
// must be rejected up front.
func TestEquivalenceLivenessMutuallyExclusive(t *testing.T) {
	im, ranks := wavetoyImage(t)
	eq := equivFor(t, im)
	prog, err := analysis.Analyze(im)
	if err != nil {
		t.Fatal(err)
	}
	live := analysis.ComputeLiveness(prog)

	_, err = Run(Config{
		Image:             im,
		Ranks:             ranks,
		MPIConfig:         mpi.Config{},
		Injections:        2,
		Regions:           []Region{RegionRegularReg},
		Seed:              1,
		WallLimit:         30 * time.Second,
		Liveness:          live,
		LivenessPolicy:    LiveTargetDead,
		Equivalence:       eq,
		EquivalencePolicy: EquivAnnotate,
	})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Run with both policies: err = %v, want mutual-exclusion error", err)
	}
}

// fakeEquivMap is a hand-built partition for unit-testing the injector
// and validator without a real analysis.
type fakeEquivMap struct {
	benign      uint16
	ids         [10]uint64
	ok          bool
	benignAddrs map[uint32]bool
}

func (f *fakeEquivMap) PartitionAt(pc uint32) (uint16, [10]uint64, bool) {
	return f.benign, f.ids, f.ok
}

func (f *fakeEquivMap) StaticBenignAt(addr uint32) bool { return f.benignAddrs[addr] }

// TestApplyRegisterFaultEquivPolicies pins the sampling behavior of each
// policy against a synthetic partition: benign GPRs r0/r2/r4/r6, live
// flags, everything else classed.
func TestApplyRegisterFaultEquivPolicies(t *testing.T) {
	im := faultTestImage(t)
	fake := &fakeEquivMap{benign: 0x55, ok: true}
	for i := range fake.ids {
		fake.ids[i] = uint64(100 + i)
	}
	for g := 0; g < isa.NumGPR; g++ {
		if fake.benign&(1<<g) != 0 {
			fake.ids[g] = 0
		}
	}
	const (
		wantBenign     = 4*32 + 28     // four benign GPRs + the 28 unread flag bits
		wantPruneCands = 4*32 + 32 + 4 // four live GPRs + PC + readable flags
	)

	benignGPR := func(name string) bool {
		for g := 0; g < isa.NumGPR; g++ {
			if fake.benign&(1<<g) != 0 && name == isa.GPRName(g) {
				return true
			}
		}
		return false
	}

	for seed := uint64(0); seed < 64; seed++ {
		m := vm.New(im)
		desc, classID, benignBits, cands := ApplyRegisterFaultEquiv(m, rng.New(seed), fake, EquivPrune)
		if !strings.HasSuffix(desc, " [equiv]") {
			t.Fatalf("prune desc %q missing policy suffix", desc)
		}
		if cands != wantPruneCands || benignBits != wantBenign {
			t.Fatalf("prune: candidates=%d benign=%d, want %d and %d", cands, benignBits, wantPruneCands, wantBenign)
		}
		fields := strings.Fields(desc)
		if benignGPR(fields[0]) {
			t.Fatalf("prune flipped provably-benign %q", desc)
		}
		if fields[0] == "flags" {
			if bit := fields[2]; bit != "0" && bit != "1" && bit != "2" && bit != "3" {
				t.Fatalf("prune flipped unreadable flags bit: %q", desc)
			}
			if classID != fake.ids[9] {
				t.Fatalf("prune flags classID = %d, want %d", classID, fake.ids[9])
			}
		}
		if fields[0] == "pc" && classID != fake.ids[8] {
			t.Fatalf("prune pc classID = %d, want %d", classID, fake.ids[8])
		}
		if classID == 0 {
			t.Fatalf("prune pilot %q has no class", desc)
		}
	}

	for seed := uint64(0); seed < 64; seed++ {
		m := vm.New(im)
		desc, classID, benignBits, cands := ApplyRegisterFaultEquiv(m, rng.New(seed), fake, EquivAudit)
		if !strings.HasSuffix(desc, " [equiv-benign]") {
			t.Fatalf("audit desc %q missing policy suffix", desc)
		}
		if classID != 0 || benignBits != wantBenign || cands != wantBenign {
			t.Fatalf("audit: classID=%d benign=%d cands=%d, want 0, %d, %d", classID, benignBits, cands, wantBenign, wantBenign)
		}
		fields := strings.Fields(desc)
		switch {
		case benignGPR(fields[0]):
		case fields[0] == "flags":
			var bit int
			if _, err := fmt.Sscanf(desc, "flags bit %d", &bit); err != nil || bit < flagsReadableBits {
				t.Fatalf("audit flipped readable flags bit: %q", desc)
			}
		default:
			t.Fatalf("audit flipped non-benign target: %q", desc)
		}
	}

	// Annotate must mutate the machine exactly like the baseline.
	for seed := uint64(0); seed < 16; seed++ {
		m1, m2 := vm.New(im), vm.New(im)
		want := ApplyRegisterFault(m1, rng.New(seed))
		desc, _, benignBits, cands := ApplyRegisterFaultEquiv(m2, rng.New(seed), fake, EquivAnnotate)
		if desc != want {
			t.Fatalf("annotate desc %q, baseline %q", desc, want)
		}
		if m1.PC != m2.PC || m1.Flags != m2.Flags || m1.Regs != m2.Regs {
			t.Fatalf("annotate perturbed the machine differently from baseline (seed %d)", seed)
		}
		if benignBits != wantBenign || cands != RegisterSpaceBits {
			t.Fatalf("annotate: benign=%d cands=%d, want %d and %d", benignBits, cands, wantBenign, RegisterSpaceBits)
		}
	}

	// Without a partition for the PC, audit skips the flip entirely and
	// the other policies degrade to the unannotated baseline.
	noMap := &fakeEquivMap{ok: false}
	m := vm.New(im)
	desc, classID, benignBits, cands := ApplyRegisterFaultEquiv(m, rng.New(1), noMap, EquivAudit)
	if !strings.HasPrefix(desc, "no partition") || cands != 0 || classID != 0 || benignBits != 0 {
		t.Errorf("audit without partition: %q classID=%d benign=%d cands=%d", desc, classID, benignBits, cands)
	}
	m = vm.New(im)
	desc, classID, benignBits, cands = ApplyRegisterFaultEquiv(m, rng.New(1), noMap, EquivAnnotate)
	if classID != 0 || benignBits != 0 || cands != RegisterSpaceBits || strings.Contains(desc, "[") {
		t.Errorf("annotate without partition: %q classID=%d benign=%d cands=%d", desc, classID, benignBits, cands)
	}
}

// TestReweightTalliesArithmetic pins the integer Horvitz–Thompson
// arithmetic on synthetic experiments.
func TestReweightTalliesArithmetic(t *testing.T) {
	exps := []Experiment{
		{Region: RegionRegularReg, Index: 0, Outcome: classify.Crash, BenignBits: 120, ClassID: 1},
		{Region: RegionRegularReg, Index: 1, Outcome: classify.Correct, BenignBits: 0},
		{Region: RegionData, Index: 2, Outcome: classify.Hang},
	}
	out := ReweightTallies([]Region{RegionRegularReg, RegionData}, exps)
	if len(out) != 2 {
		t.Fatalf("got %d tallies, want 2", len(out))
	}
	reg := out[0]
	if reg.Experiments != 2 || reg.TotalMass != 2*RegisterSpaceBits {
		t.Errorf("reg tally: %d experiments mass %d, want 2 and %d", reg.Experiments, reg.TotalMass, 2*RegisterSpaceBits)
	}
	// The crash experiment's benign mass is credited to Correct: crash
	// carries 320-120=200 bits, correct 120+320=440.
	if reg.Outcomes[classify.Crash] != 200 || reg.Outcomes[classify.Correct] != 440 {
		t.Errorf("reg outcomes: crash=%d correct=%d, want 200 and 440", reg.Outcomes[classify.Crash], reg.Outcomes[classify.Correct])
	}
	if reg.Errors() != 200 {
		t.Errorf("reg error mass = %d, want 200", reg.Errors())
	}
	if got, want := reg.ErrorRate(), 100*200.0/640.0; got != want {
		t.Errorf("reg error rate = %v, want %v", got, want)
	}
	data := out[1]
	if data.Outcomes[classify.Hang] != RegisterSpaceBits || data.TotalMass != RegisterSpaceBits {
		t.Errorf("data tally: hang=%d mass=%d, want full mass on hang", data.Outcomes[classify.Hang], data.TotalMass)
	}
}

// TestValidateEquivalenceFindings drives the validator with synthetic
// experiments covering each finding kind, plus clean ones that must not
// fire.
func TestValidateEquivalenceFindings(t *testing.T) {
	em := &fakeEquivMap{benignAddrs: map[uint32]bool{0x1000: true}}
	exps := []Experiment{
		// A benign pilot that manifested: analyzer bug.
		{Region: RegionRegularReg, Index: 0, Rank: 0, Trigger: 10, Desc: "r1 bit 3 [equiv-benign]",
			Outcome: classify.Crash, ClassID: 0, BenignBits: 120},
		// Two pilots of the same class, same flip, same rank, different
		// outcomes: a mixed class.
		{Region: RegionRegularReg, Index: 1, Rank: 1, Trigger: 20, Desc: "r2 bit 4 [equiv]",
			Outcome: classify.Correct, ClassID: 7, BenignBits: 100},
		{Region: RegionRegularReg, Index: 2, Rank: 1, Trigger: 30, Desc: "r2 bit 4 [equiv]",
			Outcome: classify.Crash, ClassID: 7, BenignBits: 100},
		// A fault in a claimed-unreferenced data symbol that manifested.
		{Region: RegionData, Index: 3, Rank: 0, Desc: "Data 0x00001000 bit 3", Outcome: classify.Hang},
		// Clean: a manifested data fault outside any benign span.
		{Region: RegionData, Index: 4, Rank: 0, Desc: "Data 0x00002000 bit 3", Outcome: classify.Hang},
		// Clean: a lone classed pilot.
		{Region: RegionRegularReg, Index: 5, Rank: 2, Trigger: 40, Desc: "r3 bit 1 [equiv]",
			Outcome: classify.Crash, ClassID: 9, BenignBits: 64},
		// Clean: same class as above but on another rank — no cross-rank
		// consistency is required.
		{Region: RegionRegularReg, Index: 6, Rank: 3, Trigger: 40, Desc: "r3 bit 1 [equiv]",
			Outcome: classify.Correct, ClassID: 9, BenignBits: 64},
		// Clean: a benign pilot that stayed Correct.
		{Region: RegionRegularReg, Index: 7, Rank: 0, Trigger: 50, Desc: "r4 bit 9 [equiv-benign]",
			Outcome: classify.Correct, ClassID: 0, BenignBits: 120},
	}
	got := ValidateEquivalence(em, exps)
	if len(got) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(got), got)
	}
	wantKinds := []string{"benign-manifested", "class-mixed", "data-benign-manifested"}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Errorf("finding %d kind = %q, want %q (sorted)", i, got[i].Kind, k)
		}
	}
	if !strings.Contains(got[1].Msg, "mixed outcomes") || !strings.Contains(got[1].Msg, "0x7") {
		t.Errorf("class-mixed message %q lacks the class identity", got[1].Msg)
	}

	// Rerunning must produce the identical, deterministically sorted list.
	again := ValidateEquivalence(em, exps)
	for i := range got {
		if got[i] != again[i] {
			t.Errorf("finding %d not deterministic: %v vs %v", i, got[i], again[i])
		}
	}
}

// TestParseEquivalencePolicy pins the CLI spellings.
func TestParseEquivalencePolicy(t *testing.T) {
	for s, want := range map[string]EquivalencePolicy{
		"": EquivOff, "off": EquivOff, "annotate": EquivAnnotate, "prune": EquivPrune, "audit": EquivAudit,
	} {
		if got, err := ParseEquivalencePolicy(s); err != nil || got != want {
			t.Errorf("ParseEquivalencePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEquivalencePolicy("dead"); err == nil {
		t.Error("ParseEquivalencePolicy accepted a liveness policy name")
	}
}
