package asm

import (
	"strings"
	"testing"

	"mpifault/internal/image"
	"mpifault/internal/isa"
)

func TestLinkBasicLayout(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.DataI32("d", 1, 2, 3)
	m.BSS("z", 100)
	f := m.Func("main")
	f.Movi(isa.R0, 0)
	f.Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	if s, ok := im.FindSymbol(im.Entry); !ok || s.Name != "_start" {
		t.Fatalf("entry %#x does not resolve to _start", im.Entry)
	}
	if im.DataBase%image.PageAlign != 0 || im.BSSBase%image.PageAlign != 0 {
		t.Fatal("segment bases must be page aligned")
	}
	d, ok := im.Lookup("d")
	if !ok || d.Size != 12 || d.Kind != image.SymData {
		t.Fatalf("data symbol: %+v ok=%v", d, ok)
	}
	z, ok := im.Lookup("z")
	if !ok || z.Size != 100 || z.Kind != image.SymBSS {
		t.Fatalf("bss symbol: %+v ok=%v", z, ok)
	}
}

func TestStartShimPrecedesFunctions(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	f.Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// _start is synthesized but appended last in module order; it must
	// still be a valid user-owned function symbol and im.Entry points at it.
	s, ok := im.FindSymbol(im.Entry)
	if !ok || s.Name != "_start" || s.Owner != image.OwnerUser {
		t.Fatalf("entry symbol: %+v", s)
	}
	// The first instruction of _start must be CALL main.
	in := isa.Decode(im.Text[im.Entry-image.TextBase:])
	if in.Op != isa.OpCall {
		t.Fatalf("_start starts with %v", in.Op)
	}
	main, _ := im.Lookup("main")
	if uint32(in.Imm) != main.Addr {
		t.Fatalf("_start calls %#x, main at %#x", uint32(in.Imm), main.Addr)
	}
}

func TestUndefinedSymbolFailsLink(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	f.Call("missing")
	f.Ret()
	if _, err := b.Link(LinkConfig{}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("link err = %v", err)
	}
}

func TestDuplicateSymbolFailsLink(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.Func("main").Ret()
	m.Func("main").Ret()
	if _, err := b.Link(LinkConfig{}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("link err = %v", err)
	}
}

func TestUndefinedLabelFailsLink(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	l := f.NewLabel()
	f.Jmp(l) // never placed
	f.Ret()
	if _, err := b.Link(LinkConfig{}); err == nil {
		t.Fatal("undefined label must fail the link")
	}
}

func TestMissingEntryFailsLink(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.Func("notmain").Ret()
	if _, err := b.Link(LinkConfig{}); err == nil {
		t.Fatal("missing main must fail the link")
	}
}

func TestLabelResolution(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	skip := f.NewLabel()
	f.Jmp(skip)       // instr 0
	f.Movi(isa.R0, 1) // instr 1 (skipped)
	f.Label(skip)
	f.Ret() // instr 2
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	main, _ := im.Lookup("main")
	in := isa.Decode(im.Text[main.Addr-image.TextBase:])
	if in.Op != isa.OpJmp || uint32(in.Imm) != main.Addr+2*isa.InstrBytes {
		t.Fatalf("jmp resolved to %#x, want %#x", uint32(in.Imm), main.Addr+2*isa.InstrBytes)
	}
}

func TestSymbolOwnership(t *testing.T) {
	b := NewBuilder()
	u := b.Module("app", image.OwnerUser)
	u.Func("main").Ret()
	u.DataI32("udata", 7)
	mp := b.Module("lib", image.OwnerMPI)
	mp.Func("MPI_Something").Ret()
	mp.BSS("mstate", 16)
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := im.Lookup("MPI_Something")
	if s.Owner != image.OwnerMPI {
		t.Fatal("library function must be MPI-owned")
	}
	s, _ = im.Lookup("mstate")
	if s.Owner != image.OwnerMPI {
		t.Fatal("library BSS must be MPI-owned")
	}
	s, _ = im.Lookup("udata")
	if s.Owner != image.OwnerUser {
		t.Fatal("app data must be user-owned")
	}
}

func TestConstPoolInterning(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	f.FldConst(3.25)
	f.FldConst(3.25) // same constant: must not duplicate
	f.FldConst(1.5)
	f.Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pool := 0
	for _, s := range im.Symbols {
		if strings.HasPrefix(s.Name, "__const_app_") {
			pool++
		}
	}
	if pool != 2 {
		t.Fatalf("const pool holds %d entries, want 2", pool)
	}
	// Both FldConst(3.25) must reference the same address.
	main, _ := im.Lookup("main")
	in0 := isa.Decode(im.Text[main.Addr-image.TextBase:])
	in1 := isa.Decode(im.Text[main.Addr+isa.InstrBytes-image.TextBase:])
	if in0.Imm != in1.Imm {
		t.Fatal("identical constants resolved to different pool slots")
	}
}

func TestDataF64Encoding(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.DataF64("v", 1.0)
	m.Func("main").Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := im.Lookup("v")
	off := s.Addr - im.DataBase
	// 1.0 = 0x3FF0000000000000 little-endian.
	want := []byte{0, 0, 0, 0, 0, 0, 0xF0, 0x3F}
	for i, wb := range want {
		if im.Data[off+uint32(i)] != wb {
			t.Fatalf("byte %d = %#x, want %#x", i, im.Data[off+uint32(i)], wb)
		}
	}
}

func TestF64DataAlignment(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.DataString("odd", "abc") // 3 bytes, misaligns the cursor
	m.DataF64("v", 2.5)
	m.Func("main").Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := im.Lookup("v")
	if s.Addr%8 != 0 {
		t.Fatalf("f64 data at %#x not 8-aligned", s.Addr)
	}
}

func TestLinkConfigDefaults(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.Func("main").Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if im.HeapLimit-im.HeapBase != 8<<20 {
		t.Fatalf("default heap = %d", im.HeapLimit-im.HeapBase)
	}
	if im.StackSize != 256<<10 {
		t.Fatalf("default stack = %d", im.StackSize)
	}
}

func TestAlternateEntry(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.Func("start_here").Ret()
	im, err := b.Link(LinkConfig{Entry: "start_here"})
	if err != nil {
		t.Fatal(err)
	}
	in := isa.Decode(im.Text[im.Entry-image.TextBase:])
	sh, _ := im.Lookup("start_here")
	if uint32(in.Imm) != sh.Addr {
		t.Fatal("_start does not call the configured entry")
	}
}

func TestFunctionSizesCoverText(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	for i := 0; i < 10; i++ {
		f.Nop()
	}
	f.Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var covered uint32
	for _, s := range im.Symbols {
		if s.Kind == image.SymFunc {
			covered += s.Size
		}
	}
	if covered != uint32(len(im.Text)) {
		t.Fatalf("function symbols cover %d of %d text bytes", covered, len(im.Text))
	}
}

func TestLabelPlacedTwiceFails(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	l := f.NewLabel()
	f.Label(l)
	f.Nop()
	f.Label(l)
	f.Ret()
	if _, err := b.Link(LinkConfig{}); err == nil {
		t.Fatal("duplicate label placement must fail the link")
	}
}

func TestDataStringBytes(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.DataString("s", "hi\n")
	m.Func("main").Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := im.Lookup("s")
	got := string(im.Data[s.Addr-im.DataBase : s.Addr-im.DataBase+3])
	if got != "hi\n" {
		t.Fatalf("string data = %q", got)
	}
}

func TestSymbolRefWithOffset(t *testing.T) {
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.DataI32("arr", 1, 2, 3, 4)
	f := m.Func("main")
	f.MoviSym(isa.R0, "arr", 8) // &arr[2]
	f.Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	main, _ := im.Lookup("main")
	arr, _ := im.Lookup("arr")
	in := isa.Decode(im.Text[main.Addr-image.TextBase:])
	if uint32(in.Imm) != arr.Addr+8 {
		t.Fatalf("sym+off resolved to %#x, want %#x", uint32(in.Imm), arr.Addr+8)
	}
}

func TestCallArgsStackDiscipline(t *testing.T) {
	// CallArgs must emit exactly: pushes (right to left), call, sp fixup.
	b := NewBuilder()
	m := b.Module("app", image.OwnerUser)
	m.Func("callee").Ret()
	f := m.Func("main")
	f.CallArgs("callee", Imm(10), Reg(isa.R2), Sym("callee"))
	f.Ret()
	im, err := b.Link(LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	main, _ := im.Lookup("main")
	var ops []isa.Op
	for off := uint32(0); off < main.Size; off += isa.InstrBytes {
		ops = append(ops, isa.Decode(im.Text[main.Addr-image.TextBase+off:]).Op)
	}
	// movi r5,sym; push r5; push r2; movi r5,10; push r5; call; addi; ret
	want := []isa.Op{isa.OpMovi, isa.OpPush, isa.OpPush, isa.OpMovi,
		isa.OpPush, isa.OpCall, isa.OpAddi, isa.OpRet}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op[%d] = %v, want %v (%v)", i, ops[i], want[i], ops)
		}
	}
}
