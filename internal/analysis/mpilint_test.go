package analysis

import (
	"strings"
	"testing"
	"time"

	"mpifault/internal/abi"
	"mpifault/internal/apps"
	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/mpi"
)

// TestMPILintCleanWavetoy: a correct app's recorded traffic must pair up
// completely.
func TestMPILintCleanWavetoy(t *testing.T) {
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Default
	cfg.Ranks, cfg.Steps, cfg.Scale = 4, 2, 32
	im, err := a.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := MPILint(im, cfg.Ranks, mpi.Config{}, 0, 20*time.Second)
	for _, f := range res.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
	if res.Ops == 0 || res.Matched == 0 {
		t.Errorf("no traffic recorded: ops=%d matched=%d", res.Ops, res.Matched)
	}
	if res.Ops != 2*res.Matched {
		t.Errorf("%d ops but only %d pairs", res.Ops, res.Matched)
	}
}

// buildMPIApp links a two-rank app whose per-rank behavior is emitted by
// rank0/rank1.
func buildMPIApp(t *testing.T, rank0, rank1 func(f *asm.Func)) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.BSS("buf", 64)
	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	other := f.NewLabel()
	done := f.NewLabel()
	f.Cmpi(isa.R0, 0)
	f.Bne(other)
	rank0(f)
	f.Jmp(done)
	f.Label(other)
	rank1(f)
	f.Label(done)
	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func hasFinding(fs []Finding, substr string) bool {
	for _, f := range fs {
		if strings.Contains(f.Msg, substr) {
			return true
		}
	}
	return false
}

// TestMPILintTagMismatch: rank 0 sends tag 7, rank 1 expects tag 8 — the
// lint must flag the unmatched halves and hint at the tag mismatch.
func TestMPILintTagMismatch(t *testing.T) {
	im := buildMPIApp(t,
		func(f *asm.Func) {
			f.CallArgs("MPI_Send", asm.Sym("buf"), asm.Imm(1), asm.Imm(abi.DTInt32),
				asm.Imm(1), asm.Imm(7), asm.Imm(abi.CommWorld))
		},
		func(f *asm.Func) {
			f.CallArgs("MPI_Recv", asm.Sym("buf"), asm.Imm(1), asm.Imm(abi.DTInt32),
				asm.Imm(0), asm.Imm(8), asm.Imm(abi.CommWorld), asm.Imm(0))
		})
	res := MPILint(im, 2, mpi.Config{}, 0, 10*time.Second)
	if !hasFinding(res.Findings, "unmatched send") {
		t.Errorf("missing unmatched-send finding: %v", res.Findings)
	}
	if !hasFinding(res.Findings, "unmatched receive") {
		t.Errorf("missing unmatched-receive finding: %v", res.Findings)
	}
	if !hasFinding(res.Findings, "tag mismatch") {
		t.Errorf("missing tag-mismatch finding: %v", res.Findings)
	}
}

// TestMPILintRecvCycle: both ranks block receiving from each other — the
// lint must report the wait-for cycle.
func TestMPILintRecvCycle(t *testing.T) {
	recvFrom := func(peer int32) func(f *asm.Func) {
		return func(f *asm.Func) {
			f.CallArgs("MPI_Recv", asm.Sym("buf"), asm.Imm(1), asm.Imm(abi.DTInt32),
				asm.Imm(peer), asm.Imm(1), asm.Imm(abi.CommWorld), asm.Imm(0))
		}
	}
	im := buildMPIApp(t, recvFrom(1), recvFrom(0))
	res := MPILint(im, 2, mpi.Config{}, 0, 10*time.Second)
	if !res.Hang {
		t.Error("deadlocked app not reported as hanging")
	}
	if !hasFinding(res.Findings, "wait-for cycle") {
		t.Errorf("missing wait-for-cycle finding: %v", res.Findings)
	}
}
