package report

import (
	"fmt"
	"io"

	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/telemetry"
)

// WriteLatencyHistogram renders the manifestation-latency distribution
// the paper discusses in §5.2: how many instructions elapse between the
// injection and the moment the fault manifests — the trap for a crash,
// the hang verdict for a hang.  Only experiments carrying forensics
// with a usable latency contribute (message faults trigger on a byte
// offset, not an instruction count, so they are excluded by
// construction); if none do, nothing is printed.
func WriteLatencyHistogram(w io.Writer, experiments []core.Experiment) {
	crash := telemetry.NewHistogram(telemetry.LatencyBuckets)
	hang := telemetry.NewHistogram(telemetry.LatencyBuckets)
	for _, e := range experiments {
		lat, ok := e.Forensics.Latency()
		if !ok {
			continue
		}
		switch e.Outcome {
		case classify.Crash:
			crash.Observe(lat)
		case classify.Hang:
			hang.Observe(lat)
		}
	}
	if crash.Count() == 0 && hang.Count() == 0 {
		return
	}
	cs, hs := crash.Snapshot(), hang.Snapshot()

	fmt.Fprintf(w, "Fault manifestation latency (instructions from injection, per §5.2):\n")
	fmt.Fprintf(w, "  %-16s %10s %10s\n", "latency <=", "crashes", "hangs")
	for i := range cs.Counts {
		label := "+Inf"
		if i < len(cs.Bounds) {
			label = fmt.Sprintf("%d", cs.Bounds[i])
		}
		fmt.Fprintf(w, "  %-16s %10d %10d\n", label, cs.Counts[i], hs.Counts[i])
	}
	fmt.Fprintf(w, "  %-16s %10d %10d\n", "total", cs.Count, hs.Count)
	if cs.Count > 0 {
		fmt.Fprintf(w, "  mean crash latency: %.0f instructions\n",
			float64(cs.Sum)/float64(cs.Count))
	}
	if hs.Count > 0 {
		fmt.Fprintf(w, "  mean hang latency:  %.0f instructions\n",
			float64(hs.Sum)/float64(hs.Count))
	}
}
