package analysis

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// The equivalence pass turns the dataflow pass's first-use sets into the
// partition of the injection space that internal/core samples from: at
// every reachable instruction boundary it splits the 320-bit register
// target space into provably-benign bits (flipping them cannot change
// the execution) and equivalence classes (bits whose corruption flows
// into the same first uses, so one pilot injection per class stands in
// for all its members).  It also carries the static benign claims for
// the data/BSS and stack regions: unreferenced user symbols and dead
// local slots.
//
// Everything here is a *claim* to be validated: core.ValidateEquivalence
// checks a fixed-seed campaign against the partition, and any benign
// site that manifests or class whose pilots disagree is an analyzer bug,
// not an acceptable approximation.

// partEntry is the per-PC partition in the exact shape the
// core.EquivalenceMap interface exposes: a benign mask (bits 0..NumGPR-1
// mark fully-benign GPRs, bit NumGPR a fully-benign flags word) and a
// class identity per injection target (0..7 the GPRs, 8 the PC, 9 the
// flags word; zero for benign targets).
type partEntry struct {
	benign uint16
	ids    [10]uint64
}

// addrSpan is a half-open [lo, hi) address range.
type addrSpan struct{ lo, hi uint32 }

// EquivSummary aggregates the partition for reports and goldens.  All
// fields are integers so serialized summaries are byte-stable.
type EquivSummary struct {
	// Sites is the number of reachable instruction boundaries partitioned.
	Sites int `json:"sites"`
	// RegClasses is the number of distinct GPR/flags equivalence classes
	// across all sites (PC targets are excluded: every PC bit-flip is its
	// own class, so they never prune).
	RegClasses int `json:"reg_classes"`
	// RegTotalBits/RegBenignBits: the register target space summed over
	// sites (320 bits each) and its provably-benign portion.
	RegTotalBits  uint64 `json:"reg_total_bits"`
	RegBenignBits uint64 `json:"reg_benign_bits"`
	// StackFrameBytes/StackDeadBytes: link-time frame bytes of reachable
	// user functions and the provably-dead local-slot bytes within them.
	StackFrameBytes uint64 `json:"stack_frame_bytes"`
	StackDeadBytes  uint64 `json:"stack_dead_bytes"`
	// DataBytes/DataBenignBytes and BSSBytes/BSSBenignBytes: user symbol
	// bytes per section and the portion in symbols no reachable
	// instruction references.
	DataBytes       uint64 `json:"data_bytes"`
	DataBenignBytes uint64 `json:"data_benign_bytes"`
	BSSBytes        uint64 `json:"bss_bytes"`
	BSSBenignBytes  uint64 `json:"bss_benign_bytes"`
}

// Equivalence is the computed partition for one program.  It implements
// core.EquivalenceMap.
type Equivalence struct {
	Prog *Program
	Live *Liveness
	Flow *Dataflow

	// Stack holds the per-function dead-slot analysis (report-only: the
	// campaign's stack injector is validated against the data/register
	// claims, while slot claims feed the summary and faultlint output).
	Stack []StackSlotInfo

	Summary EquivSummary

	parts      map[uint32]partEntry
	benignData []addrSpan
}

// ComputeEquivalence builds the site partition from the analysis stack.
// abiStats (from ABICheck) supplies link-time frame sizes for the stack
// summary; functions without an entry contribute no frame bytes rather
// than a guessed extent.
func ComputeEquivalence(prog *Program, live *Liveness, flow *Dataflow, abiStats map[string]ABIStats) *Equivalence {
	eq := &Equivalence{
		Prog:  prog,
		Live:  live,
		Flow:  flow,
		parts: make(map[uint32]partEntry),
	}
	classes := make(map[uint64]bool)
	for _, f := range prog.Funcs {
		if !f.Reachable {
			// The campaign can only trigger inside code reachable from the
			// entry point; partitioning dead functions would inflate the
			// summary without ever being consulted.
			continue
		}
		for i := range f.Instrs {
			if !f.reach[i] {
				continue
			}
			pc := f.Addr(i)
			mask, ok := live.LiveAt(pc)
			if !ok {
				continue
			}
			p := eq.partitionOf(pc, RegMask(mask))
			eq.parts[pc] = p
			eq.Summary.Sites++
			eq.Summary.RegTotalBits += regSpaceBits
			eq.Summary.RegBenignBits += uint64(benignBitCount(p.benign))
			for t, id := range p.ids {
				if t != 8 && id != 0 { // PC classes never prune; see EquivSummary
					classes[id] = true
				}
			}
		}
	}
	eq.Summary.RegClasses = len(classes)
	eq.computeStack(abiStats)
	eq.computeData()
	return eq
}

// regSpaceBits mirrors core.RegisterSpaceBits: (8 GPRs + PC + flags) x 32.
const regSpaceBits = (isa.NumGPR + 2) * 32

// flagsReadableBits mirrors core: only Z/LT/UL/UN are architecturally
// readable, so the upper 28 flag bits are benign even when flags are live.
const flagsReadableBits = 4

// benignBitCount is the number of provably-benign bits a partEntry mask
// claims out of the 320-bit register space.
func benignBitCount(mask uint16) int {
	n := 0
	for g := 0; g < isa.NumGPR; g++ {
		if mask&(1<<g) != 0 {
			n += 32
		}
	}
	if mask&(1<<isa.NumGPR) != 0 {
		n += 32
	} else {
		n += 32 - flagsReadableBits
	}
	return n
}

func (eq *Equivalence) partitionOf(pc uint32, m RegMask) partEntry {
	var p partEntry
	for r := 0; r < isa.NumGPR; r++ {
		if !m.Has(r) {
			p.benign |= 1 << r
			continue
		}
		id, ok := eq.Flow.ClassID(pc, r)
		if !ok || id == 0 {
			// Liveness says live but dataflow has no first use — the
			// cross-check has already flagged this as an analyzer bug;
			// degrade to a per-site singleton class so sampling stays
			// sound while the bug is fixed.
			id = classHash(16+r, []uint64{uint64(pc)})
		}
		p.ids[r] = id
	}
	// Every PC bit-flip redirects control differently: per-site class.
	p.ids[8] = classHash(9, []uint64{uint64(pc)})
	if !m.HasFlags() {
		p.benign |= 1 << isa.NumGPR
	} else {
		id, ok := eq.Flow.ClassID(pc, FlagsBit)
		if !ok || id == 0 {
			id = classHash(16+FlagsBit, []uint64{uint64(pc)})
		}
		p.ids[9] = id
	}
	return p
}

func (eq *Equivalence) computeStack(abiStats map[string]ABIStats) {
	eq.Stack = eq.Flow.StackSlots()
	for _, s := range eq.Stack {
		eq.Summary.StackDeadBytes += uint64(s.DeadBytes)
	}
	for _, f := range eq.Prog.Funcs {
		if !f.Reachable || f.Sym.Owner != image.OwnerUser {
			continue
		}
		st, ok := abiStats[f.Sym.Name]
		if !ok {
			continue
		}
		eq.Summary.StackFrameBytes += uint64(4 + 4*st.MaxDepthWords)
	}
}

// computeData collects the unreferenced user data/BSS symbols — the same
// referenced-set the AVF estimator uses, inverted into benign address
// spans the campaign validator can query per fault address.
func (eq *Equivalence) computeData() {
	referenced := referencedDataSyms(eq.Prog)
	for _, sym := range eq.Prog.Image.Symbols {
		if sym.Owner != image.OwnerUser {
			continue
		}
		switch sym.Kind {
		case image.SymData:
			eq.Summary.DataBytes += uint64(sym.Size)
			if !referenced[sym.Name] {
				eq.Summary.DataBenignBytes += uint64(sym.Size)
			}
		case image.SymBSS:
			eq.Summary.BSSBytes += uint64(sym.Size)
			if !referenced[sym.Name] {
				eq.Summary.BSSBenignBytes += uint64(sym.Size)
			}
		default:
			continue
		}
		if !referenced[sym.Name] && sym.Size > 0 {
			eq.benignData = append(eq.benignData, addrSpan{lo: sym.Addr, hi: sym.Addr + sym.Size})
		}
	}
	sort.Slice(eq.benignData, func(i, j int) bool { return eq.benignData[i].lo < eq.benignData[j].lo })
}

// PartitionAt implements core.EquivalenceMap.
func (eq *Equivalence) PartitionAt(pc uint32) (benignMask uint16, classIDs [10]uint64, ok bool) {
	p, ok := eq.parts[pc]
	if !ok {
		return 0, classIDs, false
	}
	return p.benign, p.ids, true
}

// StaticBenignAt implements core.EquivalenceMap: it reports whether addr
// falls inside a user data/BSS symbol the analysis claims is benign
// (never referenced by reachable code).
func (eq *Equivalence) StaticBenignAt(addr uint32) bool {
	i := sort.Search(len(eq.benignData), func(i int) bool { return eq.benignData[i].hi > addr })
	return i < len(eq.benignData) && eq.benignData[i].lo <= addr
}

// WriteReport prints the partition summary as a table: per region, the
// provably-benign portion of the injection space and the pruning the
// class structure buys.
func (eq *Equivalence) WriteReport(w io.Writer) {
	s := eq.Summary
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "region\tbenign\ttotal\tprovably benign\t")
	row := func(name string, benign, total uint64, unit string) {
		if total == 0 {
			return
		}
		fmt.Fprintf(tw, "%s\t%d %s\t%d %s\t%.1f%%\t\n", name, benign, unit, total, unit,
			100*float64(benign)/float64(total))
	}
	row("Regular Reg.", s.RegBenignBits, s.RegTotalBits, "bits")
	row("Stack (locals)", s.StackDeadBytes, s.StackFrameBytes, "bytes")
	row("Data", s.DataBenignBytes, s.DataBytes, "bytes")
	row("BSS", s.BSSBenignBytes, s.BSSBytes, "bytes")
	tw.Flush()
	fmt.Fprintf(w, "equivalence: %d register classes over %d sites (%.1f bits/site benign)\n",
		s.RegClasses, s.Sites, float64(s.RegBenignBits)/float64(max(1, s.Sites)))
}
