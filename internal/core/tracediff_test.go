package core_test

// Campaign-level invariants of trace-diff localization, enforced end to
// end on all three guest applications: the digest recorder only
// observes (fixed-seed instruction-axis output is byte-identical with
// TraceDiff on or off), the golden trace is reproducible, and the
// first-divergence diff actually localizes the paper's visible
// outcomes — Incorrect and Hang experiments must overwhelmingly carry
// a divergence naming a rank.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/image"
	"mpifault/internal/report"
)

// stripMessageRows drops the schedule-sensitive Message region's rows
// from a campaign CSV so the remaining byte comparison is exact.
func stripMessageRows(csv string) string {
	lines := strings.Split(csv, "\n")
	kept := lines[:0]
	for _, line := range lines {
		if f := strings.SplitN(line, ",", 3); len(f) >= 2 && f[1] == "Message" {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// traceArtifacts runs one fixed-seed campaign and returns its CSV plus
// the kept experiments.
func traceArtifacts(t *testing.T, name string, im *image.Image, ranks, n int, traced bool) (string, *core.Result) {
	t.Helper()
	cfg := core.Config{
		Image: im, Ranks: ranks, Injections: n, Seed: 4242,
		Parallelism:     2,
		WallLimit:       60 * time.Second,
		KeepExperiments: true,
		TraceDiff:       traced,
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	report.WriteCampaignCSV(&csv, name, res)
	return csv.String(), res
}

// TestTraceDiffCampaign runs the two campaign-level gates per guest
// app on one pair of fixed-seed campaigns (they share the traced run
// so the package stays inside CI's -race time budget on small hosts):
//
//   - observer effect: the same campaign with and without the digest
//     recorder must produce the identical CSV, and every experiment
//     must reach the identical outcome;
//   - localization acceptance: at least 80% of the traced campaign's
//     Incorrect and Hang outcomes must carry a divergence record
//     naming an in-range rank.
func TestTraceDiffCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two campaigns per guest app")
	}
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			im, ranks := buildApp(t, name)
			refCSV, ref := traceArtifacts(t, name, im, ranks, 6, false)
			gotCSV, got := traceArtifacts(t, name, im, ranks, 6, true)
			// Message rows are excluded from the byte comparison, and the
			// per-experiment check relaxes to identity fields there: a
			// message fault targets a cumulative offset into the rank's
			// received byte stream, whose packet interleaving is
			// schedule-sensitive with or without an observer attached —
			// two plain runs can already disagree under host load (see
			// the matching caveat in metrics_test.go).  The real CLI
			// gates (tier1 trace smoke, the CI merge gate's
			// trace-identity step, coord_e2e) still diff full CSVs.
			if sm, rm := stripMessageRows(gotCSV), stripMessageRows(refCSV); sm != rm {
				t.Errorf("CSV differs with TraceDiff on:\n--- off ---\n%s\n--- on ---\n%s", rm, sm)
			}
			if len(ref.Experiments) != len(got.Experiments) {
				t.Fatalf("experiment counts differ: %d vs %d", len(ref.Experiments), len(got.Experiments))
			}
			for i := range ref.Experiments {
				p, r := ref.Experiments[i], got.Experiments[i]
				if p.Region == core.RegionMessage {
					if p.Index != r.Index || p.Rank != r.Rank || p.Trigger != r.Trigger {
						t.Errorf("message experiment %s changed identity under TraceDiff: %+v vs %+v",
							p.ID(), p, r)
					}
					continue
				}
				if !report.SameOutcome(p, r) {
					t.Errorf("experiment %s outcome changed under TraceDiff: %+v vs %+v",
						p.ID(), p, r)
				}
			}
			if got.Golden.Trace == nil {
				t.Fatal("TraceDiff campaign recorded no golden trace")
			}
			if got.Golden.Trace.Messages() == 0 {
				t.Error("golden trace is empty — the app's traffic was not digested")
			}
			if ref.Golden.Trace != nil {
				t.Error("untraced campaign recorded a golden trace")
			}

			visible, localized := 0, 0
			for i := range got.Experiments {
				e := &got.Experiments[i]
				switch e.Outcome {
				case classify.Incorrect, classify.Hang:
				default:
					continue
				}
				visible++
				if d := e.Divergence(); d != nil {
					localized++
					if d.Rank < 0 || d.Rank >= ranks {
						t.Errorf("%s: divergence implicates rank %d of %d", e.ID(), d.Rank, ranks)
					}
					if d.Kind == "" {
						t.Errorf("%s: divergence has no kind", e.ID())
					}
				}
			}
			if visible == 0 {
				t.Logf("%s: no Incorrect/Hang outcomes at this seed; localization gate vacuous", name)
			} else if 100*localized < 80*visible {
				t.Errorf("%s: only %d/%d Incorrect/Hang outcomes localized (< 80%%)",
					name, localized, visible)
			}
		})
	}
}

// TestGoldenTraceReproducible pins the golden trace identity: two
// independent golden runs of one app must produce traces with the same
// digest streams and hash — the property the CI shard/coordinator gates
// build on.
func TestGoldenTraceReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two golden executions")
	}
	im, ranks := buildApp(t, "wavetoy")
	run := func() *core.Golden {
		cfg := core.Config{
			Image: im, Ranks: ranks, Injections: 1, Seed: 1,
			Regions:   []core.Region{core.RegionRegularReg},
			WallLimit: 60 * time.Second,
			TraceDiff: true,
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Golden
	}
	a, b := run(), run()
	if a.Trace == nil || b.Trace == nil {
		t.Fatal("golden trace missing")
	}
	if a.Trace.Hash() != b.Trace.Hash() {
		t.Errorf("golden trace hash differs across runs: %016x vs %016x",
			a.Trace.Hash(), b.Trace.Hash())
	}
}

// TestGoldenReuseRequiresTrace: a cached golden without a recorded
// trace cannot serve a TraceDiff campaign — the worker path must re-run
// the golden instead, and core refuses the inconsistent configuration.
func TestGoldenReuseRequiresTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a golden execution")
	}
	im, ranks := buildApp(t, "wavetoy")
	cfg := core.Config{
		Image: im, Ranks: ranks, Injections: 1, Seed: 1,
		Regions:   []core.Region{core.RegionRegularReg},
		WallLimit: 60 * time.Second,
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Golden = res.Golden // recorded without TraceDiff: no trace
	cfg.TraceDiff = true
	if _, err := core.Run(cfg); err == nil {
		t.Error("Golden reuse without a trace was accepted for a TraceDiff campaign")
	}
}
