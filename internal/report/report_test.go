package report

import (
	"strings"
	"testing"

	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/profile"
	"mpifault/internal/trace"
)

func sampleResult() *core.Result {
	res := &core.Result{}
	for _, region := range core.Regions() {
		t := core.Tally{Region: region, Executions: 500}
		t.Outcomes[classify.Correct] = 400
		t.Outcomes[classify.Crash] = 50
		t.Outcomes[classify.Hang] = 25
		t.Outcomes[classify.Incorrect] = 25
		res.Tallies = append(res.Tallies, t)
	}
	return res
}

func TestWriteCampaignLayout(t *testing.T) {
	var sb strings.Builder
	WriteCampaign(&sb, "wavetoy", sampleResult())
	out := sb.String()
	for _, want := range []string{
		"Fault Injection Results (wavetoy)",
		"Regular Reg.", "FP Reg.", "BSS", "Data", "Stack", "Text", "Heap", "Message",
		"Crash", "Hang", "Incorrect", "App Detected", "MPI Detected",
		"20.0",             // error rate 100/500
		"estimation error", // §4.3 banner
		"4.4%",             // d at n=500
	} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCampaignCSV(t *testing.T) {
	var sb strings.Builder
	WriteCampaignCSV(&sb, "minimd", sampleResult())
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+int(core.NumRegions) {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "minimd,Regular Reg.,500,100,20.00,50,25,25,0,0,400") {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestWriteProfiles(t *testing.T) {
	var sb strings.Builder
	p := &profile.Profile{
		App: "wavetoy", Ranks: 8,
		TextBytes: 10240, DataBytes: 512, BSSBytes: 2048,
		UserText: 8192, MPIText: 2048,
		HeapStable: 4096, StackBytes: 256,
		MsgBytesMin: 10000, MsgBytesMax: 20000,
		HeaderPct: 6, UserPct: 94,
		ControlMsgs: 10, DataMsgs: 90,
	}
	WriteProfiles(&sb, []*profile.Profile{p})
	out := sb.String()
	for _, want := range []string{"Table 1", "wavetoy", "Text Size", "Heap Size", "Header %", "94"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile table missing %q", want)
		}
	}
}

func TestWriteWorkingSet(t *testing.T) {
	var sb strings.Builder
	s := &trace.Series{
		Times:       []uint64{0, 100},
		TextPct:     []float64{30, 10},
		DataPct:     []float64{20, 5},
		BSSPct:      []float64{10, 2},
		HeapPct:     []float64{40, 30},
		CombinedPct: []float64{28, 12},
	}
	WriteWorkingSet(&sb, "wavetoy", s)
	out := sb.String()
	if !strings.Contains(out, "block count") || !strings.Contains(out, "data+bss+heap") {
		t.Fatalf("missing columns:\n%s", out)
	}
	if !strings.Contains(out, "30.0") || !strings.Contains(out, "12.0") {
		t.Fatalf("missing values:\n%s", out)
	}
}
