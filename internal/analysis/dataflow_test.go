package analysis

import (
	"testing"

	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// buildApp links libc+libmpi plus a user module fully authored by body
// (unlike buildWith, body must emit main itself, so fixtures can be
// called from main and become interprocedurally reachable).
func buildApp(t *testing.T, body func(m *asm.Module)) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	body(m)
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

// dataflowFor analyzes the image, runs the dataflow pass, and fails the
// test on any finding from any pass — every fixture here is well-formed,
// so a finding (in particular a "dataflow" cross-check finding) is an
// analyzer bug.
func dataflowFor(t *testing.T, im *image.Image) (*Program, *Liveness, *Dataflow) {
	t.Helper()
	prog, live, all := analyzeImage(t, im)
	flow := ComputeDataflow(prog, live)
	all = append(all, flow.Findings...)
	for _, f := range all {
		t.Errorf("unexpected finding: %s", f)
	}
	return prog, live, flow
}

func funcCFG(t *testing.T, prog *Program, name string) *FuncCFG {
	t.Helper()
	for _, f := range prog.Funcs {
		if f.Sym.Name == name {
			return f
		}
	}
	t.Fatalf("function %q not analyzed", name)
	return nil
}

// addrOfOp returns the address of the n-th (0-based) occurrence of op.
func addrOfOp(t *testing.T, f *FuncCFG, op isa.Op, n int) uint32 {
	t.Helper()
	for i, in := range f.Instrs {
		if in.Op == op {
			if n == 0 {
				return f.Addr(i)
			}
			n--
		}
	}
	t.Fatalf("%s: occurrence of %v not found", f.Sym.Name, op)
	return 0
}

// TestFirstUseChains: a straight-line def-use chain.  Every boundary
// between the def and the first use carries the same first-use set (and
// hence the same class ID); past the last use the set is empty and the
// site is provably benign.
func TestFirstUseChains(t *testing.T) {
	im := buildWith(t, func(m *asm.Module) {
		f := m.Func("chain")
		f.Prologue(0)
		f.Movi(isa.R1, 5)
		f.Movi(isa.R2, 6)
		f.Movi(isa.R3, 7)
		f.Add(isa.R4, isa.R1, isa.R2)
		f.Movi(isa.R0, 0)
		f.Epilogue()
	})
	prog, _, flow := dataflowFor(t, im)
	f := funcCFG(t, prog, "chain")

	addAddr := addrOfOp(t, f, isa.OpAdd, 0)
	refs, ok := flow.FirstUses(addAddr, 1)
	if !ok || len(refs) != 1 || refs[0].Addr != addAddr || refs[0].Slot != SlotRa {
		t.Fatalf("FirstUses(add, r1) = %v, %v; want [{add ra}]", refs, ok)
	}

	// Same set — same class — at every boundary from the def to the use.
	want, _ := flow.ClassID(addAddr, 1)
	if want == 0 {
		t.Fatal("r1 live at its use but ClassID is 0")
	}
	for n := 1; n <= 2; n++ { // the movi r2 / movi r3 boundaries
		pc := addrOfOp(t, f, isa.OpMovi, n)
		if id, ok := flow.ClassID(pc, 1); !ok || id != want {
			t.Errorf("ClassID(%#x, r1) = %d, %v; want %d", pc, id, ok, want)
		}
	}

	// r2 enters through the other operand slot: a different class.
	if id, _ := flow.ClassID(addAddr, 2); id == want || id == 0 {
		t.Errorf("ClassID(add, r2) = %d; want nonzero and distinct from r1's %d", id, want)
	}

	// Past the last use the value is provably benign.
	deadAddr := addrOfOp(t, f, isa.OpMovi, 3) // movi r0, 0
	if refs, ok := flow.FirstUses(deadAddr, 1); !ok || len(refs) != 0 {
		t.Errorf("FirstUses(after add, r1) = %v, %v; want empty", refs, ok)
	}
	if id, ok := flow.ClassID(deadAddr, 1); !ok || id != 0 {
		t.Errorf("ClassID(after add, r1) = %d, %v; want 0 (benign)", id, ok)
	}
}

// TestCallClobberedChains: interprocedural kills and flows.  A value the
// callee unconditionally overwrites without reading dies at the call; a
// value the callee leaves alone flows through to its post-call use; a
// value the callee reads has its first use *at* the call (SlotCall).
func TestCallClobberedChains(t *testing.T) {
	im := buildWith(t, func(m *asm.Module) {
		g := m.Func("clobber") // writes r3, never reads it
		g.Prologue(0)
		g.Movi(isa.R3, 7)
		g.Epilogue()
		u := m.Func("consume") // reads r2 on entry
		u.Prologue(0)
		u.Add(isa.R0, isa.R2, isa.R2)
		u.Epilogue()
		f := m.Func("caller")
		f.Prologue(0)
		f.Movi(isa.R2, 3) // read by consume, via clobber's call boundary
		f.Movi(isa.R3, 1) // dead: clobber must-defines r3 before any use
		f.Movi(isa.R4, 2) // flows through both calls to the add below
		f.Call("clobber")
		f.Call("consume")
		f.Add(isa.R0, isa.R3, isa.R4)
		f.Movi(isa.R0, 0)
		f.Epilogue()
	})
	prog, _, flow := dataflowFor(t, im)
	f := funcCFG(t, prog, "caller")
	callClobber := addrOfOp(t, f, isa.OpCall, 0)
	callConsume := addrOfOp(t, f, isa.OpCall, 1)

	// r3 at the first call: clobber's mustDef kills it, mayUse excludes
	// it, so the pre-call value provably never reaches the post-call add.
	if refs, ok := flow.FirstUses(callClobber, 3); !ok || len(refs) != 0 {
		t.Errorf("FirstUses(call clobber, r3) = %v, %v; want empty (call-clobbered)", refs, ok)
	}
	if id, ok := flow.ClassID(callClobber, 3); !ok || id != 0 {
		t.Errorf("ClassID(call clobber, r3) = %d, %v; want 0 (benign)", id, ok)
	}

	// r4 is untouched by both callees: its first use is the add after
	// the calls, through the Rb slot.
	addAddr := addrOfOp(t, f, isa.OpAdd, 0)
	refs, ok := flow.FirstUses(callClobber, 4)
	if !ok || len(refs) != 1 || refs[0].Addr != addAddr || refs[0].Slot != SlotRb {
		t.Errorf("FirstUses(call clobber, r4) = %v, %v; want [{add rb}]", refs, ok)
	}

	// r2 is read inside consume: its first use from before either call is
	// the consume call site itself, as a summarized SlotCall use (clobber
	// neither reads nor writes r2, so the value flows past it).
	refs, ok = flow.FirstUses(callClobber, 2)
	if !ok || len(refs) != 1 || refs[0].Addr != callConsume || refs[0].Slot != SlotCall {
		t.Errorf("FirstUses(call clobber, r2) = %v, %v; want [{call-consume call}]", refs, ok)
	}
}

// TestIndirectCallConservatism: an unresolved callr must be treated as a
// use of every register (and makes every function reachable), so no
// pre-call value is ever pruned across it.  Kept in its own image: the
// mere presence of a callr poisons return-liveness program-wide.
func TestIndirectCallConservatism(t *testing.T) {
	im := buildApp(t, func(m *asm.Module) {
		f := m.Func("main")
		f.Prologue(0)
		f.Movi(isa.R5, 9) // nothing reads r5 textually
		f.MoviSym(isa.R1, "helper", 0)
		f.Callr(isa.R1)
		f.Movi(isa.R0, 0)
		f.Epilogue()
		g := m.Func("helper")
		g.Prologue(0)
		g.Movi(isa.R0, 1)
		g.Epilogue()
	})
	prog, _, flow := dataflowFor(t, im)
	f := funcCFG(t, prog, "main")
	callr := addrOfOp(t, f, isa.OpCallr, 0)

	refs, ok := flow.FirstUses(callr, 5)
	if !ok || len(refs) != 1 || refs[0].Addr != callr || refs[0].Slot != SlotCall {
		t.Errorf("FirstUses(callr, r5) = %v, %v; want [{callr call}] (conservative)", refs, ok)
	}
	// The callr makes every function reachable — including ones nothing
	// names — so the equivalence pass partitions all of them.
	for _, fn := range prog.Funcs {
		if fn.Sym.Owner == image.OwnerUser && !fn.Reachable {
			t.Errorf("%s: not reachable despite an unresolved callr", fn.Sym.Name)
		}
	}
}

// TestX87TagWordDepth: fldst (push a copy of st(imm)) and fxch require
// imm+1 live x87 slots.  A well-formed sequence passes all analyses with
// liveness and dataflow in agreement; touching a slot below the current
// depth is flagged by the fpstack pass.
func TestX87TagWordDepth(t *testing.T) {
	im := buildWith(t, func(m *asm.Module) {
		f := m.Func("x87_ok")
		f.Prologue(8)
		f.Fldz()           // depth 1
		f.Fld1()           // depth 2
		f.Fldst(1)         // push copy of st(1): depth 3
		f.Fxch(1)          // swap st0/st1: depth unchanged
		f.Faddp()          // depth 2
		f.Faddp()          // depth 1
		f.Fstp(isa.FP, -8) // store+pop: depth 0
		f.Epilogue()
		g := m.Func("x87_bad")
		g.Fldz()   // depth 1
		g.Fldst(1) // st(1) does not exist: underflow
		g.Fstp(isa.FP, -8)
		g.Ret()
	})
	prog, live, all := analyzeImage(t, im)
	flow := ComputeDataflow(prog, live)
	all = append(all, flow.Findings...)
	if fs := findingsFor(all, "fpstack", "x87_bad"); len(fs) == 0 {
		t.Error("fldst below the live x87 depth not flagged by the fpstack pass")
	}
	for _, f := range all {
		if f.Func != "x87_bad" {
			t.Errorf("collateral finding: %s", f)
		}
	}
	// The legal x87 traffic must not perturb the GPR dataflow: the
	// frame base stays live (and classed) across the whole sequence.
	f := funcCFG(t, prog, "x87_ok")
	if id, ok := flow.ClassID(addrOfOp(t, f, isa.OpFxch, 0), isa.FP); !ok || id == 0 {
		t.Errorf("ClassID(fxch, fp) = %d, %v; want a nonzero class", id, ok)
	}
}

// TestStackSlotClaims: the dead-slot analysis claims exactly the stored-
// but-never-reloaded fp-relative bytes, and withdraws every claim when
// the frame pointer escapes or an access is runtime-indexed.
func TestStackSlotClaims(t *testing.T) {
	im := buildApp(t, func(m *asm.Module) {
		f := m.Func("main")
		f.Prologue(0)
		f.Call("dead_store")
		f.Call("fp_escape")
		f.Call("indexed")
		f.Movi(isa.R0, 0)
		f.Epilogue()

		g := m.Func("dead_store")
		g.Prologue(8)
		g.Movi(isa.R1, 42)
		g.St(isa.FP, -4, isa.R1) // live: reloaded below
		g.St(isa.FP, -8, isa.R1) // dead: never reloaded
		g.Ld(isa.R2, isa.FP, -4)
		g.Add(isa.R0, isa.R2, isa.R2)
		g.Epilogue()

		h := m.Func("fp_escape")
		h.Prologue(4)
		h.Movi(isa.R1, 1)
		h.St(isa.FP, -4, isa.R1)
		h.Movr(isa.R2, isa.FP) // the frame address escapes into r2
		h.Add(isa.R0, isa.R2, isa.R2)
		h.Epilogue()

		k := m.Func("indexed")
		k.Prologue(4)
		k.Movi(isa.R1, 0)
		k.St(isa.FP, -4, isa.R1)          // never reloaded directly...
		k.Ldx(isa.R2, isa.FP, isa.R1, -4) // ...but indexed: offsets unresolvable
		k.Add(isa.R0, isa.R2, isa.R2)
		k.Epilogue()
	})
	_, _, flow := dataflowFor(t, im)

	slots := make(map[string]StackSlotInfo)
	for _, s := range flow.StackSlots() {
		slots[s.Func] = s
	}
	ds := slots["dead_store"]
	if ds.WrittenBytes != 8 || ds.DeadBytes != 4 {
		t.Errorf("dead_store: written %d dead %d; want 8 written, 4 dead", ds.WrittenBytes, ds.DeadBytes)
	}
	for i, off := range []int32{-8, -7, -6, -5} {
		if i >= len(ds.DeadOffsets) || ds.DeadOffsets[i] != off {
			t.Errorf("dead_store: DeadOffsets = %v; want [-8 -7 -6 -5]", ds.DeadOffsets)
			break
		}
	}
	if fe := slots["fp_escape"]; !fe.FPEscapes || fe.DeadBytes != 0 {
		t.Errorf("fp_escape: FPEscapes=%v DeadBytes=%d; escape must withdraw all claims", fe.FPEscapes, fe.DeadBytes)
	}
	if ix := slots["indexed"]; !ix.Indexed || ix.DeadBytes != 0 {
		t.Errorf("indexed: Indexed=%v DeadBytes=%d; indexed access must withdraw all claims", ix.Indexed, ix.DeadBytes)
	}
}

// TestEquivalencePartition: the partition exposes dead registers as
// benign mask bits, live ones as nonzero classes, and unreferenced user
// data/BSS symbols as static benign spans.
func TestEquivalencePartition(t *testing.T) {
	im := buildApp(t, func(m *asm.Module) {
		m.DataI32("used_word", 7)
		m.DataI32("unused_word", 9)
		m.BSS("unused_buf", 64)
		f := m.Func("main")
		f.Prologue(0)
		f.LdSym(isa.R1, "used_word", 0)
		f.Add(isa.R0, isa.R1, isa.R1)
		f.Movi(isa.R0, 0)
		f.Epilogue()
	})
	prog, live, flow := dataflowFor(t, im)
	_, abiStats := ABICheck(prog)
	eq := ComputeEquivalence(prog, live, flow, abiStats)

	f := funcCFG(t, prog, "main")
	addAddr := addrOfOp(t, f, isa.OpAdd, 0)
	benign, ids, ok := eq.PartitionAt(addAddr)
	if !ok {
		t.Fatalf("no partition at %#x", addAddr)
	}
	if benign&(1<<1) != 0 || ids[1] == 0 {
		t.Errorf("r1 is read by the add yet partitioned benign (mask %#x, id %d)", benign, ids[1])
	}
	if benign&(1<<2) == 0 || ids[2] != 0 {
		t.Errorf("r2 is never used yet not benign (mask %#x, id %d)", benign, ids[2])
	}
	if ids[8] == 0 {
		t.Error("PC must always carry a per-site class")
	}
	// The same register one boundary earlier (at the load that defines
	// it) is benign: the pre-load value cannot reach anything.
	ldAddr := addrOfOp(t, f, isa.OpLd, 0)
	if b, ids2, ok := eq.PartitionAt(ldAddr); !ok || b&(1<<1) == 0 || ids2[1] != 0 {
		t.Errorf("r1 before its defining load: mask %#x id %d, %v; want benign", b, ids2[1], ok)
	}

	var used, unused, buf *image.Symbol
	for i := range im.Symbols {
		switch im.Symbols[i].Name {
		case "used_word":
			used = &im.Symbols[i]
		case "unused_word":
			unused = &im.Symbols[i]
		case "unused_buf":
			buf = &im.Symbols[i]
		}
	}
	if used == nil || unused == nil || buf == nil {
		t.Fatal("fixture symbols missing from the image")
	}
	if eq.StaticBenignAt(used.Addr) {
		t.Error("used_word is loaded by main yet claimed benign")
	}
	if !eq.StaticBenignAt(unused.Addr) || !eq.StaticBenignAt(unused.Addr+3) {
		t.Error("unused_word is never referenced yet not claimed benign")
	}
	if !eq.StaticBenignAt(buf.Addr) || !eq.StaticBenignAt(buf.Addr+63) {
		t.Error("unused_buf is never referenced yet not claimed benign")
	}
	if eq.StaticBenignAt(buf.Addr + 64) {
		t.Error("benign span extends past the end of unused_buf")
	}
	if eq.Summary.DataBenignBytes != 4 || eq.Summary.BSSBenignBytes != 64 {
		t.Errorf("summary benign bytes data=%d bss=%d; want 4 and 64",
			eq.Summary.DataBenignBytes, eq.Summary.BSSBenignBytes)
	}
}
