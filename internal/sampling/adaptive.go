// The adaptive campaign planner: stratified sequential sampling with a
// deterministic round-based stopping rule.
//
// The paper sizes every region with the worst-case fixed n ≥ 0.25(z/d)²
// (§4.3) because it assumes nothing about the unknown proportion P.  A
// campaign that watches its own tallies can do better: most regions sit
// far from P=0.5 (text and heap faults rarely manifest), so their Wilson
// intervals tighten to the target d long before the worst-case count.
// The planner runs each stratum (region) in rounds, extends only the
// strata whose confidence interval is still wider than d, and stops a
// stratum once its Wilson half-width reaches the target — never
// exceeding the fixed-n cap, so adaptive campaigns are always a subset
// of the worst-case campaign.
//
// Determinism contract: the next round's per-stratum allocation is a
// pure function of (priors, target, confidence, round size,
// integer tallies-so-far).  The planner holds no RNG and never consults
// the clock; given the same observed outcomes it reproduces the same
// rounds, which is what lets a coordinator-driven cluster campaign and a
// single-process run produce byte-identical journals, and what lets
// faultmerge re-validate a finished journal by replaying the planner
// over the recorded outcomes.
package sampling

import (
	"fmt"
	"math"
)

// Default knobs of the round schedule.  They are compile-time constants
// rather than configuration so that a journal header pinning
// (confidence, target, round size, priors) fully determines the replay.
const (
	// DefaultRoundSize bounds how many new experiments a single round
	// may add to one stratum.  Rounds are barriers — distributed workers
	// drain a round completely before the planner sees its tallies — so
	// the size trades scheduling overhead against overshoot past the
	// stopping point.
	DefaultRoundSize = 96

	// pilotSize is the minimum first-round draw per stratum: enough that
	// the pilot proportion is worth reacting to, and already past the
	// stopping point for strata that turn out to be all-benign (a
	// zero-error stratum closes at n ≥ z²(1/2d − 1) ≈ 36 for the
	// paper's d=4.9 %).
	pilotSize = 48

	// minStep is the minimum per-round growth of an open stratum, so a
	// needed-sample estimate that undershoots (the proportion drifted
	// toward 0.5 as draws came in) still makes progress every round.
	minStep = 8
)

// Stratum describes one sampling stratum (a fault region) given to the
// planner: a display name and a static prior for its manifestation
// proportion, used only to size the pilot round.  Priors outside (0,1)
// mean "unknown" and fall back to the paper's worst case 0.5.
type Stratum struct {
	Name  string
	Prior float64
}

// PlannerConfig fixes the estimation contract of an adaptive campaign.
type PlannerConfig struct {
	Confidence float64 // CI level, e.g. 0.95
	Target     float64 // target half-width d, e.g. 0.049 (§4.3 paper parity)
	RoundSize  int     // per-stratum per-round allocation bound; 0 = DefaultRoundSize
}

// StratumState is a read-only snapshot of one stratum's progress.
type StratumState struct {
	Name      string
	Prior     float64 // effective pilot prior (0.5 where unknown)
	Executed  int     // cumulative experiments observed
	Errors    int     // cumulative manifestations among them
	HalfWidth float64 // Wilson half-width at the current tally (0.5 before any draw)
	Closed    bool    // stopping rule satisfied (or cap reached)
}

// Planner runs the sequential stopping rule.  It does not execute
// anything itself: callers alternate NextRound (how many more draws each
// stratum needs) with SetTally (the cumulative outcomes so far) until
// NextRound returns all zeros.
type Planner struct {
	cfg    PlannerConfig
	z      float64
	cap    int
	strata []plannerStratum
}

type plannerStratum struct {
	name     string
	prior    float64
	executed int
	errors   int
}

// NewPlanner validates the configuration and builds a planner over the
// given strata.  The per-stratum cap is the paper's fixed-n worst case
// SampleSize(confidence, target); because the Wilson half-width at the
// cap is below the Wald bound d, every stratum is guaranteed to close.
func NewPlanner(cfg PlannerConfig, strata []Stratum) (*Planner, error) {
	if len(strata) == 0 {
		return nil, fmt.Errorf("sampling: planner needs at least one stratum")
	}
	if cfg.RoundSize == 0 {
		cfg.RoundSize = DefaultRoundSize
	}
	if cfg.RoundSize < 1 {
		return nil, fmt.Errorf("sampling: round size %d must be positive", cfg.RoundSize)
	}
	cap, err := SampleSize(cfg.Confidence, cfg.Target)
	if err != nil {
		return nil, err
	}
	z, err := ZForConfidence(cfg.Confidence)
	if err != nil {
		return nil, err
	}
	p := &Planner{cfg: cfg, z: z, cap: cap}
	for _, s := range strata {
		prior := s.Prior
		if !(prior > 0 && prior < 1) { // also rejects NaN
			prior = 0.5
		}
		p.strata = append(p.strata, plannerStratum{name: s.Name, prior: prior})
	}
	return p, nil
}

// Cap returns the per-stratum experiment cap — the fixed-n count the
// paper would have used for every stratum.
func (p *Planner) Cap() int { return p.cap }

// Config returns the planner's estimation contract.
func (p *Planner) Config() PlannerConfig { return p.cfg }

// SetTally records the cumulative outcome counts of a stratum: executed
// experiments so far and how many of them manifested as errors.
func (p *Planner) SetTally(stratum, errors, executed int) error {
	if stratum < 0 || stratum >= len(p.strata) {
		return fmt.Errorf("sampling: stratum %d outside [0,%d)", stratum, len(p.strata))
	}
	if executed < 0 || executed > p.cap {
		return fmt.Errorf("sampling: executed %d outside [0,%d]", executed, p.cap)
	}
	if errors < 0 || errors > executed {
		return fmt.Errorf("sampling: errors %d outside [0,%d]", errors, executed)
	}
	p.strata[stratum].errors = errors
	p.strata[stratum].executed = executed
	return nil
}

// halfWidth returns the Wilson half-width of a stratum's current tally;
// 0.5 (the widest possible interval over [0,1]) before any draw.
func (p *Planner) halfWidth(s *plannerStratum) float64 {
	if s.executed == 0 {
		return 0.5
	}
	_, half := wilson(p.z, float64(s.errors)/float64(s.executed), float64(s.executed))
	return half
}

// closed reports whether a stratum's stopping rule is satisfied: the
// Wilson half-width reached the target d, or the fixed-n cap ran out.
func (p *Planner) closed(s *plannerStratum) bool {
	if s.executed >= p.cap {
		return true
	}
	return s.executed > 0 && p.halfWidth(s) <= p.cfg.Target
}

// Done reports whether every stratum is closed.
func (p *Planner) Done() bool {
	for i := range p.strata {
		if !p.closed(&p.strata[i]) {
			return false
		}
	}
	return true
}

// NextRound returns the next round's per-stratum allocation — how many
// additional experiments each stratum runs — as a pure function of the
// current tallies.  All zeros means the campaign is done.
//
// Open strata are sized toward the smallest n whose Wilson half-width at
// the current proportion (the static prior before any draw) meets the
// target, clamped to [minStep, RoundSize] per round and to the cap
// overall.  Sensitive strata (proportion near 0.5) therefore draw large
// rounds while near-degenerate ones stop at their pilot — the
// oversampling the static AVF estimates pay for.
func (p *Planner) NextRound() []int {
	allocs := make([]int, len(p.strata))
	for i := range p.strata {
		s := &p.strata[i]
		if p.closed(s) {
			continue
		}
		prop := s.prior
		floor := pilotSize
		if s.executed > 0 {
			prop = float64(s.errors) / float64(s.executed)
			floor = minStep
		}
		need := p.neededAt(prop) - s.executed
		if need < floor {
			need = floor
		}
		if need > p.cfg.RoundSize {
			need = p.cfg.RoundSize
		}
		if room := p.cap - s.executed; need > room {
			need = room
		}
		allocs[i] = need
	}
	return allocs
}

// neededAt is NeededSamples against the planner's own z and target,
// with the proportion's contribution evaluated exactly like halfWidth
// so the search agrees with the stopping rule.
func (p *Planner) neededAt(prop float64) int {
	lo, hi := 1, p.cap
	for lo < hi {
		mid := (lo + hi) / 2
		if _, half := wilson(p.z, prop, float64(mid)); half <= p.cfg.Target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Snapshot returns the per-stratum progress in stratum order.
func (p *Planner) Snapshot() []StratumState {
	out := make([]StratumState, len(p.strata))
	for i := range p.strata {
		s := &p.strata[i]
		out[i] = StratumState{
			Name:      s.name,
			Prior:     s.prior,
			Executed:  s.executed,
			Errors:    s.errors,
			HalfWidth: p.halfWidth(s),
			Closed:    p.closed(s),
		}
	}
	return out
}

// TotalExecuted returns the cumulative experiment count across strata.
func (p *Planner) TotalExecuted() int {
	var n int
	for i := range p.strata {
		n += p.strata[i].executed
	}
	return n
}

// FixedTotal returns the experiment count the fixed-n design would have
// spent on the same strata.
func (p *Planner) FixedTotal() int { return p.cap * len(p.strata) }

// Savings returns the adaptive campaign's cost as a fraction of the
// fixed-n design (1.0 = no savings), for progress reporting.
func (p *Planner) Savings() float64 {
	return float64(p.TotalExecuted()) / math.Max(1, float64(p.FixedTotal()))
}
