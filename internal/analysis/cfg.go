// Package analysis statically analyzes linked guest images.  It rebuilds
// per-function control-flow graphs from the text segment, verifies the
// internal/asm calling convention, runs register and FP-stack liveness
// dataflow, predicts per-region fault sensitivity (a static AVF estimate
// in the ACE-bit tradition: a fault in a bit that is never live cannot
// change the program outcome), and lints the MPI communication structure
// recorded from a clean run.  cmd/faultlint drives all passes.
package analysis

import (
	"fmt"
	"sort"

	"mpifault/internal/abi"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Finding is one defect reported by a static pass.
type Finding struct {
	Pass string // "cfg", "abi", "fpstack" or "mpi"
	Func string // function name, "" for whole-program findings
	Addr uint32 // instruction address, 0 for whole-program findings
	Msg  string
}

func (f Finding) String() string {
	switch {
	case f.Func != "" && f.Addr != 0:
		return fmt.Sprintf("[%s] %s @ 0x%08x: %s", f.Pass, f.Func, f.Addr, f.Msg)
	case f.Func != "":
		return fmt.Sprintf("[%s] %s: %s", f.Pass, f.Func, f.Msg)
	default:
		return fmt.Sprintf("[%s] %s", f.Pass, f.Msg)
	}
}

// termKind says why a basic block ends.
type termKind uint8

const (
	termFall  termKind = iota // next instruction is a leader
	termJmp                   // unconditional branch
	termCond                  // conditional branch: target + fall-through
	termCall                  // call; falls through unless callee is noreturn
	termCallr                 // indirect call; always assumed to return
	termRet                   // function return
	termExit                  // sys exit/abort: execution never continues
)

// Block is one basic block: instructions [Start,End) of the function.
type Block struct {
	Start, End int
	Succs      []int // intra-procedural successor blocks
	term       termKind
	callee     string // resolved callee name when term is termCall
}

// FuncCFG is the decoded control-flow graph of one function.
type FuncCFG struct {
	Sym    image.Symbol
	Instrs []isa.Instr
	Blocks []Block

	// NoReturn reports that no path from entry reaches a Ret: every
	// execution ends in sys exit/abort or loops forever (e.g. app_abort).
	NoReturn bool
	// Reachable reports the function can execute at all, following call
	// edges from the image entry point.
	Reachable bool

	blockOf []int  // instruction index -> block index
	reach   []bool // instruction intra-procedurally reachable from entry
	callees []string
}

// Addr returns the address of instruction i.
func (f *FuncCFG) Addr(i int) uint32 { return f.Sym.Addr + uint32(i*isa.InstrBytes) }

// indexOf maps an address to an instruction index within the function.
func (f *FuncCFG) indexOf(addr uint32) (int, bool) {
	if addr < f.Sym.Addr || addr >= f.Sym.Addr+f.Sym.Size {
		return 0, false
	}
	off := addr - f.Sym.Addr
	if off%isa.InstrBytes != 0 {
		return 0, false
	}
	return int(off / isa.InstrBytes), true
}

// Program is the analyzed image: one CFG per text-segment function.
type Program struct {
	Image *image.Image
	Funcs []*FuncCFG // sorted by address

	// Findings holds the CFG pass's defects (undecodable opcodes, bad
	// branch targets, falls-off-the-end).  ABICheck and ComputeLiveness
	// report theirs separately.
	Findings []Finding

	byName   map[string]*FuncCFG
	hasCallr bool // a reachable indirect call exists somewhere
}

// Func returns the CFG of the named function, or nil.
func (p *Program) Func(name string) *FuncCFG { return p.byName[name] }

// Analyze decodes every function of the image and builds the program
// CFG.  Structural defects land in the returned Program's Findings;
// Analyze itself only fails on a malformed symbol table.
func Analyze(im *image.Image) (*Program, error) {
	prog := &Program{Image: im, byName: make(map[string]*FuncCFG)}
	for _, sym := range im.Symbols {
		if sym.Kind != image.SymFunc {
			continue
		}
		if sym.Addr < image.TextBase || sym.Addr+sym.Size > im.TextEnd() {
			return nil, fmt.Errorf("function %s [0x%x,0x%x) outside text", sym.Name, sym.Addr, sym.Addr+sym.Size)
		}
		f := &FuncCFG{Sym: sym}
		if sym.Size%isa.InstrBytes != 0 {
			prog.Findings = append(prog.Findings, Finding{
				Pass: "cfg", Func: sym.Name,
				Msg: fmt.Sprintf("size %d is not a multiple of the %d-byte instruction size", sym.Size, isa.InstrBytes),
			})
		}
		n := int(sym.Size / isa.InstrBytes)
		f.Instrs = make([]isa.Instr, n)
		for i := 0; i < n; i++ {
			off := sym.Addr - image.TextBase + uint32(i*isa.InstrBytes)
			f.Instrs[i] = isa.Decode(im.Text[off : off+isa.InstrBytes])
		}
		prog.Funcs = append(prog.Funcs, f)
		prog.byName[sym.Name] = f
	}
	sort.Slice(prog.Funcs, func(i, j int) bool { return prog.Funcs[i].Sym.Addr < prog.Funcs[j].Sym.Addr })

	for _, f := range prog.Funcs {
		prog.buildBlocks(f)
	}
	mayReturn := prog.noReturnFixpoint()
	for _, f := range prog.Funcs {
		f.NoReturn = !mayReturn[f]
		prog.finishEdges(f, mayReturn)
		f.computeReach()
		prog.checkFunc(f)
	}
	prog.markReachable()
	return prog, nil
}

// buildBlocks splits a function into basic blocks (successor edges are
// filled in by finishEdges, after the noreturn fixpoint).
func (p *Program) buildBlocks(f *FuncCFG) {
	n := len(f.Instrs)
	if n == 0 {
		return
	}
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range f.Instrs {
		switch {
		case in.Op.IsBranch(): // jmp, conditional branches, call
			if i+1 < n {
				leader[i+1] = true
			}
			if in.Op != isa.OpCall {
				if t, ok := f.indexOf(uint32(in.Imm)); ok {
					leader[t] = true
				}
			}
		case in.Op == isa.OpCallr, in.Op == isa.OpRet:
			if i+1 < n {
				leader[i+1] = true
			}
		case isSysExit(in):
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	f.blockOf = make([]int, n)
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := Block{Start: start, End: i}
			last := f.Instrs[i-1]
			switch {
			case last.Op == isa.OpJmp:
				b.term = termJmp
			case last.Op.IsBranch() && last.Op != isa.OpCall:
				b.term = termCond
			case last.Op == isa.OpCall:
				b.term = termCall
				if g := p.funcAt(uint32(last.Imm)); g != nil {
					b.callee = g.Sym.Name
				}
			case last.Op == isa.OpCallr:
				b.term = termCallr
			case last.Op == isa.OpRet:
				b.term = termRet
			case isSysExit(last):
				b.term = termExit
			default:
				b.term = termFall
			}
			for j := start; j < i; j++ {
				f.blockOf[j] = len(f.Blocks)
			}
			f.Blocks = append(f.Blocks, b)
			start = i
		}
	}
}

// isSysExit reports a syscall after which execution cannot continue.
func isSysExit(in isa.Instr) bool {
	return in.Op == isa.OpSys && (in.Imm == abi.SysExit || in.Imm == abi.SysAbort)
}

// funcAt returns the function whose entry point is exactly addr.
func (p *Program) funcAt(addr uint32) *FuncCFG {
	i := sort.Search(len(p.Funcs), func(i int) bool { return p.Funcs[i].Sym.Addr >= addr })
	if i < len(p.Funcs) && p.Funcs[i].Sym.Addr == addr {
		return p.Funcs[i]
	}
	return nil
}

// noReturnFixpoint computes, as a least fixpoint from "nothing returns",
// which functions may reach a Ret.  Unresolved call targets and indirect
// calls are conservatively assumed to return.
func (p *Program) noReturnFixpoint() map[*FuncCFG]bool {
	mayReturn := make(map[*FuncCFG]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			if mayReturn[f] {
				continue
			}
			if p.reachesRet(f, mayReturn) {
				mayReturn[f] = true
				changed = true
			}
		}
	}
	return mayReturn
}

func (p *Program) reachesRet(f *FuncCFG, mayReturn map[*FuncCFG]bool) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	seen := make([]bool, len(f.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := &f.Blocks[bi]
		if b.term == termRet {
			return true
		}
		for _, s := range f.blockSuccs(bi, func(callee string) bool {
			g := p.byName[callee]
			return g == nil || mayReturn[g]
		}) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// blockSuccs computes a block's successors; calleeReturns decides whether
// a call falls through.  Bad branch targets simply yield no edge — the
// checkFunc pass reports them.
func (f *FuncCFG) blockSuccs(bi int, calleeReturns func(string) bool) []int {
	b := &f.Blocks[bi]
	var succs []int
	fall := func() {
		if b.End < len(f.Instrs) {
			succs = append(succs, f.blockOf[b.End])
		}
	}
	switch b.term {
	case termJmp, termCond:
		if t, ok := f.indexOf(uint32(f.Instrs[b.End-1].Imm)); ok {
			succs = append(succs, f.blockOf[t])
		}
		if b.term == termCond {
			fall()
		}
	case termCall:
		if b.callee == "" || calleeReturns(b.callee) {
			fall()
		}
	case termCallr, termFall:
		fall()
	case termRet, termExit:
	}
	return succs
}

func (p *Program) finishEdges(f *FuncCFG, mayReturn map[*FuncCFG]bool) {
	for bi := range f.Blocks {
		f.Blocks[bi].Succs = f.blockSuccs(bi, func(callee string) bool {
			g := p.byName[callee]
			return g == nil || mayReturn[g]
		})
	}
}

// computeReach marks instructions reachable from the function entry.
// Unreachable bytes — like the deliberate invalid-opcode pad the linker
// appends after _start's exit syscall — are never analyzed or flagged.
func (f *FuncCFG) computeReach() {
	f.reach = make([]bool, len(f.Instrs))
	if len(f.Blocks) == 0 {
		return
	}
	seen := make([]bool, len(f.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := f.Blocks[bi].Start; i < f.Blocks[bi].End; i++ {
			f.reach[i] = true
		}
		for _, s := range f.Blocks[bi].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
}

// checkFunc reports the CFG pass findings for one function.
func (p *Program) checkFunc(f *FuncCFG) {
	im := p.Image
	bad := func(i int, format string, args ...interface{}) {
		p.Findings = append(p.Findings, Finding{
			Pass: "cfg", Func: f.Sym.Name, Addr: f.Addr(i), Msg: fmt.Sprintf(format, args...),
		})
	}
	for i, in := range f.Instrs {
		if !f.reach[i] {
			continue
		}
		if !in.Op.Valid() {
			bad(i, "undecodable opcode 0x%02x", uint8(in.Op))
			continue
		}
		if !in.OperandsValid() {
			bad(i, "%s: operand byte selects a nonexistent register", in)
		}
		switch {
		case in.Op == isa.OpCall:
			tgt := uint32(in.Imm)
			if g := p.funcAt(tgt); g != nil {
				f.callees = append(f.callees, g.Sym.Name)
			} else {
				bad(i, "call target 0x%08x is not a function entry", tgt)
			}
		case in.Op.IsBranch(): // jmp + conditionals
			tgt := uint32(in.Imm)
			if _, ok := f.indexOf(tgt); ok {
				break
			}
			switch {
			case tgt < image.TextBase || tgt >= im.TextEnd():
				bad(i, "branch target 0x%08x outside the text segment", tgt)
			case (tgt-image.TextBase)%isa.InstrBytes != 0:
				bad(i, "branch into the middle of an instruction (target 0x%08x)", tgt)
			default:
				bad(i, "branch target 0x%08x outside the function", tgt)
			}
		}
	}
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if !f.reach[b.Start] || b.End < len(f.Instrs) {
			continue
		}
		fallsOff := false
		switch b.term {
		case termFall, termCallr:
			fallsOff = true
		case termCond, termCall:
			// A conditional branch or a returning call as the very last
			// instruction falls off on the not-taken / return path.
			fallsOff = len(b.Succs) < 2 && b.term == termCond || b.term == termCall && calleeFallsThrough(p, b)
		}
		if fallsOff {
			p.Findings = append(p.Findings, Finding{
				Pass: "cfg", Func: f.Sym.Name, Addr: f.Addr(b.End - 1),
				Msg: "control falls off the end of the function",
			})
		}
	}
}

func calleeFallsThrough(p *Program, b *Block) bool {
	if b.callee == "" {
		return true
	}
	g := p.byName[b.callee]
	return g == nil || !g.NoReturn
}

// markReachable walks call edges from the image entry point.  Any
// reachable indirect call makes every function reachable — the analysis
// has no value tracking for code addresses.
func (p *Program) markReachable() {
	entry := p.funcAt(p.Image.Entry)
	if entry == nil {
		p.Findings = append(p.Findings, Finding{
			Pass: "cfg", Msg: fmt.Sprintf("entry point 0x%08x is not a function", p.Image.Entry),
		})
		return
	}
	var visit func(*FuncCFG)
	visit = func(f *FuncCFG) {
		if f.Reachable {
			return
		}
		f.Reachable = true
		for i, in := range f.Instrs {
			if f.reach[i] && in.Op == isa.OpCallr {
				p.hasCallr = true
			}
		}
		for _, name := range f.callees {
			if g := p.byName[name]; g != nil {
				visit(g)
			}
		}
	}
	visit(entry)
	if p.hasCallr {
		for _, f := range p.Funcs {
			f.Reachable = true
		}
	}
}
