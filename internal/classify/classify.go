// Package classify maps a finished run to the paper's error-manifestation
// taxonomy (§5.1): Correct, Crash, Hang, Incorrect output, Application
// Detected, and MPI Detected.
package classify

import (
	"bytes"
	"fmt"

	"mpifault/internal/cluster"
	"mpifault/internal/vm"
)

// Outcome is one of the paper's manifestation classes.
type Outcome int

const (
	// Correct: the injected fault did not manifest.
	Correct Outcome = iota
	// Crash: abnormal termination surfaced through MPICH's signal and
	// error handling (SIGSEGV/SIGILL/SIGFPE or a fatal library error).
	Crash
	// Hang: the application failed to terminate (deadlock, livelock, or
	// exceeding the expected-completion margin).
	Hang
	// Incorrect: execution finished without any reported error but the
	// output differs from the golden run — silent data corruption.
	Incorrect
	// AppDetected: an internal application consistency check (assertion,
	// NaN test, checksum, bound check) caught the error and aborted.
	AppDetected
	// MPIDetected: the user-registered MPI error handler was invoked
	// (argument-check failure inside an MPI call).
	MPIDetected

	NumOutcomes
)

// String returns the paper's name for the class.
func (o Outcome) String() string {
	switch o {
	case Correct:
		return "Correct"
	case Crash:
		return "Crash"
	case Hang:
		return "Hang"
	case Incorrect:
		return "Incorrect"
	case AppDetected:
		return "App Detected"
	case MPIDetected:
		return "MPI Detected"
	default:
		return "Outcome?"
	}
}

// ParseOutcome inverts String: it resolves the paper's name for a
// manifestation class, as serialized in campaign journals.
func ParseOutcome(s string) (Outcome, error) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("classify: unknown outcome %q", s)
}

// IsError reports whether the outcome counts as a manifested error (the
// numerator of the paper's error rate).
func (o Outcome) IsError() bool { return o != Correct }

// Classify determines the manifestation of one run against the golden
// canonical output.
//
// Precedence follows the paper's §5.1 measurement procedure: an explicit
// detection (application abort, MPI error handler) takes priority over the
// crash it causes elsewhere; crashes take priority over the hang the
// surviving ranks would otherwise exhibit; hang beats output comparison
// (a hung run was terminated, so its output is meaningless); and only a
// run that finished silently is compared byte-for-byte with the golden
// output.
func Classify(res *cluster.Result, golden []byte) Outcome {
	if t := res.FirstFailure(); t != nil {
		switch t.Kind {
		case vm.TrapAbort:
			return AppDetected
		case vm.TrapMPIHandler:
			return MPIDetected
		default:
			return Crash
		}
	}
	if res.HangDetected {
		return Hang
	}
	for _, rr := range res.Ranks {
		if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit || rr.Trap.Code != 0 {
			// A rank vanished or exited nonzero with no diagnostic: the
			// user sees a failed job with no library error — silent
			// abnormality, counted as incorrect output.
			return Incorrect
		}
	}
	if !bytes.Equal(res.CanonicalOutput(), golden) {
		return Incorrect
	}
	return Correct
}
