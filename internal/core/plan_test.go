package core

import (
	"testing"
)

func TestPlanEnumeration(t *testing.T) {
	p := Plan{Regions: []Region{RegionRegularReg, RegionText, RegionMessage}, Injections: 5}
	if p.Total() != 15 {
		t.Fatalf("Total = %d, want 15", p.Total())
	}
	// Entry order is region-major, matching the experiment layout the
	// pre-shard campaign loop produced.
	if e := p.Entry(0); e.Region != RegionRegularReg || e.Index != 0 {
		t.Errorf("Entry(0) = %+v", e)
	}
	if e := p.Entry(7); e.Region != RegionText || e.Index != 2 {
		t.Errorf("Entry(7) = %+v", e)
	}
	if e := p.Entry(14); e.Region != RegionMessage || e.Index != 4 {
		t.Errorf("Entry(14) = %+v", e)
	}
}

func TestShardPartitionDisjointAndComplete(t *testing.T) {
	plans := []Plan{
		{Regions: Regions(), Injections: 7},
		{Regions: []Region{RegionRegularReg}, Injections: 24},
		{Regions: []Region{RegionHeap, RegionStack, RegionData}, Injections: 5},
	}
	for _, p := range plans {
		for _, k := range []int{1, 2, 3, 4, 5, 8, 16} {
			seen := make(map[string]int)
			count := 0
			for shard := 0; shard < k; shard++ {
				for _, e := range p.Shard(shard, k) {
					if prev, dup := seen[e.ID()]; dup {
						t.Fatalf("K=%d: entry %s in both shard %d and %d", k, e.ID(), prev, shard)
					}
					seen[e.ID()] = shard
					count++
				}
			}
			if count != p.Total() {
				t.Errorf("K=%d: shards cover %d of %d entries", k, count, p.Total())
			}
			for g := 0; g < p.Total(); g++ {
				if _, ok := seen[p.Entry(g).ID()]; !ok {
					t.Errorf("K=%d: entry %s missing from every shard", k, p.Entry(g).ID())
				}
			}
		}
	}
}

func TestShardSizesBalanced(t *testing.T) {
	p := Plan{Regions: Regions(), Injections: 10} // 80 experiments
	for _, k := range []int{3, 7} {
		min, max := p.Total(), 0
		for shard := 0; shard < k; shard++ {
			n := len(p.Shard(shard, k))
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Errorf("K=%d: shard sizes range %d-%d, want within 1", k, min, max)
		}
	}
}

func TestEntryIDRoundTrip(t *testing.T) {
	for _, region := range Regions() {
		for _, idx := range []int{0, 1, 17, 499} {
			e := PlanEntry{Region: region, Index: idx}
			got, err := ParseEntryID(e.ID())
			if err != nil {
				t.Fatalf("ParseEntryID(%q): %v", e.ID(), err)
			}
			if got != e {
				t.Errorf("round trip %q: got %+v", e.ID(), got)
			}
		}
	}
	for _, bad := range []string{"", "reg", "reg/", "reg/-1", "reg/x", "bogus/3"} {
		if _, err := ParseEntryID(bad); err == nil {
			t.Errorf("ParseEntryID(%q) accepted", bad)
		}
	}
}

func TestRegionShortRoundTrip(t *testing.T) {
	for _, region := range Regions() {
		got, err := ParseRegion(region.Short())
		if err != nil {
			t.Fatalf("ParseRegion(%q): %v", region.Short(), err)
		}
		if got != region {
			t.Errorf("ParseRegion(%q) = %v, want %v", region.Short(), got, region)
		}
	}
}

func TestParseShard(t *testing.T) {
	if s, k, err := ParseShard("2/5"); err != nil || s != 2 || k != 5 {
		t.Errorf("ParseShard(2/5) = %d,%d,%v", s, k, err)
	}
	for _, bad := range []string{"", "3", "3/", "/3", "3/3", "-1/3", "0/0", "a/b"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestPlanRange(t *testing.T) {
	p := Plan{Regions: []Region{RegionRegularReg, RegionMessage}, Injections: 4}
	// Contiguous lease-sized windows tile the plan exactly.
	var seen []PlanEntry
	for start := 0; start < p.Total(); start += 3 {
		seen = append(seen, p.Range(start, start+3)...)
	}
	if len(seen) != p.Total() {
		t.Fatalf("tiled ranges yield %d entries, want %d", len(seen), p.Total())
	}
	for g, pe := range seen {
		if pe != p.Entry(g) {
			t.Errorf("tiled entry %d = %+v, want %+v", g, pe, p.Entry(g))
		}
	}
	// Out-of-plan bounds clamp instead of panicking.
	if got := p.Range(-2, 3); len(got) != 3 || got[0] != p.Entry(0) {
		t.Errorf("Range(-2,3) = %+v", got)
	}
	if got := p.Range(6, 100); len(got) != 2 || got[1] != p.Entry(7) {
		t.Errorf("Range(6,100) = %+v", got)
	}
	if got := p.Range(5, 5); got != nil {
		t.Errorf("empty range = %+v", got)
	}
	if got := p.Range(9, 3); got != nil {
		t.Errorf("inverted range = %+v", got)
	}
}
