package sampling

import (
	"math"
	"reflect"
	"testing"
)

// population is a deterministic synthetic fault population: member i of a
// stratum manifests iff a hash of (stratumSeed, i) falls below the
// stratum's true rate.  Any prefix of it behaves like an iid sample, so
// the planner's prefix-growing schedule estimates the same proportion an
// exhaustive enumeration measures.
type population struct {
	seed uint64
	rate float64
}

func (p population) errorAt(i int) bool {
	x := p.seed + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x%1_000_000)/1_000_000 < p.rate
}

func (p population) exhaustive(n int) float64 {
	errs := 0
	for i := 0; i < n; i++ {
		if p.errorAt(i) {
			errs++
		}
	}
	return float64(errs) / float64(n)
}

// drive runs the planner to completion against the populations and
// returns the per-round allocation history plus the final snapshot.
func drive(t *testing.T, planner *Planner, pops []population) ([][]int, []StratumState) {
	t.Helper()
	executed := make([]int, len(pops))
	errors := make([]int, len(pops))
	var history [][]int
	for round := 0; ; round++ {
		if round > 1000 {
			t.Fatal("planner did not terminate")
		}
		allocs := planner.NextRound()
		history = append(history, append([]int(nil), allocs...))
		any := false
		for i, a := range allocs {
			for k := 0; k < a; k++ {
				if pops[i].errorAt(executed[i]) {
					errors[i]++
				}
				executed[i]++
				any = true
			}
			if a > 0 {
				if err := planner.SetTally(i, errors[i], executed[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !any {
			return history, planner.Snapshot()
		}
	}
}

func paperPlanner(t *testing.T, strata []Stratum) *Planner {
	t.Helper()
	p, err := NewPlanner(PlannerConfig{Confidence: 0.95, Target: 0.049}, strata)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlannerDeterministicRounds(t *testing.T) {
	strata := []Stratum{
		{Name: "hot", Prior: 0.6},
		{Name: "warm", Prior: 0.12},
		{Name: "cold", Prior: 0.01},
	}
	pops := []population{{seed: 11, rate: 0.62}, {seed: 22, rate: 0.10}, {seed: 33, rate: 0.0}}
	h1, s1 := drive(t, paperPlanner(t, strata), pops)
	h2, s2 := drive(t, paperPlanner(t, strata), pops)
	if !reflect.DeepEqual(h1, h2) {
		t.Errorf("round histories diverged:\n%v\n%v", h1, h2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("final snapshots diverged:\n%v\n%v", s1, s2)
	}
}

func TestPlannerAgreesWithExhaustiveEnumeration(t *testing.T) {
	// The unbiasedness property the satellite demands: the planner's
	// stopped estimate agrees with exhaustively enumerating a large
	// synthetic population, within the CI target it stopped at.
	const popSize = 200_000
	strata := []Stratum{
		{Name: "reg", Prior: 0.5},
		{Name: "data", Prior: 0.5},
		{Name: "heap", Prior: 0.5},
		{Name: "text", Prior: 0.5},
	}
	pops := []population{
		{seed: 101, rate: 0.55},
		{seed: 202, rate: 0.20},
		{seed: 303, rate: 0.04},
		{seed: 404, rate: 0.0},
	}
	planner := paperPlanner(t, strata)
	_, snap := drive(t, planner, pops)
	for i, s := range snap {
		if !s.Closed {
			t.Fatalf("stratum %s never closed", s.Name)
		}
		if s.HalfWidth > planner.Config().Target {
			if s.Executed < planner.Cap() {
				t.Errorf("%s: open half-width %v below the cap", s.Name, s.HalfWidth)
			}
			continue // cap-closed: the fixed-n guarantee applies instead
		}
		est := float64(s.Errors) / float64(s.Executed)
		truth := pops[i].exhaustive(popSize)
		if math.Abs(est-truth) > planner.Config().Target {
			t.Errorf("%s: estimate %.4f vs exhaustive %.4f differ beyond d=%.3f (n=%d)",
				s.Name, est, truth, planner.Config().Target, s.Executed)
		}
	}
}

func TestPlannerZeroErrorStratumClosesAtPilot(t *testing.T) {
	// A stratum the AVF analysis flags as near-benign pilots at the
	// pilotSize floor, and with zero manifestations closes right there:
	// Wilson at 0/48 is already inside d=4.9 %, so the paper's worst-case
	// 400 draws shrink to one pilot round.
	planner := paperPlanner(t, []Stratum{{Name: "benign", Prior: 0.001}})
	history, snap := drive(t, planner, []population{{seed: 1, rate: 0}})
	if got := snap[0].Executed; got != pilotSize {
		t.Errorf("zero-error stratum executed %d, want the pilot %d", got, pilotSize)
	}
	// history = pilot round + the all-zero terminating round.
	if len(history) != 2 {
		t.Errorf("took %d rounds, want pilot + terminator", len(history))
	}
	if !snap[0].Closed || snap[0].Errors != 0 {
		t.Errorf("unexpected final state %+v", snap[0])
	}
	// Even a worst-case prior closes a silent stratum after one round —
	// it just spends the full round getting there.
	planner = paperPlanner(t, []Stratum{{Name: "unknown", Prior: 0.5}})
	_, snap = drive(t, planner, []population{{seed: 1, rate: 0}})
	if got := snap[0].Executed; got != DefaultRoundSize {
		t.Errorf("0.5-prior zero-error stratum executed %d, want one round of %d", got, DefaultRoundSize)
	}
}

func TestPlannerPriorSizesPilot(t *testing.T) {
	// The AVF prior steers the first draw: a stratum believed benign
	// pilots at NeededSamples(prior) instead of burning a full round.
	planner := paperPlanner(t, []Stratum{
		{Name: "hot", Prior: 0.5},
		{Name: "cool", Prior: 0.05},
	})
	allocs := planner.NextRound()
	wantCool, err := NeededSamples(0.95, 0.049, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0] != DefaultRoundSize {
		t.Errorf("hot pilot %d, want the full round %d", allocs[0], DefaultRoundSize)
	}
	if allocs[1] != wantCool {
		t.Errorf("cool pilot %d, want NeededSamples(0.05) = %d", allocs[1], wantCool)
	}
	// Out-of-range priors fall back to the paper's worst case.
	fallback := paperPlanner(t, []Stratum{{Name: "nan", Prior: math.NaN()}, {Name: "neg", Prior: -2}})
	for i, a := range fallback.NextRound() {
		if a != DefaultRoundSize {
			t.Errorf("stratum %d with unusable prior piloted %d, want %d", i, a, DefaultRoundSize)
		}
	}
}

func TestPlannerNeverExceedsCapAndAlwaysTerminates(t *testing.T) {
	// Adversarial tallies: proportions hovering at 0.5 force the maximum
	// spend, which must stop exactly at the fixed-n cap.
	planner := paperPlanner(t, []Stratum{{Name: "worst", Prior: 0.5}})
	_, snap := drive(t, planner, []population{{seed: 77, rate: 0.5}})
	if snap[0].Executed > planner.Cap() {
		t.Errorf("executed %d beyond the cap %d", snap[0].Executed, planner.Cap())
	}
	// At true rate 0.5 the spend must approach the fixed-n worst case
	// (closing a draw or two early is legitimate when p̂ drifts off 0.5,
	// but an order-of-magnitude saving would mean the stopping rule lies).
	if snap[0].Executed < planner.Cap()*9/10 {
		t.Errorf("worst-case stratum stopped at %d, suspiciously far below the cap %d",
			snap[0].Executed, planner.Cap())
	}
	if !snap[0].Closed || snap[0].HalfWidth > planner.Config().Target {
		t.Errorf("stratum closed without meeting the target: %+v", snap[0])
	}
	if !planner.Done() {
		t.Error("planner not done after the terminating round")
	}
	if s := planner.Savings(); s > 1 {
		t.Errorf("savings ratio %v above 1.0", s)
	}
}

func TestPlannerTallyValidation(t *testing.T) {
	planner := paperPlanner(t, []Stratum{{Name: "s", Prior: 0.5}})
	if err := planner.SetTally(1, 0, 0); err == nil {
		t.Error("out-of-range stratum accepted")
	}
	if err := planner.SetTally(0, 5, 4); err == nil {
		t.Error("errors > executed accepted")
	}
	if err := planner.SetTally(0, 0, planner.Cap()+1); err == nil {
		t.Error("executed beyond cap accepted")
	}
	if err := planner.SetTally(0, -1, 4); err == nil {
		t.Error("negative errors accepted")
	}
}

func TestNewPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(PlannerConfig{Confidence: 0.95, Target: 0.049}, nil); err == nil {
		t.Error("empty strata accepted")
	}
	if _, err := NewPlanner(PlannerConfig{Confidence: 0.95, Target: 0}, []Stratum{{Name: "s"}}); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := NewPlanner(PlannerConfig{Confidence: 0.95, Target: 0.049, RoundSize: -1}, []Stratum{{Name: "s"}}); err == nil {
		t.Error("negative round size accepted")
	}
}
