package core_test

// The superblock tier's campaign-level invariant, enforced end to end on
// all three guest applications: a fixed-seed campaign — register, memory
// and message faults across every region — must produce byte-identical
// artifacts (campaign CSV and JSONL journal) with compiled superblock
// execution on, off (the faultcampaign -no-superblock escape hatch), and
// under checkpointed restore with superblocks on.  Like checkpointing,
// the tier is a pure wall-clock optimization; any observable difference
// is a bug.  The vm-level differential suite covers the third execution
// mode (DisablePredecode, full byte-decode) at per-instruction
// granularity.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/image"
	"mpifault/internal/report"
)

func buildApp(t testing.TB, name string) (*image.Image, int) {
	t.Helper()
	a, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		t.Fatal(err)
	}
	return im, a.Default.Ranks
}

// sbArtifacts runs one fixed-seed campaign and returns its CSV report and
// raw journal bytes.
func sbArtifacts(t *testing.T, name string, im *image.Image, ranks int, noSB bool, interval uint64) (string, []byte) {
	t.Helper()
	cfg := core.Config{
		Image: im, Ranks: ranks, Injections: 6, Seed: 4242,
		Parallelism:        2,
		WallLimit:          60 * time.Second,
		KeepExperiments:    true,
		DisableSuperblocks: noSB,
		CheckpointInterval: interval,
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := report.CreateJournal(path, report.CampaignHeader(name, cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.OnExperiment = func(e core.Experiment) {
		if err := j.Append(e); err != nil {
			t.Errorf("journal append: %v", err)
		}
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	report.WriteCampaignCSV(&csv, name, res)
	return csv.String(), raw
}

func TestSuperblockCampaignDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three campaigns per guest app")
	}
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			im, ranks := buildApp(t, name)
			refCSV, refJournal := sbArtifacts(t, name, im, ranks, false, 0)
			for _, tc := range []struct {
				label    string
				noSB     bool
				interval uint64
			}{
				{"superblocks-off", true, 0},
				{"checkpointed", false, core.DefaultCheckpointInterval},
			} {
				csv, journal := sbArtifacts(t, name, im, ranks, tc.noSB, tc.interval)
				if csv != refCSV {
					t.Errorf("%s: CSV differs from superblocks-on run:\n--- on ---\n%s\n--- %s ---\n%s",
						tc.label, refCSV, tc.label, csv)
				}
				if !bytes.Equal(journal, refJournal) {
					t.Errorf("%s: journal differs from superblocks-on run", tc.label)
				}
			}
		})
	}
}
