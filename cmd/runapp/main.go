// Command runapp executes one of the guest applications on the simulated
// cluster, optionally with a single configured fault — the tool for
// reproducing an individual injection experiment or just watching a
// workload run.
//
// Usage:
//
//	runapp -app wavetoy                      # fault-free run
//	runapp -app minimd -region reg -seed 7   # one register fault
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/mpi"
)

func main() {
	app := flag.String("app", "wavetoy", "application to run")
	region := flag.String("region", "", "fault region (reg, fp, bss, data, stack, text, heap, message); empty = fault-free")
	seed := flag.Uint64("seed", 1, "experiment seed")
	verbose := flag.Bool("v", false, "dump per-rank console output")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("runapp: ")

	a, err := apps.Get(*app)
	if err != nil {
		log.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	golden, err := core.RunGolden(im, a.Default.Ranks, mpi.Config{}, 30*time.Second)
	if err != nil {
		log.Fatalf("golden run: %v", err)
	}
	fmt.Printf("golden: %d ranks, max %d instructions, output %d bytes\n",
		a.Default.Ranks, golden.MaxInstrs(), len(golden.Output))

	if *region == "" {
		os.Stdout.Write(golden.Result.Stdout[0])
		return
	}

	r, err := core.ParseRegion(*region)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(core.Config{
		Image: im, Ranks: a.Default.Ranks,
		Injections: 1, Regions: []core.Region{r}, Seed: *seed,
		KeepExperiments: true,
	})
	if err != nil {
		log.Fatalf("injection: %v", err)
	}
	e := res.Experiments[0]
	fmt.Printf("injected: region=%s rank=%d trigger=%d fault=%q\n",
		e.Region, e.Rank, e.Trigger, e.Desc)
	fmt.Printf("outcome:  %s\n", e.Outcome)
	if e.Outcome == classify.Correct {
		fmt.Println("(the fault did not manifest)")
	}
	if *verbose {
		g := golden.Result
		fmt.Printf("--- golden rank-0 stdout ---\n%s", g.Stdout[0])
	}
}
