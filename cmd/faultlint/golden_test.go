package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden -json reports under testdata/")

// TestGoldenJSON locks the -json lint report of every guest app byte for
// byte.  The report is pure static analysis (no MPI run, no profile, no
// validation campaigns), so any drift means the analyzer's findings,
// AVF forecast, or equivalence partition changed — which must be a
// deliberate, reviewed change.  Regenerate with:
//
//	go test ./cmd/faultlint -run TestGoldenJSON -update
func TestGoldenJSON(t *testing.T) {
	for _, app := range []string{"wavetoy", "minimd", "minicam"} {
		t.Run(app, func(t *testing.T) {
			var buf bytes.Buffer
			if code := run(app, options{jsonOut: true}, &buf); code != 0 {
				t.Fatalf("faultlint -json -app %s exited %d", app, code)
			}
			path := filepath.Join("testdata", app+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("-json report for %s drifted from %s\ngot:\n%s\nwant:\n%s",
					app, path, buf.Bytes(), want)
			}
		})
	}
}

// TestJSONDeterministic: two runs over the same app must serialize
// identically — the property the golden diff (and sharded campaign
// merges) rely on.
func TestJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if code := run("wavetoy", options{jsonOut: true}, &a); code != 0 {
		t.Fatalf("first run exited %d", code)
	}
	if code := run("wavetoy", options{jsonOut: true}, &b); code != 0 {
		t.Fatalf("second run exited %d", code)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("faultlint -json output is not deterministic across runs")
	}
}
