package core

import (
	"testing"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/classify"
	"mpifault/internal/image"
	"mpifault/internal/mpi"
)

func defaultMPI() mpi.Config { return mpi.Config{} }

func buildApp(t testing.TB, name string) (*image.Image, int) {
	t.Helper()
	a, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		t.Fatal(err)
	}
	return im, a.Default.Ranks
}

func TestGoldenRunWavetoy(t *testing.T) {
	im, ranks := buildApp(t, "wavetoy")
	g, err := RunGolden(im, ranks, defaultMPI(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Output) == 0 {
		t.Fatal("golden output empty")
	}
	for r := 0; r < ranks; r++ {
		if g.Instrs[r] == 0 {
			t.Fatalf("rank %d retired no instructions", r)
		}
		if g.RecvBytes[r] == 0 {
			t.Fatalf("rank %d received no traffic", r)
		}
	}
}

func TestMiniCampaignWavetoy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	im, ranks := buildApp(t, "wavetoy")
	res, err := Run(Config{
		Image: im, Ranks: ranks, Injections: 24, Seed: 42,
		KeepExperiments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tallies) != int(NumRegions) {
		t.Fatalf("got %d tallies", len(res.Tallies))
	}
	reg, _ := res.Tally(RegionRegularReg)
	fp, _ := res.Tally(RegionFPReg)
	// The paper's headline shape: integer registers are far more
	// vulnerable than FP registers (62.8%% vs 4.0%% for Wavetoy).  At 24
	// injections the confidence is loose; only require the ordering.
	if reg.Errors() <= fp.Errors() {
		t.Errorf("regular-register errors (%d) should exceed FP-register errors (%d)",
			reg.Errors(), fp.Errors())
	}
	if reg.ErrorRate() < 20 {
		t.Errorf("regular-register error rate %.1f%%, expected substantial", reg.ErrorRate())
	}
	// Every region must have run the requested number of injections.
	for _, tl := range res.Tallies {
		if tl.Executions != 24 {
			t.Errorf("%s ran %d executions", tl.Region, tl.Executions)
		}
	}
	// Experiments carry descriptions for manifested faults.
	var described int
	for _, e := range res.Experiments {
		if e.Desc != "" {
			described++
		}
	}
	if described == 0 {
		t.Error("no experiment recorded a fault description")
	}
	// At least one classic crash should appear across 192 injections.
	var crashes int
	for _, tl := range res.Tallies {
		crashes += tl.Outcomes[classify.Crash]
	}
	if crashes == 0 {
		t.Error("expected at least one Crash manifestation")
	}
}

func TestShardedCampaignEqualsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	im, ranks := buildApp(t, "wavetoy")
	for _, tc := range []struct {
		seed uint64
		k    int
	}{{7, 2}, {42, 3}} {
		base := Config{
			Image: im, Ranks: ranks, Injections: 6, Seed: tc.seed,
			Regions:         []Region{RegionRegularReg, RegionText},
			KeepExperiments: true,
		}
		full, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		merged := make(map[string]Experiment)
		for shard := 0; shard < tc.k; shard++ {
			cfg := base
			cfg.Shard, cfg.NumShards = shard, tc.k
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range res.Experiments {
				if _, dup := merged[e.ID()]; dup {
					t.Fatalf("seed %d K=%d: experiment %s ran in two shards", tc.seed, tc.k, e.ID())
				}
				merged[e.ID()] = e
			}
		}
		if len(merged) != len(full.Experiments) {
			t.Fatalf("seed %d K=%d: shards ran %d experiments, full run %d",
				tc.seed, tc.k, len(merged), len(full.Experiments))
		}
		for _, want := range full.Experiments {
			got, ok := merged[want.ID()]
			if !ok {
				t.Errorf("seed %d K=%d: experiment %s missing from shards", tc.seed, tc.k, want.ID())
				continue
			}
			// Detail describes kill/exit races among non-faulted ranks and
			// is informational only; everything that feeds the tables must
			// be identical regardless of which shard ran the experiment.
			got.Detail, want.Detail = "", ""
			if got != want {
				t.Errorf("seed %d K=%d: experiment %s differs:\nshard: %+v\nfull:  %+v",
					tc.seed, tc.k, want.ID(), got, want)
			}
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	im, ranks := buildApp(t, "wavetoy")
	cfg := Config{
		Image: im, Ranks: ranks, Injections: 8, Seed: 7,
		Regions: []Region{RegionRegularReg, RegionText},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tallies {
		if a.Tallies[i] != b.Tallies[i] {
			t.Errorf("region %s: tallies differ between identical campaigns:\n%+v\n%+v",
				a.Tallies[i].Region, a.Tallies[i], b.Tallies[i])
		}
	}
}

// TestEntriesAndGoldenReuse covers the coordinator's lease path: an
// explicit Entries subset runs exactly those plan entries, a supplied
// Golden skips the reference run without changing any outcome, and the
// mutual-exclusion guards reject the configurations that would break
// determinism.
func TestEntriesAndGoldenReuse(t *testing.T) {
	im, ranks := buildApp(t, "wavetoy")
	base := Config{
		Image: im, Ranks: ranks, Injections: 4, Seed: 11,
		Regions:         []Region{RegionRegularReg, RegionMessage},
		KeepExperiments: true,
	}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	plan := Plan{Regions: base.Regions, Injections: base.Injections}
	golden, err := RunGolden(im, ranks, defaultMPI(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	merged := make(map[string]Experiment)
	for start := 0; start < plan.Total(); start += 3 {
		cfg := base
		cfg.Entries = plan.Range(start, start+3)
		cfg.Golden = golden // leases after the first reuse the reference run
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Experiments) != len(cfg.Entries) {
			t.Fatalf("entries [%d,%d): ran %d experiments, want %d",
				start, start+3, len(res.Experiments), len(cfg.Entries))
		}
		for _, e := range res.Experiments {
			merged[e.ID()] = e
		}
	}
	if len(merged) != len(full.Experiments) {
		t.Fatalf("entry windows ran %d experiments, full run %d", len(merged), len(full.Experiments))
	}
	for _, want := range full.Experiments {
		got := merged[want.ID()]
		got.Detail, want.Detail = "", ""
		if got != want {
			t.Errorf("experiment %s differs under Entries+Golden:\nlease: %+v\nfull:  %+v",
				want.ID(), got, want)
		}
	}

	cfg := base
	cfg.Entries = plan.Range(0, 2)
	cfg.NumShards = 2
	if _, err := Run(cfg); err == nil {
		t.Error("Entries with Shard/NumShards must be rejected")
	}
	cfg = base
	cfg.Entries = []PlanEntry{{Region: RegionText, Index: 0}}
	if _, err := Run(cfg); err == nil {
		t.Error("an entry outside the plan's regions must be rejected")
	}
	cfg = base
	cfg.Entries = []PlanEntry{{Region: RegionRegularReg, Index: 99}}
	if _, err := Run(cfg); err == nil {
		t.Error("an entry index outside the plan must be rejected")
	}
	cfg = base
	cfg.Golden = golden
	cfg.CheckpointInterval = 1000
	if _, err := Run(cfg); err == nil {
		t.Error("Golden reuse with checkpointing must be rejected")
	}
}
