package apps

import (
	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Halo tags for minicam's narrow column exchange.
const (
	camTagLeftward  = 3
	camTagRightward = 4
)

// camHalo is the number of f64 columns exchanged per side per step —
// deliberately narrow so control traffic dominates, as it does for CAM.
const camHalo = 8

// camMoistMsg is the diagnostic printed by the moisture floor check; it
// is needed both at symbol-definition and at abort-call sites.
const camMoistMsg = "minicam: moisture below physical threshold, aborting\n"

// camMoistMsgLen is its length as an immediate operand.
const camMoistMsgLen = int32(len(camMoistMsg))

// camClimN is the number of f64 entries in the static climatology table
// (BSS).  The table is written in full during initialization but only a
// small rotating subset is read during computation, giving minicam the
// init-phase working-set drop Tables 5-7 show.
const camClimN = 8192

// BuildMiniCAM links the CAM analogue: a climate-style strip of grid
// columns evolving temperature and moisture fields.
//
// Fidelity to the paper's CAM characterization (§4.2.3, §6.2):
//
//   - every step runs a barrier, a control broadcast and two scalar
//     reductions, so the traffic mix is dominated by headers (Table 1:
//     63 % control for CAM) while halo payloads stay small;
//   - moisture is guarded by a minimum-threshold check ("any moisture
//     value below a minimum threshold can trigger a warning and abort");
//   - the reduced diagnostics are NaN-checked;
//   - there are *no* message checksums (unlike minimd), so payload
//     corruption is mostly silent;
//   - a large result file is written by rank 0 at the end of the run,
//     with enough precision that corrupt fields show up as Incorrect.
func BuildMiniCAM(cfg Config) (*image.Image, error) {
	nx := cfg.Scale // columns per rank

	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("minicam", image.OwnerUser)

	lDone := defString(m, "s_done", "minicam: simulation complete\n")
	defString(m, "s_moist", camMoistMsg)
	lNan := defString(m, "s_nan", "minicam: NaN in reduced diagnostics, aborting\n")
	lFile := defString(m, "s_file", "minicam.out")
	m.DataF64("c_diff", 0.2)      // diffusion coefficient
	m.DataF64("c_minmoist", 1e-8) // physical moisture floor
	m.DataF64("c_decay", 0.9995)  // precipitation moisture decay per step
	m.DataF64("c_heat", 0.001)    // climatology heating scale
	m.BSS("g_rank", 4)
	m.BSS("g_size", 4)
	m.BSS("g_step", 4)
	m.BSS("g_temp", 4)  // heap: nx+2 f64 (ghosts at ends)
	m.BSS("g_moist", 4) // heap: nx+2 f64
	m.BSS("g_sbl", 4)   // halo staging, camHalo f64 each
	m.BSS("g_sbr", 4)
	m.BSS("g_rbl", 4)
	m.BSS("g_rbr", 4)
	m.BSS("g_gath", 4)
	m.BSS("g_ctl", 8)  // broadcast control scalar
	m.BSS("g_msum", 8) // local moisture sum -> reduced
	m.BSS("g_mtot", 8)
	m.BSS("g_tmax", 8) // local max temperature -> reduced
	m.BSS("g_tmaxg", 8)
	m.BSS("g_clim", camClimN*8) // static climatology table (large BSS, as CAM's)
	m.BSS("g_iobuf", 4)
	m.BSS("g_cfgsum", 8)

	// Cold regions (see addColdCode): CAM's text working set is 30 % at
	// startup and 13 % in the compute phase; its very large BSS (32 MB in
	// the paper) is mostly never read.
	addColdCode(m, "cam", 62, 8)
	addColdData(m, "cam", 64<<10)

	buildMiniCAMInit(m, nx)
	buildMiniCAMHalo(m, nx)
	buildMiniCAMPhysics(m, nx, cfg.Checks)

	f := m.Func("main")
	f.Prologue(64)
	f.CallArgs("MPI_Init")
	// Register an error handler, as the paper's harness does for every
	// application (§5.1): argument-check failures then surface as the
	// "MPI Detected" manifestation instead of the default fatal abort.
	f.CallArgs("MPI_Errhandler_set", asm.Imm(abi.CommWorld), asm.Sym("cam_cold_0"))
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	f.StSym("g_rank", 0, isa.R0)
	f.CallArgs("MPI_Comm_size", asm.Imm(abi.CommWorld))
	f.StSym("g_size", 0, isa.R0)

	alloc := func(sym string, bytes int32) {
		f.CallArgs("malloc", asm.Imm(bytes))
		f.StSym(sym, 0, isa.R0)
	}
	alloc("g_temp", (nx+2)*8)
	alloc("g_moist", (nx+2)*8)
	alloc("g_sbl", camHalo*8)
	alloc("g_sbr", camHalo*8)
	alloc("g_rbl", camHalo*8)
	alloc("g_rbr", camHalo*8)
	emitColdHeapAlloc(f, "g_iobuf", 16<<10, 64)

	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipGath := f.NewLabel()
	f.Bne(skipGath)
	f.LdSym(isa.R1, "g_size", 0)
	f.Muli(isa.R1, isa.R1, nx*8*2) // temperature and moisture
	f.CallArgs("malloc", asm.Reg(isa.R1))
	f.StSym("g_gath", 0, isa.R0)
	f.Label(skipGath)

	f.CallArgs("minicam_init")

	// Time-step loop.
	f.Movi(isa.R4, 0)
	f.StSym("g_step", 0, isa.R4)
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.LdSym(isa.R4, "g_step", 0)
	f.Cmpi(isa.R4, cfg.Steps)
	f.Bge(done)

	// Step-control phase: barrier + control scalar broadcast.  This is
	// what makes minicam's traffic header-dominated.
	f.CallArgs("MPI_Barrier", asm.Imm(abi.CommWorld))
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipCtl := f.NewLabel()
	f.Bne(skipCtl)
	f.Fld1()
	f.FstpSym("g_ctl", 0)
	f.Label(skipCtl)
	f.CallArgs("MPI_Bcast", asm.Sym("g_ctl"), asm.Imm(1), asm.Imm(abi.DTF64),
		asm.Imm(0), asm.Imm(abi.CommWorld))

	f.CallArgs("minicam_halo")
	f.CallArgs("minicam_physics")

	// Scalar diagnostics: global moisture sum and global max temperature.
	f.CallArgs("MPI_Allreduce", asm.Sym("g_msum"), asm.Sym("g_mtot"),
		asm.Imm(1), asm.Imm(abi.DTF64), asm.Imm(abi.OpSum), asm.Imm(abi.CommWorld))
	f.CallArgs("MPI_Allreduce", asm.Sym("g_tmax"), asm.Sym("g_tmaxg"),
		asm.Imm(1), asm.Imm(abi.DTF64), asm.Imm(abi.OpMax), asm.Imm(abi.CommWorld))
	if cfg.Checks {
		f.CallArgs("fchecknan", asm.Sym("g_mtot"), asm.Sym("s_nan"), asm.Imm(lNan))
		f.CallArgs("fchecknan", asm.Sym("g_tmaxg"), asm.Sym("s_nan"), asm.Imm(lNan))
	}

	f.LdSym(isa.R4, "g_step", 0)
	f.Addi(isa.R4, isa.R4, 1)
	f.StSym("g_step", 0, isa.R4)
	f.Jmp(loop)
	f.Label(done)

	// Gather both fields to rank 0 and write the (large) result file.
	f.LdSym(isa.R1, "g_temp", 0)
	f.Addi(isa.R1, isa.R1, 8)
	f.LdSym(isa.R2, "g_gath", 0)
	f.CallArgs("MPI_Gather", asm.Reg(isa.R1), asm.Imm(nx), asm.Imm(abi.DTF64),
		asm.Reg(isa.R2), asm.Imm(0), asm.Imm(abi.CommWorld))
	f.LdSym(isa.R1, "g_moist", 0)
	f.Addi(isa.R1, isa.R1, 8)
	f.LdSym(isa.R2, "g_gath", 0)
	f.LdSym(isa.R3, "g_size", 0)
	f.Muli(isa.R3, isa.R3, nx*8)
	f.Add(isa.R2, isa.R2, isa.R3)
	f.CallArgs("MPI_Gather", asm.Reg(isa.R1), asm.Imm(nx), asm.Imm(abi.DTF64),
		asm.Reg(isa.R2), asm.Imm(0), asm.Imm(abi.CommWorld))

	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipOut := f.NewLabel()
	f.Bne(skipOut)
	f.CallArgs("open", asm.Sym("s_file"), asm.Imm(lFile))
	f.Push(isa.R0)
	f.LdSym(isa.R1, "g_gath", 0)
	f.LdSym(isa.R2, "g_size", 0)
	f.Muli(isa.R2, isa.R2, nx*2)
	f.Pop(isa.R4)
	if cfg.BinaryOutput {
		f.Shli(isa.R2, isa.R2, 3)
		f.CallArgs("write_bin", asm.Reg(isa.R4), asm.Reg(isa.R1), asm.Reg(isa.R2))
	} else {
		f.CallArgs("print_f64arr", asm.Reg(isa.R4), asm.Reg(isa.R1),
			asm.Reg(isa.R2), asm.Imm(cfg.OutPrecision))
	}
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_done"), asm.Imm(lDone))
	f.Label(skipOut)

	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()

	return b.Link(asm.LinkConfig{HeapSize: cfg.HeapSize, StackSize: cfg.StackSize})
}

// buildMiniCAMInit fills the climatology table (touching all of the large
// BSS array once — the initialization-phase working set) and seeds the
// temperature and moisture fields.
func buildMiniCAMInit(m *asm.Module, nx int32) {
	f := m.Func("minicam_init")
	f.Prologue(64)

	// Climatology: clim[j] = 0.5 + 0.4 * ((j*29) mod 101 - 50)/50
	f.MoviSym(isa.R3, "g_clim", 0)
	f.Movi(isa.R4, 0) // byte offset
	cl, cd := f.NewLabel(), f.NewLabel()
	f.Label(cl)
	f.Cmpi(isa.R4, camClimN*8)
	f.Bge(cd)
	f.Shri(isa.R0, isa.R4, 3)
	f.Muli(isa.R0, isa.R0, 29)
	f.Movi(isa.R5, 101)
	f.Rems(isa.R0, isa.R0, isa.R5)
	f.Addi(isa.R0, isa.R0, -50)
	f.Fild(isa.R0)
	f.FldConst(0.008) // 0.4/50
	f.Fmulp()
	f.FldConst(0.5)
	f.Faddp()
	f.Fstpx(isa.R3, isa.R4, 0)
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(cl)
	f.Label(cd)

	// Normalization pass: read the whole climatology table once.  These
	// initialization-only loads are what make the Table 7 working-set
	// curve start high and drop at the phase shift — the compute kernel
	// reads only a small rotating subset of the table.
	f.Fldz()
	f.Movi(isa.R4, 0)
	nl, nd := f.NewLabel(), f.NewLabel()
	f.Label(nl)
	f.Cmpi(isa.R4, camClimN*8)
	f.Bge(nd)
	f.Fldx(isa.R3, isa.R4, 0)
	f.Faddp()
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(nl)
	f.Label(nd)
	f.FstpSym("g_cfgsum", 0)

	// Fields: T = 280 + small lattice variation, M = 0.5 + variation.
	f.LdSym(isa.R1, "g_temp", 0)
	f.LdSym(isa.R2, "g_moist", 0)
	f.LdSym(isa.R3, "g_rank", 0)
	f.Muli(isa.R3, isa.R3, nx)
	f.Movi(isa.R4, 0)
	fl, fd := f.NewLabel(), f.NewLabel()
	f.Label(fl)
	f.Cmpi(isa.R4, (nx+2)*8)
	f.Bge(fd)
	f.Shri(isa.R0, isa.R4, 3)
	f.Add(isa.R0, isa.R0, isa.R3)
	f.Muli(isa.R5, isa.R0, 7)
	f.Movi(isa.R0, 23)
	f.Rems(isa.R5, isa.R5, isa.R0)
	f.Addi(isa.R5, isa.R5, -11)
	f.Fild(isa.R5) // [p]
	f.Fldst(0)
	f.FldConst(0.05)
	f.Fmulp()         // [0.05p, p]
	f.FldConst(280.0) // [280, .05p, p]
	f.Faddp()         // [T, p]
	f.Fstpx(isa.R1, isa.R4, 0)
	f.FldConst(0.004)
	f.Fmulp() // [0.004p]
	f.FldConst(0.5)
	f.Faddp() // [M]
	f.Fstpx(isa.R2, isa.R4, 0)
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(fl)
	f.Label(fd)
	f.Epilogue()
}

// buildMiniCAMHalo exchanges narrow column blocks of the temperature
// field with both neighbours, parity-ordered (same scheme as wavetoy but
// with small eager payloads).
func buildMiniCAMHalo(m *asm.Module, nx int32) {
	h := int32(camHalo)
	f := m.Func("minicam_halo")
	f.Prologue(64)

	f.LdSym(isa.R0, "g_sbl", 0)
	f.LdSym(isa.R1, "g_temp", 0)
	f.Addi(isa.R1, isa.R1, 8)
	f.CallArgs("memcpyw", asm.Reg(isa.R0), asm.Reg(isa.R1), asm.Imm(h*2))
	f.LdSym(isa.R0, "g_sbr", 0)
	f.LdSym(isa.R1, "g_temp", 0)
	f.Addi(isa.R1, isa.R1, 8*(nx-h+1))
	f.CallArgs("memcpyw", asm.Reg(isa.R0), asm.Reg(isa.R1), asm.Imm(h*2))

	sendLeft := func() {
		skip := f.NewLabel()
		f.LdSym(isa.R0, "g_rank", 0)
		f.Cmpi(isa.R0, 0)
		f.Beq(skip)
		f.Addi(isa.R2, isa.R0, -1)
		f.LdSym(isa.R1, "g_sbl", 0)
		f.CallArgs("MPI_Send", asm.Reg(isa.R1), asm.Imm(h), asm.Imm(abi.DTF64),
			asm.Reg(isa.R2), asm.Imm(camTagLeftward), asm.Imm(abi.CommWorld))
		f.Label(skip)
	}
	sendRight := func() {
		skip := f.NewLabel()
		f.LdSym(isa.R0, "g_rank", 0)
		f.LdSym(isa.R3, "g_size", 0)
		f.Addi(isa.R3, isa.R3, -1)
		f.Cmp(isa.R0, isa.R3)
		f.Beq(skip)
		f.Addi(isa.R2, isa.R0, 1)
		f.LdSym(isa.R1, "g_sbr", 0)
		f.CallArgs("MPI_Send", asm.Reg(isa.R1), asm.Imm(h), asm.Imm(abi.DTF64),
			asm.Reg(isa.R2), asm.Imm(camTagRightward), asm.Imm(abi.CommWorld))
		f.Label(skip)
	}
	recvLeft := func() {
		skip := f.NewLabel()
		f.LdSym(isa.R0, "g_rank", 0)
		f.Cmpi(isa.R0, 0)
		f.Beq(skip)
		f.Addi(isa.R2, isa.R0, -1)
		f.LdSym(isa.R1, "g_rbl", 0)
		f.CallArgs("MPI_Recv", asm.Reg(isa.R1), asm.Imm(h), asm.Imm(abi.DTF64),
			asm.Reg(isa.R2), asm.Imm(camTagRightward), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.Label(skip)
	}
	recvRight := func() {
		skip := f.NewLabel()
		f.LdSym(isa.R0, "g_rank", 0)
		f.LdSym(isa.R3, "g_size", 0)
		f.Addi(isa.R3, isa.R3, -1)
		f.Cmp(isa.R0, isa.R3)
		f.Beq(skip)
		f.Addi(isa.R2, isa.R0, 1)
		f.LdSym(isa.R1, "g_rbr", 0)
		f.CallArgs("MPI_Recv", asm.Reg(isa.R1), asm.Imm(h), asm.Imm(abi.DTF64),
			asm.Reg(isa.R2), asm.Imm(camTagLeftward), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.Label(skip)
	}

	odd, join := f.NewLabel(), f.NewLabel()
	f.LdSym(isa.R4, "g_rank", 0)
	f.Andi(isa.R4, isa.R4, 1)
	f.Cmpi(isa.R4, 0)
	f.Bne(odd)
	sendLeft()
	sendRight()
	recvLeft()
	recvRight()
	f.Jmp(join)
	f.Label(odd)
	recvRight()
	recvLeft()
	sendRight()
	sendLeft()
	f.Label(join)

	// Ghosts (temperature only): T[0], T[nx+1].
	zeroL, afterL := f.NewLabel(), f.NewLabel()
	f.LdSym(isa.R1, "g_temp", 0)
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	f.Beq(zeroL)
	f.LdSym(isa.R2, "g_rbl", 0)
	f.Fld(isa.R2, 8*(h-1))
	f.Fstp(isa.R1, 0)
	f.Jmp(afterL)
	f.Label(zeroL)
	f.Fld(isa.R1, 8) // insulated boundary: copy the first interior value
	f.Fstp(isa.R1, 0)
	f.Label(afterL)

	zeroR, afterR := f.NewLabel(), f.NewLabel()
	f.LdSym(isa.R0, "g_rank", 0)
	f.LdSym(isa.R3, "g_size", 0)
	f.Addi(isa.R3, isa.R3, -1)
	f.Cmp(isa.R0, isa.R3)
	f.Beq(zeroR)
	f.LdSym(isa.R2, "g_rbr", 0)
	f.Fld(isa.R2, 0)
	f.Fstp(isa.R1, 8*(nx+1))
	f.Jmp(afterR)
	f.Label(zeroR)
	f.Fld(isa.R1, 8*nx)
	f.Fstp(isa.R1, 8*(nx+1))
	f.Label(afterR)

	f.Epilogue()
}

// buildMiniCAMPhysics updates temperature (diffusion + climatology
// heating) and moisture (decay toward precipitation), accumulates the
// step diagnostics, and applies the moisture floor check.
func buildMiniCAMPhysics(m *asm.Module, nx int32, checks bool) {
	f := m.Func("minicam_physics")
	f.Prologue(64)
	f.Fldz()
	f.FstpSym("g_msum", 0)
	f.Fldz()
	f.FstpSym("g_tmax", 0)

	f.LdSym(isa.R1, "g_temp", 0)
	f.LdSym(isa.R2, "g_moist", 0)
	f.MoviSym(isa.R3, "g_clim", 0)
	f.Movi(isa.R4, 8) // byte offset of column 1
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.Cmpi(isa.R4, 8*(nx+1))
	f.Bge(done)

	// T' = T + diff*(T[i-1] - 2T[i] + T[i+1]) + heat*clim[(i*7+step) mod camClimN]
	f.Fldx(isa.R1, isa.R4, -8)
	f.Fldx(isa.R1, isa.R4, 8)
	f.Faddp() // [Tm+Tp]
	f.Fldx(isa.R1, isa.R4, 0)
	f.FldConst(2.0)
	f.Fmulp()
	f.Fsubp() // [lap]
	f.FldSym("c_diff", 0)
	f.Fmulp() // [diff*lap]
	// climatology index
	f.Shri(isa.R0, isa.R4, 3)
	f.Muli(isa.R0, isa.R0, 7)
	f.LdSym(isa.R5, "g_step", 0)
	f.Add(isa.R0, isa.R0, isa.R5)
	f.Movi(isa.R5, camClimN)
	f.Rems(isa.R0, isa.R0, isa.R5)
	f.Shli(isa.R0, isa.R0, 3)
	f.Fldx(isa.R3, isa.R0, 0) // [clim, dlap]
	f.FldSym("c_heat", 0)
	f.Fmulp()                 // [h*clim, dlap]
	f.Faddp()                 // [dT]
	f.Fldx(isa.R1, isa.R4, 0) // [T, dT]
	f.Faddp()                 // [T']
	// track max temperature
	f.Fldst(0)
	f.FldSym("g_tmax", 0) // [tmax, T', T']
	f.Fcomp()             // flags tmax vs T'; pops both -> [T']
	noNewMax := f.NewLabel()
	f.Bge(noNewMax)
	f.Fldst(0)
	f.FstpSym("g_tmax", 0)
	f.Label(noNewMax)
	f.Fstpx(isa.R1, isa.R4, 0)

	// M' = decay * (M + diff*(M[i-1] - 2M + M[i+1]))
	f.Fldx(isa.R2, isa.R4, -8)
	f.Fldx(isa.R2, isa.R4, 8)
	f.Faddp()
	f.Fldx(isa.R2, isa.R4, 0)
	f.FldConst(2.0)
	f.Fmulp()
	f.Fsubp()
	f.FldSym("c_diff", 0)
	f.Fmulp()
	f.Fldx(isa.R2, isa.R4, 0)
	f.Faddp()
	f.FldSym("c_decay", 0)
	f.Fmulp() // [M']
	if checks {
		// Moisture floor: abort when M' < minmoist (§6.2's CAM check).
		f.Fldst(0)
		f.FldSym("c_minmoist", 0) // [floor, M', M']
		f.Fcomp()                 // floor vs M'; pops both -> [M']
		okm := f.NewLabel()
		f.Blt(okm) // floor < M' is healthy
		f.CallArgs("app_abort", asm.Sym("s_moist"), asm.Imm(camMoistMsgLen))
		f.Label(okm)
	}
	// moisture sum diagnostic
	f.Fldst(0)
	f.FldSym("g_msum", 0)
	f.Faddp()
	f.FstpSym("g_msum", 0)
	f.Fstpx(isa.R2, isa.R4, 0)

	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(loop)
	f.Label(done)
	f.Epilogue()
}
