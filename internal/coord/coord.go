// Package coord is the campaign control plane: a long-running
// coordinator that accepts a campaign spec, splits the core.Plan into
// bounded leases, hands them to pull-based workers over HTTP, ingests
// the JSONL journal segments the workers stream back, and serves a live
// cluster view — the FINJ-style "orchestrator plus injection engines"
// architecture for running millions of experiments across machines.
//
// The correctness anchor is the same one sharding established: every
// experiment's random stream is derived from (seed, region, index)
// alone, so any worker can run any plan entry and produce the identical
// outcome.  That makes the whole protocol forgiving by construction:
//
//   - Leases are bounded contiguous ranges of the plan with a deadline.
//     Workers renew their lease by heartbeat; a lease whose deadline
//     passes (slow or dead worker) returns to the queue and is re-issued
//     to the next worker that asks — work-stealing with no fencing
//     beyond a per-lease generation counter that invalidates stale
//     renewals and uploads.
//   - Results arrive as append-only JSONL journal segments (the exact
//     bytes a single-process campaign journal contains), uploaded in
//     chunks addressed by byte offset, so an interrupted upload resumes
//     where it left off.  Ingestion reuses internal/report's
//     truncation-tolerant parser: the torn tail of a dead worker's last
//     chunk is discarded, its intact lines are kept.
//   - Duplicate results — a stolen lease re-runs experiments its dead
//     owner may already have uploaded — resolve idempotently: the
//     records must agree (report.SameOutcome), and a disagreement fails
//     the campaign loudly, because it means determinism itself broke.
//
// When every lease completes, the coordinator assembles the experiments
// in plan order and renders the final tables exactly as a
// single-process campaign would: the /result.csv bytes are identical to
// `faultcampaign -csv -quiet` at the same spec — the determinism gate's
// cluster twin.
package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/report"
	"mpifault/internal/sampling"
	"mpifault/internal/telemetry"
)

// Spec is a campaign submission: what to run and how to slice it.  It
// deliberately mirrors the faultcampaign flags so the coordinator's
// final CSV is byte-comparable to a single-process run of the same
// parameters.
type Spec struct {
	App         string   `json:"app"`
	Injections  int      `json:"injections"`
	Seed        uint64   `json:"seed"`
	Regions     []string `json:"regions,omitempty"`     // short names; empty = all eight
	Equivalence string   `json:"equivalence,omitempty"` // "", annotate, prune or audit
	// TraceDiff makes every worker record message-digest streams and
	// localize Incorrect/Hang/Crash outcomes against its golden trace
	// (faultcampaign -trace-diff).  The golden trace is a pure function
	// of (app, seed, ranks), so every worker computes the identical
	// digest — the e2e gate compares the hashes they log.
	TraceDiff bool `json:"trace_diff,omitempty"`
	// Adaptive switches the campaign to the sequential-stopping planner
	// (faultcampaign -adaptive): leases are cut round by round from
	// core/sampling's deterministic planner instead of pre-split from the
	// fixed plan, each round is a barrier (its leases must all complete
	// before the tallies advance the planner), and the campaign stops
	// each region once its Wilson CI half-width reaches TargetHalfWidth.
	// Injections must be zero on submission; Submit sizes it to the
	// fixed-n cap.  Because the planner is a pure function of the
	// tallies and every outcome is a pure function of (seed, region,
	// index), the final CSV is byte-identical to a single-process
	// adaptive run of the same spec, whatever the worker count.
	Adaptive bool `json:"adaptive,omitempty"`
	// Confidence, TargetHalfWidth and RoundSize pin the estimation
	// contract; zero values take the core defaults (95 %, 4.9 %,
	// sampling.DefaultRoundSize).
	Confidence      float64 `json:"confidence,omitempty"`
	TargetHalfWidth float64 `json:"target_half_width,omitempty"`
	RoundSize       int     `json:"round_size,omitempty"`
	// Priors are the effective pilot priors in region order.  Submit
	// fills them from the app's static AVF estimates when absent; they
	// ride in every lease grant so worker journal headers record the
	// same contract the coordinator replays.
	Priors []float64 `json:"priors,omitempty"`
	// LeaseSize bounds how many plan entries one lease carries; small
	// leases steal cheaply, large leases amortize the worker's golden
	// run.  0 means DefaultLeaseSize.
	LeaseSize int `json:"lease_size,omitempty"`
	// LeaseTTLMillis is the lease deadline: a worker that has not
	// renewed within this long forfeits the lease.  0 means
	// DefaultLeaseTTL.
	LeaseTTLMillis int64 `json:"lease_ttl_ms,omitempty"`
}

// Defaults for unset Spec fields.
const (
	DefaultLeaseSize = 32
	DefaultLeaseTTL  = 15 * time.Second
)

// Config parameterizes a Coordinator.
type Config struct {
	// Metrics receives the cluster telemetry (lease state, ingestion
	// counters, per-worker throughput).  Nil records nothing.
	Metrics *telemetry.Registry
	// Dir, when non-empty, spools every ingested segment to
	// <Dir>/lease-NNNN.genG.jsonl — each file a valid (possibly
	// truncated) campaign journal, so `faultmerge -coord <Dir>`
	// reconstructs the campaign from the coordinator's own layout.
	Dir string
	// Now is the clock; nil means time.Now.  Injectable for tests.
	Now func() time.Time
	// MaxLeaseFailures bounds how often one lease may be explicitly
	// failed by workers before the campaign is declared failed (a
	// deterministically failing lease would otherwise retry forever).
	// 0 means 8.
	MaxLeaseFailures int
}

type leaseState int

const (
	leasePending leaseState = iota
	leaseActive
	leaseDone
)

// lease is one bounded range [Start, End) of the campaign plan — or,
// for adaptive campaigns, an explicit entry list cut from one planner
// round (entries/ids non-nil, start/end unused).
type lease struct {
	idx        int
	start, end int
	entries    []core.PlanEntry // adaptive: the exact entries this lease runs
	ids        map[string]bool  // adaptive: membership set for ingestion
	gen        int              // incremented at every grant; stale gens are fenced out
	state      leaseState
	worker     string
	deadline   time.Time
	expired    bool // had an owner and timed out; next grant counts as stolen
	stolen     int
	failures   int
	segs       map[int]*segment // per-generation upload buffers
}

// segment is the append-only upload buffer of one lease generation.
type segment struct {
	data []byte
	path string // spool file, "" when in-memory only
}

type workerState struct {
	lease    int // -1 when idle
	results  int
	lastSeen time.Time
}

// campaign is the coordinator's single active campaign.
type campaign struct {
	spec    Spec
	ranks   int
	regions []core.Region
	plan    core.Plan
	header  report.JournalHeader
	ttl     time.Duration

	leases  []*lease
	queue   []int // pending lease indices, FIFO
	results map[string]core.Experiment
	workers map[string]*workerState

	// Adaptive campaigns: the sequential planner and the per-region
	// prefix lengths cut into leases so far.  Rounds are barriers —
	// finishLeaseLocked advances the planner only when every cut lease
	// has completed — so the round schedule is the same pure function of
	// the tallies a single-process RunAdaptive computes.
	planner  *sampling.Planner
	executed []int // per-region entries cut into leases so far
	round    int
	planned  int // total entries cut so far (the adaptive plan size)

	doneLeases   int
	duplicates   int
	unclassified int
	started      time.Time
	failedErr    error
	done         chan struct{} // closed on completion or failure
	csv          []byte        // final CSV bytes on success
}

// Coordinator serves one campaign to any number of workers.
type Coordinator struct {
	cfg Config
	met *coordMeters

	mu sync.Mutex
	c  *campaign
}

// New returns an idle coordinator; submit a campaign with Submit or via
// POST /api/campaign.
func New(cfg Config) *Coordinator {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxLeaseFailures <= 0 {
		cfg.MaxLeaseFailures = 8
	}
	return &Coordinator{cfg: cfg, met: newCoordMeters(cfg.Metrics)}
}

// coordMeters pre-resolves the cluster metrics (nil-safe registry).
type coordMeters struct {
	reg            *telemetry.Registry
	leases         *telemetry.Counter
	granted        *telemetry.Counter
	completed      *telemetry.Counter
	expired        *telemetry.Counter
	stolen         *telemetry.Counter
	active         *telemetry.Gauge
	results        *telemetry.Counter
	duplicates     *telemetry.Counter
	segmentBytes   *telemetry.Counter
	workers        *telemetry.Gauge
	planned        *telemetry.Counter
	perWorker      map[string]*telemetry.Counter
	perWorkerMutex sync.Mutex
}

func newCoordMeters(reg *telemetry.Registry) *coordMeters {
	return &coordMeters{
		reg:          reg,
		leases:       reg.Counter(telemetry.MetricCoordLeases),
		granted:      reg.Counter(telemetry.MetricCoordLeasesGranted),
		completed:    reg.Counter(telemetry.MetricCoordLeasesCompleted),
		expired:      reg.Counter(telemetry.MetricCoordLeasesExpired),
		stolen:       reg.Counter(telemetry.MetricCoordLeasesStolen),
		active:       reg.Gauge(telemetry.MetricCoordLeasesActive),
		results:      reg.Counter(telemetry.MetricCoordResults),
		duplicates:   reg.Counter(telemetry.MetricCoordDuplicates),
		segmentBytes: reg.Counter(telemetry.MetricCoordSegmentBytes),
		workers:      reg.Gauge(telemetry.MetricCoordWorkers),
		planned:      reg.Counter(telemetry.MetricCoordPlanTotal),
		perWorker:    map[string]*telemetry.Counter{},
	}
}

func (m *coordMeters) worker(name string) *telemetry.Counter {
	m.perWorkerMutex.Lock()
	defer m.perWorkerMutex.Unlock()
	c := m.perWorker[name]
	if c == nil {
		c = m.reg.Counter(telemetry.WorkerMetric(name))
		m.perWorker[name] = c
	}
	return c
}

// priorsMap rebuilds the region-keyed prior map from the spec's
// region-ordered slice; nil when the lengths disagree (no priors yet).
func priorsMap(regions []core.Region, priors []float64) map[core.Region]float64 {
	if len(priors) != len(regions) {
		return nil
	}
	m := make(map[core.Region]float64, len(regions))
	for i, r := range regions {
		m[r] = priors[i]
	}
	return m
}

// specHeader builds the journal header a worker running this spec
// produces, without building the app image: the adaptive estimation
// contract comes from the spec, and the equivalence policy is recorded
// by name exactly as report.CampaignHeader does when a worker attaches
// its computed map.  Coordinator ingestion compares worker segment
// headers against this, so the two constructions must never drift.
func specHeader(spec Spec, ranks int, regions []core.Region) (report.JournalHeader, error) {
	h := report.CampaignHeader(spec.App, core.Config{
		Ranks:           ranks,
		Injections:      spec.Injections,
		Regions:         regions,
		Seed:            spec.Seed,
		Adaptive:        spec.Adaptive,
		Confidence:      spec.Confidence,
		TargetHalfWidth: spec.TargetHalfWidth,
		RoundSize:       spec.RoundSize,
		AVFPriors:       priorsMap(regions, spec.Priors),
	})
	pol, err := core.ParseEquivalencePolicy(spec.Equivalence)
	if err != nil {
		return h, err
	}
	if pol != core.EquivOff {
		h.Equivalence = pol.String()
	}
	return h, nil
}

// Submit installs the campaign.  A coordinator runs exactly one
// campaign; a second submission is rejected.
func (co *Coordinator) Submit(spec Spec) error {
	a, err := apps.Get(spec.App)
	if err != nil {
		return err
	}
	regions := core.Regions()
	if len(spec.Regions) > 0 {
		regions = regions[:0]
		for _, s := range spec.Regions {
			r, err := core.ParseRegion(s)
			if err != nil {
				return err
			}
			regions = append(regions, r)
		}
	}
	if spec.LeaseSize <= 0 {
		spec.LeaseSize = DefaultLeaseSize
	}
	ttl := DefaultLeaseTTL
	if spec.LeaseTTLMillis > 0 {
		ttl = time.Duration(spec.LeaseTTLMillis) * time.Millisecond
	}
	spec.LeaseTTLMillis = ttl.Milliseconds()

	var planner *sampling.Planner
	if spec.Adaptive {
		// Normalize the estimation contract exactly like a single-process
		// RunAdaptive would, so the header — and hence every worker's
		// round schedule — pins the same numbers.
		ccfg := core.Config{
			Adaptive:        true,
			Injections:      spec.Injections,
			Regions:         regions,
			Confidence:      spec.Confidence,
			TargetHalfWidth: spec.TargetHalfWidth,
			RoundSize:       spec.RoundSize,
		}
		cap, err := core.NormalizeAdaptive(&ccfg)
		if err != nil {
			return err
		}
		spec.Injections = cap
		spec.Confidence = ccfg.Confidence
		spec.TargetHalfWidth = ccfg.TargetHalfWidth
		spec.RoundSize = ccfg.RoundSize
		if len(spec.Priors) != len(regions) {
			// The pilot priors come from the app's static AVF estimates —
			// the same pipeline faultcampaign -adaptive runs, so the
			// schedules agree however the campaign is executed.
			im, err := a.Build(a.Default)
			if err != nil {
				return fmt.Errorf("coord: build %s: %v", spec.App, err)
			}
			labels, err := analysis.AVFPriors(im)
			if err != nil {
				return err
			}
			m, err := core.PriorsFromLabels(labels)
			if err != nil {
				return err
			}
			spec.Priors = core.EffectivePriors(regions, m)
		}
		strata := make([]sampling.Stratum, len(regions))
		for i, r := range regions {
			strata[i] = sampling.Stratum{Name: r.Short(), Prior: spec.Priors[i]}
		}
		planner, err = sampling.NewPlanner(sampling.PlannerConfig{
			Confidence: spec.Confidence,
			Target:     spec.TargetHalfWidth,
			RoundSize:  spec.RoundSize,
		}, strata)
		if err != nil {
			return err
		}
	} else if spec.Injections <= 0 {
		return fmt.Errorf("coord: injections must be positive")
	}

	plan := core.Plan{Regions: regions, Injections: spec.Injections}
	short := make([]string, len(regions))
	for i, r := range regions {
		short[i] = r.Short()
	}
	spec.Regions = short
	header, err := specHeader(spec, a.Default.Ranks, regions)
	if err != nil {
		return err
	}
	c := &campaign{
		spec:     spec,
		ranks:    a.Default.Ranks,
		regions:  regions,
		plan:     plan,
		ttl:      ttl,
		header:   header,
		planner:  planner,
		executed: make([]int, len(regions)),
		results:  map[string]core.Experiment{},
		workers:  map[string]*workerState{},
		done:     make(chan struct{}),
		started:  co.cfg.Now(),
	}
	if spec.Adaptive {
		// Cut only the pilot round; later rounds are cut at the barrier
		// in finishLeaseLocked, once this round's tallies are in.
		if c.cutRound(planner.NextRound()) == 0 {
			return fmt.Errorf("coord: adaptive planner produced an empty pilot round")
		}
	} else {
		for start := 0; start < plan.Total(); start += spec.LeaseSize {
			end := start + spec.LeaseSize
			if end > plan.Total() {
				end = plan.Total()
			}
			l := &lease{idx: len(c.leases), start: start, end: end, segs: map[int]*segment{}}
			c.leases = append(c.leases, l)
			c.queue = append(c.queue, l.idx)
		}
		c.planned = plan.Total()
	}

	co.mu.Lock()
	defer co.mu.Unlock()
	if co.c != nil {
		return fmt.Errorf("coord: a campaign is already loaded (app %s seed %d)", co.c.spec.App, co.c.spec.Seed)
	}
	if co.cfg.Dir != "" {
		if err := os.MkdirAll(co.cfg.Dir, 0o755); err != nil {
			return err
		}
	}
	co.c = c
	co.met.leases.Add(uint64(len(c.leases)))
	co.met.planned.Add(uint64(c.planned))
	return nil
}

// cutRound turns one planner round's per-region allocations into queued
// leases of at most LeaseSize entries each, in the exact order a
// single-process RunAdaptive executes them.  Returns the number of
// entries cut; 0 means the planner has converged.
func (c *campaign) cutRound(allocs []int) int {
	entries := core.AdaptiveEntriesForRound(c.regions, c.executed, allocs)
	if len(entries) == 0 {
		return 0
	}
	for i, a := range allocs {
		c.executed[i] += a
	}
	c.round++
	c.planned += len(entries)
	for start := 0; start < len(entries); start += c.spec.LeaseSize {
		end := start + c.spec.LeaseSize
		if end > len(entries) {
			end = len(entries)
		}
		sub := entries[start:end]
		ids := make(map[string]bool, len(sub))
		for _, pe := range sub {
			ids[pe.ID()] = true
		}
		l := &lease{idx: len(c.leases), entries: sub, ids: ids, segs: map[int]*segment{}}
		c.leases = append(c.leases, l)
		c.queue = append(c.queue, l.idx)
	}
	return len(entries)
}

// entryIDs returns the plan IDs a lease covers, in execution order.
func (c *campaign) entryIDs(l *lease) []string {
	if l.entries != nil {
		ids := make([]string, len(l.entries))
		for i, pe := range l.entries {
			ids[i] = pe.ID()
		}
		return ids
	}
	ids := make([]string, 0, l.end-l.start)
	for g := l.start; g < l.end; g++ {
		ids = append(ids, c.plan.Entry(g).ID())
	}
	return ids
}

// Done returns a channel closed when the campaign completes or fails.
func (co *Coordinator) Done() <-chan struct{} {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.c == nil {
		return nil
	}
	return co.c.done
}

// ResultCSV returns the final campaign CSV — byte-identical to a
// single-process `faultcampaign -csv -quiet` of the same spec — and the
// unclassified-experiment count, or an error while the campaign is
// still running or has failed.
func (co *Coordinator) ResultCSV() ([]byte, int, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	switch {
	case co.c == nil:
		return nil, 0, fmt.Errorf("coord: no campaign loaded")
	case co.c.failedErr != nil:
		return nil, 0, co.c.failedErr
	case co.c.csv == nil:
		return nil, 0, fmt.Errorf("coord: campaign not complete")
	}
	return co.c.csv, co.c.unclassified, nil
}

// now is the injected clock.
func (co *Coordinator) now() time.Time { return co.cfg.Now() }

// sweepLocked returns every active lease whose deadline has passed to
// the queue, ingesting the intact lines of its partial segment first —
// a dead worker's finished experiments are not lost, and the re-run of
// the stolen lease resolves them as duplicates.  Called with co.mu held.
func (co *Coordinator) sweepLocked() {
	c := co.c
	if c == nil || c.failedErr != nil {
		return
	}
	now := co.now()
	for _, l := range c.leases {
		if l.state != leaseActive || now.Before(l.deadline) {
			continue
		}
		co.ingestSegmentLocked(l, l.gen, false)
		if c.failedErr != nil {
			return
		}
		if w := c.workers[l.worker]; w != nil && w.lease == l.idx {
			w.lease = -1
		}
		l.state = leasePending
		l.expired = true
		c.queue = append(c.queue, l.idx)
		co.met.expired.Inc()
		co.met.active.Add(-1)
	}
}

// ingestSegmentLocked parses one generation's segment bytes and merges
// its experiments into the campaign results.  strict rejects entries
// outside the lease range and a short parse (lease completion); the
// opportunistic expiry path tolerates both.  Called with co.mu held.
func (co *Coordinator) ingestSegmentLocked(l *lease, gen int, strict bool) error {
	c := co.c
	seg := l.segs[gen]
	if seg == nil || len(seg.data) == 0 {
		if strict {
			return fmt.Errorf("lease %d gen %d: no segment uploaded", l.idx, gen)
		}
		return nil
	}
	h, exps, _, err := report.ParseSegment(seg.data)
	if err != nil {
		if strict {
			return fmt.Errorf("lease %d gen %d: %v", l.idx, gen, err)
		}
		return nil
	}
	if !h.SameCampaign(c.header) {
		err := fmt.Errorf("lease %d gen %d: segment header describes a different campaign (app %s seed %d n %d)",
			l.idx, gen, h.App, h.Seed, h.Injections)
		if strict {
			return err
		}
		co.failLocked(err)
		return err
	}
	for id, e := range exps {
		inLease := false
		if l.ids != nil {
			inLease = l.ids[id]
		} else {
			g, ok := c.planIndex(e)
			inLease = ok && g >= l.start && g < l.end
		}
		if !inLease {
			if strict {
				return fmt.Errorf("lease %d gen %d: experiment %s outside the lease", l.idx, gen, id)
			}
			continue
		}
		if prev, dup := c.results[id]; dup {
			if !report.SameOutcome(prev, e) {
				err := fmt.Errorf("experiment %s disagrees between workers (%s vs %s) — campaign is not deterministic",
					id, prev.Outcome, e.Outcome)
				co.failLocked(err)
				return err
			}
			c.duplicates++
			co.met.duplicates.Inc()
			continue
		}
		c.results[id] = e
		if e.Unapplied() {
			c.unclassified++
		}
		co.met.results.Inc()
		if l.worker != "" {
			co.met.worker(l.worker).Inc()
			if w := c.workers[l.worker]; w != nil {
				w.results++
			}
		}
	}
	return nil
}

// planIndex maps an experiment back to its global plan index.
func (c *campaign) planIndex(e core.Experiment) (int, bool) {
	for i, r := range c.regions {
		if r == e.Region {
			if e.Index < 0 || e.Index >= c.spec.Injections {
				return 0, false
			}
			return i*c.spec.Injections + e.Index, true
		}
	}
	return 0, false
}

// failLocked marks the campaign failed.  Called with co.mu held.
func (co *Coordinator) failLocked(err error) {
	c := co.c
	if c == nil || c.failedErr != nil {
		return
	}
	c.failedErr = err
	close(c.done)
}

// finishLeaseLocked marks a lease done and, when it was the last one,
// assembles the final result — or, for an adaptive campaign, crosses
// the round barrier.  Called with co.mu held.
func (co *Coordinator) finishLeaseLocked(l *lease) {
	c := co.c
	l.state = leaseDone
	c.doneLeases++
	co.met.completed.Inc()
	co.met.active.Add(-1)
	if w := c.workers[l.worker]; w != nil && w.lease == l.idx {
		w.lease = -1
	}
	if c.doneLeases < len(c.leases) {
		return
	}
	if c.spec.Adaptive {
		co.advanceAdaptiveLocked()
		return
	}
	experiments := make([]core.Experiment, 0, c.plan.Total())
	for g := 0; g < c.plan.Total(); g++ {
		e, ok := c.results[c.plan.Entry(g).ID()]
		if !ok {
			co.failLocked(fmt.Errorf("coord: plan entry %s missing after all leases completed", c.plan.Entry(g).ID()))
			return
		}
		experiments = append(experiments, e)
	}
	co.assembleLocked(experiments)
}

// advanceAdaptiveLocked is the adaptive round barrier: every cut lease
// has completed, so the planner sees the cumulative per-region tallies
// and either cuts the next round's leases or closes the campaign.  The
// tallies — and therefore the rounds — are the same pure function of
// the recorded outcomes a single-process RunAdaptive computes, which is
// what makes the final CSV byte-identical whatever the worker count.
// Called with co.mu held.
func (co *Coordinator) advanceAdaptiveLocked() {
	c := co.c
	for i, r := range c.regions {
		errs := 0
		for idx := 0; idx < c.executed[i]; idx++ {
			e, ok := c.results[core.PlanEntry{Region: r, Index: idx}.ID()]
			if !ok {
				co.failLocked(fmt.Errorf("coord: adaptive round %d: %s missing after all leases completed",
					c.round, core.PlanEntry{Region: r, Index: idx}.ID()))
				return
			}
			if report.ErrorOf(e) {
				errs++
			}
		}
		if err := c.planner.SetTally(i, errs, c.executed[i]); err != nil {
			co.failLocked(err)
			return
		}
	}
	before := len(c.leases)
	if n := c.cutRound(c.planner.NextRound()); n > 0 {
		co.met.leases.Add(uint64(len(c.leases) - before))
		co.met.planned.Add(uint64(n))
		return
	}
	// Planner converged: the result is the per-region prefixes in plan
	// order (the order the merge re-derives by replaying the planner).
	experiments := make([]core.Experiment, 0, c.planned)
	for i, r := range c.regions {
		for idx := 0; idx < c.executed[i]; idx++ {
			experiments = append(experiments, c.results[core.PlanEntry{Region: r, Index: idx}.ID()])
		}
	}
	co.assembleLocked(experiments)
}

// assembleLocked renders the final CSV from the complete experiment set
// and closes the campaign.  Called with co.mu held.
func (co *Coordinator) assembleLocked(experiments []core.Experiment) {
	c := co.c
	res := &core.Result{
		Tallies:      core.TallyExperiments(c.regions, experiments),
		Experiments:  experiments,
		Unclassified: core.CountUnapplied(experiments),
	}
	c.unclassified = res.Unclassified
	var buf bytes.Buffer
	report.WriteCampaignCSV(&buf, c.spec.App, res)
	c.csv = buf.Bytes()
	close(c.done)
}

// leaseGrant is the acquire response: the lease coordinates plus the
// full campaign spec, so a bare `faultcampaign -worker <url>` needs no
// other configuration.
type leaseGrant struct {
	Lease int   `json:"lease"`
	Gen   int   `json:"gen"`
	Start int   `json:"start"`
	End   int   `json:"end"`
	TTLMs int64 `json:"ttl_ms"`
	Ranks int   `json:"ranks"`
	Spec  Spec  `json:"spec"`
	// Entries, when non-empty, is the explicit plan-entry ID list of an
	// adaptive round lease; Start/End are then meaningless.
	Entries []string `json:"entries,omitempty"`
}

// WorkerStatus is one row of the cluster view.
type WorkerStatus struct {
	Name       string `json:"name"`
	Lease      int    `json:"lease"` // -1 when idle
	Results    int    `json:"results"`
	LastSeenMs int64  `json:"last_seen_ms"`
}

// ClusterStatus is the /status JSON document.
type ClusterStatus struct {
	State         string         `json:"state"` // waiting, running, complete, failed
	App           string         `json:"app,omitempty"`
	Seed          uint64         `json:"seed,omitempty"`
	Injections    int            `json:"injections,omitempty"`
	PlanTotal     int            `json:"plan_total,omitempty"`
	Results       int            `json:"results_ingested"`
	Duplicates    int            `json:"duplicate_results"`
	LeasesTotal   int            `json:"leases_total"`
	LeasesPending int            `json:"leases_pending"`
	LeasesActive  int            `json:"leases_active"`
	LeasesDone    int            `json:"leases_done"`
	LeasesStolen  int            `json:"leases_stolen"`
	Workers       []WorkerStatus `json:"workers,omitempty"`
	RatePerSec    float64        `json:"rate_per_sec"`
	ETASeconds    float64        `json:"eta_seconds"`
	Error         string         `json:"error,omitempty"`
	// Adaptive campaigns: the round the planner is in and the
	// per-stratum CI half-width summary (core.AdaptiveStats.StatusSuffix
	// format).  PlanTotal then counts the entries cut so far, which
	// grows round by round.
	Round    int    `json:"round,omitempty"`
	Adaptive string `json:"adaptive,omitempty"`
}

// Status returns the live cluster view.
func (co *Coordinator) Status() ClusterStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	c := co.c
	if c == nil {
		return ClusterStatus{State: "waiting"}
	}
	s := ClusterStatus{
		State:       "running",
		App:         c.spec.App,
		Seed:        c.spec.Seed,
		Injections:  c.spec.Injections,
		PlanTotal:   c.planned,
		Results:     len(c.results),
		Duplicates:  c.duplicates,
		LeasesTotal: len(c.leases),
		LeasesDone:  c.doneLeases,
	}
	if c.spec.Adaptive && c.planner != nil {
		s.Round = c.round
		stats := core.AdaptiveStats{
			Confidence: c.spec.Confidence,
			Target:     c.spec.TargetHalfWidth,
			RoundSize:  c.spec.RoundSize,
			Cap:        c.planner.Cap(),
			Rounds:     c.round,
		}
		for i, st := range c.planner.Snapshot() {
			stats.Strata = append(stats.Strata, core.AdaptiveStratum{
				Region: c.regions[i], Prior: st.Prior, Executed: st.Executed,
				Errors: st.Errors, HalfWidth: st.HalfWidth, Closed: st.Closed,
			})
		}
		s.Adaptive = stats.StatusSuffix()
	}
	for _, l := range c.leases {
		switch l.state {
		case leasePending:
			s.LeasesPending++
		case leaseActive:
			s.LeasesActive++
		}
		s.LeasesStolen += l.stolen
	}
	now := co.now()
	for name, w := range c.workers {
		s.Workers = append(s.Workers, WorkerStatus{
			Name: name, Lease: w.lease, Results: w.results,
			LastSeenMs: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sortWorkers(s.Workers)
	if elapsed := now.Sub(c.started).Seconds(); elapsed > 0 && s.Results > 0 {
		s.RatePerSec = float64(s.Results) / elapsed
		if s.PlanTotal > s.Results {
			s.ETASeconds = float64(s.PlanTotal-s.Results) / s.RatePerSec
		}
	}
	switch {
	case c.failedErr != nil:
		s.State = "failed"
		s.Error = c.failedErr.Error()
	case c.csv != nil:
		s.State = "complete"
	}
	return s
}

func sortWorkers(ws []WorkerStatus) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Name < ws[j-1].Name; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// touchWorkerLocked records worker liveness.  Called with co.mu held.
func (co *Coordinator) touchWorkerLocked(name string) *workerState {
	c := co.c
	w := c.workers[name]
	if w == nil {
		w = &workerState{lease: -1}
		c.workers[name] = w
		co.met.workers.Set(int64(len(c.workers)))
	}
	w.lastSeen = co.now()
	return w
}

// Acquire grants the next pending lease to worker, sweeping expired
// leases first.  The bool is false when no lease is currently available
// (the worker should poll again: leases may return via expiry).  The
// error is non-nil once the campaign is complete or failed — workers
// exit on it.
func (co *Coordinator) Acquire(worker string) (leaseGrant, bool, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.c
	if c == nil {
		return leaseGrant{}, false, nil
	}
	co.sweepLocked()
	if c.failedErr != nil {
		return leaseGrant{}, false, fmt.Errorf("campaign failed: %v", c.failedErr)
	}
	if c.csv != nil {
		return leaseGrant{}, false, errCampaignDone
	}
	co.touchWorkerLocked(worker)
	if len(c.queue) == 0 {
		return leaseGrant{}, false, nil
	}
	idx := c.queue[0]
	c.queue = c.queue[1:]
	l := c.leases[idx]
	l.gen++
	l.state = leaseActive
	l.worker = worker
	l.deadline = co.now().Add(c.ttl)
	l.segs[l.gen] = &segment{}
	if co.cfg.Dir != "" {
		l.segs[l.gen].path = filepath.Join(co.cfg.Dir, fmt.Sprintf("lease-%04d.gen%d.jsonl", l.idx, l.gen))
	}
	if l.expired {
		l.expired = false
		l.stolen++
		co.met.stolen.Inc()
	}
	c.workers[worker].lease = idx
	co.met.granted.Inc()
	co.met.active.Add(1)
	grant := leaseGrant{
		Lease: l.idx, Gen: l.gen, Start: l.start, End: l.end,
		TTLMs: c.ttl.Milliseconds(), Ranks: c.ranks, Spec: c.spec,
	}
	if l.entries != nil {
		grant.Entries = c.entryIDs(l)
	}
	return grant, true, nil
}

var errCampaignDone = fmt.Errorf("campaign complete")

// checkLeaseLocked resolves (lease, gen, worker) to a live lease the
// caller still owns.  Called with co.mu held.
func (co *Coordinator) checkLeaseLocked(idx, gen int, worker string) (*lease, error) {
	c := co.c
	if c == nil {
		return nil, fmt.Errorf("no campaign loaded")
	}
	if idx < 0 || idx >= len(c.leases) {
		return nil, fmt.Errorf("unknown lease %d", idx)
	}
	l := c.leases[idx]
	if l.state != leaseActive || l.gen != gen || l.worker != worker {
		return nil, fmt.Errorf("lease %d gen %d no longer held by %s", idx, gen, worker)
	}
	return l, nil
}

// Renew extends the lease deadline (the worker heartbeat).  An error
// means the lease was lost — the worker should stop working on it.
func (co *Coordinator) Renew(idx, gen int, worker string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	l, err := co.checkLeaseLocked(idx, gen, worker)
	if err != nil {
		return err
	}
	co.touchWorkerLocked(worker)
	l.deadline = co.now().Add(co.c.ttl)
	return nil
}

// Fail returns a lease to the queue on an explicit worker error.  Too
// many failures of one lease fail the whole campaign: the lease is
// deterministically unrunnable, and retrying forever would hide it.
func (co *Coordinator) Fail(idx, gen int, worker, cause string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	l, err := co.checkLeaseLocked(idx, gen, worker)
	if err != nil {
		return err
	}
	co.touchWorkerLocked(worker)
	if w := co.c.workers[worker]; w != nil && w.lease == idx {
		w.lease = -1
	}
	l.failures++
	if l.failures >= co.cfg.MaxLeaseFailures {
		co.failLocked(fmt.Errorf("lease %d failed %d times (last: %s)", idx, l.failures, cause))
		return nil
	}
	l.state = leasePending
	l.expired = true // a re-grant after failure counts as stolen work
	co.c.queue = append(co.c.queue, idx)
	co.met.expired.Inc()
	co.met.active.Add(-1)
	return nil
}

// SegmentOffset returns how many bytes of (lease, gen)'s segment the
// coordinator holds — the resume point for an interrupted upload.
func (co *Coordinator) SegmentOffset(idx, gen int) (int, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.c
	if c == nil || idx < 0 || idx >= len(c.leases) {
		return 0, fmt.Errorf("unknown lease %d", idx)
	}
	seg := c.leases[idx].segs[gen]
	if seg == nil {
		return 0, fmt.Errorf("lease %d has no generation %d", idx, gen)
	}
	return len(seg.data), nil
}

// AppendSegment appends chunk at byte offset to (lease, gen)'s segment.
// A mismatched offset returns the current one without appending, so the
// worker re-synchronizes and resends — at-least-once chunk delivery
// composes to exactly-once bytes.
func (co *Coordinator) AppendSegment(idx, gen int, worker string, offset int, chunk []byte) (int, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	l, err := co.checkLeaseLocked(idx, gen, worker)
	if err != nil {
		return 0, err
	}
	co.touchWorkerLocked(worker)
	seg := l.segs[gen]
	if offset != len(seg.data) {
		return len(seg.data), errOffsetMismatch
	}
	seg.data = append(seg.data, chunk...)
	co.met.segmentBytes.Add(uint64(len(chunk)))
	if seg.path != "" {
		f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return 0, err
		}
		_, werr := f.Write(chunk)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return 0, werr
		}
	}
	return len(seg.data), nil
}

var errOffsetMismatch = fmt.Errorf("segment offset mismatch")

// Complete finishes a lease: the uploaded segment must parse cleanly
// and carry a result for every entry of the lease.  An incomplete or
// malformed segment returns the lease to the queue.
func (co *Coordinator) Complete(idx, gen int, worker string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked()
	l, err := co.checkLeaseLocked(idx, gen, worker)
	if err != nil {
		return err
	}
	co.touchWorkerLocked(worker)
	if err := co.ingestSegmentLocked(l, gen, true); err != nil {
		if co.c.failedErr != nil {
			return err
		}
		// Re-queue: the segment was unusable but the campaign survives.
		l.state = leasePending
		l.expired = true
		co.c.queue = append(co.c.queue, l.idx)
		co.met.expired.Inc()
		co.met.active.Add(-1)
		return err
	}
	if co.c.failedErr != nil {
		return co.c.failedErr
	}
	for _, id := range co.c.entryIDs(l) {
		if _, ok := co.c.results[id]; !ok {
			l.state = leasePending
			l.expired = true
			co.c.queue = append(co.c.queue, l.idx)
			co.met.expired.Inc()
			co.met.active.Add(-1)
			return fmt.Errorf("lease %d gen %d: segment missing entry %s", idx, gen, id)
		}
	}
	co.finishLeaseLocked(l)
	return nil
}

// ---- HTTP surface ----

// Handler returns the coordinator's HTTP mux:
//
//	POST /api/campaign        submit a Spec (409 when one is loaded)
//	GET  /api/campaign        the loaded Spec
//	POST /api/lease/acquire   {"worker":W} -> leaseGrant | 204 retry | 410 done
//	POST /api/lease/renew     {"worker":W,"lease":L,"gen":G} -> 204 | 409 lost
//	POST /api/lease/fail      {"worker":W,"lease":L,"gen":G,"error":E}
//	GET  /api/segment?lease=L&gen=G            -> {"offset":N}
//	POST /api/segment?lease=L&gen=G&worker=W&offset=N  (raw chunk body)
//	POST /api/lease/complete  {"worker":W,"lease":L,"gen":G}
//	GET  /status              ClusterStatus JSON
//	GET  /result.csv          final CSV (409 until complete)
//	GET  /metrics[.json]      the telemetry registry
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	metricsHandler := telemetry.Handler(co.cfg.Metrics)
	mux.Handle("/metrics", metricsHandler)
	mux.Handle("/metrics.json", metricsHandler)

	mux.HandleFunc("/api/campaign", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			co.mu.Lock()
			c := co.c
			co.mu.Unlock()
			if c == nil {
				http.Error(w, "no campaign loaded", http.StatusNotFound)
				return
			}
			writeJSON(w, http.StatusOK, c.spec)
		case http.MethodPost:
			var spec Spec
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := co.Submit(spec); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})

	type leaseReq struct {
		Worker string `json:"worker"`
		Lease  int    `json:"lease"`
		Gen    int    `json:"gen"`
		Error  string `json:"error,omitempty"`
	}
	readReq := func(w http.ResponseWriter, r *http.Request) (leaseReq, bool) {
		var req leaseReq
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return req, false
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return req, false
		}
		if req.Worker == "" {
			http.Error(w, "missing worker name", http.StatusBadRequest)
			return req, false
		}
		return req, true
	}

	mux.HandleFunc("/api/lease/acquire", func(w http.ResponseWriter, r *http.Request) {
		req, ok := readReq(w, r)
		if !ok {
			return
		}
		grant, ok, err := co.Acquire(req.Worker)
		switch {
		case err != nil:
			http.Error(w, err.Error(), http.StatusGone)
		case !ok:
			w.WriteHeader(http.StatusNoContent)
		default:
			writeJSON(w, http.StatusOK, grant)
		}
	})
	mux.HandleFunc("/api/lease/renew", func(w http.ResponseWriter, r *http.Request) {
		req, ok := readReq(w, r)
		if !ok {
			return
		}
		if err := co.Renew(req.Lease, req.Gen, req.Worker); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/api/lease/fail", func(w http.ResponseWriter, r *http.Request) {
		req, ok := readReq(w, r)
		if !ok {
			return
		}
		if err := co.Fail(req.Lease, req.Gen, req.Worker, req.Error); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/api/lease/complete", func(w http.ResponseWriter, r *http.Request) {
		req, ok := readReq(w, r)
		if !ok {
			return
		}
		if err := co.Complete(req.Lease, req.Gen, req.Worker); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("/api/segment", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		idx, err1 := strconv.Atoi(q.Get("lease"))
		gen, err2 := strconv.Atoi(q.Get("gen"))
		if err1 != nil || err2 != nil {
			http.Error(w, "lease and gen query parameters required", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			off, err := co.SegmentOffset(idx, gen)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			writeJSON(w, http.StatusOK, map[string]int{"offset": off})
		case http.MethodPost:
			offset, err := strconv.Atoi(q.Get("offset"))
			if err != nil {
				http.Error(w, "offset query parameter required", http.StatusBadRequest)
				return
			}
			chunk, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
			if err != nil {
				// The chunk died mid-flight; nothing was appended.  The
				// worker re-syncs via GET and resends.
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			off, err := co.AppendSegment(idx, gen, q.Get("worker"), offset, chunk)
			switch {
			case err == errOffsetMismatch:
				writeJSON(w, http.StatusConflict, map[string]int{"offset": off})
			case err != nil:
				http.Error(w, err.Error(), http.StatusConflict)
			default:
				writeJSON(w, http.StatusOK, map[string]int{"offset": off})
			}
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})

	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, co.Status())
	})
	mux.HandleFunc("/result.csv", func(w http.ResponseWriter, r *http.Request) {
		csv, _, err := co.ResultCSV()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Write(csv)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "mpifault campaign coordinator\n/status        cluster view (JSON)\n/result.csv    final campaign CSV\n/metrics       Prometheus text\n/metrics.json  JSON snapshot\n/api/...       worker protocol (see internal/coord)\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
