package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Plan is the deterministic enumeration of a campaign's injection
// experiments.  A campaign at a given (Regions, Injections, Seed) is a
// fixed sequence of experiments — entry g of the plan is experiment
// Index g%Injections of region Regions[g/Injections], and its random
// stream is Derive(region, index) from the campaign seed — so the plan
// can be partitioned as "shard i of K" with no coordination: each shard
// takes every K-th entry, and the union over all shards is exactly the
// single-process plan.  Which shard runs an experiment has no effect on
// its outcome.
type Plan struct {
	Regions    []Region
	Injections int
}

// PlanEntry identifies one experiment of a plan.  (Region, Index) is the
// label pair the campaign seed is derived with, so an entry fully
// determines the experiment's random stream.
type PlanEntry struct {
	Region Region
	Index  int
}

// ID returns the entry's stable string identity, e.g. "reg/17", used as
// the experiment key in checkpoint journals.
func (e PlanEntry) ID() string {
	return fmt.Sprintf("%s/%d", e.Region.Short(), e.Index)
}

// ParseEntryID inverts PlanEntry.ID.
func ParseEntryID(id string) (PlanEntry, error) {
	slash := strings.LastIndexByte(id, '/')
	if slash < 0 {
		return PlanEntry{}, fmt.Errorf("core: malformed experiment id %q", id)
	}
	region, err := ParseRegion(id[:slash])
	if err != nil {
		return PlanEntry{}, fmt.Errorf("core: malformed experiment id %q: %v", id, err)
	}
	idx, err := strconv.Atoi(id[slash+1:])
	if err != nil || idx < 0 {
		return PlanEntry{}, fmt.Errorf("core: malformed experiment id %q", id)
	}
	return PlanEntry{Region: region, Index: idx}, nil
}

// Total returns the number of experiments in the plan.
func (p Plan) Total() int {
	return len(p.Regions) * p.Injections
}

// Entry returns plan entry g, for g in [0, Total()).
func (p Plan) Entry(g int) PlanEntry {
	return PlanEntry{
		Region: p.Regions[g/p.Injections],
		Index:  g % p.Injections,
	}
}

// Shard returns the entries of shard `shard` of `of`: every of-th entry
// starting at `shard`.  Shards are pairwise disjoint and their union is
// the complete plan; Shard(0, 1) is the whole plan.
func (p Plan) Shard(shard, of int) []PlanEntry {
	total := p.Total()
	entries := make([]PlanEntry, 0, (total-shard+of-1)/of)
	for g := shard; g < total; g += of {
		entries = append(entries, p.Entry(g))
	}
	return entries
}

// Range returns the contiguous plan entries [start, end), the
// enumeration unit of coordinator leases: a lease is a bounded range of
// the global plan, and because every experiment's random stream is
// derived from (seed, region, index) alone, any worker can run any
// range and produce the identical outcomes.  Bounds are clamped to the
// plan.
func (p Plan) Range(start, end int) []PlanEntry {
	if start < 0 {
		start = 0
	}
	if total := p.Total(); end > total {
		end = total
	}
	if start >= end {
		return nil
	}
	entries := make([]PlanEntry, 0, end-start)
	for g := start; g < end; g++ {
		entries = append(entries, p.Entry(g))
	}
	return entries
}

// ParseShard parses a command-line shard spec "i/K" (e.g. "0/3") into
// (shard, numShards), validating 0 <= i < K.
func ParseShard(s string) (shard, of int, err error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("core: shard spec %q not of the form i/K", s)
	}
	shard, err1 := strconv.Atoi(s[:slash])
	of, err2 := strconv.Atoi(s[slash+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("core: shard spec %q not of the form i/K", s)
	}
	if of <= 0 || shard < 0 || shard >= of {
		return 0, 0, fmt.Errorf("core: shard spec %q out of range (want 0 <= i < K)", s)
	}
	return shard, of, nil
}
