// Package image defines the binary program image produced by the assembler
// and consumed by the virtual machine and the fault injector.
//
// The address-space layout mirrors the Linux/x86-32 process model shown in
// Figure 1 of the paper: text at 0x08048000, then data, then BSS, then a
// heap growing upward, and a stack growing down from 0xC0000000.  The image
// also carries a full symbol table, with every symbol attributed to either
// the user application or the MPI library — the distinction the paper's
// fault dictionary relies on to avoid injecting into MPI-owned memory.
package image

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Address-space layout constants (see Figure 1 of the paper).
const (
	TextBase  uint32 = 0x08048000
	StackTop  uint32 = 0xC0000000
	PageAlign uint32 = 0x1000
)

// Owner attributes a symbol to the user application or the MPI library.
type Owner uint8

const (
	OwnerUser Owner = iota // user application (including its runtime library)
	OwnerMPI               // MPI library
)

func (o Owner) String() string {
	if o == OwnerMPI {
		return "mpi"
	}
	return "user"
}

// SymKind classifies a symbol by the segment it lives in.
type SymKind uint8

const (
	SymFunc SymKind = iota // text segment
	SymData                // initialized data
	SymBSS                 // zero-initialized data
)

func (k SymKind) String() string {
	switch k {
	case SymFunc:
		return "func"
	case SymData:
		return "data"
	case SymBSS:
		return "bss"
	default:
		return "sym?"
	}
}

// Symbol is one entry of the image's symbol table.
type Symbol struct {
	Name   string
	Module string // source module name
	Kind   SymKind
	Owner  Owner
	Addr   uint32
	Size   uint32
}

// Image is a fully linked guest program.
//
// Text and Data are immutable once the first machine has been loaded from
// the image: the VM maps them copy-on-write into every rank of every
// experiment, so an in-place mutation would leak into concurrently running
// machines.  Producers (the assembler's Link) hand over fresh slices;
// consumers that need to corrupt bytes do so through vm.Machine.RawWrite,
// which unshares the affected segment first.
type Image struct {
	// Text is the executable segment, loaded at TextBase.
	Text []byte
	// Data is the initialized data segment, loaded at DataBase.
	Data []byte
	// BSSSize is the size of the zero-initialized segment at BSSBase.
	BSSSize uint32

	DataBase uint32
	BSSBase  uint32
	// HeapBase is where the heap begins; HeapLimit bounds its growth.
	HeapBase  uint32
	HeapLimit uint32
	// StackSize is the size of the stack segment ending at StackTop.
	StackSize uint32

	// Entry is the address of the startup shim (_start).
	Entry uint32

	// Symbols is sorted by address.
	Symbols []Symbol

	// predecoded caches the VM's decoded-text table (see Predecoded).
	predecoded atomic.Value
}

// Predecoded returns the image-wide cache slot for a derived, immutable
// view of the text segment, building it on first use.  The VM stores its
// predecoded instruction table here so that one decode pass is shared by
// all machines, ranks and experiments of a campaign.  Concurrent first
// uses may invoke build more than once; every returned value must
// therefore be equivalent (and of the same concrete type).  build must
// not return nil.
func (im *Image) Predecoded(build func() any) any {
	if v := im.predecoded.Load(); v != nil {
		return v
	}
	v := build()
	im.predecoded.Store(v)
	return v
}

// TextEnd returns the first address past the text segment.
func (im *Image) TextEnd() uint32 { return TextBase + uint32(len(im.Text)) }

// DataEnd returns the first address past the data segment.
func (im *Image) DataEnd() uint32 { return im.DataBase + uint32(len(im.Data)) }

// BSSEnd returns the first address past the BSS segment.
func (im *Image) BSSEnd() uint32 { return im.BSSBase + im.BSSSize }

// StackBase returns the lowest address of the stack segment.
func (im *Image) StackBase() uint32 { return StackTop - im.StackSize }

// SortSymbols sorts the symbol table by address; it must be called once
// after construction before FindSymbol is used.
func (im *Image) SortSymbols() {
	sort.Slice(im.Symbols, func(i, j int) bool {
		return im.Symbols[i].Addr < im.Symbols[j].Addr
	})
}

// FindSymbol returns the symbol covering addr, if any.
func (im *Image) FindSymbol(addr uint32) (Symbol, bool) {
	i := sort.Search(len(im.Symbols), func(i int) bool {
		return im.Symbols[i].Addr > addr
	})
	if i == 0 {
		return Symbol{}, false
	}
	s := im.Symbols[i-1]
	if addr >= s.Addr && addr < s.Addr+s.Size {
		return s, true
	}
	return Symbol{}, false
}

// Lookup returns the symbol with the given name.
func (im *Image) Lookup(name string) (Symbol, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// SymbolsOwnedBy returns all symbols of the given owner and kind.
func (im *Image) SymbolsOwnedBy(owner Owner, kind SymKind) []Symbol {
	var out []Symbol
	for _, s := range im.Symbols {
		if s.Owner == owner && s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// InUserText reports whether addr lies inside a user-owned function —
// the test the stack walker applies to return addresses (§3.2).
func (im *Image) InUserText(addr uint32) bool {
	s, ok := im.FindSymbol(addr)
	return ok && s.Kind == SymFunc && s.Owner == OwnerUser
}

// SectionSizes returns the text/data/BSS sizes attributed to each owner,
// mirroring the objdump/nm measurement the paper uses for Table 1.
func (im *Image) SectionSizes() map[Owner]map[SymKind]uint32 {
	out := map[Owner]map[SymKind]uint32{
		OwnerUser: {},
		OwnerMPI:  {},
	}
	for _, s := range im.Symbols {
		out[s.Owner][s.Kind] += s.Size
	}
	return out
}

// Validate performs basic structural checks on the image layout.
func (im *Image) Validate() error {
	if im.Entry < TextBase || im.Entry >= im.TextEnd() {
		return fmt.Errorf("image: entry 0x%08x outside text [0x%08x,0x%08x)", im.Entry, TextBase, im.TextEnd())
	}
	if im.DataBase < im.TextEnd() {
		return fmt.Errorf("image: data base 0x%08x overlaps text", im.DataBase)
	}
	if im.BSSBase < im.DataEnd() {
		return fmt.Errorf("image: bss base 0x%08x overlaps data", im.BSSBase)
	}
	if im.HeapBase < im.BSSEnd() {
		return fmt.Errorf("image: heap base 0x%08x overlaps bss", im.HeapBase)
	}
	if im.HeapLimit <= im.HeapBase {
		return fmt.Errorf("image: empty heap")
	}
	if im.HeapLimit > im.StackBase() {
		return fmt.Errorf("image: heap limit 0x%08x overlaps stack", im.HeapLimit)
	}
	if im.StackSize == 0 {
		return fmt.Errorf("image: zero stack size")
	}
	return nil
}
