package report

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/msgtrace"
)

func syntheticDivergence() *msgtrace.Divergence {
	return &msgtrace.Divergence{
		Rank:                 1,
		MsgIndex:             7,
		Kind:                 msgtrace.KindMismatch,
		Golden:               "MPI_Send peer=0 tag=3 bytes=16 hash=0011223344556677",
		Observed:             "MPI_Send peer=0 tag=3 bytes=16 hash=8899aabbccddeeff",
		Instrs:               4200,
		InstrsSinceInjection: 900,
	}
}

// TestPreDivergenceJournalLineByteIdentical pins the serialization
// compatibility contract: a journal line written before the divergence
// field existed — forensics present, no divergence — must survive a
// parse/re-marshal cycle byte for byte.  Divergence rides as the last
// omitempty field of Forensics precisely so this holds.
func TestPreDivergenceJournalLineByteIdentical(t *testing.T) {
	lines := []string{
		`{"id":"reg/0","rank":0,"trigger":100,"desc":"eax bit 3","outcome":"Crash","forensics":{"injected_at":100,"manifested_at":1350,"trap":"SIGSEGV","trap_pc":134526000,"trap_addr":3220111280,"trap_msg":"store","last_pcs":[134512640,134512648]}}`,
		`{"id":"reg/1","rank":1,"trigger":101,"desc":"eax bit 3","outcome":"Correct"}`,
		`{"id":"reg/2","rank":0,"trigger":102,"outcome":"Hang","detail":"distributed deadlock","forensics":{"manifested_at":900,"budget_exhausted":true}}`,
	}
	for _, line := range lines {
		var je JournalEntry
		if err := json.Unmarshal([]byte(line), &je); err != nil {
			t.Fatalf("unmarshal %q: %v", line, err)
		}
		e, err := je.Experiment()
		if err != nil {
			t.Fatalf("Experiment() on %q: %v", line, err)
		}
		out, err := json.Marshal(EntryFromExperiment(e))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != line {
			t.Errorf("pre-divergence line changed across round trip:\n in: %s\nout: %s", line, out)
		}
	}
}

// TestJournalDivergenceRoundTrip checks that a divergence record
// survives the journal write/read cycle intact.
func TestJournalDivergenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := CreateJournal(path, syntheticHeader(1))
	if err != nil {
		t.Fatal(err)
	}
	e := syntheticExperiment(0, classify.Incorrect)
	e.Forensics = syntheticForensics()
	e.Forensics.Divergence = syntheticDivergence()
	if err := j.Append(e); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, completed, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got := completed["reg/0"]
	if got.Forensics == nil || got.Forensics.Divergence == nil {
		t.Fatal("divergence lost in journal round trip")
	}
	if !reflect.DeepEqual(got.Forensics.Divergence, e.Forensics.Divergence) {
		t.Errorf("divergence round trip:\ngot:  %+v\nwant: %+v",
			got.Forensics.Divergence, e.Forensics.Divergence)
	}
}

// TestSameOutcomeIgnoresDivergence: the coordinator's duplicate
// resolution must accept two records of one experiment that differ only
// in trace-diff enrichment.
func TestSameOutcomeIgnoresDivergence(t *testing.T) {
	plain := syntheticExperiment(0, classify.Incorrect)
	rich := plain
	rich.Forensics = &core.Forensics{Divergence: syntheticDivergence()}
	if !SameOutcome(plain, rich) {
		t.Error("SameOutcome rejected a divergence-only difference")
	}
	bad := rich
	bad.Outcome = classify.Hang
	if SameOutcome(plain, bad) {
		t.Error("SameOutcome accepted an outcome disagreement")
	}
}

// TestMergeKeepsDivergenceDuplicate: when overlapping shards record one
// experiment with and without a divergence (one ran -trace-diff, one
// did not), the merge keeps the localized record, in either file order.
func TestMergeKeepsDivergenceDuplicate(t *testing.T) {
	dir := t.TempDir()
	h := syntheticHeader(2)
	write := func(name string, exps ...core.Experiment) string {
		path := filepath.Join(dir, name)
		j, err := CreateJournal(path, h)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range exps {
			if err := j.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		return path
	}

	plain0 := syntheticExperiment(0, classify.Incorrect)
	plain0.Forensics = syntheticForensics()
	rich0 := plain0
	rich0.Forensics = syntheticForensics()
	rich0.Forensics.Divergence = syntheticDivergence()
	e1 := syntheticExperiment(1, classify.Correct)

	a := write("a.jsonl", plain0, e1)
	b := write("b.jsonl", rich0)
	for _, order := range [][]string{{a, b}, {b, a}} {
		m, err := MergeJournals(order)
		if err != nil {
			t.Fatalf("merge %v: %v", order, err)
		}
		var got *msgtrace.Divergence
		for i := range m.Result.Experiments {
			e := &m.Result.Experiments[i]
			if e.Region == core.RegionRegularReg && e.Index == 0 {
				got = e.Divergence()
			}
		}
		if got == nil {
			t.Errorf("merge %v dropped the divergence-bearing duplicate", order)
		}
	}
}

func TestWriteLocalization(t *testing.T) {
	loc := syntheticExperiment(0, classify.Incorrect)
	loc.Forensics = &core.Forensics{Divergence: syntheticDivergence()}
	unloc := syntheticExperiment(1, classify.Incorrect)
	hang := syntheticExperiment(2, classify.Hang)
	hang.Forensics = &core.Forensics{Divergence: &msgtrace.Divergence{
		Rank: 0, MsgIndex: 2, Kind: msgtrace.KindMissing,
		Golden: "MPI_Recv peer=1 tag=0 bytes=8 hash=0000000000000001",
	}}
	correct := syntheticExperiment(3, classify.Correct)

	var b strings.Builder
	WriteLocalization(&b, []core.Experiment{loc, unloc, hang, correct})
	out := b.String()
	for _, want := range []string{
		"Trace-diff localization",
		"Incorrect",
		"50.0%",  // 1 of 2 Incorrect localized
		"100.0%", // 1 of 1 Hang localized
	} {
		if !strings.Contains(out, want) {
			t.Errorf("localization output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Crash") {
		t.Errorf("localization table printed an outcome with no experiments:\n%s", out)
	}

	// No divergence anywhere → no output at all (keeps faultmerge quiet
	// on journals from campaigns without -trace-diff).
	b.Reset()
	WriteLocalization(&b, []core.Experiment{unloc, correct})
	if b.Len() != 0 {
		t.Errorf("localization printed without any divergence:\n%s", b.String())
	}
}
