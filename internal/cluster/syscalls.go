package cluster

import (
	"fmt"
	"strconv"
	"sync"

	"mpifault/internal/abi"
	"mpifault/internal/mpi"
	"mpifault/internal/vm"
)

// fileStore collects named output files.  All three workloads write their
// results from rank 0, but the store is safe for any writer.
type fileStore struct {
	mu    sync.Mutex
	files map[string][]byte
	names []string // fd - FdFileBase -> name
}

func (fs *fileStore) open(name string) int32 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.names = append(fs.names, name)
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = nil
	}
	return abi.FdFileBase + int32(len(fs.names)-1)
}

func (fs *fileStore) write(fd int32, b []byte) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	i := int(fd - abi.FdFileBase)
	if i < 0 || i >= len(fs.names) {
		return false
	}
	name := fs.names[i]
	fs.files[name] = append(fs.files[name], b...)
	return true
}

// rankIO is the per-rank syscall handler: console and file I/O, the guest
// malloc/free entry points, and the dispatch into the MPI runtime.
type rankIO struct {
	proc   *mpi.Proc
	files  *fileStore
	stdout []byte
	stderr []byte
}

var _ vm.SyscallHandler = (*rankIO)(nil)

// appendSignalBanner emulates MPICH's signal handler, which prints an
// error to stderr on abnormal termination — the marker the paper's
// harness greps for to classify Crashes.
func (io *rankIO) appendSignalBanner(t *vm.Trap) []byte {
	if t == nil {
		return io.stderr
	}
	switch t.Kind {
	case vm.TrapSegv, vm.TrapIll, vm.TrapFpe:
		banner := fmt.Sprintf("p4_error: interrupt %s: pc=0x%08x addr=0x%08x\n",
			t.Kind, t.PC, t.Addr)
		return append(io.stderr, banner...)
	case vm.TrapMPIFatal:
		banner := fmt.Sprintf("MPI process aborted: %s\n", t.Msg)
		return append(io.stderr, banner...)
	case vm.TrapMPIHandler:
		banner := fmt.Sprintf("user error handler invoked: %s\n", t.Msg)
		return append(io.stderr, banner...)
	}
	return io.stderr
}

func (io *rankIO) writeFd(m *vm.Machine, fd int32, b []byte) *vm.Trap {
	switch fd {
	case abi.FdStdout:
		io.stdout = append(io.stdout, b...)
	case abi.FdStderr:
		io.stderr = append(io.stderr, b...)
	default:
		if !io.files.write(fd, b) {
			return &vm.Trap{Kind: vm.TrapSegv, PC: m.PC, Msg: "write to bad fd"}
		}
	}
	return nil
}

// arg fetches syscall argument i, mapping a bad stack read to the trap it
// would raise.
func arg(m *vm.Machine, i int) (uint32, *vm.Trap) { return m.Arg(i) }

// Syscall implements vm.SyscallHandler.
func (io *rankIO) Syscall(m *vm.Machine, num int32) *vm.Trap {
	switch num {
	case abi.SysExit:
		return &vm.Trap{Kind: vm.TrapExit, PC: m.PC, Code: int32(m.Regs[0])}

	case abi.SysAbort:
		// The guest runtime prints its diagnostic *before* calling abort;
		// the harness classifies this as Application Detected.
		return &vm.Trap{Kind: vm.TrapAbort, PC: m.PC, Code: int32(m.Regs[0]),
			Msg: "application abort"}

	case abi.SysWrite, abi.SysWriteBin:
		fd, addr, n := int32(m.Regs[0]), m.Regs[1], m.Regs[2]
		if n > 1<<24 {
			return &vm.Trap{Kind: vm.TrapSegv, PC: m.PC, Addr: addr, Msg: "oversized write"}
		}
		b, t := m.ReadBytes(addr, int(n))
		if t != nil {
			return t
		}
		return io.writeFd(m, fd, b)

	case abi.SysOpen:
		addr, n := m.Regs[0], m.Regs[1]
		if n > 4096 {
			return &vm.Trap{Kind: vm.TrapSegv, PC: m.PC, Addr: addr, Msg: "oversized filename"}
		}
		b, t := m.ReadBytes(addr, int(n))
		if t != nil {
			return t
		}
		m.Regs[0] = uint32(io.files.open(string(b)))
		return nil

	case abi.SysWriteInt:
		fd, v := int32(m.Regs[0]), int32(m.Regs[1])
		return io.writeFd(m, fd, []byte(strconv.FormatInt(int64(v), 10)))

	case abi.SysWriteF64:
		fd, addr, prec := int32(m.Regs[0]), m.Regs[1], int(int32(m.Regs[2]))
		v, t := m.LoadF64(addr)
		if t != nil {
			return t
		}
		return io.writeFd(m, fd, formatF64(v, prec))

	case abi.SysWriteF64Arr:
		fd, addr, count, prec := int32(m.Regs[0]), m.Regs[1], m.Regs[2], int(int32(m.Regs[3]))
		if count > 1<<22 {
			return &vm.Trap{Kind: vm.TrapSegv, PC: m.PC, Addr: addr, Msg: "oversized array write"}
		}
		var buf []byte
		for i := uint32(0); i < count; i++ {
			v, t := m.LoadF64(addr + 8*i)
			if t != nil {
				return t
			}
			buf = append(buf, formatF64(v, prec)...)
			buf = append(buf, '\n')
		}
		return io.writeFd(m, fd, buf)

	case abi.SysMalloc:
		m.Regs[0] = m.Heap.Alloc(m.Regs[0], abi.ChunkUser)
		return nil

	case abi.SysFree:
		return m.Heap.Free(m.Regs[0])

	case abi.SysClock:
		m.Regs[0] = uint32(m.Instrs)
		return nil

	case abi.SysMPIWtime:
		// Virtual time: one nanosecond per retired instruction.
		return m.StoreF64(m.Regs[0], float64(m.Instrs)*1e-9)
	}

	return io.mpiCall(m, num)
}

// mpiCall decodes MPI syscall arguments and dispatches to the API layer.
func (io *rankIO) mpiCall(m *vm.Machine, num int32) *vm.Trap {
	p := io.proc
	switch num {
	case abi.SysMPIInit:
		return p.Init(m)

	case abi.SysMPIFinalize:
		return p.Finalize(m)

	case abi.SysMPICommRank:
		r, t := p.CommRank(m, int32(m.Regs[0]))
		if t != nil {
			return t
		}
		m.Regs[0] = uint32(r)
		return nil

	case abi.SysMPICommSize:
		s, t := p.CommSize(m, int32(m.Regs[0]))
		if t != nil {
			return t
		}
		m.Regs[0] = uint32(s)
		return nil

	case abi.SysMPIErrhandlerSet:
		return p.ErrhandlerSet(m, int32(m.Regs[0]), m.Regs[1])

	case abi.SysMPISend:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		a5, t := arg(m, 5)
		if t != nil {
			return t
		}
		return p.Send(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
			int32(m.Regs[3]), int32(a4), int32(a5))

	case abi.SysMPIRecv:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		a5, t := arg(m, 5)
		if t != nil {
			return t
		}
		a6, t := arg(m, 6)
		if t != nil {
			return t
		}
		return p.Recv(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
			int32(m.Regs[3]), int32(a4), int32(a5), a6)

	case abi.SysMPIBarrier:
		return p.Barrier(m, int32(m.Regs[0]))

	case abi.SysMPIBcast:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		return p.Bcast(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
			int32(m.Regs[3]), int32(a4))

	case abi.SysMPIReduce:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		a5, t := arg(m, 5)
		if t != nil {
			return t
		}
		a6, t := arg(m, 6)
		if t != nil {
			return t
		}
		return p.Reduce(m, m.Regs[0], m.Regs[1], int32(m.Regs[2]),
			int32(m.Regs[3]), int32(a4), int32(a5), int32(a6))

	case abi.SysMPIAllreduce:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		a5, t := arg(m, 5)
		if t != nil {
			return t
		}
		return p.Allreduce(m, m.Regs[0], m.Regs[1], int32(m.Regs[2]),
			int32(m.Regs[3]), int32(a4), int32(a5))

	case abi.SysMPIGather:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		a5, t := arg(m, 5)
		if t != nil {
			return t
		}
		return p.Gather(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
			m.Regs[3], int32(a4), int32(a5))

	case abi.SysMPIAllgather:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		return p.Allgather(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
			m.Regs[3], int32(a4))

	case abi.SysMPIScatter:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		a5, t := arg(m, 5)
		if t != nil {
			return t
		}
		return p.Scatter(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
			m.Regs[3], int32(a4), int32(a5))

	case abi.SysMPIAlltoall:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		return p.Alltoall(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
			m.Regs[3], int32(a4))

	case abi.SysMPIIsend, abi.SysMPIIrecv:
		a4, t := arg(m, 4)
		if t != nil {
			return t
		}
		a5, t := arg(m, 5)
		if t != nil {
			return t
		}
		reqAddr, t := arg(m, 6)
		if t != nil {
			return t
		}
		var id int32
		var tr *vm.Trap
		if num == abi.SysMPIIsend {
			id, tr = p.Isend(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
				int32(m.Regs[3]), int32(a4), int32(a5))
		} else {
			id, tr = p.Irecv(m, m.Regs[0], int32(m.Regs[1]), int32(m.Regs[2]),
				int32(m.Regs[3]), int32(a4), int32(a5))
		}
		if tr != nil {
			return tr
		}
		return m.Store32(reqAddr, uint32(id))

	case abi.SysMPIWait:
		reqAddr, status := m.Regs[0], m.Regs[1]
		id, t := m.Load32(reqAddr)
		if t != nil {
			return t
		}
		return p.Wait(m, int32(id), status)

	case abi.SysMPIWaitall:
		return p.Waitall(m, int32(m.Regs[0]), m.Regs[1], m.Regs[2])

	case abi.SysMPISendrecv:
		var a [11]uint32
		for i := 0; i < 11; i++ {
			v, t := arg(m, i)
			if t != nil {
				return t
			}
			a[i] = v
		}
		return p.Sendrecv(m, a[0], int32(a[1]), int32(a[2]), int32(a[3]), int32(a[4]),
			a[5], int32(a[6]), int32(a[7]), int32(a[8]), int32(a[9]), a[10])

	case abi.SysMPICommSplit:
		newAddr := m.Regs[3]
		h, tr := p.CommSplit(m, int32(m.Regs[0]), int32(m.Regs[1]), int32(m.Regs[2]))
		if tr != nil {
			return tr
		}
		return m.Store32(newAddr, uint32(h))

	case abi.SysMPICommDup:
		newAddr := m.Regs[1]
		h, tr := p.CommDup(m, int32(m.Regs[0]))
		if tr != nil {
			return tr
		}
		return m.Store32(newAddr, uint32(h))
	}

	// An unknown syscall number — most plausibly a corrupted SYS
	// immediate — faults like a bad instruction.
	return &vm.Trap{Kind: vm.TrapIll, PC: m.PC,
		Msg: fmt.Sprintf("unknown syscall %d", num)}
}

// formatF64 renders v in fixed-point notation with prec decimals, the
// plain-text output format whose precision loss masks low-order-bit
// corruption in Cactus Wavetoy (§6.2).
func formatF64(v float64, prec int) []byte {
	if prec < 0 {
		prec = 17 // shortest round-trip would differ run to run; use max
	}
	return strconv.AppendFloat(nil, v, 'f', prec, 64)
}
