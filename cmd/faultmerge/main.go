// Command faultmerge merges the checkpoint journals of sharded
// faultcampaign runs back into the campaign's tables.
//
// Usage:
//
//	faultmerge [-csv] shard0.jsonl shard1.jsonl shard2.jsonl ...
//	faultmerge [-csv] -coord spool/
//
// The journals must come from `faultcampaign -shard i/K -journal ...`
// runs of the same campaign (same app, seed, injections, regions).  The
// merge validates that the shards are disjoint and together cover the
// whole plan, then re-aggregates the per-experiment outcomes exactly as
// a single-process campaign would: the merged CSV (and table) is byte
// identical to `faultcampaign -csv` at the same seed — the determinism
// gate CI enforces with a plain diff.
//
// -coord merges a faultcoord spool directory instead: one journal file
// per lease segment (stolen leases leave one file per generation, whose
// intact lines the merge resolves as duplicates; torn tails from killed
// workers are tolerated).  The same disjoint/complete validation and
// byte-identity guarantee apply.
//
// Exit status: 0 on a clean merge, 1 when the journals are incomplete,
// inconsistent, or contain experiments that failed to classify.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpifault/internal/apps"
	"mpifault/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of the table layout")
	quiet := flag.Bool("quiet", false, "suppress the merge summary on stderr")
	coordDir := flag.String("coord", "", "merge a faultcoord spool directory (every *.jsonl lease segment) instead of listed journals")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("faultmerge: ")

	paths := flag.Args()
	var m *report.Merged
	var err error
	switch {
	case *coordDir != "":
		if len(paths) > 0 {
			log.Print("-coord and journal arguments are mutually exclusive")
			return 1
		}
		m, err = report.MergeDir(*coordDir)
	case len(paths) == 0:
		log.Print("usage: faultmerge [-csv] journal.jsonl ... | faultmerge [-csv] -coord spool/")
		return 1
	default:
		m, err = report.MergeJournals(paths)
	}
	if err != nil {
		log.Print(err)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "faultmerge: %s seed %d: %d experiments from %d journals\n",
			m.App, m.Seed, len(m.Result.Experiments), m.Journals)
	}

	if *csv {
		// CSV mode stays byte-identical to `faultcampaign -csv` — the
		// determinism gate diffs it — so the forensics and trace-diff
		// localization summaries are table-mode only.
		report.WriteCampaignCSV(os.Stdout, m.App, m.Result)
	} else {
		label := m.App
		if a, err := apps.Get(m.App); err == nil {
			label = fmt.Sprintf("%s, stands in for %s", m.App, a.Paper)
		}
		report.WriteCampaign(os.Stdout, label, m.Result)
		if m.Adaptive {
			// The merge has already replayed the planner over the recorded
			// outcomes, so the contract it prints is the one the rounds
			// actually stopped on.
			report.WriteRates(os.Stdout, m.App, m.Result, m.Confidence, m.Target, m.Equivalence == "prune")
			fmt.Println()
		}
		report.WriteLatencyHistogram(os.Stdout, m.Result.Experiments)
		report.WriteLocalization(os.Stdout, m.Result.Experiments)
	}

	if m.Result.Unclassified > 0 {
		log.Printf("%d experiments failed to classify (no fault was applied); results are incomplete",
			m.Result.Unclassified)
		return 1
	}
	return 0
}
