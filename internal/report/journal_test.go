package report

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mpifault/internal/apps"
	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/image"
)

func buildWavetoy(t testing.TB) (*image.Image, int) {
	t.Helper()
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		t.Fatal(err)
	}
	return im, a.Default.Ranks
}

func syntheticHeader(injections int) JournalHeader {
	return CampaignHeader("wavetoy", core.Config{
		Injections: injections,
		Regions:    []core.Region{core.RegionRegularReg},
		Seed:       9,
		Ranks:      2,
	})
}

func syntheticExperiment(index int, outcome classify.Outcome) core.Experiment {
	return core.Experiment{
		Region:  core.RegionRegularReg,
		Index:   index,
		Rank:    index % 2,
		Trigger: uint64(100 + index),
		Desc:    "eax bit 3",
		Outcome: outcome,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	h := syntheticHeader(3)
	j, err := CreateJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Experiment{
		syntheticExperiment(0, classify.Crash),
		syntheticExperiment(1, classify.Correct),
		syntheticExperiment(2, classify.Hang),
	}
	for _, e := range want {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, completed, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameCampaign(h) || got.Shard != h.Shard || got.NumShards != h.NumShards {
		t.Fatalf("header round trip: got %+v want %+v", got, h)
	}
	if len(completed) != len(want) {
		t.Fatalf("read %d entries, wrote %d", len(completed), len(want))
	}
	for _, e := range want {
		if completed[e.ID()] != e {
			t.Errorf("entry %s: got %+v want %+v", e.ID(), completed[e.ID()], e)
		}
	}
}

func TestResumeTruncatedJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	h := syntheticHeader(4)
	j, err := CreateJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(syntheticExperiment(i, classify.Crash)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// A SIGKILL mid-append leaves a partial trailing line; the resume
	// must drop exactly that line and stay appendable.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, completed, err := ResumeJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 2 {
		t.Fatalf("resume found %d complete entries, want 2 (truncated third dropped)", len(completed))
	}
	for i := 2; i < 4; i++ {
		if err := j2.Append(syntheticExperiment(i, classify.Incorrect)); err != nil {
			t.Fatal(err)
		}
	}
	j2.Close()

	_, final, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 4 {
		t.Fatalf("after repair+append journal has %d entries, want 4", len(final))
	}
	if final["reg/2"].Outcome != classify.Incorrect {
		t.Errorf("re-run entry reg/2 outcome = %v, want the new Incorrect", final["reg/2"].Outcome)
	}
}

func TestResumeRejectsDifferentCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := CreateJournal(path, syntheticHeader(4))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other := syntheticHeader(4)
	other.Seed++
	if _, _, err := ResumeJournal(path, other); err == nil {
		t.Fatal("resume accepted a journal from a different campaign seed")
	}
}

func TestMergeValidation(t *testing.T) {
	dir := t.TempDir()
	h := syntheticHeader(2)
	write := func(name string, hdr JournalHeader, exps ...core.Experiment) string {
		path := filepath.Join(dir, name)
		j, err := CreateJournal(path, hdr)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range exps {
			if err := j.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		return path
	}
	a := write("a.jsonl", h, syntheticExperiment(0, classify.Crash))
	b := write("b.jsonl", h, syntheticExperiment(1, classify.Correct))

	if m, err := MergeJournals([]string{a, b}); err != nil {
		t.Fatalf("complete merge failed: %v", err)
	} else if len(m.Result.Experiments) != 2 {
		t.Fatalf("merged %d experiments, want 2", len(m.Result.Experiments))
	}

	if _, err := MergeJournals([]string{a}); err == nil {
		t.Error("incomplete merge (missing reg/1) accepted")
	}

	conflict := write("c.jsonl", h,
		syntheticExperiment(0, classify.Hang), syntheticExperiment(1, classify.Correct))
	if _, err := MergeJournals([]string{a, conflict}); err == nil {
		t.Error("conflicting duplicate of reg/0 accepted")
	}

	otherH := h
	otherH.Seed++
	otherSeed := write("d.jsonl", otherH, syntheticExperiment(1, classify.Correct))
	if _, err := MergeJournals([]string{a, otherSeed}); err == nil {
		t.Error("merge across different campaign seeds accepted")
	}
}

// TestMergedShardsByteIdentical is the determinism gate in Go-test form:
// a campaign run as 3 journaled shards and merged must render the exact
// bytes of the single-process campaign at the same seed, for both the
// CSV and the table layout.
func TestMergedShardsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	im, ranks := buildWavetoy(t)
	base := core.Config{
		Image: im, Ranks: ranks, Injections: 6, Seed: 42,
		Regions: []core.Region{core.RegionRegularReg, core.RegionText},
	}

	full, err := core.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV, wantTable bytes.Buffer
	WriteCampaignCSV(&wantCSV, "wavetoy", full)
	WriteCampaign(&wantTable, "wavetoy", full)

	dir := t.TempDir()
	const k = 3
	paths := make([]string, k)
	for shard := 0; shard < k; shard++ {
		cfg := base
		cfg.Shard, cfg.NumShards = shard, k
		paths[shard] = filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", shard))
		j, err := CreateJournal(paths[shard], CampaignHeader("wavetoy", cfg))
		if err != nil {
			t.Fatal(err)
		}
		cfg.OnExperiment = func(e core.Experiment) {
			if err := j.Append(e); err != nil {
				t.Errorf("append: %v", err)
			}
		}
		if _, err := core.Run(cfg); err != nil {
			t.Fatal(err)
		}
		j.Close()
	}

	m, err := MergeJournals(paths)
	if err != nil {
		t.Fatal(err)
	}
	var gotCSV, gotTable bytes.Buffer
	WriteCampaignCSV(&gotCSV, m.App, m.Result)
	WriteCampaign(&gotTable, m.App, m.Result)

	if !bytes.Equal(wantCSV.Bytes(), gotCSV.Bytes()) {
		t.Errorf("merged CSV differs from single-process CSV:\n-- single --\n%s\n-- merged --\n%s",
			wantCSV.Bytes(), gotCSV.Bytes())
	}
	if !bytes.Equal(wantTable.Bytes(), gotTable.Bytes()) {
		t.Errorf("merged table differs from single-process table:\n-- single --\n%s\n-- merged --\n%s",
			wantTable.Bytes(), gotTable.Bytes())
	}
}

// TestResumeAfterCancelEqualsUninterrupted kills a journaled campaign
// mid-run (stop after a few experiments), resumes it from the journal,
// and requires the final CSV to equal an uninterrupted run's.
func TestResumeAfterCancelEqualsUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	im, ranks := buildWavetoy(t)
	base := core.Config{
		Image: im, Ranks: ranks, Injections: 8, Seed: 11,
		Regions:     []core.Region{core.RegionRegularReg},
		Parallelism: 1,
	}

	full, err := core.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	WriteCampaignCSV(&want, "wavetoy", full)

	path := filepath.Join(t.TempDir(), "j.jsonl")
	hdr := CampaignHeader("wavetoy", base)

	// First leg: stop dispatching after 3 finished experiments.
	j, err := CreateJournal(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var once sync.Once
	count := 0
	cfg := base
	cfg.Stop = stop
	cfg.OnExperiment = func(e core.Experiment) {
		if err := j.Append(e); err != nil {
			t.Errorf("append: %v", err)
		}
		count++
		if count >= 3 {
			once.Do(func() { close(stop) })
		}
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if !res.Interrupted {
		t.Fatal("campaign was not interrupted (stop fired too late to matter)")
	}
	_, partial, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= base.Injections {
		t.Fatalf("interrupted journal has %d of %d experiments; expected a strict subset",
			len(partial), base.Injections)
	}

	// Second leg: resume from the journal and finish.
	j2, completed, err := ResumeJournal(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != len(partial) {
		t.Fatalf("resume found %d completed, journal had %d", len(completed), len(partial))
	}
	cfg2 := base
	cfg2.Completed = completed
	cfg2.OnExperiment = func(e core.Experiment) {
		if err := j2.Append(e); err != nil {
			t.Errorf("append: %v", err)
		}
	}
	res2, err := core.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if res2.Interrupted {
		t.Fatal("resumed run interrupted")
	}

	var got bytes.Buffer
	WriteCampaignCSV(&got, "wavetoy", res2)
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("resumed CSV differs from uninterrupted run:\n-- uninterrupted --\n%s\n-- resumed --\n%s",
			want.Bytes(), got.Bytes())
	}

	// The journal now covers the whole plan: merging the single journal
	// must reproduce the same CSV a third way.
	m, err := MergeJournals([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	WriteCampaignCSV(&merged, m.App, m.Result)
	if !bytes.Equal(want.Bytes(), merged.Bytes()) {
		t.Error("merged resumed journal differs from uninterrupted CSV")
	}
}
