// Package apps builds the three guest workloads of the paper's test
// suite as programs for the simulated machine:
//
//   - wavetoy — the Cactus Wavetoy analogue: a hyperbolic-PDE stencil with
//     wide floating-point halo exchanges, near-zero field data, plain-text
//     output, and no internal error checking;
//   - minimd — the NAMD analogue: particle dynamics with allgathered
//     position blocks, application-level message checksums, NaN checks on
//     reduced energies, and bound checks on particle state;
//   - minicam — the CAM analogue: a climate-style grid code dominated by
//     control traffic (barriers and scalar reductions each step), with a
//     moisture minimum-threshold abort and NaN checks but no message
//     checksums.
//
// The mapping of each application's characteristics to the paper's
// profiles (Table 1) and behaviours (§6.2) is described in DESIGN.md.
package apps

import (
	"fmt"

	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Config parameterizes a workload build.
type Config struct {
	// Ranks is the MPI world size the binary will be run with (affects
	// only default buffer sizing hints; the binary reads the true size
	// from MPI_Comm_size).
	Ranks int
	// Steps is the number of simulation time steps.
	Steps int32
	// Scale is the per-rank problem size (grid points / particles).
	Scale int32
	// OutPrecision is the fixed-point decimal precision of text output.
	OutPrecision int32
	// BinaryOutput switches the final result file to raw binary, the §7
	// alternative that exposes low-order-bit corruption.
	BinaryOutput bool
	// Checks enables internal consistency checks (NaN, bounds,
	// thresholds).  Wavetoy has none regardless.
	Checks bool
	// Checksums enables minimd's application-level message checksums.
	Checksums bool
	// HeapSize and StackSize override the link defaults when nonzero.
	HeapSize  uint32
	StackSize uint32
	// SpillRegisters emits the compute kernels the way an unoptimizing
	// compiler would: loop state reloaded from memory at every iteration,
	// so registers hold live values only briefly.  §6.1.1 (citing
	// Springer's PowerPC study) argues this makes code *more* robust to
	// register upsets at some performance cost; the ablation benchmark
	// measures exactly that trade-off.
	SpillRegisters bool
}

// App couples a workload name with its builder and defaults.
type App struct {
	Name    string
	Paper   string // the application it stands in for
	Default Config
	Build   func(Config) (*image.Image, error)
}

// Registry returns the three workloads in paper order.
func Registry() []App {
	return []App{
		{
			Name:  "wavetoy",
			Paper: "Cactus Wavetoy",
			Default: Config{
				Ranks: 8, Steps: 12, Scale: 256, OutPrecision: 6,
			},
			Build: BuildWavetoy,
		},
		{
			Name:  "minimd",
			Paper: "NAMD",
			Default: Config{
				Ranks: 8, Steps: 10, Scale: 96, OutPrecision: 4,
				Checks: true, Checksums: true,
			},
			Build: BuildMiniMD,
		},
		{
			Name:  "minicam",
			Paper: "CAM",
			Default: Config{
				Ranks: 8, Steps: 16, Scale: 192, OutPrecision: 12,
				Checks: true,
			},
			Build: BuildMiniCAM,
		},
	}
}

// defString defines a string data symbol and returns its length, so call
// sites never hand-count bytes.
func defString(m interface{ DataString(name, s string) }, name, s string) int32 {
	m.DataString(name, s)
	return int32(len(s))
}

// addColdCode emits nfuncs never-called utility functions into the
// module.  Real scientific binaries carry large amounts of code that a
// given run never executes (option handling, I/O formats, error paths,
// alternative solvers); the paper's Tables 5-7 show text working sets of
// only 8-30 %, and §6.1.2 attributes the low text-fault error rates
// directly to that cold fraction.  The filler functions are legitimate,
// decodable code — a fault that redirects control into them executes
// plausibly rather than hitting a hole in the address space.
func addColdCode(m *asm.Module, prefix string, nfuncs, bodyLoops int32) {
	for i := int32(0); i < nfuncs; i++ {
		f := m.Func(fmt.Sprintf("%s_cold_%d", prefix, i))
		f.Prologue(16)
		f.LdArg(isa.R0, 0)
		f.Movi(isa.R1, 0)
		loop, done := f.NewLabel(), f.NewLabel()
		f.Label(loop)
		f.Cmpi(isa.R1, bodyLoops)
		f.Bge(done)
		f.Fild(isa.R1)
		f.FldConst(1.5 + float64(i)*0.25)
		f.Fmulp()
		f.FldConst(0.75)
		f.Faddp()
		f.FstpLocal(8)
		f.FldLocal(8)
		f.Fsqrt()
		f.FstpLocal(16)
		f.Add(isa.R0, isa.R0, isa.R1)
		f.Xori(isa.R0, isa.R0, 0x5A5A)
		f.Addi(isa.R1, isa.R1, 1)
		f.Jmp(loop)
		f.Label(done)
		f.Epilogue()
	}
}

// addColdData defines a never-read BSS region (the analogue of statically
// sized buffers — restart files, diagnostics, alternate grids — that a
// production run never touches).
func addColdData(m *asm.Module, prefix string, bssBytes uint32) {
	m.BSS(prefix+"_cold_bss", bssBytes)
}

// emitColdHeapAlloc emits code that allocates a heap buffer and touches
// only every strideth 8-byte word once during initialization — modelling
// I/O and staging buffers that are allocated up front, written sparsely
// at startup, and never revisited (cf. §6.1.2: "only a fraction of the
// heap was found to be used").  The pointer is stored at ptrSym.
func emitColdHeapAlloc(f *asm.Func, ptrSym string, bytes, stride int32) {
	f.CallArgs("malloc", asm.Imm(bytes))
	f.StSym(ptrSym, 0, isa.R0)
	f.LdSym(isa.R1, ptrSym, 0)
	f.Movi(isa.R2, 0)
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.Cmpi(isa.R2, bytes)
	f.Bge(done)
	f.Fldz()
	f.Fstpx(isa.R1, isa.R2, 0)
	f.Addi(isa.R2, isa.R2, stride)
	f.Jmp(loop)
	f.Label(done)
}

// Get returns the registered app with the given name.
func Get(name string) (App, error) {
	for _, a := range Registry() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q", name)
}
