package apps

import (
	"bytes"
	"strings"
	"testing"

	"mpifault/internal/cluster"
	"mpifault/internal/vm"
)

// runConfig builds and runs an app under a modified configuration.
func runConfig(t *testing.T, name string, mutate func(*Config)) *cluster.Result {
	t.Helper()
	a, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Default
	if mutate != nil {
		mutate(&cfg)
	}
	im, err := a.Build(cfg)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	res := cluster.Run(cluster.Job{Image: im, Size: cfg.Ranks, Budget: 500_000_000})
	if res.HangDetected {
		t.Fatalf("%s: hang: %s", name, res.HangCause)
	}
	for r, rr := range res.Ranks {
		if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit || rr.Trap.Code != 0 {
			t.Fatalf("%s: rank %d: %v (stderr %s)", name, r, rr.Trap, res.Stderr[r])
		}
	}
	return res
}

func TestWavetoyBinaryOutputGolden(t *testing.T) {
	res := runConfig(t, "wavetoy", func(c *Config) { c.BinaryOutput = true })
	out := res.Files["wavetoy.out"]
	if want := 8 * 256 * 8; len(out) != want {
		t.Fatalf("binary output %d bytes, want %d", len(out), want)
	}
	// Binary and text runs must encode the same field: spot-check that
	// the binary dump is not all zeros (the pulse exists).
	if bytes.Count(out, []byte{0}) == len(out) {
		t.Fatal("binary output is all zeros")
	}
}

func TestMiniMDChecksumsOffGolden(t *testing.T) {
	res := runConfig(t, "minimd", func(c *Config) { c.Checksums = false })
	if !strings.Contains(string(res.Stdout[0]), "STEP 0 ENERGY ") {
		t.Fatalf("stdout = %q", res.Stdout[0])
	}
}

func TestMiniMDChecksumOverheadSmall(t *testing.T) {
	on := runConfig(t, "minimd", nil)
	off := runConfig(t, "minimd", func(c *Config) { c.Checksums = false })
	var maxOn, maxOff uint64
	for r := range on.Ranks {
		if on.Ranks[r].Instrs > maxOn {
			maxOn = on.Ranks[r].Instrs
		}
		if off.Ranks[r].Instrs > maxOff {
			maxOff = off.Ranks[r].Instrs
		}
	}
	if maxOn <= maxOff {
		t.Fatal("checksums must cost something")
	}
	overhead := 100 * float64(maxOn-maxOff) / float64(maxOff)
	// The paper measured ~3% for NAMD; ours must stay the same order.
	if overhead > 15 {
		t.Fatalf("checksum overhead %.1f%%, want small", overhead)
	}
}

func TestChecksOffDisablesDetection(t *testing.T) {
	// With Checks disabled, minicam must still run clean (the checks are
	// not load-bearing in a fault-free execution).
	res := runConfig(t, "minicam", func(c *Config) { c.Checks = false })
	if !strings.Contains(string(res.Stdout[0]), "minicam: simulation complete") {
		t.Fatalf("stdout = %q", res.Stdout[0])
	}
}

func TestStepsScaleOutputAndWork(t *testing.T) {
	short := runConfig(t, "wavetoy", func(c *Config) { c.Steps = 4 })
	long := runConfig(t, "wavetoy", func(c *Config) { c.Steps = 24 })
	var sInstr, lInstr uint64
	for r := range short.Ranks {
		sInstr += short.Ranks[r].Instrs
		lInstr += long.Ranks[r].Instrs
	}
	if lInstr <= sInstr {
		t.Fatal("more steps must retire more instructions")
	}
	// The output file layout is step-independent (one line per point).
	if bytes.Count(short.Files["wavetoy.out"], []byte{'\n'}) !=
		bytes.Count(long.Files["wavetoy.out"], []byte{'\n'}) {
		t.Fatal("output size must not depend on step count")
	}
}

func TestSmallerWorldStillRuns(t *testing.T) {
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		a, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := a.Default
		cfg.Ranks = 2
		im, err := a.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := cluster.Run(cluster.Job{Image: im, Size: 2, Budget: 500_000_000})
		if res.HangDetected {
			t.Fatalf("%s at 2 ranks: hang: %s", name, res.HangCause)
		}
		for r, rr := range res.Ranks {
			if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit {
				t.Fatalf("%s at 2 ranks: rank %d: %v", name, r, rr.Trap)
			}
		}
	}
}

func TestUnknownAppRejected(t *testing.T) {
	if _, err := Get("nosuch"); err == nil {
		t.Fatal("unknown app accepted")
	}
}
