package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/image"
	"mpifault/internal/report"
)

// WorkerOptions parameterizes RunWorker.
type WorkerOptions struct {
	// URL is the coordinator base URL (e.g. http://127.0.0.1:8700).
	URL string
	// Name identifies the worker in leases and the cluster view.
	Name string
	// Parallelism is handed to core.Config; 0 picks the default.
	Parallelism int
	// Poll is the backoff between acquire attempts when no lease is
	// available; 0 means 300ms.  A worker that joins after the queue
	// drains keeps polling: leases return via expiry, and the campaign
	// end is an explicit protocol answer, not an empty queue.
	Poll time.Duration
	// Client is the HTTP client; nil uses a default with timeouts.
	Client *http.Client
	// Stop, when closed, makes the worker abandon its current lease
	// (in-flight experiments stop dispatching) and return.
	Stop <-chan struct{}
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// worker is the pull-based campaign engine: it acquires leases from the
// coordinator, runs their plan entries through core.Run exactly as a
// single-process campaign would, and streams the resulting journal
// bytes back.  All campaign parameters come from the lease grant, so a
// bare `faultcampaign -worker <url>` is a complete engine.
type worker struct {
	opt    WorkerOptions
	client *http.Client
	apps   map[string]*workerApp
}

// workerApp caches the expensive per-application state across leases:
// the built image, the golden reference run, and (when the campaign
// asks for it) the static equivalence partition.
type workerApp struct {
	image       *image.Image
	golden      *core.Golden
	equivalence core.EquivalenceMap
	eqPolicy    core.EquivalencePolicy
}

// maxConsecutiveAcquireFailures bounds how long a worker retries an
// unreachable coordinator before giving up: a coordinator restart rides
// out the window, a gone-for-good one (completed with -wait, crashed)
// doesn't strand the worker in a forever-poll.
const maxConsecutiveAcquireFailures = 50

// RunWorker runs the worker loop until the campaign completes (or
// fails), or opt.Stop closes.  Transient coordinator unavailability is
// retried with a bound; only campaign termination ends the loop cleanly.
func RunWorker(opt WorkerOptions) error {
	if opt.Name == "" {
		return fmt.Errorf("coord: worker needs a name")
	}
	if opt.Poll <= 0 {
		opt.Poll = 300 * time.Millisecond
	}
	w := &worker{opt: opt, client: opt.Client, apps: map[string]*workerApp{}}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	failures := 0
	for {
		select {
		case <-opt.Stop:
			return nil
		default:
		}
		grant, ok, done, err := w.acquire()
		switch {
		case done:
			w.logf("campaign finished; exiting")
			return nil
		case err != nil:
			failures++
			if failures >= maxConsecutiveAcquireFailures {
				return fmt.Errorf("coordinator unreachable after %d attempts: %v", failures, err)
			}
			w.logf("acquire: %v (retrying)", err)
			if !w.sleep(opt.Poll) {
				return nil
			}
		case !ok:
			failures = 0
			if !w.sleep(opt.Poll) {
				return nil
			}
		default:
			failures = 0
			if err := w.runLease(grant); err != nil {
				w.logf("lease %d: %v", grant.Lease, err)
				w.fail(grant, err)
				if !w.sleep(opt.Poll) {
					return nil
				}
			}
		}
	}
}

func (w *worker) logf(format string, args ...any) {
	if w.opt.Logf != nil {
		w.opt.Logf(format, args...)
	}
}

// sleep waits d or until Stop; false means Stop fired.
func (w *worker) sleep(d time.Duration) bool {
	select {
	case <-w.opt.Stop:
		return false
	case <-time.After(d):
		return true
	}
}

func (w *worker) postJSON(path string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, w.opt.URL+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.client.Do(req)
}

type leaseRef struct {
	Worker string `json:"worker"`
	Lease  int    `json:"lease"`
	Gen    int    `json:"gen"`
	Error  string `json:"error,omitempty"`
}

func (w *worker) acquire() (grant leaseGrant, ok, done bool, err error) {
	resp, err := w.postJSON("/api/lease/acquire", leaseRef{Worker: w.opt.Name})
	if err != nil {
		return grant, false, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
			return grant, false, false, err
		}
		return grant, true, false, nil
	case http.StatusNoContent:
		return grant, false, false, nil
	case http.StatusGone:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		w.logf("coordinator: %s", bytes.TrimSpace(msg))
		return grant, false, true, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return grant, false, false, fmt.Errorf("acquire: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

func (w *worker) fail(grant leaseGrant, cause error) {
	resp, err := w.postJSON("/api/lease/fail", leaseRef{
		Worker: w.opt.Name, Lease: grant.Lease, Gen: grant.Gen, Error: cause.Error(),
	})
	if err == nil {
		resp.Body.Close()
	}
}

// app returns the cached per-application state, building it on first use.
func (w *worker) app(spec Spec) (*workerApp, error) {
	wa := w.apps[spec.App+"/"+spec.Equivalence]
	if wa != nil {
		return wa, nil
	}
	a, err := apps.Get(spec.App)
	if err != nil {
		return nil, err
	}
	im, err := a.Build(a.Default)
	if err != nil {
		return nil, fmt.Errorf("build %s: %v", spec.App, err)
	}
	wa = &workerApp{image: im}
	pol, err := core.ParseEquivalencePolicy(spec.Equivalence)
	if err != nil {
		return nil, err
	}
	if pol != core.EquivOff {
		prog, err := analysis.Analyze(im)
		if err != nil {
			return nil, fmt.Errorf("analyze %s: %v", spec.App, err)
		}
		live := analysis.ComputeLiveness(prog)
		abiFindings, abiStats := analysis.ABICheck(prog)
		if total := len(prog.Findings) + len(live.Findings) + len(abiFindings); total > 0 {
			return nil, fmt.Errorf("%s: static analysis reported %d findings; run faultlint", spec.App, total)
		}
		flow := analysis.ComputeDataflow(prog, live)
		if len(flow.Findings) > 0 {
			return nil, fmt.Errorf("%s: dataflow pass reported %d findings; run faultlint", spec.App, len(flow.Findings))
		}
		wa.equivalence = analysis.ComputeEquivalence(prog, live, flow, abiStats)
		wa.eqPolicy = pol
	}
	w.apps[spec.App+"/"+spec.Equivalence] = wa
	return wa, nil
}

// segmentWriter accumulates the lease's journal bytes (header line plus
// one line per finished experiment, in plan order — the identical bytes
// a single-process campaign journal would hold) and tracks how much the
// coordinator has acknowledged.
type segmentWriter struct {
	mu       sync.Mutex
	buf      []byte
	uploaded int
	err      error
}

func (s *segmentWriter) appendLine(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.buf = append(s.buf, line...)
	s.buf = append(s.buf, '\n')
	s.mu.Unlock()
}

// pending returns the unacknowledged suffix and its offset.
func (s *segmentWriter) pending() (off int, chunk []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploaded, append([]byte(nil), s.buf[s.uploaded:]...)
}

func (s *segmentWriter) ack(n int) {
	s.mu.Lock()
	if n > s.uploaded && n <= len(s.buf) {
		s.uploaded = n
	}
	s.mu.Unlock()
}

// resync resets the acknowledged mark to the coordinator's offset.
func (s *segmentWriter) resync(off int) {
	s.mu.Lock()
	if off >= 0 && off <= len(s.buf) {
		s.uploaded = off
	}
	s.mu.Unlock()
}

func (s *segmentWriter) drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploaded == len(s.buf)
}

// flush uploads the pending suffix as one chunk.  A 409 re-synchronizes
// the offset (the chunk is resent next flush); network errors are left
// for the next attempt.
func (w *worker) flush(grant leaseGrant, s *segmentWriter) error {
	off, chunk := s.pending()
	if len(chunk) == 0 {
		return nil
	}
	url := fmt.Sprintf("%s/api/segment?lease=%d&gen=%d&worker=%s&offset=%d",
		w.opt.URL, grant.Lease, grant.Gen, w.opt.Name, off)
	resp, err := w.client.Post(url, "application/jsonl", bytes.NewReader(chunk))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var ack struct {
			Offset int `json:"offset"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return err
		}
		s.ack(ack.Offset)
		return nil
	case http.StatusConflict:
		var cur struct {
			Offset int `json:"offset"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cur); err == nil {
			s.resync(cur.Offset)
			return nil
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("segment upload rejected: %s", bytes.TrimSpace(msg))
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("segment upload: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

// runLease executes one lease end to end: run the entries, stream the
// journal segment, heartbeat the lease, then complete it.  Losing the
// lease (heartbeat rejected) or opt.Stop abandons it silently — the
// coordinator re-issues it, and duplicate results resolve idempotently.
func (w *worker) runLease(grant leaseGrant) error {
	spec := grant.Spec
	wa, err := w.app(spec)
	if err != nil {
		return err
	}
	regions := make([]core.Region, len(spec.Regions))
	for i, s := range spec.Regions {
		if regions[i], err = core.ParseRegion(s); err != nil {
			return err
		}
	}
	var entries []core.PlanEntry
	if len(grant.Entries) > 0 {
		// An adaptive round lease names its entries explicitly; the
		// planner owns the plan, so the worker just validates each one
		// against the campaign's region list and cap.
		entries = make([]core.PlanEntry, len(grant.Entries))
		for i, id := range grant.Entries {
			pe, err := core.ParseEntryID(id)
			if err != nil {
				return err
			}
			if pe.Index < 0 || pe.Index >= spec.Injections {
				return fmt.Errorf("lease entry %s outside the plan cap %d", id, spec.Injections)
			}
			found := false
			for _, r := range regions {
				if r == pe.Region {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("lease entry %s names a region outside the campaign", id)
			}
			entries[i] = pe
		}
	} else {
		plan := core.Plan{Regions: regions, Injections: spec.Injections}
		entries = plan.Range(grant.Start, grant.End)
		if len(entries) != grant.End-grant.Start {
			return fmt.Errorf("lease range [%d,%d) outside the plan", grant.Start, grant.End)
		}
	}

	golden := wa.golden
	if spec.TraceDiff && golden != nil && golden.Trace == nil {
		// The cached golden predates a trace-diff campaign (possible
		// only across campaigns of one app); re-run it with the digest
		// recorder attached rather than failing the lease.
		golden = nil
	}
	cfg := core.Config{
		Image:             wa.image,
		Ranks:             grant.Ranks,
		Injections:        spec.Injections,
		Regions:           regions,
		Seed:              spec.Seed,
		Parallelism:       w.opt.Parallelism,
		Entries:           entries,
		Golden:            golden,
		Equivalence:       wa.equivalence,
		EquivalencePolicy: wa.eqPolicy,
		TraceDiff:         spec.TraceDiff,

		// Adaptive campaigns: core.Run ignores these (the coordinator
		// owns the planner), but the journal header derives from them, so
		// the segment this worker streams back must pin the identical
		// estimation contract the coordinator replays at merge time.
		Adaptive:        spec.Adaptive,
		Confidence:      spec.Confidence,
		TargetHalfWidth: spec.TargetHalfWidth,
		RoundSize:       spec.RoundSize,
		AVFPriors:       priorsMap(regions, spec.Priors),
	}
	seg := &segmentWriter{}
	seg.appendLine(report.CampaignHeader(spec.App, cfg))
	cfg.OnExperiment = func(e core.Experiment) {
		seg.appendLine(report.EntryFromExperiment(e))
	}

	// Lease lost (stale heartbeat) or external stop both stop the run.
	lost := make(chan struct{})
	var lostOnce sync.Once
	stopRun := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stopRun) }) }
	cfg.Stop = stopRun
	bg := make(chan struct{})
	var wg sync.WaitGroup
	defer func() {
		close(bg)
		wg.Wait()
	}()
	go func() {
		select {
		case <-w.opt.Stop:
			closeStop()
		case <-lost:
			closeStop()
		case <-bg:
		}
	}()

	ttl := time.Duration(grant.TTLMs) * time.Millisecond
	beat := ttl / 3
	if beat < 20*time.Millisecond {
		beat = 20 * time.Millisecond
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(beat)
		defer tick.Stop()
		for {
			select {
			case <-bg:
				return
			case <-tick.C:
				resp, err := w.postJSON("/api/lease/renew", leaseRef{Worker: w.opt.Name, Lease: grant.Lease, Gen: grant.Gen})
				if err != nil {
					continue // transient; the lease may still be renewed next beat
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusConflict {
					lostOnce.Do(func() { close(lost) })
					return
				}
			}
		}
	}()

	flushEvery := beat
	if flushEvery > 250*time.Millisecond {
		flushEvery = 250 * time.Millisecond
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(flushEvery)
		defer tick.Stop()
		for {
			select {
			case <-bg:
				return
			case <-tick.C:
				w.flush(grant, seg) // errors retried next tick
			}
		}
	}()

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	if golden == nil && res.Golden != nil {
		// This lease paid for the reference run; cache it for the app's
		// later leases.  The digest line makes the golden-trace identity
		// externally checkable: every worker of a trace-diff campaign
		// must log the same hash, and it must match a single-process
		// `faultcampaign -trace-out` of the same spec.
		wa.golden = res.Golden
		if tr := res.Golden.Trace; tr != nil {
			w.logf("golden trace digest %016x (%d messages across %d ranks)",
				tr.Hash(), tr.Messages(), len(tr.Ranks))
		}
	}

	select {
	case <-lost:
		w.logf("lease %d gen %d expired under us; abandoning", grant.Lease, grant.Gen)
		return nil
	case <-w.opt.Stop:
		return nil
	default:
	}
	if res.Interrupted {
		return nil
	}
	if seg.err != nil {
		return seg.err
	}

	// Drain the segment, then complete the lease.
	for attempt := 0; !seg.drained(); attempt++ {
		if attempt > 50 {
			return fmt.Errorf("lease %d: segment upload did not drain", grant.Lease)
		}
		if err := w.flush(grant, seg); err != nil {
			w.logf("lease %d: flush: %v (retrying)", grant.Lease, err)
			if !w.sleep(100 * time.Millisecond) {
				return nil
			}
		}
		select {
		case <-lost:
			return nil
		default:
		}
	}
	resp, err := w.postJSON("/api/lease/complete", leaseRef{Worker: w.opt.Name, Lease: grant.Lease, Gen: grant.Gen})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		w.logf("lease %d: completion rejected (%s); coordinator will re-issue it", grant.Lease, bytes.TrimSpace(msg))
		return nil
	}
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("complete: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	w.logf("lease %d done (%d experiments)", grant.Lease, len(entries))
	return nil
}
