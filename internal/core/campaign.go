package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpifault/internal/classify"
	"mpifault/internal/cluster"
	"mpifault/internal/image"
	"mpifault/internal/mpi"
	"mpifault/internal/msgtrace"
	"mpifault/internal/rng"
	"mpifault/internal/telemetry"
	"mpifault/internal/vm"
)

// Golden captures the fault-free reference execution: the canonical
// output used for silent-corruption detection, and the per-rank
// instruction counts and received message volumes that parameterize the
// injection-space sampling (§4.3's b, m and t axes).
type Golden struct {
	Output    []byte
	Instrs    []uint64
	RecvBytes []uint64
	Result    *cluster.Result
	// Trace is the reference per-rank message-digest stream, recorded
	// only when the campaign runs with Config.TraceDiff; experiments
	// diff their own streams against it to localize faults.
	Trace *msgtrace.Trace
}

// MaxInstrs returns the largest per-rank instruction count.
func (g *Golden) MaxInstrs() uint64 {
	var max uint64
	for _, n := range g.Instrs {
		if n > max {
			max = n
		}
	}
	return max
}

// RunGolden executes the fault-free reference run.
func RunGolden(im *image.Image, ranks int, mpiCfg mpi.Config, wall time.Duration) (*Golden, error) {
	return runGolden(im, ranks, mpiCfg, wall, nil, false, false)
}

// runGolden is RunGolden with an optional causality recorder attached —
// the checkpointing campaign records message events during the reference
// run to compute consistent cuts from — the campaign's interpreter
// escape hatch, and the trace-diff digest recorder.
func runGolden(im *image.Image, ranks int, mpiCfg mpi.Config, wall time.Duration, rec *mpi.CausalityRecorder, noSB, traced bool) (*Golden, error) {
	job := cluster.Job{
		Image: im, Size: ranks, MPIConfig: mpiCfg, WallLimit: wall,
		Causality: rec, DisableSuperblocks: noSB,
	}
	var mrec *msgtrace.Recorder
	if traced {
		mrec = msgtrace.NewRecorder(ranks)
		job.Setup = func(rank int, m *vm.Machine, p *mpi.Proc) { mrec.Attach(p) }
	}
	res := cluster.Run(job)
	if res.HangDetected {
		return nil, fmt.Errorf("core: golden run hung: %s", res.HangCause)
	}
	g := &Golden{Output: res.CanonicalOutput(), Result: res}
	if mrec != nil {
		g.Trace = mrec.Trace()
	}
	for r, rr := range res.Ranks {
		if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit || rr.Trap.Code != 0 {
			return nil, fmt.Errorf("core: golden run rank %d failed: %v", r, rr.Trap)
		}
		g.Instrs = append(g.Instrs, rr.Instrs)
		g.RecvBytes = append(g.RecvBytes, rr.Stats.TotalBytes())
	}
	return g, nil
}

// Experiment records one injection and its manifestation.
type Experiment struct {
	Region  Region
	Index   int
	Rank    int
	Trigger uint64 // instruction count, or received-byte offset for messages
	Desc    string // what was flipped (filled in during the run)
	Outcome classify.Outcome
	// Detail is a short description of the job's terminal condition
	// (hang cause or failing trap), for logs and journals; empty for a
	// clean run.
	Detail string
	// Candidates is the register-bit candidate-set size the injection
	// sampled from: 320 undirected, fewer under a liveness or
	// equivalence policy.
	Candidates int
	// ClassID is the flipped bit's equivalence-class identity when the
	// campaign ran with an EquivalenceMap; 0 for benign bits and
	// unannotated experiments (see BenignBits to tell the two apart).
	ClassID uint64
	// BenignBits is the partition's provably-benign bit count at the
	// injection site; 0 when the site was not partitioned.  An
	// experiment with ClassID == 0 and BenignBits > 0 flipped a
	// provably-benign bit and must classify Correct.
	BenignBits int
	// Forensics is the flight record of the injected rank, present only
	// when the campaign ran with Config.Forensics.
	Forensics *Forensics
}

// ID returns the experiment's stable plan identity (see PlanEntry.ID).
func (e *Experiment) ID() string {
	return PlanEntry{Region: e.Region, Index: e.Index}.ID()
}

// Unapplied reports whether the experiment finished without actually
// injecting a fault: the region had no eligible target ("no target",
// "no traffic", "no execution") or the trigger never fired.  Such
// experiments carry no classifiable manifestation, so campaigns surface
// their count and CI gates on it.
func (e *Experiment) Unapplied() bool {
	return e.Desc == "" || e.Desc == "no target" || e.Desc == "no traffic" ||
		e.Desc == "no execution"
}

// Config parameterizes an injection campaign for one application image.
type Config struct {
	Image     *image.Image
	Ranks     int
	MPIConfig mpi.Config
	// Injections is the per-region experiment count (the paper uses
	// 400-1000 per region, 2000 for some message rows).
	Injections int
	// Regions selects which table rows to run; nil means all eight.
	Regions []Region
	// Seed makes the whole campaign reproducible.
	Seed uint64
	// Parallelism bounds concurrently executing jobs; 0 picks a default.
	Parallelism int
	// BudgetMultiplier scales the golden max instruction count into the
	// per-rank livelock budget; 0 means 4x.
	BudgetMultiplier int
	// WallLimit is the per-run wall-clock fallback; 0 means 10s.
	WallLimit time.Duration
	// Progress, when non-nil, is called after every finished experiment.
	Progress func(done, total int)
	// KeepExperiments retains the per-injection records in the result.
	KeepExperiments bool
	// Liveness, when non-nil, directs register-region injections by the
	// static per-PC liveness it reports (see internal/analysis).
	Liveness LivenessMap
	// LivenessPolicy selects live-only or dead-only register sampling;
	// meaningful only with Liveness set.
	LivenessPolicy LivenessPolicy
	// Equivalence, when non-nil, drives register-region injections by
	// the static site partition it reports (see internal/analysis) and
	// annotates every register experiment with its class.  Mutually
	// exclusive with Liveness.
	Equivalence EquivalenceMap
	// EquivalencePolicy selects annotate/prune/audit sampling;
	// meaningful only with Equivalence set.
	EquivalencePolicy EquivalencePolicy
	// Shard/NumShards restrict the run to shard Shard of the
	// NumShards-way partition of the plan (see Plan.Shard).  The zero
	// value (0, 0) runs the whole plan, as does 0/1.  Because every
	// experiment's random stream is derived from (Seed, Region, Index)
	// alone, the union of the K shard runs is exactly the single-process
	// campaign at the same seed.
	Shard     int
	NumShards int
	// Entries, when non-nil, runs exactly these plan entries instead of
	// the Shard/NumShards enumeration — the coordinator's lease path
	// (see internal/coord): a lease is a bounded Plan.Range, and any
	// worker running the same entries at the same Seed produces the
	// identical experiments.  Every entry must lie inside the plan
	// (Region listed in Regions, 0 <= Index < Injections), and Entries
	// is mutually exclusive with a nontrivial Shard/NumShards.
	Entries []PlanEntry
	// Golden, when non-nil, reuses a previously computed golden run
	// instead of re-executing it — a worker holding many leases of one
	// campaign pays for the reference run once.  The golden must come
	// from the identical Image/Ranks/MPIConfig (the caller's contract);
	// it is mutually exclusive with checkpointing, which needs the
	// causality events only a fresh golden run records.
	Golden *Golden
	// Completed maps experiment IDs (Experiment.ID) to already-finished
	// experiments, typically read back from a checkpoint journal.  Plan
	// entries found here are counted without being re-run, which is how
	// an interrupted campaign resumes.
	Completed map[string]Experiment
	// OnExperiment, when non-nil, is called once for each newly finished
	// experiment (never for Completed ones).  Calls are serialized, so a
	// journal append needs no extra locking, and are delivered in *plan
	// order* — an experiment finishing out of order is held until its
	// predecessors are delivered — so a fixed-seed campaign journal is
	// byte-identical regardless of parallelism, dispatch order or
	// checkpointing.  On interruption, finished experiments past the
	// first unfinished entry are flushed, still in plan order, before
	// Run returns.
	OnExperiment func(Experiment)
	// Stop, when non-nil and closed, stops dispatching new experiments;
	// in-flight ones finish (and still reach OnExperiment).  The Result
	// is then partial and marked Interrupted — pair with a journal and
	// Completed to resume later.
	Stop <-chan struct{}
	// Metrics, when non-nil, receives campaign telemetry: experiment
	// counters by outcome, plan/shard progress, in-flight depth, the
	// crash/hang-latency histograms, and per-job VM/MPI aggregates.
	// Nil (the default) records nothing and changes no behaviour —
	// fixed-seed outcomes are identical either way.
	Metrics *telemetry.Registry
	// Forensics attaches a flight recorder to every experiment's
	// injected rank and fills Experiment.Forensics: the last retired
	// PCs, the trap detail, and the injection-to-manifestation
	// instruction distance (§5.2's crash latency).  Off by default; it
	// observes without perturbing, so outcomes are unchanged.
	// Forensics disables checkpointing: a flight record must cover the
	// instructions leading up to the injection, which a restored
	// experiment would have skipped.
	Forensics bool
	// TraceDiff records a per-rank message-digest stream (op, peer,
	// tag, byte count, payload hash) for the golden run and every
	// experiment, and, for Incorrect/Hang/Crash outcomes, attaches the
	// first divergence from the golden trace to Experiment.Forensics —
	// the Okita-style fault localization.  Like Forensics it disables
	// checkpointing: a digest stream must cover the run from
	// instruction 0, which a restored experiment would have skipped.
	// The hook only observes; fixed-seed outcomes, CSV and journal
	// order are identical with TraceDiff on or off.
	TraceDiff bool
	// CheckpointInterval, when nonzero, enables golden-run
	// checkpointing: the golden run emits a consistent cluster snapshot
	// roughly every CheckpointInterval retired instructions, and each
	// experiment starts from the latest snapshot preceding its injection
	// epoch instead of t=0 (see checkpoint.go).  Fixed-seed outcomes,
	// CSV and journal are byte-identical with checkpointing on or off.
	CheckpointInterval uint64
	// MaxCheckpoints caps how many checkpoints are captured; 0 means
	// DefaultMaxCheckpoints when checkpointing is enabled.
	MaxCheckpoints int
	// DisableSuperblocks runs every machine — golden, checkpoint capture
	// and experiment — on the per-instruction interpreter instead of the
	// compiled superblock tier (faultcampaign -no-superblock).  Fixed-seed
	// outcomes, CSV and journal are byte-identical either way; the flag
	// exists so CI legs and bisection can prove exactly that.
	DisableSuperblocks bool
	// Adaptive selects the sequential-stopping planner (see adaptive.go
	// and internal/sampling): the campaign runs in deterministic rounds
	// and stops each region once its Wilson CI half-width reaches
	// TargetHalfWidth, instead of spending the fixed worst-case count
	// everywhere.  Adaptive campaigns go through RunAdaptive, which sizes
	// Injections itself (the fixed-n cap) — callers leave it zero.  Run
	// ignores this field; it only labels the configuration for journal
	// headers and validation.
	Adaptive bool
	// TargetHalfWidth is the adaptive stopping target d; 0 means
	// DefaultTargetHalfWidth (the paper's 4.9 %).
	TargetHalfWidth float64
	// Confidence is the adaptive CI level; 0 means DefaultConfidence (95 %).
	Confidence float64
	// RoundSize bounds how many experiments one adaptive round adds to a
	// single stratum; 0 means sampling.DefaultRoundSize.
	RoundSize int
	// AVFPriors supplies static per-region manifestation priors (from
	// the analysis AVF predictor) that size the adaptive pilot round;
	// regions without a prior assume the worst case 0.5.  Priors affect
	// only how fast strata converge, never the estimates.
	AVFPriors map[Region]float64
	// OnRound, when non-nil, is called after each adaptive round with
	// the planner's progress — per-stratum CI half-widths for the
	// -status line.  Calls are serialized with the round barrier.
	OnRound func(AdaptiveStats)
}

// Tally aggregates outcomes for one region.
type Tally struct {
	Region     Region
	Executions int
	Outcomes   [classify.NumOutcomes]int
}

// Errors returns the number of manifested faults.
func (t *Tally) Errors() int {
	return t.Executions - t.Outcomes[classify.Correct]
}

// ErrorRate returns the percentage of injections that manifested.
func (t *Tally) ErrorRate() float64 {
	if t.Executions == 0 {
		return 0
	}
	return 100 * float64(t.Errors()) / float64(t.Executions)
}

// ManifestPercent returns outcome o as a percentage of manifested errors,
// the denominator used in the paper's "Error Manifestations" columns.
func (t *Tally) ManifestPercent(o classify.Outcome) float64 {
	e := t.Errors()
	if e == 0 {
		return 0
	}
	return 100 * float64(t.Outcomes[o]) / float64(e)
}

// Result is a finished campaign: one tally per region, in table order.
type Result struct {
	Tallies     []Tally
	Golden      *Golden
	Experiments []Experiment
	// Directed summarizes the candidate-space pruning when the campaign
	// ran with a liveness map; nil otherwise.
	Directed *DirectedStats
	// Equivalence summarizes the class sampling when the campaign ran
	// with an equivalence map; nil otherwise.
	Equivalence *EquivalenceStats
	// Unclassified counts experiments that finished without applying a
	// fault (see Experiment.Unapplied) — they carry no manifestation, so
	// callers should treat a nonzero count as a failed campaign.
	Unclassified int
	// Interrupted is set when Stop fired before the plan was exhausted;
	// tallies then cover only the experiments that finished.
	Interrupted bool
	// Checkpoints summarizes golden-run checkpoint usage; nil when
	// checkpointing was not enabled.
	Checkpoints *CheckpointStats
	// Adaptive summarizes the sequential-stopping planner's rounds and
	// per-stratum convergence; nil for fixed-n campaigns.
	Adaptive *AdaptiveStats
}

// Tally returns the tally for a region, if present.
func (r *Result) Tally(region Region) (Tally, bool) {
	for _, t := range r.Tallies {
		if t.Region == region {
			return t, true
		}
	}
	return Tally{}, false
}

// TallyExperiments aggregates finished experiments into per-region
// tallies in the given region order — the exact aggregation Run
// performs, exported so that merging shard journals reproduces the
// single-process tables byte for byte.
func TallyExperiments(regions []Region, experiments []Experiment) []Tally {
	tallies := make([]Tally, 0, len(regions))
	for _, region := range regions {
		t := Tally{Region: region}
		for i := range experiments {
			if experiments[i].Region != region {
				continue
			}
			t.Executions++
			t.Outcomes[experiments[i].Outcome]++
		}
		tallies = append(tallies, t)
	}
	return tallies
}

// CountUnapplied returns how many experiments finished without actually
// injecting a fault (see Experiment.Unapplied).
func CountUnapplied(experiments []Experiment) int {
	n := 0
	for i := range experiments {
		if experiments[i].Unapplied() {
			n++
		}
	}
	return n
}

// Run executes the campaign — or one shard of it — as a golden run
// followed by independent fault-injection runs for every plan entry not
// already present in cfg.Completed.
func Run(cfg Config) (*Result, error) {
	if cfg.Injections <= 0 {
		cfg.Injections = 100
	}
	if len(cfg.Regions) == 0 {
		cfg.Regions = Regions()
	}
	if cfg.BudgetMultiplier <= 0 {
		cfg.BudgetMultiplier = 4
	}
	if cfg.WallLimit == 0 {
		cfg.WallLimit = 10 * time.Second
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)/2 + 1
	}
	if cfg.NumShards <= 0 {
		cfg.NumShards = 1
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.NumShards {
		return nil, fmt.Errorf("core: shard %d/%d out of range", cfg.Shard, cfg.NumShards)
	}
	if cfg.Liveness != nil && cfg.Equivalence != nil && cfg.EquivalencePolicy != EquivOff {
		return nil, fmt.Errorf("core: liveness and equivalence policies are mutually exclusive")
	}

	ckptOn := cfg.CheckpointInterval > 0 || cfg.MaxCheckpoints > 0
	if cfg.Forensics || cfg.TraceDiff {
		ckptOn = false // flight records and digest streams must cover the whole prefix
	}
	if ckptOn {
		if cfg.CheckpointInterval == 0 {
			cfg.CheckpointInterval = DefaultCheckpointInterval
		}
		if cfg.MaxCheckpoints <= 0 {
			cfg.MaxCheckpoints = DefaultMaxCheckpoints
		}
	}
	if cfg.Golden != nil && ckptOn {
		return nil, fmt.Errorf("core: Golden reuse and checkpointing are mutually exclusive (checkpoints need the golden run's causality events)")
	}
	if cfg.Golden != nil && cfg.TraceDiff && cfg.Golden.Trace == nil {
		return nil, fmt.Errorf("core: Golden reuse with TraceDiff requires a golden recorded with TraceDiff (its message trace is missing)")
	}

	golden := cfg.Golden
	var rec *mpi.CausalityRecorder
	if golden == nil {
		if ckptOn {
			rec = mpi.NewCausalityRecorder()
		}
		var err error
		golden, err = runGolden(cfg.Image, cfg.Ranks, cfg.MPIConfig, cfg.WallLimit, rec, cfg.DisableSuperblocks, cfg.TraceDiff)
		if err != nil {
			return nil, err
		}
	}
	dict := NewDictionary(cfg.Image)
	budget := golden.MaxInstrs() * uint64(cfg.BudgetMultiplier)

	plan := Plan{Regions: cfg.Regions, Injections: cfg.Injections}
	entries := plan.Shard(cfg.Shard, cfg.NumShards)
	if cfg.Entries != nil {
		if cfg.Shard != 0 || cfg.NumShards != 1 {
			return nil, fmt.Errorf("core: Entries and Shard/NumShards are mutually exclusive")
		}
		for _, pe := range cfg.Entries {
			inPlan := false
			for _, r := range cfg.Regions {
				if r == pe.Region {
					inPlan = true
					break
				}
			}
			if !inPlan || pe.Index < 0 || pe.Index >= cfg.Injections {
				return nil, fmt.Errorf("core: entry %s outside the plan", pe.ID())
			}
		}
		entries = cfg.Entries
	}
	met := newCampaignMeters(cfg.Metrics)
	met.traceDiff = cfg.TraceDiff
	met.planned.Add(uint64(len(entries)))

	cctx := &campaignCtx{cfg: &cfg, golden: golden, dict: dict, budget: budget, met: met}
	if ckptOn {
		cctx.stats = &CheckpointStats{}
		cctx.ckpts = buildCheckpoints(&cfg, golden, rec.Events())
		cctx.stats.Taken = cctx.ckpts.Len()
		met.ckptTaken.Add(uint64(cctx.ckpts.Len()))
		if cctx.ckpts.Len() == 0 {
			cctx.stats.Fallback = true
			cctx.ckpts = nil
			met.ckptFallbacks.Inc()
		}
	}

	experiments := make([]Experiment, len(entries))
	finished := make([]bool, len(entries))
	var todo []int
	for i, pe := range entries {
		if prev, ok := cfg.Completed[pe.ID()]; ok {
			prev.Region, prev.Index = pe.Region, pe.Index
			experiments[i] = prev
			finished[i] = true
			continue
		}
		experiments[i] = Experiment{Region: pe.Region, Index: pe.Index}
		todo = append(todo, i)
	}
	met.resumed.Add(uint64(len(entries) - len(todo)))

	base := rng.New(cfg.Seed)
	cctx.base = base

	// planOrder is the journal-delivery order (the plan's own order, the
	// same one a serial campaign would produce).  Dispatch order is free
	// to differ: with checkpoints available, experiments are grouped by
	// the checkpoint they restore from, so concurrent jobs share one
	// snapshot's backing pages and the residual prefixes they replay.
	planOrder := append([]int(nil), todo...)
	if cctx.ckpts.Len() > 0 {
		bucket := make(map[int]int, len(todo))
		for _, idx := range todo {
			bucket[idx] = cctx.bucketOf(&experiments[idx])
		}
		sort.SliceStable(todo, func(i, j int) bool {
			return bucket[todo[i]] < bucket[todo[j]]
		})
	}

	var (
		wg          sync.WaitGroup
		next        = make(chan int)
		done        int
		mu          sync.Mutex
		total       = len(todo)
		deliverNext int
	)
	// deliverLocked hands finished experiments to OnExperiment in plan
	// order; called with mu held.
	deliverLocked := func() {
		for deliverNext < len(planOrder) && finished[planOrder[deliverNext]] {
			if cfg.OnExperiment != nil {
				cfg.OnExperiment(experiments[planOrder[deliverNext]])
			}
			deliverNext++
		}
	}
	scratch := sync.Pool{New: func() any { return &expScratch{} }}
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				e := &experiments[idx]
				met.started.Inc()
				met.inflight.Add(1)
				sc := scratch.Get().(*expScratch)
				base.DeriveInto(&sc.r, uint64(e.Region), uint64(e.Index))
				runOne(cctx, e, sc)
				scratch.Put(sc)
				met.inflight.Add(-1)
				met.observe(e)
				mu.Lock()
				finished[idx] = true
				done++
				d := done
				deliverLocked()
				mu.Unlock()
				if cfg.Progress != nil {
					cfg.Progress(d, total)
				}
			}
		}()
	}
	res := &Result{Golden: golden}
dispatch:
	for _, idx := range todo {
		// Poll Stop first so a fired stop wins over a ready worker; the
		// nil channel of an unset Stop never fires in either select.
		select {
		case <-cfg.Stop:
			res.Interrupted = true
			break dispatch
		default:
		}
		select {
		case <-cfg.Stop:
			res.Interrupted = true
			break dispatch
		case next <- idx:
		}
	}
	close(next)
	wg.Wait()
	// Flush finished-but-undelivered experiments (an interrupt leaves
	// gaps in the plan): still plan order, unfinished entries skipped.
	if cfg.OnExperiment != nil {
		for ; deliverNext < len(planOrder); deliverNext++ {
			if finished[planOrder[deliverNext]] {
				cfg.OnExperiment(experiments[planOrder[deliverNext]])
			}
		}
	}
	if cctx.stats != nil {
		cctx.stats.Hits = cctx.hits.Load()
		cctx.stats.Misses = cctx.misses.Load()
		cctx.stats.InstrsSkipped = cctx.skipped.Load()
		res.Checkpoints = cctx.stats
	}

	ran := experiments
	if res.Interrupted {
		ran = ran[:0]
		for i := range experiments {
			if finished[i] {
				ran = append(ran, experiments[i])
			}
		}
	}
	if cfg.Liveness != nil {
		res.Directed = directedStatsFor(cfg.LivenessPolicy, ran)
	}
	if cfg.Equivalence != nil && cfg.EquivalencePolicy != EquivOff {
		res.Equivalence = equivalenceStatsFor(cfg.EquivalencePolicy, ran)
	}
	res.Tallies = TallyExperiments(cfg.Regions, ran)
	res.Unclassified = CountUnapplied(ran)
	if cfg.KeepExperiments {
		res.Experiments = ran
	}
	return res, nil
}

// directedStatsFor aggregates the candidate-space pruning summary of a
// liveness-directed campaign from its finished experiments.
func directedStatsFor(policy LivenessPolicy, ran []Experiment) *DirectedStats {
	d := &DirectedStats{Policy: policy}
	for i := range ran {
		if ran[i].Region != RegionRegularReg {
			continue
		}
		d.Experiments++
		d.Candidates += uint64(ran[i].Candidates)
		d.Total += RegisterSpaceBits
	}
	return d
}

// equivalenceStatsFor aggregates the class-sampling summary of an
// equivalence-driven campaign from its finished experiments.
func equivalenceStatsFor(policy EquivalencePolicy, ran []Experiment) *EquivalenceStats {
	s := &EquivalenceStats{Policy: policy}
	classes := make(map[uint64]bool)
	for i := range ran {
		if ran[i].Region != RegionRegularReg {
			continue
		}
		s.Experiments++
		s.Candidates += uint64(ran[i].Candidates)
		s.BenignBits += uint64(ran[i].BenignBits)
		s.Total += RegisterSpaceBits
		if ran[i].ClassID != 0 {
			classes[ran[i].ClassID] = true
		}
	}
	s.Classes = len(classes)
	return s
}

// campaignCtx bundles the per-campaign immutable state the workers share,
// plus the checkpoint-usage counters.
type campaignCtx struct {
	cfg    *Config
	golden *Golden
	dict   *Dictionary
	budget uint64
	base   *rng.Rand
	ckpts  *CheckpointSet
	met    *campaignMeters
	stats  *CheckpointStats

	// Local (per-campaign) counters: the telemetry registry may be shared
	// across campaigns, so Result.Checkpoints cannot be read back from it.
	hits, misses, skipped atomic.Uint64
}

// expScratch is the pooled per-experiment scratch: the experiment and
// fault RNG streams (re-seeded in place), the forensics flight recorder
// (ring reset, storage kept) and the trace-diff digest recorder
// (streams truncated, backing arrays kept).
type expScratch struct {
	r, faultRng rng.Rand
	rec         *vm.FlightRecorder
	mrec        *msgtrace.Recorder
}

// bucketOf peeks at the checkpoint an experiment will restore from
// without perturbing its random stream (Derive is pure), for grouping
// the dispatch order.  -1 means a scratch start.
func (c *campaignCtx) bucketOf(e *Experiment) int {
	var r rng.Rand
	c.base.DeriveInto(&r, uint64(e.Region), uint64(e.Index))
	rank := r.Intn(c.cfg.Ranks)
	if e.Region == RegionMessage {
		vol := c.golden.RecvBytes[rank]
		if vol == 0 {
			return -1
		}
		return c.ckpts.indexForRecv(rank, r.Uint64n(vol))
	}
	if c.golden.Instrs[rank] == 0 {
		return -1
	}
	return c.ckpts.indexForInstr(rank, 1+r.Uint64n(c.golden.Instrs[rank]))
}

// restoreFrom points the job at checkpoint k and accounts for the hit.
func (c *campaignCtx) restoreFrom(job *cluster.Job, k int) *cluster.Snapshot {
	snap := c.ckpts.snaps[k]
	job.Restore = snap
	c.hits.Add(1)
	c.skipped.Add(c.ckpts.skipped[k])
	c.met.ckptHits.Inc()
	c.met.instrsSkipped.Add(int64(c.ckpts.skipped[k]))
	return snap
}

func (c *campaignCtx) checkpointMiss() {
	c.misses.Add(1)
	c.met.ckptMisses.Inc()
}

// runOne performs a single injection experiment.
func runOne(c *campaignCtx, e *Experiment, sc *expScratch) {
	cfg, golden, r := c.cfg, c.golden, &sc.r
	e.Rank = r.Intn(cfg.Ranks)

	var (
		mi         *MessageInjector
		descMu     sync.Mutex
		applied    string
		candidates int
		classID    uint64
		benignBits int
	)
	job := cluster.Job{
		Image:              cfg.Image,
		Size:               cfg.Ranks,
		MPIConfig:          cfg.MPIConfig,
		Budget:             c.budget,
		WallLimit:          cfg.WallLimit,
		Metrics:            cfg.Metrics,
		DisableSuperblocks: cfg.DisableSuperblocks,
	}

	// The flight recorder rides the existing Tracer hook on the injected
	// rank only; with forensics disabled the job runs hook-free.
	var rec *vm.FlightRecorder
	if cfg.Forensics {
		if sc.rec == nil {
			sc.rec = vm.NewFlightRecorder(forensicsDepth)
		}
		sc.rec.Reset()
		rec = sc.rec
		job.Tracer = rec
		job.TraceRank = e.Rank
	}

	if e.Region == RegionMessage {
		vol := golden.RecvBytes[e.Rank]
		if vol == 0 {
			e.Outcome = classify.Correct
			e.Desc = "no traffic"
			return
		}
		e.Trigger = r.Uint64n(vol)
		mi = &MessageInjector{TriggerByte: e.Trigger, Bit: uint(r.Intn(8))}
		if c.ckpts != nil {
			if k := c.ckpts.indexForRecv(e.Rank, e.Trigger); k >= 0 {
				snap := c.restoreFrom(&job, k)
				// The injector counts cumulative received bytes; start it
				// at the snapshot's count so the trigger offset means the
				// same byte it would in a scratch run.
				mi.seen = snap.RankRecvBytes(e.Rank)
			} else {
				c.checkpointMiss()
			}
		}
		job.Setup = func(rank int, m *vm.Machine, p *mpi.Proc) {
			if rank == e.Rank {
				p.RecvHook = mi.Hook
			}
		}
	} else {
		if golden.Instrs[e.Rank] == 0 {
			// The rank retired no instructions in the golden run (possible
			// for over-provisioned worlds): there is no execution to
			// inject into, like the zero-traffic message case.
			e.Outcome = classify.Correct
			e.Desc = "no execution"
			return
		}
		// Injection time: uniform over the target rank's execution, the
		// t axis of the sampling space.
		e.Trigger = 1 + r.Uint64n(golden.Instrs[e.Rank])
		if c.ckpts != nil {
			if k := c.ckpts.indexForInstr(e.Rank, e.Trigger); k >= 0 {
				c.restoreFrom(&job, k)
			} else {
				c.checkpointMiss()
			}
		}
		region := e.Region
		r.SplitInto(&sc.faultRng)
		faultRng := &sc.faultRng
		job.Setup = func(rank int, m *vm.Machine, p *mpi.Proc) {
			if rank != e.Rank {
				return
			}
			m.TriggerAt = e.Trigger
			m.TriggerFn = func(m *vm.Machine) {
				var d string
				var cand int
				var cls uint64
				var benign int
				switch region {
				case RegionRegularReg:
					switch {
					case cfg.Equivalence != nil && cfg.EquivalencePolicy != EquivOff:
						d, cls, benign, cand = ApplyRegisterFaultEquiv(m, faultRng, cfg.Equivalence, cfg.EquivalencePolicy)
					case cfg.Liveness != nil:
						d, cand = ApplyRegisterFaultDirected(m, faultRng, cfg.Liveness, cfg.LivenessPolicy)
					default:
						d, cand = ApplyRegisterFault(m, faultRng), RegisterSpaceBits
					}
				case RegionFPReg:
					d = ApplyFPRegisterFault(m, faultRng)
				case RegionText, RegionData, RegionBSS:
					d = ApplyStaticFault(m, c.dict, region, faultRng)
				case RegionHeap:
					d = ApplyHeapFault(m, faultRng)
				case RegionStack:
					d = ApplyStackFault(m, faultRng)
				}
				descMu.Lock()
				applied, candidates, classID, benignBits = d, cand, cls, benign
				descMu.Unlock()
			}
		}
	}

	// The digest recorder observes every rank (a fault on one rank
	// diverges its peers' streams too), composing with the injector
	// hook the region branch installed above.
	var mrec *msgtrace.Recorder
	if cfg.TraceDiff {
		if sc.mrec == nil {
			sc.mrec = msgtrace.NewRecorder(cfg.Ranks)
		}
		sc.mrec.Reset(cfg.Ranks)
		mrec = sc.mrec
		inner := job.Setup
		job.Setup = func(rank int, m *vm.Machine, p *mpi.Proc) {
			mrec.Attach(p)
			if inner != nil {
				inner(rank, m, p)
			}
		}
	}

	res := cluster.Run(job)
	e.Outcome = classify.Classify(res, golden.Output)
	e.Detail = res.FailureSummary()
	if rec != nil {
		e.Forensics = buildForensics(e, rec, res)
	}
	if mrec != nil {
		attachDivergence(e, golden.Trace, mrec.Trace())
	}
	if mi != nil {
		_, e.Desc = mi.Report()
	} else {
		descMu.Lock()
		e.Desc = applied
		e.Candidates = candidates
		e.ClassID = classID
		e.BenignBits = benignBits
		descMu.Unlock()
	}
}
