// Package vm implements the simulated 32-bit machine that executes guest
// MPI processes.
//
// One Machine models one MPI process: an x86-32-style register file
// (including the x87-like floating-point stack and its environment
// registers), a Linux-style segmented address space, and an interpreter
// with precise traps.  The fault injector manipulates Machine state
// directly — flipping bits in registers, segment bytes, heap chunks and
// stack frames — and the machine's semantics turn those flips into the
// behaviours the paper observes: segmentation faults, illegal
// instructions, NaN propagation, silent data corruption and livelock.
package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// TrapKind enumerates why execution stopped abnormally.
type TrapKind uint8

const (
	TrapNone       TrapKind = iota
	TrapSegv                // SIGSEGV: unmapped or protected address
	TrapIll                 // SIGILL: invalid opcode or register encoding
	TrapFpe                 // SIGFPE: integer divide error
	TrapExit                // guest called exit()
	TrapAbort               // guest called abort() after an internal check failed
	TrapMPIFatal            // fatal error inside the MPI runtime (MPICH aborts)
	TrapMPIHandler          // user-registered MPI error handler was invoked
	TrapKilled              // terminated by the harness (another rank failed / hang verdict)
)

func (k TrapKind) String() string {
	switch k {
	case TrapSegv:
		return "SIGSEGV"
	case TrapIll:
		return "SIGILL"
	case TrapFpe:
		return "SIGFPE"
	case TrapExit:
		return "exit"
	case TrapAbort:
		return "abort"
	case TrapMPIFatal:
		return "mpi-fatal"
	case TrapMPIHandler:
		return "mpi-handler"
	case TrapKilled:
		return "killed"
	default:
		return "none"
	}
}

// Trap describes an abnormal stop.
type Trap struct {
	Kind TrapKind
	PC   uint32 // faulting instruction address
	Addr uint32 // faulting memory address, when applicable
	Code int32  // exit/abort code
	Msg  string // human-readable detail
}

func (t *Trap) Error() string {
	if t.Msg != "" {
		return fmt.Sprintf("%s at pc=0x%08x: %s", t.Kind, t.PC, t.Msg)
	}
	return fmt.Sprintf("%s at pc=0x%08x addr=0x%08x", t.Kind, t.PC, t.Addr)
}

// IsSignal reports whether the trap corresponds to a hardware signal the
// MPI library's handler would catch (the paper's Crash category).
func (t *Trap) IsSignal() bool {
	return t.Kind == TrapSegv || t.Kind == TrapIll || t.Kind == TrapFpe
}

// Tracer observes memory activity for working-set analysis (§6.1.2).
// Implementations must be cheap; the hooks run on every instruction.
type Tracer interface {
	Exec(pc uint32)              // an instruction was fetched from pc
	Load(addr uint32, size int)  // data load
	Store(addr uint32, size int) // data store
}

// SyscallHandler services SYS instructions.  A nil return continues
// execution; a non-nil Trap stops the machine (TrapExit for normal
// termination).  Handlers may block (e.g. in MPI_Recv); each machine runs
// on its own goroutine.
type SyscallHandler interface {
	Syscall(m *Machine, num int32) *Trap
}

// FPEnv is the x87-style floating-point environment.  The stack top lives
// in bits 11-13 of SWD, exactly as on the x87, so a bit flip injected into
// SWD corrupts the register stack's addressing.
type FPEnv struct {
	Regs [isa.NumFPReg]float64 // physical data registers
	CWD  uint16                // control word (default 0x037F, as on x87)
	SWD  uint16                // status word; bits 11-13 = top
	TWD  uint16                // tag word, 2 bits per physical register
	FIP  uint32                // last FP instruction pointer
	FCS  uint32                // last FP instruction "segment"
	FOO  uint32                // last FP operand offset
	FOS  uint32                // last FP operand "segment"
}

// Top returns the current stack-top physical index.
func (e *FPEnv) Top() int { return int(e.SWD>>11) & 7 }

// SetTop stores t into SWD bits 11-13.
func (e *FPEnv) SetTop(t int) { e.SWD = e.SWD&^(7<<11) | uint16(t&7)<<11 }

// Tag returns the 2-bit tag of physical register p.
func (e *FPEnv) Tag(p int) int { return int(e.TWD>>(uint(p&7)*2)) & 3 }

// SetTag sets the 2-bit tag of physical register p.
func (e *FPEnv) SetTag(p, tag int) {
	sh := uint(p&7) * 2
	e.TWD = e.TWD&^(3<<sh) | uint16(tag&3)<<sh
}

// Machine is one simulated guest process.
type Machine struct {
	// Regs are the general-purpose registers (see isa register indices).
	Regs [isa.NumGPR]uint32
	// PC is the program counter.
	PC uint32
	// Flags holds the condition flags (isa.Flag*).
	Flags uint32
	// FP is the floating-point environment.
	FP FPEnv

	// Instrs counts retired instructions; it is the machine's time axis
	// (the analogue of the paper's basic-block counts).
	Instrs uint64
	// MinSP tracks the lowest stack pointer observed, for stack-size
	// profiling (Table 1).
	MinSP uint32

	// Image is the program this machine was loaded from.
	Image *image.Image
	// Heap is the guest heap allocator ("guest libc malloc").
	Heap *Allocator

	// Handler services system calls; it must be set before Run.
	Handler SyscallHandler
	// Tracer, when non-nil, observes execution for working-set analysis.
	Tracer Tracer

	// TriggerAt, when nonzero, invokes TriggerFn once just before the
	// instruction at which Instrs == TriggerAt executes.  The fault
	// injector uses it as the analogue of the paper's periodic ptrace stop.
	TriggerAt uint64
	TriggerFn func(*Machine)

	// Stop, when non-nil, is polled periodically by Run; once set, the
	// machine halts with TrapKilled.  The cluster uses it to tear down
	// still-computing ranks after a job-level verdict (SIGKILL analogue).
	Stop *atomic.Bool

	text  segment
	data  segment
	bss   segment
	heap  segment
	stack segment

	// pre is the image's shared predecoded text table (see predecode.go);
	// nil forces the byte-decode fetch path.
	pre []isa.Instr
	// textDirty marks predecode slots overwritten on this machine.
	textDirty []uint64

	// Superblock tier (see superblock.go).  sbProg is the image's shared
	// compiled uop program; sbEnd is the per-slot run-end table, shared
	// until the first text write clones it (sbEndOwned).  nil sbProg
	// forces per-instruction interpretation.
	sbProg     []uop
	sbEnd      []uint32
	sbEndOwned bool

	// loadSeg/storeSeg remember the segment the last slow-path load and
	// store resolved to; the hot accessors try the remembered segment's
	// backed range first and fall back to the full span walk.  Pure
	// caches of this machine's own segments — never captured, never
	// aliased across machines.
	loadSeg  *segment
	storeSeg *segment
}

// segment is one region of the guest address space.  The backing store is
// lazy and copy-on-write: text and data alias the image's bytes until the
// first write (shared), while BSS, heap and stack start with no backing
// at all and grow it on demand — unbacked bytes read as zeros.  This
// makes loading a machine O(1) in the address-space size and keeps its
// footprint proportional to the memory it actually touches: a fault
// campaign creates one machine per rank per experiment, and used to spend
// most of its allocation volume zero-filling 8 MiB heaps of which a run
// touched a few tens of kilobytes.
type segment struct {
	base     uint32
	length   uint32 // logical size; len(bytes) <= length
	bytes    []byte // backing for [base, base+len(bytes)); grows on demand
	writable bool
	shared   bool // bytes alias the immutable image; copy before writing
}

func (s *segment) contains(addr uint32) bool {
	return addr-s.base < s.length // unsigned wrap makes addr < base fail too
}

// zeroPage backs reads of never-written lazy segment memory.  It is
// immutable: view hands out sub-slices, and every caller treats read spans
// as read-only.
var zeroPage [65536]byte

// view returns [off, off+n) for reading; the caller must have
// bounds-checked the range against length.  Reads entirely beyond the
// backing return zeros without growing it; reads that straddle the
// backing boundary (or exceed zeroPage) grow it instead, which keeps the
// common cases allocation-free.
func (s *segment) view(off uint32, n int) []byte {
	end := int(off) + n
	if end <= len(s.bytes) {
		return s.bytes[off:end]
	}
	if int(off) >= len(s.bytes) && n <= len(zeroPage) {
		return zeroPage[:n]
	}
	s.ensure(end)
	return s.bytes[off:end]
}

// mutable returns [off, off+n) for writing, growing or unsharing the
// backing store first; the caller must have bounds-checked the range.
func (s *segment) mutable(off uint32, n int) []byte {
	end := int(off) + n
	if s.shared || end > len(s.bytes) {
		s.ensure(end)
	}
	return s.bytes[off:end]
}

// ensure gives the segment private backing covering at least [0, end).
// Lazy segments grow by doubling in 16 KiB quanta, capped at the logical
// size, so repeated small writes — the heap break creeping upward — cost
// amortized O(bytes touched), not O(segment size).  Shared segments may be
// only partially backed (a checkpoint aliases whatever the snapshotted
// machine had grown), so unsharing and growing are one copy: allocate the
// grown size, copy the aliased prefix, and the segment is private.
func (s *segment) ensure(end int) {
	if !s.shared && end <= len(s.bytes) {
		return
	}
	grown := len(s.bytes)
	if end > grown {
		grown *= 2
		const quantum = 16 << 10
		if grown < quantum {
			grown = quantum
		}
		if grown < end {
			grown = end
		}
		if grown > int(s.length) {
			grown = int(s.length)
		}
	}
	nb := make([]byte, grown)
	copy(nb, s.bytes)
	s.bytes = nb
	s.shared = false
}

// New loads the image into a fresh machine.  Text and data are shared
// copy-on-write with the image and the zero segments are allocated
// lazily, so this is cheap no matter how large the address space is.
func New(im *image.Image) *Machine {
	m := &Machine{Image: im}
	m.text = segment{base: image.TextBase, length: uint32(len(im.Text)), bytes: im.Text, shared: true}
	m.data = segment{base: im.DataBase, length: uint32(len(im.Data)), bytes: im.Data, writable: true, shared: true}
	m.bss = segment{base: im.BSSBase, length: im.BSSSize, writable: true}
	m.heap = segment{base: im.HeapBase, length: im.HeapLimit - im.HeapBase, writable: true}
	m.stack = segment{base: im.StackBase(), length: im.StackSize, writable: true}
	p := predecodeFor(im)
	m.pre = p.instrs
	m.sbProg = p.prog
	m.sbEnd = p.end
	m.PC = im.Entry
	m.Regs[isa.SP] = image.StackTop
	m.Regs[isa.FP] = image.StackTop
	m.MinSP = image.StackTop
	m.FP.CWD = 0x037F
	m.FP.TWD = 0xFFFF // all slots empty
	m.Heap = newAllocator(m)
	return m
}

// StopReason says why Run returned.
type StopReason uint8

const (
	StopTrap StopReason = iota
	StopBudget
)

// RunResult is the outcome of Run.
type RunResult struct {
	Reason StopReason
	Trap   *Trap // set when Reason == StopTrap
}

// Run executes until a trap (including normal exit) or until budget
// instructions have retired.  budget == 0 means unlimited.
//
// The outer loop only handles events — budget exhaustion, stop polling,
// trigger firing — at precomputed instruction-count boundaries; between
// boundaries instructions retire through the superblock tier
// (superblock.go) when compiled state is available, or the
// per-instruction Step loop otherwise.  The event checks run at exactly
// the same instruction counts in both modes (stop is polled on entry to
// Run and whenever Instrs is a multiple of 4096, the trigger fires just
// before the instruction at which Instrs == TriggerAt executes), so
// campaign outcomes are bit-identical across tiers.
//
// Stop latency bound: a Stop set before Run is entered is honoured
// before any instruction retires; a Stop set while Run is executing is
// honoured after at most 4096 further instructions (the next poll
// boundary).  TestRunStopLatency pins both halves of the bound.
func (m *Machine) Run(budget uint64) RunResult {
	if m.Stop != nil && m.Stop.Load() {
		return RunResult{Reason: StopTrap,
			Trap: &Trap{Kind: TrapKilled, PC: m.PC, Msg: "killed by harness"}}
	}
	for {
		if budget != 0 && m.Instrs >= budget {
			return RunResult{Reason: StopBudget}
		}
		if m.Stop != nil && m.Instrs&4095 == 0 && m.Stop.Load() {
			return RunResult{Reason: StopTrap,
				Trap: &Trap{Kind: TrapKilled, PC: m.PC, Msg: "killed by harness"}}
		}
		if m.TriggerAt != 0 && m.Instrs >= m.TriggerAt {
			fn := m.TriggerFn
			m.TriggerAt = 0
			m.TriggerFn = nil
			if fn != nil {
				fn(m)
				// fn may have corrupted SP (register-fault injection);
				// probe MinSP here so both execution tiers observe the
				// corrupted value even if the next instruction
				// overwrites it.
				m.updateMinSP()
			}
			continue // fn may re-arm the trigger or alter state; recompute
		}

		// Next event boundary: run branch-light until Instrs reaches it.
		limit := uint64(math.MaxUint64)
		if budget != 0 {
			limit = budget
		}
		if m.TriggerAt != 0 && m.TriggerAt < limit {
			limit = m.TriggerAt
		}
		if m.Stop != nil {
			if poll := (m.Instrs | 4095) + 1; poll < limit {
				limit = poll
			}
		}
		if m.sbProg != nil && m.pre != nil {
			if t := m.runBlocks(limit); t != nil {
				return RunResult{Reason: StopTrap, Trap: t}
			}
			continue
		}
		for m.Instrs < limit {
			if t := m.Step(); t != nil {
				return RunResult{Reason: StopTrap, Trap: t}
			}
		}
	}
}

// segFor returns the segment containing addr, or nil.
func (m *Machine) segFor(addr uint32) *segment {
	// Ordered roughly by access frequency.
	switch {
	case m.stack.contains(addr):
		return &m.stack
	case m.heap.contains(addr):
		return &m.heap
	case m.data.contains(addr):
		return &m.data
	case m.bss.contains(addr):
		return &m.bss
	case m.text.contains(addr):
		return &m.text
	}
	return nil
}

func (m *Machine) segv(addr uint32) *Trap {
	return &Trap{Kind: TrapSegv, PC: m.PC, Addr: addr}
}

// span returns a slice covering [addr, addr+n) if it lies in one segment.
// Read spans are read-only views (possibly of shared image or zero
// storage); write spans always refer to the machine's private storage.
func (m *Machine) span(addr uint32, n int, write bool) ([]byte, *Trap) {
	s := m.segFor(addr)
	if s == nil {
		return nil, m.segv(addr)
	}
	if write && !s.writable {
		return nil, m.segv(addr)
	}
	off := addr - s.base
	if int(off)+n > int(s.length) {
		return nil, m.segv(addr)
	}
	if write {
		return s.mutable(off, n), nil
	}
	return s.view(off, n), nil
}

// loadFast returns the backing bytes for an n-byte read at addr when it
// lands wholly inside the backed prefix of the segment the last slow
// load resolved to; any miss (other segment, unbacked or partially
// backed range, wrapped offset) returns nil and the caller walks the
// slow path, which refreshes the cache.  Reading a shared backing is
// fine — only writes must copy first.
func (m *Machine) loadFast(addr uint32, n int) []byte {
	if s := m.loadSeg; s != nil {
		if off := addr - s.base; uint64(off)+uint64(n) <= uint64(len(s.bytes)) {
			return s.bytes[off : int(off)+n]
		}
	}
	return nil
}

// storeFast is loadFast for writes: additionally the segment must be
// writable and privately backed (a shared backing aliases a snapshot or
// the image and must be copied by the slow path first).
func (m *Machine) storeFast(addr uint32, n int) []byte {
	if s := m.storeSeg; s != nil && s.writable && !s.shared {
		if off := addr - s.base; uint64(off)+uint64(n) <= uint64(len(s.bytes)) {
			return s.bytes[off : int(off)+n]
		}
	}
	return nil
}

// loadSpan is the slow read path: a full span walk plus cache refresh.
func (m *Machine) loadSpan(addr uint32, n int) ([]byte, *Trap) {
	b, t := m.span(addr, n, false)
	if t == nil {
		m.loadSeg = m.segFor(addr)
	}
	return b, t
}

// storeSpan is the slow write path: a full span walk plus cache refresh.
func (m *Machine) storeSpan(addr uint32, n int) ([]byte, *Trap) {
	b, t := m.span(addr, n, true)
	if t == nil {
		m.storeSeg = m.segFor(addr)
	}
	return b, t
}

// Load32 reads a 32-bit little-endian word.
func (m *Machine) Load32(addr uint32) (uint32, *Trap) {
	b := m.loadFast(addr, 4)
	if b == nil {
		var t *Trap
		if b, t = m.loadSpan(addr, 4); t != nil {
			return 0, t
		}
	}
	if m.Tracer != nil {
		m.Tracer.Load(addr, 4)
	}
	return binary.LittleEndian.Uint32(b), nil
}

// Store32 writes a 32-bit little-endian word.
func (m *Machine) Store32(addr, v uint32) *Trap {
	b := m.storeFast(addr, 4)
	if b == nil {
		var t *Trap
		if b, t = m.storeSpan(addr, 4); t != nil {
			return t
		}
	}
	if m.Tracer != nil {
		m.Tracer.Store(addr, 4)
	}
	binary.LittleEndian.PutUint32(b, v)
	return nil
}

// Load8 reads one byte.
func (m *Machine) Load8(addr uint32) (byte, *Trap) {
	b, t := m.span(addr, 1, false)
	if t != nil {
		return 0, t
	}
	if m.Tracer != nil {
		m.Tracer.Load(addr, 1)
	}
	return b[0], nil
}

// Store8 writes one byte.
func (m *Machine) Store8(addr uint32, v byte) *Trap {
	b, t := m.span(addr, 1, true)
	if t != nil {
		return t
	}
	if m.Tracer != nil {
		m.Tracer.Store(addr, 1)
	}
	b[0] = v
	return nil
}

// LoadF64 reads a float64.
func (m *Machine) LoadF64(addr uint32) (float64, *Trap) {
	b := m.loadFast(addr, 8)
	if b == nil {
		var t *Trap
		if b, t = m.loadSpan(addr, 8); t != nil {
			return 0, t
		}
	}
	if m.Tracer != nil {
		m.Tracer.Load(addr, 8)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// StoreF64 writes a float64.
func (m *Machine) StoreF64(addr uint32, v float64) *Trap {
	b := m.storeFast(addr, 8)
	if b == nil {
		var t *Trap
		if b, t = m.storeSpan(addr, 8); t != nil {
			return t
		}
	}
	if m.Tracer != nil {
		m.Tracer.Store(addr, 8)
	}
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return nil
}

// ReadBytes copies n bytes starting at addr (crossing segments is an error).
func (m *Machine) ReadBytes(addr uint32, n int) ([]byte, *Trap) {
	b, t := m.span(addr, n, false)
	if t != nil {
		return nil, t
	}
	if m.Tracer != nil {
		m.Tracer.Load(addr, n)
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// WriteBytes copies data into guest memory at addr.
func (m *Machine) WriteBytes(addr uint32, data []byte) *Trap {
	b, t := m.span(addr, len(data), true)
	if t != nil {
		return t
	}
	if m.Tracer != nil {
		m.Tracer.Store(addr, len(data))
	}
	copy(b, data)
	return nil
}

// RawRead reads guest memory ignoring permissions; it is the fault
// injector's view (ptrace PEEKDATA analogue).  ok is false if the range is
// unmapped.
func (m *Machine) RawRead(addr uint32, n int) ([]byte, bool) {
	s := m.segFor(addr)
	if s == nil {
		return nil, false
	}
	off := addr - s.base
	if int(off)+n > int(s.length) {
		return nil, false
	}
	out := make([]byte, n)
	if int(off) < len(s.bytes) {
		copy(out, s.bytes[off:]) // any unbacked tail stays zero
	}
	return out, true
}

// RawWrite writes guest memory ignoring permissions (ptrace POKEDATA
// analogue); the fault injector uses it to corrupt even read-only text.
// A write into text additionally invalidates the predecode slots covering
// it, so the corrupted bytes are decoded afresh at their next fetch.
func (m *Machine) RawWrite(addr uint32, data []byte) bool {
	s := m.segFor(addr)
	if s == nil {
		return false
	}
	off := addr - s.base
	if int(off)+len(data) > int(s.length) {
		return false
	}
	copy(s.mutable(off, len(data)), data)
	if s == &m.text {
		m.markTextDirty(off, len(data))
	}
	return true
}

// SegmentRange returns [base, end) of the named segment for injector
// targeting.  Valid names: text, data, bss, heap, stack.
func (m *Machine) SegmentRange(name string) (uint32, uint32, bool) {
	var s *segment
	switch name {
	case "text":
		s = &m.text
	case "data":
		s = &m.data
	case "bss":
		s = &m.bss
	case "heap":
		s = &m.heap
	case "stack":
		s = &m.stack
	default:
		return 0, 0, false
	}
	return s.base, s.base + s.length, true
}

// Arg returns syscall argument i under the ABI convention (r0-r3, then the
// guest stack).
func (m *Machine) Arg(i int) (uint32, *Trap) {
	if i < 4 {
		return m.Regs[i], nil
	}
	return m.Load32(m.Regs[isa.SP] + uint32(4*(i-4)))
}
