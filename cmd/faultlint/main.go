// Command faultlint runs every static pass in internal/analysis over
// the guest applications and reports what it finds: CFG defects
// (undecodable opcodes, branches into the middle of instructions,
// control falling off the end), ABI/stack-discipline violations,
// floating-point stack imbalance, register-liveness inconsistencies,
// dataflow/liveness disagreements, and — with -mpi — mismatches in the
// recorded point-to-point traffic.  It also prints the static AVF
// prediction table and the equivalence-partition summary: the per-region
// fault-sensitive fraction the analyzer forecasts, and how much of the
// injection space its def-use classes prove benign.
//
// With -equivalence it additionally runs fixed-seed validation
// campaigns per app and holds the partition to account: an annotated
// full campaign (register, data, BSS) where every provably-benign draw
// must classify Correct and same-class pilots must agree, an audit
// campaign sampling only provably-benign bits (all must be Correct),
// and a pruned campaign whose reweighted register rate must agree with
// the full campaign within the combined sampling error.  Any violation
// is an analyzer bug and a finding.
//
// Exit status: 0 clean, 1 findings (static or validation), 2
// operational error.
//
// Usage:
//
//	faultlint                      # all apps, static passes + tables
//	faultlint -app minimd -v       # one app, per-function statistics
//	faultlint -json                # machine-readable report on stdout
//	faultlint -mpi                 # also lint recorded MPI traffic
//	faultlint -profile             # measured denominators for the AVF table
//	faultlint -equivalence -eqn 64 # campaign-validate the static claims
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/image"
	"mpifault/internal/mpi"
	"mpifault/internal/profile"
	"mpifault/internal/sampling"
)

type options struct {
	withMPI, withProfile, verbose bool
	jsonOut                       bool
	equivalence                   bool
	eqn                           int
	eqseed                        uint64
}

func main() {
	app := flag.String("app", "", "lint a single application (default: all)")
	opts := options{}
	flag.BoolVar(&opts.withMPI, "mpi", false, "run the app once and lint its point-to-point traffic")
	flag.BoolVar(&opts.withProfile, "profile", false, "measure the app to refine the AVF denominators")
	flag.BoolVar(&opts.verbose, "v", false, "per-function liveness and ABI statistics")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit a machine-readable JSON report on stdout")
	flag.BoolVar(&opts.equivalence, "equivalence", false, "validate the equivalence partition with fixed-seed campaigns")
	flag.IntVar(&opts.eqn, "eqn", 48, "injections per region for -equivalence validation campaigns")
	flag.Uint64Var(&opts.eqseed, "eqseed", 1, "seed for -equivalence validation campaigns")
	flag.Parse()

	os.Exit(run(*app, opts, os.Stdout))
}

// run executes the lint over the selected apps and returns the process
// exit code: 0 clean, 1 findings, 2 operational error.
func run(app string, opts options, w io.Writer) int {
	var names []string
	if app != "" {
		names = []string{app}
	} else {
		for _, a := range apps.Registry() {
			names = append(names, a.Name)
		}
	}

	var reports []*appReport
	findings := false
	for _, name := range names {
		rep, err := lintApp(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultlint: %s: %v\n", name, err)
			return 2
		}
		if len(rep.Findings) > 0 || (rep.Validation != nil && len(rep.Validation.Findings) > 0) {
			findings = true
		}
		reports = append(reports, rep)
	}

	if opts.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "faultlint: %v\n", err)
			return 2
		}
	} else {
		for _, rep := range reports {
			rep.write(w, opts.verbose)
		}
	}
	if findings {
		return 1
	}
	return 0
}

// appReport is one application's full lint result — also the -json
// serialization, so everything in it is deterministic: findings are
// stable-sorted and all table quantities are integers.
type appReport struct {
	App        string                `json:"app"`
	Functions  int                   `json:"functions"`
	Reachable  int                   `json:"reachable"`
	Findings   []findingJSON         `json:"findings"`
	AVF        []avfRowJSON          `json:"avf"`
	Equiv      analysis.EquivSummary `json:"equivalence"`
	MPI        *mpiJSON              `json:"mpi,omitempty"`
	Validation *validationReport     `json:"validation,omitempty"`

	// unserialized internals for the human report
	avf      *analysis.AVFReport
	eq       *analysis.Equivalence
	live     *analysis.Liveness
	prog     *analysis.Program
	abiStats map[string]analysis.ABIStats
}

type findingJSON struct {
	Pass string `json:"pass"`
	Func string `json:"func,omitempty"`
	Addr uint32 `json:"addr,omitempty"`
	Msg  string `json:"msg"`
}

type avfRowJSON struct {
	Region    string `json:"region"`
	Sensitive uint64 `json:"sensitive"`
	Total     uint64 `json:"total"`
}

type mpiJSON struct {
	Ops     int `json:"ops"`
	Matched int `json:"matched"`
}

// validationReport is the -equivalence campaign evidence.
type validationReport struct {
	Injections int      `json:"injections"`
	Seed       uint64   `json:"seed"`
	Findings   []string `json:"findings"`
	// FullRegRatePct / PrunedRegRatePct: the register-region error rate
	// of the annotated full campaign and the reweighted rate of the
	// pruned campaign; AgreementBoundPct is the combined sampling error
	// the two may differ by (using Kish's effective n for the pruned
	// side).
	FullRegRatePct    float64 `json:"full_reg_rate_pct"`
	PrunedRegRatePct  float64 `json:"pruned_reg_rate_pct"`
	AgreementBoundPct float64 `json:"agreement_bound_pct"`
	EffectiveN        float64 `json:"effective_n"`
}

// lintApp runs all passes (and optionally the validation campaigns)
// over one app.
func lintApp(name string, opts options) (*appReport, error) {
	a, err := apps.Get(name)
	if err != nil {
		return nil, err
	}
	im, err := a.Build(a.Default)
	if err != nil {
		return nil, err
	}

	prog, err := analysis.Analyze(im)
	if err != nil {
		return nil, err
	}
	live := analysis.ComputeLiveness(prog)
	abiFindings, abiStats := analysis.ABICheck(prog)
	flow := analysis.ComputeDataflow(prog, live)
	eq := analysis.ComputeEquivalence(prog, live, flow, abiStats)

	findings := append([]analysis.Finding(nil), prog.Findings...)
	findings = append(findings, live.Findings...)
	findings = append(findings, abiFindings...)
	findings = append(findings, flow.Findings...)

	rep := &appReport{
		App:       name,
		Functions: len(prog.Funcs),
		Equiv:     eq.Summary,
		avf:       nil,
		eq:        eq,
		live:      live,
		prog:      prog,
		abiStats:  abiStats,
	}
	for _, f := range prog.Funcs {
		if f.Reachable {
			rep.Reachable++
		}
	}

	if opts.withMPI {
		res := analysis.MPILint(im, a.Default.Ranks, mpi.Config{}, 0, 30*time.Second)
		findings = append(findings, res.Findings...)
		rep.MPI = &mpiJSON{Ops: res.Ops, Matched: res.Matched}
	}

	var prof *profile.Profile
	if opts.withProfile {
		if prof, err = profile.Measure(name, im, a.Default.Ranks, mpi.Config{}); err != nil {
			return nil, fmt.Errorf("profile: %v", err)
		}
	}

	// Stable order so -json goldens and CI diffs are deterministic.
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].Pass != findings[j].Pass {
			return findings[i].Pass < findings[j].Pass
		}
		if findings[i].Func != findings[j].Func {
			return findings[i].Func < findings[j].Func
		}
		if findings[i].Addr != findings[j].Addr {
			return findings[i].Addr < findings[j].Addr
		}
		return findings[i].Msg < findings[j].Msg
	})
	for _, f := range findings {
		rep.Findings = append(rep.Findings, findingJSON{Pass: f.Pass, Func: f.Func, Addr: f.Addr, Msg: f.Msg})
	}

	rep.avf = analysis.EstimateAVF(prog, live, abiStats, prof)
	rep.avf.App = name
	for _, r := range rep.avf.Rows {
		rep.AVF = append(rep.AVF, avfRowJSON{Region: r.Region, Sensitive: r.Sensitive, Total: r.Total})
	}

	if opts.equivalence {
		val, err := validateApp(im, a.Default.Ranks, eq, opts)
		if err != nil {
			return nil, fmt.Errorf("equivalence validation: %v", err)
		}
		rep.Validation = val
	}
	return rep, nil
}

// validateApp runs the fixed-seed validation campaigns and checks every
// static claim against their outcomes.
func validateApp(im *image.Image, ranks int, eq *analysis.Equivalence, opts options) (*validationReport, error) {
	val := &validationReport{Injections: opts.eqn, Seed: opts.eqseed}

	base := core.Config{
		Image:           im,
		Ranks:           ranks,
		Injections:      opts.eqn,
		Seed:            opts.eqseed,
		KeepExperiments: true,
		Equivalence:     eq,
	}

	// Annotated full campaign over the regions the partition makes
	// claims about: the ground truth.
	full := base
	full.EquivalencePolicy = core.EquivAnnotate
	full.Regions = []core.Region{core.RegionRegularReg, core.RegionData, core.RegionBSS}
	fullRes, err := core.Run(full)
	if err != nil {
		return nil, err
	}

	// Audit campaign: sample only provably-benign register bits.
	audit := base
	audit.EquivalencePolicy = core.EquivAudit
	audit.Regions = []core.Region{core.RegionRegularReg}
	auditRes, err := core.Run(audit)
	if err != nil {
		return nil, err
	}

	// Pruned campaign: the accelerator whose reweighted rate must match.
	prune := base
	prune.EquivalencePolicy = core.EquivPrune
	prune.Regions = []core.Region{core.RegionRegularReg}
	pruneRes, err := core.Run(prune)
	if err != nil {
		return nil, err
	}

	var exps []core.Experiment
	exps = append(exps, fullRes.Experiments...)
	exps = append(exps, auditRes.Experiments...)
	exps = append(exps, pruneRes.Experiments...)
	for _, f := range core.ValidateEquivalence(eq, exps) {
		val.Findings = append(val.Findings, f.String())
	}

	// Rate agreement: annotated-full vs pruned-reweighted register rate,
	// within the combined sampling error of the two estimates.
	fullTally, _ := fullRes.Tally(core.RegionRegularReg)
	val.FullRegRatePct = fullTally.ErrorRate()
	weighted := core.ReweightTallies([]core.Region{core.RegionRegularReg}, pruneRes.Experiments)
	val.PrunedRegRatePct = weighted[0].ErrorRate()

	var wts []float64
	for i := range pruneRes.Experiments {
		e := &pruneRes.Experiments[i]
		if e.Region == core.RegionRegularReg {
			wts = append(wts, float64(core.RegisterSpaceBits-e.BenignBits)/float64(core.RegisterSpaceBits))
		}
	}
	neff, err := sampling.EffectiveSampleSize(wts)
	if err != nil {
		return nil, err
	}
	val.EffectiveN = neff
	bound, err := sampling.DifferenceBound(0.95, fullTally.Executions, int(neff))
	if err != nil {
		return nil, err
	}
	val.AgreementBoundPct = 100 * bound
	if diff := val.FullRegRatePct - val.PrunedRegRatePct; diff > val.AgreementBoundPct || -diff > val.AgreementBoundPct {
		val.Findings = append(val.Findings, fmt.Sprintf(
			"rate-disagreement: full %.1f%% vs pruned-reweighted %.1f%% exceeds the %.1f%% sampling bound (n=%d, n_eff=%.0f)",
			val.FullRegRatePct, val.PrunedRegRatePct, val.AgreementBoundPct, fullTally.Executions, neff))
	}
	return val, nil
}

// write renders the human report for one app.
func (rep *appReport) write(w io.Writer, verbose bool) {
	if rep.MPI != nil {
		fmt.Fprintf(w, "%s: mpi traffic: %d ops, %d pairs matched\n", rep.App, rep.MPI.Ops, rep.MPI.Matched)
	}
	fmt.Fprintf(w, "%s: %d functions (%d reachable), %d findings\n",
		rep.App, rep.Functions, rep.Reachable, len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Fprintf(w, "  %s\n", analysis.Finding{Pass: f.Pass, Func: f.Func, Addr: f.Addr, Msg: f.Msg})
	}

	if verbose {
		for _, f := range rep.prog.Funcs {
			if !f.Reachable {
				fmt.Fprintf(w, "  %-24s unreachable\n", f.Sym.Name)
				continue
			}
			st := rep.abiStats[f.Sym.Name]
			frame := "leaf"
			if st.HasFrame {
				frame = "framed"
			}
			use, _ := rep.live.FuncEntryUse(f.Sym.Name)
			fmt.Fprintf(w, "  %-24s %3d instrs, %2d blocks, %s, %d stack words, entry uses %s\n",
				f.Sym.Name, len(f.Instrs), len(f.Blocks), frame,
				st.MaxDepthWords, use)
		}
	}

	fmt.Fprintf(w, "%s: static fault-sensitivity prediction:\n", rep.App)
	rep.avf.WriteAVF(w, nil)
	fmt.Fprintf(w, "%s: equivalence partition:\n", rep.App)
	rep.eq.WriteReport(w)

	if v := rep.Validation; v != nil {
		fmt.Fprintf(w, "%s: validation (n=%d per region, seed %d): full reg %.1f%% vs pruned-reweighted %.1f%% (bound %.1f%%, n_eff %.0f), %d findings\n",
			rep.App, v.Injections, v.Seed, v.FullRegRatePct, v.PrunedRegRatePct,
			v.AgreementBoundPct, v.EffectiveN, len(v.Findings))
		for _, f := range v.Findings {
			fmt.Fprintf(w, "  %s\n", f)
		}
	}
	fmt.Fprintln(w)
}
