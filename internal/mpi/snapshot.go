package mpi

import (
	"encoding/binary"
	"sort"
	"sync"
)

// This file implements the two MPI-side halves of cluster checkpointing:
//
//   - CausalityRecorder observes every Channel-level delivery during a
//     recording run (the golden run) and remembers, for each message, the
//     sender's and receiver's retired-instruction counts.  The campaign
//     planner uses those events to compute *consistent* cut vectors: a
//     set of per-rank instruction counts at which pausing every rank
//     never captures a receive whose matching send has not happened.
//
//   - ProcSnapshot captures one rank's complete runtime state (unexpected
//     queue, request table, pending operations, communicators, counters,
//     traffic stats) so a later job can resume the rank mid-stream.
//
// Neither is compatible with an external Transport: recording wraps
// packets with in-band metadata on the in-process queue path only, and a
// snapshot cannot capture bytes buffered in an external medium.

// Event records one Channel-level message delivery: rank Src enqueued it
// while executing its SrcInstr-th instruction, and rank Dst consumed it
// while executing its DstInstr-th instruction.
type Event struct {
	Src, Dst           int
	SrcInstr, DstInstr uint64
}

// CausalityRecorder collects message events during a recording run.
// Attach with World.SetRecorder before any rank starts.
type CausalityRecorder struct {
	mu     sync.Mutex
	events []Event
}

// NewCausalityRecorder returns an empty recorder.
func NewCausalityRecorder() *CausalityRecorder { return &CausalityRecorder{} }

// Events returns a copy of the recorded events.  Call after the job's
// goroutines are joined.
func (c *CausalityRecorder) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// causalPrefix is the in-band metadata prepended to each raw packet on
// the in-process queue while recording: [u32 src rank][u64 src instrs].
// Riding in-band preserves the queue's FIFO pairing exactly; an
// out-of-band side channel could attribute a send to the wrong pull.
const causalPrefix = 12

// wrap prepends the sender metadata.  Called from the sender's goroutine.
func (c *CausalityRecorder) wrap(src int, srcInstr uint64, raw []byte) []byte {
	b := make([]byte, causalPrefix+len(raw))
	binary.LittleEndian.PutUint32(b, uint32(src))
	binary.LittleEndian.PutUint64(b[4:], srcInstr)
	copy(b[causalPrefix:], raw)
	return b
}

// strip removes the metadata, recording the completed event.  Called from
// the receiver's goroutine.
func (c *CausalityRecorder) strip(raw []byte, dst int, dstInstr uint64) []byte {
	if len(raw) < causalPrefix {
		return raw
	}
	e := Event{
		Src:      int(binary.LittleEndian.Uint32(raw)),
		SrcInstr: binary.LittleEndian.Uint64(raw[4:]),
		Dst:      dst,
		DstInstr: dstInstr,
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
	return raw[causalPrefix:]
}

// SetRecorder attaches a causality recorder to the world.  Call before
// any rank starts executing; not supported together with an external
// Transport.
func (w *World) SetRecorder(rec *CausalityRecorder) { w.rec = rec }

// CtxCounter returns the world's communicator-context allocation counter.
func (w *World) CtxCounter() int64 { return w.ctxCounter.Load() }

// SetCtxCounter restores the context allocation counter from a snapshot.
func (w *World) SetCtxCounter(v int64) { w.ctxCounter.Store(v) }

// DrainQueue returns copies of the raw packets parked in rank r's Channel
// queue, in FIFO order, leaving the queue intact.  The world must be
// quiescent (every rank parked or finished).
func (w *World) DrainQueue(r int) [][]byte {
	p := w.procs[r]
	n := len(p.in)
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		raw := <-p.in
		out = append(out, append([]byte(nil), raw...))
		p.in <- raw
	}
	return out
}

// Prefill enqueues snapshot packets into rank r's Channel queue before
// the job starts.  Each packet is deep-copied: receive-side injection
// hooks mutate raw bytes in place, and concurrent jobs restored from one
// snapshot must never alias each other's queue contents.  The world's
// QueueDepth must have headroom for the prefill (Config.WithQueueHeadroom).
func (w *World) Prefill(r int, raws [][]byte) {
	p := w.procs[r]
	for _, raw := range raws {
		w.inflight.Add(1)
		p.in <- append([]byte(nil), raw...)
	}
}

// WithQueueHeadroom returns the config with defaults applied and the
// queue depth enlarged by n packets — room for snapshot prefill, or for
// a checkpoint run in which paused receivers must not block senders.
func (c Config) WithQueueHeadroom(n int) Config {
	c.fill()
	c.QueueDepth += n
	return c
}

// storedSnap is a parked unexpected-queue entry in a snapshot.  The
// payload bytes (if any) live in the guest heap and are covered by the VM
// snapshot; only the host-side bookkeeping is recorded here.
type storedSnap struct {
	pkt               Packet // deep copy; Payload owned by the snapshot
	heapAddr, heapLen uint32
}

// reqSnap is one request-table entry in a snapshot, keyed by guest
// handle id.  The communicator pointer is recorded as its handle
// (-1 for internal transfers) and rebound on restore.
type reqSnap struct {
	id                   int32
	send, done           bool
	buf, limit           uint32
	dtype, src, tag, ctx int32
	status               uint32
	rdvActive            bool
	rdvSeq               uint32
	hostMode             bool
	hostPayload          []byte
	commHandle           int32
	resSrc, resTag       int32
	resLen               uint32
	payload              []byte
	dst                  int32
	seq                  uint32
}

// commSnap is one communicator-table entry in a snapshot.
type commSnap struct {
	handle, ctx int32
	group       []int32
	myRank      int32
}

// ProcSnapshot is one rank's complete MPI runtime state at a checkpoint.
type ProcSnapshot struct {
	unexpected   []storedSnap
	requests     []reqSnap // ascending id
	pendingRecvs []int32   // request ids, posting order
	pendingSends []int32
	nextSeq      uint32
	barrierEpoch uint32
	nextReq      int32
	comms        []commSnap // ascending handle
	nextComm     int32
	errhandler   uint32
	inited       bool
	finalized    bool
	stats        Stats
}

// Stats returns the rank's Channel-layer traffic counters at the capture
// point.
func (ps *ProcSnapshot) Stats() Stats { return ps.stats }

// RecvBytes returns total Channel bytes received at the capture point —
// the message-region injection clock.
func (ps *ProcSnapshot) RecvBytes() uint64 { return ps.stats.TotalBytes() }

func copyPacket(p *Packet) Packet {
	cp := *p
	if p.Payload != nil {
		cp.Payload = append([]byte(nil), p.Payload...)
	}
	return cp
}

// Snapshot captures the rank's runtime state.  The rank's goroutine must
// be quiescent.
func (p *Proc) Snapshot() *ProcSnapshot {
	ps := &ProcSnapshot{
		nextSeq:      p.nextSeq,
		barrierEpoch: p.barrierEpoch,
		nextReq:      p.nextReq,
		nextComm:     p.nextComm,
		errhandler:   p.errhandler,
		inited:       p.inited,
		finalized:    p.finalized,
		stats:        p.Stats,
	}
	for _, s := range p.unexpected {
		ps.unexpected = append(ps.unexpected, storedSnap{
			pkt: copyPacket(s.pkt), heapAddr: s.heapAddr, heapLen: s.heapLen,
		})
	}
	ids := make([]int32, 0, len(p.requests))
	for id := range p.requests {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := p.requests[id]
		rs := reqSnap{
			id: r.id, send: r.send, done: r.done,
			buf: r.buf, limit: r.limit,
			dtype: r.dtype, src: r.src, tag: r.tag, ctx: r.ctx,
			status:    r.status,
			rdvActive: r.rdvActive, rdvSeq: r.rdvSeq,
			hostMode:   r.hostMode,
			commHandle: -1,
			resSrc:     r.resSrc, resTag: r.resTag, resLen: r.resLen,
			dst: r.dst, seq: r.seq,
		}
		if r.ci != nil {
			rs.commHandle = r.ci.handle
		}
		if r.hostPayload != nil {
			rs.hostPayload = append([]byte(nil), r.hostPayload...)
		}
		if r.payload != nil {
			rs.payload = append([]byte(nil), r.payload...)
		}
		ps.requests = append(ps.requests, rs)
	}
	for _, r := range p.pendingRecvs {
		ps.pendingRecvs = append(ps.pendingRecvs, r.id)
	}
	for _, r := range p.pendingSends {
		ps.pendingSends = append(ps.pendingSends, r.id)
	}
	handles := make([]int32, 0, len(p.comms))
	for h := range p.comms {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	for _, h := range handles {
		ci := p.comms[h]
		ps.comms = append(ps.comms, commSnap{
			handle: ci.handle, ctx: ci.ctx,
			group: append([]int32(nil), ci.group...), myRank: ci.myRank,
		})
	}
	return ps
}

// Restore rebuilds the rank's runtime state from a snapshot.  Call on a
// freshly constructed world before the rank starts executing.  The
// snapshot itself is never mutated and may restore any number of
// concurrent worlds.
func (p *Proc) Restore(ps *ProcSnapshot) {
	p.nextSeq = ps.nextSeq
	p.barrierEpoch = ps.barrierEpoch
	p.nextReq = ps.nextReq
	p.nextComm = ps.nextComm
	p.errhandler = ps.errhandler
	p.inited = ps.inited
	p.finalized = ps.finalized
	p.Stats = ps.stats

	p.unexpected = nil
	for i := range ps.unexpected {
		sn := &ps.unexpected[i]
		pkt := copyPacket(&sn.pkt)
		p.unexpected = append(p.unexpected, &stored{
			pkt: &pkt, heapAddr: sn.heapAddr, heapLen: sn.heapLen,
		})
	}

	p.comms = make(map[int32]*commInfo, len(ps.comms))
	for _, cs := range ps.comms {
		p.comms[cs.handle] = &commInfo{
			handle: cs.handle, ctx: cs.ctx,
			group: append([]int32(nil), cs.group...), myRank: cs.myRank,
		}
	}

	p.requests = make(map[int32]*Request, len(ps.requests))
	for i := range ps.requests {
		rs := &ps.requests[i]
		r := &Request{
			id: rs.id, send: rs.send, done: rs.done,
			buf: rs.buf, limit: rs.limit,
			dtype: rs.dtype, src: rs.src, tag: rs.tag, ctx: rs.ctx,
			status:    rs.status,
			rdvActive: rs.rdvActive, rdvSeq: rs.rdvSeq,
			hostMode: rs.hostMode,
			resSrc:   rs.resSrc, resTag: rs.resTag, resLen: rs.resLen,
			dst: rs.dst, seq: rs.seq,
		}
		if rs.commHandle >= 0 {
			r.ci = p.comms[rs.commHandle]
		}
		if rs.hostPayload != nil {
			r.hostPayload = append([]byte(nil), rs.hostPayload...)
		}
		if rs.payload != nil {
			r.payload = append([]byte(nil), rs.payload...)
		}
		p.requests[r.id] = r
	}

	p.pendingRecvs = nil
	for _, id := range ps.pendingRecvs {
		p.pendingRecvs = append(p.pendingRecvs, p.requests[id])
	}
	p.pendingSends = nil
	for _, id := range ps.pendingSends {
		p.pendingSends = append(p.pendingSends, p.requests[id])
	}
}
