// Package guest provides the guest-side runtime libraries that every
// workload links against: a small libc (memory, console, abort) and the
// MPI library stubs.
//
// The MPI stubs live in a module flagged image.OwnerMPI.  Their text,
// data and BSS symbols are therefore excluded from the fault injector's
// dictionary, reproducing the paper's separation between user-application
// and MPI-library memory (§3.2).  The libc is part of the application, as
// a statically linked C library would be.
package guest

import (
	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// mpiStub emits one MPI wrapper function: it marshals its C-convention
// stack arguments into the syscall ABI (r0-r3 plus pushed extras) and
// issues the SYS instruction.  This is the analogue of the paper's PMPI
// wrapper functions — the seam between application and library.
func mpiStub(m *asm.Module, name string, sysnum int32, nargs int) {
	f := m.Func(name)
	extras := nargs - 4
	if extras < 0 {
		extras = 0
	}
	// Push arguments 5..nargs in reverse so argument 5 ends at [sp].
	// While k pushes have been done, caller argument i (0-based) sits at
	// [sp + 4 + 4i + 4k] (the +4 skips the return address).
	k := int32(0)
	for i := nargs - 1; i >= 4; i-- {
		f.Ld(isa.R4, isa.SP, 4+4*int32(i)+4*k)
		f.Push(isa.R4)
		k++
	}
	for j := 0; j < 4 && j < nargs; j++ {
		f.Ld(j, isa.SP, 4+4*int32(j)+4*k)
	}
	// Track library-internal state so the MPI module owns live data; the
	// fault dictionary must have something real to exclude.
	f.LdSym(isa.R4, "__mpi_calls", 0)
	f.Addi(isa.R4, isa.R4, 1)
	f.StSym("__mpi_calls", 0, isa.R4)
	f.Sys(sysnum)
	if extras > 0 {
		f.Addi(isa.SP, isa.SP, 4*int32(extras))
	}
	f.Ret()
}

// AddLibMPI adds the guest MPI library module to the builder.
func AddLibMPI(b *asm.Builder) *asm.Module {
	m := b.Module("libmpi", image.OwnerMPI)

	// Library-internal state (MPI-owned data/BSS, excluded from user
	// injection just like MPICH's own globals).
	m.DataI32("__mpi_state", 0)
	m.BSS("__mpi_calls", 4)
	m.BSS("__mpi_scratch", 64)

	mpiStub(m, "MPI_Init", abi.SysMPIInit, 0)
	mpiStub(m, "MPI_Finalize", abi.SysMPIFinalize, 0)
	mpiStub(m, "MPI_Comm_rank", abi.SysMPICommRank, 1)
	mpiStub(m, "MPI_Comm_size", abi.SysMPICommSize, 1)
	mpiStub(m, "MPI_Send", abi.SysMPISend, 6)
	mpiStub(m, "MPI_Recv", abi.SysMPIRecv, 7)
	mpiStub(m, "MPI_Barrier", abi.SysMPIBarrier, 1)
	mpiStub(m, "MPI_Bcast", abi.SysMPIBcast, 5)
	mpiStub(m, "MPI_Reduce", abi.SysMPIReduce, 7)
	mpiStub(m, "MPI_Allreduce", abi.SysMPIAllreduce, 6)
	mpiStub(m, "MPI_Gather", abi.SysMPIGather, 6)
	mpiStub(m, "MPI_Allgather", abi.SysMPIAllgather, 5)
	mpiStub(m, "MPI_Scatter", abi.SysMPIScatter, 6)
	mpiStub(m, "MPI_Alltoall", abi.SysMPIAlltoall, 5)
	mpiStub(m, "MPI_Errhandler_set", abi.SysMPIErrhandlerSet, 2)
	mpiStub(m, "MPI_Wtime", abi.SysMPIWtime, 1)
	mpiStub(m, "MPI_Isend", abi.SysMPIIsend, 7)
	mpiStub(m, "MPI_Irecv", abi.SysMPIIrecv, 7)
	mpiStub(m, "MPI_Wait", abi.SysMPIWait, 2)
	mpiStub(m, "MPI_Waitall", abi.SysMPIWaitall, 3)
	mpiStub(m, "MPI_Sendrecv", abi.SysMPISendrecv, 11)
	mpiStub(m, "MPI_Comm_split", abi.SysMPICommSplit, 4)
	mpiStub(m, "MPI_Comm_dup", abi.SysMPICommDup, 2)

	return m
}
