// Package progress implements the practical hang-detection mechanism §7
// of the paper proposes: "simple progress metrics (e.g., FLOPS, messages
// per second or loop iterations per minute) can provide some practical
// detection mechanisms.  If the application's performance drops below a
// user-defined threshold, it is very likely that the code is in a
// non-terminating mode."
//
// The Monitor samples a monotone progress counter (the cluster wires it
// to Channel-level message deliveries — "messages per second"), learns a
// baseline rate over the first few windows, and reports a stall when the
// observed rate falls below a configured fraction of that baseline for
// several consecutive windows.
package progress

import (
	"time"

	"mpifault/internal/telemetry"
)

// Config tunes the detector.
type Config struct {
	// Window is the sampling period.  Default 5ms (scaled-down from the
	// paper's minutes-scale suggestion to our milliseconds-scale runs).
	Window time.Duration
	// BaselineWindows is how many initial windows establish the expected
	// rate.  Default 4.
	BaselineWindows int
	// Threshold is the fraction of the baseline rate below which a
	// window counts as stalled.  Default 0.02.
	Threshold float64
	// Consecutive is how many stalled windows trigger the verdict.
	// Default 3.
	Consecutive int
	// Ticks, when non-nil, replaces the wall-clock ticker: the monitor
	// takes one sample per value received, and Window is ignored.  This
	// is the injected clock — tests drive the monitor deterministically
	// through it instead of sleeping real time.
	Ticks <-chan time.Time
	// Metrics, when non-nil, exposes the monitor's live state as
	// telemetry gauges: the per-window rate, the learned baseline and
	// the consecutive stalled-window count, plus a counter of stall
	// verdicts.
	Metrics *telemetry.Registry
}

func (c *Config) fill() {
	if c.Window <= 0 {
		c.Window = 5 * time.Millisecond
	}
	if c.BaselineWindows <= 0 {
		c.BaselineWindows = 4
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.02
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 3
	}
}

// Monitor watches one monotone counter.
type Monitor struct {
	cfg    Config
	sample func() uint64
}

// NewMonitor builds a monitor over the given monotone counter.
func NewMonitor(cfg Config, sample func() uint64) *Monitor {
	cfg.fill()
	return &Monitor{cfg: cfg, sample: sample}
}

// Run watches until stop closes or a stall is detected; it returns true
// if a stall verdict was reached.  It is intended to run on its own
// goroutine.
func (m *Monitor) Run(stop <-chan struct{}) bool {
	ticks := m.cfg.Ticks
	if ticks == nil {
		tick := time.NewTicker(m.cfg.Window)
		defer tick.Stop()
		ticks = tick.C
	}
	// Nil-safe handles: with Metrics unset these are live but
	// unregistered, so the loop below is branch-free either way.
	var (
		rateG     = m.cfg.Metrics.Gauge(telemetry.MetricProgressRate)
		baseG     = m.cfg.Metrics.Gauge(telemetry.MetricProgressBaseline)
		stalledG  = m.cfg.Metrics.Gauge(telemetry.MetricProgressStalledWins)
		verdictsC = m.cfg.Metrics.Counter(telemetry.MetricProgressStallVerdicts)
	)

	var (
		last      = m.sample()
		baseline  float64
		nBaseline int
		stalled   int
	)
	for {
		select {
		case <-stop:
			return false
		case <-ticks:
			cur := m.sample()
			rate := float64(cur - last)
			last = cur
			rateG.Set(int64(rate))

			if nBaseline < m.cfg.BaselineWindows {
				// Learning phase: accumulate the expected per-window rate.
				baseline += rate
				nBaseline++
				baseG.Set(int64(baseline / float64(nBaseline)))
				continue
			}
			expected := baseline / float64(nBaseline)
			if expected <= 0 {
				// The application generated no progress events at all
				// during the learning phase; the metric is unusable.
				return false
			}
			if rate < m.cfg.Threshold*expected {
				stalled++
				stalledG.Set(int64(stalled))
				if stalled >= m.cfg.Consecutive {
					verdictsC.Inc()
					return true
				}
			} else {
				stalled = 0
				stalledG.Set(0)
			}
		}
	}
}
