package core

import (
	"mpifault/internal/classify"
	"mpifault/internal/cluster"
	"mpifault/internal/msgtrace"
	"mpifault/internal/vm"
)

// Forensics is the per-experiment flight record: what the injected
// rank was doing between the fault and its manifestation.  It captures
// the injection point on the instruction axis, the rank's terminal trap
// and retired-instruction count, and the last program counters the
// flight recorder saw.  Campaigns fill it only when Config.Forensics is
// set; a nil record means forensics were disabled (older journals
// deserialize that way too).
type Forensics struct {
	// InjectedAt is the retired-instruction index at which the fault was
	// applied on the target rank (Experiment.Trigger for instruction-
	// triggered regions).  Zero for message faults, whose trigger lives
	// on the received-byte axis.
	InjectedAt uint64 `json:"injected_at,omitempty"`
	// ManifestedAt is the target rank's retired-instruction count when
	// it stopped — at the trap for crashes, at teardown for hangs.
	ManifestedAt uint64 `json:"manifested_at,omitempty"`
	// Trap describes the rank's terminal trap (empty for a clean exit).
	TrapKind string `json:"trap,omitempty"`
	TrapPC   uint32 `json:"trap_pc,omitempty"`
	TrapAddr uint32 `json:"trap_addr,omitempty"`
	TrapMsg  string `json:"trap_msg,omitempty"`
	// BudgetExhausted marks a rank stopped by the livelock instruction
	// budget rather than a trap.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	// LastPCs are the most recently retired program counters on the
	// target rank, oldest first.
	LastPCs []uint32 `json:"last_pcs,omitempty"`
	// Divergence localizes the fault in the message stream: the first
	// digest at which the experiment departed from the golden trace.
	// Filled only when the campaign ran with Config.TraceDiff and the
	// outcome was Incorrect, Hang or Crash; it stays the last field so
	// PR-4-era journal lines (which predate it) re-marshal byte-
	// identically.
	Divergence *msgtrace.Divergence `json:"divergence,omitempty"`
}

// Latency returns the instruction count from injection to
// manifestation, when both ends are on the instruction axis.  This is
// the §5.2 crash-latency measurement: the paper observes that "most
// crashes occur within a few thousand instructions" of the injection.
func (f *Forensics) Latency() (uint64, bool) {
	if f == nil || f.InjectedAt == 0 || f.ManifestedAt < f.InjectedAt {
		return 0, false
	}
	return f.ManifestedAt - f.InjectedAt, true
}

// Divergence returns the experiment's trace-diff localization record,
// nil when the campaign ran without TraceDiff or no divergence was
// found.
func (e *Experiment) Divergence() *msgtrace.Divergence {
	if e.Forensics == nil {
		return nil
	}
	return e.Forensics.Divergence
}

// forensicsDepth is the flight-recorder ring size: enough PCs to see
// the final call chain without bloating journal lines.
const forensicsDepth = 64

// buildForensics assembles the flight record for the injected rank from
// the finished job.
func buildForensics(e *Experiment, rec *vm.FlightRecorder, res *cluster.Result) *Forensics {
	rr := res.Ranks[e.Rank]
	f := &Forensics{
		ManifestedAt:    rr.Instrs,
		BudgetExhausted: rr.Reason == vm.StopBudget,
		LastPCs:         rec.LastPCs(),
	}
	if e.Region != RegionMessage {
		f.InjectedAt = e.Trigger
	}
	if t := rr.Trap; t != nil && t.Kind != vm.TrapExit {
		f.TrapKind = t.Kind.String()
		f.TrapPC = t.PC
		f.TrapAddr = t.Addr
		f.TrapMsg = t.Msg
	}
	return f
}

// attachDivergence diffs a finished experiment's digest streams against
// the golden trace and attaches the first divergence for the outcomes
// where localization is meaningful: Incorrect (whose corruption the
// divergent payload hash pinpoints), Hang and Crash (whose truncated or
// departing streams name the rank that stopped conversing).  A fresh
// Forensics record is allocated when the campaign ran without the
// flight recorder.
func attachDivergence(e *Experiment, golden *msgtrace.Trace, observed *msgtrace.Trace) {
	switch e.Outcome {
	case classify.Incorrect, classify.Hang, classify.Crash:
	default:
		return
	}
	d := msgtrace.Diff(golden, observed)
	if d == nil {
		return
	}
	if e.Region != RegionMessage && d.Rank == e.Rank && d.Instrs >= e.Trigger {
		d.InstrsSinceInjection = d.Instrs - e.Trigger
	}
	if e.Forensics == nil {
		e.Forensics = &Forensics{}
	}
	e.Forensics.Divergence = d
}
