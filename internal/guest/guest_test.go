package guest

import (
	"strings"
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/cluster"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/vm"
)

// buildAndRun links libc+libmpi with a main emitted by body and runs it
// on `ranks` ranks.
func buildAndRun(t *testing.T, ranks int, body func(m *asm.Module, f *asm.Func)) *cluster.Result {
	t.Helper()
	b := asm.NewBuilder()
	AddLibc(b)
	AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	f.Prologue(0)
	body(m, f)
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return cluster.Run(cluster.Job{Image: im, Size: ranks, Budget: 20_000_000})
}

func TestMemcpyAndMemset(t *testing.T) {
	res := buildAndRun(t, 1, func(m *asm.Module, f *asm.Func) {
		m.DataString("src", "hello")
		m.BSS("dst", 8)
		f.CallArgs("memset", asm.Sym("dst"), asm.Imm('x'), asm.Imm(8))
		f.CallArgs("memcpy", asm.Sym("dst"), asm.Sym("src"), asm.Imm(5))
		f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("dst"), asm.Imm(8))
	})
	if got := string(res.Stdout[0]); got != "helloxxx" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestMemcpywWordCopy(t *testing.T) {
	res := buildAndRun(t, 1, func(m *asm.Module, f *asm.Func) {
		m.DataI32("src", 0x64636261, 0x68676665) // "abcdefgh"
		m.BSS("dst", 8)
		f.CallArgs("memcpyw", asm.Sym("dst"), asm.Sym("src"), asm.Imm(2))
		f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("dst"), asm.Imm(8))
	})
	if got := string(res.Stdout[0]); got != "abcdefgh" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestMallocFreeFromGuest(t *testing.T) {
	res := buildAndRun(t, 1, func(m *asm.Module, f *asm.Func) {
		m.BSS("p", 4)
		f.CallArgs("malloc", asm.Imm(128))
		f.StSym("p", 0, isa.R0)
		// Store and reload through the allocation.
		f.LdSym(isa.R1, "p", 0)
		f.Movi(isa.R2, 77)
		f.St(isa.R1, 0, isa.R2)
		f.Ld(isa.R3, isa.R1, 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R3))
		f.LdSym(isa.R1, "p", 0)
		f.CallArgs("free", asm.Reg(isa.R1))
	})
	if got := string(res.Stdout[0]); got != "77" {
		t.Fatalf("stdout = %q", got)
	}
	if res.Ranks[0].Trap.Kind != vm.TrapExit {
		t.Fatalf("trap = %v", res.Ranks[0].Trap)
	}
}

func TestPrintF64Precision(t *testing.T) {
	res := buildAndRun(t, 1, func(m *asm.Module, f *asm.Func) {
		m.DataF64("v", 3.14159265)
		f.CallArgs("print_f64", asm.Imm(abi.FdStdout), asm.Sym("v"), asm.Imm(3))
	})
	if got := string(res.Stdout[0]); got != "3.142" {
		t.Fatalf("stdout = %q", got)
	}
}

func TestFchecknanPassesFiniteValues(t *testing.T) {
	res := buildAndRun(t, 1, func(m *asm.Module, f *asm.Func) {
		m.DataF64("v", 42.0)
		m.DataString("msg", "nan!\n")
		f.CallArgs("fchecknan", asm.Sym("v"), asm.Sym("msg"), asm.Imm(5))
		f.CallArgs("print_f64", asm.Imm(abi.FdStdout), asm.Sym("v"), asm.Imm(1))
	})
	if got := string(res.Stdout[0]); got != "42.0" {
		t.Fatalf("stdout = %q (value must survive the check)", got)
	}
}

func TestFchecknanAbortsOnNaN(t *testing.T) {
	res := buildAndRun(t, 1, func(m *asm.Module, f *asm.Func) {
		// Manufacture a NaN: 0/0.
		m.BSS("v", 8)
		m.DataString("msg", "nan detected\n")
		f.Fldz()
		f.Fldz()
		f.Fdivp()
		f.FstpSym("v", 0)
		f.CallArgs("fchecknan", asm.Sym("v"), asm.Sym("msg"), asm.Imm(13))
	})
	tr := res.Ranks[0].Trap
	if tr == nil || tr.Kind != vm.TrapAbort {
		t.Fatalf("trap = %v, want abort", tr)
	}
	if !strings.Contains(string(res.Stderr[0]), "nan detected") {
		t.Fatalf("stderr = %q", res.Stderr[0])
	}
}

func TestMPIStubsMarshalAllSevenArguments(t *testing.T) {
	// MPI_Recv has 7 arguments; exercise the stack-spill path of the stub
	// by checking the status words a matched receive writes back.
	res := buildAndRun(t, 2, func(m *asm.Module, f *asm.Func) {
		m.BSS("buf", 64)
		m.BSS("status", 12)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		odd := f.NewLabel()
		done := f.NewLabel()
		f.Cmpi(isa.R0, 0)
		f.Bne(odd)
		// rank 0 sends 3 ints with tag 9.
		f.CallArgs("MPI_Send", asm.Sym("buf"), asm.Imm(3), asm.Imm(abi.DTInt32),
			asm.Imm(1), asm.Imm(9), asm.Imm(abi.CommWorld))
		f.Jmp(done)
		f.Label(odd)
		f.CallArgs("MPI_Recv", asm.Sym("buf"), asm.Imm(8), asm.Imm(abi.DTInt32),
			asm.Imm(abi.AnySource), asm.Imm(abi.AnyTag), asm.Imm(abi.CommWorld),
			asm.Sym("status"))
		// print status.source, status.tag, status.count
		f.LdSym(isa.R1, "status", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.LdSym(isa.R1, "status", 4)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.LdSym(isa.R1, "status", 8)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.Label(done)
		f.CallArgs("MPI_Finalize")
	})
	if res.HangDetected {
		t.Fatalf("hang: %s", res.HangCause)
	}
	if got := string(res.Stdout[1]); got != "093" {
		t.Fatalf("status = %q, want source=0 tag=9 count=3", got)
	}
}

func TestMPIModuleOwnsItsSymbols(t *testing.T) {
	b := asm.NewBuilder()
	AddLibc(b)
	AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	f.Ret()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mpiFuncs := 0
	for _, s := range im.Symbols {
		isStub := strings.HasPrefix(s.Name, "MPI_") || strings.HasPrefix(s.Name, "__mpi")
		if isStub {
			if s.Owner != image.OwnerMPI {
				t.Errorf("symbol %q should be MPI-owned", s.Name)
			}
			if s.Kind == image.SymFunc {
				mpiFuncs++
			}
		} else if s.Owner == image.OwnerMPI {
			t.Errorf("unexpected MPI-owned symbol %q", s.Name)
		}
	}
	if mpiFuncs < 16 {
		t.Fatalf("only %d MPI stubs linked", mpiFuncs)
	}
}

func TestWtime(t *testing.T) {
	res := buildAndRun(t, 1, func(m *asm.Module, f *asm.Func) {
		m.BSS("tv", 8)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Wtime", asm.Sym("tv"))
		f.CallArgs("MPI_Finalize")
		f.CallArgs("print_f64", asm.Imm(abi.FdStdout), asm.Sym("tv"), asm.Imm(9))
	})
	out := string(res.Stdout[0])
	if !strings.HasPrefix(out, "0.0000") {
		t.Fatalf("wtime = %q, want small virtual seconds", out)
	}
	if out == "0.000000000" {
		t.Fatal("wtime should have advanced past zero")
	}
}
