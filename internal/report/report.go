// Package report renders the reproduction's tables and figure series in
// the layout of the paper: Table 1 (per-process profiles), Tables 2-4
// (fault-injection results per application), and Tables 5-7 (working-set
// curves, printed as data series suitable for plotting).
package report

import (
	"fmt"
	"io"
	"strings"

	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/profile"
	"mpifault/internal/sampling"
	"mpifault/internal/trace"
)

// WriteProfiles renders Table 1 for the given application profiles.
func WriteProfiles(w io.Writer, profiles []*profile.Profile) {
	fmt.Fprintf(w, "Table 1: Per-Process Profiles of Test Applications\n")
	fmt.Fprintf(w, "%-22s", "")
	for _, p := range profiles {
		fmt.Fprintf(w, "%16s", p.App)
	}
	fmt.Fprintln(w)

	row := func(label string, f func(*profile.Profile) string) {
		fmt.Fprintf(w, "%-22s", label)
		for _, p := range profiles {
			fmt.Fprintf(w, "%16s", f(p))
		}
		fmt.Fprintln(w)
	}
	kb := func(b uint32) string { return fmt.Sprintf("%.1f KB", float64(b)/1024) }
	row("Ranks", func(p *profile.Profile) string { return fmt.Sprintf("%d", p.Ranks) })
	row("Text Size", func(p *profile.Profile) string { return kb(p.TextBytes) })
	row("  user / MPI", func(p *profile.Profile) string {
		return fmt.Sprintf("%s/%s", kb(p.UserText), kb(p.MPIText))
	})
	row("Data Size", func(p *profile.Profile) string { return kb(p.DataBytes) })
	row("BSS Size", func(p *profile.Profile) string { return kb(p.BSSBytes) })
	row("Heap Size (user)", func(p *profile.Profile) string { return kb(p.HeapStable) })
	row("Heap Size (MPI)", func(p *profile.Profile) string { return kb(p.MPIHeap) })
	row("Stack Size", func(p *profile.Profile) string { return kb(p.StackBytes) })
	row("Message (KB)", func(p *profile.Profile) string {
		return fmt.Sprintf("%.0f-%.0f", float64(p.MsgBytesMin)/1024, float64(p.MsgBytesMax)/1024)
	})
	row("  Header %", func(p *profile.Profile) string { return fmt.Sprintf("%.0f", p.HeaderPct) })
	row("  User %", func(p *profile.Profile) string { return fmt.Sprintf("%.0f", p.UserPct) })
	row("  Control msgs", func(p *profile.Profile) string { return fmt.Sprintf("%d", p.ControlMsgs) })
	row("  Data msgs", func(p *profile.Profile) string { return fmt.Sprintf("%d", p.DataMsgs) })
}

// manifestationColumns is the column order of Tables 2-4.
var manifestationColumns = []classify.Outcome{
	classify.Crash, classify.Hang, classify.Incorrect,
	classify.AppDetected, classify.MPIDetected,
}

// WriteCampaign renders a Tables 2-4 style fault-injection result for one
// application, including the §4.3 sampling-error banner.
func WriteCampaign(w io.Writer, app string, res *core.Result) {
	fmt.Fprintf(w, "Fault Injection Results (%s)\n", app)
	fmt.Fprintf(w, "%-14s %10s %8s", "Region", "Executions", "Errors%")
	for _, o := range manifestationColumns {
		fmt.Fprintf(w, " %12s", o)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s %10s %8s %s\n", "", "", "",
		strings.Repeat(" ", 1)+"(manifestation percentages of manifested errors)")

	for _, t := range res.Tallies {
		fmt.Fprintf(w, "%-14s %10d %8.1f", t.Region, t.Executions, t.ErrorRate())
		for _, o := range manifestationColumns {
			if t.Outcomes[o] == 0 {
				fmt.Fprintf(w, " %12s", "-")
			} else {
				fmt.Fprintf(w, " %12.0f", t.ManifestPercent(o))
			}
		}
		fmt.Fprintln(w)
	}
	if len(res.Tallies) > 0 {
		n := res.Tallies[0].Executions
		if d, err := sampling.EstimationError(0.95, n); err == nil {
			fmt.Fprintf(w, "(n=%d per region: estimation error %.1f%% at 95%% confidence)\n",
				n, 100*d)
		}
	}
}

// WriteWorkingSet renders a Tables 5-7 style series: one row per sample
// time with the text and data working-set percentages.
func WriteWorkingSet(w io.Writer, app string, s *trace.Series) {
	fmt.Fprintf(w, "Memory Trace (%s): working set size (%%) vs block count\n", app)
	fmt.Fprintf(w, "%14s %8s %8s %8s %8s %14s\n",
		"block count", "text", "data", "bss", "heap", "data+bss+heap")
	for i := range s.Times {
		fmt.Fprintf(w, "%14d %8.1f %8.1f %8.1f %8.1f %14.1f\n",
			s.Times[i], s.TextPct[i], s.DataPct[i], s.BSSPct[i],
			s.HeapPct[i], s.CombinedPct[i])
	}
}

// WriteCampaignCSV renders the campaign as machine-readable CSV.
func WriteCampaignCSV(w io.Writer, app string, res *core.Result) {
	fmt.Fprintf(w, "app,region,executions,errors,error_rate_pct,crash,hang,incorrect,app_detected,mpi_detected,correct\n")
	for _, t := range res.Tallies {
		fmt.Fprintf(w, "%s,%s,%d,%d,%.2f,%d,%d,%d,%d,%d,%d\n",
			app, t.Region, t.Executions, t.Errors(), t.ErrorRate(),
			t.Outcomes[classify.Crash], t.Outcomes[classify.Hang],
			t.Outcomes[classify.Incorrect], t.Outcomes[classify.AppDetected],
			t.Outcomes[classify.MPIDetected], t.Outcomes[classify.Correct])
	}
}

// WriteReweighted renders the Horvitz–Thompson reweighted rates of an
// equivalence-pruned campaign next to the raw (pruned-sample) rates, one
// row per region.  Only the register region's rows differ between the
// two columns — pruning touches nothing else — but printing every region
// keeps the table shape aligned with Tables 2-4.
func WriteReweighted(w io.Writer, app string, res *core.Result) {
	if res.Experiments == nil {
		fmt.Fprintf(w, "(reweighted rates unavailable: campaign ran without KeepExperiments)\n")
		return
	}
	regions := make([]core.Region, len(res.Tallies))
	for i, t := range res.Tallies {
		regions[i] = t.Region
	}
	weighted := core.ReweightTallies(regions, res.Experiments)
	fmt.Fprintf(w, "Equivalence-Reweighted Rates (%s)\n", app)
	fmt.Fprintf(w, "%-14s %10s %12s %14s\n", "Region", "Executions", "Raw Errors%", "Reweighted%")
	for i, t := range res.Tallies {
		fmt.Fprintf(w, "%-14s %10d %12.1f %14.1f\n",
			t.Region, t.Executions, t.ErrorRate(), weighted[i].ErrorRate())
	}
}

// WriteReweightedCSV is WriteReweighted in CSV form, written as a
// separate block so the standard campaign CSV stays byte-identical
// whether or not equivalence pruning ran.
func WriteReweightedCSV(w io.Writer, app string, res *core.Result) {
	if res.Experiments == nil {
		return
	}
	regions := make([]core.Region, len(res.Tallies))
	for i, t := range res.Tallies {
		regions[i] = t.Region
	}
	weighted := core.ReweightTallies(regions, res.Experiments)
	fmt.Fprintf(w, "app,region,executions,raw_error_rate_pct,reweighted_error_mass,total_mass,reweighted_error_rate_pct\n")
	for i, t := range res.Tallies {
		wt := weighted[i]
		fmt.Fprintf(w, "%s,%s,%d,%.2f,%d,%d,%.2f\n",
			app, t.Region, t.Executions, t.ErrorRate(),
			wt.Errors(), wt.TotalMass, wt.ErrorRate())
	}
}
