package vm

import (
	"testing"
	"testing/quick"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/rng"
)

// TestDifferentialALU: random straight-line ALU programs over r0-r5 must
// leave the machine in exactly the state a direct Go evaluation predicts.
// This is the interpreter's strongest correctness check: any divergence
// in wrap-around, signedness or shift masking shows up immediately.
func TestDifferentialALU(t *testing.T) {
	type op struct {
		kind uint8
		rd   int
		ra   int
		rb   int
		imm  int32
	}
	run := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{
				kind: uint8(r.Intn(11)),
				rd:   r.Intn(6),
				ra:   r.Intn(6),
				rb:   r.Intn(6),
				imm:  int32(r.Uint32()),
			}
		}

		// Reference evaluation.
		var ref [6]int32
		for _, o := range ops {
			a, b := ref[o.ra], ref[o.rb]
			switch o.kind {
			case 0:
				ref[o.rd] = o.imm
			case 1:
				ref[o.rd] = a + b
			case 2:
				ref[o.rd] = a - b
			case 3:
				ref[o.rd] = a * b
			case 4:
				ref[o.rd] = a & b
			case 5:
				ref[o.rd] = a | b
			case 6:
				ref[o.rd] = a ^ b
			case 7:
				ref[o.rd] = a << (uint32(b) & 31)
			case 8:
				ref[o.rd] = int32(uint32(a) >> (uint32(b) & 31))
			case 9:
				ref[o.rd] = a >> (uint32(b) & 31)
			case 10:
				ref[o.rd] = a + o.imm
			}
		}

		// Guest evaluation.
		b := asm.NewBuilder()
		m := b.Module("t", image.OwnerUser)
		f := m.Func("main")
		for _, o := range ops {
			switch o.kind {
			case 0:
				f.Movi(o.rd, o.imm)
			case 1:
				f.Add(o.rd, o.ra, o.rb)
			case 2:
				f.Sub(o.rd, o.ra, o.rb)
			case 3:
				f.Mul(o.rd, o.ra, o.rb)
			case 4:
				f.And(o.rd, o.ra, o.rb)
			case 5:
				f.Or(o.rd, o.ra, o.rb)
			case 6:
				f.Xor(o.rd, o.ra, o.rb)
			case 7:
				f.Shl(o.rd, o.ra, o.rb)
			case 8:
				f.Shr(o.rd, o.ra, o.rb)
			case 9:
				f.Sar(o.rd, o.ra, o.rb)
			case 10:
				f.Addi(o.rd, o.ra, o.imm)
			}
		}
		f.Sys(abi.SysExit)
		im, err := b.Link(asm.LinkConfig{})
		if err != nil {
			return false
		}
		mach := New(im)
		mach.Handler = &testHandler{}
		out := mach.Run(100_000)
		if out.Trap == nil || out.Trap.Kind != TrapExit {
			return false
		}
		for i := 0; i < 6; i++ {
			if int32(mach.Regs[i]) != ref[i] {
				t.Logf("seed %d: r%d = %d, want %d", seed, i, int32(mach.Regs[i]), ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialFPChain: random FP expression chains through the x87
// stack match the same chain evaluated directly in Go float64 arithmetic
// (bit-exact, since both use IEEE binary64 operations in the same order).
func TestDifferentialFPChain(t *testing.T) {
	run := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		vals := make([]float64, n+1)
		ops := make([]int, n)
		for i := range vals {
			vals[i] = float64(int32(r.Uint32())) / 65536.0
		}
		for i := range ops {
			ops[i] = r.Intn(4)
		}

		// Reference: acc = vals[0]; acc = acc OP vals[i+1] ...
		acc := vals[0]
		for i, o := range ops {
			v := vals[i+1]
			switch o {
			case 0:
				acc += v
			case 1:
				acc -= v
			case 2:
				acc *= v
			case 3:
				acc /= v
			}
		}

		b := asm.NewBuilder()
		m := b.Module("t", image.OwnerUser)
		m.BSS("out", 8)
		f := m.Func("main")
		f.FldConst(vals[0]) // [acc]
		for i, o := range ops {
			f.FldConst(vals[i+1]) // [v, acc]
			switch o {
			case 0:
				f.Faddp()
			case 1:
				// Fsubp computes st1-st0 = acc - v.
				f.Fsubp()
			case 2:
				f.Fmulp()
			case 3:
				f.Fdivp()
			}
		}
		f.FstpSym("out", 0)
		f.Sys(abi.SysExit)
		im, err := b.Link(asm.LinkConfig{})
		if err != nil {
			return false
		}
		mach := New(im)
		mach.Handler = &testHandler{}
		out := mach.Run(100_000)
		if out.Trap == nil || out.Trap.Kind != TrapExit {
			return false
		}
		sym, _ := im.Lookup("out")
		got, trap := mach.LoadF64(sym.Addr)
		if trap != nil {
			return false
		}
		return got == acc || (got != got && acc != acc) // NaN == NaN for this purpose
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
