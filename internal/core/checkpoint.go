package core

import (
	"bytes"

	"mpifault/internal/cluster"
	"mpifault/internal/mpi"
	"mpifault/internal/vm"
)

// Golden-run checkpointing (the Relyzer-style prefix-sharing optimization
// cited in PAPERS.md): everything an experiment executes before its
// trigger is, by construction, identical to the golden run, so the
// campaign captures periodic consistent snapshots of the golden execution
// and starts each experiment from the latest snapshot that precedes its
// injection epoch, replaying only the residual prefix.
//
// The pipeline is two golden passes:
//
//  1. The ordinary golden run, with an mpi.CausalityRecorder attached,
//     yields per-rank instruction counts and the send/receive
//     instruction pairs of every Channel message.
//  2. computeCuts turns the recorded causality into *consistent* cut
//     vectors (no cut captures a receive whose matching send hasn't
//     happened — Chandy/Lamport's condition, computed offline by a
//     closure over the recorded events), and a second golden run pauses
//     at each cut and snapshots the whole cluster (cluster.CheckpointSpec).
//
// The byte-identity invariant is enforced, not assumed: the second pass
// must terminate cleanly with exactly the golden output and per-rank
// instruction counts, otherwise the checkpoints are discarded and the
// campaign silently falls back to scratch starts (counted in telemetry).
// Restored experiments are indistinguishable from scratch runs to the
// guest, so a fixed-seed campaign's CSV and journal are byte-identical
// with checkpointing on or off.

const (
	// DefaultCheckpointInterval is the golden-run instruction spacing
	// between cluster checkpoints (per cut index, before closure).  It is
	// a floor: runs longer than MaxCheckpoints×interval get their cuts
	// spread evenly instead of bunched at the start (see computeCuts).
	DefaultCheckpointInterval = 12_500
	// DefaultMaxCheckpoints caps the number of checkpoints per campaign;
	// memory is bounded by checkpoints × touched pages (COW-shared).
	DefaultMaxCheckpoints = 32
	// checkpointQueueHeadroom enlarges Channel queues during the
	// checkpoint-emitting pass so that senders never block on a parked
	// receiver's full queue while the cluster quiesces at a cut.
	checkpointQueueHeadroom = 1 << 15
)

// CheckpointStats summarizes checkpoint usage for one campaign.
type CheckpointStats struct {
	// Taken is the number of checkpoints captured from the golden run.
	Taken int
	// Fallback is set when checkpointing was requested but the capture
	// pass failed validation and the campaign ran from scratch.
	Fallback bool
	// Hits and Misses count experiments started from a checkpoint vs
	// from t=0.
	Hits, Misses uint64
	// InstrsSkipped totals the golden-prefix instructions (summed across
	// all ranks) that restored experiments did not re-execute.
	InstrsSkipped uint64
}

// CheckpointSet holds the captured golden-run checkpoints, ordered by
// cut index (nondecreasing per-rank instruction counts).
type CheckpointSet struct {
	snaps []*cluster.Snapshot
	// skipped[k] is snaps[k].TotalInstrs(): the work a restore from k skips.
	skipped []uint64
}

// Len returns the number of checkpoints.
func (cs *CheckpointSet) Len() int {
	if cs == nil {
		return 0
	}
	return len(cs.snaps)
}

// indexForInstr returns the latest checkpoint from which an experiment
// injecting into rank at instruction-count trigger can start: the rank
// must still be live and its retired count at the cut must not exceed
// the trigger (equality is fine — the restored machine fires the trigger
// before executing anything).  Returns -1 when no checkpoint qualifies.
func (cs *CheckpointSet) indexForInstr(rank int, trigger uint64) int {
	best := -1
	for k, s := range cs.snaps {
		if s.RankLive(rank) && s.RankInstrs(rank) <= trigger {
			best = k
		}
	}
	return best
}

// indexForRecv is indexForInstr for the message region: the clock is the
// rank's cumulative received Channel bytes.
func (cs *CheckpointSet) indexForRecv(rank int, triggerByte uint64) int {
	best := -1
	for k, s := range cs.snaps {
		if s.RankLive(rank) && s.RankRecvBytes(rank) <= triggerByte {
			best = k
		}
	}
	return best
}

// computeCuts builds consistent cut vectors from the recorded golden-run
// causality: cut k starts at k·interval for every rank and is closed
// under the happens-before relation of the recorded messages (any
// receive inside the cut pulls its sender's pause point up to the send).
// Cuts are nondecreasing per rank; vacuous ones (no progress over the
// previous cut) are dropped.
func computeCuts(goldenInstrs []uint64, events []mpi.Event, interval uint64, maxCkpts int) [][]uint64 {
	n := len(goldenInstrs)
	if n == 0 || interval == 0 {
		return nil
	}
	var maxInstrs uint64
	for _, gi := range goldenInstrs {
		if gi > maxInstrs {
			maxInstrs = gi
		}
	}
	// The interval is a floor: when the run is longer than maxCkpts
	// evenly-spaced intervals, widen the spacing so the checkpoints cover
	// the whole execution rather than only its first maxCkpts×interval
	// instructions.
	if maxCkpts > 0 {
		if spread := maxInstrs / uint64(maxCkpts+1); spread > interval {
			interval = spread
		}
	}
	prev := make([]uint64, n)
	var cuts [][]uint64
	for k := uint64(1); maxCkpts <= 0 || len(cuts) < maxCkpts; k++ {
		base := k * interval
		if base >= maxInstrs {
			break // at or past the longest rank's end: nothing left to skip
		}
		cut := make([]uint64, n)
		progress := false
		for r := 0; r < n; r++ {
			cut[r] = base
			if cut[r] < prev[r] {
				cut[r] = prev[r]
			}
		}
		closeCut(cut, events)
		for r := 0; r < n; r++ {
			if cut[r] > prev[r] && prev[r] < goldenInstrs[r] {
				progress = true
			}
		}
		if progress {
			cuts = append(cuts, cut)
		}
		prev = cut
	}
	return cuts
}

// closeCut raises pause points until the cut is consistent: no event may
// have its receive inside the cut and its send outside.
func closeCut(cut []uint64, events []mpi.Event) {
	for changed := true; changed; {
		changed = false
		for _, e := range events {
			if e.DstInstr <= cut[e.Dst] && e.SrcInstr > cut[e.Src] {
				cut[e.Src] = e.SrcInstr
				changed = true
			}
		}
	}
}

// buildCheckpoints runs the checkpoint-emitting golden pass and validates
// it against the recorded golden run.  Any deviation — a hang, a
// non-clean exit, a different output, different per-rank instruction or
// byte counts — discards the checkpoints (fallback to scratch starts),
// which is what makes the byte-identity invariant unconditional.
func buildCheckpoints(cfg *Config, golden *Golden, events []mpi.Event) *CheckpointSet {
	cuts := computeCuts(golden.Instrs, events, cfg.CheckpointInterval, cfg.MaxCheckpoints)
	if len(cuts) == 0 {
		return nil
	}
	cs := &CheckpointSet{}
	spec := &cluster.CheckpointSpec{
		Vectors: cuts,
		OnSnapshot: func(k int, s *cluster.Snapshot) {
			cs.snaps = append(cs.snaps, s)
		},
	}
	res := cluster.Run(cluster.Job{
		Image:              cfg.Image,
		Size:               cfg.Ranks,
		MPIConfig:          cfg.MPIConfig.WithQueueHeadroom(checkpointQueueHeadroom),
		WallLimit:          cfg.WallLimit,
		Checkpoints:        spec,
		DisableSuperblocks: cfg.DisableSuperblocks,
	})
	if !matchesGolden(res, golden) {
		return nil
	}
	for _, s := range cs.snaps {
		cs.skipped = append(cs.skipped, s.TotalInstrs())
	}
	return cs
}

// matchesGolden verifies the checkpoint pass reproduced the golden run.
func matchesGolden(res *cluster.Result, golden *Golden) bool {
	if res.HangDetected || len(res.Ranks) != len(golden.Instrs) {
		return false
	}
	for r := range res.Ranks {
		rr := &res.Ranks[r]
		if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit || rr.Trap.Code != 0 {
			return false
		}
		if rr.Instrs != golden.Instrs[r] || rr.Stats.TotalBytes() != golden.RecvBytes[r] {
			return false
		}
	}
	return bytes.Equal(res.CanonicalOutput(), golden.Output)
}
