package mpi

import (
	"sync"
	"sync/atomic"

	"mpifault/internal/abi"
	"mpifault/internal/vm"
)

// Config tunes the runtime.
type Config struct {
	// EagerThreshold is the largest payload sent eagerly; larger messages
	// use the RTS/CTS rendezvous protocol.  Default 1024 bytes.
	EagerThreshold uint32
	// QueueDepth is the per-rank Channel queue capacity in packets.
	QueueDepth int
}

func (c *Config) fill() {
	if c.EagerThreshold == 0 {
		c.EagerThreshold = 1024
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4096
	}
}

// Rank execution states observed by the deadlock detector.
const (
	StateRunning int32 = iota
	StateBlocked
	StateFinished
)

// World is one MPI job: size ranks and their Channel-level plumbing.
type World struct {
	Size int
	cfg  Config

	procs []*Proc

	kill     chan struct{}
	killOnce sync.Once

	// progress increments on every Channel-level delivery and every rank
	// state change; the deadlock detector watches it.
	progress atomic.Uint64
	inflight atomic.Int64

	// ctxCounter allocates wire context ids for new communicators.
	ctxCounter atomic.Int64

	// transport, when non-nil, carries Channel packets over an external
	// medium (e.g. TCPTransport) instead of the in-process queues.
	transport Transport

	// rec, when non-nil, records message causality on the in-process
	// queue path (see snapshot.go); unused with an external transport.
	rec *CausalityRecorder
}

// SetTransport attaches an external Channel transport.  Call before any
// rank starts executing.  The world does not own the transport; the
// caller must Close it after the job.
func (w *World) SetTransport(t Transport) { w.transport = t }

// NewWorld creates the runtime for size ranks.
func NewWorld(size int, cfg Config) *World {
	cfg.fill()
	w := &World{Size: size, cfg: cfg, kill: make(chan struct{})}
	for r := 0; r < size; r++ {
		p := &Proc{
			w:        w,
			rank:     r,
			in:       make(chan []byte, cfg.QueueDepth),
			requests: make(map[int32]*Request),
		}
		p.initComms()
		w.procs = append(w.procs, p)
	}
	return w
}

// Proc is the per-rank runtime state.  All fields except the inbound
// channel are owned by the rank's own goroutine.
type Proc struct {
	w    *World
	rank int
	in   chan []byte

	state atomic.Int32

	// unexpected holds arrived-but-unmatched packets; payloads of eager
	// data packets are buffered in guest-heap chunks tagged ChunkMPI, as
	// the paper's malloc-wrapper analysis expects.
	unexpected   []*stored
	nextSeq      uint32
	barrierEpoch uint32

	// Nonblocking-operation state: pending receives and rendezvous sends
	// the dispatcher completes as packets arrive, plus the guest-visible
	// request handle table.
	pendingRecvs []*Request
	pendingSends []*Request
	requests     map[int32]*Request
	nextReq      int32

	// Communicator table (handle -> group/context).
	comms    map[int32]*commInfo
	nextComm int32

	// RecvHook, when set, may mutate the raw packet bytes just after the
	// Channel read and before parsing — the message fault injector.
	RecvHook func(pkt []byte)

	// CommHook, when set, observes every point-to-point operation at the
	// API layer, after argument validation and before any blocking — the
	// recording point for the MPI communication lint
	// (internal/analysis.MPILint).
	CommHook func(CommOp)

	// TraceHook, when set, observes the rank's message-digest event
	// stream for trace-diff localization (internal/msgtrace).  Unlike
	// CommHook it fires for collectives too, carries the payload bytes
	// (CommOp.Data) and the retired-instruction stamp, and emits receive
	// events at completion with the *matched* envelope rather than at
	// post time with wildcards.  Every event fires on the rank's own
	// goroutine in program order, so the stream is deterministic for a
	// deterministic guest.
	TraceHook func(CommOp)

	Stats Stats

	errhandler uint32 // guest address of the registered error handler, 0 if none
	inited     bool
	finalized  bool
	pmpi       PMPIHook
}

// stored is a packet parked in the unexpected queue.  Eager payload bytes
// are copied into guest heap (heapAddr) so that the guest-memory footprint
// of MPI buffering is visible to the heap profiler and injector.
type stored struct {
	pkt      *Packet
	heapAddr uint32
	heapLen  uint32
}

// Proc returns the per-rank runtime state.
func (w *World) Proc(r int) *Proc { return w.procs[r] }

// Kill terminates all blocking operations in the job.  Safe to call from
// any goroutine, multiple times.
func (w *World) Kill() {
	w.killOnce.Do(func() { close(w.kill) })
}

// Progress returns the global progress counter (deliveries+state changes).
func (w *World) Progress() uint64 { return w.progress.Load() }

// Inflight returns the number of packets enqueued but not yet pulled.
func (w *World) Inflight() int64 { return w.inflight.Load() }

// QueueDepth returns the number of packets currently parked in rank r's
// Channel queue — the telemetry layer samples it for the queue-depth
// high-water mark.  Reading a channel's length is racy by nature; the
// value is a monitoring sample, not a synchronization primitive.
func (w *World) QueueDepth(r int) int { return len(w.procs[r].in) }

// RankState returns the execution state of rank r.
func (w *World) RankState(r int) int32 { return w.procs[r].state.Load() }

// Deadlocked reports whether every unfinished rank is blocked inside the
// runtime with no packet in flight — a certain distributed deadlock,
// since this MPI has no timers.  It is the fast path of the paper's hang
// detection (their fallback was "one minute beyond the expected execution
// completion time", which we also keep at the cluster level).
func (w *World) Deadlocked() bool {
	return w.inflight.Load() == 0 && w.Stalled()
}

// Stalled reports whether no rank is currently executing and at least one
// is blocked in the runtime.  Unlike Deadlocked it ignores in-flight
// packets: a packet can be parked forever in the queue of a rank that
// already exited (e.g. after a corrupted destination field misroutes a
// message), which stalls the job without ever reaching inflight == 0.
// The watchdog confirms a stall across consecutive quiet ticks — any
// genuine wake-up bumps the progress counter — before declaring a hang.
func (w *World) Stalled() bool {
	sawBlocked := false
	for _, p := range w.procs {
		switch p.state.Load() {
		case StateRunning:
			return false
		case StateBlocked:
			sawBlocked = true
		}
	}
	return sawBlocked
}

// Stuck reports whether a stall with packets still in flight is provably
// permanent: every queued packet is parked at a rank that has already
// finished, so nothing will ever pull it.  A packet queued at a live
// blocked rank does NOT count — pull drains the queue whenever that rank
// next gets CPU, so that shape is only a scheduling gap, however long the
// scheduler leaves the rank off-core.  This distinction is what keeps the
// watchdog's in-flight hang verdict load-independent: fixed-seed campaign
// output must be byte-identical no matter how slowly the host schedules
// goroutines.  With an external transport, packets can sit in socket
// buffers outside any inspectable queue, so Stuck stays conservatively
// false and the wall-clock limit is the fallback there.
func (w *World) Stuck() bool {
	if !w.Stalled() {
		return false
	}
	if w.inflight.Load() == 0 {
		return true
	}
	if w.transport != nil {
		return false
	}
	for _, p := range w.procs {
		if len(p.in) > 0 && p.state.Load() != StateFinished {
			return false
		}
	}
	return true
}

func (p *Proc) setState(s int32) {
	p.state.Store(s)
	p.w.progress.Add(1)
}

// MarkFinished records the rank as done for the deadlock detector.
func (p *Proc) MarkFinished() { p.setState(StateFinished) }

// killedTrap is returned from blocking points when the job is torn down.
func killedTrap(m *vm.Machine) *vm.Trap {
	return &vm.Trap{Kind: vm.TrapKilled, PC: m.PC, Msg: "job terminated"}
}

// deliver enqueues raw bytes to dst's Channel queue, directly or over
// the configured external transport.
func (p *Proc) deliver(dst int32, raw []byte, m *vm.Machine) *vm.Trap {
	if tr := p.w.transport; tr != nil {
		if err := tr.Send(p.rank, int(dst), raw); err != nil {
			return &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
				Msg: "transport send failure: " + err.Error()}
		}
		return nil
	}
	if rec := p.w.rec; rec != nil {
		raw = rec.wrap(p.rank, m.Instrs, raw)
	}
	q := p.w.procs[dst].in
	p.w.inflight.Add(1)
	// Enqueueing counts as progress: the stall detector must not mistake
	// the scheduling gap between an enqueue and the receiver's wakeup for
	// a deadlock.
	p.w.progress.Add(1)
	select {
	case q <- raw:
		return nil
	default:
	}
	// Queue full: block, but stay visible to the deadlock detector.
	p.setState(StateBlocked)
	defer p.setState(StateRunning)
	select {
	case q <- raw:
		return nil
	case <-p.w.kill:
		p.w.inflight.Add(-1)
		return killedTrap(m)
	}
}

// sendPacket marshals and delivers a packet.
func (p *Proc) sendPacket(pkt *Packet, m *vm.Machine) *vm.Trap {
	return p.deliver(pkt.Dst, pkt.Marshal(), m)
}

// pull blocks for the next raw packet from the Channel, applies the
// injection hook, parses, validates and accounts for it.  A validation
// failure is a fatal MPICH-level error (Crash manifestation); a starved
// frame (length field beyond the framed bytes) silently drops the packet,
// which eventually surfaces as a Hang.
func (p *Proc) pull(m *vm.Machine) (*Packet, *vm.Trap) {
	for {
		var raw []byte
		select {
		case raw = <-p.in:
		default:
			p.setState(StateBlocked)
			select {
			case raw = <-p.in:
				p.setState(StateRunning)
			case <-p.w.kill:
				p.setState(StateRunning)
				return nil, killedTrap(m)
			}
		}
		p.w.inflight.Add(-1)
		p.w.progress.Add(1)

		if rec := p.w.rec; rec != nil && p.w.transport == nil {
			raw = rec.strip(raw, p.rank, m.Instrs)
		}

		// §3.3: the injection point — after the Channel recv, before
		// parsing.
		if p.RecvHook != nil {
			p.RecvHook(raw)
		}

		pkt, drop, err := ParsePacket(raw, p.rank, p.w.Size)
		if err != nil {
			return nil, &vm.Trap{
				Kind: vm.TrapMPIFatal, PC: m.PC,
				Msg: "ch_p4 protocol failure: " + err.Error(),
			}
		}
		if drop {
			continue
		}
		p.Stats.account(pkt)
		return pkt, nil
	}
}

// park stores an unmatched packet on the unexpected queue, buffering any
// payload into an MPI-tagged guest heap chunk.
func (p *Proc) park(pkt *Packet, m *vm.Machine) *vm.Trap {
	s := &stored{pkt: pkt}
	if n := uint32(len(pkt.Payload)); n > 0 {
		addr := m.Heap.Alloc(n, abi.ChunkMPI)
		if addr == 0 {
			return &vm.Trap{Kind: vm.TrapMPIFatal, PC: m.PC,
				Msg: "out of memory buffering unexpected message"}
		}
		if t := m.WriteBytes(addr, pkt.Payload); t != nil {
			return t
		}
		s.heapAddr, s.heapLen = addr, n
		pkt.Payload = nil // the guest heap copy is now authoritative
	}
	p.unexpected = append(p.unexpected, s)
	return nil
}

// takeStored removes entry i from the unexpected queue and returns its
// payload bytes (read back from the guest heap), freeing the heap chunk.
func (p *Proc) takeStored(i int, m *vm.Machine) (*Packet, []byte, *vm.Trap) {
	s := p.unexpected[i]
	p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
	var payload []byte
	if s.heapLen > 0 {
		b, t := m.ReadBytes(s.heapAddr, int(s.heapLen))
		if t != nil {
			return nil, nil, t
		}
		if t := m.Heap.Free(s.heapAddr); t != nil {
			return nil, nil, t
		}
		payload = b
	}
	return s.pkt, payload, nil
}

// matchFn selects packets during a blocking wait.
type matchFn func(*Packet) bool

// findStored scans the unexpected queue for a match.
func (p *Proc) findStored(match matchFn) int {
	for i, s := range p.unexpected {
		if match(s.pkt) {
			return i
		}
	}
	return -1
}

// waitMatch blocks until a packet satisfying match arrives.  Packets that
// instead complete a pending nonblocking request are dispatched to it;
// everything else is parked.  The caller must first have scanned the
// unexpected queue.
func (p *Proc) waitMatch(match matchFn, m *vm.Machine) (*Packet, *vm.Trap) {
	for {
		pkt, t := p.pull(m)
		if t != nil {
			return nil, t
		}
		if match(pkt) {
			return pkt, nil
		}
		consumed, t := p.dispatch(pkt, m)
		if t != nil {
			return nil, t
		}
		if consumed {
			continue
		}
		if t := p.park(pkt, m); t != nil {
			return nil, t
		}
	}
}

// matchEnvelope matches eager data or RTS packets against a posted
// receive envelope (source, tag, comm), honouring MPI wildcards.  Internal
// collective traffic travels in a separate communicator *context*
// (internalCtx), so a user MPI_ANY_TAG receive can never swallow a
// collective's packet — the same role MPICH's context ids play.
func matchEnvelope(src, tag, comm int32) matchFn {
	return func(pkt *Packet) bool {
		if pkt.Kind != KindEager && pkt.Kind != KindRTS {
			return false
		}
		if pkt.Comm != comm {
			return false
		}
		if src != abi.AnySource && pkt.Src != src {
			return false
		}
		if tag != abi.AnyTag && pkt.Tag != tag {
			return false
		}
		return true
	}
}

// sendBytes implements the ADI-level blocking send of a payload to a
// world rank within wire context ctx (start + wait on a request).
func (p *Proc) sendBytes(dst, tag, ctx, dtype int32, payload []byte, m *vm.Machine) *vm.Trap {
	r, t := p.startSend(m, payload, dst, tag, ctx, dtype)
	if t != nil {
		return t
	}
	return p.wait(r, m)
}

// recvResult is what an ADI-level receive produces.
type recvResult struct {
	src, tag int32
	payload  []byte
}

// recvBytes implements the ADI-level blocking receive into a host-side
// buffer (used by the collectives and the communicator machinery).
func (p *Proc) recvBytes(src, tag, ctx int32, m *vm.Machine) (recvResult, *vm.Trap) {
	r, t := p.startRecvHost(m, src, tag, ctx)
	if t != nil {
		return recvResult{}, t
	}
	if t := p.wait(r, m); t != nil {
		return recvResult{}, t
	}
	return recvResult{src: r.resSrc, tag: r.resTag, payload: r.hostPayload}, nil
}
