package vm

import (
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Snapshot is an immutable copy of a Machine's full architectural state:
// registers, FPU environment, retired-instruction count, segment images
// and heap-allocator bookkeeping.  It is the per-rank building block of a
// cluster checkpoint (the analogue of a CRIU dump of one MPI process).
//
// Segment backing is aliased copy-on-write in both directions: taking a
// snapshot marks the live machine's segments shared (its next write
// copies privately), and every machine created from the snapshot aliases
// the same bytes until its own first write.  N concurrent experiments
// restored from one checkpoint therefore share a single set of backing
// pages and only pay for what they touch — the same trick New uses
// against the program image, applied to a mid-run state.
type Snapshot struct {
	regs      [isa.NumGPR]uint32
	pc, flags uint32
	fp        FPEnv
	instrs    uint64
	minSP     uint32

	im        *image.Image
	segs      [5][]byte // text, data, bss, heap, stack backing prefixes
	textDirty []uint64
	heap      heapSnap
}

// heapSnap captures the Allocator's host-side bookkeeping.  The chunk
// headers themselves live in guest memory and are covered by the heap
// segment bytes.
type heapSnap struct {
	brk               uint32
	free              []span
	allocated         map[uint32]uint32
	liveUser, liveMPI uint32
	peakUser, peakMPI uint32
}

// Snapshot captures the machine's current state.  The machine must be
// quiescent (not executing on another goroutine).  Its segments become
// copy-on-write against the snapshot; the machine remains runnable.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		regs:   m.Regs,
		pc:     m.PC,
		flags:  m.Flags,
		fp:     m.FP,
		instrs: m.Instrs,
		minSP:  m.MinSP,
		im:     m.Image,
	}
	for i, seg := range []*segment{&m.text, &m.data, &m.bss, &m.heap, &m.stack} {
		seg.shared = true
		s.segs[i] = seg.bytes
	}
	if m.textDirty != nil {
		s.textDirty = append([]uint64(nil), m.textDirty...)
	}
	h := m.Heap
	s.heap = heapSnap{
		brk:       h.brk,
		free:      append([]span(nil), h.free...),
		allocated: make(map[uint32]uint32, len(h.allocated)),
		liveUser:  h.liveUser,
		liveMPI:   h.liveMPI,
		peakUser:  h.PeakUser,
		peakMPI:   h.PeakMPI,
	}
	for addr, size := range h.allocated {
		s.heap.allocated[addr] = size
	}
	return s
}

// NewMachine materializes a runnable machine from the snapshot.  All
// segments alias the snapshot's backing copy-on-write; Handler, Tracer,
// trigger and stop state start clear, exactly as after New.
func (s *Snapshot) NewMachine() *Machine {
	im := s.im
	m := &Machine{Image: im}
	m.text = segment{base: image.TextBase, length: uint32(len(im.Text)), bytes: s.segs[0], shared: true}
	m.data = segment{base: im.DataBase, length: uint32(len(im.Data)), bytes: s.segs[1], writable: true, shared: true}
	m.bss = segment{base: im.BSSBase, length: im.BSSSize, bytes: s.segs[2], writable: true, shared: true}
	m.heap = segment{base: im.HeapBase, length: im.HeapLimit - im.HeapBase, bytes: s.segs[3], writable: true, shared: true}
	m.stack = segment{base: im.StackBase(), length: im.StackSize, bytes: s.segs[4], writable: true, shared: true}
	// Compiled superblock state is never captured: it is re-derived from
	// the image's shared tables, with the snapshot's dirty bitmap
	// re-applied so runs still refuse to execute into overwritten slots.
	p := predecodeFor(im)
	m.pre = p.instrs
	m.sbProg = p.prog
	m.sbEnd = p.end
	if s.textDirty != nil {
		m.textDirty = append([]uint64(nil), s.textDirty...)
		m.rebuildSBDirty()
	}
	m.Regs = s.regs
	m.PC = s.pc
	m.Flags = s.flags
	m.FP = s.fp
	m.Instrs = s.instrs
	m.MinSP = s.minSP
	m.Heap = &Allocator{
		m:         m,
		brk:       s.heap.brk,
		free:      append([]span(nil), s.heap.free...),
		allocated: make(map[uint32]uint32, len(s.heap.allocated)),
		liveUser:  s.heap.liveUser,
		liveMPI:   s.heap.liveMPI,
		PeakUser:  s.heap.peakUser,
		PeakMPI:   s.heap.peakMPI,
	}
	for addr, size := range s.heap.allocated {
		m.Heap.allocated[addr] = size
	}
	return m
}

// Instrs returns the retired-instruction count at the capture point.
func (s *Snapshot) Instrs() uint64 { return s.instrs }
