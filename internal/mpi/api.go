package mpi

import (
	"fmt"

	"mpifault/internal/abi"
	"mpifault/internal/vm"
)

// This file is the API layer: argument validation, error-handler
// dispatch, communicator resolution, and guest-memory marshalling for
// every MPI operation the guest library exposes.
//
// Error semantics follow what §6.2 of the paper found in MPICH, LAM/MPI
// and LA-MPI: a user-registered error handler is raised *only* when an
// argument check fails (e.g. a nonexistent destination rank, which is how
// stack faults that corrupt call arguments become "MPI Detected").  Every
// other failure — protocol corruption, abnormal peer termination — aborts
// the job the way MPICH's signal/error handling does, which the harness
// classifies as a Crash.

// PMPIHook observes every API-layer entry, mirroring the paper's use of
// the MPI profiling interface to interpose wrappers.
type PMPIHook func(rank int, fn string)

// SetPMPIHook installs hook on every rank of the world.
func (w *World) SetPMPIHook(hook PMPIHook) {
	for _, p := range w.procs {
		p.pmpi = hook
	}
}

func (p *Proc) enter(fn string) {
	if p.pmpi != nil {
		p.pmpi(p.rank, fn)
	}
}

// apiError reports an argument-check failure.  With a registered handler
// the run is labelled MPI-Detected (TrapMPIHandler); otherwise MPICH's
// default MPI_ERRORS_ARE_FATAL aborts the job (TrapMPIFatal).
func (p *Proc) apiError(m *vm.Machine, class int32, format string, args ...interface{}) *vm.Trap {
	msg := fmt.Sprintf("%s: %s", abi.ErrName(class), fmt.Sprintf(format, args...))
	kind := vm.TrapMPIFatal
	if p.errhandler != 0 {
		kind = vm.TrapMPIHandler
	}
	return &vm.Trap{Kind: kind, PC: m.PC, Code: class, Msg: msg}
}

func (p *Proc) checkCountType(m *vm.Machine, count, dtype int32) *vm.Trap {
	if count < 0 {
		return p.apiError(m, abi.ErrCount, "negative count %d", count)
	}
	if abi.DTSize(dtype) == 0 {
		return p.apiError(m, abi.ErrType, "invalid datatype %d", dtype)
	}
	return nil
}

func (p *Proc) checkInited(m *vm.Machine) *vm.Trap {
	if !p.inited || p.finalized {
		return p.apiError(m, abi.ErrOther, "MPI not initialized")
	}
	return nil
}

// checkSendRank validates a destination within the communicator.
func (p *Proc) checkSendRank(m *vm.Machine, ci *commInfo, dest int32) *vm.Trap {
	if dest < 0 || dest >= ci.size() {
		// The canonical §6.2 case: a corrupted stack argument produces a
		// nonexistent destination, the one error MPICH raises handlers for.
		return p.apiError(m, abi.ErrRank, "invalid destination rank %d", dest)
	}
	return nil
}

func (p *Proc) checkRecvRank(m *vm.Machine, ci *commInfo, source int32) *vm.Trap {
	if source != abi.AnySource && (source < 0 || source >= ci.size()) {
		return p.apiError(m, abi.ErrRank, "invalid source rank %d", source)
	}
	return nil
}

func (p *Proc) checkUserTag(m *vm.Machine, tag int32, wildcardOK bool) *vm.Trap {
	if wildcardOK && tag == abi.AnyTag {
		return nil
	}
	if tag < 0 || tag > abi.MaxUserTag {
		return p.apiError(m, abi.ErrTag, "invalid tag %d", tag)
	}
	return nil
}

// Init implements MPI_Init.
func (p *Proc) Init(m *vm.Machine) *vm.Trap {
	p.enter("MPI_Init")
	if p.inited {
		return p.apiError(m, abi.ErrOther, "MPI_Init called twice")
	}
	p.inited = true
	return nil
}

// Finalize implements MPI_Finalize.
func (p *Proc) Finalize(m *vm.Machine) *vm.Trap {
	p.enter("MPI_Finalize")
	if t := p.checkInited(m); t != nil {
		return t
	}
	// MPI_Finalize is synchronizing in MPICH's ch_p4; keep that behaviour
	// so stragglers' messages cannot arrive after a peer exits.
	ci := p.comms[abi.CommWorld]
	if ci.size() > 1 {
		if t := p.barrier(ci, m); t != nil {
			return t
		}
	}
	p.finalized = true
	return nil
}

// CommRank implements MPI_Comm_rank.
func (p *Proc) CommRank(m *vm.Machine, comm int32) (int32, *vm.Trap) {
	p.enter("MPI_Comm_rank")
	if t := p.checkInited(m); t != nil {
		return 0, t
	}
	ci, t := p.resolveComm(m, comm)
	if t != nil {
		return 0, t
	}
	return ci.myRank, nil
}

// CommSize implements MPI_Comm_size.
func (p *Proc) CommSize(m *vm.Machine, comm int32) (int32, *vm.Trap) {
	p.enter("MPI_Comm_size")
	if t := p.checkInited(m); t != nil {
		return 0, t
	}
	ci, t := p.resolveComm(m, comm)
	if t != nil {
		return 0, t
	}
	return ci.size(), nil
}

// ErrhandlerSet implements MPI_Errhandler_set: handler is the guest
// address of the user callback.  As in the paper, invoking the handler
// labels the run "MPI Detected".
func (p *Proc) ErrhandlerSet(m *vm.Machine, comm int32, handler uint32) *vm.Trap {
	p.enter("MPI_Errhandler_set")
	if _, t := p.resolveComm(m, comm); t != nil {
		return t
	}
	p.errhandler = handler
	return nil
}

// CommSplit implements MPI_Comm_split, returning the new handle (0 for
// MPI_UNDEFINED colors).
func (p *Proc) CommSplit(m *vm.Machine, comm, color, key int32) (int32, *vm.Trap) {
	p.enter("MPI_Comm_split")
	if t := p.checkInited(m); t != nil {
		return 0, t
	}
	ci, t := p.resolveComm(m, comm)
	if t != nil {
		return 0, t
	}
	return p.commSplit(ci, color, key, m)
}

// CommDup implements MPI_Comm_dup.
func (p *Proc) CommDup(m *vm.Machine, comm int32) (int32, *vm.Trap) {
	p.enter("MPI_Comm_dup")
	if t := p.checkInited(m); t != nil {
		return 0, t
	}
	ci, t := p.resolveComm(m, comm)
	if t != nil {
		return 0, t
	}
	return p.commDup(ci, m)
}

// sendChecks validates the common send arguments and returns the
// communicator and payload.
func (p *Proc) sendChecks(m *vm.Machine, buf uint32, count, dtype, dest, tag, comm int32) (*commInfo, []byte, *vm.Trap) {
	if t := p.checkInited(m); t != nil {
		return nil, nil, t
	}
	ci, t := p.resolveComm(m, comm)
	if t != nil {
		return nil, nil, t
	}
	if t := p.checkCountType(m, count, dtype); t != nil {
		return nil, nil, t
	}
	if t := p.checkSendRank(m, ci, dest); t != nil {
		return nil, nil, t
	}
	if t := p.checkUserTag(m, tag, false); t != nil {
		return nil, nil, t
	}
	n := uint32(count) * abi.DTSize(dtype)
	payload, tr := m.ReadBytes(buf, int(n))
	if tr != nil {
		return nil, nil, tr // bad buffer pointer: the process segfaults (Crash)
	}
	return ci, payload, nil
}

// Send implements MPI_Send.
func (p *Proc) Send(m *vm.Machine, buf uint32, count, dtype, dest, tag, comm int32) *vm.Trap {
	p.enter("MPI_Send")
	ci, payload, t := p.sendChecks(m, buf, count, dtype, dest, tag, comm)
	if t != nil {
		return t
	}
	p.recordComm(CommOp{Fn: "MPI_Send", Send: true, Peer: ci.world(dest), Tag: tag,
		Bytes: uint32(len(payload)), Blocking: true})
	p.recordTrace(m, CommOp{Fn: "MPI_Send", Send: true, Peer: ci.world(dest), Tag: tag,
		Bytes: uint32(len(payload)), Data: payload})
	return p.sendBytes(ci.world(dest), tag, ci.ctx, dtype, payload, m)
}

// Isend implements MPI_Isend; the request handle is returned.
func (p *Proc) Isend(m *vm.Machine, buf uint32, count, dtype, dest, tag, comm int32) (int32, *vm.Trap) {
	p.enter("MPI_Isend")
	ci, payload, t := p.sendChecks(m, buf, count, dtype, dest, tag, comm)
	if t != nil {
		return 0, t
	}
	p.recordComm(CommOp{Fn: "MPI_Isend", Send: true, Peer: ci.world(dest), Tag: tag,
		Bytes: uint32(len(payload))})
	p.recordTrace(m, CommOp{Fn: "MPI_Isend", Send: true, Peer: ci.world(dest), Tag: tag,
		Bytes: uint32(len(payload)), Data: payload})
	r, t := p.startSend(m, payload, ci.world(dest), tag, ci.ctx, dtype)
	if t != nil {
		return 0, t
	}
	return r.id, nil
}

// recvChecks validates the common receive arguments.
func (p *Proc) recvChecks(m *vm.Machine, count, dtype, source, tag, comm int32) (*commInfo, *vm.Trap) {
	if t := p.checkInited(m); t != nil {
		return nil, t
	}
	ci, t := p.resolveComm(m, comm)
	if t != nil {
		return nil, t
	}
	if t := p.checkCountType(m, count, dtype); t != nil {
		return nil, t
	}
	if t := p.checkRecvRank(m, ci, source); t != nil {
		return nil, t
	}
	if t := p.checkUserTag(m, tag, true); t != nil {
		return nil, t
	}
	return ci, nil
}

// worldSource maps a communicator source (or AnySource) to world terms.
// CommOp records one point-to-point operation observed at the API
// layer, in world-rank terms.  The static MPI lint matches the sends
// and receives of a clean run against each other; wildcard receives
// keep abi.AnySource/abi.AnyTag in Peer/Tag.
type CommOp struct {
	Rank     int    // world rank issuing the operation
	Fn       string // MPI function name, e.g. "MPI_Send"
	Send     bool   // send half (false: receive half)
	Peer     int32  // world destination/source; abi.AnySource on wildcard receives
	Tag      int32  // abi.AnyTag on wildcard receives
	Bytes    uint32 // payload bytes sent, or the receive buffer limit
	Blocking bool   // the call cannot return before a partner shows up

	// Data and Instrs are filled only on TraceHook events: the payload
	// observed at the event (sent bytes, matched receive bytes, or a
	// collective contribution; nil when the event moves no local data)
	// and the rank's retired-instruction count when the event fired.
	// CommHook events leave both zero.
	Data   []byte
	Instrs uint64
}

func (p *Proc) recordComm(op CommOp) {
	if p.CommHook != nil {
		op.Rank = p.rank
		p.CommHook(op)
	}
}

// recordTrace emits one digest event to the rank's TraceHook.  Receive
// events are emitted from releaseRequest (completion order = program
// order, matched envelope resolved); sends and collectives are emitted
// at the API call site where the payload is in scope.
func (p *Proc) recordTrace(m *vm.Machine, op CommOp) {
	if p.TraceHook != nil {
		op.Rank = p.rank
		op.Instrs = m.Instrs
		p.TraceHook(op)
	}
}

// collNoRoot is the Peer recorded on trace events for rootless
// collectives (Barrier, Allreduce, Allgather, Alltoall).
const collNoRoot int32 = -1

func worldSource(ci *commInfo, source int32) int32 {
	if source == abi.AnySource {
		return abi.AnySource
	}
	return ci.world(source)
}

// Recv implements MPI_Recv.  status, when nonzero, receives
// {source, tag, count} as three 32-bit words.
func (p *Proc) Recv(m *vm.Machine, buf uint32, count, dtype, source, tag, comm int32, status uint32) *vm.Trap {
	p.enter("MPI_Recv")
	ci, t := p.recvChecks(m, count, dtype, source, tag, comm)
	if t != nil {
		return t
	}
	limit := uint32(count) * abi.DTSize(dtype)
	p.recordComm(CommOp{Fn: "MPI_Recv", Peer: worldSource(ci, source), Tag: tag,
		Bytes: limit, Blocking: true})
	r, t := p.startRecv(m, "MPI_Recv", buf, limit, dtype, worldSource(ci, source), tag, ci.ctx, status)
	if t != nil {
		return t
	}
	r.ci = ci
	if r.done && status != 0 {
		// Completed from the unexpected queue before ci was attached;
		// rewrite the status with communicator-rank translation.
		if t := p.writeStatus(r, status, m); t != nil {
			return t
		}
	}
	return p.wait(r, m)
}

// Irecv implements MPI_Irecv; the request handle is returned.
func (p *Proc) Irecv(m *vm.Machine, buf uint32, count, dtype, source, tag, comm int32) (int32, *vm.Trap) {
	p.enter("MPI_Irecv")
	ci, t := p.recvChecks(m, count, dtype, source, tag, comm)
	if t != nil {
		return 0, t
	}
	limit := uint32(count) * abi.DTSize(dtype)
	p.recordComm(CommOp{Fn: "MPI_Irecv", Peer: worldSource(ci, source), Tag: tag,
		Bytes: limit})
	r, t := p.startRecv(m, "MPI_Irecv", buf, limit, dtype, worldSource(ci, source), tag, ci.ctx, 0)
	if t != nil {
		return 0, t
	}
	r.ci = ci
	return r.id, nil
}

// Wait implements MPI_Wait on a request handle.
func (p *Proc) Wait(m *vm.Machine, reqID int32, status uint32) *vm.Trap {
	p.enter("MPI_Wait")
	if t := p.checkInited(m); t != nil {
		return t
	}
	r, ok := p.lookupRequest(reqID)
	if !ok {
		return p.apiError(m, abi.ErrArg, "invalid request handle %d", reqID)
	}
	if t := p.progressUntil(func() bool { return r.done }, m); t != nil {
		return t
	}
	if !r.send && status != 0 {
		if t := p.writeStatus(r, status, m); t != nil {
			return t
		}
	}
	p.releaseRequest(r, m)
	return nil
}

// Waitall implements MPI_Waitall: reqArray holds count handles; statuses
// (when nonzero) is an array of count 12-byte status blocks.
func (p *Proc) Waitall(m *vm.Machine, count int32, reqArray, statuses uint32) *vm.Trap {
	p.enter("MPI_Waitall")
	if t := p.checkInited(m); t != nil {
		return t
	}
	if count < 0 {
		return p.apiError(m, abi.ErrCount, "negative request count %d", count)
	}
	for i := int32(0); i < count; i++ {
		id, t := m.Load32(reqArray + uint32(4*i))
		if t != nil {
			return t
		}
		var status uint32
		if statuses != 0 {
			status = statuses + uint32(12*i)
		}
		if t := p.Wait(m, int32(id), status); t != nil {
			return t
		}
	}
	return nil
}

// Sendrecv implements MPI_Sendrecv: a posted receive overlapping a
// blocking send — the deadlock-free halo-exchange primitive.
func (p *Proc) Sendrecv(m *vm.Machine, sbuf uint32, scount, dtype, dest, stag int32,
	rbuf uint32, rcount, source, rtag, comm int32, status uint32) *vm.Trap {
	p.enter("MPI_Sendrecv")
	ci, payload, t := p.sendChecks(m, sbuf, scount, dtype, dest, stag, comm)
	if t != nil {
		return t
	}
	if t := p.checkRecvRank(m, ci, source); t != nil {
		return t
	}
	if t := p.checkUserTag(m, rtag, true); t != nil {
		return t
	}
	if rcount < 0 {
		return p.apiError(m, abi.ErrCount, "negative receive count %d", rcount)
	}
	limit := uint32(rcount) * abi.DTSize(dtype)
	// Both halves are posted before either blocks, so neither half can
	// be the sole cause of a wait-for edge; record them non-blocking.
	p.recordComm(CommOp{Fn: "MPI_Sendrecv", Send: true, Peer: ci.world(dest), Tag: stag,
		Bytes: uint32(len(payload))})
	p.recordComm(CommOp{Fn: "MPI_Sendrecv", Peer: worldSource(ci, source), Tag: rtag,
		Bytes: limit})
	p.recordTrace(m, CommOp{Fn: "MPI_Sendrecv", Send: true, Peer: ci.world(dest), Tag: stag,
		Bytes: uint32(len(payload)), Data: payload})
	rr, t := p.startRecv(m, "MPI_Sendrecv", rbuf, limit, dtype, worldSource(ci, source), rtag, ci.ctx, 0)
	if t != nil {
		return t
	}
	rr.ci = ci
	sr, t := p.startSend(m, payload, ci.world(dest), stag, ci.ctx, dtype)
	if t != nil {
		return t
	}
	if t := p.progressUntil(func() bool { return rr.done && sr.done }, m); t != nil {
		return t
	}
	if status != 0 {
		if t := p.writeStatus(rr, status, m); t != nil {
			return t
		}
	}
	p.releaseRequest(rr, m)
	p.releaseRequest(sr, m)
	return nil
}

// Barrier implements MPI_Barrier.
func (p *Proc) Barrier(m *vm.Machine, comm int32) *vm.Trap {
	p.enter("MPI_Barrier")
	if t := p.checkInited(m); t != nil {
		return t
	}
	ci, t := p.resolveComm(m, comm)
	if t != nil {
		return t
	}
	p.recordTrace(m, CommOp{Fn: "MPI_Barrier", Peer: collNoRoot})
	if ci.size() == 1 {
		return nil
	}
	return p.barrier(ci, m)
}

// Bcast implements MPI_Bcast.
func (p *Proc) Bcast(m *vm.Machine, buf uint32, count, dtype, root, comm int32) *vm.Trap {
	p.enter("MPI_Bcast")
	ci, t := p.commonCollChecks(m, count, dtype, root, comm)
	if t != nil {
		return t
	}
	n := uint32(count) * abi.DTSize(dtype)
	var payload []byte
	if ci.myRank == root {
		b, t := m.ReadBytes(buf, int(n))
		if t != nil {
			return t
		}
		payload = b
	}
	p.recordTrace(m, CommOp{Fn: "MPI_Bcast", Send: ci.myRank == root,
		Peer: ci.world(root), Bytes: n, Data: payload})
	if ci.size() == 1 {
		return nil
	}
	out, t := p.bcast(payload, n, root, ci, m)
	if t != nil {
		return t
	}
	if ci.myRank != root {
		return m.WriteBytes(buf, out)
	}
	return nil
}

// Reduce implements MPI_Reduce.
func (p *Proc) Reduce(m *vm.Machine, sbuf, rbuf uint32, count, dtype, op, root, comm int32) *vm.Trap {
	p.enter("MPI_Reduce")
	ci, t := p.commonCollChecks(m, count, dtype, root, comm)
	if t != nil {
		return t
	}
	if op < 0 || op >= abi.NumOps {
		return p.apiError(m, abi.ErrOp, "invalid reduction op %d", op)
	}
	n := uint32(count) * abi.DTSize(dtype)
	payload, tr := m.ReadBytes(sbuf, int(n))
	if tr != nil {
		return tr
	}
	p.recordTrace(m, CommOp{Fn: "MPI_Reduce", Send: true,
		Peer: ci.world(root), Bytes: n, Data: payload})
	out, t := p.reduce(payload, dtype, op, root, ci, m)
	if t != nil {
		return t
	}
	if ci.myRank == root {
		return m.WriteBytes(rbuf, out)
	}
	return nil
}

// Allreduce implements MPI_Allreduce as reduce-to-zero plus broadcast.
func (p *Proc) Allreduce(m *vm.Machine, sbuf, rbuf uint32, count, dtype, op, comm int32) *vm.Trap {
	p.enter("MPI_Allreduce")
	ci, t := p.commonCollChecks(m, count, dtype, 0, comm)
	if t != nil {
		return t
	}
	if op < 0 || op >= abi.NumOps {
		return p.apiError(m, abi.ErrOp, "invalid reduction op %d", op)
	}
	n := uint32(count) * abi.DTSize(dtype)
	payload, tr := m.ReadBytes(sbuf, int(n))
	if tr != nil {
		return tr
	}
	p.recordTrace(m, CommOp{Fn: "MPI_Allreduce", Send: true,
		Peer: collNoRoot, Bytes: n, Data: payload})
	out, t := p.reduce(payload, dtype, op, 0, ci, m)
	if t != nil {
		return t
	}
	full, t := p.bcast(out, n, 0, ci, m)
	if t != nil {
		return t
	}
	return m.WriteBytes(rbuf, full)
}

// Gather implements MPI_Gather (equal send/recv types and counts).
func (p *Proc) Gather(m *vm.Machine, sbuf uint32, count, dtype int32, rbuf uint32, root, comm int32) *vm.Trap {
	p.enter("MPI_Gather")
	ci, t := p.commonCollChecks(m, count, dtype, root, comm)
	if t != nil {
		return t
	}
	n := uint32(count) * abi.DTSize(dtype)
	payload, tr := m.ReadBytes(sbuf, int(n))
	if tr != nil {
		return tr
	}
	p.recordTrace(m, CommOp{Fn: "MPI_Gather", Send: true,
		Peer: ci.world(root), Bytes: n, Data: payload})
	out, t := p.gather(payload, root, ci, dtype, m)
	if t != nil {
		return t
	}
	if ci.myRank == root {
		return m.WriteBytes(rbuf, out)
	}
	return nil
}

// Allgather implements MPI_Allgather as gather-to-zero plus broadcast.
func (p *Proc) Allgather(m *vm.Machine, sbuf uint32, count, dtype int32, rbuf uint32, comm int32) *vm.Trap {
	p.enter("MPI_Allgather")
	ci, t := p.commonCollChecks(m, count, dtype, 0, comm)
	if t != nil {
		return t
	}
	n := uint32(count) * abi.DTSize(dtype)
	payload, tr := m.ReadBytes(sbuf, int(n))
	if tr != nil {
		return tr
	}
	p.recordTrace(m, CommOp{Fn: "MPI_Allgather", Send: true,
		Peer: collNoRoot, Bytes: n, Data: payload})
	out, t := p.gather(payload, 0, ci, dtype, m)
	if t != nil {
		return t
	}
	total := n * uint32(ci.size())
	full, t := p.bcast(out, total, 0, ci, m)
	if t != nil {
		return t
	}
	return m.WriteBytes(rbuf, full)
}

// Scatter implements MPI_Scatter (equal send/recv types and counts).
func (p *Proc) Scatter(m *vm.Machine, sbuf uint32, count, dtype int32, rbuf uint32, root, comm int32) *vm.Trap {
	p.enter("MPI_Scatter")
	ci, t := p.commonCollChecks(m, count, dtype, root, comm)
	if t != nil {
		return t
	}
	n := uint32(count) * abi.DTSize(dtype)
	var payload []byte
	if ci.myRank == root {
		b, t := m.ReadBytes(sbuf, int(n)*int(ci.size()))
		if t != nil {
			return t
		}
		payload = b
	}
	p.recordTrace(m, CommOp{Fn: "MPI_Scatter", Send: ci.myRank == root,
		Peer: ci.world(root), Bytes: n, Data: payload})
	if ci.size() == 1 {
		return m.WriteBytes(rbuf, payload)
	}
	mine, t := p.scatter(payload, n, root, ci, dtype, m)
	if t != nil {
		return t
	}
	return m.WriteBytes(rbuf, mine)
}

// Alltoall implements MPI_Alltoall (equal send/recv types and counts).
func (p *Proc) Alltoall(m *vm.Machine, sbuf uint32, count, dtype int32, rbuf uint32, comm int32) *vm.Trap {
	p.enter("MPI_Alltoall")
	ci, t := p.commonCollChecks(m, count, dtype, 0, comm)
	if t != nil {
		return t
	}
	n := uint32(count) * abi.DTSize(dtype)
	payload, tr := m.ReadBytes(sbuf, int(n)*int(ci.size()))
	if tr != nil {
		return tr
	}
	p.recordTrace(m, CommOp{Fn: "MPI_Alltoall", Send: true,
		Peer: collNoRoot, Bytes: n, Data: payload})
	if ci.size() == 1 {
		return m.WriteBytes(rbuf, payload)
	}
	out, t := p.alltoall(payload, n, ci, dtype, m)
	if t != nil {
		return t
	}
	return m.WriteBytes(rbuf, out)
}

func (p *Proc) commonCollChecks(m *vm.Machine, count, dtype, root, comm int32) (*commInfo, *vm.Trap) {
	if t := p.checkInited(m); t != nil {
		return nil, t
	}
	ci, t := p.resolveComm(m, comm)
	if t != nil {
		return nil, t
	}
	if t := p.checkCountType(m, count, dtype); t != nil {
		return nil, t
	}
	if root < 0 || root >= ci.size() {
		return nil, p.apiError(m, abi.ErrRank, "invalid root rank %d", root)
	}
	return ci, nil
}
