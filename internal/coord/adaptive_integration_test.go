package coord

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"net/http/httptest"

	"mpifault/internal/analysis"
	"mpifault/internal/core"
	"mpifault/internal/report"
	"mpifault/internal/telemetry"
)

// TestCoordinatorAdaptiveByteIdentity is the distributed half of the
// adaptive determinism contract: a coordinator cutting round-barrier
// leases to three workers must reproduce, byte for byte, the CSV of the
// single-process RunAdaptive at the same (seed, contract) — and the
// spool directory must reconstruct the same bytes through faultmerge's
// replay-validating path.
func TestCoordinatorAdaptiveByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive cluster integration test is not short")
	}
	im, ranks := buildWavetoy(t)
	regions := []core.Region{core.RegionRegularReg, core.RegionHeap}
	const seed = 7
	const targetD = 0.15

	// The reference run must use the same AVF priors Submit computes, or
	// the pilot rounds (and hence the executed prefixes) would differ.
	labels, err := analysis.AVFPriors(im)
	if err != nil {
		t.Fatal(err)
	}
	priors, err := core.PriorsFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunAdaptive(core.Config{
		Image: im, Ranks: ranks, Regions: regions, Seed: seed,
		Adaptive: true, TargetHalfWidth: targetD, AVFPriors: priors,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	report.WriteCampaignCSV(&want, "wavetoy", res)

	spool := t.TempDir()
	co := New(Config{Metrics: telemetry.New(), Dir: spool})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	if err := co.Submit(Spec{
		App: "wavetoy", Seed: seed, Regions: []string{"reg", "heap"},
		Adaptive: true, TargetHalfWidth: targetD,
		LeaseSize: 16, LeaseTTLMillis: 10_000,
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	defer wg.Wait()
	stop := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(stop) })
	for _, name := range []string{"w1", "w2", "w3"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := RunWorker(WorkerOptions{
				URL: srv.URL, Name: name, Poll: 25 * time.Millisecond, Stop: stop,
			}); err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
		}(name)
	}

	waitDone(t, co, 5*time.Minute)
	csv, unclassified, err := co.ResultCSV()
	if err != nil {
		t.Fatal(err)
	}
	if unclassified != 0 {
		t.Fatalf("%d unclassified experiments", unclassified)
	}
	if !bytes.Equal(csv, want.Bytes()) {
		t.Fatalf("adaptive cluster CSV differs from single-process RunAdaptive:\n--- cluster\n%s--- single\n%s",
			csv, want.Bytes())
	}
	st := co.Status()
	if st.State != "complete" || len(st.Workers) != 3 {
		t.Fatalf("final status %+v", st)
	}
	if st.Round < 1 || st.Adaptive == "" {
		t.Fatalf("adaptive status not surfaced: %+v", st)
	}
	// Every stratum's spend stayed within the fixed-n cap the planner
	// advertises in the spec.
	if res.Adaptive.TotalExecuted() != st.Results {
		t.Fatalf("cluster executed %d experiments, single process %d",
			st.Results, res.Adaptive.TotalExecuted())
	}

	// Independent reconstruction: faultmerge's directory path replays the
	// planner over the spooled segments and must emit the same bytes.
	m, err := report.MergeDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Adaptive {
		t.Error("spool merge did not recognize the adaptive contract")
	}
	var merged bytes.Buffer
	report.WriteCampaignCSV(&merged, m.App, m.Result)
	if !bytes.Equal(merged.Bytes(), want.Bytes()) {
		t.Fatalf("faultmerge -coord reconstruction differs:\n--- merged\n%s--- single\n%s",
			merged.Bytes(), want.Bytes())
	}
}
