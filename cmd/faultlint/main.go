// Command faultlint runs every static pass in internal/analysis over
// the guest applications and reports what it finds: CFG defects
// (undecodable opcodes, branches into the middle of instructions,
// control falling off the end), ABI/stack-discipline violations,
// floating-point stack imbalance, register-liveness inconsistencies,
// and — with -mpi — mismatches in the recorded point-to-point traffic.
// It also prints the static AVF prediction table: the per-region
// fraction of fault-sensitive state the analyzer expects, the forecast
// the injection campaigns of the paper measure empirically.
//
// The exit status is the number of apps with findings, so a clean tree
// exits 0 and the tool slots into tier-1 checks.
//
// Usage:
//
//	faultlint                      # all apps, static passes + AVF table
//	faultlint -app minimd -v       # one app, per-function statistics
//	faultlint -mpi                 # also lint recorded MPI traffic
//	faultlint -profile             # measured denominators for the AVF table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/mpi"
	"mpifault/internal/profile"
)

func main() {
	app := flag.String("app", "", "lint a single application (default: all)")
	withMPI := flag.Bool("mpi", false, "run the app once and lint its point-to-point traffic")
	withProfile := flag.Bool("profile", false, "measure the app to refine the AVF denominators")
	verbose := flag.Bool("v", false, "per-function liveness and ABI statistics")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("faultlint: ")

	var names []string
	if *app != "" {
		names = []string{*app}
	} else {
		for _, a := range apps.Registry() {
			names = append(names, a.Name)
		}
	}

	bad := 0
	for _, name := range names {
		if lintApp(name, *withMPI, *withProfile, *verbose) {
			bad++
		}
	}
	os.Exit(bad)
}

// lintApp runs all passes over one app and reports; it returns whether
// anything was found.
func lintApp(name string, withMPI, withProfile, verbose bool) bool {
	a, err := apps.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}

	prog, err := analysis.Analyze(im)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	live := analysis.ComputeLiveness(prog)
	abiFindings, abiStats := analysis.ABICheck(prog)

	findings := append([]analysis.Finding(nil), prog.Findings...)
	findings = append(findings, live.Findings...)
	findings = append(findings, abiFindings...)

	if withMPI {
		res := analysis.MPILint(im, a.Default.Ranks, mpi.Config{}, 0, 30*time.Second)
		findings = append(findings, res.Findings...)
		fmt.Printf("%s: mpi traffic: %d ops, %d pairs matched\n", name, res.Ops, res.Matched)
	}

	var prof *profile.Profile
	if withProfile {
		if prof, err = profile.Measure(name, im, a.Default.Ranks, mpi.Config{}); err != nil {
			log.Fatalf("%s: profile: %v", name, err)
		}
	}

	reachable := 0
	for _, f := range prog.Funcs {
		if f.Reachable {
			reachable++
		}
	}
	fmt.Printf("%s: %d functions (%d reachable), %d findings\n", name, len(prog.Funcs), reachable, len(findings))
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}

	if verbose {
		for _, f := range prog.Funcs {
			if !f.Reachable {
				fmt.Printf("  %-24s unreachable\n", f.Sym.Name)
				continue
			}
			st := abiStats[f.Sym.Name]
			frame := "leaf"
			if st.HasFrame {
				frame = "framed"
			}
			use, _ := live.FuncEntryUse(f.Sym.Name)
			fmt.Printf("  %-24s %3d instrs, %2d blocks, %s, %d stack words, entry uses %s\n",
				f.Sym.Name, len(f.Instrs), len(f.Blocks), frame,
				st.MaxDepthWords, use)
		}
	}

	rep := analysis.EstimateAVF(prog, live, abiStats, prof)
	rep.App = name
	fmt.Printf("%s: static fault-sensitivity prediction:\n", name)
	rep.WriteAVF(os.Stdout, nil)
	fmt.Println()
	return len(findings) > 0
}
