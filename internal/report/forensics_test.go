package report

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpifault/internal/classify"
	"mpifault/internal/core"
)

func syntheticForensics() *core.Forensics {
	return &core.Forensics{
		InjectedAt:   100,
		ManifestedAt: 1350,
		TrapKind:     "SIGSEGV",
		TrapPC:       0x0804b430,
		TrapAddr:     0xbfefffb0,
		TrapMsg:      "store",
		LastPCs:      []uint32{0x8048000, 0x8048008, 0x8048010},
	}
}

func TestJournalForensicsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := CreateJournal(path, syntheticHeader(2))
	if err != nil {
		t.Fatal(err)
	}
	withF := syntheticExperiment(0, classify.Crash)
	withF.Forensics = syntheticForensics()
	withoutF := syntheticExperiment(1, classify.Correct)
	for _, e := range []core.Experiment{withF, withoutF} {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, completed, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got := completed["reg/0"]
	if got.Forensics == nil {
		t.Fatal("forensics lost in round trip")
	}
	if !reflect.DeepEqual(got.Forensics, withF.Forensics) {
		t.Errorf("forensics round trip:\ngot:  %+v\nwant: %+v", got.Forensics, withF.Forensics)
	}
	if completed["reg/1"].Forensics != nil {
		t.Errorf("experiment without forensics gained %+v", completed["reg/1"].Forensics)
	}
}

// TestOldJournalStillParses feeds the parser a journal in the exact
// pre-forensics on-disk format; it must read, resume and merge as
// before, with nil Forensics throughout.
func TestOldJournalStillParses(t *testing.T) {
	old := `{"format":"mpifault-campaign-journal","version":1,"app":"wavetoy","seed":9,"injections":2,"regions":["reg"],"ranks":2,"shard":0,"num_shards":1}
{"id":"reg/0","rank":0,"trigger":100,"desc":"eax bit 3","outcome":"Crash"}
{"id":"reg/1","rank":1,"trigger":101,"desc":"eax bit 3","outcome":"Correct"}
`
	path := filepath.Join(t.TempDir(), "old.jsonl")
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	_, completed, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 2 {
		t.Fatalf("old journal read %d entries, want 2", len(completed))
	}
	for id, e := range completed {
		if e.Forensics != nil {
			t.Errorf("%s: old journal entry has forensics %+v", id, e.Forensics)
		}
	}
	if m, err := MergeJournals([]string{path}); err != nil {
		t.Fatalf("old journal failed to merge: %v", err)
	} else if len(m.Result.Experiments) != 2 {
		t.Fatalf("old journal merged %d experiments, want 2", len(m.Result.Experiments))
	}
}

// TestMergeMixedForensicsDuplicates covers overlapping shards where one
// ran with the flight recorder and one without: the outcome agreement
// check must ignore forensics, and the merge must keep the enriched
// record.
func TestMergeMixedForensicsDuplicates(t *testing.T) {
	dir := t.TempDir()
	h := syntheticHeader(2)
	write := func(name string, exps ...core.Experiment) string {
		path := filepath.Join(dir, name)
		j, err := CreateJournal(path, h)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range exps {
			if err := j.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		return path
	}

	plain0 := syntheticExperiment(0, classify.Crash)
	rich0 := plain0
	rich0.Forensics = syntheticForensics()
	e1 := syntheticExperiment(1, classify.Correct)

	a := write("a.jsonl", plain0, e1)
	b := write("b.jsonl", rich0)
	for _, order := range [][]string{{a, b}, {b, a}} {
		m, err := MergeJournals(order)
		if err != nil {
			t.Fatalf("merge %v: %v", order, err)
		}
		var got *core.Forensics
		for _, e := range m.Result.Experiments {
			if e.Region == core.RegionRegularReg && e.Index == 0 {
				got = e.Forensics
			}
		}
		if got == nil {
			t.Errorf("merge %v dropped the forensics-bearing duplicate", order)
		}
	}

	// A genuine outcome disagreement must still be rejected even when
	// forensics differ too.
	bad0 := rich0
	bad0.Outcome = classify.Hang
	c := write("c.jsonl", bad0)
	if _, err := MergeJournals([]string{a, c}); err == nil {
		t.Error("outcome disagreement hidden by forensics was accepted")
	}
}

func TestForensicsLatency(t *testing.T) {
	cases := []struct {
		f    *core.Forensics
		want uint64
		ok   bool
	}{
		{nil, 0, false},
		{&core.Forensics{InjectedAt: 0, ManifestedAt: 50}, 0, false},   // message fault: no instruction trigger
		{&core.Forensics{InjectedAt: 100, ManifestedAt: 90}, 0, false}, // manifested before injection: bogus
		{&core.Forensics{InjectedAt: 100, ManifestedAt: 1350}, 1250, true},
		{&core.Forensics{InjectedAt: 100, ManifestedAt: 100}, 0, true},
	}
	for i, c := range cases {
		got, ok := c.f.Latency()
		if got != c.want || ok != c.ok {
			t.Errorf("case %d: Latency() = (%d, %v), want (%d, %v)", i, got, ok, c.want, c.ok)
		}
	}
}

func TestWriteLatencyHistogram(t *testing.T) {
	crash := syntheticExperiment(0, classify.Crash)
	crash.Forensics = &core.Forensics{InjectedAt: 100, ManifestedAt: 1600} // latency 1500 → <=10000 bucket
	hang := syntheticExperiment(1, classify.Hang)
	hang.Forensics = &core.Forensics{InjectedAt: 50, ManifestedAt: 149} // latency 99 → <=100 bucket
	noF := syntheticExperiment(2, classify.Crash)
	msg := syntheticExperiment(3, classify.Crash)
	msg.Forensics = &core.Forensics{ManifestedAt: 500} // message fault: excluded

	var b strings.Builder
	WriteLatencyHistogram(&b, []core.Experiment{crash, hang, noF, msg})
	out := b.String()
	for _, want := range []string{
		"§5.2",
		"mean crash latency: 1500 instructions",
		"mean hang latency:  99 instructions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram output missing %q:\n%s", want, out)
		}
	}

	// No forensics anywhere → no output at all (keeps faultmerge quiet
	// on pre-forensics journals).
	b.Reset()
	WriteLatencyHistogram(&b, []core.Experiment{noF})
	if b.Len() != 0 {
		t.Errorf("histogram printed without any forensics:\n%s", b.String())
	}
}
