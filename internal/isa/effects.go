package isa

// Per-opcode operand effects: which architectural resources each opcode
// reads and writes, and what it does to the FP register stack.  This is
// the machine-readable counterpart of the interpreter in internal/vm —
// the static analyzer (internal/analysis) derives its def-use, liveness
// and stack-depth facts from this table, and TestEffectsComplete keeps
// it in lockstep with the opcode list.

// Operand identifies one architectural resource an opcode can read or
// write, at the granularity the fixed 8-byte encoding exposes.
type Operand uint8

const (
	// OperandRd is the destination-register slot (encoding byte 1).
	OperandRd Operand = iota
	// OperandRa is the first source / base-register slot (byte 2).
	OperandRa
	// OperandRb is the second source / index-register slot (byte 3).
	OperandRb
	// OperandRc is the store-source register.  The encoding carries only
	// three register bytes, so the store forms, which need (base, index,
	// source), transmit the source in the Rd slot; Instr.Rc reads it back.
	OperandRc
	// OperandFlags is the condition-flags register.
	OperandFlags
	// OperandSP is the stack pointer implicitly moved by push/pop/call/ret.
	OperandSP
	// OperandMem is data memory.
	OperandMem
	// OperandFP is the floating-point register stack.
	OperandFP

	numOperands
)

var operandNames = [numOperands]string{"rd", "ra", "rb", "rc", "flags", "sp", "mem", "fp"}

func (o Operand) String() string {
	if int(o) < len(operandNames) {
		return operandNames[o]
	}
	return "operand?"
}

// opEffects records the architectural effects of one opcode.
type opEffects struct {
	defined bool
	reads   []Operand
	writes  []Operand
	fpPop   int8 // FP stack slots popped
	fpPush  int8 // FP stack slots pushed
	fpMin   int8 // minimum FP stack depth required before executing
	fpImm   bool // addresses st(imm): real depth requirement is imm+1
	syscall bool // OpSys: resource usage depends on the syscall number
}

// effTable mirrors the interpreter in internal/vm/exec.go.  Conventions:
//
//   - Call/Callr/Ret/Push/Pop move SP and touch the stack, so they read
//     SP, write SP, and read or write memory.
//   - Cmp/Cmpi/Fcomp overwrite the flags wholesale (pure write); Fxam
//     updates only FlagZ and FlagUN, preserving the rest, so it both
//     reads and writes flags.
//   - OpSys is marked syscall: the kernel reads r0-r3 (argument count
//     depends on the syscall number) and writes the result to r0.
//     Analyses must treat it conservatively; see Instr-level helpers.
var effTable = [opMax]opEffects{
	OpInvalid: {defined: true}, // raises SIGILL; no architectural effect
	OpNop:     {defined: true},
	OpMovi:    {defined: true, writes: []Operand{OperandRd}},
	OpMovr:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpAdd:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpSub:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpMul:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpDivs:    {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpRems:    {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpAnd:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpOr:      {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpXor:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpShl:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpShr:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpSar:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandRd}},
	OpNeg:     {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpAddi:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpMuli:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpAndi:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpOri:     {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpXori:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpShli:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpShri:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpSari:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandRd}},
	OpCmp:     {defined: true, reads: []Operand{OperandRa, OperandRb}, writes: []Operand{OperandFlags}},
	OpCmpi:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandFlags}},
	OpJmp:     {defined: true},
	OpBeq:     {defined: true, reads: []Operand{OperandFlags}},
	OpBne:     {defined: true, reads: []Operand{OperandFlags}},
	OpBlt:     {defined: true, reads: []Operand{OperandFlags}},
	OpBge:     {defined: true, reads: []Operand{OperandFlags}},
	OpBle:     {defined: true, reads: []Operand{OperandFlags}},
	OpBgt:     {defined: true, reads: []Operand{OperandFlags}},
	OpBltu:    {defined: true, reads: []Operand{OperandFlags}},
	OpBgeu:    {defined: true, reads: []Operand{OperandFlags}},
	OpBun:     {defined: true, reads: []Operand{OperandFlags}},
	OpCall:    {defined: true, reads: []Operand{OperandSP}, writes: []Operand{OperandSP, OperandMem}},
	OpCallr:   {defined: true, reads: []Operand{OperandRa, OperandSP}, writes: []Operand{OperandSP, OperandMem}},
	OpRet:     {defined: true, reads: []Operand{OperandSP, OperandMem}, writes: []Operand{OperandSP}},
	OpPush:    {defined: true, reads: []Operand{OperandRa, OperandSP}, writes: []Operand{OperandSP, OperandMem}},
	OpPop:     {defined: true, reads: []Operand{OperandSP, OperandMem}, writes: []Operand{OperandRd, OperandSP}},
	OpLd:      {defined: true, reads: []Operand{OperandRa, OperandRb, OperandMem}, writes: []Operand{OperandRd}},
	OpSt:      {defined: true, reads: []Operand{OperandRa, OperandRb, OperandRc}, writes: []Operand{OperandMem}},
	OpLdb:     {defined: true, reads: []Operand{OperandRa, OperandRb, OperandMem}, writes: []Operand{OperandRd}},
	OpStb:     {defined: true, reads: []Operand{OperandRa, OperandRb, OperandRc}, writes: []Operand{OperandMem}},
	OpFld:     {defined: true, reads: []Operand{OperandRa, OperandRb, OperandMem}, writes: []Operand{OperandFP}, fpPush: 1},
	OpFldz:    {defined: true, writes: []Operand{OperandFP}, fpPush: 1},
	OpFld1:    {defined: true, writes: []Operand{OperandFP}, fpPush: 1},
	OpFldst:   {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpPush: 1, fpMin: 1, fpImm: true},
	OpFst:     {defined: true, reads: []Operand{OperandRa, OperandRb, OperandFP}, writes: []Operand{OperandMem}, fpMin: 1},
	OpFstp:    {defined: true, reads: []Operand{OperandRa, OperandRb, OperandFP}, writes: []Operand{OperandMem, OperandFP}, fpPop: 1, fpMin: 1},
	OpFaddp:   {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpPop: 1, fpMin: 2},
	OpFsubp:   {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpPop: 1, fpMin: 2},
	OpFmulp:   {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpPop: 1, fpMin: 2},
	OpFdivp:   {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpPop: 1, fpMin: 2},
	OpFchs:    {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpMin: 1},
	OpFabs:    {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpMin: 1},
	OpFsqrt:   {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpMin: 1},
	OpFxch:    {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFP}, fpMin: 1, fpImm: true},
	OpFcomp:   {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandFlags, OperandFP}, fpPop: 2, fpMin: 2},
	OpFxam:    {defined: true, reads: []Operand{OperandFP, OperandFlags}, writes: []Operand{OperandFlags}, fpMin: 1},
	OpFild:    {defined: true, reads: []Operand{OperandRa}, writes: []Operand{OperandFP}, fpPush: 1},
	OpFist:    {defined: true, reads: []Operand{OperandFP}, writes: []Operand{OperandRd, OperandFP}, fpPop: 1, fpMin: 1},
	OpSys:     {defined: true, syscall: true},
}

func (op Op) effects() opEffects {
	if int(op) < len(effTable) {
		return effTable[op]
	}
	return opEffects{}
}

// Reads returns the architectural resources op reads, as operand slots.
// The list is a fresh copy; callers may keep or modify it.
func (op Op) Reads() []Operand {
	return append([]Operand(nil), op.effects().reads...)
}

// Writes returns the architectural resources op writes.
func (op Op) Writes() []Operand {
	return append([]Operand(nil), op.effects().writes...)
}

func (op Op) readsOp(o Operand) bool {
	for _, r := range op.effects().reads {
		if r == o {
			return true
		}
	}
	return false
}

func (op Op) writesOp(o Operand) bool {
	for _, w := range op.effects().writes {
		if w == o {
			return true
		}
	}
	return false
}

// IsStore reports whether op writes data memory (stores, push, call).
func (op Op) IsStore() bool { return op.writesOp(OperandMem) }

// IsLoad reports whether op reads data memory (loads, pop, ret).
func (op Op) IsLoad() bool { return op.readsOp(OperandMem) }

// ReadsFlags reports whether op's behavior depends on the flags register.
func (op Op) ReadsFlags() bool { return op.readsOp(OperandFlags) }

// WritesFlags reports whether op modifies the flags register.  Note that
// OpFxam updates only FlagZ/FlagUN (it also reads flags); Cmp/Cmpi/Fcomp
// replace the register wholesale.
func (op Op) WritesFlags() bool { return op.writesOp(OperandFlags) }

// IsSyscall reports whether op is the system-call instruction, whose
// register usage depends on the syscall number: the kernel reads up to
// r0-r3 and writes the result to r0.  Analyses without a per-syscall
// model must assume r0-r3 read and nothing usefully defined.
func (op Op) IsSyscall() bool { return op.effects().syscall }

// UsesSP reports whether op implicitly reads or adjusts the stack pointer.
func (op Op) UsesSP() bool { return op.readsOp(OperandSP) || op.writesOp(OperandSP) }

// HasEffects reports whether the effects table defines op.  Every opcode
// below opMax is defined (TestEffectsComplete enforces it); the method
// exists so that test and future extensions can check explicitly.
func (op Op) HasEffects() bool { return op.effects().defined }

// SrcGPRs returns the general-purpose registers in reads — including
// memory-form base/index registers, the store source (Rc) and the
// implicit stack pointer — as register numbers.  Operand bytes equal to
// RegNone (absent index/base) or outside the register file are skipped;
// use OperandsValid to detect the latter.  OpSys's r0-r3 syscall
// arguments are not structural operands and are not included.
func (in Instr) SrcGPRs() []int {
	var regs []int
	add := func(b uint8) {
		if int(b) < NumGPR {
			for _, r := range regs {
				if r == int(b) {
					return
				}
			}
			regs = append(regs, int(b))
		}
	}
	for _, o := range in.Op.effects().reads {
		switch o {
		case OperandRa:
			add(in.Ra)
		case OperandRb:
			add(in.Rb)
		case OperandRc:
			add(in.Rc())
		case OperandSP:
			add(SP)
		}
	}
	return regs
}

// DstGPRs returns the general-purpose registers in writes, as register
// numbers (the Rd slot plus the implicit stack pointer where moved).
func (in Instr) DstGPRs() []int {
	var regs []int
	add := func(b uint8) {
		if int(b) < NumGPR {
			for _, r := range regs {
				if r == int(b) {
					return
				}
			}
			regs = append(regs, int(b))
		}
	}
	for _, o := range in.Op.effects().writes {
		switch o {
		case OperandRd:
			add(in.Rd)
		case OperandSP:
			add(SP)
		}
	}
	return regs
}

// OperandsValid reports whether every register byte the instruction
// actually uses names an existing register, mirroring the interpreter's
// execution-time checks: a used slot outside the register file raises
// SIGILL, except that memory-form base/index bytes may be RegNone.
func (in Instr) OperandsValid() bool {
	if !in.Op.Valid() {
		return false
	}
	eff := in.Op.effects()
	memForm := in.Op.IsMemForm()
	check := func(b uint8, noneOK bool) bool {
		if noneOK && b == RegNone {
			return true
		}
		return int(b) < NumGPR
	}
	for _, lists := range [2][]Operand{eff.reads, eff.writes} {
		for _, o := range lists {
			switch o {
			case OperandRd:
				if !check(in.Rd, false) {
					return false
				}
			case OperandRa:
				if !check(in.Ra, memForm) {
					return false
				}
			case OperandRb:
				if !check(in.Rb, memForm) {
					return false
				}
			case OperandRc:
				if !check(in.Rc(), false) {
					return false
				}
			}
		}
	}
	return true
}

// FPEffect returns the instruction's FP-stack behavior: min is the
// stack depth required before execution (Imm-adjusted for fldst/fxch,
// which address st(imm)), and delta is the net depth change.  A
// negative or absurd Imm yields a min no machine state can satisfy, so
// depth checkers flag it naturally.
func (in Instr) FPEffect() (min, delta int) {
	eff := in.Op.effects()
	min = int(eff.fpMin)
	if eff.fpImm {
		if in.Imm < 0 || in.Imm >= int32(NumFPReg) {
			min = NumFPReg + 1
		} else if need := int(in.Imm) + 1; need > min {
			min = need
		}
	}
	return min, int(eff.fpPush) - int(eff.fpPop)
}
