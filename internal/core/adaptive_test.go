package core

import (
	"reflect"
	"testing"

	"mpifault/internal/classify"
	"mpifault/internal/sampling"
)

// The differential tests run at a loose d so the per-region caps stay
// small (d=0.15 at 95 % -> cap 43): the contract under test — prefix
// subsetting, byte-identity, replay — is the same at any d.
const testTargetD = 0.15

var adaptiveTestRegions = []Region{RegionRegularReg, RegionData, RegionHeap, RegionMessage}

func runAdaptiveTest(t testing.TB, app string, regions []Region, seed uint64) (*Result, Config) {
	t.Helper()
	im, ranks := buildApp(t, app)
	cfg := Config{
		Image: im, Ranks: ranks, Regions: regions, Seed: seed,
		Adaptive: true, TargetHalfWidth: testTargetD,
		KeepExperiments: true,
	}
	res, err := RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil {
		t.Fatal("adaptive run returned no planner stats")
	}
	return res, cfg
}

// TestAdaptiveMatchesFixedCampaign is the differential gate: on every
// app, the adaptive campaign must (a) execute a strict per-region prefix
// of the fixed-n campaign's experiment sequence with identical outcomes,
// (b) spend no more than the fixed design, and (c) land its per-region
// rate estimates within the combined CI of the fixed-n estimates.
func TestAdaptiveMatchesFixedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign differential is slow")
	}
	cap, err := sampling.SampleSize(DefaultConfidence, testTargetD)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"wavetoy", "minimd", "minicam"} {
		t.Run(app, func(t *testing.T) {
			adaptive, _ := runAdaptiveTest(t, app, adaptiveTestRegions, 11)
			im, ranks := buildApp(t, app)
			fixed, err := Run(Config{
				Image: im, Ranks: ranks, Regions: adaptiveTestRegions, Seed: 11,
				Injections: cap, KeepExperiments: true,
			})
			if err != nil {
				t.Fatal(err)
			}

			// (a) Subset with identical outcomes: every adaptive experiment
			// appears in the fixed campaign and agrees bit for bit on what
			// happened — the planner chooses WHICH indices run, never what
			// they do.
			byID := make(map[string]Experiment, len(fixed.Experiments))
			for _, e := range fixed.Experiments {
				byID[e.ID()] = e
			}
			for _, e := range adaptive.Experiments {
				f, ok := byID[e.ID()]
				if !ok {
					t.Fatalf("adaptive experiment %s not in the fixed campaign", e.ID())
				}
				if e.Outcome != f.Outcome || e.Trigger != f.Trigger || e.Rank != f.Rank {
					t.Fatalf("experiment %s diverged: adaptive %+v, fixed %+v", e.ID(), e, f)
				}
				// Message-region Desc records the offset within the packet
				// that happened to deliver the trigger byte, and a rank's
				// inbox interleaves data with header-only control packets in
				// goroutine-arrival order — a pre-existing wobble of the
				// label (never the trigger or the outcome), so Desc is only
				// compared for the machine-state regions.
				if e.Region != RegionMessage && e.Desc != f.Desc {
					t.Fatalf("experiment %s desc diverged: %q vs %q", e.ID(), e.Desc, f.Desc)
				}
			}
			// ... and per region it is a gapless prefix [0, n_r).
			next := make(map[Region]int)
			sorted := append([]Experiment(nil), adaptive.Experiments...)
			SortExperimentsByPlan(adaptiveTestRegions, sorted)
			for _, e := range sorted {
				if e.Index != next[e.Region] {
					t.Fatalf("%s: index %d breaks the prefix (want %d)", e.Region, e.Index, next[e.Region])
				}
				next[e.Region]++
			}

			// (b) Never more expensive than the worst case.
			st := adaptive.Adaptive
			if st.TotalExecuted() > st.FixedTotal() {
				t.Errorf("adaptive spent %d > fixed %d", st.TotalExecuted(), st.FixedTotal())
			}
			for _, s := range st.Strata {
				if s.Executed > cap {
					t.Errorf("%s executed %d beyond the cap %d", s.Region, s.Executed, cap)
				}
				if !s.Closed {
					t.Errorf("%s never closed", s.Region)
				}
			}

			// (c) Rate agreement within the combined intervals.
			for _, r := range adaptiveTestRegions {
				ta, _ := adaptive.Tally(r)
				tf, _ := fixed.Tally(r)
				if ta.Executions == 0 || tf.Executions == 0 {
					t.Fatalf("%s: empty tally (adaptive %d, fixed %d)", r, ta.Executions, tf.Executions)
				}
				pa := float64(ta.Errors()) / float64(ta.Executions)
				pf := float64(tf.Errors()) / float64(tf.Executions)
				hwA, err := sampling.WilsonHalfWidth(DefaultConfidence, ta.Errors(), ta.Executions)
				if err != nil {
					t.Fatal(err)
				}
				hwF, err := sampling.WilsonHalfWidth(DefaultConfidence, tf.Errors(), tf.Executions)
				if err != nil {
					t.Fatal(err)
				}
				if diff := pa - pf; diff > hwA+hwF || -diff > hwA+hwF {
					t.Errorf("%s: adaptive %.3f vs fixed %.3f disagree beyond the combined CI %.3f",
						r, pa, pf, hwA+hwF)
				}
			}
		})
	}
}

// TestAdaptiveRerunByteIdentical: a fixed (seed, config) adaptive
// campaign is fully deterministic — same rounds, same experiments in the
// same order, same tallies, same planner trace.
func TestAdaptiveRerunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	regions := []Region{RegionRegularReg, RegionHeap}
	a, _ := runAdaptiveTest(t, "wavetoy", regions, 7)
	b, _ := runAdaptiveTest(t, "wavetoy", regions, 7)
	if !reflect.DeepEqual(a.Experiments, b.Experiments) {
		t.Error("experiment sequences diverged between identical runs")
	}
	if !reflect.DeepEqual(a.Tallies, b.Tallies) {
		t.Error("tallies diverged between identical runs")
	}
	if !reflect.DeepEqual(a.Adaptive, b.Adaptive) {
		t.Error("planner stats diverged between identical runs")
	}
}

// TestAdaptiveReplayMatchesRecorded: the journal self-validation
// property — replaying the planner over the recorded outcomes must land
// on exactly the executed counts the campaign recorded.
func TestAdaptiveReplayMatchesRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	regions := []Region{RegionRegularReg, RegionHeap}
	res, cfg := runAdaptiveTest(t, "wavetoy", regions, 7)
	if _, err := NormalizeAdaptive(&cfg); err != nil {
		t.Fatal(err)
	}
	outcomes := make(map[Region]map[int]bool)
	for _, e := range res.Experiments {
		if outcomes[e.Region] == nil {
			outcomes[e.Region] = make(map[int]bool)
		}
		outcomes[e.Region][e.Index] = e.Outcome != classify.Correct
	}
	priors := EffectivePriors(regions, cfg.AVFPriors)
	executed, err := ReplayAdaptive(cfg.Confidence, cfg.TargetHalfWidth, cfg.RoundSize, regions, priors,
		func(region, index int) (bool, error) {
			m, ok := outcomes[regions[region]][index]
			if !ok {
				t.Fatalf("replay consulted unrecorded experiment %s:%d", regions[region], index)
			}
			return m, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Adaptive.Strata {
		if executed[i] != s.Executed {
			t.Errorf("%s: replay derived %d executed, campaign recorded %d", s.Region, executed[i], s.Executed)
		}
	}
}

func TestNormalizeAdaptiveValidation(t *testing.T) {
	base := func() Config {
		return Config{Adaptive: true, Regions: []Region{RegionRegularReg}}
	}

	cfg := base()
	cap, err := NormalizeAdaptive(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Confidence != DefaultConfidence || cfg.TargetHalfWidth != DefaultTargetHalfWidth {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.Injections != cap {
		t.Errorf("Injections %d, want the cap %d", cfg.Injections, cap)
	}
	// Idempotent: a second normalization (RunAdaptive's own) is a no-op.
	snapshot := cfg
	if _, err := NormalizeAdaptive(&cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snapshot, cfg) {
		t.Errorf("normalization not idempotent: %+v vs %+v", snapshot, cfg)
	}

	cfg = base()
	cfg.NumShards = 3
	if _, err := NormalizeAdaptive(&cfg); err == nil {
		t.Error("sharded adaptive accepted")
	}
	cfg = base()
	cfg.Entries = []PlanEntry{{Region: RegionRegularReg}}
	if _, err := NormalizeAdaptive(&cfg); err == nil {
		t.Error("explicit entries accepted")
	}
	cfg = base()
	cfg.CheckpointInterval = 1000
	if _, err := NormalizeAdaptive(&cfg); err == nil {
		t.Error("checkpointing accepted")
	}
	cfg = base()
	cfg.Injections = 17
	if _, err := NormalizeAdaptive(&cfg); err == nil {
		t.Error("foreign injection count accepted")
	}
}
