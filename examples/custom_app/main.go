// Custom application: author a brand-new guest MPI program with the
// assembler DSL and put it under the fault injector — the workflow a user
// of this library follows to assess their own code's fault sensitivity.
//
// The program estimates pi by midpoint integration of 4/(1+x^2) over
// [0,1], each rank integrating its own stripe and an Allreduce combining
// the partial sums; rank 0 prints the estimate.
//
//	go run ./examples/custom_app
package main

import (
	"fmt"
	"log"
	"time"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/core"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/mpi"
)

const stepsPerRank = 4096

func buildPi() (*image.Image, error) {
	b := asm.NewBuilder()
	guest.AddLibc(b)   // user-owned runtime: memcpy, print, abort, ...
	guest.AddLibMPI(b) // MPI-owned stubs: excluded from fault dictionary
	m := b.Module("pi", image.OwnerUser)

	m.DataString("s_pi", "pi is approximately ")
	m.DataString("s_nl", "\n")
	m.BSS("g_rank", 4)
	m.BSS("g_size", 4)
	m.BSS("g_sum", 8)
	m.BSS("g_pi", 8)

	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	f.StSym("g_rank", 0, isa.R0)
	f.CallArgs("MPI_Comm_size", asm.Imm(abi.CommWorld))
	f.StSym("g_size", 0, isa.R0)

	// h = 1/(size*steps); local sum over i in [rank*steps, (rank+1)*steps)
	// of 4/(1+x^2) with x = (i+0.5)*h.
	f.Fldz()
	f.FstpSym("g_sum", 0)
	f.LdSym(isa.R1, "g_rank", 0)
	f.Muli(isa.R1, isa.R1, stepsPerRank) // first index
	f.Movi(isa.R2, 0)                    // i
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.Cmpi(isa.R2, stepsPerRank)
	f.Bge(done)
	f.Add(isa.R0, isa.R1, isa.R2)
	f.Fild(isa.R0) // [gi]
	f.FldConst(0.5)
	f.Faddp() // [gi+0.5]
	// h = 1/(size*steps)
	f.LdSym(isa.R3, "g_size", 0)
	f.Muli(isa.R3, isa.R3, stepsPerRank)
	f.Fild(isa.R3) // [n, gi+.5]
	f.Fdivp()      // [x]
	f.Fldst(0)
	f.Fmulp() // [x^2]
	f.Fld1()
	f.Faddp() // [1+x^2]
	f.FldConst(4.0)
	f.Fxch(1) // [1+x^2, 4]
	f.Fdivp() // [4/(1+x^2)]
	f.FldSym("g_sum", 0)
	f.Faddp()
	f.FstpSym("g_sum", 0)
	f.Addi(isa.R2, isa.R2, 1)
	f.Jmp(loop)
	f.Label(done)

	// sum *= h; pi = allreduce(sum)
	f.FldSym("g_sum", 0)
	f.LdSym(isa.R3, "g_size", 0)
	f.Muli(isa.R3, isa.R3, stepsPerRank)
	f.Fild(isa.R3)
	f.Fdivp()
	f.FstpSym("g_sum", 0)
	f.CallArgs("MPI_Allreduce", asm.Sym("g_sum"), asm.Sym("g_pi"),
		asm.Imm(1), asm.Imm(abi.DTF64), asm.Imm(abi.OpSum), asm.Imm(abi.CommWorld))

	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skip := f.NewLabel()
	f.Bne(skip)
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_pi"), asm.Imm(20))
	f.CallArgs("print_f64", asm.Imm(abi.FdStdout), asm.Sym("g_pi"), asm.Imm(10))
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_nl"), asm.Imm(1))
	f.Label(skip)

	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()

	return b.Link(asm.LinkConfig{})
}

func main() {
	log.SetFlags(0)
	im, err := buildPi()
	if err != nil {
		log.Fatal(err)
	}
	const ranks = 4

	golden, err := core.RunGolden(im, ranks, mpi.Config{}, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden: %s", golden.Result.Stdout[0])

	// A small campaign over three regions of the new program.
	res, err := core.Run(core.Config{
		Image: im, Ranks: ranks, Injections: 40, Seed: 3,
		Regions: []core.Region{core.RegionRegularReg, core.RegionFPReg, core.RegionMessage},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fault sensitivity of the custom program:")
	for _, t := range res.Tallies {
		fmt.Printf("  %-14s error rate %5.1f%%\n", t.Region, t.ErrorRate())
	}
}
