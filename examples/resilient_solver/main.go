// Resilient solver: §8.2 of the paper notes that "iterative algorithms
// for solving systems of linear equations use successive approximations
// ... A small error or lost data only slows convergence rather than
// leading to wrong results" (naturally fault tolerant algorithms).
//
// This example builds a distributed Jacobi solver for a diagonally
// dominant tridiagonal system and subjects it to the same heap fault
// injections that silently corrupt wavetoy's output.  Because the solver
// iterates *to a tolerance* (rather than for a fixed step count), a
// corrupted iterate is simply pulled back to the fixed point: most heap
// faults end in the Correct class, unlike wavetoy's, where the same
// faults produce Incorrect output.
//
//	go run ./examples/resilient_solver
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mpifault/internal/abi"
	"mpifault/internal/apps"
	"mpifault/internal/asm"
	"mpifault/internal/classify"
	"mpifault/internal/cluster"
	"mpifault/internal/core"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/mpi"
	"mpifault/internal/rng"
	"mpifault/internal/vm"
)

const (
	nPerRank = 16
	maxIters = 4000
	ranks    = 8
)

// buildJacobi assembles the solver guest program: solve A x = b with
// A = tridiag(-1, 4, -1) and b = A·1, so the solution is exactly ones.
// Each iteration exchanges one halo value per side with MPI_Sendrecv and
// allreduces the squared update norm; the loop exits on tolerance.
func buildJacobi() (*image.Image, error) {
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("jacobi", image.OwnerUser)

	m.DataString("s_file", "jacobi.out")
	m.DataString("s_fail", "jacobi: did not converge\n")
	m.DataString("s_done", "jacobi: converged\n")
	m.DataF64("c_tol", 1e-9)
	m.BSS("g_rank", 4)
	m.BSS("g_size", 4)
	m.BSS("g_x", 4)  // heap: n+2 f64 (ghosts at ends)
	m.BSS("g_xn", 4) // heap: n+2 f64 next iterate
	m.BSS("g_b", 4)  // heap: n f64 right-hand side
	m.BSS("g_iters", 4)
	m.BSS("g_res", 8)  // local squared-update norm
	m.BSS("g_rtot", 8) // reduced norm
	m.BSS("g_sb", 8)   // sendrecv staging
	m.BSS("g_rb", 8)

	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	f.StSym("g_rank", 0, isa.R0)
	f.CallArgs("MPI_Comm_size", asm.Imm(abi.CommWorld))
	f.StSym("g_size", 0, isa.R0)

	alloc := func(sym string, bytes int32) {
		f.CallArgs("malloc", asm.Imm(bytes))
		f.StSym(sym, 0, isa.R0)
	}
	alloc("g_x", (nPerRank+2)*8)
	alloc("g_xn", (nPerRank+2)*8)
	alloc("g_b", nPerRank*8)

	// Init: x = 0 everywhere; b_i = 2 except 3 at the global edges.
	f.LdSym(isa.R1, "g_x", 0)
	f.LdSym(isa.R2, "g_xn", 0)
	f.LdSym(isa.R3, "g_b", 0)
	f.Movi(isa.R4, 0)
	il, id := f.NewLabel(), f.NewLabel()
	f.Label(il)
	f.Cmpi(isa.R4, (nPerRank+2)*8)
	f.Bge(id)
	f.Fldz()
	f.Fstpx(isa.R1, isa.R4, 0)
	f.Fldz()
	f.Fstpx(isa.R2, isa.R4, 0)
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(il)
	f.Label(id)
	f.Movi(isa.R4, 0)
	bl, bd := f.NewLabel(), f.NewLabel()
	f.Label(bl)
	f.Cmpi(isa.R4, nPerRank*8)
	f.Bge(bd)
	f.FldConst(2.0)
	f.Fstpx(isa.R3, isa.R4, 0)
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(bl)
	f.Label(bd)
	// Global edge adjustments: rank 0's first entry and the last rank's
	// last entry get 3 (the missing -1 neighbour contribution of b=A*1).
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	notFirst := f.NewLabel()
	f.Bne(notFirst)
	f.FldConst(3.0)
	f.Fstp(isa.R3, 0)
	f.Label(notFirst)
	f.LdSym(isa.R0, "g_rank", 0)
	f.LdSym(isa.R1, "g_size", 0)
	f.Addi(isa.R1, isa.R1, -1)
	f.Cmp(isa.R0, isa.R1)
	notLast := f.NewLabel()
	f.Bne(notLast)
	f.FldConst(3.0)
	f.Fstp(isa.R3, (nPerRank-1)*8)
	f.Label(notLast)

	// Iteration loop.
	f.Movi(isa.R4, 0)
	f.StSym("g_iters", 0, isa.R4)
	loop, converged, failed := f.NewLabel(), f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.LdSym(isa.R4, "g_iters", 0)
	f.Cmpi(isa.R4, maxIters)
	f.Bge(failed)

	// Halo exchange via Sendrecv around a ring: every rank sends and
	// receives, so the pairing is always complete; the physical-edge
	// ghosts are overwritten with the Dirichlet zeros right afterward.
	exchange := func(sendOff, recvGhostOff int32, dir int32) {
		// dest = (rank+dir) mod size, source = (rank-dir) mod size
		f.LdSym(isa.R0, "g_rank", 0)
		f.LdSym(isa.R1, "g_size", 0)
		f.Addi(isa.R2, isa.R0, dir)
		f.Add(isa.R2, isa.R2, isa.R1)
		f.Rems(isa.R2, isa.R2, isa.R1)
		f.Addi(isa.R3, isa.R0, -dir)
		f.Add(isa.R3, isa.R3, isa.R1)
		f.Rems(isa.R3, isa.R3, isa.R1)
		// stage x[sendOff] into g_sb
		f.LdSym(isa.R5, "g_x", 0)
		f.Fldx(isa.R5, -1, sendOff)
		f.FstpSym("g_sb", 0)
		f.CallArgs("MPI_Sendrecv",
			asm.Sym("g_sb"), asm.Imm(1), asm.Imm(abi.DTF64), asm.Reg(isa.R2), asm.Imm(11),
			asm.Sym("g_rb"), asm.Imm(1), asm.Reg(isa.R3), asm.Imm(11),
			asm.Imm(abi.CommWorld), asm.Imm(0))
		// ghost <- received value
		f.LdSym(isa.R5, "g_x", 0)
		f.FldSym("g_rb", 0)
		f.Fstp(isa.R5, recvGhostOff)
	}
	// Send my last value rightward; receive into my low ghost.
	exchange((nPerRank)*8, 0, 1)
	// Send my first value leftward; receive into my high ghost.
	exchange(1*8, (nPerRank+1)*8, -1)

	// Edge ranks: physical Dirichlet ghosts are zero.
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	gz1 := f.NewLabel()
	f.Bne(gz1)
	f.LdSym(isa.R5, "g_x", 0)
	f.Fldz()
	f.Fstp(isa.R5, 0)
	f.Label(gz1)
	f.LdSym(isa.R0, "g_rank", 0)
	f.LdSym(isa.R1, "g_size", 0)
	f.Addi(isa.R1, isa.R1, -1)
	f.Cmp(isa.R0, isa.R1)
	gz2 := f.NewLabel()
	f.Bne(gz2)
	f.LdSym(isa.R5, "g_x", 0)
	f.Fldz()
	f.Fstp(isa.R5, (nPerRank+1)*8)
	f.Label(gz2)

	// Jacobi sweep: xn_i = (b_i + x_{i-1} + x_{i+1})/4, accumulate the
	// squared update into g_res.
	f.Fldz()
	f.FstpSym("g_res", 0)
	f.LdSym(isa.R1, "g_x", 0)
	f.LdSym(isa.R2, "g_xn", 0)
	f.LdSym(isa.R3, "g_b", 0)
	f.Movi(isa.R4, 8)
	sl, sd := f.NewLabel(), f.NewLabel()
	f.Label(sl)
	f.Cmpi(isa.R4, (nPerRank+1)*8)
	f.Bge(sd)
	f.Fldx(isa.R1, isa.R4, -8) // [xm]
	f.Fldx(isa.R1, isa.R4, 8)  // [xp, xm]
	f.Faddp()
	f.Fldx(isa.R3, isa.R4, -8) // b index = i-1 (b has no ghosts)
	f.Faddp()
	f.FldConst(0.25)
	f.Fmulp() // [xn]
	f.Fldst(0)
	f.Fldx(isa.R1, isa.R4, 0) // [x, xn, xn]
	f.Fsubp()                 // [d, xn]
	f.Fldst(0)
	f.Fmulp() // [d^2, xn]
	f.FldSym("g_res", 0)
	f.Faddp()
	f.FstpSym("g_res", 0)
	f.Fstpx(isa.R2, isa.R4, 0)
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(sl)
	f.Label(sd)

	// Swap x and xn.
	f.LdSym(isa.R1, "g_x", 0)
	f.LdSym(isa.R2, "g_xn", 0)
	f.StSym("g_x", 0, isa.R2)
	f.StSym("g_xn", 0, isa.R1)

	// Global residual; converged when below tolerance.
	f.CallArgs("MPI_Allreduce", asm.Sym("g_res"), asm.Sym("g_rtot"),
		asm.Imm(1), asm.Imm(abi.DTF64), asm.Imm(abi.OpSum), asm.Imm(abi.CommWorld))
	f.LdSym(isa.R4, "g_iters", 0)
	f.Addi(isa.R4, isa.R4, 1)
	f.StSym("g_iters", 0, isa.R4)
	f.FldSym("g_rtot", 0)
	f.FldConst(1e-9)
	f.Fcomp() // tol vs res: LT set when tol < res (keep iterating)
	f.Blt(loop)
	f.Jmp(converged)

	f.Label(failed)
	// Not converged within maxIters: report failure (differs from the
	// golden output, so the harness classifies the run Incorrect).
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipFail := f.NewLabel()
	f.Bne(skipFail)
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_fail"), asm.Imm(25))
	f.Label(skipFail)
	fin := f.NewLabel()
	f.Jmp(fin)

	f.Label(converged)
	// Rank 0 writes the solution at modest precision: the converged
	// iterate is tolerance-accurate regardless of how many iterations a
	// fault cost, so the file matches the golden run.
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipOut := f.NewLabel()
	f.Bne(skipOut)
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_done"), asm.Imm(18))
	f.CallArgs("open", asm.Sym("s_file"), asm.Imm(10))
	f.Push(isa.R0)
	f.LdSym(isa.R1, "g_x", 0)
	f.Addi(isa.R1, isa.R1, 8)
	f.Pop(isa.R4)
	f.CallArgs("print_f64arr", asm.Reg(isa.R4), asm.Reg(isa.R1),
		asm.Imm(nPerRank), asm.Imm(3))
	f.Label(skipOut)
	f.Label(fin)

	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()

	return b.Link(asm.LinkConfig{})
}

// perturbSolution runs `trials` experiments against the image: at a
// random mid-run instant on a random rank, one float64 of the program's
// *solution/field array* (the first heap chunks it allocates) is
// overwritten with a large value — a severe single-word upset.  Returns
// how many runs still ended in the Correct class.
func perturbSolution(name string, im *image.Image, nRanks, solutionChunks, trials int) (correct, total int) {
	golden, err := core.RunGolden(im, nRanks, mpi.Config{}, 60*time.Second)
	if err != nil {
		log.Fatalf("%s golden: %v", name, err)
	}
	base := rng.New(99)
	for i := 0; i < trials; i++ {
		r := base.Derive(uint64(i))
		rank := r.Intn(nRanks)
		trigger := golden.Instrs[rank]/10 + r.Uint64n(golden.Instrs[rank]/2)
		res := cluster.Run(cluster.Job{
			Image: im, Size: nRanks,
			// Reconvergence after a large perturbation can take 100x the
			// fault-free iteration count; leave the budget room so slowed
			// convergence is not misread as a hang.
			Budget:    golden.MaxInstrs() * 400,
			WallLimit: 30 * time.Second,
			Setup: func(rk int, m *vm.Machine, p *mpi.Proc) {
				if rk != rank {
					return
				}
				m.TriggerAt = trigger
				m.TriggerFn = func(m *vm.Machine) {
					chunks := m.Heap.Chunks()
					if len(chunks) < solutionChunks {
						return
					}
					c := chunks[r.Intn(solutionChunks)]
					off := uint32(r.Intn(int(c.Size/8))) * 8
					var buf [8]byte
					bits := math.Float64bits(1e6)
					for j := range buf {
						buf[j] = byte(bits >> (8 * uint(j)))
					}
					m.RawWrite(c.Payload+off, buf[:])
				}
			},
		})
		if classify.Classify(res, golden.Output) == classify.Correct {
			correct++
		}
		total++
	}
	return correct, total
}

func main() {
	log.SetFlags(0)
	const trials = 60

	jacobi, err := buildJacobi()
	if err != nil {
		log.Fatal(err)
	}
	// Jacobi's first two heap chunks are the x and xn iterates.
	jc, jn := perturbSolution("jacobi", jacobi, ranks, 2, trials)

	wa, err := apps.Get("wavetoy")
	if err != nil {
		log.Fatal(err)
	}
	wim, err := wa.Build(wa.Default)
	if err != nil {
		log.Fatal(err)
	}
	// Wavetoy's first three chunks are u_prev, u_curr, u_next.
	wc, wn := perturbSolution("wavetoy", wim, wa.Default.Ranks, 3, trials)

	fmt.Println("naturally fault tolerant algorithms (§8.2):")
	fmt.Println("severe upset (a solution-array float64 overwritten with 1e6):")
	fmt.Printf("  jacobi  (iterates to tolerance): %2d/%2d runs still bit-exact correct\n", jc, jn)
	fmt.Printf("  wavetoy (fixed step count):      %2d/%2d runs still bit-exact correct\n", wc, wn)
	fmt.Println("\n(the tolerance-driven Jacobi solver absorbs iterate corruption —")
	fmt.Println(" a perturbed run just takes more sweeps to the same fixed point —")
	fmt.Println(" while the explicit time stepper carries the same upset straight")
	fmt.Println(" into its output)")
}
