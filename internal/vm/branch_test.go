package vm

import (
	"math"
	"testing"

	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// TestBunBranchesOnNaNComparison: FCOMP against NaN sets the unordered
// flag, and BUN takes the branch — the guest-side idiom for NaN-aware
// comparisons.
func TestBunBranchesOnNaNComparison(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("out", 4)
		m.DataF64("nanv", math.NaN())
		m.DataF64("one", 1.0)
		f.FldSym("one", 0)
		f.FldSym("nanv", 0)
		f.Fcomp()
		un := f.NewLabel()
		done := f.NewLabel()
		f.Bun(un)
		f.Movi(isa.R1, 0)
		f.Jmp(done)
		f.Label(un)
		f.Movi(isa.R1, 1)
		f.Label(done)
		f.StSym("out", 0, isa.R1)
	})
	m, _ := run(t, im)
	sym, _ := im.Lookup("out")
	if v, _ := m.Load32(sym.Addr); v != 1 {
		t.Fatal("BUN did not branch on an unordered comparison")
	}
}

// TestFcompOrderedComparisons covers the three ordered outcomes.
func TestFcompOrderedComparisons(t *testing.T) {
	cases := []struct {
		a, b float64 // pushed b first, a second: compares a vs b
		want int32   // 0 less, 1 equal, 2 greater
	}{
		{1.0, 2.0, 0},
		{2.0, 2.0, 1},
		{3.5, 2.0, 2},
	}
	for _, c := range cases {
		im := assemble(t, func(m *asm.Module, f *asm.Func) {
			m.BSS("out", 4)
			m.DataF64("av", c.a)
			m.DataF64("bv", c.b)
			f.FldSym("bv", 0) // st1
			f.FldSym("av", 0) // st0
			f.Fcomp()
			lt, eq, done := f.NewLabel(), f.NewLabel(), f.NewLabel()
			f.Blt(lt)
			f.Beq(eq)
			f.Movi(isa.R1, 2)
			f.Jmp(done)
			f.Label(lt)
			f.Movi(isa.R1, 0)
			f.Jmp(done)
			f.Label(eq)
			f.Movi(isa.R1, 1)
			f.Label(done)
			f.StSym("out", 0, isa.R1)
		})
		m, _ := run(t, im)
		sym, _ := im.Lookup("out")
		if v, _ := m.Load32(sym.Addr); int32(v) != c.want {
			t.Fatalf("compare %v vs %v = %d, want %d", c.a, c.b, int32(v), c.want)
		}
	}
}

// TestByteLoadStore exercises LDB/STB zero-extension semantics.
func TestByteLoadStore(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("out", 4)
		m.BSS("b", 8)
		f.Movi(isa.R1, -1) // 0xFFFFFFFF
		f.MoviSym(isa.R2, "b", 0)
		f.Stb(isa.R2, -1, 0, isa.R1) // stores 0xFF
		f.Ldb(isa.R3, isa.R2, -1, 0) // loads zero-extended
		f.StSym("out", 0, isa.R3)
	})
	m, _ := run(t, im)
	sym, _ := im.Lookup("out")
	if v, _ := m.Load32(sym.Addr); v != 0xFF {
		t.Fatalf("byte round trip = %#x", v)
	}
}

// TestFPEnvLastOperandTracking: FP loads record the operand address in
// FOO (the x87 "last operand" pointer the injector also targets).
func TestFPEnvLastOperandTracking(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		m.DataF64("v", 4.0)
		f.FldSym("v", 0)
		f.Fsqrt()
		f.FstpSym("v", 0)
	})
	m, _ := run(t, im)
	sym, _ := im.Lookup("v")
	if m.FP.FOO != sym.Addr {
		t.Fatalf("FOO = %#x, want %#x", m.FP.FOO, sym.Addr)
	}
	if m.FP.FIP < image.TextBase {
		t.Fatalf("FIP = %#x", m.FP.FIP)
	}
	v, _ := m.LoadF64(sym.Addr)
	if v != 2.0 {
		t.Fatalf("sqrt(4) stored %v", v)
	}
}

// TestCallrThroughFunctionPointer exercises indirect calls, the vector
// through which corrupted function pointers redirect control.
func TestCallrThroughFunctionPointer(t *testing.T) {
	b := asm.NewBuilder()
	m := b.Module("t", image.OwnerUser)
	m.BSS("out", 4)
	g := m.Func("target")
	g.Prologue(0)
	g.Movi(isa.R0, 99)
	g.Epilogue()
	f := m.Func("main")
	f.Prologue(0)
	f.MoviSym(isa.R1, "target", 0)
	f.Callr(isa.R1)
	f.StSym("out", 0, isa.R0)
	f.Movi(isa.R0, 0)
	f.Sys(1)
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mach, trap := run(t, im)
	if trap.Kind != TrapExit {
		t.Fatalf("trap = %v", trap)
	}
	sym, _ := im.Lookup("out")
	if v, _ := mach.Load32(sym.Addr); v != 99 {
		t.Fatalf("indirect call result = %d", v)
	}
}
