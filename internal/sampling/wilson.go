// Wilson score intervals.  The Wald interval in ConfidenceInterval is
// what the paper quotes, but it degenerates at the proportions fault
// campaigns actually meet (p near 0 for text/heap faults: the Wald
// half-width collapses to zero at p=0 no matter how few samples ran).
// The adaptive planner's sequential stopping rule therefore gates on the
// Wilson score interval, whose coverage stays near nominal across the
// whole [0,1] range and whose half-width is well-defined at p=0.
package sampling

import (
	"fmt"
	"math"
)

// WilsonInterval returns the Wilson score interval [lo, hi] for a sample
// of n draws with x successes at the given confidence level:
//
//	center = (p + z²/2n) / (1 + z²/n)
//	half   = z/(1+z²/n) · sqrt(p(1-p)/n + z²/4n²)
//
// Unlike the Wald interval it never escapes [0,1] and stays honest at
// the extremes: x=0 yields [0, z²/(n+z²)], not a zero-width interval.
func WilsonInterval(confidence float64, x, n int) (lo, hi float64, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("sampling: n must be positive")
	}
	if x < 0 || x > n {
		return 0, 0, fmt.Errorf("sampling: successes %d outside [0,%d]", x, n)
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, 0, err
	}
	center, half := wilson(z, float64(x)/float64(n), float64(n))
	return math.Max(0, center-half), math.Min(1, center+half), nil
}

// WilsonHalfWidth returns half the width of the Wilson score interval
// for x successes in n draws — the quantity the sequential stopping rule
// compares against the target estimation error d.
func WilsonHalfWidth(confidence float64, x, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sampling: n must be positive")
	}
	if x < 0 || x > n {
		return 0, fmt.Errorf("sampling: successes %d outside [0,%d]", x, n)
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	_, half := wilson(z, float64(x)/float64(n), float64(n))
	return half, nil
}

// WilsonHalfWidthAt returns the Wilson half-width for a (possibly
// non-integer) effective sample size n at proportion p.  Reweighted
// estimators over unequal Horvitz–Thompson masses behave like uniform
// samples of Kish's n_eff ≤ n draws, so their intervals are computed at
// n_eff rather than the raw count.
func WilsonHalfWidthAt(confidence, p, n float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sampling: n must be positive")
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("sampling: proportion %v outside [0,1]", p)
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	_, half := wilson(z, p, n)
	return half, nil
}

// NeededSamples returns the smallest n whose Wilson half-width at a
// fixed proportion p is at most d.  Because the Wilson half-width at
// p=0.5 is strictly below the Wald bound z·sqrt(0.25/n), the answer
// never exceeds SampleSize(confidence, d) — the planner's per-stratum
// cap is also its search ceiling.
func NeededSamples(confidence, d, p float64) (int, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("sampling: proportion %v outside [0,1]", p)
	}
	worst, err := SampleSize(confidence, d)
	if err != nil {
		return 0, err
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	// The half-width is monotonically decreasing in n for fixed p, so a
	// binary search over [1, worst] finds the boundary exactly.
	lo, hi := 1, worst
	for lo < hi {
		mid := (lo + hi) / 2
		if _, half := wilson(z, p, float64(mid)); half <= d {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// wilson returns the center and half-width of the Wilson score interval
// at proportion p over n draws for normal quantile z.
func wilson(z, p, n float64) (center, half float64) {
	zz := z * z
	denom := 1 + zz/n
	center = (p + zz/(2*n)) / denom
	half = z / denom * math.Sqrt(p*(1-p)/n+zz/(4*n*n))
	return center, half
}
