package vm

import (
	"testing"

	"mpifault/internal/asm"
	"mpifault/internal/isa"
)

// pcsEqual compares PC slices without reflect.DeepEqual: pulling the
// reflect package into this test binary makes the linker retain method
// metadata it otherwise drops, which shifts hot-loop code placement and
// costs BenchmarkStep ~15% — tripping the CI overhead gate on code that
// never changed.
func pcsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFlightRecorderEmpty(t *testing.T) {
	f := NewFlightRecorder(8)
	if f.Seen() != 0 {
		t.Errorf("fresh recorder Seen() = %d", f.Seen())
	}
	if pcs := f.LastPCs(); len(pcs) != 0 {
		t.Errorf("fresh recorder LastPCs() = %v, want empty", pcs)
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(8)
	for pc := uint32(100); pc < 103; pc++ {
		f.Exec(pc)
	}
	if got, want := f.LastPCs(), []uint32{100, 101, 102}; !pcsEqual(got, want) {
		t.Errorf("LastPCs() = %v, want %v", got, want)
	}
	if f.Seen() != 3 {
		t.Errorf("Seen() = %d, want 3", f.Seen())
	}
}

func TestFlightRecorderExactFill(t *testing.T) {
	f := NewFlightRecorder(4)
	for pc := uint32(1); pc <= 4; pc++ {
		f.Exec(pc)
	}
	if got, want := f.LastPCs(), []uint32{1, 2, 3, 4}; !pcsEqual(got, want) {
		t.Errorf("LastPCs() = %v, want %v", got, want)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for pc := uint32(1); pc <= 10; pc++ {
		f.Exec(pc)
	}
	// Only the last 4 of 10 survive, oldest first.
	if got, want := f.LastPCs(), []uint32{7, 8, 9, 10}; !pcsEqual(got, want) {
		t.Errorf("LastPCs() = %v, want %v", got, want)
	}
	if f.Seen() != 10 {
		t.Errorf("Seen() = %d, want 10", f.Seen())
	}
}

func TestFlightRecorderDefaultDepth(t *testing.T) {
	for _, n := range []int{0, -5} {
		f := NewFlightRecorder(n)
		for pc := uint32(0); pc < 200; pc++ {
			f.Exec(pc)
		}
		if got := len(f.LastPCs()); got != 64 {
			t.Errorf("NewFlightRecorder(%d) depth = %d, want default 64", n, got)
		}
	}
}

// TestFlightRecorderObservesMachine runs a real machine with the
// recorder attached and checks the ring against the machine's own
// retired-instruction count.
func TestFlightRecorderObservesMachine(t *testing.T) {
	im := assemble(t, func(_ *asm.Module, f *asm.Func) {
		f.Movi(isa.R1, 40)
		f.Movi(isa.R2, 2)
		f.Add(isa.R3, isa.R1, isa.R2)
	})
	m := New(im)
	m.Handler = &testHandler{}
	f := NewFlightRecorder(4)
	m.Tracer = f
	res := m.Run(1_000_000)
	if res.Reason != StopTrap || res.Trap.Kind != TrapExit {
		t.Fatalf("run did not exit cleanly: %+v", res)
	}
	if f.Seen() == 0 {
		t.Fatal("recorder saw no instructions")
	}
	if f.Seen() != m.Instrs {
		t.Errorf("recorder saw %d instructions, machine retired %d", f.Seen(), m.Instrs)
	}
	pcs := f.LastPCs()
	if len(pcs) != 4 {
		t.Fatalf("LastPCs() len = %d, want 4", len(pcs))
	}
	// The newest entry is the fetched PC of the trapping SysExit; the
	// machine's PC has already advanced past it.  Entries must be
	// InstrBytes apart in this straight-line program.
	if pcs[3]+isa.InstrBytes != m.PC {
		t.Errorf("newest recorded PC = %#x, machine stopped past %#x", pcs[3], m.PC)
	}
	for i := 1; i < len(pcs); i++ {
		if pcs[i] != pcs[i-1]+isa.InstrBytes {
			t.Errorf("recorded PCs not consecutive: %#x after %#x", pcs[i], pcs[i-1])
		}
	}
}
