package vm

import (
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Frame describes one stack frame found by the frame-pointer walk.
type Frame struct {
	// FP is the frame-pointer value for this frame: [FP] holds the saved
	// caller FP and [FP+4] the return address.
	FP uint32
	// RetAddr is the return address stored in the frame.
	RetAddr uint32
	// UserContext reports whether RetAddr falls within user-application
	// text — the §3.2 criterion for whether the frame *below* belongs to
	// the user application and may be injected into.
	UserContext bool
}

// WalkFrames walks the frame-pointer chain from the current FP register to
// the stack base, mirroring the paper's EBP/ESP walk-through.  The walk
// stops at the first frame whose pointers leave the stack segment or fail
// to make progress (which happens naturally once corrupted frames are
// encountered).
func (m *Machine) WalkFrames() []Frame {
	var frames []Frame
	fp := m.Regs[isa.FP]
	lo := m.Image.StackBase()
	for len(frames) < 256 {
		if fp < lo || fp+8 > image.StackTop {
			break
		}
		savedFP, t1 := m.Load32NoTrace(fp)
		retAddr, t2 := m.Load32NoTrace(fp + 4)
		if t1 != nil || t2 != nil {
			break
		}
		frames = append(frames, Frame{
			FP:          fp,
			RetAddr:     retAddr,
			UserContext: m.Image.InUserText(retAddr),
		})
		if savedFP <= fp { // frames must grow toward the stack base
			break
		}
		fp = savedFP
	}
	return frames
}

// Load32NoTrace reads a word without notifying the tracer; injector-side
// inspection must not pollute the working-set measurement.
func (m *Machine) Load32NoTrace(addr uint32) (uint32, *Trap) {
	b, ok := m.RawRead(addr, 4)
	if !ok {
		return 0, m.segv(addr)
	}
	return readLE32(b), nil
}
