package core

import (
	"fmt"
	"math"
	"sync"

	"mpifault/internal/abi"
	"mpifault/internal/isa"
	"mpifault/internal/rng"
	"mpifault/internal/vm"
)

// Region enumerates the paper's eight injection targets, in the row order
// of Tables 2-4.
type Region int

const (
	RegionRegularReg Region = iota
	RegionFPReg
	RegionBSS
	RegionData
	RegionStack
	RegionText
	RegionHeap
	RegionMessage
	NumRegions
)

// String returns the table row label used in the paper.
func (r Region) String() string {
	switch r {
	case RegionRegularReg:
		return "Regular Reg."
	case RegionFPReg:
		return "FP Reg."
	case RegionBSS:
		return "BSS"
	case RegionData:
		return "Data"
	case RegionStack:
		return "Stack"
	case RegionText:
		return "Text"
	case RegionHeap:
		return "Heap"
	case RegionMessage:
		return "Message"
	default:
		return "Region?"
	}
}

// Short returns the region's canonical short name, the form used in
// experiment IDs and journal headers.  ParseRegion inverts it.
func (r Region) Short() string {
	switch r {
	case RegionRegularReg:
		return "reg"
	case RegionFPReg:
		return "fp"
	case RegionBSS:
		return "bss"
	case RegionData:
		return "data"
	case RegionStack:
		return "stack"
	case RegionText:
		return "text"
	case RegionHeap:
		return "heap"
	case RegionMessage:
		return "message"
	default:
		return "region?"
	}
}

// ParseRegion resolves a table row label or short name.
func ParseRegion(s string) (Region, error) {
	switch s {
	case "reg", "regular", "Regular Reg.":
		return RegionRegularReg, nil
	case "fpreg", "fp", "FP Reg.":
		return RegionFPReg, nil
	case "bss", "BSS":
		return RegionBSS, nil
	case "data", "Data":
		return RegionData, nil
	case "stack", "Stack":
		return RegionStack, nil
	case "text", "Text":
		return RegionText, nil
	case "heap", "Heap":
		return RegionHeap, nil
	case "message", "msg", "Message":
		return RegionMessage, nil
	}
	return 0, fmt.Errorf("core: unknown region %q", s)
}

// Regions returns all regions in table order.
func Regions() []Region {
	out := make([]Region, NumRegions)
	for i := range out {
		out[i] = Region(i)
	}
	return out
}

// ApplyRegisterFault flips one uniformly chosen bit across the "regular"
// register set: the eight GPRs, the program counter and the flags — the
// x86's general-purpose context.  It returns a description of the flip.
func ApplyRegisterFault(m *vm.Machine, r *rng.Rand) string {
	// 8 GPRs + PC + FLAGS, 32 bits each.
	target := r.Intn(10)
	bit := uint(r.Intn(32))
	return flipRegisterBit(m, target, bit)
}

// flipRegisterBit flips one bit of one register-context target (0..7 the
// GPRs, 8 the PC, 9 the flags word) and returns the flip's description.
// Every register-region injection path — uniform, liveness-directed, and
// equivalence-driven — funnels through here so descriptions stay
// identical across policies.
func flipRegisterBit(m *vm.Machine, target int, bit uint) string {
	switch {
	case target < isa.NumGPR:
		m.Regs[target] ^= 1 << bit
		return fmt.Sprintf("%s bit %d", isa.GPRName(target), bit)
	case target == isa.NumGPR:
		m.PC ^= 1 << bit
		return fmt.Sprintf("pc bit %d", bit)
	default:
		m.Flags ^= 1 << bit
		return fmt.Sprintf("flags bit %d", bit)
	}
}

// ApplyFPRegisterFault flips one uniformly chosen bit across the
// floating-point environment: the eight 64-bit data registers and the
// seven special registers (CWD, SWD, TWD, FIP, FCS, FOO, FOS), matching
// the paper's x87 target set (§3.2, §6.1.1).
func ApplyFPRegisterFault(m *vm.Machine, r *rng.Rand) string {
	const (
		dataBits = isa.NumFPReg * 64 // 512
		wordBits = 16                // CWD, SWD, TWD
	)
	// Total: 512 data + 3*16 + 4*32 = 688 bits.
	n := r.Intn(dataBits + 3*wordBits + 4*32)
	e := &m.FP
	switch {
	case n < dataBits:
		reg := n / 64
		bit := uint(n % 64)
		bits := math.Float64bits(e.Regs[reg]) ^ (1 << bit)
		e.Regs[reg] = math.Float64frombits(bits)
		return fmt.Sprintf("st-phys%d bit %d", reg, bit)
	case n < dataBits+wordBits:
		bit := uint(n - dataBits)
		e.CWD ^= 1 << bit
		return fmt.Sprintf("CWD bit %d", bit)
	case n < dataBits+2*wordBits:
		bit := uint(n - dataBits - wordBits)
		e.SWD ^= 1 << bit
		return fmt.Sprintf("SWD bit %d", bit)
	case n < dataBits+3*wordBits:
		bit := uint(n - dataBits - 2*wordBits)
		e.TWD ^= 1 << bit
		return fmt.Sprintf("TWD bit %d", bit)
	default:
		k := n - dataBits - 3*wordBits
		reg := k / 32
		bit := uint(k % 32)
		switch reg {
		case 0:
			e.FIP ^= 1 << bit
			return fmt.Sprintf("FIP bit %d", bit)
		case 1:
			e.FCS ^= 1 << bit
			return fmt.Sprintf("FCS bit %d", bit)
		case 2:
			e.FOO ^= 1 << bit
			return fmt.Sprintf("FOO bit %d", bit)
		default:
			e.FOS ^= 1 << bit
			return fmt.Sprintf("FOS bit %d", bit)
		}
	}
}

// flipByte flips one bit of the byte at addr through the injector's raw
// (permission-ignoring) memory view, as ptrace POKEDATA would.
func flipByte(m *vm.Machine, addr uint32, bit uint) bool {
	b, ok := m.RawRead(addr, 1)
	if !ok {
		return false
	}
	return m.RawWrite(addr, []byte{b[0] ^ (1 << bit)})
}

// ApplyStaticFault flips a bit at a dictionary-chosen address of the
// text, data or BSS section.
func ApplyStaticFault(m *vm.Machine, d *Dictionary, region Region, r *rng.Rand) string {
	var addr uint32
	var ok bool
	switch region {
	case RegionText:
		addr, ok = d.RandText(r)
	case RegionData:
		addr, ok = d.RandData(r)
	case RegionBSS:
		addr, ok = d.RandBSS(r)
	}
	if !ok {
		return "no target"
	}
	bit := uint(r.Intn(8))
	if !flipByte(m, addr, bit) {
		return "no target"
	}
	return fmt.Sprintf("%s 0x%08x bit %d", region, addr, bit)
}

// ApplyHeapFault scans the guest-resident chunk headers for user-tagged
// chunks (the paper's malloc-wrapper identifiers) and flips one bit in a
// uniformly chosen payload byte.
func ApplyHeapFault(m *vm.Machine, r *rng.Rand) string {
	chunks := m.Heap.Chunks()
	var total uint64
	for _, c := range chunks {
		if c.Valid && c.Tag == abi.ChunkUser {
			total += uint64(c.Size)
		}
	}
	if total == 0 {
		return "no target"
	}
	off := r.Uint64n(total)
	for _, c := range chunks {
		if !c.Valid || c.Tag != abi.ChunkUser {
			continue
		}
		if off < uint64(c.Size) {
			bit := uint(r.Intn(8))
			// Include the chunk header region occasionally?  The paper
			// flips bits in the located chunk's payload; stay faithful.
			if !flipByte(m, c.Payload+uint32(off), bit) {
				return "no target"
			}
			return fmt.Sprintf("heap 0x%08x bit %d", c.Payload+uint32(off), bit)
		}
		off -= uint64(c.Size)
	}
	return "no target"
}

// ApplyStackFault walks the frame-pointer chain and flips a bit inside a
// frame that is in user-application context — §3.2's criterion that the
// frame's return address lie within user text.
func ApplyStackFault(m *vm.Machine, r *rng.Rand) string {
	frames := m.WalkFrames()
	type span struct{ lo, hi uint32 }
	var spans []span
	var total uint64
	lo := m.Regs[isa.SP]
	for _, fr := range frames {
		hi := fr.FP + 8 // include the saved FP and return address
		if hi <= lo {
			lo = hi
			continue
		}
		if fr.UserContext {
			spans = append(spans, span{lo, hi})
			total += uint64(hi - lo)
		}
		lo = hi
	}
	if total == 0 {
		return "no target"
	}
	off := r.Uint64n(total)
	for _, s := range spans {
		n := uint64(s.hi - s.lo)
		if off < n {
			addr := s.lo + uint32(off)
			bit := uint(r.Intn(8))
			if !flipByte(m, addr, bit) {
				return "no target"
			}
			return fmt.Sprintf("stack 0x%08x bit %d", addr, bit)
		}
		off -= n
	}
	return "no target"
}

// MessageInjector corrupts one bit of a rank's incoming Channel stream
// once the received-volume counter reaches the trigger offset (§3.3).
// Install its Hook as the rank's RecvHook.
//
// The Hook runs on whatever goroutine performs the Channel recv, while
// the campaign reads the outcome from its own experiment goroutine; the
// injector therefore guards its state with a mutex rather than relying
// on the job join for the happens-before edge.
type MessageInjector struct {
	TriggerByte uint64 // offset into the cumulative received byte stream
	Bit         uint   // bit to flip within the chosen byte

	mu       sync.Mutex
	seen     uint64
	injected bool
	desc     string
}

// Hook implements the Channel-layer injection point: it runs on the raw
// bytes of each received packet, immediately after the recv and before
// parsing.
func (mi *MessageInjector) Hook(pkt []byte) {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	if !mi.injected && mi.TriggerByte < mi.seen+uint64(len(pkt)) {
		idx := mi.TriggerByte - mi.seen
		pkt[idx] ^= 1 << mi.Bit
		mi.injected = true
		where := "payload"
		if idx < 48 {
			where = "header"
		}
		mi.desc = fmt.Sprintf("message byte %d (%s) bit %d", idx, where, mi.Bit)
	}
	mi.seen += uint64(len(pkt))
}

// Report returns whether the bit flip has been applied yet and its
// description.
func (mi *MessageInjector) Report() (injected bool, desc string) {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	return mi.injected, mi.desc
}
