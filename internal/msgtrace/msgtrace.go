// Package msgtrace records compact per-rank message digests over
// mpi.Proc.TraceHook and binary-diffs an experiment's stream against
// the golden run's — the trace-diff localization of Okita et al.: the
// first divergent digest names the rank and message where a fault
// stopped the run behaving like the reference.
//
// A digest is (op, peer, tag, byte count, FNV-1a payload hash).  The
// retired-instruction stamp rides along for diagnostics but is excluded
// from equality and from Trace.Hash: instruction counts shift with the
// injected fault, the message *content* is what must match.
package msgtrace

import (
	"fmt"

	"mpifault/internal/mpi"
)

// FNV-1a 64-bit parameters (hash/fnv re-implemented locally so the hot
// append path hashes without an interface allocation).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xFF)) * fnvPrime
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// Digest is one recorded message event.
type Digest struct {
	Op    string // MPI function, e.g. "MPI_Send"
	Peer  int32  // matched peer (or root; -1 for rootless collectives)
	Tag   int32  // matched tag; 0 for collectives
	Bytes uint32 // payload bytes moved at this rank
	Hash  uint64 // FNV-1a of the payload; fnvOffset when empty
	// Instrs is the rank's retired-instruction count at the event.
	// Diagnostic only: excluded from Equal and Trace.Hash.
	Instrs uint64
}

// Equal compares the semantic fields (everything but Instrs).
func (d Digest) Equal(o Digest) bool {
	return d.Op == o.Op && d.Peer == o.Peer && d.Tag == o.Tag &&
		d.Bytes == o.Bytes && d.Hash == o.Hash
}

// String renders the digest for forensics records and tables.
func (d Digest) String() string {
	return fmt.Sprintf("%s peer=%d tag=%d bytes=%d hash=%016x",
		d.Op, d.Peer, d.Tag, d.Bytes, d.Hash)
}

// Trace is the full per-rank digest record of one run.
type Trace struct {
	Ranks [][]Digest `json:"ranks"`
}

// Messages returns the total digest count across ranks.
func (t *Trace) Messages() int {
	n := 0
	for _, r := range t.Ranks {
		n += len(r)
	}
	return n
}

// Hash folds every semantic digest field into one FNV-1a value — the
// golden-trace fingerprint CI compares across shard legs, execution
// tiers and the coordinator path.
func (t *Trace) Hash() uint64 {
	h := fnvUint(uint64(fnvOffset), uint64(len(t.Ranks)))
	for _, ds := range t.Ranks {
		h = fnvUint(h, uint64(len(ds)))
		for _, d := range ds {
			h = fnvString(h, d.Op)
			h = fnvUint(h, uint64(uint32(d.Peer)))
			h = fnvUint(h, uint64(uint32(d.Tag)))
			h = fnvUint(h, uint64(d.Bytes))
			h = fnvUint(h, d.Hash)
		}
	}
	return h
}

// Recorder captures a Trace from a live world.  Each rank appends only
// to its own stream and TraceHook fires on the rank's own goroutine, so
// recording is race-free without locks.
type Recorder struct {
	ranks [][]Digest
}

// NewRecorder returns a recorder for a world of the given size.
func NewRecorder(ranks int) *Recorder {
	return &Recorder{ranks: make([][]Digest, ranks)}
}

// Reset re-arms the recorder for a fresh run of the same world size,
// keeping the per-rank backing arrays (it is pooled per campaign
// worker, like the forensics flight recorder).
func (rec *Recorder) Reset(ranks int) {
	if len(rec.ranks) != ranks {
		rec.ranks = make([][]Digest, ranks)
		return
	}
	for r := range rec.ranks {
		rec.ranks[r] = rec.ranks[r][:0]
	}
}

// Attach installs the digest hook on one rank's Proc (cluster.Job.Setup
// calls it for every rank).
func (rec *Recorder) Attach(p *mpi.Proc) {
	p.TraceHook = func(op mpi.CommOp) {
		rec.ranks[op.Rank] = append(rec.ranks[op.Rank], Digest{
			Op:     op.Fn,
			Peer:   op.Peer,
			Tag:    op.Tag,
			Bytes:  op.Bytes,
			Hash:   fnvBytes(fnvOffset, op.Data),
			Instrs: op.Instrs,
		})
	}
}

// Trace snapshots the recorded streams.  The digests are shared with
// the recorder, so call it only after the run finished and before the
// recorder is Reset.
func (rec *Recorder) Trace() *Trace {
	return &Trace{Ranks: rec.ranks}
}

// Divergence pinpoints where an experiment's message streams first
// departed from the golden trace — the localization record attached to
// core.Forensics and serialized in campaign journals.
type Divergence struct {
	// Rank is the implicated rank: the first whose stream diverges.
	Rank int `json:"rank"`
	// MsgIndex is the position in that rank's stream (0-based).
	MsgIndex int `json:"msg_index"`
	// Kind is "mismatch" (both runs produced a message here but they
	// differ), "missing" (the experiment's stream ended early), or
	// "extra" (the experiment produced messages past the golden end).
	Kind string `json:"kind"`
	// Golden and Observed render the digest pair; one is empty for
	// missing/extra divergences.
	Golden   string `json:"golden,omitempty"`
	Observed string `json:"observed,omitempty"`
	// Instrs is the implicated rank's retired-instruction stamp at the
	// divergent (or last observed) event.
	Instrs uint64 `json:"instrs,omitempty"`
	// InstrsSinceInjection is Instrs minus the injection trigger, filled
	// by the campaign when the implicated rank is the injected rank and
	// the trigger lives on the instruction axis.
	InstrsSinceInjection uint64 `json:"instrs_since_injection,omitempty"`
}

// Divergence kinds.
const (
	KindMismatch = "mismatch"
	KindMissing  = "missing"
	KindExtra    = "extra"
)

// kindPrio orders divergence kinds by how directly they implicate the
// rank: content mismatches and extra messages are something the rank
// actively did differently; a truncated stream can be collateral (job
// teardown stops innocent ranks mid-conversation too).
func kindPrio(kind string) int {
	switch kind {
	case KindMismatch:
		return 0
	case KindExtra:
		return 1
	default:
		return 2
	}
}

// Diff compares an observed trace against the golden one and returns
// the first divergence, or nil when every rank's stream matches.  Among
// ranks it prefers active divergences (mismatch, extra) over
// truncations, then the lowest message index, then the lowest rank —
// a deterministic choice for deterministic streams.
func Diff(golden, observed *Trace) *Divergence {
	if golden == nil || observed == nil {
		return nil
	}
	var best *Divergence
	n := len(golden.Ranks)
	if len(observed.Ranks) < n {
		n = len(observed.Ranks)
	}
	for rank := 0; rank < n; rank++ {
		d := diffRank(rank, golden.Ranks[rank], observed.Ranks[rank])
		if d == nil {
			continue
		}
		if best == nil ||
			kindPrio(d.Kind) < kindPrio(best.Kind) ||
			(kindPrio(d.Kind) == kindPrio(best.Kind) && d.MsgIndex < best.MsgIndex) {
			best = d
		}
	}
	return best
}

// diffRank finds the first divergent index of one rank's stream.
func diffRank(rank int, golden, observed []Digest) *Divergence {
	n := len(golden)
	if len(observed) < n {
		n = len(observed)
	}
	for i := 0; i < n; i++ {
		if !golden[i].Equal(observed[i]) {
			return &Divergence{
				Rank: rank, MsgIndex: i, Kind: KindMismatch,
				Golden:   golden[i].String(),
				Observed: observed[i].String(),
				Instrs:   observed[i].Instrs,
			}
		}
	}
	switch {
	case len(observed) > len(golden):
		return &Divergence{
			Rank: rank, MsgIndex: n, Kind: KindExtra,
			Observed: observed[n].String(),
			Instrs:   observed[n].Instrs,
		}
	case len(observed) < len(golden):
		d := &Divergence{
			Rank: rank, MsgIndex: n, Kind: KindMissing,
			Golden: golden[n].String(),
		}
		if n > 0 {
			d.Instrs = observed[n-1].Instrs
		}
		return d
	}
	return nil
}
