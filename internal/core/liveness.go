package core

import (
	"fmt"

	"mpifault/internal/isa"
	"mpifault/internal/rng"
	"mpifault/internal/vm"
)

// LivenessMap supplies per-PC register liveness from a static analysis
// (internal/analysis implements it).  The mask covers the GPRs in bits
// 0..NumGPR-1 and the flags word in bit NumGPR; a sound map
// overapproximates, so a clear bit proves the register's value is dead
// at that point.
type LivenessMap interface {
	LiveAt(pc uint32) (mask uint16, ok bool)
}

// LivenessPolicy selects how a register-fault campaign uses a
// LivenessMap.
type LivenessPolicy int

const (
	// LiveTargetAll ignores the map: uniform sampling over all 320
	// register-context bits, the paper's baseline.
	LiveTargetAll LivenessPolicy = iota
	// LiveTargetLive samples only bits the analysis considers live at
	// the injection point — the AVF-style acceleration: dead bits are
	// provably Correct, so skipping them loses no error coverage.
	LiveTargetLive
	// LiveTargetDead samples only provably-dead bits; every outcome
	// must classify Correct, which makes it the soundness check for
	// the analysis itself.
	LiveTargetDead
)

func (p LivenessPolicy) String() string {
	switch p {
	case LiveTargetLive:
		return "live"
	case LiveTargetDead:
		return "dead"
	default:
		return "all"
	}
}

// DirectedStats aggregates the candidate-bit counts a liveness-directed
// campaign observed, quantifying how much of the register sampling
// space the analysis prunes.
type DirectedStats struct {
	Policy      LivenessPolicy
	Experiments int    // register-region experiments that consulted the map
	Candidates  uint64 // sum of per-injection candidate bits
	Total       uint64 // sum of per-injection full spaces (320 each)
}

// Fraction returns the mean candidate share of the full space.
func (d *DirectedStats) Fraction() float64 {
	if d.Total == 0 {
		return 0
	}
	return float64(d.Candidates) / float64(d.Total)
}

// Speedup returns the expected campaign acceleration from sampling only
// the candidate bits: with fraction f of bits live, covering them to a
// fixed density needs f of the baseline's injections, a 1/f speedup.
func (d *DirectedStats) Speedup() float64 {
	f := d.Fraction()
	if f == 0 {
		return 0
	}
	return 1 / f
}

// RegisterSpaceBits is ApplyRegisterFault's sampling space: 8 GPRs +
// PC + FLAGS, 32 bits each.
const RegisterSpaceBits = (isa.NumGPR + 2) * 32

// flagsReadableBits is how many flag bits the ISA ever reads back
// (Z/LT/UL/UN); the remaining 28 are architecturally dead everywhere.
const flagsReadableBits = 4

// ApplyRegisterFaultDirected flips one register-context bit chosen
// uniformly from the candidate set the liveness map and policy select
// at the machine's current PC (the trigger fires before Step, so m.PC
// is the instruction about to execute).  It returns the flip
// description and the candidate-set size.  When the map has no answer
// for the PC — mid-library, unreachable pad — it falls back to the
// undirected ApplyRegisterFault over the full space.
func ApplyRegisterFaultDirected(m *vm.Machine, r *rng.Rand, lm LivenessMap, policy LivenessPolicy) (string, int) {
	mask, ok := lm.LiveAt(m.PC)
	if !ok || policy == LiveTargetAll {
		return ApplyRegisterFault(m, r), RegisterSpaceBits
	}

	// Candidate bits, in ApplyRegisterFault's target order: GPR bits,
	// then PC (always live — it steers control no matter what), then
	// the flags word with only 4 readable bits.
	type span struct {
		target int // 0..7 GPR, 8 PC, 9 flags
		bits   int
	}
	var spans []span
	flagsLive := mask&(1<<isa.NumGPR) != 0
	switch policy {
	case LiveTargetLive:
		for g := 0; g < isa.NumGPR; g++ {
			if mask&(1<<g) != 0 {
				spans = append(spans, span{g, 32})
			}
		}
		spans = append(spans, span{8, 32})
		if flagsLive {
			spans = append(spans, span{9, flagsReadableBits})
		}
	case LiveTargetDead:
		for g := 0; g < isa.NumGPR; g++ {
			if mask&(1<<g) == 0 {
				spans = append(spans, span{g, 32})
			}
		}
		// PC is never dead.  Flag bits 4..31 are never read back, so
		// they are dead even when the low flags are live.
		if flagsLive {
			spans = append(spans, span{9, 32 - flagsReadableBits})
		} else {
			spans = append(spans, span{9, 32})
		}
	}
	n := 0
	for _, s := range spans {
		n += s.bits
	}
	if n == 0 {
		// Nothing live besides PC cannot happen (PC is always a live
		// candidate); nothing dead can, if every GPR and the flags are
		// live.  Skip the flip and report an empty candidate set.
		return fmt.Sprintf("no %s bits at pc %#x", policy, m.PC), 0
	}

	pick := r.Intn(n)
	for _, s := range spans {
		if pick >= s.bits {
			pick -= s.bits
			continue
		}
		bit := uint(pick)
		if s.target == 9 && policy == LiveTargetDead && flagsLive {
			bit += flagsReadableBits // skip the readable low bits
		}
		suffix := fmt.Sprintf(" [%s-directed]", policy)
		switch {
		case s.target < isa.NumGPR:
			m.Regs[s.target] ^= 1 << bit
			return fmt.Sprintf("%s bit %d%s", isa.GPRName(s.target), bit, suffix), n
		case s.target == 8:
			m.PC ^= 1 << bit
			return fmt.Sprintf("pc bit %d%s", bit, suffix), n
		default:
			m.Flags ^= 1 << bit
			return fmt.Sprintf("flags bit %d%s", bit, suffix), n
		}
	}
	panic("core: candidate pick out of range")
}
