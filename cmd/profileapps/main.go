// Command profileapps regenerates Table 1 of the paper: the per-process
// profiles (memory section sizes, heap and stack use, incoming message
// volume and its header/user split) of the three test applications.
//
// Usage:
//
//	profileapps [-ranks N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpifault/internal/apps"
	"mpifault/internal/mpi"
	"mpifault/internal/profile"
	"mpifault/internal/report"
)

func main() {
	ranks := flag.Int("ranks", 0, "override the per-app default world size")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("profileapps: ")

	var profiles []*profile.Profile
	for _, a := range apps.Registry() {
		cfg := a.Default
		if *ranks > 0 {
			cfg.Ranks = *ranks
		}
		im, err := a.Build(cfg)
		if err != nil {
			log.Fatalf("build %s: %v", a.Name, err)
		}
		p, err := profile.Measure(a.Name, im, cfg.Ranks, mpi.Config{})
		if err != nil {
			log.Fatalf("measure %s: %v", a.Name, err)
		}
		profiles = append(profiles, p)
	}
	report.WriteProfiles(os.Stdout, profiles)
	fmt.Println()
	fmt.Println("(wavetoy stands in for Cactus Wavetoy, minimd for NAMD, minicam for CAM;")
	fmt.Println(" see DESIGN.md for the substitution rationale)")
}
