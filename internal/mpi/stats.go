package mpi

// Stats accumulates the per-rank incoming traffic profile measured at the
// Channel layer — the instrumentation §4.2 adds to MPICH to produce
// Table 1's message rows.  Control messages carry only a header; data
// messages carry header plus user payload.
type Stats struct {
	ControlMsgs  uint64 // RTS + CTS + barrier tokens received
	DataMsgs     uint64 // eager + rendezvous data messages received
	HeaderBytes  uint64 // header bytes received (all kinds)
	PayloadBytes uint64 // user payload bytes received
}

func (s *Stats) account(p *Packet) {
	s.HeaderBytes += HeaderBytes
	if p.IsControl() {
		s.ControlMsgs++
	} else {
		s.DataMsgs++
		s.PayloadBytes += uint64(len(p.Payload))
	}
}

// TotalBytes returns all bytes received at the Channel layer.
func (s *Stats) TotalBytes() uint64 { return s.HeaderBytes + s.PayloadBytes }

// HeaderPercent returns the share of received volume that is header —
// the "Header" column of Table 1's message distribution.
func (s *Stats) HeaderPercent() float64 {
	t := s.TotalBytes()
	if t == 0 {
		return 0
	}
	return 100 * float64(s.HeaderBytes) / float64(t)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ControlMsgs += other.ControlMsgs
	s.DataMsgs += other.DataMsgs
	s.HeaderBytes += other.HeaderBytes
	s.PayloadBytes += other.PayloadBytes
}
