// Command benchcmp compares `go test -bench` output on stdin against
// the reference timings recorded in BENCH_vm.json and reports
// regressions beyond a percentage threshold.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/vm | \
//	    go run ./scripts/benchcmp -ref BENCH_vm.json -threshold 25
//
// It exits 1 when any benchmark regressed past the threshold and 0
// otherwise.  Benchmarks present on only one side are reported but
// never fail the check.
//
// When the input contains several timings for one benchmark (go test
// -count=N), the minimum is kept: the fastest run is the least
// disturbed by scheduler noise, which is what makes a tight threshold
// usable as a blocking gate — CI runs this at 2% over -count=5 to
// verify that disabled telemetry adds no interpreter overhead.  A
// reference entry may widen its own gate with "gate_pct" (see the
// reference struct below) for benchmarks whose ns/op is too small for
// a 2% band to clear code-layout jitter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

type reference struct {
	Benchmarks map[string]struct {
		After struct {
			Time float64 `json:"time"`
		} `json:"after"`
		// GatePct, when non-zero, overrides the -threshold flag for
		// this benchmark.  Sub-microsecond setup benchmarks like
		// BenchmarkMachineNew swing several percent from code layout
		// alone whenever any package in the test binary changes, so
		// they carry a wider gate than the interpreter hot loop; the
		// regressions they exist to catch (reintroduced per-experiment
		// setup bloat) are orders of magnitude, not single digits.
		GatePct float64 `json:"gate_pct"`
	} `json:"benchmarks"`
}

func main() {
	refPath := flag.String("ref", "BENCH_vm.json", "reference benchmark JSON")
	threshold := flag.Float64("threshold", 25, "warn when ns/op regresses more than this percentage")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")

	data, err := os.ReadFile(*refPath)
	if err != nil {
		log.Fatal(err)
	}
	var ref reference
	if err := json.Unmarshal(data, &ref); err != nil {
		log.Fatalf("%s: %v", *refPath, err)
	}

	measured := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		name, nsPerOp, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if old, seen := measured[name]; !seen || nsPerOp < old {
			measured[name] = nsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	regressed := 0
	for name, entry := range ref.Benchmarks {
		want := entry.After.Time
		got, ok := measured[name]
		if !ok || want == 0 {
			if want != 0 {
				fmt.Printf("benchcmp: %-22s reference %.4g ns/op, not measured this run\n", name, want)
			}
			continue
		}
		gate := *threshold
		if entry.GatePct > 0 {
			gate = entry.GatePct
		}
		deltaPct := 100 * (got - want) / want
		status := "ok"
		if deltaPct > gate {
			status = "REGRESSION"
			regressed++
		}
		fmt.Printf("benchcmp: %-22s ref %.4g ns/op, now %.4g ns/op (%+.1f%%, gate %.0f%%) %s\n",
			name, want, got, deltaPct, gate, status)
	}
	for name := range measured {
		if _, ok := ref.Benchmarks[name]; !ok {
			fmt.Printf("benchcmp: %-22s %.4g ns/op (no reference entry)\n", name, measured[name])
		}
	}
	if regressed > 0 {
		log.Fatalf("%d benchmark(s) regressed past their gate vs %s", regressed, *refPath)
	}
}

// parseBenchLine extracts (name, ns/op) from one line of `go test
// -bench` output, e.g. "BenchmarkStep-8   1000   12.3 ns/op   0 B/op".
// The "-N" GOMAXPROCS suffix is stripped so names match the reference.
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i]
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}
