package progress

import (
	"testing"
	"time"

	"mpifault/internal/telemetry"
)

// driver runs a Monitor against a fully injected clock: ticks arrive
// only when the test sends them, and every sample value is delivered
// through a channel the monitor blocks on.  The monitor's entire
// schedule is therefore deterministic — no sleeps, no wall-clock
// dependence, no flakes under load.
type driver struct {
	ticks  chan time.Time
	vals   chan uint64
	result chan bool
	stop   chan struct{}
}

func startDriver(cfg Config) *driver {
	d := &driver{
		ticks:  make(chan time.Time),
		vals:   make(chan uint64),
		result: make(chan bool, 1),
		stop:   make(chan struct{}),
	}
	cfg.Ticks = d.ticks
	mon := NewMonitor(cfg, func() uint64 { return <-d.vals })
	go func() { d.result <- mon.Run(d.stop) }()
	return d
}

// window advances one sampling window: one tick, then the counter value
// the monitor reads for it.
func (d *driver) window(counter uint64) {
	d.ticks <- time.Time{}
	d.vals <- counter
}

func (d *driver) wait(t *testing.T) bool {
	t.Helper()
	select {
	case got := <-d.result:
		return got
	case <-time.After(5 * time.Second):
		t.Fatal("monitor did not return")
		return false
	}
}

func TestDetectsStallAfterBaseline(t *testing.T) {
	d := startDriver(Config{BaselineWindows: 3, Threshold: 0.05, Consecutive: 2})
	d.vals <- 0 // initial sample
	// Baseline: 100 events per window.
	d.window(100)
	d.window(200)
	d.window(300)
	// Stall: the counter stops moving for Consecutive windows.
	d.window(300)
	d.window(300)
	if !d.wait(t) {
		t.Fatal("monitor returned without a stall verdict")
	}
}

func TestNoFalsePositiveWhileProgressing(t *testing.T) {
	d := startDriver(Config{BaselineWindows: 3, Threshold: 0.05, Consecutive: 3})
	d.vals <- 0
	c := uint64(0)
	for i := 0; i < 20; i++ {
		c += 50 // steady rate, well above threshold
		d.window(c)
	}
	close(d.stop)
	if d.wait(t) {
		t.Fatal("false stall verdict on steady progress")
	}
}

func TestRecoveryResetsStallCount(t *testing.T) {
	d := startDriver(Config{BaselineWindows: 2, Threshold: 0.5, Consecutive: 2})
	d.vals <- 0
	d.window(100) // baseline
	d.window(200) // baseline (rate 100)
	d.window(200) // stalled 1
	d.window(300) // recovery: stall count must reset
	d.window(300) // stalled 1 again — still no verdict
	d.window(300) // stalled 2 — verdict
	if !d.wait(t) {
		t.Fatal("expected a verdict after a second full stall sequence")
	}
}

func TestUnusableMetricGivesUp(t *testing.T) {
	// A counter that never moves cannot establish a baseline; the
	// monitor must exit false rather than flag a stall.
	d := startDriver(Config{BaselineWindows: 2})
	d.vals <- 0
	d.window(0)
	d.window(0)
	d.window(0) // first post-baseline window: expected == 0 → give up
	if d.wait(t) {
		t.Fatal("zero-baseline metric must not produce a verdict")
	}
}

func TestStopTerminatesRun(t *testing.T) {
	ticks := make(chan time.Time)
	mon := NewMonitor(Config{Ticks: ticks}, func() uint64 { return 0 })
	stop := make(chan struct{})
	result := make(chan bool, 1)
	go func() { result <- mon.Run(stop) }()
	close(stop)
	select {
	case got := <-result:
		if got {
			t.Fatal("stopped monitor reported a stall")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("monitor ignored stop")
	}
}

func TestRealTickerStillWorks(t *testing.T) {
	// The production configuration (no injected clock) must still run
	// off a real ticker; only liveness is asserted, not timing.
	mon := NewMonitor(Config{Window: time.Millisecond, BaselineWindows: 2},
		func() uint64 { return 0 })
	result := make(chan bool, 1)
	go func() { result <- mon.Run(make(chan struct{})) }()
	select {
	case got := <-result:
		if got {
			t.Fatal("zero-baseline metric must not produce a verdict")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("real-ticker monitor did not give up on a dead metric")
	}
}

func TestGaugesExposeStallState(t *testing.T) {
	reg := telemetry.New()
	d := startDriver(Config{BaselineWindows: 2, Threshold: 0.5, Consecutive: 2, Metrics: reg})
	d.vals <- 0
	d.window(100)
	d.window(200)
	d.window(200)
	d.window(200)
	if !d.wait(t) {
		t.Fatal("expected stall verdict")
	}
	s := reg.Snapshot()
	if got := s.Gauges[telemetry.MetricProgressStalledWins]; got != 2 {
		t.Fatalf("stalled-windows gauge = %d, want 2", got)
	}
	if got := s.Gauges[telemetry.MetricProgressBaseline]; got != 100 {
		t.Fatalf("baseline gauge = %d, want 100", got)
	}
	if got := s.Counters[telemetry.MetricProgressStallVerdicts]; got != 1 {
		t.Fatalf("verdict counter = %d, want 1", got)
	}
	if got := s.Gauges[telemetry.MetricProgressRate]; got != 0 {
		t.Fatalf("rate gauge = %d, want 0 after stall", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Window <= 0 || c.BaselineWindows <= 0 || c.Threshold <= 0 || c.Consecutive <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}
