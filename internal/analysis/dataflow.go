package analysis

import (
	"fmt"
	"sort"

	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// The dataflow pass answers, for every reachable instruction boundary
// and register, the question the liveness pass only answers with a bit:
// *where* does the value flow?  It computes, per (pc, register), the set
// of first uses — the instructions (and operand slots within them) a
// corrupted register value can reach before being overwritten.  Two
// injection sites whose corrupted bit provably flows into the same first
// uses are equivalent for fault-sensitivity purposes; a site with no
// first use at all is provably benign.  internal/analysis/equivalence.go
// turns these sets into the per-PC equivalence partition the campaign
// samples from.
//
// The pass reuses the CFG and the interprocedural call summaries the
// liveness pass computed (mayUse/mustDef/retLive), so the two analyses
// agree by construction: a register is live at pc exactly when its
// first-use set at pc is nonempty.  ComputeDataflow cross-checks this
// invariant and reports any disagreement as a "dataflow" finding — it
// indicates a bug in one of the two passes, never in the program.

// UseSlot identifies where within its first-use instruction a corrupted
// value enters: one of the structural operand slots, or one of the
// summarized interprocedural channels.
type UseSlot uint8

const (
	// SlotRa/SlotRb/SlotRc: the instruction reads the register through
	// the named encoding slot (base/index/store-source).
	SlotRa UseSlot = iota
	SlotRb
	SlotRc
	// SlotSP: the implicit stack-pointer read of push/pop/call/ret.
	SlotSP
	// SlotFlags: a conditional branch (or fxam) reads the flags word.
	SlotFlags
	// SlotCall: a callee (or, for indirect calls, any function) may read
	// the register on entry; the use site is the call instruction.
	SlotCall
	// SlotRet: the register is live in the caller after this return; the
	// value escapes the function through the return.
	SlotRet
	// SlotSys: the kernel reads the register as a syscall argument.
	SlotSys
)

var slotNames = [...]string{"ra", "rb", "rc", "sp", "flags", "call", "ret", "sys"}

func (s UseSlot) String() string {
	if int(s) < len(slotNames) {
		return slotNames[s]
	}
	return "slot?"
}

// UseRef is one first-use site: the instruction address and the operand
// slot the corrupted value enters through.
type UseRef struct {
	Addr uint32
	Slot UseSlot
}

func (u UseRef) String() string { return fmt.Sprintf("0x%08x/%s", u.Addr, u.Slot) }

// packRef encodes a UseRef for cheap sorted-set operations.
func packRef(addr uint32, slot UseSlot) uint64 { return uint64(addr)<<8 | uint64(slot) }

func unpackRef(p uint64) UseRef { return UseRef{Addr: uint32(p >> 8), Slot: UseSlot(p & 0xFF)} }

// nTrackedRegs is the per-instruction register dimension of the
// dataflow: the eight GPRs plus the flags word (index FlagsBit).
const nTrackedRegs = isa.NumGPR + 1

// Dataflow holds the first-use sets for a whole program.
type Dataflow struct {
	Prog *Program
	Live *Liveness

	// Findings reports liveness/dataflow disagreements (analyzer bugs)
	// discovered by the cross-check.
	Findings []Finding

	// firstUse maps each reachable instruction address to the per-register
	// sorted first-use sets (packed UseRefs).  A nil/empty set proves the
	// register's value is dead at that point.
	firstUse map[uint32]*[nTrackedRegs][]uint64
}

// ComputeDataflow runs the first-use dataflow over an analyzed program
// with its liveness results, then cross-checks the two against each
// other.
func ComputeDataflow(prog *Program, live *Liveness) *Dataflow {
	d := &Dataflow{
		Prog:     prog,
		Live:     live,
		firstUse: make(map[uint32]*[nTrackedRegs][]uint64),
	}
	for _, f := range prog.Funcs {
		fl := live.funcs[f.Sym.Name]
		if fl == nil {
			continue
		}
		var sets [nTrackedRegs][][]uint64
		for reg := 0; reg < nTrackedRegs; reg++ {
			sets[reg] = d.flowReg(fl, reg)
		}
		for i := range f.Instrs {
			if !f.reach[i] {
				continue
			}
			entry := new([nTrackedRegs][]uint64)
			for reg := 0; reg < nTrackedRegs; reg++ {
				entry[reg] = sets[reg][i]
			}
			d.firstUse[f.Addr(i)] = entry
		}
	}
	d.crossCheck()
	return d
}

// FirstUses returns the first-use set of register reg (0..NumGPR-1, or
// FlagsBit for the flags word) at an instruction boundary; ok is false
// when pc is not a known reachable instruction.  An empty set with
// ok=true proves the register's value cannot reach any use.
func (d *Dataflow) FirstUses(pc uint32, reg int) ([]UseRef, bool) {
	entry, ok := d.firstUse[pc]
	if !ok || reg < 0 || reg >= nTrackedRegs {
		return nil, false
	}
	set := entry[reg]
	out := make([]UseRef, len(set))
	for i, p := range set {
		out[i] = unpackRef(p)
	}
	return out, true
}

// ClassID returns the equivalence-class identity of (pc, reg): a stable
// nonzero hash of the register and its first-use set, equal exactly for
// sites whose corrupted value flows into the same uses through the same
// operands.  It returns (0, true) when the set is empty — the site is
// provably benign and belongs to no class — and ok=false for unknown pcs.
func (d *Dataflow) ClassID(pc uint32, reg int) (uint64, bool) {
	entry, ok := d.firstUse[pc]
	if !ok || reg < 0 || reg >= nTrackedRegs {
		return 0, false
	}
	set := entry[reg]
	if len(set) == 0 {
		return 0, true
	}
	return classHash(reg, set), true
}

// classHash is FNV-1a over the register index and the packed, sorted
// first-use set, forced nonzero so that 0 can mean "no class".
func classHash(reg int, set []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(reg))
	for _, p := range set {
		mix(p)
	}
	if h == 0 {
		h = 1
	}
	return h
}

// flowReg runs the backward first-use fixpoint for one register over one
// function, mirroring the liveness pass's useDef decomposition exactly
// (same call summaries, same return liveness) so that set-emptiness and
// liveness coincide.
func (d *Dataflow) flowReg(fl *funcLive, reg int) [][]uint64 {
	f := fl.f
	first := make([][]uint64, len(f.Instrs))
	if len(f.Blocks) == 0 {
		return first
	}
	blockIn := make([][]uint64, len(f.Blocks))
	for changed := true; changed; {
		changed = false
		for bi := len(f.Blocks) - 1; bi >= 0; bi-- {
			b := &f.Blocks[bi]
			var out []uint64
			for _, s := range b.Succs {
				out = unionSets(out, blockIn[s])
			}
			for i := b.End - 1; i >= b.Start; i-- {
				sites, def := d.sitesOf(f, i, reg, fl.retLive)
				switch {
				case len(sites) > 0:
					// The instruction reads the register: the corrupted
					// value flows into it here, whatever happens after.
					out = sites
				case def:
					// Overwritten before any use on this path.
					out = nil
				}
				first[i] = out
			}
			if !setsEqual(blockIn[bi], out) {
				blockIn[bi] = out
				changed = true
			}
		}
	}
	return first
}

// sitesOf returns the use sites and the def verdict of instruction i for
// register reg (FlagsBit for flags), the slot-resolved counterpart of
// Liveness.useDef — the case split must stay in lockstep with it.
func (d *Dataflow) sitesOf(f *FuncCFG, i, reg int, exitLive RegMask) (sites []uint64, def bool) {
	in := f.Instrs[i]
	addr := f.Addr(i)
	rb := regBit(reg)
	add := func(slot UseSlot) { sites = append(sites, packRef(addr, slot)) }
	switch {
	case in.Op == isa.OpCall:
		use := regBit(isa.SP)
		var defMask RegMask
		if g := d.Live.calleeOf(in); g != nil {
			use |= g.mayUse
			defMask = g.mustDef
		} else {
			use = maskAll
		}
		if use&rb != 0 {
			if reg == isa.SP {
				add(SlotSP)
			} else {
				add(SlotCall)
			}
		}
		return sites, defMask&rb != 0
	case in.Op == isa.OpCallr:
		if reg == isa.SP {
			add(SlotSP)
		} else {
			add(SlotCall)
		}
		return sites, false
	case in.Op == isa.OpRet:
		if reg == isa.SP {
			add(SlotSP)
		} else if exitLive&rb != 0 {
			add(SlotRet)
		}
		return sites, false
	case isSysExit(in):
		if reg == 0 {
			add(SlotSys)
		}
		return sites, false
	case in.Op.IsSyscall():
		if reg >= 0 && reg <= 3 {
			add(SlotSys)
		}
		return sites, false
	}
	if reg == FlagsBit {
		if in.Op.ReadsFlags() {
			add(SlotFlags)
		}
		return sites, in.Op.WritesFlags()
	}
	for _, o := range in.Op.Reads() {
		switch o {
		case isa.OperandRa:
			if int(in.Ra) == reg {
				add(SlotRa)
			}
		case isa.OperandRb:
			if int(in.Rb) == reg {
				add(SlotRb)
			}
		case isa.OperandRc:
			if int(in.Rc()) == reg {
				add(SlotRc)
			}
		case isa.OperandSP:
			if reg == isa.SP {
				add(SlotSP)
			}
		}
	}
	sortSet(sites)
	for _, r := range in.DstGPRs() {
		if r == reg {
			def = true
		}
	}
	return sites, def
}

// crossCheck verifies the liveness/dataflow agreement invariant: a
// register is live at pc iff its first-use set is nonempty.  Any
// violation is an analyzer bug and becomes a "dataflow" finding.
func (d *Dataflow) crossCheck() {
	for _, f := range d.Prog.Funcs {
		for i := range f.Instrs {
			if !f.reach[i] {
				continue
			}
			pc := f.Addr(i)
			mask, ok := d.Live.LiveAt(pc)
			entry := d.firstUse[pc]
			if !ok || entry == nil {
				continue
			}
			m := RegMask(mask)
			for reg := 0; reg < nTrackedRegs; reg++ {
				live := m&regBit(reg) != 0
				if flows := len(entry[reg]) > 0; flows != live {
					name := "flags"
					if reg < isa.NumGPR {
						name = isa.GPRName(reg)
					}
					d.Findings = append(d.Findings, Finding{
						Pass: "dataflow", Func: f.Sym.Name, Addr: pc,
						Msg: fmt.Sprintf("%s: liveness says live=%v but first-use set has %d entries — the passes disagree",
							name, live, len(entry[reg])),
					})
				}
			}
		}
	}
}

func sortSet(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// unionSets merges two sorted packed-ref sets into a fresh sorted set.
func unionSets(a, b []uint64) []uint64 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func setsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// StackSlotInfo summarizes one reachable user function's fp-relative
// local slots: which byte offsets are stored and which of those are
// provably dead (stored but never loaded back, with no way for the
// address to escape).  A fault in a dead slot byte cannot manifest.
type StackSlotInfo struct {
	Func string
	// WrittenBytes counts distinct fp-relative local bytes the function
	// stores; DeadBytes the subset never loaded back.
	WrittenBytes, DeadBytes int
	// DeadOffsets lists the dead bytes' fp-relative offsets, sorted.
	DeadOffsets []int32
	// FPEscapes: the frame pointer's value flows somewhere other than a
	// local access (address arithmetic, a store of fp itself beyond the
	// prologue save) — all dead-slot claims are withdrawn.
	FPEscapes bool
	// Indexed: some frame access uses a runtime index or goes through
	// the stack pointer, so offsets cannot be resolved statically — all
	// dead-slot claims are withdrawn.
	Indexed bool
}

// StackSlots runs the dead-store analysis over every reachable user
// function, in address order.  The claims are deliberately conservative:
// any indexed access, sp-relative memory access, or escape of the frame
// pointer's value withdraws every claim for that function.
func (d *Dataflow) StackSlots() []StackSlotInfo {
	var out []StackSlotInfo
	for _, f := range d.Prog.Funcs {
		if !f.Reachable || f.Sym.Owner != image.OwnerUser {
			continue
		}
		out = append(out, d.stackSlotsOf(f))
	}
	return out
}

func (d *Dataflow) stackSlotsOf(f *FuncCFG) StackSlotInfo {
	info := StackSlotInfo{Func: f.Sym.Name}
	written := make(map[int32]bool)
	read := make(map[int32]bool)
	mark := func(m map[int32]bool, off int32, size int) {
		for b := 0; b < size; b++ {
			m[off+int32(b)] = true
		}
	}
	for i, in := range f.Instrs {
		if !f.reach[i] {
			continue
		}
		if in.Op.IsMemForm() {
			// Any sp-relative or runtime-indexed frame access defeats the
			// static offset resolution.
			if in.Ra == isa.SP || in.Rb == isa.SP {
				info.Indexed = true
			}
			if in.Ra == isa.FP && in.Rb != isa.RegNone {
				info.Indexed = true
			}
			if in.Ra == isa.FP && in.Rb == isa.RegNone && in.Imm < 0 {
				size := memAccessBytes(in.Op)
				if in.Op.IsLoad() {
					mark(read, in.Imm, size)
				}
				if in.Op.IsStore() {
					mark(written, in.Imm, size)
				}
			}
		}
		// Escape analysis: every read of fp outside the sanctioned
		// patterns (frame-base addressing, the prologue save, the
		// epilogue stack restore) lets the frame address flow into
		// arithmetic or memory, where a load could alias any slot.
		for _, o := range in.Op.Reads() {
			switch o {
			case isa.OperandRa:
				if in.Ra != isa.FP {
					continue
				}
				switch {
				case in.Op.IsMemForm():
					// frame-base addressing
				case in.Op == isa.OpPush:
					// prologue "push fp"
				case in.Op == isa.OpMovr && int(in.Rd) == isa.SP:
					// epilogue "movr sp, fp"
				default:
					info.FPEscapes = true
				}
			case isa.OperandRb:
				if in.Rb == isa.FP {
					info.FPEscapes = true // fp as runtime index
				}
			case isa.OperandRc:
				if in.Rc() == isa.FP {
					info.FPEscapes = true // fp's value stored to memory
				}
			}
		}
	}
	info.WrittenBytes = len(written)
	if info.FPEscapes || info.Indexed {
		return info
	}
	for off := range written {
		if !read[off] {
			info.DeadOffsets = append(info.DeadOffsets, off)
		}
	}
	sort.Slice(info.DeadOffsets, func(i, j int) bool { return info.DeadOffsets[i] < info.DeadOffsets[j] })
	info.DeadBytes = len(info.DeadOffsets)
	return info
}

// memAccessBytes is the access width of a memory-form opcode.
func memAccessBytes(op isa.Op) int {
	switch op {
	case isa.OpLdb, isa.OpStb:
		return 1
	case isa.OpFld, isa.OpFst, isa.OpFstp:
		return 8
	default:
		return 4
	}
}
