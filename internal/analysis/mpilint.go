package analysis

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mpifault/internal/abi"
	"mpifault/internal/cluster"
	"mpifault/internal/image"
	"mpifault/internal/mpi"
	"mpifault/internal/vm"
)

// MPILintResult is the outcome of the communication lint: the findings
// plus the match statistics behind them.
type MPILintResult struct {
	Findings []Finding
	Ops      int // point-to-point operations recorded
	Matched  int // send/recv pairs matched
	Hang     bool
	Cause    string
}

// MPILint executes the image once under the cluster with a recording
// hook on every rank and lints the observed point-to-point traffic:
// unmatched sends or receives, matched pairs whose receive buffer
// truncates the payload, tag mismatches between otherwise-paired
// endpoints, and wait-for cycles among blocking operations (an MPI_Send
// edge only counts when the payload exceeds the eager threshold, since
// eager sends complete without a partner).  Collective-internal traffic
// is runtime-private and deliberately out of scope.
func MPILint(im *image.Image, ranks int, mpiCfg mpi.Config, budget uint64, wall time.Duration) *MPILintResult {
	var mu sync.Mutex
	var ops []mpi.CommOp
	res := cluster.Run(cluster.Job{
		Image:     im,
		Size:      ranks,
		MPIConfig: mpiCfg,
		Budget:    budget,
		WallLimit: wall,
		Setup: func(rank int, m *vm.Machine, p *mpi.Proc) {
			p.CommHook = func(op mpi.CommOp) {
				mu.Lock()
				ops = append(ops, op)
				mu.Unlock()
			}
		},
	})
	out := &MPILintResult{Ops: len(ops)}
	if res.HangDetected {
		out.Hang, out.Cause = true, res.HangCause
		out.Findings = append(out.Findings, Finding{
			Pass: "mpi", Msg: fmt.Sprintf("clean run hangs: %s", res.HangCause),
		})
	}
	for r := 0; r < ranks; r++ {
		if t := res.Ranks[r].Trap; t != nil && t.Kind != vm.TrapExit {
			out.Findings = append(out.Findings, Finding{
				Pass: "mpi", Msg: fmt.Sprintf("rank %d died during the recording run: %v", r, t),
			})
		}
	}
	lintOps(ops, eagerThreshold(mpiCfg), out)
	return out
}

func eagerThreshold(cfg mpi.Config) uint32 {
	if cfg.EagerThreshold == 0 {
		return 1024
	}
	return cfg.EagerThreshold
}

// lintOps matches the recorded operations and reports the mismatches.
// Matching is a two-phase multiset pairing in recorded order: concrete
// receives first (exact source), then wildcard receives sweep what is
// left — the same precedence the runtime's envelope matching uses.
func lintOps(ops []mpi.CommOp, eager uint32, out *MPILintResult) {
	type opRef struct {
		mpi.CommOp
		matched bool
		seq     int
	}
	var sends, recvs []*opRef
	for i, op := range ops {
		r := &opRef{CommOp: op, seq: i}
		if op.Send {
			sends = append(sends, r)
		} else {
			recvs = append(recvs, r)
		}
	}
	match := func(rv *opRef) *opRef {
		for _, s := range sends {
			if s.matched || s.Peer != int32(rv.Rank) {
				continue
			}
			if rv.Peer != abi.AnySource && int32(s.Rank) != rv.Peer {
				continue
			}
			if rv.Tag != abi.AnyTag && s.Tag != rv.Tag {
				continue
			}
			return s
		}
		return nil
	}
	runPhase := func(wildcard bool) {
		for _, rv := range recvs {
			if rv.matched || (rv.Peer == abi.AnySource || rv.Tag == abi.AnyTag) != wildcard {
				continue
			}
			if s := match(rv); s != nil {
				s.matched, rv.matched = true, true
				out.Matched++
				if s.Bytes > rv.Bytes {
					out.Findings = append(out.Findings, Finding{
						Pass: "mpi",
						Msg: fmt.Sprintf("count mismatch: %s of %d bytes (rank %d -> %d, tag %d) truncated by a %d-byte receive buffer",
							s.Fn, s.Bytes, s.Rank, rv.Rank, s.Tag, rv.Bytes),
					})
				}
			}
		}
	}
	runPhase(false)
	runPhase(true)

	for _, s := range sends {
		if !s.matched {
			out.Findings = append(out.Findings, Finding{
				Pass: "mpi",
				Msg: fmt.Sprintf("unmatched send: %s rank %d -> %d, tag %d, %d bytes",
					s.Fn, s.Rank, s.Peer, s.Tag, s.Bytes),
			})
		}
	}
	for _, rv := range recvs {
		if !rv.matched {
			out.Findings = append(out.Findings, Finding{
				Pass: "mpi",
				Msg: fmt.Sprintf("unmatched receive: %s rank %d <- %d, tag %d",
					rv.Fn, rv.Rank, rv.Peer, rv.Tag),
			})
		}
	}
	// Tag-mismatch hints: an unmatched send and an unmatched receive
	// joining the same endpoints with different tags almost certainly
	// meant to pair up.
	for _, s := range sends {
		if s.matched {
			continue
		}
		for _, rv := range recvs {
			if rv.matched || s.Peer != int32(rv.Rank) || rv.Peer != int32(s.Rank) || s.Tag == rv.Tag {
				continue
			}
			out.Findings = append(out.Findings, Finding{
				Pass: "mpi",
				Msg: fmt.Sprintf("tag mismatch: rank %d sends tag %d to rank %d, which only posts tag %d from it",
					s.Rank, s.Tag, rv.Rank, rv.Tag),
			})
			break
		}
	}

	// Wait-for cycles over the unmatched blocking operations: a blocking
	// receive makes its rank wait for the source; an unmatched send
	// beyond the eager threshold waits for the destination (rendezvous).
	waitsFor := make(map[int]map[int]string)
	edge := func(from, to int, why string) {
		if waitsFor[from] == nil {
			waitsFor[from] = make(map[int]string)
		}
		if _, dup := waitsFor[from][to]; !dup {
			waitsFor[from][to] = why
		}
	}
	for _, rv := range recvs {
		if !rv.matched && rv.Blocking && rv.Peer != abi.AnySource {
			edge(rv.Rank, int(rv.Peer), fmt.Sprintf("%s tag %d", rv.Fn, rv.Tag))
		}
	}
	for _, s := range sends {
		if !s.matched && s.Blocking && s.Bytes > eager {
			edge(s.Rank, int(s.Peer), fmt.Sprintf("rendezvous %s tag %d", s.Fn, s.Tag))
		}
	}
	if cyc := findCycle(waitsFor); len(cyc) > 0 {
		desc := ""
		for i, r := range cyc {
			next := cyc[(i+1)%len(cyc)]
			if i > 0 {
				desc += ", "
			}
			desc += fmt.Sprintf("rank %d waits for %d (%s)", r, next, waitsFor[r][next])
		}
		out.Findings = append(out.Findings, Finding{
			Pass: "mpi", Msg: "wait-for cycle: " + desc,
		})
	}
}

// findCycle returns one cycle in the wait-for graph as a rank list, or
// nil.  Ranks are visited in order so the report is deterministic.
func findCycle(g map[int]map[int]string) []int {
	var nodes []int
	for n := range g {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	var found []int
	var dfs func(n int) bool
	dfs = func(n int) bool {
		color[n] = gray
		stack = append(stack, n)
		var tos []int
		for to := range g[n] {
			tos = append(tos, to)
		}
		sort.Ints(tos)
		for _, to := range tos {
			switch color[to] {
			case white:
				if dfs(to) {
					return true
				}
			case gray:
				for i, r := range stack {
					if r == to {
						found = append(found, stack[i:]...)
						return true
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			return found
		}
	}
	return nil
}
