package analysis

import (
	"bytes"
	"strings"
	"testing"

	"mpifault/internal/asm"
	"mpifault/internal/isa"
	"mpifault/internal/profile"
)

func avfRow(t *testing.T, rep *AVFReport, region string) AVFRow {
	t.Helper()
	for _, r := range rep.Rows {
		if r.Region == region {
			return r
		}
	}
	t.Fatalf("no %q row in the AVF report", region)
	return AVFRow{}
}

// TestAVFStackDenominatorFallback: when neither ABI stats nor a profile
// supply a stack extent, the stack row's denominator is unknown — the
// estimator must report Total=0 (not fabricate an extent from zero
// frame sizes) and WriteAVF must omit the row rather than print a fake
// 0% prediction.
func TestAVFStackDenominatorFallback(t *testing.T) {
	im := buildApp(t, func(m *asm.Module) {
		f := m.Func("main")
		f.Prologue(0)
		f.Call("worker")
		f.Movi(isa.R0, 0)
		f.Epilogue()
		g := m.Func("worker")
		g.Prologue(8)
		g.Movi(isa.R1, 3)
		g.St(isa.FP, -4, isa.R1)
		g.Ld(isa.R2, isa.FP, -4)
		g.Add(isa.R0, isa.R2, isa.R2)
		g.Epilogue()
	})
	prog, live, all := analyzeImage(t, im)
	for _, f := range all {
		t.Fatalf("unexpected finding: %s", f)
	}

	// No frame sizes, no profile: the denominator is unknown.
	rep := EstimateAVF(prog, live, map[string]ABIStats{}, nil)
	if st := avfRow(t, rep, "Stack"); st.Total != 0 || st.Sensitive != 0 || st.Fraction() != 0 {
		t.Errorf("stack row without frame sizes = %+v, want 0/0", st)
	}
	var buf bytes.Buffer
	rep.WriteAVF(&buf, nil)
	if strings.Contains(buf.String(), "Stack") {
		t.Errorf("Stack row printed with an unknown denominator:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "Text") {
		t.Errorf("known regions missing from the table:\n%s", buf.String())
	}

	// A measured profile alone cannot conjure the denominator: the
	// rescale is gated on a nonzero link-time total.
	prof := &profile.Profile{StackBytes: 4096}
	rep = EstimateAVF(prog, live, map[string]ABIStats{}, prof)
	if st := avfRow(t, rep, "Stack"); st.Total != 0 {
		t.Errorf("profile rescale fabricated a stack extent: %+v", st)
	}

	// With real frame sizes the row returns; a profile rescales its
	// denominator to the measured extent.
	_, abiStats := ABICheck(prog)
	rep = EstimateAVF(prog, live, abiStats, nil)
	st := avfRow(t, rep, "Stack")
	if st.Total == 0 || st.Sensitive == 0 || st.Sensitive > st.Total {
		t.Errorf("stack row with frame sizes = %+v, want 0 < sensitive <= total", st)
	}
	rep = EstimateAVF(prog, live, abiStats, prof)
	if st := avfRow(t, rep, "Stack"); st.Total != 4096 {
		t.Errorf("profile rescale: total = %d, want the measured 4096", st.Total)
	}
	buf.Reset()
	rep.WriteAVF(&buf, nil)
	if !strings.Contains(buf.String(), "Stack") {
		t.Errorf("Stack row missing despite a known denominator:\n%s", buf.String())
	}
}
