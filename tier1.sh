#!/bin/sh
# tier1.sh — the repo's tier-1 gate: formatting, vet, build, the full
# test suite under the race detector, and a clean faultlint run over the
# three guest applications.  Exits nonzero on the first failure and
# prints a per-stage wall-clock timing line after each stage.
#
# Environment:
#   TIER1_QUICK=1  quick mode for CI matrix legs: runs the test suite
#                  without the race detector and skips the benchmark
#                  smoke.  The full (default) mode is the merge gate;
#                  quick mode exists so the sharded-campaign matrix
#                  stays fast.
set -eu
cd "$(dirname "$0")"

QUICK=${TIER1_QUICK:-0}
SCRIPT_T0=$(date +%s)

begin() {
	echo "== $1 =="
	STAGE_NAME=$1
	STAGE_T0=$(date +%s)
}
end() {
	echo "-- $STAGE_NAME: $(($(date +%s) - STAGE_T0))s"
}

begin gofmt
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi
end

begin "go vet"
go vet ./...
end

begin staticcheck
# Blocking when the pinned binary is available (CI installs it); local
# machines without it skip rather than fetch anything over the network.
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (CI runs the pinned version)"
fi
end

begin "go build"
go build ./...
end

if [ "$QUICK" = "1" ]; then
	begin "go test (quick: no -race)"
	go test ./...
	end
else
	begin "go test -race"
	# The campaign-differential tests in internal/core can exceed go
	# test's 10-minute default under -race on small (1–2 CPU) hosts.
	go test -race -timeout 30m ./...
	end
fi

begin faultlint
go run ./cmd/faultlint
end

if [ "$QUICK" = "1" ]; then
	echo "== coord smoke skipped (TIER1_QUICK=1) =="
else
	begin "coord smoke"
	# In-process cluster gate: an httptest coordinator, two workers
	# pulling leases over real HTTP, and the final CSV compared byte for
	# byte against the single-process campaign.
	go test -count=1 -run '^TestCoordinatorSmoke$' ./internal/coord
	end
fi

if [ "$QUICK" = "1" ]; then
	echo "== trace smoke skipped (TIER1_QUICK=1) =="
else
	begin "trace smoke"
	# Observer-effect gate for -trace-diff: a tiny fixed-seed campaign
	# must emit byte-identical CSV with and without the digest recorder,
	# and the golden-trace identity file must be reproducible.
	TRACE_TMP=$(mktemp -d)
	trap 'rm -rf "$TRACE_TMP"' EXIT
	go run ./cmd/faultcampaign -app wavetoy -n 4 -seed 7 -regions reg,message -csv -quiet \
		>"$TRACE_TMP/plain.csv"
	go run ./cmd/faultcampaign -app wavetoy -n 4 -seed 7 -regions reg,message -csv -quiet \
		-trace-diff -trace-out "$TRACE_TMP/trace-a.json" >"$TRACE_TMP/traced.csv"
	diff -u "$TRACE_TMP/plain.csv" "$TRACE_TMP/traced.csv"
	go run ./cmd/faultcampaign -app wavetoy -n 4 -seed 7 -regions reg,message -csv -quiet \
		-trace-diff -trace-out "$TRACE_TMP/trace-b.json" >/dev/null
	diff -u "$TRACE_TMP/trace-a.json" "$TRACE_TMP/trace-b.json"
	# The flag conflict must be a hard error, not a warning.
	if go run ./cmd/faultcampaign -app wavetoy -n 1 -trace-diff -checkpoint-interval 12500 -quiet >/dev/null 2>&1; then
		echo "trace smoke: -trace-diff with -checkpoint-interval was accepted" >&2
		exit 1
	fi
	end
fi

if [ "$QUICK" = "1" ]; then
	echo "== adaptive smoke skipped (TIER1_QUICK=1) =="
else
	begin "adaptive smoke"
	# Determinism gate for -adaptive: a small sequential-stopping campaign
	# (loose d so the caps stay tiny) must emit byte-identical CSV across
	# reruns, and the flag conflicts must be hard errors.
	ADAPT_TMP=$(mktemp -d)
	trap 'rm -rf "$TRACE_TMP" "$ADAPT_TMP"' EXIT
	go run ./cmd/faultcampaign -app wavetoy -adaptive -d 0.12 -seed 7 -regions reg,heap -csv -quiet \
		>"$ADAPT_TMP/a.csv" 2>/dev/null
	go run ./cmd/faultcampaign -app wavetoy -adaptive -d 0.12 -seed 7 -regions reg,heap -csv -quiet \
		>"$ADAPT_TMP/b.csv" 2>/dev/null
	diff -u "$ADAPT_TMP/a.csv" "$ADAPT_TMP/b.csv"
	# -adaptive owns the sample size and is single-process: -n and -shard
	# must be rejected, as must the adaptive knobs without -adaptive.
	if go run ./cmd/faultcampaign -app wavetoy -adaptive -n 5 -quiet >/dev/null 2>&1; then
		echo "adaptive smoke: -adaptive with -n was accepted" >&2
		exit 1
	fi
	if go run ./cmd/faultcampaign -app wavetoy -adaptive -shard 0/2 -quiet >/dev/null 2>&1; then
		echo "adaptive smoke: -adaptive with -shard was accepted" >&2
		exit 1
	fi
	if go run ./cmd/faultcampaign -app wavetoy -d 0.1 -n 5 -quiet >/dev/null 2>&1; then
		echo "adaptive smoke: -d without -adaptive was accepted" >&2
		exit 1
	fi
	end
fi

if [ "$QUICK" = "1" ]; then
	echo "== benchmark smoke skipped (TIER1_QUICK=1) =="
else
	begin "benchmark smoke"
	# One iteration of every benchmark: catches benchmarks that no longer
	# compile or crash, without measuring anything.
	go test -run '^$' -bench . -benchtime 1x ./...
	end
fi

echo "tier1: OK ($(($(date +%s) - SCRIPT_T0))s total)"
