// Package telemetry is the campaign observability layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus-text and JSON exposition.
//
// The paper reasons about *how* faults propagate — crash latencies
// (§5.2), working sets (§6.1.2), progress metrics (§7) — so a campaign
// that only emits final CSV rows cannot explain a surprising rate
// without being re-run under ad-hoc printf.  This package gives the
// subsystems a place to record what happened as it happens, while
// keeping the fault-injection semantics untouched: every hook is
// nil/disabled by default, and a nil *Registry is fully usable (its
// methods return live but unregistered metrics), so instrumentation
// sites need no conditionals and a campaign without telemetry runs the
// exact same code path as before.
//
// All metric operations are lock-free atomics; the registry lock is
// taken only on metric creation and snapshotting.  Everything is safe
// for concurrent use.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (e.g. peak queue depth) updated from many goroutines.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets.  Bounds are
// inclusive upper limits in ascending order; observations above the last
// bound land in an implicit +Inf bucket.  The zero bucket layout is
// fixed at creation, so Observe is a binary search plus three atomic
// adds — cheap enough for per-experiment recording.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64
	n      atomic.Uint64
}

// NewHistogram builds an unregistered histogram with the given bounds
// (ascending inclusive upper limits).  Most callers want
// Registry.Histogram instead; this constructor exists for single-shot
// aggregation such as faultmerge's latency summary.
func NewHistogram(bounds []uint64) *Histogram {
	h := &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[idx].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot returns a consistent-enough copy for rendering.  (Individual
// bucket loads are atomic; a snapshot taken mid-Observe may be off by
// the observation in flight, which is fine for monitoring.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the rendered form of a histogram.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"` // inclusive upper limits; implicit +Inf after the last
	Counts []uint64 `json:"counts"` // per-bucket (not cumulative), len(Bounds)+1
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Snapshot is a point-in-time copy of a whole registry, the unit both
// exposition formats and the status line render from.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry holds named metrics.  The nil *Registry is valid: lookups
// return live, unregistered metrics, so disabled telemetry needs no
// branches at instrumentation sites.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use.  Later calls return the existing
// histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every registered metric.  Safe on a nil registry
// (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
