package apps

import (
	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Halo-exchange message tags: blocks travelling toward lower ranks carry
// tagLeftward; blocks travelling toward higher ranks carry tagRightward.
const (
	wtTagLeftward  = 1
	wtTagRightward = 2
)

// BuildWavetoy links the Cactus Wavetoy analogue: a 1-D second-order wave
// equation on a domain strip-decomposed across ranks.
//
// Fidelity to the paper's Wavetoy characterization (§4.2.1, §6.2):
//
//   - each step exchanges *wide* halo blocks of float64 with both
//     neighbours, so large FP arrays dominate traffic (~94 % user data);
//   - the initial condition is a localized pulse, so most transferred
//     values are very close to zero — payload bit flips rarely matter;
//   - rank 0 gathers the final field and writes it as fixed-precision
//     plain text, which masks low-order-digit corruption;
//   - there are no internal consistency checks of any kind.
func BuildWavetoy(cfg Config) (*image.Image, error) {
	n := cfg.Scale // points per rank
	h := n / 2     // halo block width (wide on purpose; the stencil needs 1)
	if h < 1 {
		h = 1
	}

	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("wavetoy", image.OwnerUser)

	m.DataString("s_done", "wavetoy: evolution complete\n")
	m.DataString("s_file", "wavetoy.out")
	m.DataF64("c_c2dt", 0.3)   // c^2 dt^2 / dx^2, stable for the 3-pt stencil
	m.DataF64("c_width", 12.0) // pulse width in grid points
	m.BSS("g_rank", 4)
	m.BSS("g_size", 4)
	m.BSS("g_uprev", 4) // heap pointers to (n+2) f64; ghost cells at the ends
	m.BSS("g_ucurr", 4)
	m.BSS("g_unext", 4)
	m.BSS("g_sbl", 4) // halo staging buffers, h f64 each
	m.BSS("g_sbr", 4)
	m.BSS("g_rbl", 4)
	m.BSS("g_rbr", 4)
	m.BSS("g_gath", 4)
	m.BSS("g_step", 4)
	m.BSS("g_iobuf", 4)
	m.BSS("g_cfgsum", 8)

	// Cold regions: never-executed utility code, a never-read BSS
	// buffer, and a startup-only coefficient table (see addColdCode for
	// the fidelity rationale — Cactus text working set is 30 % at t=0
	// and 10 % in the compute phase).
	addColdCode(m, "wt", 45, 8)
	addColdData(m, "wt", 16<<10)
	coeffs := make([]float64, 256)
	for i := range coeffs {
		coeffs[i] = 1.0 / float64(i+2)
	}
	m.DataF64("d_coeffs", coeffs...)

	buildWavetoyInit(m, n)
	buildWavetoyExchange(m, n, h)
	buildWavetoyCompute(m, n, cfg.SpillRegisters)

	f := m.Func("main")
	f.Prologue(64)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	f.StSym("g_rank", 0, isa.R0)
	f.CallArgs("MPI_Comm_size", asm.Imm(abi.CommWorld))
	f.StSym("g_size", 0, isa.R0)

	// The grid functions live on the heap, as Wavetoy's do.
	alloc := func(sym string, bytes int32) {
		f.CallArgs("malloc", asm.Imm(bytes))
		f.StSym(sym, 0, isa.R0)
	}
	alloc("g_uprev", (n+2)*8)
	alloc("g_ucurr", (n+2)*8)
	alloc("g_unext", (n+2)*8)
	alloc("g_sbl", h*8)
	alloc("g_sbr", h*8)
	alloc("g_rbl", h*8)
	alloc("g_rbr", h*8)
	// A startup-allocated I/O staging buffer, touched sparsely once and
	// never revisited — the paper's "only a fraction of the heap used".
	emitColdHeapAlloc(f, "g_iobuf", 24<<10, 64)

	// Rank 0 owns the gather target for the final field.
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipGathAlloc := f.NewLabel()
	f.Bne(skipGathAlloc)
	f.LdSym(isa.R1, "g_size", 0)
	f.Muli(isa.R1, isa.R1, n*8)
	f.CallArgs("malloc", asm.Reg(isa.R1))
	f.StSym("g_gath", 0, isa.R0)
	f.Label(skipGathAlloc)

	f.CallArgs("wavetoy_init")

	// Time-step loop.
	f.Movi(isa.R4, 0)
	f.StSym("g_step", 0, isa.R4)
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.LdSym(isa.R4, "g_step", 0)
	f.Cmpi(isa.R4, cfg.Steps)
	f.Bge(done)
	f.CallArgs("wavetoy_exchange")
	f.CallArgs("wavetoy_compute")
	// Rotate buffers: prev <- curr <- next <- prev.
	f.LdSym(isa.R1, "g_uprev", 0)
	f.LdSym(isa.R2, "g_ucurr", 0)
	f.LdSym(isa.R3, "g_unext", 0)
	f.StSym("g_uprev", 0, isa.R2)
	f.StSym("g_ucurr", 0, isa.R3)
	f.StSym("g_unext", 0, isa.R1)
	f.LdSym(isa.R4, "g_step", 0)
	f.Addi(isa.R4, isa.R4, 1)
	f.StSym("g_step", 0, isa.R4)
	f.Jmp(loop)
	f.Label(done)

	// Gather the interior (n points per rank, skipping the ghost cell)
	// to rank 0 — one large FP message per rank.
	f.LdSym(isa.R1, "g_ucurr", 0)
	f.Addi(isa.R1, isa.R1, 8)
	f.LdSym(isa.R2, "g_gath", 0)
	f.CallArgs("MPI_Gather", asm.Reg(isa.R1), asm.Imm(n), asm.Imm(abi.DTF64),
		asm.Reg(isa.R2), asm.Imm(0), asm.Imm(abi.CommWorld))

	// Rank 0 writes the result file and a console line.
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	skipOut := f.NewLabel()
	f.Bne(skipOut)
	f.CallArgs("open", asm.Sym("s_file"), asm.Imm(11))
	f.Push(isa.R0) // fd
	f.LdSym(isa.R1, "g_gath", 0)
	f.LdSym(isa.R2, "g_size", 0)
	f.Muli(isa.R2, isa.R2, n)
	f.Pop(isa.R4)
	if cfg.BinaryOutput {
		f.Shli(isa.R2, isa.R2, 3) // element count -> bytes
		f.CallArgs("write_bin", asm.Reg(isa.R4), asm.Reg(isa.R1), asm.Reg(isa.R2))
	} else {
		f.CallArgs("print_f64arr", asm.Reg(isa.R4), asm.Reg(isa.R1),
			asm.Reg(isa.R2), asm.Imm(cfg.OutPrecision))
	}
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("s_done"), asm.Imm(28))
	f.Label(skipOut)

	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()

	return b.Link(asm.LinkConfig{HeapSize: cfg.HeapSize, StackSize: cfg.StackSize})
}

// buildWavetoyInit emits wavetoy_init: a localized rational pulse
// u(x) = 1/(1+((x-x0)/w)^2)^2 centred in the global domain.  Points far
// from the pulse are ~0, reproducing the near-zero payloads of §6.2.
func buildWavetoyInit(m *asm.Module, n int32) {
	f := m.Func("wavetoy_init")
	f.Prologue(64)

	// Startup configuration pass: read the coefficient table once (these
	// loads exist only in the initialization phase, producing the
	// working-set drop at the phase shift in Table 5).
	f.Fldz()
	f.Movi(isa.R4, 0)
	cfgLoop, cfgDone := f.NewLabel(), f.NewLabel()
	f.Label(cfgLoop)
	f.Cmpi(isa.R4, 256*8)
	f.Bge(cfgDone)
	f.MoviSym(isa.R5, "d_coeffs", 0)
	f.Fldx(isa.R5, isa.R4, 0)
	f.Faddp()
	f.Addi(isa.R4, isa.R4, 8)
	f.Jmp(cfgLoop)
	f.Label(cfgDone)
	f.FstpSym("g_cfgsum", 0)

	f.LdSym(isa.R1, "g_uprev", 0)
	f.LdSym(isa.R2, "g_ucurr", 0)
	f.LdSym(isa.R3, "g_rank", 0)
	f.Muli(isa.R3, isa.R3, n) // global index of interior point 0
	f.Movi(isa.R4, 0)         // i over 0..n+1 (ghosts included)
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	f.Cmpi(isa.R4, n+2)
	f.Bge(done)
	// x = rank*n + i - 1; r = (x - x0)/w with x0 = size*n/2.
	f.Add(isa.R0, isa.R3, isa.R4)
	f.Addi(isa.R0, isa.R0, -1)
	f.Fild(isa.R0) // [x]
	f.LdSym(isa.R0, "g_size", 0)
	f.Muli(isa.R0, isa.R0, n)
	f.Sari(isa.R0, isa.R0, 1)
	f.Fild(isa.R0) // [x0, x]
	f.Fsubp()      // [x-x0]
	f.FldSym("c_width", 0)
	f.Fdivp()  // [r]
	f.Fldst(0) // [r, r]
	f.Fmulp()  // [r^2]
	f.Fld1()
	f.Faddp()  // [1+r^2]
	f.Fldst(0) // [q, q]
	f.Fmulp()  // [q^2]
	f.Fld1()   // [1, q^2]
	f.Fxch(1)  // [q^2, 1]
	f.Fdivp()  // [1/q^2]
	f.Movr(isa.R5, isa.R4)
	f.Shli(isa.R5, isa.R5, 3) // byte offset
	f.Fstpx(isa.R1, isa.R5, 0)
	f.Fldx(isa.R1, isa.R5, 0)
	f.Fstpx(isa.R2, isa.R5, 0)
	f.Addi(isa.R4, isa.R4, 1)
	f.Jmp(loop)
	f.Label(done)
	f.Epilogue()
}

// buildWavetoyExchange emits wavetoy_exchange: wide halo blocks (h f64)
// swapped with both neighbours, parity-ordered so the rendezvous protocol
// cannot deadlock.  Ghost cells come from the received blocks; physical
// boundaries are held at zero (Dirichlet).
func buildWavetoyExchange(m *asm.Module, n, h int32) {
	f := m.Func("wavetoy_exchange")
	f.Prologue(64)

	// Stage: sbl <- u[1..h], sbr <- u[n-h+1..n].
	f.LdSym(isa.R0, "g_sbl", 0)
	f.LdSym(isa.R1, "g_ucurr", 0)
	f.Addi(isa.R1, isa.R1, 8)
	f.CallArgs("memcpyw", asm.Reg(isa.R0), asm.Reg(isa.R1), asm.Imm(h*2))
	f.LdSym(isa.R0, "g_sbr", 0)
	f.LdSym(isa.R1, "g_ucurr", 0)
	f.Addi(isa.R1, isa.R1, 8*(n-h+1))
	f.CallArgs("memcpyw", asm.Reg(isa.R0), asm.Reg(isa.R1), asm.Imm(h*2))

	// Guarded halo operations; each reloads its registers because calls
	// clobber r0-r5.
	sendLeft := func() {
		skip := f.NewLabel()
		f.LdSym(isa.R0, "g_rank", 0)
		f.Cmpi(isa.R0, 0)
		f.Beq(skip)
		f.Addi(isa.R2, isa.R0, -1)
		f.LdSym(isa.R1, "g_sbl", 0)
		f.CallArgs("MPI_Send", asm.Reg(isa.R1), asm.Imm(h), asm.Imm(abi.DTF64),
			asm.Reg(isa.R2), asm.Imm(wtTagLeftward), asm.Imm(abi.CommWorld))
		f.Label(skip)
	}
	sendRight := func() {
		skip := f.NewLabel()
		f.LdSym(isa.R0, "g_rank", 0)
		f.LdSym(isa.R3, "g_size", 0)
		f.Addi(isa.R3, isa.R3, -1)
		f.Cmp(isa.R0, isa.R3)
		f.Beq(skip)
		f.Addi(isa.R2, isa.R0, 1)
		f.LdSym(isa.R1, "g_sbr", 0)
		f.CallArgs("MPI_Send", asm.Reg(isa.R1), asm.Imm(h), asm.Imm(abi.DTF64),
			asm.Reg(isa.R2), asm.Imm(wtTagRightward), asm.Imm(abi.CommWorld))
		f.Label(skip)
	}
	recvLeft := func() { // from the left neighbour: its rightward block
		skip := f.NewLabel()
		f.LdSym(isa.R0, "g_rank", 0)
		f.Cmpi(isa.R0, 0)
		f.Beq(skip)
		f.Addi(isa.R2, isa.R0, -1)
		f.LdSym(isa.R1, "g_rbl", 0)
		f.CallArgs("MPI_Recv", asm.Reg(isa.R1), asm.Imm(h), asm.Imm(abi.DTF64),
			asm.Reg(isa.R2), asm.Imm(wtTagRightward), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.Label(skip)
	}
	recvRight := func() { // from the right neighbour: its leftward block
		skip := f.NewLabel()
		f.LdSym(isa.R0, "g_rank", 0)
		f.LdSym(isa.R3, "g_size", 0)
		f.Addi(isa.R3, isa.R3, -1)
		f.Cmp(isa.R0, isa.R3)
		f.Beq(skip)
		f.Addi(isa.R2, isa.R0, 1)
		f.LdSym(isa.R1, "g_rbr", 0)
		f.CallArgs("MPI_Recv", asm.Reg(isa.R1), asm.Imm(h), asm.Imm(abi.DTF64),
			asm.Reg(isa.R2), asm.Imm(wtTagLeftward), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.Label(skip)
	}

	odd, join := f.NewLabel(), f.NewLabel()
	f.LdSym(isa.R4, "g_rank", 0)
	f.Andi(isa.R4, isa.R4, 1)
	f.Cmpi(isa.R4, 0)
	f.Bne(odd)
	sendLeft()
	sendRight()
	recvLeft()
	recvRight()
	f.Jmp(join)
	f.Label(odd)
	recvRight()
	recvLeft()
	sendRight()
	sendLeft()
	f.Label(join)

	// Ghost cells: u[0] = rbl[h-1] (left neighbour's u[n]) or 0 at the
	// physical boundary; u[n+1] = rbr[0] (right neighbour's u[1]) or 0.
	zeroL, afterL := f.NewLabel(), f.NewLabel()
	f.LdSym(isa.R1, "g_ucurr", 0)
	f.LdSym(isa.R0, "g_rank", 0)
	f.Cmpi(isa.R0, 0)
	f.Beq(zeroL)
	f.LdSym(isa.R2, "g_rbl", 0)
	f.Fld(isa.R2, 8*(h-1))
	f.Fstp(isa.R1, 0)
	f.Jmp(afterL)
	f.Label(zeroL)
	f.Fldz()
	f.Fstp(isa.R1, 0)
	f.Label(afterL)

	zeroR, afterR := f.NewLabel(), f.NewLabel()
	f.LdSym(isa.R0, "g_rank", 0)
	f.LdSym(isa.R3, "g_size", 0)
	f.Addi(isa.R3, isa.R3, -1)
	f.Cmp(isa.R0, isa.R3)
	f.Beq(zeroR)
	f.LdSym(isa.R2, "g_rbr", 0)
	f.Fld(isa.R2, 0)
	f.Fstp(isa.R1, 8*(n+1))
	f.Jmp(afterR)
	f.Label(zeroR)
	f.Fldz()
	f.Fstp(isa.R1, 8*(n+1))
	f.Label(afterR)

	f.Epilogue()
}

// buildWavetoyCompute emits wavetoy_compute: the leapfrog update
// u_next = 2u - u_prev + c2dt * (u[i-1] - 2u[i] + u[i+1]) over the
// interior.  The expression evaluation keeps at most four live FP stack
// slots — the paper's observation about compiler-generated x87 code.
//
// With spill set, the kernel is emitted the way an unoptimizing compiler
// would generate it: the array pointers and loop counter live in memory
// and are reloaded at the top of every iteration, so the register file
// carries live state only briefly — §6.1.1's "compiled without register
// optimizations" robustness ablation.
func buildWavetoyCompute(m *asm.Module, n int32, spill bool) {
	if spill {
		m.BSS("g_ci", 4) // spilled loop counter
	}
	f := m.Func("wavetoy_compute")
	f.Prologue(64)
	f.LdSym(isa.R1, "g_ucurr", 0)
	f.LdSym(isa.R2, "g_uprev", 0)
	f.LdSym(isa.R3, "g_unext", 0)
	f.Movi(isa.R4, 8) // byte offset of u[1]
	if spill {
		f.StSym("g_ci", 0, isa.R4)
	}
	loop, done := f.NewLabel(), f.NewLabel()
	f.Label(loop)
	if spill {
		f.LdSym(isa.R1, "g_ucurr", 0)
		f.LdSym(isa.R2, "g_uprev", 0)
		f.LdSym(isa.R3, "g_unext", 0)
		f.LdSym(isa.R4, "g_ci", 0)
	}
	f.Cmpi(isa.R4, 8*(n+1))
	f.Bge(done)
	f.Fldx(isa.R1, isa.R4, 0) // [u]
	f.FldConst(2.0)
	f.Fmulp()                  // [2u]
	f.Fldx(isa.R2, isa.R4, 0)  // [uprev, 2u]
	f.Fsubp()                  // [2u-uprev]
	f.Fldx(isa.R1, isa.R4, -8) // [um, X]
	f.Fldx(isa.R1, isa.R4, 8)  // [up, um, X]
	f.Faddp()                  // [um+up, X]
	f.Fldx(isa.R1, isa.R4, 0)  // [u, s, X]
	f.FldConst(2.0)
	f.Fmulp() // [2u, s, X]
	f.Fsubp() // [lap, X]
	f.FldSym("c_c2dt", 0)
	f.Fmulp() // [c*lap, X]
	f.Faddp() // [X + c*lap]
	f.Fstpx(isa.R3, isa.R4, 0)
	f.Addi(isa.R4, isa.R4, 8)
	if spill {
		f.StSym("g_ci", 0, isa.R4)
	}
	f.Jmp(loop)
	f.Label(done)
	f.Epilogue()
}
