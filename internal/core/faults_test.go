package core

import (
	"math"
	"strings"
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/rng"
	"mpifault/internal/vm"
)

// faultTestImage builds a small program with user and MPI symbols so the
// dictionary and fault appliers have realistic targets.
func faultTestImage(t testing.TB) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.DataI32("udata", 1, 2, 3, 4)
	m.BSS("ubss", 64)
	f := m.Func("main")
	f.Prologue(8)
	f.Movi(isa.R1, 5)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{HeapSize: 1 << 20, StackSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestDictionaryExcludesMPISymbols(t *testing.T) {
	im := faultTestImage(t)
	d := NewDictionary(im)
	check := func(syms []image.Symbol, kind string) {
		if len(syms) == 0 {
			t.Fatalf("dictionary has no %s symbols", kind)
		}
		for _, s := range syms {
			if s.Owner != image.OwnerUser {
				t.Errorf("%s symbol %q is MPI-owned", kind, s.Name)
			}
			if strings.HasPrefix(s.Name, "MPI_") || strings.HasPrefix(s.Name, "__mpi") {
				t.Errorf("%s symbol %q looks like a library symbol", kind, s.Name)
			}
		}
	}
	check(d.Text, "text")
	check(d.Data, "data")
	check(d.BSS, "bss")
	// libc is user-owned (statically linked), so memcpy must be a target.
	found := false
	for _, s := range d.Text {
		if s.Name == "memcpy" {
			found = true
		}
	}
	if !found {
		t.Error("libc functions should be injectable user text")
	}
}

func TestDictionaryRandomAddressesInRange(t *testing.T) {
	im := faultTestImage(t)
	d := NewDictionary(im)
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		addr, ok := d.RandText(r)
		if !ok {
			t.Fatal("no text target")
		}
		s, found := im.FindSymbol(addr)
		if !found || s.Kind != image.SymFunc || s.Owner != image.OwnerUser {
			t.Fatalf("text target %#x resolves to %+v", addr, s)
		}
		addr, ok = d.RandData(r)
		if !ok {
			t.Fatal("no data target")
		}
		if s, _ := im.FindSymbol(addr); s.Owner != image.OwnerUser {
			t.Fatalf("data target %#x in %+v", addr, s)
		}
	}
}

func TestApplyRegisterFaultFlipsOneBit(t *testing.T) {
	im := faultTestImage(t)
	for seed := uint64(0); seed < 200; seed++ {
		m := vm.New(im)
		before := snapshot(m)
		desc := ApplyRegisterFault(m, rng.New(seed))
		after := snapshot(m)
		if desc == "" {
			t.Fatal("no description")
		}
		diff := 0
		for i := range before {
			diff += popcount32(before[i] ^ after[i])
		}
		if diff != 1 {
			t.Fatalf("seed %d: flipped %d bits (%s)", seed, diff, desc)
		}
	}
}

func snapshot(m *vm.Machine) []uint32 {
	out := make([]uint32, 0, 10)
	out = append(out, m.Regs[:]...)
	out = append(out, m.PC, m.Flags)
	return out
}

func popcount32(v uint32) int {
	n := 0
	for v != 0 {
		n++
		v &= v - 1
	}
	return n
}

func TestApplyFPRegisterFaultFlipsOneBit(t *testing.T) {
	im := faultTestImage(t)
	for seed := uint64(0); seed < 200; seed++ {
		m := vm.New(im)
		m.FP.Regs[3] = 1.5
		before := fpSnapshot(m)
		desc := ApplyFPRegisterFault(m, rng.New(seed))
		after := fpSnapshot(m)
		diff := 0
		for i := range before {
			diff += popcount64(before[i] ^ after[i])
		}
		if diff != 1 {
			t.Fatalf("seed %d: flipped %d bits (%s)", seed, diff, desc)
		}
	}
}

func fpSnapshot(m *vm.Machine) []uint64 {
	e := &m.FP
	out := make([]uint64, 0, 16)
	for _, v := range e.Regs {
		out = append(out, math.Float64bits(v))
	}
	out = append(out, uint64(e.CWD), uint64(e.SWD), uint64(e.TWD),
		uint64(e.FIP), uint64(e.FCS), uint64(e.FOO), uint64(e.FOS))
	return out
}

func popcount64(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v &= v - 1
	}
	return n
}

func TestApplyStaticFaultHitsOnlyUserMemory(t *testing.T) {
	im := faultTestImage(t)
	d := NewDictionary(im)
	for seed := uint64(0); seed < 100; seed++ {
		for _, region := range []Region{RegionText, RegionData, RegionBSS} {
			m := vm.New(im)
			desc := ApplyStaticFault(m, d, region, rng.New(seed+uint64(region)*1000))
			if desc == "no target" {
				t.Fatalf("region %s: no target", region)
			}
		}
	}
	// Text faults must never touch MPI stubs: compare the MPI text bytes
	// before and after many injections.
	m := vm.New(im)
	s, _ := im.Lookup("MPI_Send")
	before, _ := m.RawRead(s.Addr, int(s.Size))
	r := rng.New(7)
	for i := 0; i < 300; i++ {
		ApplyStaticFault(m, d, RegionText, r)
	}
	after, _ := m.RawRead(s.Addr, int(s.Size))
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("an MPI stub byte was corrupted by a user-text fault")
		}
	}
}

func TestApplyHeapFaultTargetsUserChunks(t *testing.T) {
	im := faultTestImage(t)
	m := vm.New(im)
	mpiChunk := m.Heap.Alloc(256, abi.ChunkMPI)
	userChunk := m.Heap.Alloc(256, abi.ChunkUser)
	mpiBytes, _ := m.RawRead(mpiChunk, 256)
	r := rng.New(3)
	flips := 0
	for i := 0; i < 200; i++ {
		if desc := ApplyHeapFault(m, r); desc != "no target" {
			flips++
		}
	}
	if flips != 200 {
		t.Fatalf("only %d/200 heap faults found a target", flips)
	}
	after, _ := m.RawRead(mpiChunk, 256)
	for i := range mpiBytes {
		if mpiBytes[i] != after[i] {
			t.Fatal("heap fault corrupted an MPI-tagged chunk")
		}
	}
	userAfter, _ := m.RawRead(userChunk, 256)
	changed := false
	var zero [256]byte
	for i := range userAfter {
		if userAfter[i] != zero[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("no user chunk byte was ever flipped")
	}
}

func TestApplyHeapFaultNoChunks(t *testing.T) {
	im := faultTestImage(t)
	m := vm.New(im)
	if desc := ApplyHeapFault(m, rng.New(1)); desc != "no target" {
		t.Fatalf("empty heap produced %q", desc)
	}
}

func TestApplyStackFaultTargetsUserFrames(t *testing.T) {
	im := faultTestImage(t)
	m := vm.New(im)
	m.Handler = stubHandler{}
	// Step into main's body so a frame exists.
	for i := 0; i < 6; i++ {
		if tr := m.Step(); tr != nil {
			t.Fatalf("setup trap: %v", tr)
		}
	}
	desc := ApplyStackFault(m, rng.New(5))
	if desc == "no target" {
		t.Fatal("no user frame found; the walk is broken")
	}
	if !strings.HasPrefix(desc, "stack 0x") {
		t.Fatalf("desc = %q", desc)
	}
}

type stubHandler struct{}

func (stubHandler) Syscall(m *vm.Machine, num int32) *vm.Trap {
	return &vm.Trap{Kind: vm.TrapExit, PC: m.PC}
}

func TestMessageInjectorTriggersOnce(t *testing.T) {
	mi := &MessageInjector{TriggerByte: 110, Bit: 3}
	a := make([]byte, 60)
	b := make([]byte, 60)
	c := make([]byte, 60)
	mi.Hook(a) // bytes 0-59
	mi.Hook(b) // bytes 60-119: trigger at 110 -> b[50]
	mi.Hook(c) // bytes 120-179
	injected, desc := mi.Report()
	if !injected {
		t.Fatal("never injected")
	}
	for i, v := range a {
		if v != 0 {
			t.Fatalf("a[%d] modified", i)
		}
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("c[%d] modified", i)
		}
	}
	for i, v := range b {
		want := byte(0)
		if i == 50 {
			want = 1 << 3
		}
		if v != want {
			t.Fatalf("b[%d] = %#x", i, v)
		}
	}
	if !strings.Contains(desc, "payload") {
		t.Fatalf("offset 50 is past the 48-byte header: desc %q", desc)
	}
}

func TestMessageInjectorHeaderClassification(t *testing.T) {
	mi := &MessageInjector{TriggerByte: 10, Bit: 0}
	mi.Hook(make([]byte, 60))
	if _, desc := mi.Report(); !strings.Contains(desc, "header") {
		t.Fatalf("byte 10 is in the header: desc %q", desc)
	}
}

func TestRegionNames(t *testing.T) {
	// Table row labels must match the paper.
	want := []string{"Regular Reg.", "FP Reg.", "BSS", "Data", "Stack", "Text", "Heap", "Message"}
	for i, r := range Regions() {
		if r.String() != want[i] {
			t.Errorf("region %d = %q, want %q", i, r.String(), want[i])
		}
	}
	for _, s := range []string{"reg", "fp", "bss", "data", "stack", "text", "heap", "message"} {
		if _, err := ParseRegion(s); err != nil {
			t.Errorf("ParseRegion(%q): %v", s, err)
		}
	}
	if _, err := ParseRegion("bogus"); err == nil {
		t.Error("bogus region accepted")
	}
}
