package core

import (
	"reflect"
	"testing"

	"mpifault/internal/mpi"
)

func TestCloseCutRaisesSenders(t *testing.T) {
	// Rank 1 consumed at instruction 10 a message rank 0 sent at 80: any
	// cut containing the receive must also contain the send.
	events := []mpi.Event{{Src: 0, Dst: 1, SrcInstr: 80, DstInstr: 10}}
	cut := []uint64{30, 30}
	closeCut(cut, events)
	if !reflect.DeepEqual(cut, []uint64{80, 30}) {
		t.Errorf("cut = %v, want [80 30]", cut)
	}

	// Transitive: pulling rank 0 up to 80 captures a receive on rank 0 at
	// 70 whose send on rank 2 happened at 95 — closure must chase it.
	events = append(events, mpi.Event{Src: 2, Dst: 0, SrcInstr: 95, DstInstr: 70})
	cut = []uint64{30, 30, 40}
	closeCut(cut, events)
	if !reflect.DeepEqual(cut, []uint64{80, 30, 95}) {
		t.Errorf("transitive cut = %v, want [80 30 95]", cut)
	}

	// A send already inside the cut changes nothing.
	cut = []uint64{90, 30, 100}
	closeCut(cut, events)
	if !reflect.DeepEqual(cut, []uint64{90, 30, 100}) {
		t.Errorf("closed cut mutated: %v", cut)
	}
}

func TestComputeCutsSpacingAndTermination(t *testing.T) {
	instrs := []uint64{100, 50}
	cuts := computeCuts(instrs, nil, 30, 0)
	want := [][]uint64{{30, 30}, {60, 60}, {90, 90}}
	if !reflect.DeepEqual(cuts, want) {
		t.Errorf("cuts = %v, want %v", cuts, want)
	}

	// maxCkpts caps the count.
	if got := computeCuts(instrs, nil, 30, 2); len(got) != 2 {
		t.Errorf("capped cuts = %v", got)
	}

	// Interval past the longest rank yields no cuts (nothing to skip).
	if got := computeCuts(instrs, nil, 1000, 0); got != nil {
		t.Errorf("expected no cuts, got %v", got)
	}
	if got := computeCuts(nil, nil, 10, 0); got != nil {
		t.Errorf("no ranks: %v", got)
	}
	if got := computeCuts(instrs, nil, 0, 0); got != nil {
		t.Errorf("interval 0: %v", got)
	}
}

func TestComputeCutsAdaptiveSpread(t *testing.T) {
	// With a cap, a tiny interval is widened so the checkpoints cover the
	// whole run instead of bunching at its start.
	cuts := computeCuts([]uint64{1000}, nil, 1, 3)
	want := [][]uint64{{250}, {500}, {750}}
	if !reflect.DeepEqual(cuts, want) {
		t.Errorf("cuts = %v, want %v", cuts, want)
	}
}

func TestComputeCutsMonotoneUnderClosure(t *testing.T) {
	// The closure at cut 1 drags rank 0 up to 80; later cuts must never
	// move any rank backwards.
	events := []mpi.Event{{Src: 0, Dst: 1, SrcInstr: 80, DstInstr: 10}}
	cuts := computeCuts([]uint64{200, 200}, events, 30, 0)
	if len(cuts) == 0 {
		t.Fatal("no cuts")
	}
	prev := make([]uint64, 2)
	for _, cut := range cuts {
		for r := range cut {
			if cut[r] < prev[r] {
				t.Fatalf("rank %d moved backwards: %v", r, cuts)
			}
		}
		// Every cut must itself be consistent.
		chk := append([]uint64(nil), cut...)
		closeCut(chk, events)
		if !reflect.DeepEqual(chk, cut) {
			t.Fatalf("cut %v not closed (closure gives %v)", cut, chk)
		}
		prev = cut
	}
	if cuts[0][0] != 80 {
		t.Errorf("first cut = %v, want sender pulled to 80", cuts[0])
	}
}
