package vm

import (
	"math"
	"testing"
	"testing/quick"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// testHandler terminates on SysExit and records other syscalls.
type testHandler struct {
	calls []int32
}

func (h *testHandler) Syscall(m *Machine, num int32) *Trap {
	h.calls = append(h.calls, num)
	if num == abi.SysExit {
		return &Trap{Kind: TrapExit, PC: m.PC, Code: int32(m.Regs[0])}
	}
	return nil
}

// assemble builds a single-function image from the emit callback.
func assemble(t testing.TB, emit func(m *asm.Module, f *asm.Func)) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	m := b.Module("t", image.OwnerUser)
	f := m.Func("main")
	emit(m, f)
	f.Movi(isa.R0, 0)
	f.Sys(abi.SysExit)
	im, err := b.Link(asm.LinkConfig{HeapSize: 1 << 20, StackSize: 64 << 10})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

// run executes the image and returns the machine and final trap.
func run(t testing.TB, im *image.Image) (*Machine, *Trap) {
	t.Helper()
	m := New(im)
	m.Handler = &testHandler{}
	res := m.Run(1_000_000)
	if res.Reason != StopTrap {
		t.Fatalf("run did not stop on a trap: %+v", res)
	}
	return m, res.Trap
}

func TestALUSemanticsMatchGo(t *testing.T) {
	type binop struct {
		op isa.Op
		fn func(a, b int32) int32
	}
	ops := []binop{
		{isa.OpAdd, func(a, b int32) int32 { return a + b }},
		{isa.OpSub, func(a, b int32) int32 { return a - b }},
		{isa.OpMul, func(a, b int32) int32 { return a * b }},
		{isa.OpAnd, func(a, b int32) int32 { return a & b }},
		{isa.OpOr, func(a, b int32) int32 { return a | b }},
		{isa.OpXor, func(a, b int32) int32 { return a ^ b }},
		{isa.OpShl, func(a, b int32) int32 { return a << (uint32(b) & 31) }},
		{isa.OpShr, func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) }},
		{isa.OpSar, func(a, b int32) int32 { return a >> (uint32(b) & 31) }},
	}
	m := New(assemble(t, func(_ *asm.Module, f *asm.Func) {}))
	f := func(a, b int32, sel uint8) bool {
		o := ops[int(sel)%len(ops)]
		got, trap := m.alu(o.op, uint32(a), uint32(b))
		return trap == nil && int32(got) == o.fn(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDivisionSemantics(t *testing.T) {
	m := New(assemble(t, func(_ *asm.Module, f *asm.Func) {}))
	if v, trap := m.alu(isa.OpDivs, uint32(0xFFFFFFF9), 2); trap != nil || int32(v) != -3 {
		t.Fatalf("-7/2 = %d, %v", int32(v), trap)
	}
	if v, trap := m.alu(isa.OpRems, uint32(0xFFFFFFF9), 2); trap != nil || int32(v) != -1 {
		t.Fatalf("-7%%2 = %d, %v", int32(v), trap)
	}
	if _, trap := m.alu(isa.OpDivs, 5, 0); trap == nil || trap.Kind != TrapFpe {
		t.Fatal("divide by zero must raise SIGFPE")
	}
	// x86 also traps on INT_MIN / -1.
	if _, trap := m.alu(isa.OpDivs, 0x80000000, 0xFFFFFFFF); trap == nil || trap.Kind != TrapFpe {
		t.Fatal("INT_MIN/-1 must raise SIGFPE")
	}
}

func TestBranchesAndFlags(t *testing.T) {
	// Compute min(a, b) via blt and check both orderings.
	build := func(a, b int32) *image.Image {
		return assemble(t, func(m *asm.Module, f *asm.Func) {
			m.BSS("out", 4)
			f.Movi(isa.R1, a)
			f.Movi(isa.R2, b)
			less := f.NewLabel()
			done := f.NewLabel()
			f.Cmp(isa.R1, isa.R2)
			f.Blt(less)
			f.StSym("out", 0, isa.R2)
			f.Jmp(done)
			f.Label(less)
			f.StSym("out", 0, isa.R1)
			f.Label(done)
		})
	}
	check := func(a, b, want int32) {
		im := build(a, b)
		m, trap := run(t, im)
		if trap.Kind != TrapExit {
			t.Fatalf("trap = %v", trap)
		}
		sym, _ := im.Lookup("out")
		v, _ := m.Load32(sym.Addr)
		if int32(v) != want {
			t.Fatalf("min(%d,%d) = %d", a, b, int32(v))
		}
	}
	check(3, 9, 3)
	check(9, 3, 3)
	check(-5, 2, -5) // signed comparison
	check(2, 2, 2)
}

func TestUnsignedBranches(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("out", 4)
		f.Movi(isa.R1, -1) // 0xFFFFFFFF: unsigned max
		f.Movi(isa.R2, 1)
		big := f.NewLabel()
		done := f.NewLabel()
		f.Cmp(isa.R1, isa.R2)
		f.Bgeu(big) // unsigned: 0xFFFFFFFF >= 1
		f.Movi(isa.R3, 0)
		f.Jmp(done)
		f.Label(big)
		f.Movi(isa.R3, 1)
		f.Label(done)
		f.StSym("out", 0, isa.R3)
	})
	m, _ := run(t, im)
	sym, _ := im.Lookup("out")
	if v, _ := m.Load32(sym.Addr); v != 1 {
		t.Fatal("unsigned comparison took the signed path")
	}
}

func TestCallRetAndFrames(t *testing.T) {
	b := asm.NewBuilder()
	m := b.Module("t", image.OwnerUser)
	m.BSS("out", 4)
	callee := m.Func("addone")
	callee.Prologue(0)
	callee.LdArg(isa.R0, 0)
	callee.Addi(isa.R0, isa.R0, 1)
	callee.Epilogue()
	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("addone", asm.Imm(41))
	f.StSym("out", 0, isa.R0)
	f.Movi(isa.R0, 0)
	f.Sys(abi.SysExit)
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mach, trap := run(t, im)
	if trap.Kind != TrapExit {
		t.Fatalf("trap = %v", trap)
	}
	sym, _ := im.Lookup("out")
	if v, _ := mach.Load32(sym.Addr); v != 42 {
		t.Fatalf("addone(41) = %d", v)
	}
}

func TestMemoryTraps(t *testing.T) {
	cases := []struct {
		name string
		emit func(m *asm.Module, f *asm.Func)
		kind TrapKind
	}{
		{"load unmapped", func(m *asm.Module, f *asm.Func) {
			f.Movi(isa.R1, 0x10)
			f.Ld(isa.R2, isa.R1, 0)
		}, TrapSegv},
		{"store to text", func(m *asm.Module, f *asm.Func) {
			f.Movi(isa.R1, int32(image.TextBase))
			f.St(isa.R1, 0, isa.R2)
		}, TrapSegv},
		{"wild jump", func(m *asm.Module, f *asm.Func) {
			f.Movi(isa.R1, 0x100)
			f.Callr(isa.R1)
		}, TrapSegv},
		{"invalid register encoding", func(m *asm.Module, f *asm.Func) {
			// Hand-craft an instruction with register byte 9.
			f.Movr(8|1, 0) // Rd = 9: invalid
		}, TrapIll},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			im := assemble(t, c.emit)
			_, trap := run(t, im)
			if trap.Kind != c.kind {
				t.Fatalf("trap = %v, want %v", trap, c.kind)
			}
		})
	}
}

func TestJumpIntoDataRaisesIll(t *testing.T) {
	// Executing zero-initialized memory decodes opcode 0 -> SIGILL, like
	// jumping into a page of zeros on real hardware.
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("blob", 64)
		f.MoviSym(isa.R1, "blob", 0)
		f.Callr(isa.R1)
	})
	_, trap := run(t, im)
	if trap.Kind != TrapIll {
		t.Fatalf("trap = %v, want SIGILL", trap)
	}
}

func TestStackOverflowTraps(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		loop := f.NewLabel()
		f.Label(loop)
		f.Push(isa.R1)
		f.Jmp(loop)
	})
	_, trap := run(t, im)
	if trap.Kind != TrapSegv {
		t.Fatalf("trap = %v, want SIGSEGV from stack exhaustion", trap)
	}
}

func TestFPArithmetic(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("out", 8)
		m.DataF64("a", 3.5)
		m.DataF64("bv", 1.25)
		f.FldSym("a", 0)  // [3.5]
		f.FldSym("bv", 0) // [1.25, 3.5]
		f.Fsubp()         // [2.25]
		f.Fldst(0)
		f.Fmulp() // [5.0625]
		f.Fsqrt() // [2.25]
		f.FstpSym("out", 0)
	})
	m, _ := run(t, im)
	sym, _ := im.Lookup("out")
	v, _ := m.LoadF64(sym.Addr)
	if v != 2.25 {
		t.Fatalf("fp pipeline produced %v", v)
	}
}

func TestFPStackDepthStaysSmall(t *testing.T) {
	// The paper observes compiler-generated x87 code keeps <= 4 live
	// stack slots; our emitters follow the same discipline.
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("out", 8)
		f.FldConst(1)
		f.FldConst(2)
		f.FldConst(3)
		f.Faddp()
		f.Fmulp()
		f.FstpSym("out", 0)
	})
	m := New(im)
	m.Handler = &testHandler{}
	maxDepth := 0
	for {
		if d := m.FPDepth(); d > maxDepth {
			maxDepth = d
		}
		if tr := m.Step(); tr != nil {
			break
		}
	}
	if maxDepth == 0 || maxDepth > 4 {
		t.Fatalf("max FP stack depth = %d", maxDepth)
	}
}

func TestTagWordFaultTurnsValidIntoNaN(t *testing.T) {
	// §6.1.1: flipping a TWD bit can turn a valid number into NaN or 0.
	m := New(assemble(t, func(_ *asm.Module, f *asm.Func) {}))
	m.fpush(123.5)
	phys := m.FP.Top()
	if m.FP.Tag(phys) != isa.TagValid {
		t.Fatal("pushed value should be tagged valid")
	}
	// Flip the high bit of the slot's tag: valid(00) -> special(10).
	m.FP.SetTag(phys, isa.TagSpecial)
	if v := m.fget(0); !math.IsNaN(v) {
		t.Fatalf("special-tagged valid slot read %v, want NaN", v)
	}
	// Flip to zero(01) instead.
	m.FP.SetTag(phys, isa.TagZero)
	if v := m.fget(0); v != 0 {
		t.Fatalf("zero-tagged slot read %v, want 0", v)
	}
}

func TestSWDTopCorruption(t *testing.T) {
	m := New(assemble(t, func(_ *asm.Module, f *asm.Func) {}))
	m.fpush(1.0)
	m.fpush(2.0)
	if got := m.fget(0); got != 2.0 {
		t.Fatalf("st0 = %v", got)
	}
	// Corrupt the stack-top field (SWD bits 11-13).
	m.FP.SWD ^= 1 << 11
	if got := m.fget(0); got == 2.0 {
		t.Fatal("SWD corruption should change register addressing")
	}
}

func TestEmptySlotReadsIndefinite(t *testing.T) {
	m := New(assemble(t, func(_ *asm.Module, f *asm.Func) {}))
	if v := m.fget(0); !math.IsNaN(v) {
		t.Fatalf("empty FP stack read %v, want indefinite NaN", v)
	}
}

func TestFxamDetectsSpecials(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("out", 4)
		m.DataF64("nanval", math.NaN())
		f.FldSym("nanval", 0)
		f.Fxam()
		bad := f.NewLabel()
		done := f.NewLabel()
		f.Beq(bad)
		f.Movi(isa.R1, 0)
		f.Jmp(done)
		f.Label(bad)
		f.Movi(isa.R1, 1)
		f.Label(done)
		f.StSym("out", 0, isa.R1)
	})
	m, _ := run(t, im)
	sym, _ := im.Lookup("out")
	if v, _ := m.Load32(sym.Addr); v != 1 {
		t.Fatal("FXAM failed to flag NaN")
	}
}

func TestFistEdgeCases(t *testing.T) {
	m := New(assemble(t, func(_ *asm.Module, f *asm.Func) {}))
	cases := []struct {
		in   float64
		want uint32
	}{
		{3.9, 3},
		{-3.9, uint32(0xFFFFFFFD)}, // -3
		{math.NaN(), 0x80000000},
		{1e300, 0x80000000},
		{-1e300, 0x80000000},
	}
	for _, c := range cases {
		m.fpush(c.in)
		var in isa.Instr
		in.Op = isa.OpFist
		in.Rd = 1
		// Execute via the machine to exercise the real path.
		buf := in.Bytes()
		m.RawWrite(image.TextBase, buf)
		m.PC = image.TextBase
		if tr := m.Step(); tr != nil {
			t.Fatalf("fist(%v) trapped: %v", c.in, tr)
		}
		if m.Regs[1] != c.want {
			t.Fatalf("fist(%v) = %#x, want %#x", c.in, m.Regs[1], c.want)
		}
	}
}

func TestLoadStoreF64RoundTrip(t *testing.T) {
	m := New(assemble(t, func(mod *asm.Module, f *asm.Func) {
		mod.BSS("b", 64)
	}))
	f := func(v float64, off uint8) bool {
		addr := m.Image.BSSBase + uint32(off%56)
		if tr := m.StoreF64(addr, v); tr != nil {
			return false
		}
		got, tr := m.LoadF64(addr)
		if tr != nil {
			return false
		}
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRawReadWriteIgnorePermissions(t *testing.T) {
	m := New(assemble(t, func(_ *asm.Module, f *asm.Func) { f.Nop() }))
	// The injector can write text even though the guest cannot.
	if !m.RawWrite(image.TextBase, []byte{0xFF}) {
		t.Fatal("RawWrite to text failed")
	}
	b, ok := m.RawRead(image.TextBase, 1)
	if !ok || b[0] != 0xFF {
		t.Fatal("RawRead did not observe the write")
	}
	// Unmapped addresses are reported, not panicked on.
	if _, ok := m.RawRead(0x10, 4); ok {
		t.Fatal("RawRead of unmapped memory must fail")
	}
	if m.RawWrite(0x10, []byte{1}) {
		t.Fatal("RawWrite to unmapped memory must fail")
	}
}

func TestSegmentRange(t *testing.T) {
	m := New(assemble(t, func(mod *asm.Module, f *asm.Func) {
		mod.DataI32("d", 1, 2, 3)
		mod.BSS("z", 32)
	}))
	for _, name := range []string{"text", "data", "bss", "heap", "stack"} {
		lo, hi, ok := m.SegmentRange(name)
		if !ok || hi <= lo {
			t.Errorf("segment %s: [%#x, %#x) ok=%v", name, lo, hi, ok)
		}
	}
	if _, _, ok := m.SegmentRange("nope"); ok {
		t.Error("unknown segment name must fail")
	}
}

func TestTriggerFiresExactlyOnce(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		f.Movi(isa.R1, 0)
		loop := f.NewLabel()
		f.Label(loop)
		f.Addi(isa.R1, isa.R1, 1)
		f.Cmpi(isa.R1, 1000)
		f.Blt(loop)
	})
	m := New(im)
	m.Handler = &testHandler{}
	fired := 0
	var atInstr uint64
	m.TriggerAt = 500
	m.TriggerFn = func(m *Machine) {
		fired++
		atInstr = m.Instrs
	}
	m.Run(1_000_000)
	if fired != 1 {
		t.Fatalf("trigger fired %d times", fired)
	}
	if atInstr != 500 {
		t.Fatalf("trigger fired at instruction %d, want 500", atInstr)
	}
}

func TestInstructionBudget(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		loop := f.NewLabel()
		f.Label(loop)
		f.Jmp(loop)
	})
	m := New(im)
	m.Handler = &testHandler{}
	res := m.Run(10_000)
	if res.Reason != StopBudget {
		t.Fatalf("infinite loop not stopped by budget: %+v", res)
	}
	if m.Instrs < 10_000 {
		t.Fatalf("stopped after only %d instructions", m.Instrs)
	}
}

func TestMinSPTracking(t *testing.T) {
	im := assemble(t, func(m *asm.Module, f *asm.Func) {
		f.Push(isa.R1)
		f.Push(isa.R2)
		f.Pop(isa.R2)
		f.Pop(isa.R1)
	})
	m, _ := run(t, im)
	if m.MinSP >= image.StackTop {
		t.Fatal("MinSP never moved")
	}
	if image.StackTop-m.MinSP < 8 {
		t.Fatalf("MinSP only %d below top", image.StackTop-m.MinSP)
	}
}
