// Package sampling implements the Cochran sampling theory the paper uses
// to size its injection experiments (§4.3).
//
// The injection space (bit × process × time) is far too large to cover,
// so the campaign draws n random points and estimates each manifestation
// class's population proportion P from its sample proportion p.  The
// sample size needed for Pr(|P-p| < d) >= 1-alpha is
//
//	n >= P(1-P) (z_{alpha/2} / d)^2
//
// and because P is unknown, the paper oversamples with P = 0.5, giving
// n >= 0.25 (z/d)^2.  With 400-500 injections per region this yields an
// estimation error of 4.4-4.9 % at 95 % confidence — the numbers quoted
// in §4.3.
package sampling

import (
	"fmt"
	"math"
)

// ZForConfidence returns the double-tailed alpha point z_{alpha/2} of the
// standard normal distribution for the given confidence level 1-alpha
// (e.g. 0.95 -> 1.959964...).
func ZForConfidence(confidence float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("sampling: confidence %v outside (0,1)", confidence)
	}
	alpha := 1 - confidence
	return normQuantile(1 - alpha/2), nil
}

// SampleSize returns the minimum n such that the estimation error is at
// most d at the given confidence, using the paper's oversampling P = 0.5.
func SampleSize(confidence, d float64) (int, error) {
	if d <= 0 || d >= 1 {
		return 0, fmt.Errorf("sampling: error bound %v outside (0,1)", d)
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(0.25 * (z / d) * (z / d))), nil
}

// SampleSizeFor returns the minimum n for a known (or assumed) population
// proportion P: n >= P(1-P)(z/d)^2.
func SampleSizeFor(confidence, d, p float64) (int, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("sampling: proportion %v outside [0,1]", p)
	}
	if d <= 0 || d >= 1 {
		return 0, fmt.Errorf("sampling: error bound %v outside (0,1)", d)
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(p * (1 - p) * (z / d) * (z / d))), nil
}

// EstimationError returns the error bound d achieved by n samples at the
// given confidence with oversampling: d = z * sqrt(0.25/n).  For the
// paper's n in [400, 500] at 95 % confidence this is 4.4-4.9 %.
func EstimationError(confidence float64, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sampling: n must be positive")
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	return z * math.Sqrt(0.25/float64(n)), nil
}

// Describe renders the §4.3 sizing summary for a campaign of n
// injections per region, e.g. "n=500 per region -> estimation error
// 4.4% at 95% confidence".  Both CLIs print it, so the wording lives
// here once.
func Describe(confidence float64, n int) (string, error) {
	d, err := EstimationError(confidence, n)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("n=%d per region -> estimation error %.1f%% at %.0f%% confidence",
		n, 100*d, 100*confidence), nil
}

// ConfidenceInterval returns the Wald interval [lo, hi] (clamped to
// [0, 1]) for a sample proportion p observed over n samples.
func ConfidenceInterval(confidence float64, p float64, n int) (lo, hi float64, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("sampling: n must be positive")
	}
	if p < 0 || p > 1 {
		return 0, 0, fmt.Errorf("sampling: proportion %v outside [0,1]", p)
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, 0, err
	}
	half := z * math.Sqrt(p*(1-p)/float64(n))
	return math.Max(0, p-half), math.Min(1, p+half), nil
}

// EffectiveSampleSize returns Kish's effective sample size for a set of
// unequal sampling weights: n_eff = (Σw)² / Σw².  An equivalence-pruned
// campaign estimates the full-space rate from experiments whose
// candidate masses differ per site, so its estimator behaves like a
// uniform sample of n_eff ≤ n draws; error bounds for reweighted rates
// must use n_eff, not n.
func EffectiveSampleSize(weights []float64) (float64, error) {
	var sum, sumSq float64
	for _, w := range weights {
		if w < 0 {
			return 0, fmt.Errorf("sampling: negative weight %v", w)
		}
		sum += w
		sumSq += w * w
	}
	if sumSq == 0 {
		return 0, fmt.Errorf("sampling: all weights zero")
	}
	return sum * sum / sumSq, nil
}

// DifferenceBound returns the worst-case half-width of the difference
// between two independently estimated proportions at the given
// confidence, with the paper's P = 0.5 oversampling on both sides:
// z * sqrt(0.25/n1 + 0.25/n2).  This is the sound gate for "does the
// pruned campaign's reweighted rate agree with the full campaign's" —
// each estimate carries its own sampling error, so their difference is
// wider than either alone.
func DifferenceBound(confidence float64, n1, n2 int) (float64, error) {
	if n1 <= 0 || n2 <= 0 {
		return 0, fmt.Errorf("sampling: sample sizes must be positive")
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	return z * math.Sqrt(0.25/float64(n1)+0.25/float64(n2)), nil
}

// normQuantile computes the standard normal quantile function via the
// Acklam rational approximation (relative error < 1.15e-9), refined by
// one Halley step against erfc, which is plenty for experiment sizing.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement using the exact CDF via erfc.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
