package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mpifault/internal/classify"
	"mpifault/internal/core"
)

// A campaign journal is an append-only JSONL checkpoint of finished
// experiments: one header line identifying the campaign (app, seed,
// injections, regions, ranks, shard), then one line per completed
// experiment.  Journals make campaigns restartable — a killed run
// resumes by replaying its journal into core.Config.Completed — and
// mergeable: the union of K disjoint shard journals reconstructs the
// single-process campaign exactly, because every experiment's outcome
// is a pure function of (seed, region, index).

// JournalFormat and JournalVersion identify the on-disk format.
const (
	JournalFormat  = "mpifault-campaign-journal"
	JournalVersion = 1
)

// JournalHeader is the first line of a journal: the campaign identity
// plus the shard this journal covers.
type JournalHeader struct {
	Format     string   `json:"format"`
	Version    int      `json:"version"`
	App        string   `json:"app"`
	Seed       uint64   `json:"seed"`
	Injections int      `json:"injections"`
	Regions    []string `json:"regions"` // short names, plan order
	Ranks      int      `json:"ranks"`
	Shard      int      `json:"shard"`
	NumShards  int      `json:"num_shards"`

	// Adaptive campaigns (core.RunAdaptive) pin their whole estimation
	// contract in the header: with the confidence, target half-width,
	// round size and pilot priors recorded, a merge can replay the
	// deterministic planner over the journal's outcomes and verify the
	// recorded per-region counts are exactly where the stopping rule
	// landed.  Injections then holds the per-stratum fixed-n cap.
	// Fixed-n journals omit all four fields, so old journals parse
	// unchanged.
	Adaptive   bool      `json:"adaptive,omitempty"`
	Target     float64   `json:"target_half_width,omitempty"`
	Confidence float64   `json:"confidence,omitempty"`
	RoundSize  int       `json:"round_size,omitempty"`
	Priors     []float64 `json:"priors,omitempty"` // effective pilot priors, plan order

	// Equivalence records the class-sampling policy (annotate/prune/
	// audit) when the campaign ran with an equivalence map.  Pruning
	// changes which bits experiments flip, so journals only merge when
	// they agree on it; recording it also lets faultmerge decide whether
	// the Horvitz–Thompson reweighted columns are sound (prune only).
	Equivalence string `json:"equivalence,omitempty"`
}

// CampaignHeader builds the journal header for one application campaign.
// cfg.Regions may be nil (meaning all regions, as in core.Run);
// cfg.Injections must be positive.
func CampaignHeader(app string, cfg core.Config) JournalHeader {
	regions := cfg.Regions
	if len(regions) == 0 {
		regions = core.Regions()
	}
	short := make([]string, len(regions))
	for i, r := range regions {
		short[i] = r.Short()
	}
	numShards := cfg.NumShards
	if numShards <= 0 {
		numShards = 1
	}
	h := JournalHeader{
		Format:     JournalFormat,
		Version:    JournalVersion,
		App:        app,
		Seed:       cfg.Seed,
		Injections: cfg.Injections,
		Regions:    short,
		Ranks:      cfg.Ranks,
		Shard:      cfg.Shard,
		NumShards:  numShards,
	}
	if cfg.Adaptive {
		h.Adaptive = true
		h.Target = cfg.TargetHalfWidth
		h.Confidence = cfg.Confidence
		h.RoundSize = cfg.RoundSize
		h.Priors = core.EffectivePriors(regions, cfg.AVFPriors)
	}
	if cfg.Equivalence != nil && cfg.EquivalencePolicy != core.EquivOff {
		h.Equivalence = cfg.EquivalencePolicy.String()
	}
	return h
}

// SameCampaign reports whether two headers describe shards of the same
// campaign (everything but the shard coordinates must match, including
// the adaptive estimation contract when present).
func (h JournalHeader) SameCampaign(o JournalHeader) bool {
	if h.App != o.App || h.Seed != o.Seed || h.Injections != o.Injections ||
		h.Ranks != o.Ranks || len(h.Regions) != len(o.Regions) {
		return false
	}
	for i := range h.Regions {
		if h.Regions[i] != o.Regions[i] {
			return false
		}
	}
	if h.Adaptive != o.Adaptive || h.Target != o.Target ||
		h.Confidence != o.Confidence || h.RoundSize != o.RoundSize ||
		h.Equivalence != o.Equivalence || len(h.Priors) != len(o.Priors) {
		return false
	}
	for i := range h.Priors {
		if h.Priors[i] != o.Priors[i] {
			return false
		}
	}
	return true
}

// PlanRegions parses the header's region list back into core regions.
func (h JournalHeader) PlanRegions() ([]core.Region, error) {
	regions := make([]core.Region, len(h.Regions))
	for i, s := range h.Regions {
		r, err := core.ParseRegion(s)
		if err != nil {
			return nil, fmt.Errorf("report: journal header: %v", err)
		}
		regions[i] = r
	}
	return regions, nil
}

// JournalEntry is one completed experiment, keyed by its plan ID.  The
// forensics field is optional: journals written before the flight
// recorder existed (or with it disabled) simply omit it, and such
// entries deserialize with a nil Forensics — old journals resume and
// merge unchanged.
type JournalEntry struct {
	ID         string          `json:"id"`
	Rank       int             `json:"rank"`
	Trigger    uint64          `json:"trigger"`
	Desc       string          `json:"desc,omitempty"`
	Outcome    string          `json:"outcome"`
	Detail     string          `json:"detail,omitempty"`
	Candidates int             `json:"candidates,omitempty"`
	ClassID    uint64          `json:"class_id,omitempty"`
	BenignBits int             `json:"benign_bits,omitempty"`
	Forensics  *core.Forensics `json:"forensics,omitempty"`
}

func entryFromExperiment(e core.Experiment) JournalEntry {
	return JournalEntry{
		ID:         e.ID(),
		Rank:       e.Rank,
		Trigger:    e.Trigger,
		Desc:       e.Desc,
		Outcome:    e.Outcome.String(),
		Detail:     e.Detail,
		Candidates: e.Candidates,
		ClassID:    e.ClassID,
		BenignBits: e.BenignBits,
		Forensics:  e.Forensics,
	}
}

// Experiment inverts entryFromExperiment.
func (je JournalEntry) Experiment() (core.Experiment, error) {
	pe, err := core.ParseEntryID(je.ID)
	if err != nil {
		return core.Experiment{}, err
	}
	outcome, err := classify.ParseOutcome(je.Outcome)
	if err != nil {
		return core.Experiment{}, fmt.Errorf("report: journal entry %s: %v", je.ID, err)
	}
	return core.Experiment{
		Region:     pe.Region,
		Index:      pe.Index,
		Rank:       je.Rank,
		Trigger:    je.Trigger,
		Desc:       je.Desc,
		Outcome:    outcome,
		Detail:     je.Detail,
		Candidates: je.Candidates,
		ClassID:    je.ClassID,
		BenignBits: je.BenignBits,
		Forensics:  je.Forensics,
	}, nil
}

// Journal is an open, appendable campaign journal.  Append is safe for
// concurrent use, and every entry is flushed to the file before Append
// returns, so a SIGKILL loses at most the entry being written — which
// the truncation-tolerant reader simply re-runs on resume.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// CreateJournal starts a fresh journal at path, overwriting any
// existing file, and writes the header line.
func CreateJournal(path string, h JournalHeader) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	line, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f}, nil
}

// ResumeJournal opens the journal at path for appending, returning the
// experiments it already records (keyed by ID, for core.Config.Completed).
// A missing file starts a fresh journal; an existing one must describe
// the same campaign and shard as h.  A truncated tail — the footprint of
// a killed campaign — is discarded, so the half-written experiment is
// simply run again.
func ResumeJournal(path string, h JournalHeader) (*Journal, map[string]core.Experiment, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		j, err := CreateJournal(path, h)
		return j, nil, err
	}
	if err != nil {
		return nil, nil, err
	}
	got, completed, valid, err := parseJournal(data)
	if err != nil {
		return nil, nil, fmt.Errorf("report: resume %s: %v", path, err)
	}
	if !got.SameCampaign(h) || got.Shard != h.Shard || got.NumShards != h.NumShards {
		return nil, nil, fmt.Errorf("report: journal %s records a different campaign (app %s seed %d n %d shard %d/%d); refusing to mix",
			path, got.App, got.Seed, got.Injections, got.Shard, got.NumShards)
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: f}, completed, nil
}

// Append records one finished experiment.
func (j *Journal) Append(e core.Experiment) error {
	line, err := json.Marshal(entryFromExperiment(e))
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(append(line, '\n'))
	return err
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal loads a journal's header and completed experiments.
func ReadJournal(path string) (JournalHeader, map[string]core.Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return JournalHeader{}, nil, err
	}
	h, completed, _, err := parseJournal(data)
	if err != nil {
		return JournalHeader{}, nil, fmt.Errorf("report: %s: %v", path, err)
	}
	return h, completed, nil
}

// parseJournal scans the JSONL bytes, returning the header, the
// experiments keyed by ID, and the length of the valid prefix.  Only a
// line terminated by '\n' that unmarshals cleanly counts; the first
// defective line and everything after it are treated as the truncated
// tail of a killed run (valid < len(data)).  A defective header is a
// hard error — there is nothing to resume.
func parseJournal(data []byte) (h JournalHeader, completed map[string]core.Experiment, valid int, err error) {
	off := 0
	line := func() ([]byte, bool) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return nil, false
		}
		l := data[off : off+nl]
		off += nl + 1
		return l, true
	}

	hdr, ok := line()
	if !ok {
		return h, nil, 0, fmt.Errorf("missing journal header")
	}
	if err := json.Unmarshal(hdr, &h); err != nil {
		return h, nil, 0, fmt.Errorf("bad journal header: %v", err)
	}
	if h.Format != JournalFormat || h.Version != JournalVersion {
		return h, nil, 0, fmt.Errorf("not a %s v%d journal (format %q version %d)",
			JournalFormat, JournalVersion, h.Format, h.Version)
	}
	valid = off

	completed = make(map[string]core.Experiment)
	for {
		start := off
		l, ok := line()
		if !ok {
			break
		}
		if len(bytes.TrimSpace(l)) == 0 {
			valid = off
			continue
		}
		var je JournalEntry
		if err := json.Unmarshal(l, &je); err != nil {
			return h, completed, start, nil
		}
		e, err := je.Experiment()
		if err != nil {
			return h, completed, start, nil
		}
		completed[je.ID] = e
		valid = off
	}
	return h, completed, valid, nil
}

// EntryFromExperiment builds the journal record for one finished
// experiment — the line format workers stream to the coordinator, one
// JSON object per line, identical to what Journal.Append writes.
func EntryFromExperiment(e core.Experiment) JournalEntry {
	return entryFromExperiment(e)
}

// ParseSegment parses journal bytes — a header line plus zero or more
// entry lines — tolerating a truncated tail exactly like ResumeJournal:
// the returned valid length covers every complete, well-formed line, and
// anything after it is the footprint of an interrupted writer.  This is
// the coordinator's ingestion parser: an uploaded lease segment is a
// byte prefix of a worker's journal, so a worker killed mid-chunk leaves
// a segment whose intact lines are still usable and whose torn tail is
// simply re-covered when the lease is re-run.
func ParseSegment(data []byte) (h JournalHeader, completed map[string]core.Experiment, valid int, err error) {
	return parseJournal(data)
}

// SameOutcome reports whether two records of one experiment agree — the
// duplicate-resolution predicate for merges and coordinator ingestion.
// Any two workers running the same (seed, region, index) must produce
// the identical outcome, so a disagreement means the campaign is not
// deterministic and the duplicate cannot be resolved.  Forensics is
// excluded from the comparison (see sameExperiment).
func SameOutcome(a, b core.Experiment) bool {
	return sameExperiment(a, b)
}

// sameExperiment reports whether two journal records describe the same
// experiment outcome.  Forensics is deliberately excluded from the
// comparison: it is auxiliary diagnostic data, and shards of one
// campaign may legitimately differ in whether the flight recorder was
// enabled (old journals have none at all).
func sameExperiment(a, b core.Experiment) bool {
	a.Forensics, b.Forensics = nil, nil
	return a == b
}

// Merged is the reconstruction of a complete campaign from shard
// journals.
type Merged struct {
	App        string
	Seed       uint64
	Injections int
	Ranks      int
	Regions    []core.Region
	Journals   int
	// Adaptive campaigns carry their estimation contract through so the
	// rate table can label its CI columns; Injections is then the
	// per-stratum cap, not the executed count.
	Adaptive   bool
	Confidence float64
	Target     float64
	// Equivalence is the recorded class-sampling policy name ("" when
	// the campaign ran without an equivalence map).
	Equivalence string
	// Result carries the merged tallies and experiments; rendering it
	// with WriteCampaignCSV / WriteCampaign reproduces the
	// single-process campaign's output byte for byte.
	Result *core.Result
}

// MergeDir merges every .jsonl journal under dir — the coordinator's
// spool layout, one file per lease segment (stolen leases leave one file
// per generation; their intact lines are duplicates the merge resolves).
func MergeDir(dir string) (*Merged, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("report: no .jsonl journals under %s", dir)
	}
	sort.Strings(paths)
	return MergeJournals(paths)
}

// MergeJournals reads shard journals and reconstructs the campaign.  It
// fails unless the journals describe the same campaign, agree on every
// duplicated experiment, and together cover the plan completely — the
// disjoint/complete guarantee of Plan.Shard makes K well-formed shard
// journals always satisfy this.
func MergeJournals(paths []string) (*Merged, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("report: no journals to merge")
	}
	var base JournalHeader
	byID := make(map[string]core.Experiment)
	src := make(map[string]string)
	for i, path := range paths {
		h, exps, err := ReadJournal(path)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = h
		} else if !h.SameCampaign(base) {
			return nil, fmt.Errorf("report: %s records campaign (app %s seed %d n %d), %s records (app %s seed %d n %d); refusing to merge",
				paths[0], base.App, base.Seed, base.Injections, path, h.App, h.Seed, h.Injections)
		}
		for id, e := range exps {
			if prev, dup := byID[id]; dup {
				if !sameExperiment(prev, e) {
					return nil, fmt.Errorf("report: experiment %s disagrees between %s and %s — journals are not shards of one campaign",
						id, src[id], path)
				}
				// Keep whichever duplicate carries the richer record —
				// forensics over none, trace-diff divergence over plain
				// forensics — so a shard run with the flight recorder or
				// trace diffing enriches one run without.
				if prev.Forensics == nil && e.Forensics != nil ||
					prev.Divergence() == nil && e.Divergence() != nil {
					byID[id] = e
				}
				continue
			}
			byID[id] = e
			src[id] = path
		}
	}

	regions, err := base.PlanRegions()
	if err != nil {
		return nil, err
	}
	var experiments []core.Experiment
	if base.Adaptive {
		experiments, err = assembleAdaptive(base, regions, byID)
		if err != nil {
			return nil, err
		}
	} else {
		plan := core.Plan{Regions: regions, Injections: base.Injections}
		experiments = make([]core.Experiment, 0, plan.Total())
		var missing []string
		for g := 0; g < plan.Total(); g++ {
			pe := plan.Entry(g)
			e, ok := byID[pe.ID()]
			if !ok {
				missing = append(missing, pe.ID())
				continue
			}
			experiments = append(experiments, e)
		}
		if len(missing) > 0 {
			return nil, fmt.Errorf("report: merge incomplete: %d of %d experiments missing (first: %s) — rerun the missing shards or resume them from their journals",
				len(missing), plan.Total(), missing[0])
		}
	}

	res := &core.Result{Experiments: experiments}
	res.Tallies = core.TallyExperiments(regions, experiments)
	res.Unclassified = core.CountUnapplied(experiments)
	return &Merged{
		App:         base.App,
		Seed:        base.Seed,
		Injections:  base.Injections,
		Ranks:       base.Ranks,
		Regions:     regions,
		Journals:    len(paths),
		Adaptive:    base.Adaptive,
		Confidence:  base.Confidence,
		Target:      base.Target,
		Equivalence: base.Equivalence,
		Result:      res,
	}, nil
}

// assembleAdaptive reconstructs an adaptive campaign from the merged
// experiment set by replaying the deterministic planner over the
// recorded outcomes: the replay dictates exactly which (region, index)
// pairs the campaign must contain, missing ones fail the merge, and
// extras mean the journal was not produced by the recorded contract.
// Experiments come back in plan order (region order, index ascending),
// the order WriteCampaignCSV tallies are insensitive to but segment
// re-emission depends on.
func assembleAdaptive(base JournalHeader, regions []core.Region, byID map[string]core.Experiment) ([]core.Experiment, error) {
	counts, err := core.ReplayAdaptive(base.Confidence, base.Target, base.RoundSize, regions, base.Priors,
		func(ri, idx int) (bool, error) {
			pe := core.PlanEntry{Region: regions[ri], Index: idx}
			e, ok := byID[pe.ID()]
			if !ok {
				return false, fmt.Errorf("report: merge incomplete: the adaptive planner requires %s, which no journal records", pe.ID())
			}
			return e.Outcome != classify.Correct, nil
		})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(byID) {
		return nil, fmt.Errorf("report: journals record %d experiments but the adaptive planner replay expects %d — not a completed campaign under the recorded contract",
			len(byID), total)
	}
	experiments := make([]core.Experiment, 0, total)
	for ri, n := range counts {
		for idx := 0; idx < n; idx++ {
			pe := core.PlanEntry{Region: regions[ri], Index: idx}
			experiments = append(experiments, byID[pe.ID()])
		}
	}
	return experiments, nil
}
