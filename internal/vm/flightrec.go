package vm

// FlightRecorder is a Tracer that keeps the last N retired program
// counters in a fixed ring buffer — the fault-forensics analogue of a
// hardware last-branch record.  Attached to the injected rank of a
// campaign experiment, it answers the question the final outcome row
// cannot: *where* execution went between the bit flip and the
// manifestation.
//
// It is deliberately minimal: one slice store and one increment per
// retired instruction, no allocation after construction, and no
// synchronization — a machine runs on a single goroutine, and the
// campaign reads the ring only after the job's goroutines are joined.
// A nil *FlightRecorder records nothing (campaigns attach it only when
// forensics are requested, so the default hot path is untouched).
type FlightRecorder struct {
	ring []uint32
	n    uint64 // total Exec events observed
}

// NewFlightRecorder returns a recorder keeping the last n PCs.
// n <= 0 selects the default depth of 64.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 64
	}
	return &FlightRecorder{ring: make([]uint32, n)}
}

// Exec implements Tracer.
func (f *FlightRecorder) Exec(pc uint32) {
	f.ring[f.n%uint64(len(f.ring))] = pc
	f.n++
}

// Load implements Tracer; data accesses are not recorded.
func (f *FlightRecorder) Load(addr uint32, size int) {}

// Store implements Tracer; data accesses are not recorded.
func (f *FlightRecorder) Store(addr uint32, size int) {}

// Reset clears the recorder for reuse; the ring's storage is kept.
// Campaign workers pool recorders across experiments so forensics does
// not allocate a fresh ring per injection.
func (f *FlightRecorder) Reset() { f.n = 0 }

// Seen returns how many instructions the recorder has observed.
func (f *FlightRecorder) Seen() uint64 { return f.n }

// LastPCs returns the recorded program counters in execution order,
// oldest first; the final element is the PC of the last retired
// instruction.  An empty or partially filled ring returns only what was
// recorded.
func (f *FlightRecorder) LastPCs() []uint32 {
	size := uint64(len(f.ring))
	if f.n < size {
		return append([]uint32(nil), f.ring[:f.n]...)
	}
	out := make([]uint32, size)
	start := f.n % size // index of the oldest entry
	copy(out, f.ring[start:])
	copy(out[size-start:], f.ring[:start])
	return out
}
