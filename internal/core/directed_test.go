package core

import (
	"strings"
	"testing"
	"time"

	"mpifault/internal/classify"
	"mpifault/internal/cluster"
	"mpifault/internal/isa"
	"mpifault/internal/mpi"
	"mpifault/internal/rng"
	"mpifault/internal/vm"
)

// Directed-fault tests: instead of sampling, each test plants one
// hand-chosen fault whose causal chain the paper describes, and asserts
// the expected manifestation.

func runWavetoyWithFault(t *testing.T, setup func(rank int, m *vm.Machine, p *mpi.Proc)) (*cluster.Result, []byte) {
	t.Helper()
	im, ranks := buildApp(t, "wavetoy")
	golden, err := RunGolden(im, ranks, mpi.Config{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Run(cluster.Job{
		Image: im, Size: ranks,
		Budget:    golden.MaxInstrs() * 4,
		WallLimit: 20 * time.Second,
		Setup:     setup,
	})
	return res, golden.Output
}

func TestDirectedPCCorruptionCrashes(t *testing.T) {
	// §6.1.1: regular-register faults are the most violent.  Flipping a
	// high bit of the PC mid-run lands outside any mapped segment.
	res, golden := runWavetoyWithFault(t, func(rank int, m *vm.Machine, p *mpi.Proc) {
		if rank != 2 {
			return
		}
		m.TriggerAt = 20_000
		m.TriggerFn = func(m *vm.Machine) { m.PC ^= 1 << 30 }
	})
	if got := classify.Classify(res, golden); got != classify.Crash {
		t.Fatalf("outcome = %v, want Crash", got)
	}
}

func TestDirectedLoopCounterHang(t *testing.T) {
	// A corrupted branch target / loop state that re-enters the same
	// code forever is the livelock mode; force it by pinning the PC in a
	// tight loop via flag corruption is fragile, so instead corrupt the
	// step counter's storage through a register used to bound the loop:
	// simply jam the PC onto itself.
	res, golden := runWavetoyWithFault(t, func(rank int, m *vm.Machine, p *mpi.Proc) {
		if rank != 1 {
			return
		}
		m.TriggerAt = 30_000
		m.TriggerFn = func(m *vm.Machine) {
			// Overwrite the next instruction with jmp-to-self: the
			// classic non-terminating mode (§7's progress discussion).
			in := isa.Instr{Op: isa.OpJmp, Imm: int32(m.PC)}
			m.RawWrite(m.PC, in.Bytes())
		}
	})
	if got := classify.Classify(res, golden); got != classify.Hang {
		t.Fatalf("outcome = %v, want Hang", got)
	}
}

func TestDirectedMessageTagFlipHangs(t *testing.T) {
	// §3.3/§6.2: corrupting a matching field silently loses the message;
	// the receiver waits forever.
	im, ranks := buildApp(t, "wavetoy")
	golden, err := RunGolden(im, ranks, mpi.Config{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Run(cluster.Job{
		Image: im, Size: ranks,
		Budget:    golden.MaxInstrs() * 4,
		WallLimit: 20 * time.Second,
		Setup: func(rank int, m *vm.Machine, p *mpi.Proc) {
			if rank != 3 {
				return
			}
			first := true
			p.RecvHook = func(pkt []byte) {
				if first && len(pkt) >= 20 {
					pkt[16] ^= 0x08 // tag field low byte
					first = false
				}
			}
		},
	})
	if got := classify.Classify(res, golden.Output); got != classify.Hang {
		t.Fatalf("outcome = %v, want Hang", got)
	}
}

func TestDirectedPayloadLSBMaskedByTextOutput(t *testing.T) {
	// §6.2: flipping a low-order mantissa bit of a near-zero float is
	// invisible at six decimal places of text output.
	im, ranks := buildApp(t, "wavetoy")
	golden, err := RunGolden(im, ranks, mpi.Config{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Run(cluster.Job{
		Image: im, Size: ranks,
		Budget:    golden.MaxInstrs() * 4,
		WallLimit: 20 * time.Second,
		Setup: func(rank int, m *vm.Machine, p *mpi.Proc) {
			if rank != 4 {
				return
			}
			first := true
			p.RecvHook = func(pkt []byte) {
				// Flip the LSB of the first payload double of the first
				// large data message.
				if first && len(pkt) > 56 {
					pkt[48] ^= 0x01
					first = false
				}
			}
		},
	})
	if got := classify.Classify(res, golden.Output); got != classify.Correct {
		t.Fatalf("outcome = %v, want Correct (masked)", got)
	}
}

func TestDirectedStackRetAddrCorruption(t *testing.T) {
	// Corrupting a return address high bit sends RET into the void.
	res, golden := runWavetoyWithFault(t, func(rank int, m *vm.Machine, p *mpi.Proc) {
		if rank != 0 {
			return
		}
		m.TriggerAt = 25_000
		m.TriggerFn = func(m *vm.Machine) {
			frames := m.WalkFrames()
			if len(frames) == 0 {
				return
			}
			b, ok := m.RawRead(frames[0].FP+4, 4)
			if !ok {
				return
			}
			b[3] ^= 0x40 // high bit of the return address
			m.RawWrite(frames[0].FP+4, b)
		}
	})
	got := classify.Classify(res, golden)
	if got != classify.Crash && got != classify.Hang {
		t.Fatalf("outcome = %v, want Crash or Hang", got)
	}
}

func TestDirectedFPRegFlipMostlyBenign(t *testing.T) {
	// §6.1.1: most FP register faults do not manifest because few slots
	// are live.  Flip a bit in a physical slot far from the stack top.
	res, golden := runWavetoyWithFault(t, func(rank int, m *vm.Machine, p *mpi.Proc) {
		if rank != 5 {
			return
		}
		m.TriggerAt = 40_000
		m.TriggerFn = func(m *vm.Machine) {
			top := m.FP.Top()
			dead := (top + 6) & 7 // almost certainly an empty slot
			m.FP.Regs[dead] = m.FP.Regs[dead] + 1e18
		}
	})
	if got := classify.Classify(res, golden); got != classify.Correct {
		t.Fatalf("outcome = %v, want Correct (dead slot)", got)
	}
}

func TestDirectedMinicamMoistureCheck(t *testing.T) {
	// §6.2: CAM's moisture floor check converts a corrupted moisture
	// field into a warning + abort (App Detected).  Write a negative
	// value straight into the moisture field via the heap.
	im, ranks := buildApp(t, "minicam")
	golden, err := RunGolden(im, ranks, mpi.Config{}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Run(cluster.Job{
		Image: im, Size: ranks,
		Budget:    golden.MaxInstrs() * 4,
		WallLimit: 30 * time.Second,
		Setup: func(rank int, m *vm.Machine, p *mpi.Proc) {
			if rank != 2 {
				return
			}
			m.TriggerAt = golden.Instrs[2] / 2
			m.TriggerFn = func(m *vm.Machine) {
				// Find a user heap chunk and flip the sign bit of many
				// doubles — some will be the moisture field.
				for _, c := range m.Heap.Chunks() {
					if !c.Valid || c.Tag != 0x55534552 {
						continue
					}
					for off := uint32(7); off < c.Size; off += 8 {
						b, ok := m.RawRead(c.Payload+off, 1)
						if !ok {
							break
						}
						m.RawWrite(c.Payload+off, []byte{b[0] | 0x80})
					}
				}
			}
		},
	})
	got := classify.Classify(res, golden.Output)
	if got != classify.AppDetected {
		t.Fatalf("outcome = %v, want AppDetected (stderr: %s)", got, res.Stderr[2])
	}
	if !strings.Contains(string(res.Stderr[2]), "moisture") {
		t.Fatalf("stderr = %q", res.Stderr[2])
	}
}

func TestDirectedMinimdChecksumCatchesPayloadFlip(t *testing.T) {
	// §6.2: NAMD's checksums detect corruption of covered payload words.
	im, ranks := buildApp(t, "minimd")
	golden, err := RunGolden(im, ranks, mpi.Config{}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.Run(cluster.Job{
		Image: im, Size: ranks,
		Budget:    golden.MaxInstrs() * 4,
		WallLimit: 30 * time.Second,
		Setup: func(rank int, m *vm.Machine, p *mpi.Proc) {
			if rank != 1 {
				return
			}
			first := true
			p.RecvHook = func(pkt []byte) {
				// Corrupt the first covered payload double of the first
				// big data message (headers are 48 bytes; block data
				// starts right after; flip a high mantissa bit).
				if first && len(pkt) > 120 {
					pkt[54] ^= 0x20
					first = false
				}
			}
		},
	})
	got := classify.Classify(res, golden.Output)
	if got != classify.AppDetected {
		t.Fatalf("outcome = %v, want AppDetected", got)
	}
	joined := ""
	for _, e := range res.Stderr {
		joined += string(e)
	}
	if !strings.Contains(joined, "checksum") {
		t.Fatalf("stderr lacks checksum diagnostic: %q", joined)
	}
}

// TestDirectedSeedsReproduce ensures a sampled experiment replays
// identically from its (region, index) derivation.
func TestDirectedSeedsReproduce(t *testing.T) {
	im, ranks := buildApp(t, "wavetoy")
	golden, err := RunGolden(im, ranks, mpi.Config{}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dict := NewDictionary(im)
	run := func() classify.Outcome {
		e := &Experiment{Region: RegionRegularReg, Index: 4}
		cfg := Config{Image: im, Ranks: ranks, WallLimit: 20 * time.Second}
		cctx := &campaignCtx{
			cfg: &cfg, golden: golden, dict: dict,
			budget: golden.MaxInstrs() * 4,
			met:    newCampaignMeters(nil),
		}
		sc := &expScratch{}
		rng.New(77).DeriveInto(&sc.r, uint64(e.Region), uint64(e.Index))
		runOne(cctx, e, sc)
		return e.Outcome
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same experiment classified %v then %v", a, b)
	}
}
