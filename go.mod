module mpifault

go 1.22
