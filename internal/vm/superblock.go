package vm

import (
	"math"
	"math/bits"

	"mpifault/internal/isa"
)

// Superblock execution tier.
//
// The predecode cache (predecode.go) removed the per-instruction decode;
// what remained of the interpreter's cost was the per-instruction
// bookkeeping around each isa.Instr: the fetch-path slot computation and
// dirty check, the opcode switch re-dispatching immediate ALU forms, the
// operand-register validation, the Instrs/PC advance and the MinSP probe.
// This tier compiles the predecoded text once per image into a flat
// micro-op program — one specialized uop per slot, with operand registers
// pre-validated and immediate ALU forms pre-resolved to their base
// operation — plus a run-end table: end[s] is one past the last uop
// reachable from slot s before a control transfer (branch, call, ret,
// sys) or an uncompilable encoding.  Machine.Run then executes whole
// straight-line runs ("superblocks") between event boundaries: one
// Instrs advance, one PC materialization and one bounds/dirty lookup per
// block edge instead of per instruction.
//
// Correctness anchors, in the order they bit:
//
//   - Event boundaries are exact.  runBlocks clips every block to the
//     current event limit (TriggerAt, budget, the 4096-instruction stop
//     poll), so triggers fire and budgets exhaust at the identical
//     retired-instruction counts as the per-instruction loop.  A block
//     interrupted mid-run resumes at the interior slot — the per-slot
//     end table makes every slot a valid block entry, so branching or
//     resuming into the middle of a run needs no leader analysis.
//   - Traps materialize precise state.  Every trapping uop finalizes
//     m.PC to the faulting instruction and m.Instrs to include it
//     (matching Step, which counts an instruction before executing it);
//     registers, flags and the FP environment are updated in place and
//     are therefore precise by construction.  FP-stack writes set
//     FP.FIP from the true per-instruction PC — FIP is an injection
//     target, so a stale block-entry PC would change campaign outcomes.
//   - Text corruption invalidates compiled blocks.  markTextDirty
//     truncates the machine-local copy of the run-end table so no run
//     executes into an overwritten slot, and a dirty slot itself (end ==
//     slot) falls back to Step's byte-decode path, preserving text-fault
//     SIGILL semantics exactly.
//   - Tracers see per-PC callbacks.  A non-nil Tracer gets the same
//     Exec/Load/Store stream, in the same order, as the per-instruction
//     path, so the flight recorder and working-set profiler observe
//     identical executions (the differential tests hash the PC stream).
//   - Snapshots carry no compiled state.  The uop program and shared
//     run-end table are derived from the image; Snapshot captures only
//     textDirty, and NewMachine re-derives the truncations from it.

// sbKind enumerates the specialized micro-ops.  Immediate ALU forms are
// distinct kinds (the alui->alu remap happens at compile time), and
// operand validation has already succeeded for every kind but sbBail.
type sbKind uint8

const (
	// sbBail marks a slot the compiler could not specialize (invalid
	// opcode, out-of-range register operand): execution falls back to
	// Step, which re-decodes and raises the precise trap.  It is a run
	// terminator, and a zero-length run (a dirty slot) bails too.
	sbBail sbKind = iota
	sbNop
	sbMovi
	sbMovr
	sbAdd
	sbSub
	sbMul
	sbDivs
	sbRems
	sbAnd
	sbOr
	sbXor
	sbShl
	sbShr
	sbSar
	sbNeg
	sbAddi
	sbMuli
	sbAndi
	sbOri
	sbXori
	sbShli
	sbShri
	sbSari
	sbCmp
	sbCmpi
	sbPush
	sbPop
	sbLd
	sbSt
	sbLdb
	sbStb
	sbFld
	sbFst
	sbFstp
	sbFldz
	sbFld1
	sbFldst
	sbFaddp
	sbFsubp
	sbFmulp
	sbFdivp
	sbFchs
	sbFabs
	sbFsqrt
	sbFxch
	sbFcomp
	sbFxam
	sbFild
	sbFist
	// Terminators: the compiler guarantees these appear only as the last
	// uop of a run.
	sbJmp
	sbBeq
	sbBne
	sbBlt
	sbBge
	sbBle
	sbBgt
	sbBltu
	sbBgeu
	sbBun
	sbCall
	sbCallr
	sbRet
	sbSys
)

// uop is one compiled micro-op: the specialized kind plus the raw
// operand bytes and immediate of the source instruction.  Register
// operands are pre-validated (< NumGPR, or RegNone where the address
// form allows it), so handlers index the register file with &7 and no
// runtime check.
type uop struct {
	kind sbKind
	rd   uint8
	ra   uint8
	rb   uint8
	imm  int32
}

const spByte = uint8(isa.SP)

// gprOK reports whether r encodes a real general-purpose register.
func gprOK(r uint8) bool { return int(r) < isa.NumGPR }

// eaOK reports whether r is usable in the ra+index(rb)+imm address form.
func eaOK(r uint8) bool { return r == isa.RegNone || gprOK(r) }

// compileUop specializes one decoded instruction.  Anything whose
// execution would raise an encoding trap — or that the tier does not
// model — compiles to sbBail.
func compileUop(in isa.Instr) uop {
	u := uop{rd: in.Rd, ra: in.Ra, rb: in.Rb, imm: in.Imm}
	bail := uop{kind: sbBail}
	switch in.Op {
	case isa.OpNop:
		u.kind = sbNop
	case isa.OpMovi:
		if !gprOK(in.Rd) {
			return bail
		}
		u.kind = sbMovi
	case isa.OpMovr:
		if !gprOK(in.Rd) || !gprOK(in.Ra) {
			return bail
		}
		u.kind = sbMovr
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDivs, isa.OpRems,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar:
		if !gprOK(in.Rd) || !gprOK(in.Ra) || !gprOK(in.Rb) {
			return bail
		}
		u.kind = sbAdd + sbKind(in.Op-isa.OpAdd)
	case isa.OpNeg:
		if !gprOK(in.Rd) || !gprOK(in.Ra) {
			return bail
		}
		u.kind = sbNeg
	case isa.OpAddi, isa.OpMuli, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri, isa.OpSari:
		if !gprOK(in.Rd) || !gprOK(in.Ra) {
			return bail
		}
		u.kind = sbAddi + sbKind(in.Op-isa.OpAddi)
		if in.Op == isa.OpShli || in.Op == isa.OpShri || in.Op == isa.OpSari {
			u.imm = in.Imm & 31 // the shift count is taken mod 32
		}
	case isa.OpCmp:
		if !gprOK(in.Ra) || !gprOK(in.Rb) {
			return bail
		}
		u.kind = sbCmp
	case isa.OpCmpi:
		if !gprOK(in.Ra) {
			return bail
		}
		u.kind = sbCmpi
	case isa.OpJmp:
		u.kind = sbJmp
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBle,
		isa.OpBgt, isa.OpBltu, isa.OpBgeu, isa.OpBun:
		u.kind = sbBeq + sbKind(in.Op-isa.OpBeq)
	case isa.OpCall:
		u.kind = sbCall
	case isa.OpCallr:
		if !gprOK(in.Ra) {
			return bail
		}
		u.kind = sbCallr
	case isa.OpRet:
		u.kind = sbRet
	case isa.OpPush:
		if !gprOK(in.Ra) {
			return bail
		}
		u.kind = sbPush
	case isa.OpPop:
		if !gprOK(in.Rd) {
			return bail
		}
		u.kind = sbPop
	case isa.OpLd, isa.OpLdb:
		if !gprOK(in.Rd) || !eaOK(in.Ra) || !eaOK(in.Rb) {
			return bail
		}
		if in.Op == isa.OpLd {
			u.kind = sbLd
		} else {
			u.kind = sbLdb
		}
	case isa.OpSt, isa.OpStb:
		// The store source rides in the Rd slot (see isa.Instr.Rc).
		if !gprOK(in.Rc()) || !eaOK(in.Ra) || !eaOK(in.Rb) {
			return bail
		}
		if in.Op == isa.OpSt {
			u.kind = sbSt
		} else {
			u.kind = sbStb
		}
	case isa.OpFld, isa.OpFst, isa.OpFstp:
		if !eaOK(in.Ra) || !eaOK(in.Rb) {
			return bail
		}
		switch in.Op {
		case isa.OpFld:
			u.kind = sbFld
		case isa.OpFst:
			u.kind = sbFst
		default:
			u.kind = sbFstp
		}
	case isa.OpFldz:
		u.kind = sbFldz
	case isa.OpFld1:
		u.kind = sbFld1
	case isa.OpFldst:
		u.kind = sbFldst
	case isa.OpFaddp:
		u.kind = sbFaddp
	case isa.OpFsubp:
		u.kind = sbFsubp
	case isa.OpFmulp:
		u.kind = sbFmulp
	case isa.OpFdivp:
		u.kind = sbFdivp
	case isa.OpFchs:
		u.kind = sbFchs
	case isa.OpFabs:
		u.kind = sbFabs
	case isa.OpFsqrt:
		u.kind = sbFsqrt
	case isa.OpFxch:
		u.kind = sbFxch
	case isa.OpFcomp:
		u.kind = sbFcomp
	case isa.OpFxam:
		u.kind = sbFxam
	case isa.OpFild:
		if !gprOK(in.Ra) {
			return bail
		}
		u.kind = sbFild
	case isa.OpFist:
		if !gprOK(in.Rd) {
			return bail
		}
		u.kind = sbFist
	case isa.OpSys:
		u.kind = sbSys
	default:
		return bail
	}
	return u
}

// terminates reports whether k ends a straight-line run.
func (k sbKind) terminates() bool { return k == sbBail || k >= sbJmp }

// compileSuperblocks compiles the predecoded text into the per-slot uop
// program and the shared run-end table: end[s] is one past the last slot
// of the straight-line run entered at s, so the block at any slot s is
// prog[s:end[s]].  end is non-decreasing; the executor and the dirty-
// slot truncation both rely on that.
func compileSuperblocks(instrs []isa.Instr) ([]uop, []uint32) {
	prog := make([]uop, len(instrs))
	end := make([]uint32, len(instrs))
	for i, in := range instrs {
		prog[i] = compileUop(in)
	}
	for i := len(prog) - 1; i >= 0; i-- {
		if prog[i].kind.terminates() || i == len(prog)-1 {
			end[i] = uint32(i + 1)
		} else {
			end[i] = end[i+1]
		}
	}
	return prog, end
}

// DisableSuperblocks forces the machine back onto the per-instruction
// interpreter (still through the predecode cache).  The differential
// tests and the faultcampaign -no-superblock escape hatch use it to
// check that compiled execution is semantically invisible.
func (m *Machine) DisableSuperblocks() {
	m.sbProg, m.sbEnd, m.sbEndOwned = nil, nil, false
}

// sbInvalidate truncates every compiled run that would execute into
// slot d, cloning the shared run-end table on first use.  The dirty
// slot's own run becomes empty (end == slot), which routes execution to
// Step's byte-decode path; earlier slots of the same run stop just
// before d.  Truncation preserves the table's monotonicity, so the
// backward walk can stop at the first run that already ends at or
// before d.
func (m *Machine) sbInvalidate(d uint32) {
	if m.sbEnd == nil || d >= uint32(len(m.sbEnd)) {
		return
	}
	if !m.sbEndOwned {
		m.sbEnd = append([]uint32(nil), m.sbEnd...)
		m.sbEndOwned = true
	}
	m.sbEnd[d] = d
	for s := d; s > 0; {
		s--
		if m.sbEnd[s] <= d {
			break
		}
		m.sbEnd[s] = d
	}
}

// rebuildSBDirty re-derives the run-end truncations from the dirty-slot
// bitmap; NewMachine uses it because snapshots carry the bitmap but no
// compiled state.
func (m *Machine) rebuildSBDirty() {
	for w, word := range m.textDirty {
		for word != 0 {
			m.sbInvalidate(uint32(w)*64 + uint32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// runBlocks retires instructions through compiled superblocks until
// m.Instrs reaches limit or execution traps.  Unaligned, out-of-text
// and dirty-slot PCs take single per-instruction steps, so every
// corrupted encoding faults exactly as it would without the tier.
func (m *Machine) runBlocks(limit uint64) *Trap {
	for m.Instrs < limit {
		off := m.PC - m.text.base
		slot := off / isa.InstrBytes
		if off%isa.InstrBytes != 0 || slot >= uint32(len(m.sbEnd)) {
			if t := m.Step(); t != nil {
				return t
			}
			continue
		}
		n := uint64(m.sbEnd[slot]) - uint64(slot)
		if n == 0 { // dirty slot: byte-decode exactly one instruction
			if t := m.Step(); t != nil {
				return t
			}
			continue
		}
		if rem := limit - m.Instrs; n > rem {
			n = rem // split the block at the event boundary
		}
		if t := m.execBlock(slot, uint32(n)); t != nil {
			return t
		}
	}
	return nil
}

// blockTrap finalizes precise architectural state for a trap raised by
// the i-th uop of a block entered at entry: the instruction is counted
// (Step counts before executing) and the trap's PC is rewritten to the
// faulting instruction, since memory helpers stamp traps with m.PC,
// which is stale inside a block.
func (m *Machine) blockTrap(entry uint32, i int, t *Trap) *Trap {
	m.Instrs += uint64(i) + 1
	m.PC = entry + uint32(i)*isa.InstrBytes
	t.PC = m.PC
	return t
}

// execBlock executes n uops starting at slot (the caller has clipped n
// to the run end and the event limit).  On a control transfer or trap it
// finalizes PC/Instrs and returns; a straight-line exit advances both by
// the whole block.
func (m *Machine) execBlock(slot, n uint32) *Trap {
	uops := m.sbProg[slot : slot+n]
	entry := m.PC
	traced := m.Tracer != nil
	for i := 0; i < len(uops); i++ {
		u := uops[i] // 8 bytes; copying beats re-loading fields through a pointer
		if u.kind == sbBail {
			// Let Step fetch, count and trap with its own precise
			// semantics (it also issues the Tracer.Exec callback).
			m.Instrs += uint64(i)
			m.PC = entry + uint32(i)*isa.InstrBytes
			return m.Step()
		}
		if traced {
			m.Tracer.Exec(entry + uint32(i)*isa.InstrBytes)
		}
		switch u.kind {
		case sbNop:

		case sbMovi:
			m.Regs[u.rd&7] = uint32(u.imm)
			if u.rd == spByte {
				m.updateMinSP()
			}

		case sbMovr:
			m.Regs[u.rd&7] = m.Regs[u.ra&7]
			if u.rd == spByte {
				m.updateMinSP()
			}

		case sbAdd:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] + m.Regs[u.rb&7]
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbSub:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] - m.Regs[u.rb&7]
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbMul:
			m.Regs[u.rd&7] = uint32(int32(m.Regs[u.ra&7]) * int32(m.Regs[u.rb&7]))
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbDivs, sbRems:
			nmr := int32(m.Regs[u.ra&7])
			d := int32(m.Regs[u.rb&7])
			if d == 0 || (nmr == math.MinInt32 && d == -1) {
				return m.blockTrap(entry, i,
					&Trap{Kind: TrapFpe, Msg: "integer divide error"})
			}
			if u.kind == sbDivs {
				m.Regs[u.rd&7] = uint32(nmr / d)
			} else {
				m.Regs[u.rd&7] = uint32(nmr % d)
			}
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbAnd:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] & m.Regs[u.rb&7]
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbOr:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] | m.Regs[u.rb&7]
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbXor:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] ^ m.Regs[u.rb&7]
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbShl:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] << (m.Regs[u.rb&7] & 31)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbShr:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] >> (m.Regs[u.rb&7] & 31)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbSar:
			m.Regs[u.rd&7] = uint32(int32(m.Regs[u.ra&7]) >> (m.Regs[u.rb&7] & 31))
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbNeg:
			m.Regs[u.rd&7] = uint32(-int32(m.Regs[u.ra&7]))
			if u.rd == spByte {
				m.updateMinSP()
			}

		case sbAddi:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] + uint32(u.imm)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbMuli:
			m.Regs[u.rd&7] = uint32(int32(m.Regs[u.ra&7]) * u.imm)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbAndi:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] & uint32(u.imm)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbOri:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] | uint32(u.imm)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbXori:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] ^ uint32(u.imm)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbShli:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] << uint32(u.imm)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbShri:
			m.Regs[u.rd&7] = m.Regs[u.ra&7] >> uint32(u.imm)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbSari:
			m.Regs[u.rd&7] = uint32(int32(m.Regs[u.ra&7]) >> uint32(u.imm))
			if u.rd == spByte {
				m.updateMinSP()
			}

		case sbCmp:
			m.setIntFlags(m.Regs[u.ra&7], m.Regs[u.rb&7])
		case sbCmpi:
			m.setIntFlags(m.Regs[u.ra&7], uint32(u.imm))

		case sbPush:
			if t := m.push(m.Regs[u.ra&7]); t != nil {
				return m.blockTrap(entry, i, t)
			}
			m.updateMinSP()
		case sbPop:
			v, t := m.pop()
			if t != nil {
				return m.blockTrap(entry, i, t)
			}
			m.Regs[u.rd&7] = v
			if u.rd == spByte {
				m.updateMinSP()
			}

		case sbLd:
			addr := uint32(u.imm)
			if u.ra != isa.RegNone {
				addr += m.Regs[u.ra&7]
			}
			if u.rb != isa.RegNone {
				addr += m.Regs[u.rb&7]
			}
			v, t := m.Load32(addr)
			if t != nil {
				return m.blockTrap(entry, i, t)
			}
			m.Regs[u.rd&7] = v
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbSt:
			addr := uint32(u.imm)
			if u.ra != isa.RegNone {
				addr += m.Regs[u.ra&7]
			}
			if u.rb != isa.RegNone {
				addr += m.Regs[u.rb&7]
			}
			if t := m.Store32(addr, m.Regs[u.rd&7]); t != nil {
				return m.blockTrap(entry, i, t)
			}
		case sbLdb:
			addr := uint32(u.imm)
			if u.ra != isa.RegNone {
				addr += m.Regs[u.ra&7]
			}
			if u.rb != isa.RegNone {
				addr += m.Regs[u.rb&7]
			}
			v, t := m.Load8(addr)
			if t != nil {
				return m.blockTrap(entry, i, t)
			}
			m.Regs[u.rd&7] = uint32(v)
			if u.rd == spByte {
				m.updateMinSP()
			}
		case sbStb:
			addr := uint32(u.imm)
			if u.ra != isa.RegNone {
				addr += m.Regs[u.ra&7]
			}
			if u.rb != isa.RegNone {
				addr += m.Regs[u.rb&7]
			}
			if t := m.Store8(addr, byte(m.Regs[u.rd&7])); t != nil {
				return m.blockTrap(entry, i, t)
			}

		// The FP-stack cases expand fpush/fpop/fget/fset (fpu.go) by hand
		// — same field updates, same order — because the helpers exceed
		// the compiler's inline budget and FP-heavy kernels pay a call
		// per stack operation.  The differential tests hold the two
		// spellings bit-identical.

		case sbFld:
			// fpush records FP.FIP = m.PC; materialize the true PC first
			// (FIP is a fault-injection target, so precision matters).
			m.PC = entry + uint32(i)*isa.InstrBytes
			addr := uint32(u.imm)
			if u.ra != isa.RegNone {
				addr += m.Regs[u.ra&7]
			}
			if u.rb != isa.RegNone {
				addr += m.Regs[u.rb&7]
			}
			v, t := m.LoadF64(addr)
			if t != nil {
				return m.blockTrap(entry, i, t)
			}
			e := &m.FP
			top := (e.Top() - 1) & 7
			e.SetTop(top)
			e.Regs[top] = v
			e.SetTag(top, classify(v))
			e.FIP = m.PC
			e.FOO = addr
		case sbFst, sbFstp:
			addr := uint32(u.imm)
			if u.ra != isa.RegNone {
				addr += m.Regs[u.ra&7]
			}
			if u.rb != isa.RegNone {
				addr += m.Regs[u.rb&7]
			}
			e := &m.FP
			top := e.Top()
			v := e.Regs[top]
			if e.Tag(top) != isa.TagValid {
				v = e.reconstruct(top)
			}
			if t := m.StoreF64(addr, v); t != nil {
				return m.blockTrap(entry, i, t)
			}
			e.FOO = addr
			if u.kind == sbFstp {
				e.SetTag(top, isa.TagEmpty)
				e.SetTop((top + 1) & 7)
			}

		case sbFldz, sbFld1:
			m.PC = entry + uint32(i)*isa.InstrBytes
			v := float64(0)
			tag := isa.TagZero
			if u.kind == sbFld1 {
				v, tag = 1, isa.TagValid
			}
			e := &m.FP
			top := (e.Top() - 1) & 7
			e.SetTop(top)
			e.Regs[top] = v
			e.SetTag(top, tag)
			e.FIP = m.PC
		case sbFldst:
			m.PC = entry + uint32(i)*isa.InstrBytes
			e := &m.FP
			p := (e.Top() + int(u.imm)) & 7
			v := e.Regs[p]
			if e.Tag(p) != isa.TagValid {
				v = e.reconstruct(p)
			}
			top := (e.Top() - 1) & 7
			e.SetTop(top)
			e.Regs[top] = v
			e.SetTag(top, classify(v))
			e.FIP = m.PC

		case sbFaddp, sbFsubp, sbFmulp, sbFdivp:
			m.PC = entry + uint32(i)*isa.InstrBytes
			e := &m.FP
			top := e.Top()
			p1 := (top + 1) & 7
			a := e.Regs[top] // st0
			if e.Tag(top) != isa.TagValid {
				a = e.reconstruct(top)
			}
			b := e.Regs[p1] // st1
			if e.Tag(p1) != isa.TagValid {
				b = e.reconstruct(p1)
			}
			var r float64
			switch u.kind {
			case sbFaddp:
				r = b + a
			case sbFsubp:
				r = b - a
			case sbFmulp:
				r = b * a
			default:
				r = b / a
			}
			e.SetTag(top, isa.TagEmpty) // fpop
			e.SetTop(p1)
			e.Regs[p1] = r // fset(0, r)
			e.SetTag(p1, classify(r))
			e.FIP = m.PC

		case sbFchs, sbFabs, sbFsqrt:
			m.PC = entry + uint32(i)*isa.InstrBytes
			e := &m.FP
			top := e.Top()
			v := e.Regs[top]
			if e.Tag(top) != isa.TagValid {
				v = e.reconstruct(top)
			}
			switch u.kind {
			case sbFchs:
				v = -v
			case sbFabs:
				v = math.Abs(v)
			default:
				v = math.Sqrt(v)
			}
			e.Regs[top] = v
			e.SetTag(top, classify(v))
			e.FIP = m.PC
		case sbFxch:
			m.PC = entry + uint32(i)*isa.InstrBytes
			j := int(u.imm)
			a, b := m.fget(0), m.fget(j)
			m.fset(0, b)
			m.fset(j, a)

		case sbFcomp:
			e := &m.FP
			top := e.Top()
			p1 := (top + 1) & 7
			a := e.Regs[top]
			if e.Tag(top) != isa.TagValid {
				a = e.reconstruct(top)
			}
			b := e.Regs[p1]
			if e.Tag(p1) != isa.TagValid {
				b = e.reconstruct(p1)
			}
			e.SetTag(top, isa.TagEmpty) // fpop
			e.SetTag(p1, isa.TagEmpty)  // fpop
			e.SetTop((top + 2) & 7)
			m.Flags = 0
			switch {
			case math.IsNaN(a) || math.IsNaN(b):
				m.Flags |= isa.FlagUN
			case a == b:
				m.Flags |= isa.FlagZ
			case a < b:
				m.Flags |= isa.FlagLT | isa.FlagUL
			}
		case sbFxam:
			v := m.fget(0)
			m.Flags &^= isa.FlagZ | isa.FlagUN
			if math.IsNaN(v) {
				m.Flags |= isa.FlagZ | isa.FlagUN
			} else if math.IsInf(v, 0) {
				m.Flags |= isa.FlagZ
			}

		case sbFild:
			m.PC = entry + uint32(i)*isa.InstrBytes
			v := float64(int32(m.Regs[u.ra&7]))
			e := &m.FP
			top := (e.Top() - 1) & 7
			e.SetTop(top)
			e.Regs[top] = v
			e.SetTag(top, classify(v))
			e.FIP = m.PC
		case sbFist:
			v := m.fget(0)
			m.fpop()
			if math.IsNaN(v) || v >= math.MaxInt32 || v <= math.MinInt32-1 {
				m.Regs[u.rd&7] = 0x80000000
			} else {
				m.Regs[u.rd&7] = uint32(int32(v))
			}
			if u.rd == spByte {
				m.updateMinSP()
			}

		// Terminators: always the last uop of the span (the run-end
		// table guarantees it); each finalizes Instrs and PC.
		case sbJmp:
			m.Instrs += uint64(i) + 1
			m.PC = uint32(u.imm)
			return nil
		case sbBeq, sbBne, sbBlt, sbBge, sbBle, sbBgt, sbBltu, sbBgeu, sbBun:
			m.Instrs += uint64(i) + 1
			if sbBranchTaken(u.kind, m.Flags) {
				m.PC = uint32(u.imm)
			} else {
				m.PC = entry + uint32(i+1)*isa.InstrBytes
			}
			return nil
		case sbCall:
			if t := m.push(entry + uint32(i+1)*isa.InstrBytes); t != nil {
				return m.blockTrap(entry, i, t)
			}
			m.updateMinSP()
			m.Instrs += uint64(i) + 1
			m.PC = uint32(u.imm)
			return nil
		case sbCallr:
			if t := m.push(entry + uint32(i+1)*isa.InstrBytes); t != nil {
				return m.blockTrap(entry, i, t)
			}
			m.updateMinSP()
			m.Instrs += uint64(i) + 1
			// Read ra after the push, exactly as Step does: callr through
			// the stack pointer observes the decremented SP.
			m.PC = m.Regs[u.ra&7]
			return nil
		case sbRet:
			v, t := m.pop()
			if t != nil {
				return m.blockTrap(entry, i, t)
			}
			m.Instrs += uint64(i) + 1
			m.PC = v
			return nil
		case sbSys:
			m.Instrs += uint64(i) + 1
			if m.Handler == nil {
				m.PC = entry + uint32(i)*isa.InstrBytes
				return m.ill("no syscall handler")
			}
			m.PC = entry + uint32(i+1)*isa.InstrBytes // handler sees the resumption PC
			if t := m.Handler.Syscall(m, u.imm); t != nil {
				return t
			}
			m.updateMinSP()
			return nil
		}
	}
	m.Instrs += uint64(len(uops))
	m.PC = entry + uint32(len(uops))*isa.InstrBytes
	return nil
}

// sbBranchTaken mirrors Machine.branchTaken over the compiled kinds.
func sbBranchTaken(k sbKind, f uint32) bool {
	switch k {
	case sbBeq:
		return f&isa.FlagZ != 0
	case sbBne:
		return f&isa.FlagZ == 0
	case sbBlt:
		return f&isa.FlagLT != 0
	case sbBge:
		return f&isa.FlagLT == 0
	case sbBle:
		return f&(isa.FlagLT|isa.FlagZ) != 0
	case sbBgt:
		return f&(isa.FlagLT|isa.FlagZ) == 0
	case sbBltu:
		return f&isa.FlagUL != 0
	case sbBgeu:
		return f&isa.FlagUL == 0
	default: // sbBun
		return f&isa.FlagUN != 0
	}
}
