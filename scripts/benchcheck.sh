#!/bin/sh
# scripts/benchcheck.sh — benchmark regression check against the
# recorded reference in BENCH_vm.json.
#
# Re-runs the internal/vm benchmarks at a smoke-weight benchtime and
# warns when any ns/op figure regressed more than the threshold vs the
# recorded reference.  (A literal -benchtime 1x measures only harness
# overhead — 1 iteration of a 10ns benchmark reports ~30000 ns/op, and
# tiny fixed counts measure cache warm-up — so this uses a short
# time-based benchtime: still sub-second, but the numbers are real.
# The loose 25% default threshold absorbs the remaining noise.)
#
# With COUNT=N each benchmark runs N times and benchcmp keeps the
# minimum — the fastest run is the least disturbed by scheduler noise,
# which is what lets CI run this as a *blocking* gate at a tight
# threshold: `COUNT=5 scripts/benchcheck.sh 2` fails the pipeline if
# the telemetry-disabled interpreter got more than 2% slower than the
# recorded reference.
#
# Usage: scripts/benchcheck.sh [threshold-percent]
set -eu
cd "$(dirname "$0")/.."

THRESHOLD=${1:-25}
BENCHTIME=${BENCHTIME:-200ms}
COUNT=${COUNT:-1}
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

echo "== internal/vm benchmarks ($BENCHTIME x$COUNT, min kept) =="
go test -run '^$' -bench . -benchtime "$BENCHTIME" -count "$COUNT" ./internal/vm | tee "$OUT"

echo "== compare vs BENCH_vm.json (threshold ${THRESHOLD}%) =="
go run ./scripts/benchcmp -ref BENCH_vm.json -threshold "$THRESHOLD" < "$OUT"

# Campaign-level checkpointing and adaptive-sampling benchmarks
# (informational, never blocks).
# These run whole wavetoy campaigns (~0.5s per iteration) so they are far
# noisier than the interpreter microbenchmarks above; the comparison
# against BENCH_campaign.json is printed for the log but a regression
# here does not fail the script.  Skip entirely with CAMPAIGN=0.
if [ "${CAMPAIGN:-1}" != "0" ]; then
    echo "== campaign checkpointing + adaptive benchmarks (informational) =="
    CAMPOUT=$(mktemp)
    go test -run '^$' -bench 'BenchmarkCampaign(Scratch|Checkpointed|FixedN|Adaptive)$' \
        -benchtime "${CAMPAIGN_BENCHTIME:-3x}" -count "${CAMPAIGN_COUNT:-1}" . \
        | tee "$CAMPOUT"
    go run ./scripts/benchcmp -ref BENCH_campaign.json -threshold "$THRESHOLD" < "$CAMPOUT" \
        || echo "(campaign bench comparison is informational; not failing)"
    rm -f "$CAMPOUT"
fi
