package image

import (
	"testing"
	"testing/quick"
)

func testImage() *Image {
	im := &Image{
		Text:      make([]byte, 0x200),
		Data:      make([]byte, 0x80),
		BSSSize:   0x100,
		DataBase:  TextBase + 0x1000,
		BSSBase:   TextBase + 0x2000,
		HeapBase:  TextBase + 0x3000,
		HeapLimit: TextBase + 0x13000,
		StackSize: 0x10000,
		Entry:     TextBase,
		Symbols: []Symbol{
			{Name: "main", Kind: SymFunc, Owner: OwnerUser, Addr: TextBase, Size: 0x100},
			{Name: "MPI_Send", Kind: SymFunc, Owner: OwnerMPI, Addr: TextBase + 0x100, Size: 0x100},
			{Name: "gdata", Kind: SymData, Owner: OwnerUser, Addr: TextBase + 0x1000, Size: 0x40},
			{Name: "mdata", Kind: SymData, Owner: OwnerMPI, Addr: TextBase + 0x1040, Size: 0x40},
			{Name: "gbss", Kind: SymBSS, Owner: OwnerUser, Addr: TextBase + 0x2000, Size: 0x100},
		},
	}
	im.SortSymbols()
	return im
}

func TestFindSymbol(t *testing.T) {
	im := testImage()
	s, ok := im.FindSymbol(TextBase + 0x50)
	if !ok || s.Name != "main" {
		t.Fatalf("lookup mid-main: %+v ok=%v", s, ok)
	}
	s, ok = im.FindSymbol(TextBase + 0x1FF)
	if !ok || s.Name != "MPI_Send" {
		t.Fatalf("lookup last byte of MPI_Send: %+v ok=%v", s, ok)
	}
	if _, ok := im.FindSymbol(TextBase + 0x900); ok {
		t.Fatal("gap lookup should fail")
	}
	if _, ok := im.FindSymbol(0); ok {
		t.Fatal("below-text lookup should fail")
	}
}

func TestInUserText(t *testing.T) {
	im := testImage()
	if !im.InUserText(TextBase + 4) {
		t.Fatal("main must be user text")
	}
	if im.InUserText(TextBase + 0x104) {
		t.Fatal("MPI_Send must not be user text")
	}
	if im.InUserText(TextBase + 0x1000) {
		t.Fatal("data addresses are not text")
	}
}

func TestSymbolsOwnedBy(t *testing.T) {
	im := testImage()
	if got := im.SymbolsOwnedBy(OwnerUser, SymFunc); len(got) != 1 || got[0].Name != "main" {
		t.Fatalf("user funcs = %+v", got)
	}
	if got := im.SymbolsOwnedBy(OwnerMPI, SymData); len(got) != 1 || got[0].Name != "mdata" {
		t.Fatalf("mpi data = %+v", got)
	}
}

func TestSectionSizes(t *testing.T) {
	im := testImage()
	sizes := im.SectionSizes()
	if sizes[OwnerUser][SymFunc] != 0x100 || sizes[OwnerMPI][SymFunc] != 0x100 {
		t.Fatalf("text sizes: %+v", sizes)
	}
	if sizes[OwnerUser][SymBSS] != 0x100 {
		t.Fatalf("bss sizes: %+v", sizes)
	}
}

func TestValidateCatchesOverlaps(t *testing.T) {
	good := testImage()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	cases := []struct {
		name  string
		mutat func(*Image)
	}{
		{"entry outside text", func(im *Image) { im.Entry = 0 }},
		{"data overlaps text", func(im *Image) { im.DataBase = TextBase }},
		{"bss overlaps data", func(im *Image) { im.BSSBase = im.DataBase }},
		{"heap overlaps bss", func(im *Image) { im.HeapBase = im.BSSBase }},
		{"empty heap", func(im *Image) { im.HeapLimit = im.HeapBase }},
		{"heap into stack", func(im *Image) { im.HeapLimit = StackTop }},
		{"zero stack", func(im *Image) { im.StackSize = 0 }},
	}
	for _, c := range cases {
		im := testImage()
		c.mutat(im)
		if err := im.Validate(); err == nil {
			t.Errorf("%s: not caught", c.name)
		}
	}
}

func TestSegmentEnds(t *testing.T) {
	im := testImage()
	if im.TextEnd() != TextBase+0x200 {
		t.Fatal("TextEnd")
	}
	if im.DataEnd() != im.DataBase+0x80 {
		t.Fatal("DataEnd")
	}
	if im.BSSEnd() != im.BSSBase+0x100 {
		t.Fatal("BSSEnd")
	}
	if im.StackBase() != StackTop-0x10000 {
		t.Fatal("StackBase")
	}
}

func TestFindSymbolConsistentWithLinearScan(t *testing.T) {
	im := testImage()
	f := func(off uint32) bool {
		addr := TextBase + off%0x4000
		got, ok := im.FindSymbol(addr)
		// Linear reference scan.
		var want Symbol
		found := false
		for _, s := range im.Symbols {
			if addr >= s.Addr && addr < s.Addr+s.Size {
				want, found = s, true
			}
		}
		if ok != found {
			return false
		}
		return !ok || got.Name == want.Name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
