package vm

import (
	"sort"

	"mpifault/internal/abi"
)

// Allocator is the guest heap allocator — the analogue of the paper's
// malloc wrapper built on GNU libc's memory-allocation hooks (§3.2).
//
// Every chunk is preceded by an 8-byte header *stored in guest memory*:
// a 32-bit tag identifying the owner (user application or MPI library) and
// the 32-bit chunk size.  The fault injector scans these headers to find
// user-owned chunks, exactly as the paper's injector does; and because the
// headers live in guest memory, heap faults can corrupt them, in which
// case free() detects the inconsistency and aborts the process the way
// glibc's heap-corruption check would.
type Allocator struct {
	m         *Machine
	brk       uint32            // first never-used heap address
	free      []span            // sorted, coalesced free spans
	allocated map[uint32]uint32 // payload addr -> payload size

	// liveUser/liveMPI track currently allocated bytes per owner;
	// PeakUser records the "stable heap size" reported in Table 1.
	liveUser, liveMPI uint32
	PeakUser, PeakMPI uint32
}

type span struct {
	addr, size uint32
}

const chunkHeader = 8

func newAllocator(m *Machine) *Allocator {
	return &Allocator{
		m:         m,
		brk:       m.Image.HeapBase,
		allocated: make(map[uint32]uint32),
	}
}

func align8(v uint32) uint32 { return (v + 7) &^ 7 }

// Alloc carves a chunk of at least size bytes tagged with owner tag
// (abi.ChunkUser or abi.ChunkMPI) and returns the payload address, or 0 if
// the heap is exhausted.
func (a *Allocator) Alloc(size uint32, tag uint32) uint32 {
	if size == 0 {
		size = 1
	}
	need := align8(size) + chunkHeader

	// First fit over the free list.
	for i, s := range a.free {
		if s.size >= need {
			addr := s.addr
			if s.size == need {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = span{addr: s.addr + need, size: s.size - need}
			}
			return a.place(addr, need, tag)
		}
	}

	// Grow the break.
	if a.brk+need > a.m.Image.HeapLimit || a.brk+need < a.brk {
		return 0
	}
	addr := a.brk
	a.brk += need
	return a.place(addr, need, tag)
}

// place writes the guest-resident header and records the chunk.
func (a *Allocator) place(addr, need, tag uint32) uint32 {
	payload := addr + chunkHeader
	psize := need - chunkHeader
	a.m.RawWrite(addr, le32(tag))
	a.m.RawWrite(addr+4, le32(psize))
	a.allocated[payload] = psize
	switch tag {
	case abi.ChunkMPI:
		a.liveMPI += psize
		if a.liveMPI > a.PeakMPI {
			a.PeakMPI = a.liveMPI
		}
	default:
		a.liveUser += psize
		if a.liveUser > a.PeakUser {
			a.PeakUser = a.liveUser
		}
	}
	return payload
}

// Free releases the chunk whose payload starts at addr.  Freeing an
// address that was never allocated, or whose guest-resident header has
// been corrupted, raises SIGSEGV — the moral equivalent of glibc's
// "malloc(): corrupted chunk" abort.
func (a *Allocator) Free(addr uint32) *Trap {
	psize, ok := a.allocated[addr]
	if !ok {
		return &Trap{Kind: TrapSegv, PC: a.m.PC, Addr: addr, Msg: "free of unallocated chunk"}
	}
	hdr, ok := a.m.RawRead(addr-chunkHeader, chunkHeader)
	if !ok {
		return &Trap{Kind: TrapSegv, PC: a.m.PC, Addr: addr, Msg: "free: unmapped header"}
	}
	tag := readLE32(hdr)
	gotSize := readLE32(hdr[4:])
	if (tag != abi.ChunkUser && tag != abi.ChunkMPI) || gotSize != psize {
		return &Trap{Kind: TrapSegv, PC: a.m.PC, Addr: addr, Msg: "free: corrupted chunk header"}
	}
	delete(a.allocated, addr)
	switch tag {
	case abi.ChunkMPI:
		a.liveMPI -= psize
	default:
		a.liveUser -= psize
	}
	a.insertFree(span{addr: addr - chunkHeader, size: align8(psize) + chunkHeader})
	return nil
}

// insertFree adds s to the sorted free list, coalescing neighbours.
func (a *Allocator) insertFree(s span) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > s.addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].size == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// Chunk is the injector's view of one allocated chunk.
type Chunk struct {
	Payload uint32 // payload start address
	Size    uint32 // payload size in bytes
	Tag     uint32 // owner tag as read from guest memory
	Valid   bool   // header magic verified
}

// Chunks returns a snapshot of all allocated chunks sorted by address,
// with tags read from the (possibly corrupted) guest-resident headers —
// this is the scan the paper's heap injector performs when it "looks for
// any memory chunk marked as user".
func (a *Allocator) Chunks() []Chunk {
	out := make([]Chunk, 0, len(a.allocated))
	for payload, size := range a.allocated {
		c := Chunk{Payload: payload, Size: size}
		if hdr, ok := a.m.RawRead(payload-chunkHeader, chunkHeader); ok {
			c.Tag = readLE32(hdr)
			c.Valid = c.Tag == abi.ChunkUser || c.Tag == abi.ChunkMPI
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Payload < out[j].Payload })
	return out
}

// LiveBytes returns currently allocated payload bytes for the given tag.
func (a *Allocator) LiveBytes(tag uint32) uint32 {
	if tag == abi.ChunkMPI {
		return a.liveMPI
	}
	return a.liveUser
}

// Brk returns the current top of the heap.
func (a *Allocator) Brk() uint32 { return a.brk }

func le32(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

func readLE32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
