package cluster

import (
	"strings"
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/isa"
	"mpifault/internal/vm"
)

// TestMessageOrderingSameEnvelope: two sends with the same (src, tag)
// must be received in send order (MPI non-overtaking rule), including
// when the first parks in the unexpected queue.
func TestMessageOrderingSameEnvelope(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("v1", 4)
		m.BSS("v2", 4)
		m.BSS("buf", 4)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		odd, done := f.NewLabel(), f.NewLabel()
		f.Cmpi(isa.R0, 0)
		f.Bne(odd)
		// rank 0: send 111 then 222 with identical envelopes, then a
		// barrier-ish ping so rank 1 has both parked before receiving.
		f.Movi(isa.R1, 111)
		f.StSym("buf", 0, isa.R1)
		f.CallArgs("MPI_Send", asm.Sym("buf"), asm.Imm(1), asm.Imm(abi.DTInt32),
			asm.Imm(1), asm.Imm(4), asm.Imm(abi.CommWorld))
		f.Movi(isa.R1, 222)
		f.StSym("buf", 0, isa.R1)
		f.CallArgs("MPI_Send", asm.Sym("buf"), asm.Imm(1), asm.Imm(abi.DTInt32),
			asm.Imm(1), asm.Imm(4), asm.Imm(abi.CommWorld))
		f.Jmp(done)
		f.Label(odd)
		// rank 1: a barrier ensures both messages are parked, then two
		// receives must return them in send order.
		f.CallArgs("MPI_Barrier", asm.Imm(abi.CommWorld))
		f.CallArgs("MPI_Recv", asm.Sym("v1"), asm.Imm(1), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Imm(4), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.CallArgs("MPI_Recv", asm.Sym("v2"), asm.Imm(1), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Imm(4), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.LdSym(isa.R1, "v1", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.LdSym(isa.R1, "v2", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.Label(done)
		// rank 0 joins the barrier after its sends.
		f.LdSym(isa.R0, "buf", 0) // harmless load
		f.Cmpi(isa.R0, 222)
		skipBar := f.NewLabel()
		f.Bne(skipBar)
		f.CallArgs("MPI_Barrier", asm.Imm(abi.CommWorld))
		f.Label(skipBar)
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 2, Budget: 20_000_000})
	mustExitClean(t, res)
	if got := string(res.Stdout[1]); got != "111222" {
		t.Fatalf("messages reordered: %q", got)
	}
}

// TestTruncationIsFatal: a message longer than the posted buffer is an
// MPICH-fatal error (Crash), not silent truncation.
func TestTruncationIsFatal(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("big", 64)
		m.BSS("small", 8)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		odd := f.NewLabel()
		done := f.NewLabel()
		f.Cmpi(isa.R0, 0)
		f.Bne(odd)
		f.CallArgs("MPI_Send", asm.Sym("big"), asm.Imm(16), asm.Imm(abi.DTInt32),
			asm.Imm(1), asm.Imm(1), asm.Imm(abi.CommWorld))
		f.Jmp(done)
		f.Label(odd)
		f.CallArgs("MPI_Recv", asm.Sym("small"), asm.Imm(2), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Imm(1), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.Label(done)
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 2, Budget: 20_000_000})
	tr := res.Ranks[1].Trap
	if tr == nil || tr.Kind != vm.TrapMPIFatal || !strings.Contains(tr.Msg, "truncated") {
		t.Fatalf("trap = %v", tr)
	}
}

// TestSelfSendLoopback: a rank may send to itself if the receive is
// posted (or the message is eager and buffered).
func TestSelfSendLoopback(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("out", 4)
		m.BSS("in", 4)
		f.CallArgs("MPI_Init")
		f.Movi(isa.R1, 777)
		f.StSym("out", 0, isa.R1)
		f.CallArgs("MPI_Send", asm.Sym("out"), asm.Imm(1), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Imm(2), asm.Imm(abi.CommWorld))
		f.CallArgs("MPI_Recv", asm.Sym("in"), asm.Imm(1), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Imm(2), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.LdSym(isa.R1, "in", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 1, Budget: 10_000_000})
	mustExitClean(t, res)
	if got := string(res.Stdout[0]); got != "777" {
		t.Fatalf("self-send echoed %q", got)
	}
}

// TestLargeSelfSendStaysEager: self-sends must not rendezvous against
// the sender itself, whatever their size.
func TestLargeSelfSendStaysEager(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("out", 8192)
		m.BSS("in", 8192)
		f.CallArgs("MPI_Init")
		f.Movi(isa.R1, 31)
		f.StSym("out", 0, isa.R1)
		f.CallArgs("MPI_Send", asm.Sym("out"), asm.Imm(2048), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Imm(2), asm.Imm(abi.CommWorld))
		f.CallArgs("MPI_Recv", asm.Sym("in"), asm.Imm(2048), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Imm(2), asm.Imm(abi.CommWorld), asm.Imm(0))
		f.LdSym(isa.R1, "in", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 1, Budget: 20_000_000})
	mustExitClean(t, res)
	if got := string(res.Stdout[0]); got != "31" {
		t.Fatalf("large self-send echoed %q", got)
	}
}

// TestZeroCountMessage: zero-element messages are legal and match.
func TestZeroCountMessage(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("buf", 4)
		m.BSS("status", 12)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		odd, done := f.NewLabel(), f.NewLabel()
		f.Cmpi(isa.R0, 0)
		f.Bne(odd)
		f.CallArgs("MPI_Send", asm.Sym("buf"), asm.Imm(0), asm.Imm(abi.DTF64),
			asm.Imm(1), asm.Imm(6), asm.Imm(abi.CommWorld))
		f.Jmp(done)
		f.Label(odd)
		f.CallArgs("MPI_Recv", asm.Sym("buf"), asm.Imm(0), asm.Imm(abi.DTF64),
			asm.Imm(0), asm.Imm(6), asm.Imm(abi.CommWorld), asm.Sym("status"))
		f.LdSym(isa.R1, "status", 8) // count = 0
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.Label(done)
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 2, Budget: 10_000_000})
	mustExitClean(t, res)
	if got := string(res.Stdout[1]); got != "0" {
		t.Fatalf("zero-count status = %q", got)
	}
}

// TestEagerRendezvousBoundary: payloads at and just above the eager
// threshold both arrive intact.
func TestEagerRendezvousBoundary(t *testing.T) {
	// Default threshold is 1024 bytes: 128 f64 = exactly eager,
	// 129 f64 = rendezvous.
	for _, words := range []int32{256, 257} {
		words := words
		im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
			m.BSS("sb", 2048+64)
			m.BSS("rb", 2048+64)
			f.CallArgs("MPI_Init")
			f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
			odd, done := f.NewLabel(), f.NewLabel()
			f.Cmpi(isa.R0, 0)
			f.Bne(odd)
			f.Movi(isa.R1, 12345)
			f.StSym("sb", (words-1)*4, isa.R1)
			f.CallArgs("MPI_Send", asm.Sym("sb"), asm.Imm(words), asm.Imm(abi.DTInt32),
				asm.Imm(1), asm.Imm(8), asm.Imm(abi.CommWorld))
			f.Jmp(done)
			f.Label(odd)
			f.CallArgs("MPI_Recv", asm.Sym("rb"), asm.Imm(words), asm.Imm(abi.DTInt32),
				asm.Imm(0), asm.Imm(8), asm.Imm(abi.CommWorld), asm.Imm(0))
			f.LdSym(isa.R1, "rb", (words-1)*4)
			f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
			f.Label(done)
			f.CallArgs("MPI_Finalize")
		})
		res := Run(Job{Image: im, Size: 2, Budget: 20_000_000})
		mustExitClean(t, res)
		if got := string(res.Stdout[1]); got != "12345" {
			t.Fatalf("words=%d: last element %q", words, got)
		}
	}
}

// TestAnySourceAnyTag: wildcards receive from whoever sends first and
// the status reports the true envelope.
func TestAnySourceAnyTag(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("buf", 4)
		m.BSS("status", 12)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		recvr, done := f.NewLabel(), f.NewLabel()
		f.Cmpi(isa.R0, 0)
		f.Beq(recvr)
		// senders: rank r sends its rank with tag 100+r
		f.StSym("buf", 0, isa.R0)
		f.Addi(isa.R1, isa.R0, 100)
		f.CallArgs("MPI_Send", asm.Sym("buf"), asm.Imm(1), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Reg(isa.R1), asm.Imm(abi.CommWorld))
		f.Jmp(done)
		f.Label(recvr)
		// receiver: three wildcard receives; sum of values = 1+2+3.
		f.Movi(isa.R4, 0)
		loop, lend := f.NewLabel(), f.NewLabel()
		f.Label(loop)
		f.Cmpi(isa.R4, 3)
		f.Bge(lend)
		f.Push(isa.R4)
		f.CallArgs("MPI_Recv", asm.Sym("buf"), asm.Imm(1), asm.Imm(abi.DTInt32),
			asm.Imm(abi.AnySource), asm.Imm(abi.AnyTag), asm.Imm(abi.CommWorld), asm.Sym("status"))
		// status cross-check: tag - source must be 100.
		f.LdSym(isa.R1, "status", 0)
		f.LdSym(isa.R2, "status", 4)
		f.Sub(isa.R2, isa.R2, isa.R1)
		f.Cmpi(isa.R2, 100)
		okc := f.NewLabel()
		f.Beq(okc)
		f.Movi(isa.R0, 9)
		f.Sys(abi.SysExit) // mismatch: fail loudly
		f.Label(okc)
		f.Pop(isa.R4)
		f.Addi(isa.R4, isa.R4, 1)
		f.Jmp(loop)
		f.Label(lend)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Imm(1))
		f.Label(done)
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 4, Budget: 20_000_000})
	mustExitClean(t, res)
	if got := string(res.Stdout[0]); got != "1" {
		t.Fatalf("wildcard receiver printed %q", got)
	}
}

// TestPMPIHookObservesCalls: the profiling-interface hook sees every
// API-layer entry, as the paper's PMPI wrappers do.
func TestPMPIHookObservesCalls(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Barrier", asm.Imm(abi.CommWorld))
		f.CallArgs("MPI_Finalize")
	})
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	calls := map[string]int{}
	res := Run(Job{Image: im, Size: 2, Budget: 10_000_000,
		PMPIHook: func(rank int, fn string) {
			<-mu
			calls[fn]++
			mu <- struct{}{}
		}})
	mustExitClean(t, res)
	if calls["MPI_Init"] != 2 || calls["MPI_Barrier"] != 2 || calls["MPI_Finalize"] != 2 {
		t.Fatalf("hook observed %v", calls)
	}
}

// TestFileStoreMultipleFiles: named output files are collected per name.
func TestFileStoreMultipleFiles(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.DataString("fa", "alpha.out")
		m.DataString("fb", "beta.out")
		m.DataString("da", "AAAA")
		m.DataString("db", "BB")
		f.CallArgs("open", asm.Sym("fa"), asm.Imm(9))
		f.Push(isa.R0)
		f.CallArgs("open", asm.Sym("fb"), asm.Imm(8))
		f.Movr(isa.R3, isa.R0)
		f.Pop(isa.R2)
		f.Push(isa.R3)
		f.CallArgs("print", asm.Reg(isa.R2), asm.Sym("da"), asm.Imm(4))
		f.Pop(isa.R3)
		f.CallArgs("print", asm.Reg(isa.R3), asm.Sym("db"), asm.Imm(2))
	})
	res := Run(Job{Image: im, Size: 1, Budget: 10_000_000})
	mustExitClean(t, res)
	if string(res.Files["alpha.out"]) != "AAAA" || string(res.Files["beta.out"]) != "BB" {
		t.Fatalf("files = %q", res.Files)
	}
}

// TestCanonicalOutputIncludesFiles: the comparison blob covers console
// and files, in deterministic order.
func TestCanonicalOutputIncludesFiles(t *testing.T) {
	a := &Result{
		Stdout: [][]byte{[]byte("con")},
		Files:  map[string][]byte{"z.out": []byte("Z"), "a.out": []byte("A")},
	}
	b := &Result{
		Stdout: [][]byte{[]byte("con")},
		Files:  map[string][]byte{"a.out": []byte("A"), "z.out": []byte("Z")},
	}
	if string(a.CanonicalOutput()) != string(b.CanonicalOutput()) {
		t.Fatal("canonical output depends on map order")
	}
	if !strings.Contains(string(a.CanonicalOutput()), "a.out") {
		t.Fatal("file names missing from canonical output")
	}
}
