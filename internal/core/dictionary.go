// Package core implements the paper's primary contribution: the software
// fault injector (SWIFI) for MPI applications and the campaign machinery
// around it.
//
// Fault models, following §3:
//
//   - register faults: single bit flips in the integer register file
//     (GPRs, PC, FLAGS — the paper's "regular registers") or the
//     floating-point environment (eight data registers plus CWD, SWD,
//     TWD, FIP, FCS, FOO, FOS);
//   - memory faults: single bit flips in the text, data, BSS, heap or
//     stack of one MPI process, restricted to user-application memory via
//     a fault dictionary (static regions), a tagged-chunk scan (heap) and
//     a frame-pointer walk (stack);
//   - message faults: a single bit flip in the incoming Channel-level
//     byte stream of one rank, triggered by a received-volume counter.
//
// Each injection is the analogue of one ptrace stop-modify-resume cycle:
// the virtual machine halts at a chosen instruction count, the fault is
// applied to its architectural state, and execution resumes.
package core

import (
	"mpifault/internal/image"
	"mpifault/internal/rng"
)

// Dictionary is the paper's fault dictionary: the user-application
// address ranges of the static sections, with every MPI-library symbol
// removed (§3.2).
type Dictionary struct {
	Text []image.Symbol
	Data []image.Symbol
	BSS  []image.Symbol

	textBytes, dataBytes, bssBytes uint64
}

// NewDictionary scans the image's symbol table, keeping only user-owned
// symbols, exactly as the paper builds its {symbolic name, address} lists
// from the application and library binaries.
func NewDictionary(im *image.Image) *Dictionary {
	d := &Dictionary{}
	for _, s := range im.Symbols {
		if s.Owner != image.OwnerUser || s.Size == 0 {
			continue
		}
		switch s.Kind {
		case image.SymFunc:
			d.Text = append(d.Text, s)
			d.textBytes += uint64(s.Size)
		case image.SymData:
			d.Data = append(d.Data, s)
			d.dataBytes += uint64(s.Size)
		case image.SymBSS:
			d.BSS = append(d.BSS, s)
			d.bssBytes += uint64(s.Size)
		}
	}
	return d
}

// randAddr picks a byte address uniformly over the listed symbols.
func randAddr(syms []image.Symbol, total uint64, r *rng.Rand) (uint32, bool) {
	if total == 0 {
		return 0, false
	}
	off := r.Uint64n(total)
	for _, s := range syms {
		if off < uint64(s.Size) {
			return s.Addr + uint32(off), true
		}
		off -= uint64(s.Size)
	}
	return 0, false
}

// RandText returns a uniformly chosen user text byte address.
func (d *Dictionary) RandText(r *rng.Rand) (uint32, bool) {
	return randAddr(d.Text, d.textBytes, r)
}

// RandData returns a uniformly chosen user data byte address.
func (d *Dictionary) RandData(r *rng.Rand) (uint32, bool) {
	return randAddr(d.Data, d.dataBytes, r)
}

// RandBSS returns a uniformly chosen user BSS byte address.
func (d *Dictionary) RandBSS(r *rng.Rand) (uint32, bool) {
	return randAddr(d.BSS, d.bssBytes, r)
}

// Sizes returns the user-owned byte totals per static section.
func (d *Dictionary) Sizes() (text, data, bss uint64) {
	return d.textBytes, d.dataBytes, d.bssBytes
}
