// Command imginfo is the objdump/nm analogue for guest images — the
// paper uses exactly those tools to measure text/data/BSS sizes (§4.2)
// and to build the fault dictionary's symbol lists (§3.2).
//
// Usage:
//
//	imginfo -app wavetoy                 # layout + symbol table
//	imginfo -app minimd -disasm main     # disassemble one function
//	imginfo -app minicam -dict           # dump the fault dictionary view
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

func main() {
	app := flag.String("app", "wavetoy", "application image to inspect")
	disasm := flag.String("disasm", "", "disassemble the named function")
	dict := flag.Bool("dict", false, "show the fault-dictionary (user-only) totals")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("imginfo: ")

	a, err := apps.Get(*app)
	if err != nil {
		log.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		log.Fatal(err)
	}

	if *disasm != "" {
		s, ok := im.Lookup(*disasm)
		if !ok || s.Kind != image.SymFunc {
			log.Fatalf("no function %q", *disasm)
		}
		resolve := func(addr uint32) string {
			t, ok := im.FindSymbol(addr)
			if !ok {
				return ""
			}
			if t.Addr == addr {
				return t.Name
			}
			return fmt.Sprintf("%s+0x%x", t.Name, addr-t.Addr)
		}
		fmt.Printf("%s <%s> (%d bytes, %s):\n", *app, s.Name, s.Size, s.Owner)
		for off := uint32(0); off < s.Size; off += isa.InstrBytes {
			in := isa.Decode(im.Text[s.Addr-image.TextBase+off:])
			fmt.Printf("  %08x: %s\n", s.Addr+off, in.Disasm(resolve))
		}
		return
	}

	fmt.Printf("image %s (stands in for %s)\n", a.Name, a.Paper)
	fmt.Printf("  entry      0x%08x\n", im.Entry)
	fmt.Printf("  text       0x%08x - 0x%08x  (%d bytes)\n", image.TextBase, im.TextEnd(), len(im.Text))
	fmt.Printf("  data       0x%08x - 0x%08x  (%d bytes)\n", im.DataBase, im.DataEnd(), len(im.Data))
	fmt.Printf("  bss        0x%08x - 0x%08x  (%d bytes)\n", im.BSSBase, im.BSSEnd(), im.BSSSize)
	fmt.Printf("  heap       0x%08x - 0x%08x  (%d bytes max)\n", im.HeapBase, im.HeapLimit, im.HeapLimit-im.HeapBase)
	fmt.Printf("  stack      0x%08x - 0x%08x  (%d bytes)\n", im.StackBase(), image.StackTop, im.StackSize)

	sizes := im.SectionSizes()
	fmt.Printf("\nper-owner section bytes (the paper's objdump/nm measurement):\n")
	for _, owner := range []image.Owner{image.OwnerUser, image.OwnerMPI} {
		fmt.Printf("  %-5s text %7d  data %6d  bss %7d\n", owner,
			sizes[owner][image.SymFunc], sizes[owner][image.SymData], sizes[owner][image.SymBSS])
	}

	if *dict {
		d := core.NewDictionary(im)
		text, data, bss := d.Sizes()
		fmt.Printf("\nfault dictionary (user symbols only, MPI removed):\n")
		fmt.Printf("  text targets %d bytes across %d symbols\n", text, len(d.Text))
		fmt.Printf("  data targets %d bytes across %d symbols\n", data, len(d.Data))
		fmt.Printf("  bss  targets %d bytes across %d symbols\n", bss, len(d.BSS))
		return
	}

	syms := append([]image.Symbol(nil), im.Symbols...)
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })
	fmt.Printf("\nsymbol table (%d symbols):\n", len(syms))
	for _, s := range syms {
		fmt.Printf("  %08x %7d %-4s %-4s %s (%s)\n",
			s.Addr, s.Size, s.Kind, s.Owner, s.Name, s.Module)
	}
}
