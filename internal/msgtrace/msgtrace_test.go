package msgtrace

import (
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/cluster"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/mpi"
	"mpifault/internal/vm"
)

func dg(op string, peer, tag int32, bytes uint32, hash, instrs uint64) Digest {
	return Digest{Op: op, Peer: peer, Tag: tag, Bytes: bytes, Hash: hash, Instrs: instrs}
}

func TestDigestEqualIgnoresInstrs(t *testing.T) {
	a := dg("MPI_Send", 1, 7, 4, 99, 1000)
	b := dg("MPI_Send", 1, 7, 4, 99, 2000)
	if !a.Equal(b) {
		t.Error("digests differing only in Instrs must compare equal")
	}
	if a.Equal(dg("MPI_Send", 1, 7, 4, 98, 1000)) {
		t.Error("payload-hash difference not detected")
	}
}

func TestTraceHashIgnoresInstrsButNotContent(t *testing.T) {
	base := &Trace{Ranks: [][]Digest{
		{dg("MPI_Send", 1, 7, 4, 11, 100)},
		{dg("MPI_Recv", 0, 7, 4, 11, 200)},
	}}
	same := &Trace{Ranks: [][]Digest{
		{dg("MPI_Send", 1, 7, 4, 11, 999)},
		{dg("MPI_Recv", 0, 7, 4, 11, 888)},
	}}
	if base.Hash() != same.Hash() {
		t.Error("instruction stamps must not perturb the trace hash")
	}
	diff := &Trace{Ranks: [][]Digest{
		{dg("MPI_Send", 1, 7, 4, 12, 100)},
		{dg("MPI_Recv", 0, 7, 4, 11, 200)},
	}}
	if base.Hash() == diff.Hash() {
		t.Error("payload-hash change must change the trace hash")
	}
	if base.Messages() != 2 {
		t.Errorf("Messages() = %d, want 2", base.Messages())
	}
}

func TestDiffFindsFirstMismatch(t *testing.T) {
	golden := &Trace{Ranks: [][]Digest{
		{dg("MPI_Send", 1, 7, 4, 11, 0), dg("MPI_Send", 1, 7, 4, 12, 0)},
		{dg("MPI_Recv", 0, 7, 4, 11, 0), dg("MPI_Recv", 0, 7, 4, 12, 0)},
	}}
	obs := &Trace{Ranks: [][]Digest{
		{dg("MPI_Send", 1, 7, 4, 11, 0), dg("MPI_Send", 1, 7, 4, 0xBAD, 3141)},
		{dg("MPI_Recv", 0, 7, 4, 11, 0), dg("MPI_Recv", 0, 7, 4, 0xBAD, 0)},
	}}
	d := Diff(golden, obs)
	if d == nil {
		t.Fatal("divergence not found")
	}
	if d.Rank != 0 || d.MsgIndex != 1 || d.Kind != KindMismatch {
		t.Fatalf("divergence = %+v, want rank 0 msg 1 mismatch", d)
	}
	if d.Instrs != 3141 {
		t.Errorf("Instrs = %d, want the observed event's stamp", d.Instrs)
	}
	if d.Golden == "" || d.Observed == "" {
		t.Error("mismatch must render both digests")
	}
	if Diff(golden, golden) != nil {
		t.Error("identical traces must not diverge")
	}
}

func TestDiffTruncationAndExtra(t *testing.T) {
	golden := &Trace{Ranks: [][]Digest{
		{dg("MPI_Send", 1, 7, 4, 11, 0), dg("MPI_Send", 1, 7, 4, 12, 0)},
	}}
	short := &Trace{Ranks: [][]Digest{
		{dg("MPI_Send", 1, 7, 4, 11, 500)},
	}}
	d := Diff(golden, short)
	if d == nil || d.Kind != KindMissing || d.MsgIndex != 1 || d.Instrs != 500 {
		t.Fatalf("truncation divergence = %+v", d)
	}
	if d.Golden == "" || d.Observed != "" {
		t.Errorf("missing divergence renders only the golden digest: %+v", d)
	}
	long := &Trace{Ranks: [][]Digest{
		{dg("MPI_Send", 1, 7, 4, 11, 0), dg("MPI_Send", 1, 7, 4, 12, 0),
			dg("MPI_Send", 1, 7, 4, 13, 0)},
	}}
	d = Diff(golden, long)
	if d == nil || d.Kind != KindExtra || d.MsgIndex != 2 {
		t.Fatalf("extra divergence = %+v", d)
	}
}

func TestDiffPrefersActiveDivergenceOverTruncation(t *testing.T) {
	// Rank 0's stream is truncated at index 0 (teardown collateral);
	// rank 1 actively produced different content at index 1.  The
	// mismatch implicates the faulty rank.
	golden := &Trace{Ranks: [][]Digest{
		{dg("MPI_Recv", 1, 7, 4, 11, 0)},
		{dg("MPI_Send", 0, 7, 4, 11, 0), dg("MPI_Send", 0, 8, 4, 12, 0)},
	}}
	obs := &Trace{Ranks: [][]Digest{
		{},
		{dg("MPI_Send", 0, 7, 4, 11, 0), dg("MPI_Send", 0, 8, 4, 0xBAD, 0)},
	}}
	d := Diff(golden, obs)
	if d == nil || d.Rank != 1 || d.Kind != KindMismatch {
		t.Fatalf("divergence = %+v, want the rank-1 mismatch", d)
	}
}

func TestRecorderResetKeepsWorldSize(t *testing.T) {
	rec := NewRecorder(2)
	w := mpi.NewWorld(2, mpi.Config{})
	rec.Attach(w.Proc(0))
	w.Proc(0).TraceHook(mpi.CommOp{Rank: 0, Fn: "MPI_Send", Peer: 1, Bytes: 4})
	if rec.Trace().Messages() != 1 {
		t.Fatal("event not recorded")
	}
	rec.Reset(2)
	if rec.Trace().Messages() != 0 {
		t.Fatal("Reset did not clear the streams")
	}
	rec.Reset(3)
	if len(rec.Trace().Ranks) != 3 {
		t.Fatal("Reset did not resize for a new world")
	}
}

// buildWildcard links a 2-rank program: rank 1 sends two distinct
// messages (tags 5 then 9) to rank 0, which receives both through
// MPI_ANY_SOURCE/MPI_ANY_TAG.  The digest stream must record the
// matched envelope, not the wildcards.
func buildWildcard(t *testing.T) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.BSS("sendbuf", 4)
	m.BSS("recvbuf", 4)

	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	sender, done := f.NewLabel(), f.NewLabel()
	f.Cmpi(isa.R0, 0)
	f.Bne(sender)
	f.CallArgs("MPI_Recv", asm.Sym("recvbuf"), asm.Imm(1), asm.Imm(abi.DTInt32),
		asm.Imm(abi.AnySource), asm.Imm(abi.AnyTag), asm.Imm(abi.CommWorld), asm.Imm(0))
	f.CallArgs("MPI_Recv", asm.Sym("recvbuf"), asm.Imm(1), asm.Imm(abi.DTInt32),
		asm.Imm(abi.AnySource), asm.Imm(abi.AnyTag), asm.Imm(abi.CommWorld), asm.Imm(0))
	f.Jmp(done)
	f.Label(sender)
	f.Movi(isa.R1, 0x11)
	f.StSym("sendbuf", 0, isa.R1)
	f.CallArgs("MPI_Send", asm.Sym("sendbuf"), asm.Imm(1), asm.Imm(abi.DTInt32),
		asm.Imm(0), asm.Imm(5), asm.Imm(abi.CommWorld))
	f.Movi(isa.R1, 0x22)
	f.StSym("sendbuf", 0, isa.R1)
	f.CallArgs("MPI_Send", asm.Sym("sendbuf"), asm.Imm(1), asm.Imm(abi.DTInt32),
		asm.Imm(0), asm.Imm(9), asm.Imm(abi.CommWorld))
	f.Label(done)
	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

func runTraced(t *testing.T, im *image.Image) *Trace {
	t.Helper()
	rec := NewRecorder(2)
	res := cluster.Run(cluster.Job{
		Image: im, Size: 2, Budget: 1_000_000,
		Setup: func(rank int, m *vm.Machine, p *mpi.Proc) { rec.Attach(p) },
	})
	if res.HangDetected {
		t.Fatalf("unexpected hang: %s", res.HangCause)
	}
	for r, rr := range res.Ranks {
		if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit || rr.Trap.Code != 0 {
			t.Fatalf("rank %d trap = %+v", r, rr.Trap)
		}
	}
	return rec.Trace()
}

func TestWildcardRecvDigestsMatchedEnvelope(t *testing.T) {
	im := buildWildcard(t)
	tr := runTraced(t, im)

	r0 := tr.Ranks[0]
	if len(r0) != 2 {
		t.Fatalf("rank 0 recorded %d digests, want 2: %v", len(r0), r0)
	}
	for i, want := range []int32{5, 9} {
		d := r0[i]
		if d.Op != "MPI_Recv" {
			t.Errorf("digest %d op = %q", i, d.Op)
		}
		if d.Peer != 1 {
			t.Errorf("digest %d peer = %d, want the matched sender 1 (not AnySource)", i, d.Peer)
		}
		if d.Tag != want {
			t.Errorf("digest %d tag = %d, want the matched tag %d (not AnyTag)", i, d.Tag, want)
		}
		if d.Bytes != 4 {
			t.Errorf("digest %d bytes = %d, want 4", i, d.Bytes)
		}
	}
	// The two receives carried different payloads: hashes must differ
	// and match the corresponding send-side hashes.
	if r0[0].Hash == r0[1].Hash {
		t.Error("distinct payloads hashed identically")
	}
	r1 := tr.Ranks[1]
	if len(r1) != 2 {
		t.Fatalf("rank 1 recorded %d digests, want 2: %v", len(r1), r1)
	}
	for i := range r1 {
		if r1[i].Op != "MPI_Send" || r1[i].Peer != 0 {
			t.Errorf("send digest %d = %+v", i, r1[i])
		}
		if r1[i].Hash != r0[i].Hash {
			t.Errorf("send/recv hash mismatch at %d: %016x vs %016x",
				i, r1[i].Hash, r0[i].Hash)
		}
	}

	// Determinism: a second run records a hash-identical trace, and the
	// diff finds no divergence.
	tr2 := runTraced(t, im)
	if tr.Hash() != tr2.Hash() {
		t.Errorf("trace hash not reproducible: %016x vs %016x", tr.Hash(), tr2.Hash())
	}
	if d := Diff(tr, tr2); d != nil {
		t.Errorf("identical runs diverged: %+v", d)
	}
}
