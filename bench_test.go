// Package repro_test is the benchmark harness: one benchmark per table
// and figure of the paper, plus micro-benchmarks of the substrates and
// ablation benchmarks for the design choices called out in DESIGN.md.
//
// The per-table benchmarks run reduced campaigns (a handful of
// injections per region) so `go test -bench=.` finishes in minutes; the
// full-scale regeneration, with paper-sized sample counts, is
// `go run ./cmd/faultcampaign -n 500` (Tables 2-4),
// `go run ./cmd/profileapps` (Table 1) and
// `go run ./cmd/memtrace` (Tables 5-7).  Benchmarks report the headline
// quantity of their table as a custom metric, so shape regressions are
// visible in benchmark diffs.
package repro_test

import (
	"sync"
	"testing"
	"time"

	"mpifault/internal/abi"
	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/asm"
	"mpifault/internal/classify"
	"mpifault/internal/cluster"
	"mpifault/internal/core"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/mpi"
	"mpifault/internal/profile"
	"mpifault/internal/progress"
	"mpifault/internal/rng"
	"mpifault/internal/sampling"
	"mpifault/internal/trace"
	"mpifault/internal/vm"
)

var (
	imageCache   = map[string]*image.Image{}
	imageCacheMu sync.Mutex
)

func builtApp(b *testing.B, name string) (*image.Image, apps.Config) {
	b.Helper()
	a, err := apps.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	imageCacheMu.Lock()
	defer imageCacheMu.Unlock()
	if im, ok := imageCache[name]; ok {
		return im, a.Default
	}
	im, err := a.Build(a.Default)
	if err != nil {
		b.Fatal(err)
	}
	imageCache[name] = im
	return im, a.Default
}

// --- Table 1: per-process profiles ---

func BenchmarkTable1Profiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var camHeader float64
		for _, name := range []string{"wavetoy", "minimd", "minicam"} {
			im, cfg := builtApp(b, name)
			p, err := profile.Measure(name, im, cfg.Ranks, mpi.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if name == "minicam" {
				camHeader = p.HeaderPct
			}
		}
		b.ReportMetric(camHeader, "cam-header-%")
	}
}

// --- Tables 2-4: fault-injection campaigns ---

func benchCampaign(b *testing.B, name string, injections int) {
	im, cfg := builtApp(b, name)
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			Image: im, Ranks: cfg.Ranks,
			Injections: injections, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		reg, _ := res.Tally(core.RegionRegularReg)
		msg, _ := res.Tally(core.RegionMessage)
		b.ReportMetric(reg.ErrorRate(), "reg-error-%")
		b.ReportMetric(msg.ErrorRate(), "msg-error-%")
	}
}

// BenchmarkCampaign is the macro benchmark for the execution-acceleration
// layer: a fixed-seed reduced campaign (all eight regions) over wavetoy.
// Identical seeds make the before/after numbers in BENCH_vm.json directly
// comparable — and the tallies must be bit-identical across the
// predecode/COW optimisation.
func BenchmarkCampaign(b *testing.B) {
	im, cfg := builtApp(b, "wavetoy")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			Image: im, Ranks: cfg.Ranks,
			Injections: 4, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		reg, _ := res.Tally(core.RegionRegularReg)
		b.ReportMetric(reg.ErrorRate(), "reg-error-%")
	}
}

// BenchmarkCampaignScratch / BenchmarkCampaignCheckpointed measure the
// golden-run checkpointing optimization: the identical fixed-seed
// campaign with every experiment started from t=0 versus from the latest
// checkpoint preceding its injection trigger.  The tallies are
// bit-identical (the differential test asserts it on the artifacts);
// only the wall clock and the per-experiment allocations may differ.
// BENCH_campaign.json records the before/after pair.
func benchCampaignCheckpointing(b *testing.B, interval uint64) {
	im, cfg := builtApp(b, "wavetoy")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			Image: im, Ranks: cfg.Ranks,
			Injections: 6, Seed: 7,
			CheckpointInterval: interval,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st := res.Checkpoints; st != nil && !st.Fallback {
			b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "ckpt-hit-ratio")
		}
	}
}

func BenchmarkCampaignScratch(b *testing.B) { benchCampaignCheckpointing(b, 0) }
func BenchmarkCampaignCheckpointed(b *testing.B) {
	benchCampaignCheckpointing(b, core.DefaultCheckpointInterval)
}

// BenchmarkCampaignFixedN / BenchmarkCampaignAdaptive measure the
// adaptive sequential-stopping optimization at a reduced contract
// (d=9.8% at 95% -> cap 100/region) over one hot stratum (registers,
// p~0.5, runs to the cap) and one quiet one (BSS, closes at its
// AVF-sized pilot).  The adaptive run executes a strict per-region
// prefix of the fixed design (TestAdaptiveMatchesFixedCampaign asserts
// it), so only the spend — reported as the experiments metric — and the
// wall clock differ.  BENCH_campaign.json records the pair,
// informationally: campaign wall clocks are noisy.
const benchAdaptiveTargetD = 0.098

var benchAdaptiveRegions = []core.Region{core.RegionRegularReg, core.RegionBSS}

func benchAdaptivePriors(b *testing.B, im *image.Image) map[core.Region]float64 {
	b.Helper()
	labels, err := analysis.AVFPriors(im)
	if err != nil {
		b.Fatal(err)
	}
	priors, err := core.PriorsFromLabels(labels)
	if err != nil {
		b.Fatal(err)
	}
	return priors
}

func BenchmarkCampaignFixedN(b *testing.B) {
	im, cfg := builtApp(b, "wavetoy")
	cap, err := sampling.SampleSize(core.DefaultConfidence, benchAdaptiveTargetD)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			Image: im, Ranks: cfg.Ranks, Regions: benchAdaptiveRegions,
			Injections: cap, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		executed := 0
		for _, r := range benchAdaptiveRegions {
			t, _ := res.Tally(r)
			executed += t.Executions
		}
		b.ReportMetric(float64(executed), "experiments")
	}
}

func BenchmarkCampaignAdaptive(b *testing.B) {
	im, cfg := builtApp(b, "wavetoy")
	priors := benchAdaptivePriors(b, im)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunAdaptive(core.Config{
			Image: im, Ranks: cfg.Ranks, Regions: benchAdaptiveRegions,
			Seed: 7, Adaptive: true, TargetHalfWidth: benchAdaptiveTargetD,
			AVFPriors: priors,
		})
		if err != nil {
			b.Fatal(err)
		}
		st := res.Adaptive
		b.ReportMetric(float64(st.TotalExecuted()), "experiments")
		b.ReportMetric(float64(st.TotalExecuted())/float64(st.FixedTotal()), "spend-ratio")
	}
}

func BenchmarkTable2Wavetoy(b *testing.B) { benchCampaign(b, "wavetoy", 4) }
func BenchmarkTable3NAMD(b *testing.B)    { benchCampaign(b, "minimd", 4) }
func BenchmarkTable4CAM(b *testing.B)     { benchCampaign(b, "minicam", 4) }

// --- Tables 5-7: working-set traces ---

func benchTrace(b *testing.B, name string) {
	im, cfg := builtApp(b, name)
	for i := 0; i < b.N; i++ {
		tr := trace.New()
		res := cluster.Run(cluster.Job{
			Image: im, Size: cfg.Ranks, Tracer: tr, TraceRank: 1,
			WallLimit: 60 * time.Second,
		})
		if res.HangDetected {
			b.Fatalf("traced run hung: %s", res.HangCause)
		}
		s := tr.Analyze(im, res.Ranks[1].HeapUsed, 16)
		// Headline: the steady-state (mid-run) text working set share.
		b.ReportMetric(s.TextPct[len(s.TextPct)/2], "text-ws-%")
	}
}

func BenchmarkTable5TraceWavetoy(b *testing.B) { benchTrace(b, "wavetoy") }
func BenchmarkTable6TraceNAMD(b *testing.B)    { benchTrace(b, "minimd") }
func BenchmarkTable7TraceCAM(b *testing.B)     { benchTrace(b, "minicam") }

// --- substrate micro-benchmarks ---

// BenchmarkVMExecution measures raw interpreter throughput on a tight
// mixed integer/FP loop (instructions per second drives campaign cost).
func BenchmarkVMExecution(b *testing.B) {
	ab := asm.NewBuilder()
	m := ab.Module("bench", image.OwnerUser)
	m.BSS("scratch", 16)
	f := m.Func("main")
	f.Movi(isa.R1, 0)
	f.Movi(isa.R2, 1<<30) // effectively endless; the budget stops us
	loop := f.NewLabel()
	f.Label(loop)
	f.Addi(isa.R1, isa.R1, 1)
	f.Xori(isa.R3, isa.R1, 0x55)
	f.FldConst(1.5)
	f.FldConst(2.5)
	f.Fmulp()
	f.FstpSym("scratch", 0)
	f.Cmp(isa.R1, isa.R2)
	f.Blt(loop)
	f.Movi(isa.R0, 0)
	f.Sys(abi.SysExit)
	im, err := ab.Link(asm.LinkConfig{})
	if err != nil {
		b.Fatal(err)
	}
	const budget = 2_000_000
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		mach := vm.New(im)
		mach.Handler = exitOnlyHandler{}
		mach.Run(budget)
		instrs += mach.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/s")
}

type exitOnlyHandler struct{}

func (exitOnlyHandler) Syscall(m *vm.Machine, num int32) *vm.Trap {
	return &vm.Trap{Kind: vm.TrapExit, PC: m.PC}
}

// BenchmarkGoldenRuns measures full fault-free job execution per app.
func BenchmarkGoldenRuns(b *testing.B) {
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		name := name
		b.Run(name, func(b *testing.B) {
			im, cfg := builtApp(b, name)
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Job{Image: im, Size: cfg.Ranks,
					WallLimit: 60 * time.Second})
				if res.HangDetected {
					b.Fatal("hang")
				}
			}
		})
	}
}

// BenchmarkPacketCodec measures Channel-layer marshal+parse throughput.
func BenchmarkPacketCodec(b *testing.B) {
	payload := make([]byte, 2048)
	p := &mpi.Packet{Kind: mpi.KindEager, Src: 3, Dst: 1, Tag: 7,
		Comm: 91, Dtype: 1, Payload: payload}
	b.SetBytes(int64(mpi.HeaderBytes + len(payload)))
	for i := 0; i < b.N; i++ {
		raw := p.Marshal()
		q, drop, err := mpi.ParsePacket(raw, 1, 8)
		if err != nil || drop || q.Tag != 7 {
			b.Fatal("codec mismatch")
		}
	}
}

// BenchmarkInjectionSetup measures the cost of arming and firing one
// memory fault relative to an unperturbed run.
func BenchmarkInjectionSetup(b *testing.B) {
	im, cfg := builtApp(b, "wavetoy")
	dict := core.NewDictionary(im)
	r := rng.New(99)
	for i := 0; i < b.N; i++ {
		job := cluster.Job{Image: im, Size: cfg.Ranks, WallLimit: 30 * time.Second,
			Budget: 10_000_000}
		job.Setup = func(rank int, m *vm.Machine, p *mpi.Proc) {
			if rank == 2 {
				m.TriggerAt = 5000
				m.TriggerFn = func(m *vm.Machine) {
					core.ApplyStaticFault(m, dict, core.RegionData, r)
				}
			}
		}
		cluster.Run(job)
	}
}

// --- ablation benchmarks (design decisions from DESIGN.md §5) ---

// BenchmarkAblationChecksum quantifies minimd's checksum cost: golden
// instruction counts with and without the application-level checks
// (paper: ~3 % overhead for NAMD).
func BenchmarkAblationChecksum(b *testing.B) {
	a, err := apps.Get("minimd")
	if err != nil {
		b.Fatal(err)
	}
	on := a.Default
	off := a.Default
	off.Checksums = false
	imOn, err := a.Build(on)
	if err != nil {
		b.Fatal(err)
	}
	imOff, err := a.Build(off)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		gOn, err := core.RunGolden(imOn, on.Ranks, mpi.Config{}, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		gOff, err := core.RunGolden(imOff, off.Ranks, mpi.Config{}, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		over := 100 * (float64(gOn.MaxInstrs()) - float64(gOff.MaxInstrs())) /
			float64(gOff.MaxInstrs())
		b.ReportMetric(over, "overhead-%")
	}
}

// BenchmarkAblationEagerThreshold sweeps the rendezvous threshold and
// reports the resulting header share of wavetoy traffic (design decision
// 1: the threshold sets the control/data mix).
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, thresh := range []uint32{256, 1024, 4096} {
		thresh := thresh
		b.Run(byteSize(thresh), func(b *testing.B) {
			im, cfg := builtApp(b, "wavetoy")
			for i := 0; i < b.N; i++ {
				p, err := profile.Measure("wavetoy", im, cfg.Ranks,
					mpi.Config{EagerThreshold: thresh})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(p.HeaderPct, "header-%")
			}
		})
	}
}

// BenchmarkAblationOutputFormat compares silent-corruption visibility
// between wavetoy's plain-text output and a binary dump (§7: "a binary
// output format would detect more cases of incorrect output").  The
// metric is the fraction of message-payload faults classified Incorrect.
func BenchmarkAblationOutputFormat(b *testing.B) {
	a, err := apps.Get("wavetoy")
	if err != nil {
		b.Fatal(err)
	}
	for _, binary := range []bool{false, true} {
		binary := binary
		name := "text"
		if binary {
			name = "binary"
		}
		b.Run(name, func(b *testing.B) {
			cfg := a.Default
			cfg.BinaryOutput = binary
			im, err := a.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Image: im, Ranks: cfg.Ranks,
					Injections: 20, Seed: 5,
					Regions: []core.Region{core.RegionMessage},
				})
				if err != nil {
					b.Fatal(err)
				}
				t, _ := res.Tally(core.RegionMessage)
				b.ReportMetric(t.ManifestPercent(classify.Incorrect), "incorrect-%")
				b.ReportMetric(t.ErrorRate(), "error-%")
			}
		})
	}
}

// BenchmarkAblationIterationCount sweeps the step count for the §6.2
// error-amplification claim ("executing more Cactus Wavetoy iterations
// will almost always yield incorrect outputs").  Note the reproduction's
// negative result, recorded in EXPERIMENTS.md: our analogue's linear
// wave kernel conserves perturbation energy, so the measured error rate
// stays flat with step count — the amplification needs the nonlinearity
// of the real Cactus kernels.
func BenchmarkAblationIterationCount(b *testing.B) {
	a, err := apps.Get("wavetoy")
	if err != nil {
		b.Fatal(err)
	}
	for _, steps := range []int32{4, 12, 36} {
		steps := steps
		b.Run(stepName(steps), func(b *testing.B) {
			cfg := a.Default
			cfg.Steps = steps
			im, err := a.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Image: im, Ranks: cfg.Ranks,
					Injections: 20, Seed: 9,
					Regions: []core.Region{core.RegionMessage},
				})
				if err != nil {
					b.Fatal(err)
				}
				t, _ := res.Tally(core.RegionMessage)
				b.ReportMetric(t.ErrorRate(), "error-%")
			}
		})
	}
}

// BenchmarkAblationRegisterPressure reproduces §6.1.1's observation
// (after Springer) that code compiled without register optimizations is
// more robust to register upsets: the spilled wavetoy kernel reloads its
// state from memory every iteration, so register faults have a smaller
// live window.  Metrics: register-fault error rate for each variant and
// the runtime cost of spilling.
func BenchmarkAblationRegisterPressure(b *testing.B) {
	a, err := apps.Get("wavetoy")
	if err != nil {
		b.Fatal(err)
	}
	for _, spill := range []bool{false, true} {
		spill := spill
		name := "optimized"
		if spill {
			name = "spilled"
		}
		b.Run(name, func(b *testing.B) {
			cfg := a.Default
			cfg.SpillRegisters = spill
			im, err := a.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Image: im, Ranks: cfg.Ranks,
					Injections: 60, Seed: 21,
					Regions: []core.Region{core.RegionRegularReg},
				})
				if err != nil {
					b.Fatal(err)
				}
				t, _ := res.Tally(core.RegionRegularReg)
				b.ReportMetric(t.ErrorRate(), "reg-error-%")
				b.ReportMetric(float64(res.Golden.MaxInstrs()), "golden-instrs")
			}
		})
	}
}

// BenchmarkAblationHangDetectors compares hang-detection latency across
// the three mechanisms (design decision 5): the exact distributed-
// deadlock check, the §7 progress metric, and the paper's wall-clock
// margin.  Each iteration runs one wavetoy job with a message fault that
// is guaranteed to lose a halo message (tag corruption), and the bench
// time is dominated by how fast the detector fires.
func BenchmarkAblationHangDetectors(b *testing.B) {
	im, cfg := builtApp(b, "wavetoy")
	lose := func(rank int, m *vm.Machine, p *mpi.Proc) {
		if rank != 3 {
			return
		}
		first := true
		p.RecvHook = func(pkt []byte) {
			if first && len(pkt) >= 20 {
				pkt[16] ^= 0x08
				first = false
			}
		}
	}
	variants := []struct {
		name string
		job  func() cluster.Job
	}{
		{"deadlock-detector", func() cluster.Job {
			return cluster.Job{Image: im, Size: cfg.Ranks, Setup: lose,
				WallLimit: 10 * time.Second}
		}},
		{"progress-metric", func() cluster.Job {
			return cluster.Job{Image: im, Size: cfg.Ranks, Setup: lose,
				WallLimit: 10 * time.Second, DisableDeadlockDetector: true,
				ProgressDetector: &progress.Config{}}
		}},
		{"wall-clock-only", func() cluster.Job {
			return cluster.Job{Image: im, Size: cfg.Ranks, Setup: lose,
				WallLimit: 500 * time.Millisecond, DisableDeadlockDetector: true}
		}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := cluster.Run(v.job())
				if !res.HangDetected {
					b.Fatalf("hang not detected (%s)", v.name)
				}
			}
		})
	}
}

func byteSize(n uint32) string {
	switch {
	case n >= 1024:
		return string(rune('0'+n/1024)) + "KiB"
	default:
		return "256B"
	}
}

func stepName(s int32) string {
	switch s {
	case 4:
		return "steps4"
	case 12:
		return "steps12"
	default:
		return "steps36"
	}
}
