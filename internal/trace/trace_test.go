package trace

import (
	"testing"
	"testing/quick"

	"mpifault/internal/image"
	"mpifault/internal/rng"
)

func testImage() *image.Image {
	return &image.Image{
		Text:      make([]byte, 0x1000),
		Data:      make([]byte, 0x800),
		BSSSize:   0x800,
		DataBase:  image.TextBase + 0x2000,
		BSSBase:   image.TextBase + 0x3000,
		HeapBase:  image.TextBase + 0x4000,
		HeapLimit: image.TextBase + 0x14000,
		StackSize: 0x10000,
		Entry:     image.TextBase,
	}
}

func TestWorkingSetNonIncreasing(t *testing.T) {
	f := func(seed uint64) bool {
		im := testImage()
		tr := New()
		r := rng.New(seed)
		for i := 0; i < 2000; i++ {
			tr.Exec(image.TextBase + uint32(r.Intn(0x1000))&^7)
			if r.Bool() {
				tr.Load(im.DataBase+uint32(r.Intn(0x7f8)), 8)
			}
		}
		s := tr.Analyze(im, 0x1000, 16)
		for _, series := range [][]float64{s.TextPct, s.DataPct, s.BSSPct, s.HeapPct, s.CombinedPct} {
			for i := 1; i < len(series); i++ {
				if series[i] > series[i-1]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInitOnlyAccessesDropOut(t *testing.T) {
	im := testImage()
	tr := New()
	// Phase 1: touch all data lines once ("initialization").
	for a := uint32(0); a < 0x800; a += 8 {
		tr.Exec(image.TextBase) // advance time
		tr.Load(im.DataBase+a, 8)
	}
	// Phase 2: long compute phase touching a single line.
	for i := 0; i < 10000; i++ {
		tr.Exec(image.TextBase + 8)
		tr.Load(im.DataBase, 8)
	}
	s := tr.Analyze(im, 0, 8)
	if s.DataPct[0] < 99 {
		t.Fatalf("WSS(0) = %.1f%%, want ~100%%", s.DataPct[0])
	}
	mid := s.DataPct[len(s.DataPct)/2]
	if mid > 5 {
		t.Fatalf("compute-phase WSS = %.1f%%, want tiny (one line)", mid)
	}
}

func TestTextAndDataBucketedBySection(t *testing.T) {
	im := testImage()
	tr := New()
	tr.Exec(image.TextBase)       // text
	tr.Load(im.DataBase, 8)       // data
	tr.Load(im.BSSBase, 8)        // bss
	tr.Load(im.HeapBase, 8)       // heap
	tr.Load(image.StackTop-16, 8) // stack: not counted in any curve
	s := tr.Analyze(im, 0x100, 2)
	if s.TextPct[0] == 0 || s.DataPct[0] == 0 || s.BSSPct[0] == 0 || s.HeapPct[0] == 0 {
		t.Fatalf("section bucketing failed: %+v", s)
	}
}

func TestStoresIgnoredByDefault(t *testing.T) {
	im := testImage()
	tr := New()
	tr.Exec(image.TextBase)
	tr.Store(im.DataBase, 8)
	s := tr.Analyze(im, 0, 2)
	if s.DataPct[0] != 0 {
		t.Fatal("stores must not count as data accesses (the paper traces loads)")
	}
	tr2 := New()
	tr2.TrackStores = true
	tr2.Exec(image.TextBase)
	tr2.Store(im.DataBase, 8)
	s2 := tr2.Analyze(im, 0, 2)
	if s2.DataPct[0] == 0 {
		t.Fatal("TrackStores must widen the trace")
	}
}

func TestMultiLineLoadsSpanLines(t *testing.T) {
	im := testImage()
	tr := New()
	tr.Exec(image.TextBase)
	tr.Load(im.DataBase+4, 8) // straddles two 8-byte lines
	s := tr.Analyze(im, 0, 2)
	// Two lines of 0x800 bytes = 16/2048.
	want := 100 * 16.0 / 2048.0
	if diff := s.DataPct[0] - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("straddling load counted %.4f%%, want %.4f%%", s.DataPct[0], want)
	}
}

func TestCombinedCurveUsesSummedDenominator(t *testing.T) {
	im := testImage()
	tr := New()
	tr.Exec(image.TextBase)
	tr.Load(im.DataBase, 8)
	heapUsed := uint32(0x1000)
	s := tr.Analyze(im, heapUsed, 2)
	den := float64(len(im.Data)) + float64(im.BSSSize) + float64(heapUsed)
	want := 100 * 8 / den
	if diff := s.CombinedPct[0] - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("combined = %v, want %v", s.CombinedPct[0], want)
	}
}

func TestAnalyzeMinimumSamples(t *testing.T) {
	im := testImage()
	tr := New()
	tr.Exec(image.TextBase)
	s := tr.Analyze(im, 0, 0) // clamped to 2
	if len(s.Times) != 2 {
		t.Fatalf("got %d samples", len(s.Times))
	}
}
