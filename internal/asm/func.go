package asm

import (
	"fmt"

	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Label identifies a branch target within one function.
type Label int

// refKind says how an emitted instruction's immediate gets patched.
type refKind uint8

const (
	refNone  refKind = iota
	refSym           // immediate = symbol address + offset
	refLabel         // immediate = address of a label in this function
)

type emitted struct {
	in    isa.Instr
	kind  refKind
	sym   string
	off   int32
	label Label
}

// Func builds one function's instruction stream.
//
// Calling convention (x86-32 flavoured, so that the injector's stack walk
// works exactly as in §3.2 of the paper):
//
//	caller: push args right-to-left; CALL; add sp, 4*nargs
//	callee: push fp; mov fp, sp; sub sp, locals
//	frame:  [fp] = saved caller fp, [fp+4] = return address,
//	        [fp+8+4i] = argument i, [fp-off] = locals
//	return: value in r0; r0-r5 are caller-saved, fp/sp preserved.
type Func struct {
	mod    *Module
	name   string
	code   []emitted
	labels map[Label]int // label -> instruction index
	nlabel int
	addr   uint32
}

// Name returns the function's symbol name.
func (f *Func) Name() string { return f.name }

func (f *Func) raw(in isa.Instr) {
	f.code = append(f.code, emitted{in: in})
}

func (f *Func) withSym(in isa.Instr, sym string, off int32) {
	f.code = append(f.code, emitted{in: in, kind: refSym, sym: sym, off: off})
}

func (f *Func) withLabel(in isa.Instr, l Label) {
	f.code = append(f.code, emitted{in: in, kind: refLabel, label: l})
}

// NewLabel allocates a fresh, not-yet-placed label.
func (f *Func) NewLabel() Label {
	f.nlabel++
	return Label(f.nlabel)
}

// Label places l at the next instruction.
func (f *Func) Label(l Label) {
	if _, dup := f.labels[l]; dup {
		f.mod.b.errorf("asm: %s: label %d placed twice", f.name, l)
		return
	}
	f.labels[l] = len(f.code)
}

func reg(r int) uint8 {
	return uint8(r)
}

// --- data movement ---

// Movi sets rd = imm.
func (f *Func) Movi(rd int, imm int32) { f.raw(isa.Instr{Op: isa.OpMovi, Rd: reg(rd), Imm: imm}) }

// MoviSym sets rd = address of sym + off.
func (f *Func) MoviSym(rd int, sym string, off int32) {
	f.withSym(isa.Instr{Op: isa.OpMovi, Rd: reg(rd)}, sym, off)
}

// Movr sets rd = ra.
func (f *Func) Movr(rd, ra int) { f.raw(isa.Instr{Op: isa.OpMovr, Rd: reg(rd), Ra: reg(ra)}) }

// --- integer ALU ---

func (f *Func) alu3(op isa.Op, rd, ra, rb int) {
	f.raw(isa.Instr{Op: op, Rd: reg(rd), Ra: reg(ra), Rb: reg(rb)})
}

func (f *Func) aluI(op isa.Op, rd, ra int, imm int32) {
	f.raw(isa.Instr{Op: op, Rd: reg(rd), Ra: reg(ra), Imm: imm})
}

// Add sets rd = ra + rb.
func (f *Func) Add(rd, ra, rb int) { f.alu3(isa.OpAdd, rd, ra, rb) }

// Sub sets rd = ra - rb.
func (f *Func) Sub(rd, ra, rb int) { f.alu3(isa.OpSub, rd, ra, rb) }

// Mul sets rd = ra * rb.
func (f *Func) Mul(rd, ra, rb int) { f.alu3(isa.OpMul, rd, ra, rb) }

// Divs sets rd = ra / rb (signed; rb == 0 traps with SIGFPE).
func (f *Func) Divs(rd, ra, rb int) { f.alu3(isa.OpDivs, rd, ra, rb) }

// Rems sets rd = ra % rb (signed; rb == 0 traps with SIGFPE).
func (f *Func) Rems(rd, ra, rb int) { f.alu3(isa.OpRems, rd, ra, rb) }

// And sets rd = ra & rb.
func (f *Func) And(rd, ra, rb int) { f.alu3(isa.OpAnd, rd, ra, rb) }

// Or sets rd = ra | rb.
func (f *Func) Or(rd, ra, rb int) { f.alu3(isa.OpOr, rd, ra, rb) }

// Xor sets rd = ra ^ rb.
func (f *Func) Xor(rd, ra, rb int) { f.alu3(isa.OpXor, rd, ra, rb) }

// Shl sets rd = ra << (rb mod 32).
func (f *Func) Shl(rd, ra, rb int) { f.alu3(isa.OpShl, rd, ra, rb) }

// Shr sets rd = ra >> (rb mod 32), logical.
func (f *Func) Shr(rd, ra, rb int) { f.alu3(isa.OpShr, rd, ra, rb) }

// Sar sets rd = ra >> (rb mod 32), arithmetic.
func (f *Func) Sar(rd, ra, rb int) { f.alu3(isa.OpSar, rd, ra, rb) }

// Neg sets rd = -ra.
func (f *Func) Neg(rd, ra int) { f.raw(isa.Instr{Op: isa.OpNeg, Rd: reg(rd), Ra: reg(ra)}) }

// Addi sets rd = ra + imm.
func (f *Func) Addi(rd, ra int, imm int32) { f.aluI(isa.OpAddi, rd, ra, imm) }

// Muli sets rd = ra * imm.
func (f *Func) Muli(rd, ra int, imm int32) { f.aluI(isa.OpMuli, rd, ra, imm) }

// Andi sets rd = ra & imm.
func (f *Func) Andi(rd, ra int, imm int32) { f.aluI(isa.OpAndi, rd, ra, imm) }

// Ori sets rd = ra | imm.
func (f *Func) Ori(rd, ra int, imm int32) { f.aluI(isa.OpOri, rd, ra, imm) }

// Xori sets rd = ra ^ imm.
func (f *Func) Xori(rd, ra int, imm int32) { f.aluI(isa.OpXori, rd, ra, imm) }

// Shli sets rd = ra << imm.
func (f *Func) Shli(rd, ra int, imm int32) { f.aluI(isa.OpShli, rd, ra, imm) }

// Shri sets rd = ra >> imm, logical.
func (f *Func) Shri(rd, ra int, imm int32) { f.aluI(isa.OpShri, rd, ra, imm) }

// Sari sets rd = ra >> imm, arithmetic.
func (f *Func) Sari(rd, ra int, imm int32) { f.aluI(isa.OpSari, rd, ra, imm) }

// --- comparison and branches ---

// Cmp sets the flags from ra - rb.
func (f *Func) Cmp(ra, rb int) { f.raw(isa.Instr{Op: isa.OpCmp, Ra: reg(ra), Rb: reg(rb)}) }

// Cmpi sets the flags from ra - imm.
func (f *Func) Cmpi(ra int, imm int32) { f.raw(isa.Instr{Op: isa.OpCmpi, Ra: reg(ra), Imm: imm}) }

func (f *Func) branch(op isa.Op, l Label) { f.withLabel(isa.Instr{Op: op}, l) }

// Jmp jumps unconditionally to l.
func (f *Func) Jmp(l Label) { f.branch(isa.OpJmp, l) }

// Beq branches to l if the zero flag is set.
func (f *Func) Beq(l Label) { f.branch(isa.OpBeq, l) }

// Bne branches to l if the zero flag is clear.
func (f *Func) Bne(l Label) { f.branch(isa.OpBne, l) }

// Blt branches to l on signed less-than.
func (f *Func) Blt(l Label) { f.branch(isa.OpBlt, l) }

// Bge branches to l on signed greater-or-equal.
func (f *Func) Bge(l Label) { f.branch(isa.OpBge, l) }

// Ble branches to l on signed less-or-equal.
func (f *Func) Ble(l Label) { f.branch(isa.OpBle, l) }

// Bgt branches to l on signed greater-than.
func (f *Func) Bgt(l Label) { f.branch(isa.OpBgt, l) }

// Bltu branches to l on unsigned less-than.
func (f *Func) Bltu(l Label) { f.branch(isa.OpBltu, l) }

// Bgeu branches to l on unsigned greater-or-equal.
func (f *Func) Bgeu(l Label) { f.branch(isa.OpBgeu, l) }

// Bun branches to l if the last FP comparison was unordered (NaN).
func (f *Func) Bun(l Label) { f.branch(isa.OpBun, l) }

// Call calls the function with the given symbol name.
func (f *Func) Call(sym string) { f.withSym(isa.Instr{Op: isa.OpCall}, sym, 0) }

// Callr calls through the address in ra.
func (f *Func) Callr(ra int) { f.raw(isa.Instr{Op: isa.OpCallr, Ra: reg(ra)}) }

// Ret returns to the caller.
func (f *Func) Ret() { f.raw(isa.Instr{Op: isa.OpRet}) }

// Push pushes ra.
func (f *Func) Push(ra int) { f.raw(isa.Instr{Op: isa.OpPush, Ra: reg(ra)}) }

// Pop pops into rd.
func (f *Func) Pop(rd int) { f.raw(isa.Instr{Op: isa.OpPop, Rd: reg(rd)}) }

// --- memory ---

func memInstr(op isa.Op, rd, base, idx int, imm int32) isa.Instr {
	b := uint8(isa.RegNone)
	if idx >= 0 {
		b = reg(idx)
	}
	a := uint8(isa.RegNone)
	if base >= 0 {
		a = reg(base)
	}
	return isa.Instr{Op: op, Rd: reg(rd), Ra: a, Rb: b, Imm: imm}
}

// Ld loads a 32-bit word: rd = [base + imm].
func (f *Func) Ld(rd, base int, imm int32) { f.raw(memInstr(isa.OpLd, rd, base, -1, imm)) }

// Ldx loads a 32-bit word: rd = [base + idx + imm].
func (f *Func) Ldx(rd, base, idx int, imm int32) { f.raw(memInstr(isa.OpLd, rd, base, idx, imm)) }

// LdSym loads a 32-bit word from sym + off.
func (f *Func) LdSym(rd int, sym string, off int32) {
	f.withSym(memInstr(isa.OpLd, rd, -1, -1, 0), sym, off)
}

// St stores a 32-bit word: [base + imm] = src.
func (f *Func) St(base int, imm int32, src int) {
	in := memInstr(isa.OpSt, 0, base, -1, imm)
	in.SetRc(reg(src))
	f.raw(in)
}

// Stx stores a 32-bit word: [base + idx + imm] = src.
func (f *Func) Stx(base, idx int, imm int32, src int) {
	in := memInstr(isa.OpSt, 0, base, idx, imm)
	in.SetRc(reg(src))
	f.raw(in)
}

// StSym stores a 32-bit word to sym + off.
func (f *Func) StSym(sym string, off int32, src int) {
	in := memInstr(isa.OpSt, 0, -1, -1, 0)
	in.SetRc(reg(src))
	f.withSym(in, sym, off)
}

// Ldb loads a zero-extended byte: rd = [base + idx + imm].
func (f *Func) Ldb(rd, base, idx int, imm int32) { f.raw(memInstr(isa.OpLdb, rd, base, idx, imm)) }

// Stb stores the low byte of src to [base + idx + imm].
func (f *Func) Stb(base, idx int, imm int32, src int) {
	in := memInstr(isa.OpStb, 0, base, idx, imm)
	in.SetRc(reg(src))
	f.raw(in)
}

// --- floating point (x87-style stack) ---

// Fld pushes the float64 at [base + imm].
func (f *Func) Fld(base int, imm int32) { f.raw(memInstr(isa.OpFld, 0, base, -1, imm)) }

// Fldx pushes the float64 at [base + idx + imm].
func (f *Func) Fldx(base, idx int, imm int32) { f.raw(memInstr(isa.OpFld, 0, base, idx, imm)) }

// FldSym pushes the float64 at sym + off.
func (f *Func) FldSym(sym string, off int32) {
	f.withSym(memInstr(isa.OpFld, 0, -1, -1, 0), sym, off)
}

// FldConst pushes a float64 constant (interned in the module's pool).
func (f *Func) FldConst(v float64) { f.FldSym(f.mod.constF64(v), 0) }

// Fldz pushes +0.0.
func (f *Func) Fldz() { f.raw(isa.Instr{Op: isa.OpFldz}) }

// Fld1 pushes 1.0.
func (f *Func) Fld1() { f.raw(isa.Instr{Op: isa.OpFld1}) }

// Fldst pushes a copy of st(i).
func (f *Func) Fldst(i int32) { f.raw(isa.Instr{Op: isa.OpFldst, Imm: i}) }

// Fst stores st0 to [base + imm] without popping.
func (f *Func) Fst(base int, imm int32) { f.raw(memInstr(isa.OpFst, 0, base, -1, imm)) }

// Fstp stores st0 to [base + imm] and pops.
func (f *Func) Fstp(base int, imm int32) { f.raw(memInstr(isa.OpFstp, 0, base, -1, imm)) }

// Fstpx stores st0 to [base + idx + imm] and pops.
func (f *Func) Fstpx(base, idx int, imm int32) { f.raw(memInstr(isa.OpFstp, 0, base, idx, imm)) }

// FstpSym stores st0 to sym + off and pops.
func (f *Func) FstpSym(sym string, off int32) {
	f.withSym(memInstr(isa.OpFstp, 0, -1, -1, 0), sym, off)
}

// Faddp computes st1 += st0 and pops.
func (f *Func) Faddp() { f.raw(isa.Instr{Op: isa.OpFaddp}) }

// Fsubp computes st1 -= st0 and pops.
func (f *Func) Fsubp() { f.raw(isa.Instr{Op: isa.OpFsubp}) }

// Fmulp computes st1 *= st0 and pops.
func (f *Func) Fmulp() { f.raw(isa.Instr{Op: isa.OpFmulp}) }

// Fdivp computes st1 /= st0 and pops.
func (f *Func) Fdivp() { f.raw(isa.Instr{Op: isa.OpFdivp}) }

// Fchs negates st0.
func (f *Func) Fchs() { f.raw(isa.Instr{Op: isa.OpFchs}) }

// Fabs replaces st0 with its absolute value.
func (f *Func) Fabs() { f.raw(isa.Instr{Op: isa.OpFabs}) }

// Fsqrt replaces st0 with its square root.
func (f *Func) Fsqrt() { f.raw(isa.Instr{Op: isa.OpFsqrt}) }

// Fxch exchanges st0 with st(i).
func (f *Func) Fxch(i int32) { f.raw(isa.Instr{Op: isa.OpFxch, Imm: i}) }

// Fcomp compares st0 with st1, sets the flags and pops both.
func (f *Func) Fcomp() { f.raw(isa.Instr{Op: isa.OpFcomp}) }

// Fxam sets FlagZ if st0 is NaN or infinite (and FlagUN if NaN).
func (f *Func) Fxam() { f.raw(isa.Instr{Op: isa.OpFxam}) }

// Fild pushes float64(int32(ra)).
func (f *Func) Fild(ra int) { f.raw(isa.Instr{Op: isa.OpFild, Ra: reg(ra)}) }

// Fist truncates st0 to int32 in rd and pops.
func (f *Func) Fist(rd int) { f.raw(isa.Instr{Op: isa.OpFist, Rd: reg(rd)}) }

// Sys issues system call num (see package abi for the convention).
func (f *Func) Sys(num int32) { f.raw(isa.Instr{Op: isa.OpSys, Imm: num}) }

// Nop emits a no-op.
func (f *Func) Nop() { f.raw(isa.Instr{Op: isa.OpNop}) }

// --- macros ---

// Prologue emits the standard frame setup, reserving localBytes of locals.
func (f *Func) Prologue(localBytes int32) {
	f.Push(isa.FP)
	f.Movr(isa.FP, isa.SP)
	if localBytes > 0 {
		f.Addi(isa.SP, isa.SP, -localBytes)
	}
}

// Epilogue tears down the frame and returns.
func (f *Func) Epilogue() {
	f.Movr(isa.SP, isa.FP)
	f.Pop(isa.FP)
	f.Ret()
}

// LdArg loads argument i (0-based) into rd.
func (f *Func) LdArg(rd, i int) { f.Ld(rd, isa.FP, 8+4*int32(i)) }

// LdLocal loads the 32-bit local at [fp-off] into rd.
func (f *Func) LdLocal(rd int, off int32) { f.Ld(rd, isa.FP, -off) }

// StLocal stores src to the 32-bit local at [fp-off].
func (f *Func) StLocal(off int32, src int) { f.St(isa.FP, -off, src) }

// FldLocal pushes the float64 local at [fp-off].
func (f *Func) FldLocal(off int32) { f.Fld(isa.FP, -off) }

// FstpLocal pops st0 into the float64 local at [fp-off].
func (f *Func) FstpLocal(off int32) { f.Fstp(isa.FP, -off) }

// FstLocal stores st0 into the float64 local at [fp-off] without popping.
func (f *Func) FstLocal(off int32) { f.Fst(isa.FP, -off) }

// Arg is a call-site argument for CallArgs.
type Arg struct {
	kind uint8 // 0 reg, 1 imm, 2 sym
	reg  int
	imm  int32
	sym  string
	off  int32
}

// Reg passes the value of register r.
func Reg(r int) Arg { return Arg{kind: 0, reg: r} }

// Imm passes the constant v.
func Imm(v int32) Arg { return Arg{kind: 1, imm: v} }

// Sym passes the address of sym.
func Sym(sym string) Arg { return Arg{kind: 2, sym: sym} }

// SymOff passes the address of sym + off.
func SymOff(sym string, off int32) Arg { return Arg{kind: 2, sym: sym, off: off} }

// CallArgs pushes args right-to-left, calls sym and pops the arguments.
// Immediate and symbol arguments are staged through r5, which is clobbered.
func (f *Func) CallArgs(sym string, args ...Arg) {
	for i := len(args) - 1; i >= 0; i-- {
		a := args[i]
		switch a.kind {
		case 0:
			f.Push(a.reg)
		case 1:
			f.Movi(isa.R5, a.imm)
			f.Push(isa.R5)
		case 2:
			f.MoviSym(isa.R5, a.sym, a.off)
			f.Push(isa.R5)
		}
	}
	f.Call(sym)
	if n := int32(len(args)); n > 0 {
		f.Addi(isa.SP, isa.SP, 4*n)
	}
}

// emit patches references and writes the function's code into text.
func (f *Func) emit(text []byte, syms map[string]*image.Symbol) error {
	for i, e := range f.code {
		in := e.in
		switch e.kind {
		case refSym:
			s, ok := syms[e.sym]
			if !ok {
				return fmt.Errorf("asm: %s: undefined symbol %q", f.name, e.sym)
			}
			in.Imm = int32(s.Addr) + e.off
		case refLabel:
			idx, ok := f.labels[e.label]
			if !ok {
				return fmt.Errorf("asm: %s: undefined label %d", f.name, e.label)
			}
			in.Imm = int32(f.addr + uint32(idx)*isa.InstrBytes)
		}
		off := f.addr - image.TextBase + uint32(i)*isa.InstrBytes
		in.Encode(text[off : off+isa.InstrBytes])
	}
	return nil
}
