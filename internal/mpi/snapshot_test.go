package mpi

import (
	"reflect"
	"testing"
)

// buildBusyProc populates rank 0 of a fresh world with one of everything
// a snapshot must carry: a parked unexpected packet, a pending receive
// and a pending send in the request table, a user communicator, and
// non-zero counters.
func buildBusyProc(t *testing.T) (*World, *Proc) {
	t.Helper()
	w := NewWorld(2, Config{})
	p := w.procs[0]
	p.inited = true
	p.nextSeq = 42
	p.barrierEpoch = 3
	p.errhandler = 1
	p.Stats = Stats{ControlMsgs: 2, DataMsgs: 5, HeaderBytes: 7 * HeaderBytes, PayloadBytes: 999}

	ci := &commInfo{handle: 256, ctx: 0x400, group: []int32{0, 1}, myRank: 0}
	p.comms[ci.handle] = ci
	p.nextComm = 257

	pkt := &Packet{Kind: KindEager, Src: 1, Dst: 0, Tag: 9, Seq: 7, Dtype: 1, Len: 4,
		Payload: []byte{1, 2, 3, 4}}
	p.unexpected = append(p.unexpected, &stored{pkt: pkt, heapAddr: 0x1000, heapLen: 4})

	rr := &Request{id: 1, buf: 0x2000, limit: 16, dtype: 1, src: -1, tag: 9, ctx: ci.ctx, ci: ci}
	sr := &Request{id: 2, send: true, dst: 1, seq: 5, dtype: 1, ctx: ci.ctx, ci: ci,
		payload: []byte{9, 8}, rdvActive: true, rdvSeq: 11}
	p.requests[rr.id] = rr
	p.requests[sr.id] = sr
	p.pendingRecvs = append(p.pendingRecvs, rr)
	p.pendingSends = append(p.pendingSends, sr)
	p.nextReq = 3
	return w, p
}

func TestProcSnapshotRoundtrip(t *testing.T) {
	_, p := buildBusyProc(t)
	snap := p.Snapshot()

	// Mutating the original after the capture must not reach the
	// snapshot: payloads and request fields are deep-copied.
	p.unexpected[0].pkt.Payload[0] = 0xFF
	p.requests[1].tag = 99
	p.requests[2].payload[0] = 0xFF

	w2 := NewWorld(2, Config{})
	q := w2.procs[0]
	q.Restore(snap)

	if !q.inited || q.nextSeq != 42 || q.barrierEpoch != 3 || q.errhandler != 1 ||
		q.nextReq != 3 || q.nextComm != 257 {
		t.Errorf("scalar state not restored: %+v", q)
	}
	if q.Stats != (Stats{ControlMsgs: 2, DataMsgs: 5, HeaderBytes: 7 * HeaderBytes, PayloadBytes: 999}) {
		t.Errorf("stats not restored: %+v", q.Stats)
	}
	if len(q.unexpected) != 1 || q.unexpected[0].pkt.Payload[0] != 1 ||
		q.unexpected[0].heapAddr != 0x1000 || q.unexpected[0].heapLen != 4 {
		t.Errorf("unexpected queue not restored verbatim: %+v", q.unexpected)
	}
	if len(q.pendingRecvs) != 1 || len(q.pendingSends) != 1 {
		t.Fatalf("pending queues not restored: %d recvs, %d sends",
			len(q.pendingRecvs), len(q.pendingSends))
	}
	// Pending entries must be the same objects as the request table's —
	// completion paths match by pointer identity.
	if q.pendingRecvs[0] != q.requests[1] || q.pendingSends[0] != q.requests[2] {
		t.Error("pending queues do not alias the request table")
	}
	if q.pendingRecvs[0].tag != 9 {
		t.Errorf("recv tag = %d, mutated after capture", q.pendingRecvs[0].tag)
	}
	if got := q.pendingSends[0]; !got.rdvActive || got.rdvSeq != 11 || got.payload[0] != 9 {
		t.Errorf("send request not restored: %+v", got)
	}
	// Communicator pointers rebind to the restored table, not the old one.
	if q.pendingRecvs[0].ci != q.comms[256] || q.comms[256] == p.comms[256] {
		t.Error("communicator not rebound to the restored proc")
	}

	// Snapshot must be a fixpoint: capturing the restored rank yields an
	// identical snapshot.
	if again := q.Snapshot(); !reflect.DeepEqual(snap, again) {
		t.Errorf("snapshot not a fixpoint:\nfirst:  %+v\nsecond: %+v", snap, again)
	}
}

func TestProcSnapshotSharedAcrossRestores(t *testing.T) {
	_, p := buildBusyProc(t)
	snap := p.Snapshot()

	// One snapshot restores many concurrent worlds; a restored rank
	// mutating its state must never corrupt a sibling's.
	wa := NewWorld(2, Config{})
	wb := NewWorld(2, Config{})
	a, b := wa.procs[0], wb.procs[0]
	a.Restore(snap)
	b.Restore(snap)
	a.unexpected[0].pkt.Payload[0] = 0xEE
	a.requests[2].payload[0] = 0xEE
	if b.unexpected[0].pkt.Payload[0] != 1 || b.requests[2].payload[0] != 9 {
		t.Error("restored worlds share packet payloads")
	}
	if c := snap.unexpected[0].pkt.Payload[0]; c != 1 {
		t.Errorf("snapshot payload mutated through a restore: %#x", c)
	}
}

func TestCausalityRecorderWrapStrip(t *testing.T) {
	rec := NewCausalityRecorder()
	raw := []byte{0xAA, 0xBB, 0xCC}
	wrapped := rec.wrap(3, 12345, raw)
	if len(wrapped) != causalPrefix+len(raw) {
		t.Fatalf("wrapped length = %d", len(wrapped))
	}
	got := rec.strip(wrapped, 1, 67890)
	if !reflect.DeepEqual(got, raw) {
		t.Fatalf("strip returned %v, want %v", got, raw)
	}
	events := rec.Events()
	want := Event{Src: 3, Dst: 1, SrcInstr: 12345, DstInstr: 67890}
	if len(events) != 1 || events[0] != want {
		t.Fatalf("events = %+v, want [%+v]", events, want)
	}
}
