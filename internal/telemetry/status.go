package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// StatusLine renders the periodic one-line campaign status from a
// snapshot: completion, rate, ETA and the outcome mix so far.  elapsed
// is the campaign wall-clock time at the snapshot; the caller supplies
// it, which keeps the formatter deterministic and testable.
//
//	342/800 experiments (42.8%) | 41.2/s | ETA 11s | Correct 290 Crash 31 Hang 21
func StatusLine(s Snapshot, elapsed time.Duration) string {
	finished := s.Counters[MetricExperimentsFinished]
	planned := s.Counters[MetricExperimentsPlanned]
	resumed := s.Counters[MetricExperimentsResumed]
	// Resumed experiments were not run this session; count them as done
	// against the plan but keep the rate honest (finished only).
	done := finished + resumed

	var b strings.Builder
	if planned > 0 {
		fmt.Fprintf(&b, "%d/%d experiments (%.1f%%)", done, planned, 100*float64(done)/float64(planned))
	} else {
		fmt.Fprintf(&b, "%d experiments", done)
	}

	secs := elapsed.Seconds()
	if secs > 0 && finished > 0 {
		rate := float64(finished) / secs
		fmt.Fprintf(&b, " | %.1f/s", rate)
		if planned > done {
			eta := time.Duration(float64(planned-done) / rate * float64(time.Second)).Round(time.Second)
			fmt.Fprintf(&b, " | ETA %s", eta)
		}
	}

	if mix := outcomeMix(s); mix != "" {
		b.WriteString(" | ")
		b.WriteString(mix)
	}
	return b.String()
}

// ClusterStatusLine renders the coordinator's periodic one-line cluster
// status from a snapshot: lease queue state, result throughput, stolen
// leases and the ETA over the remaining plan.
//
//	leases 5/8 done (2 active, 1 stolen) | 23/32 results | 3 workers | 12.3/s | ETA 1s
func ClusterStatusLine(s Snapshot, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "leases %d/%d done (%d active",
		s.Counters[MetricCoordLeasesCompleted], s.Counters[MetricCoordLeases],
		s.Gauges[MetricCoordLeasesActive])
	if stolen := s.Counters[MetricCoordLeasesStolen]; stolen > 0 {
		fmt.Fprintf(&b, ", %d stolen", stolen)
	}
	b.WriteString(")")

	results := s.Counters[MetricCoordResults]
	planned := s.Counters[MetricCoordPlanTotal]
	fmt.Fprintf(&b, " | %d/%d results", results, planned)
	if w := s.Gauges[MetricCoordWorkers]; w > 0 {
		fmt.Fprintf(&b, " | %d workers", w)
	}
	secs := elapsed.Seconds()
	if secs > 0 && results > 0 {
		rate := float64(results) / secs
		fmt.Fprintf(&b, " | %.1f/s", rate)
		if planned > results {
			eta := time.Duration(float64(planned-results) / rate * float64(time.Second)).Round(time.Second)
			fmt.Fprintf(&b, " | ETA %s", eta)
		}
	}
	return b.String()
}

// outcomeMix renders the per-outcome counters as "Correct 290 Crash 31
// ...", outcomes sorted by descending count then name.
func outcomeMix(s Snapshot) string {
	type oc struct {
		name  string
		count uint64
	}
	var mix []oc
	for name, v := range s.Counters {
		if v == 0 || !strings.HasPrefix(name, outcomeMetricPrefix) {
			continue
		}
		label := strings.TrimSuffix(strings.TrimPrefix(name, outcomeMetricPrefix), "}")
		if unq, err := strconv.Unquote(label); err == nil {
			label = unq
		}
		mix = append(mix, oc{label, v})
	}
	sort.Slice(mix, func(i, j int) bool {
		if mix[i].count != mix[j].count {
			return mix[i].count > mix[j].count
		}
		return mix[i].name < mix[j].name
	})
	parts := make([]string, len(mix))
	for i, m := range mix {
		parts[i] = fmt.Sprintf("%s %d", m.name, m.count)
	}
	return strings.Join(parts, " ")
}
