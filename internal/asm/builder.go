// Package asm implements a programmatic assembler and linker for the
// simulated machine defined in internal/isa.
//
// Guest programs — the three MPI workloads and the guest-side runtime
// libraries — are authored in Go through this package's builder DSL and
// linked into an image.Image.  The assembler keeps a full symbol table and
// records, for every symbol, whether it belongs to the user application or
// the MPI library.  That attribution is what lets the fault injector build
// the paper's "fault dictionary": a list of {symbolic name, address} pairs
// from which MPI-library addresses have been removed (§3.2).
package asm

import (
	"fmt"
	"math"

	"mpifault/internal/abi"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Builder accumulates modules and links them into an image.
type Builder struct {
	modules []*Module
	errs    []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// Module creates a new module.  Owner determines the symbol attribution
// used by the fault dictionary: OwnerMPI modules are excluded from
// user-targeted injections.
func (b *Builder) Module(name string, owner image.Owner) *Module {
	m := &Module{
		b:      b,
		name:   name,
		owner:  owner,
		consts: make(map[uint64]string),
	}
	b.modules = append(b.modules, m)
	return m
}

func (b *Builder) errorf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Module is a named collection of functions and data with a single owner.
type Module struct {
	b      *Builder
	name   string
	owner  image.Owner
	funcs  []*Func
	datas  []*dataSym
	bsses  []*bssSym
	consts map[uint64]string // f64 bits -> pool symbol name
}

type dataSym struct {
	name  string
	bytes []byte
	align uint32
}

type bssSym struct {
	name  string
	size  uint32
	align uint32
}

// Func starts a new function in the module.
func (m *Module) Func(name string) *Func {
	f := &Func{
		mod:    m,
		name:   name,
		labels: make(map[Label]int),
	}
	m.funcs = append(m.funcs, f)
	return f
}

// Data defines an initialized data symbol with the given raw bytes.
func (m *Module) Data(name string, bytes []byte) {
	m.datas = append(m.datas, &dataSym{name: name, bytes: append([]byte(nil), bytes...), align: 4})
}

// DataI32 defines an initialized data symbol holding 32-bit integers.
func (m *Module) DataI32(name string, vals ...int32) {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		putU32(b[4*i:], uint32(v))
	}
	m.datas = append(m.datas, &dataSym{name: name, bytes: b, align: 4})
}

// DataF64 defines an initialized data symbol holding float64 values.
func (m *Module) DataF64(name string, vals ...float64) {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		putU64(b[8*i:], math.Float64bits(v))
	}
	m.datas = append(m.datas, &dataSym{name: name, bytes: b, align: 8})
}

// DataString defines an initialized data symbol holding the bytes of s.
func (m *Module) DataString(name, s string) {
	m.datas = append(m.datas, &dataSym{name: name, bytes: []byte(s), align: 1})
}

// BSS defines a zero-initialized symbol of the given size in bytes.
func (m *Module) BSS(name string, size uint32) {
	m.bsses = append(m.bsses, &bssSym{name: name, size: size, align: 8})
}

// constF64 interns a float64 constant in the module's pool and returns the
// pool symbol's name.
func (m *Module) constF64(v float64) string {
	bits := math.Float64bits(v)
	if name, ok := m.consts[bits]; ok {
		return name
	}
	name := fmt.Sprintf("__const_%s_%d", m.name, len(m.consts))
	m.consts[bits] = name
	m.DataF64(name, v)
	return name
}

// LinkConfig controls address-space sizing at link time.
type LinkConfig struct {
	// HeapSize bounds the heap segment; defaults to 8 MiB.
	HeapSize uint32
	// StackSize sizes the stack segment; defaults to 256 KiB.
	StackSize uint32
	// Entry names the function _start calls; defaults to "main".
	Entry string
}

func (c *LinkConfig) fill() {
	if c.HeapSize == 0 {
		c.HeapSize = 8 << 20
	}
	if c.StackSize == 0 {
		c.StackSize = 256 << 10
	}
	if c.Entry == "" {
		c.Entry = "main"
	}
}

// Link lays out all modules and resolves every reference, producing a
// runnable image.
func (b *Builder) Link(cfg LinkConfig) (*image.Image, error) {
	cfg.fill()

	// Synthesize the startup shim.  It is owned by the user application,
	// as crt0 would be in a statically linked binary.
	crt := b.Module("crt0", image.OwnerUser)
	start := crt.Func("_start")
	start.Call(cfg.Entry)
	start.Sys(abi.SysExit) // exit code: main's return value, already in r0
	// Safety net: falling through _start is impossible (SysExit never
	// returns), but keep the segment from ending exactly at the last
	// instruction so that a wild PC one instruction past the end still
	// fetches from mapped text and raises SIGILL rather than SIGSEGV.
	start.raw(isa.Instr{Op: isa.OpInvalid})

	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}

	// Pass 1: assign text addresses.
	syms := make(map[string]*image.Symbol)
	addSym := func(s image.Symbol) {
		if _, dup := syms[s.Name]; dup {
			b.errorf("asm: duplicate symbol %q", s.Name)
			return
		}
		c := s
		syms[s.Name] = &c
	}

	textAddr := image.TextBase
	for _, m := range b.modules {
		for _, f := range m.funcs {
			size := uint32(len(f.code)) * isa.InstrBytes
			addSym(image.Symbol{
				Name: f.name, Module: m.name, Kind: image.SymFunc,
				Owner: m.owner, Addr: textAddr, Size: size,
			})
			f.addr = textAddr
			textAddr += size
		}
	}
	textSize := textAddr - image.TextBase

	// Pass 2: assign data and BSS addresses.
	dataBase := alignUp(image.TextBase+textSize, image.PageAlign)
	dataAddr := dataBase
	for _, m := range b.modules {
		for _, d := range m.datas {
			dataAddr = alignUp(dataAddr, d.align)
			addSym(image.Symbol{
				Name: d.name, Module: m.name, Kind: image.SymData,
				Owner: m.owner, Addr: dataAddr, Size: uint32(len(d.bytes)),
			})
			dataAddr += uint32(len(d.bytes))
		}
	}
	dataSize := dataAddr - dataBase

	bssBase := alignUp(dataAddr, image.PageAlign)
	bssAddr := bssBase
	for _, m := range b.modules {
		for _, s := range m.bsses {
			bssAddr = alignUp(bssAddr, s.align)
			addSym(image.Symbol{
				Name: s.name, Module: m.name, Kind: image.SymBSS,
				Owner: m.owner, Addr: bssAddr, Size: s.size,
			})
			bssAddr += s.size
		}
	}
	bssSize := bssAddr - bssBase

	heapBase := alignUp(bssAddr, image.PageAlign)

	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}

	// Pass 3: emit text with all references patched.
	text := make([]byte, textSize)
	for _, m := range b.modules {
		for _, f := range m.funcs {
			if err := f.emit(text, syms); err != nil {
				return nil, err
			}
		}
	}

	// Pass 4: emit data.
	data := make([]byte, dataSize)
	for _, m := range b.modules {
		for _, d := range m.datas {
			s := syms[d.name]
			copy(data[s.Addr-dataBase:], d.bytes)
		}
	}

	entry, ok := syms["_start"]
	if !ok {
		return nil, fmt.Errorf("asm: missing _start")
	}
	if _, ok := syms[cfg.Entry]; !ok {
		return nil, fmt.Errorf("asm: entry function %q not defined", cfg.Entry)
	}

	im := &image.Image{
		Text:      text,
		Data:      data,
		BSSSize:   bssSize,
		DataBase:  dataBase,
		BSSBase:   bssBase,
		HeapBase:  heapBase,
		HeapLimit: heapBase + cfg.HeapSize,
		StackSize: cfg.StackSize,
		Entry:     entry.Addr,
	}
	for _, s := range syms {
		im.Symbols = append(im.Symbols, *s)
	}
	im.SortSymbols()
	if err := im.Validate(); err != nil {
		return nil, err
	}
	return im, nil
}

func alignUp(v, a uint32) uint32 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
