package vm

import (
	"sync/atomic"
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Directed tests for the superblock tier's correctness anchors
// (superblock.go): event-boundary exactness, mid-block trigger splitting,
// text-flip block invalidation, snapshot/restore of compiled state, and
// the Run stop-latency bound.  The app-level differential suite
// (predecode_differential_test.go) covers the same anchors end to end;
// these tests pin the mechanisms white-box so a regression names the
// broken part instead of "some app diverged".

// sbLoopImage links the benchmark's mixed integer/FP loop with a chosen
// trip count: eight instructions per iteration spanning ALU, FP stack
// and BSS memory, so compiled runs cover every hot uop family.
func sbLoopImage(t *testing.T, trip int32) *image.Image {
	t.Helper()
	ab := asm.NewBuilder()
	m := ab.Module("sbt", image.OwnerUser)
	m.BSS("scratch", 16)
	f := m.Func("main")
	f.Movi(isa.R1, 0)
	f.Movi(isa.R2, trip)
	loop := f.NewLabel()
	f.Label(loop)
	f.Addi(isa.R1, isa.R1, 1)
	f.Xori(isa.R3, isa.R1, 0x55)
	f.FldConst(1.5)
	f.FldConst(2.5)
	f.Fmulp()
	f.FstpSym("scratch", 0)
	f.Cmp(isa.R1, isa.R2)
	f.Blt(loop)
	f.Movi(isa.R0, 0)
	f.Sys(abi.SysExit)
	im, err := ab.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// archState is everything architecturally observable about a machine.
type archState struct {
	Regs   [isa.NumGPR]uint32
	PC     uint32
	Flags  uint32
	FP     FPEnv
	Instrs uint64
	MinSP  uint32
}

func stateOf(m *Machine) archState {
	return archState{Regs: m.Regs, PC: m.PC, Flags: m.Flags, FP: m.FP,
		Instrs: m.Instrs, MinSP: m.MinSP}
}

func sameTrap(a, b *Trap) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || (a.Kind == b.Kind && a.PC == b.PC && a.Code == b.Code)
}

// pcRecorder captures the exact Exec callback stream.
type pcRecorder struct{ pcs []uint32 }

func (r *pcRecorder) Exec(pc uint32) { r.pcs = append(r.pcs, pc) }

func (r *pcRecorder) Load(uint32, int)  {}
func (r *pcRecorder) Store(uint32, int) {}

// TestSuperblockEndTable pins the structural invariants of the compiled
// run-end table that runBlocks and sbInvalidate rely on: every slot is a
// valid block entry, end is monotone non-decreasing, interior slots share
// their run's end (the suffix property), and only the final uop of a run
// may terminate.
func TestSuperblockEndTable(t *testing.T) {
	im := sbLoopImage(t, 100)
	prog, end := compileSuperblocks(isa.DecodeAll(im.Text))
	if len(prog) != len(end) || len(prog) == 0 {
		t.Fatalf("len(prog)=%d len(end)=%d", len(prog), len(end))
	}
	for s := range prog {
		e := end[s]
		if e <= uint32(s) || e > uint32(len(prog)) {
			t.Fatalf("end[%d]=%d out of range (%d slots)", s, e, len(prog))
		}
		if s+1 < len(end) && end[s] > end[s+1] {
			t.Fatalf("end not monotone at slot %d: %d > %d", s, end[s], end[s+1])
		}
		for q := uint32(s) + 1; q < e; q++ {
			if end[q] != e {
				t.Fatalf("interior slot %d of run [%d,%d) has end %d", q, s, e, end[q])
			}
		}
		for q := uint32(s); q < e-1; q++ {
			if prog[q].kind.terminates() {
				t.Fatalf("slot %d terminates mid-run [%d,%d)", q, s, e)
			}
		}
	}
	// The loop image must actually produce a multi-instruction run, or
	// every block test in this file is vacuous.
	long := false
	for s := range end {
		if end[s]-uint32(s) >= 4 {
			long = true
		}
	}
	if !long {
		t.Fatal("no run of length >= 4 compiled; block tests would be vacuous")
	}
}

// midRunTrigger finds an instruction count T (>= lo) at which the machine
// is about to execute an instruction strictly inside a compiled run —
// i.e. the trigger will split a superblock, not land on a block edge.
func midRunTrigger(t *testing.T, im *image.Image, lo uint64) uint64 {
	t.Helper()
	rec := &pcRecorder{}
	m := New(im)
	m.DisableSuperblocks()
	m.Tracer = rec
	m.Handler = &testHandler{}
	m.Run(10_000)
	ref := New(im) // only for its run-end table
	for i := lo; i < uint64(len(rec.pcs)); i++ {
		slot := (rec.pcs[i] - image.TextBase) / isa.InstrBytes
		if slot > 0 && ref.sbEnd[slot-1] > slot {
			return i
		}
	}
	t.Fatal("no mid-run instruction found; loop image compiled to single-uop runs?")
	return 0
}

// TestSuperblockMidBlockTriggerSplit: a TriggerAt that lands strictly
// inside a compiled run must fire at the identical retired-instruction
// count and PC as the per-instruction interpreter, and a fault injected
// there must produce the identical downstream execution.
func TestSuperblockMidBlockTriggerSplit(t *testing.T) {
	im := sbLoopImage(t, 400)
	trig := midRunTrigger(t, im, 10)

	type seen struct {
		instrs uint64
		pc     uint32
	}
	run := func(disable bool) (seen, RunResult, archState) {
		m := New(im)
		if disable {
			m.DisableSuperblocks()
		}
		var at seen
		m.TriggerAt = trig
		m.TriggerFn = func(m *Machine) {
			at = seen{m.Instrs, m.PC}
			m.Regs[isa.R1] ^= 1 << 9 // inject: downstream must diverge identically
		}
		m.Handler = &testHandler{}
		out := m.Run(100_000)
		return at, out, stateOf(m)
	}

	sbAt, sbOut, sbState := run(false)
	inAt, inOut, inState := run(true)
	if sbAt != inAt {
		t.Fatalf("trigger fired at %+v superblock vs %+v interp", sbAt, inAt)
	}
	if sbAt.instrs != trig {
		t.Fatalf("trigger fired at instr %d, want %d", sbAt.instrs, trig)
	}
	if sbOut.Reason != inOut.Reason || !sameTrap(sbOut.Trap, inOut.Trap) {
		t.Fatalf("stop diverged: %+v vs %+v", sbOut, inOut)
	}
	if sbState != inState {
		t.Fatalf("post-injection state diverged:\n sb: %+v\n in: %+v", sbState, inState)
	}
}

// TestSuperblockTracerParity: a non-nil Tracer must see the identical
// per-PC Exec stream from compiled blocks as from the interpreter.
func TestSuperblockTracerParity(t *testing.T) {
	im := sbLoopImage(t, 50)
	trace := func(disable bool) []uint32 {
		m := New(im)
		if disable {
			m.DisableSuperblocks()
		}
		rec := &pcRecorder{}
		m.Tracer = rec
		m.Handler = &testHandler{}
		if out := m.Run(100_000); out.Trap == nil || out.Trap.Kind != TrapExit {
			t.Fatalf("run: %+v", out)
		}
		return rec.pcs
	}
	sb, in := trace(false), trace(true)
	if len(sb) != len(in) {
		t.Fatalf("traced %d PCs superblock vs %d interp", len(sb), len(in))
	}
	for i := range sb {
		if sb[i] != in[i] {
			t.Fatalf("PC stream diverges at %d: %08x vs %08x", i, sb[i], in[i])
		}
	}
}

// TestSuperblockTextFlipInvalidation: a RawWrite into text must truncate
// the machine-local run-end table — cloning the shared one first — so no
// compiled run executes into the overwritten slot, while sibling machines
// on the same image keep the intact shared table.
func TestSuperblockTextFlipInvalidation(t *testing.T) {
	im := predecodeImage(t) // 5 straight-line instructions ending in Sys
	a, b := New(im), New(im)
	n := uint32(len(a.sbEnd))
	if n < 5 {
		t.Fatalf("expected >= 5 slots, got %d", n)
	}
	if a.sbEndOwned || &a.sbEnd[0] != &b.sbEnd[0] {
		t.Fatal("fresh machines must share the image's run-end table")
	}
	orig := append([]uint32(nil), b.sbEnd...)

	const dirty = 2
	addr := image.TextBase + dirty*isa.InstrBytes
	if !a.RawWrite(addr, []byte{0xff}) {
		t.Fatal("text write failed")
	}
	if !a.sbEndOwned {
		t.Fatal("invalidation did not clone the shared table")
	}
	if a.sbEnd[dirty] != dirty {
		t.Fatalf("dirty slot end = %d, want %d (empty run -> Step fallback)",
			a.sbEnd[dirty], dirty)
	}
	for s := uint32(0); s < dirty; s++ {
		if a.sbEnd[s] != dirty {
			t.Fatalf("slot %d run end = %d, want truncated to %d", s, a.sbEnd[s], dirty)
		}
	}
	for s := uint32(dirty + 1); s < n; s++ {
		if a.sbEnd[s] != b.sbEnd[s] {
			t.Fatalf("slot %d past the dirty slot was truncated (%d vs %d)",
				s, a.sbEnd[s], b.sbEnd[s])
		}
	}
	if b.sbEndOwned {
		t.Fatal("sibling machine claims ownership it never took")
	}
	for s := range orig {
		if b.sbEnd[s] != orig[s] {
			t.Fatalf("sibling's shared table modified at slot %d: %d -> %d",
				s, orig[s], b.sbEnd[s])
		}
	}

	// The truncated machine must fault exactly at the corrupted slot and
	// the sibling must still run clean.
	if out := runToStop(t, a); out.Trap == nil || out.Trap.Kind != TrapIll || out.Trap.PC != addr {
		t.Fatalf("corrupted machine: %+v, want SIGILL@%08x", out.Trap, addr)
	}
	if out := runToStop(t, b); out.Trap == nil || out.Trap.Kind != TrapExit {
		t.Fatalf("sibling machine: %+v, want clean exit", out.Trap)
	}
}

// TestSuperblockTextFlipMidRun: corrupting the loop body from a trigger
// while blocks over it are hot must fault identically under both tiers —
// the dirty-slot truncation may not let an already-compiled run mask the
// corruption.
func TestSuperblockTextFlipMidRun(t *testing.T) {
	im := sbLoopImage(t, 1<<20)
	trig := midRunTrigger(t, im, 40)
	run := func(disable bool) (RunResult, uint64) {
		m := New(im)
		if disable {
			m.DisableSuperblocks()
		}
		m.TriggerAt = trig
		m.TriggerFn = func(m *Machine) {
			// Overwrite the instruction the machine is about to execute.
			if !m.RawWrite(m.PC, []byte{0xff}) {
				t.Error("text write failed")
			}
		}
		m.Handler = &testHandler{}
		out := m.Run(1_000_000)
		return out, m.Instrs
	}
	sbOut, sbInstrs := run(false)
	inOut, inInstrs := run(true)
	if sbOut.Trap == nil || sbOut.Trap.Kind != TrapIll {
		t.Fatalf("superblock run: %+v, want SIGILL", sbOut.Trap)
	}
	if !sameTrap(sbOut.Trap, inOut.Trap) || sbInstrs != inInstrs {
		t.Fatalf("diverged: %+v after %d instrs vs %+v after %d",
			sbOut.Trap, sbInstrs, inOut.Trap, inInstrs)
	}
	// Step counts the faulting instruction before raising the trap, so the
	// corrupted instruction at the trigger point retires the count to trig+1.
	if sbInstrs != trig+1 {
		t.Fatalf("faulted after %d instrs, want %d (trigger+1)", sbInstrs, trig+1)
	}
}

// TestSuperblockSnapshotRestore: snapshots carry no compiled state.  A
// snapshot taken mid-block must restore to a machine that re-derives the
// shared uop program and finishes bit-identically to the uninterrupted
// run; a snapshot of a text-dirty machine must re-derive the run-end
// truncations from the dirty bitmap.
func TestSuperblockSnapshotRestore(t *testing.T) {
	im := sbLoopImage(t, 300)
	trig := midRunTrigger(t, im, 10) // a budget stop at trig lands mid-run

	// Uninterrupted reference run.
	ref := New(im)
	ref.Handler = &testHandler{}
	refOut := ref.Run(100_000)
	if refOut.Trap == nil || refOut.Trap.Kind != TrapExit {
		t.Fatalf("reference run: %+v", refOut)
	}

	// Stop mid-block, snapshot, restore, finish.
	m := New(im)
	m.Handler = &testHandler{}
	if out := m.Run(trig); out.Reason != StopBudget || m.Instrs != trig {
		t.Fatalf("budget stop: %+v at %d instrs, want StopBudget at %d", out, m.Instrs, trig)
	}
	snap := m.Snapshot()
	if snap.Instrs() != trig {
		t.Fatalf("snapshot instrs = %d, want %d", snap.Instrs(), trig)
	}
	r := snap.NewMachine()
	if r.sbProg == nil || r.sbEnd == nil || r.pre == nil {
		t.Fatal("restored machine did not re-derive compiled state")
	}
	if r.sbEndOwned {
		t.Fatal("clean snapshot restored an owned (truncated) run-end table")
	}
	r.Handler = &testHandler{}
	rOut := r.Run(100_000)
	if rOut.Reason != refOut.Reason || !sameTrap(rOut.Trap, refOut.Trap) {
		t.Fatalf("restored run stop diverged: %+v vs %+v", rOut, refOut)
	}
	if rs, refs := stateOf(r), stateOf(ref); rs != refs {
		t.Fatalf("restored final state diverged:\n got: %+v\nwant: %+v", rs, refs)
	}

	// The original machine keeps running past its snapshot too.
	mOut := m.Run(100_000)
	if !sameTrap(mOut.Trap, refOut.Trap) || stateOf(m) != stateOf(ref) {
		t.Fatalf("snapshotted machine diverged after capture: %+v", mOut)
	}

	// Dirty-bitmap rebuild: corrupt text, snapshot, and the restored
	// machine's truncations must match the original's exactly.
	d := New(im)
	if !d.RawWrite(image.TextBase+3*isa.InstrBytes, []byte{0xff}) {
		t.Fatal("text write failed")
	}
	rd := d.Snapshot().NewMachine()
	if !rd.sbEndOwned {
		t.Fatal("dirty snapshot restored without rebuilding truncations")
	}
	for s := range d.sbEnd {
		if rd.sbEnd[s] != d.sbEnd[s] {
			t.Fatalf("rebuilt run-end table diverges at slot %d: %d vs %d",
				s, rd.sbEnd[s], d.sbEnd[s])
		}
	}
}

// TestRunStopLatency pins both halves of Run's documented stop-latency
// bound: a Stop set before Run is entered is honoured before any
// instruction retires (even at a non-aligned instruction count), and a
// Stop set mid-run is honoured at the next 4096-instruction poll
// boundary.
func TestRunStopLatency(t *testing.T) {
	im := sbLoopImage(t, 1<<30)

	// Pre-set Stop: killed before the first instruction.
	m := New(im)
	m.Handler = &testHandler{}
	var stop atomic.Bool
	m.Stop = &stop
	stop.Store(true)
	if out := m.Run(1000); out.Trap == nil || out.Trap.Kind != TrapKilled {
		t.Fatalf("pre-set stop: %+v, want TrapKilled", out)
	}
	if m.Instrs != 0 {
		t.Fatalf("pre-set stop retired %d instructions, want 0", m.Instrs)
	}

	// Pre-set Stop at a non-aligned count: a machine parked at instruction
	// 100 (not a poll boundary) must still be killed on re-entry, not
	// 3996 instructions later.
	for _, disable := range []bool{false, true} {
		m := New(im)
		if disable {
			m.DisableSuperblocks()
		}
		m.Handler = &testHandler{}
		var stop atomic.Bool
		m.Stop = &stop
		if out := m.Run(100); out.Reason != StopBudget || m.Instrs != 100 {
			t.Fatalf("budget stop: %+v at %d instrs", out, m.Instrs)
		}
		stop.Store(true)
		if out := m.Run(0); out.Trap == nil || out.Trap.Kind != TrapKilled {
			t.Fatalf("re-entry stop: %+v, want TrapKilled", out)
		}
		if m.Instrs != 100 {
			t.Fatalf("re-entry stop retired %d extra instructions", m.Instrs-100)
		}
	}

	// Mid-run Stop: set at instruction 5000 via the trigger, honoured at
	// the next multiple of 4096 (= 8192), identically under both tiers.
	for _, disable := range []bool{false, true} {
		m := New(im)
		if disable {
			m.DisableSuperblocks()
		}
		m.Handler = &testHandler{}
		var stop atomic.Bool
		m.Stop = &stop
		m.TriggerAt = 5000
		m.TriggerFn = func(*Machine) { stop.Store(true) }
		out := m.Run(0)
		if out.Trap == nil || out.Trap.Kind != TrapKilled {
			t.Fatalf("mid-run stop (disable=%v): %+v, want TrapKilled", disable, out)
		}
		if m.Instrs != 8192 {
			t.Fatalf("mid-run stop (disable=%v) honoured at %d instrs, want poll boundary 8192",
				disable, m.Instrs)
		}
	}
}
