package vm

import (
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Predecode cache.
//
// A campaign executes the same image thousands of times (hundreds of
// injections x several ranks x eight regions), and the interpreter used to
// re-decode the instruction bytes on every retired instruction.  Instead,
// the text segment is decoded exactly once per image into an immutable
// []isa.Instr table shared by every machine, and Step fetches decoded
// instructions by slot index.
//
// The table is only a cache of the text bytes, never the truth: a machine
// whose text has been written (the injector's RawWrite — there is no other
// way to write text) records the affected slots in a per-machine dirty
// bitmap, and dirty slots take the byte-decode path again so that corrupted
// encodings keep raising SIGILL exactly as they did before predecoding.
// Likewise a PC that is not slot-aligned (possible after a PC bit flip)
// falls back to byte decoding.

// predecodeFor returns the image's shared predecoded text table.
func predecodeFor(im *image.Image) []isa.Instr {
	return im.Predecoded(func() any {
		return isa.DecodeAll(im.Text)
	}).([]isa.Instr)
}

// DisablePredecode forces the machine back onto the per-instruction
// byte-decode fetch path.  The differential tests use it to check that
// predecoded execution is semantically invisible.
func (m *Machine) DisablePredecode() { m.pre = nil }

// markTextDirty records that text bytes [off, off+n) were overwritten, so
// the predecode slots covering them must be byte-decoded from now on.
func (m *Machine) markTextDirty(off uint32, n int) {
	if n <= 0 {
		return
	}
	if m.textDirty == nil {
		slots := (m.text.length + isa.InstrBytes - 1) / isa.InstrBytes
		m.textDirty = make([]uint64, (slots+63)/64)
	}
	last := (off + uint32(n) - 1) / isa.InstrBytes
	for s := off / isa.InstrBytes; s <= last; s++ {
		m.textDirty[s/64] |= 1 << (s % 64)
	}
}

// textSlotDirty reports whether predecode slot s has been overwritten on
// this machine.
func (m *Machine) textSlotDirty(s uint32) bool {
	d := m.textDirty
	return d != nil && d[s/64]&(1<<(s%64)) != 0
}
