package cluster

import (
	"strings"
	"testing"
	"time"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/progress"
	"mpifault/internal/vm"
)

// buildProgram links libc+libmpi around the emitted main body.
func buildProgram(t *testing.T, body func(m *asm.Module, f *asm.Func)) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	f.Prologue(0)
	body(m, f)
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

func mustExitClean(t *testing.T, res *Result) {
	t.Helper()
	if res.HangDetected {
		t.Fatalf("hang: %s", res.HangCause)
	}
	for r, rr := range res.Ranks {
		if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit || rr.Trap.Code != 0 {
			t.Fatalf("rank %d: %v (stderr %q)", r, rr.Trap, res.Stderr[r])
		}
	}
}

// TestIsendIrecvWaitall: both ranks post Irecv, Isend large (rendezvous)
// payloads to each other, then Waitall — the pattern that deadlocks with
// blocking sends but must complete with nonblocking progress.
func TestIsendIrecvWaitall(t *testing.T) {
	const words = 2048 // 8 KiB: forces rendezvous both ways
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("sb", words*4)
		m.BSS("rb", words*4)
		m.BSS("reqs", 8)   // two request handles
		m.BSS("stats", 24) // two status blocks
		m.BSS("myrank", 4)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		f.StSym("myrank", 0, isa.R0)
		// sb[0] = myrank + 400
		f.Addi(isa.R1, isa.R0, 400)
		f.StSym("sb", 0, isa.R1)
		// peer = 1 - myrank
		f.LdSym(isa.R0, "myrank", 0)
		f.Movi(isa.R2, 1)
		f.Sub(isa.R2, isa.R2, isa.R0)
		// Post the receive first, then the send: nonblocking progress
		// must complete both even though each rank's send needs the
		// peer's posted receive (rendezvous).
		f.CallArgs("MPI_Irecv", asm.Sym("rb"), asm.Imm(words), asm.Imm(abi.DTInt32),
			asm.Reg(isa.R2), asm.Imm(5), asm.Imm(abi.CommWorld), asm.Sym("reqs"))
		f.LdSym(isa.R0, "myrank", 0)
		f.Movi(isa.R2, 1)
		f.Sub(isa.R2, isa.R2, isa.R0)
		f.CallArgs("MPI_Isend", asm.Sym("sb"), asm.Imm(words), asm.Imm(abi.DTInt32),
			asm.Reg(isa.R2), asm.Imm(5), asm.Imm(abi.CommWorld), asm.SymOff("reqs", 4))
		f.CallArgs("MPI_Waitall", asm.Imm(2), asm.Sym("reqs"), asm.Sym("stats"))
		// print rb[0]
		f.LdSym(isa.R1, "rb", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 2, Budget: 50_000_000})
	mustExitClean(t, res)
	if got := string(res.Stdout[0]); got != "401" {
		t.Fatalf("rank 0 received %q, want 401", got)
	}
	if got := string(res.Stdout[1]); got != "400" {
		t.Fatalf("rank 1 received %q, want 400", got)
	}
}

// TestSendrecvRing: every rank simultaneously Sendrecvs with its ring
// neighbours — no parity ordering needed.
func TestSendrecvRing(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("sb", 4)
		m.BSS("rb", 4)
		m.BSS("status", 12)
		m.BSS("myrank", 4)
		m.BSS("nproc", 4)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		f.StSym("myrank", 0, isa.R0)
		f.CallArgs("MPI_Comm_size", asm.Imm(abi.CommWorld))
		f.StSym("nproc", 0, isa.R0)
		f.LdSym(isa.R1, "myrank", 0)
		f.Muli(isa.R1, isa.R1, 100)
		f.StSym("sb", 0, isa.R1)
		// dest = (rank+1)%size, source = (rank-1+size)%size
		f.LdSym(isa.R0, "myrank", 0)
		f.LdSym(isa.R1, "nproc", 0)
		f.Addi(isa.R2, isa.R0, 1)
		f.Rems(isa.R2, isa.R2, isa.R1)
		f.Add(isa.R3, isa.R0, isa.R1)
		f.Addi(isa.R3, isa.R3, -1)
		f.Rems(isa.R3, isa.R3, isa.R1)
		f.CallArgs("MPI_Sendrecv",
			asm.Sym("sb"), asm.Imm(1), asm.Imm(abi.DTInt32), asm.Reg(isa.R2), asm.Imm(3),
			asm.Sym("rb"), asm.Imm(1), asm.Reg(isa.R3), asm.Imm(3),
			asm.Imm(abi.CommWorld), asm.Sym("status"))
		// rank 0: print rb (should be from rank size-1) and status.source
		f.LdSym(isa.R0, "myrank", 0)
		f.Cmpi(isa.R0, 0)
		skip := f.NewLabel()
		f.Bne(skip)
		f.LdSym(isa.R1, "rb", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.LdSym(isa.R1, "status", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.Label(skip)
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 5, Budget: 20_000_000})
	mustExitClean(t, res)
	if got := string(res.Stdout[0]); got != "4004" {
		t.Fatalf("rank 0 printed %q, want 4004 (value 400, source 4)", got)
	}
}

// TestCommSplit: split even/odd ranks into sub-communicators, allreduce
// within each, and verify the sums stay disjoint.
func TestCommSplit(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("newcomm", 4)
		m.BSS("val", 4)
		m.BSS("sum", 4)
		m.BSS("myrank", 4)
		m.BSS("subrank", 4)
		m.BSS("subsize", 4)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		f.StSym("myrank", 0, isa.R0)
		f.StSym("val", 0, isa.R0)
		// color = rank % 2, key = -rank (reverses the order inside the
		// new communicator; keys may be any integers).
		f.Andi(isa.R1, isa.R0, 1)
		f.Neg(isa.R2, isa.R0)
		f.CallArgs("MPI_Comm_split", asm.Imm(abi.CommWorld), asm.Reg(isa.R1),
			asm.Reg(isa.R2), asm.Sym("newcomm"))
		f.LdSym(isa.R3, "newcomm", 0)
		f.CallArgs("MPI_Comm_rank", asm.Reg(isa.R3))
		f.StSym("subrank", 0, isa.R0)
		f.LdSym(isa.R3, "newcomm", 0)
		f.CallArgs("MPI_Comm_size", asm.Reg(isa.R3))
		f.StSym("subsize", 0, isa.R0)
		f.LdSym(isa.R3, "newcomm", 0)
		f.CallArgs("MPI_Allreduce", asm.Sym("val"), asm.Sym("sum"),
			asm.Imm(1), asm.Imm(abi.DTInt32), asm.Imm(abi.OpSum), asm.Reg(isa.R3))
		// world rank 0 and 1 print: sum, subrank, subsize
		f.LdSym(isa.R0, "myrank", 0)
		f.Cmpi(isa.R0, 2)
		skip := f.NewLabel()
		f.Bge(skip)
		f.LdSym(isa.R1, "sum", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.LdSym(isa.R1, "subrank", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.LdSym(isa.R1, "subsize", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.Label(skip)
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 6, Budget: 50_000_000})
	mustExitClean(t, res)
	// Evens {0,2,4}: sum 6.  Key = -rank reverses: world rank 0 has the
	// highest key, so subrank 2 of 3.
	if got := string(res.Stdout[0]); got != "623" {
		t.Fatalf("rank 0 printed %q, want 623", got)
	}
	// Odds {1,3,5}: sum 9; world rank 1 -> subrank 2 of 3.
	if got := string(res.Stdout[1]); got != "923" {
		t.Fatalf("rank 1 printed %q, want 923", got)
	}
}

// TestCommDup: a duplicated communicator works for collectives and is
// distinct from its parent.
func TestCommDup(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("newcomm", 4)
		m.BSS("val", 4)
		m.BSS("sum", 4)
		m.BSS("myrank", 4)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		f.StSym("myrank", 0, isa.R0)
		f.Movi(isa.R1, 1)
		f.StSym("val", 0, isa.R1)
		f.CallArgs("MPI_Comm_dup", asm.Imm(abi.CommWorld), asm.Sym("newcomm"))
		f.LdSym(isa.R3, "newcomm", 0)
		f.CallArgs("MPI_Allreduce", asm.Sym("val"), asm.Sym("sum"),
			asm.Imm(1), asm.Imm(abi.DTInt32), asm.Imm(abi.OpSum), asm.Reg(isa.R3))
		f.LdSym(isa.R0, "myrank", 0)
		f.Cmpi(isa.R0, 0)
		skip := f.NewLabel()
		f.Bne(skip)
		f.LdSym(isa.R1, "sum", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.LdSym(isa.R1, "newcomm", 0)
		f.Cmpi(isa.R1, abi.CommWorld)
		same := f.NewLabel()
		f.Beq(same)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Imm(1))
		f.Label(same)
		f.Label(skip)
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 4, Budget: 20_000_000})
	mustExitClean(t, res)
	if got := string(res.Stdout[0]); got != "41" {
		t.Fatalf("rank 0 printed %q, want 41 (sum=4, handle differs)", got)
	}
}

// TestProgressDetectorCatchesLivelock: a guest that spins forever after
// some healthy communication shows steady message progress, then none.
// With the deadlock detector disabled (the spinning rank is Running, so
// it would never fire anyway), the §7 progress metric must catch it well
// before the wall clock.
func TestProgressDetectorCatchesLivelock(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("buf", 4)
		m.BSS("sum", 4)
		m.BSS("myrank", 4)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		f.StSym("myrank", 0, isa.R0)
		// Healthy phase: a number of allreduces generating steady traffic.
		f.Movi(isa.R4, 0)
		loop, done := f.NewLabel(), f.NewLabel()
		f.Label(loop)
		f.Cmpi(isa.R4, 200)
		f.Bge(done)
		f.Push(isa.R4)
		f.CallArgs("MPI_Allreduce", asm.Sym("buf"), asm.Sym("sum"),
			asm.Imm(1), asm.Imm(abi.DTInt32), asm.Imm(abi.OpSum), asm.Imm(abi.CommWorld))
		f.Pop(isa.R4)
		f.Addi(isa.R4, isa.R4, 1)
		f.Jmp(loop)
		f.Label(done)
		// Rank 1 livelocks; the rest block in a barrier.
		f.LdSym(isa.R0, "myrank", 0)
		f.Cmpi(isa.R0, 1)
		spinNot := f.NewLabel()
		f.Bne(spinNot)
		spin := f.NewLabel()
		f.Label(spin)
		f.Jmp(spin)
		f.Label(spinNot)
		f.CallArgs("MPI_Barrier", asm.Imm(abi.CommWorld))
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{
		Image: im, Size: 4,
		WallLimit:               20 * time.Second,
		DisableDeadlockDetector: true,
		ProgressDetector:        &progress.Config{},
	})
	if !res.HangDetected {
		t.Fatal("livelock not detected")
	}
	if res.HangCause != "progress metric collapse" {
		t.Fatalf("cause = %q", res.HangCause)
	}
}

// TestWaitOnBadHandle: waiting on a garbage request handle is an
// argument-check failure (ERR_ARG), the MPI-Detected path.
func TestWaitOnBadHandle(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("bogus", 4)
		f.CallArgs("MPI_Init")
		f.Movi(isa.R1, 999)
		f.StSym("bogus", 0, isa.R1)
		f.CallArgs("MPI_Wait", asm.Sym("bogus"), asm.Imm(0))
		f.CallArgs("MPI_Finalize")
	})
	res := Run(Job{Image: im, Size: 1, Budget: 10_000_000})
	tr := res.Ranks[0].Trap
	if tr == nil || tr.Kind != vm.TrapMPIFatal {
		t.Fatalf("trap = %v", tr)
	}
	if !strings.Contains(tr.Msg, "MPI_ERR_ARG") {
		t.Fatalf("msg = %q", tr.Msg)
	}
}

// TestTCPTransportRuns: the same collectives-heavy program must produce
// identical output whether the Channel layer runs in-process or over
// loopback TCP sockets.
func TestTCPTransportRuns(t *testing.T) {
	im := buildProgram(t, func(m *asm.Module, f *asm.Func) {
		m.BSS("val", 4)
		m.BSS("sum", 4)
		m.BSS("big", 4096)
		m.BSS("bigr", 4096)
		m.BSS("myrank", 4)
		f.CallArgs("MPI_Init")
		f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
		f.StSym("myrank", 0, isa.R0)
		f.Addi(isa.R1, isa.R0, 1)
		f.StSym("val", 0, isa.R1)
		f.CallArgs("MPI_Allreduce", asm.Sym("val"), asm.Sym("sum"),
			asm.Imm(1), asm.Imm(abi.DTInt32), asm.Imm(abi.OpSum), asm.Imm(abi.CommWorld))
		// A rendezvous-sized broadcast exercises RTS/CTS over TCP.
		f.CallArgs("MPI_Bcast", asm.Sym("big"), asm.Imm(1024), asm.Imm(abi.DTInt32),
			asm.Imm(0), asm.Imm(abi.CommWorld))
		f.CallArgs("MPI_Barrier", asm.Imm(abi.CommWorld))
		f.LdSym(isa.R0, "myrank", 0)
		f.Cmpi(isa.R0, 0)
		skip := f.NewLabel()
		f.Bne(skip)
		f.LdSym(isa.R1, "sum", 0)
		f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
		f.Label(skip)
		f.CallArgs("MPI_Finalize")
	})
	inproc := Run(Job{Image: im, Size: 4, Budget: 50_000_000})
	mustExitClean(t, inproc)
	tcp := Run(Job{Image: im, Size: 4, Budget: 50_000_000,
		UseTCPTransport: true, WallLimit: 60 * time.Second})
	mustExitClean(t, tcp)
	if got, want := string(tcp.Stdout[0]), string(inproc.Stdout[0]); got != want {
		t.Fatalf("tcp output %q != in-process %q", got, want)
	}
	if string(tcp.Stdout[0]) != "10" {
		t.Fatalf("sum = %q", tcp.Stdout[0])
	}
}
