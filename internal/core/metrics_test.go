package core

import (
	"testing"

	"mpifault/internal/classify"
	"mpifault/internal/telemetry"
)

// TestCampaignTelemetryAndForensics runs one small campaign twice —
// plain, then with the registry and flight recorder attached — and
// checks (a) the instrumented run reaches identical outcomes, (b) the
// counters agree with the campaign's own tallies, and (c) forensics
// records land on the experiments and carry usable content.
func TestCampaignTelemetryAndForensics(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	im, ranks := buildApp(t, "wavetoy")
	base := Config{
		Image: im, Ranks: ranks, Injections: 8, Seed: 5,
		Regions:         []Region{RegionRegularReg, RegionText, RegionMessage},
		KeepExperiments: true,
	}

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	cfg := base
	cfg.Metrics = reg
	cfg.Forensics = true
	rich, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// (a) Telemetry and forensics must not perturb instruction-axis
	// outcomes.  Message-region experiments are excluded: their injection
	// target is a cumulative offset into the rank's *received* byte
	// stream, and the interleaving of packets from concurrent sender
	// goroutines is schedule-sensitive — two plain runs can already
	// disagree on which packet carries the trigger byte, so any tracer's
	// timing perturbation can too.  (The telemetry-disabled path is
	// byte-identical by construction; CI gates on that.)
	if len(plain.Experiments) != len(rich.Experiments) {
		t.Fatalf("experiment counts differ: %d vs %d", len(plain.Experiments), len(rich.Experiments))
	}
	for i := range plain.Experiments {
		p, r := plain.Experiments[i], rich.Experiments[i]
		if p.Region == RegionMessage {
			if p.Index != r.Index || p.Rank != r.Rank || p.Trigger != r.Trigger {
				t.Errorf("message experiment %s changed identity: %+v vs %+v", p.ID(), p, r)
			}
			continue
		}
		p.Forensics, r.Forensics = nil, nil
		if p != r {
			t.Errorf("experiment %s diverged under telemetry:\nplain: %+v\nrich:  %+v", p.ID(), p, r)
		}
	}

	// (b) Counters vs tallies.
	s := reg.Snapshot()
	total := uint64(len(base.Regions) * base.Injections)
	if got := s.Counters[telemetry.MetricExperimentsPlanned]; got != total {
		t.Errorf("planned counter = %d, want %d", got, total)
	}
	if got := s.Counters[telemetry.MetricExperimentsFinished]; got != total {
		t.Errorf("finished counter = %d, want %d", got, total)
	}
	byOutcome := make(map[classify.Outcome]uint64)
	for _, e := range rich.Experiments {
		byOutcome[e.Outcome]++
	}
	for o, want := range byOutcome {
		if got := s.Counters[telemetry.OutcomeMetric(o.String())]; got != want {
			t.Errorf("outcome counter %s = %d, tallies say %d", o, got, want)
		}
	}
	if got := s.Gauges[telemetry.MetricExperimentsInflight]; got != 0 {
		t.Errorf("inflight gauge = %d after campaign end, want 0", got)
	}
	if got := s.Counters[telemetry.MetricJobs]; got < total {
		t.Errorf("jobs counter = %d, want >= %d (one per experiment)", got, total)
	}
	if got := s.Counters[telemetry.MetricInstrsRetired]; got == 0 {
		t.Error("retired-instructions counter never moved")
	}

	// (c) Forensics on every experiment.  Crash records carry a trap and
	// the PC ring when the traced rank itself trapped (a crash can also
	// manifest on a peer rank, so require at least one, not all).
	crashes, trapped, withLatency := 0, 0, 0
	for _, e := range rich.Experiments {
		if e.Forensics == nil {
			t.Fatalf("experiment %s missing forensics", e.ID())
		}
		f := e.Forensics
		if len(f.LastPCs) == 0 {
			t.Errorf("experiment %s: empty flight-recorder ring", e.ID())
		}
		if e.Outcome != classify.Crash {
			continue
		}
		crashes++
		if f.TrapKind != "" {
			trapped++
		}
		if lat, ok := f.Latency(); ok {
			withLatency++
			if lat > 1<<40 {
				t.Errorf("crash %s: absurd latency %d", e.ID(), lat)
			}
		}
	}
	if crashes == 0 {
		t.Error("campaign produced no crashes; forensics assertions never ran")
	}
	if trapped == 0 {
		t.Errorf("%d crashes, none with a recorded trap on the injected rank", crashes)
	}
	if withLatency == 0 {
		t.Errorf("%d crashes, none with a usable manifestation latency", crashes)
	}
	if crashHist := s.Histograms[telemetry.MetricCrashLatency]; crashHist.Count != uint64(withLatency) {
		t.Errorf("crash-latency histogram count = %d, experiments say %d", crashHist.Count, withLatency)
	}
}
