package isa

// Op is an instruction opcode.  Opcode 0 is deliberately invalid so that a
// control-flow transfer into zero-initialized memory traps immediately with
// an illegal-instruction fault, as it typically would on real hardware.
type Op uint8

const (
	OpInvalid Op = iota // never generated; executing it raises SIGILL

	// Data movement.
	OpNop  // no operation
	OpMovi // rd = imm
	OpMovr // rd = ra

	// Integer ALU, register forms: rd = ra <op> rb.
	OpAdd
	OpSub
	OpMul
	OpDivs // signed divide; divisor 0 raises SIGFPE
	OpRems // signed remainder; divisor 0 raises SIGFPE
	OpAnd
	OpOr
	OpXor
	OpShl // shift count taken mod 32
	OpShr // logical right shift
	OpSar // arithmetic right shift
	OpNeg // rd = -ra

	// Integer ALU, immediate forms: rd = ra <op> imm.
	OpAddi
	OpMuli
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSari

	// Comparison: set flags from ra vs rb (or imm).
	OpCmp
	OpCmpi

	// Control flow.  Targets are absolute addresses in imm.
	OpJmp
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBle
	OpBgt
	OpBltu
	OpBgeu
	OpBun   // branch if unordered (NaN seen by FCOMPP/FXAM)
	OpCall  // push return address, jump to imm
	OpCallr // push return address, jump to ra
	OpRet   // pop return address, jump

	// Stack.
	OpPush // push ra
	OpPop  // pop into rd

	// Memory.  Effective address = ra + index(rb) + imm, where the index
	// register byte may be RegNone.
	OpLd  // rd = 32-bit load
	OpSt  // 32-bit store of rc
	OpLdb // rd = zero-extended byte load
	OpStb // byte store of rc (low 8 bits)

	// x87-style floating-point stack.  st0 is the top of stack.
	OpFld   // push f64 from [ra + index(rb) + imm]
	OpFldz  // push +0.0
	OpFld1  // push 1.0
	OpFldst // push a copy of st(imm)
	OpFst   // store st0 to [ra + index(rb) + imm]
	OpFstp  // store st0 and pop
	OpFaddp // st1 += st0; pop
	OpFsubp // st1 -= st0; pop
	OpFmulp // st1 *= st0; pop
	OpFdivp // st1 /= st0; pop (IEEE semantics: /0 gives ±Inf, no trap)
	OpFchs  // st0 = -st0
	OpFabs  // st0 = |st0|
	OpFsqrt // st0 = sqrt(st0); negative operand yields NaN
	OpFxch  // exchange st0 and st(imm)
	OpFcomp // compare st0 with st1, set flags, pop both (x87 FCOMPP)
	OpFxam  // set FlagZ if st0 is NaN or ±Inf, FlagUN if NaN
	OpFild  // push float64(int32(ra))
	OpFist  // rd = int32(st0) (truncated); pop; NaN/overflow store MinInt32

	// System call: number in imm, arguments in r0..r3, result in r0.
	OpSys

	opMax // sentinel; not a real opcode
)

// NumOpcodes is the number of defined opcodes (including OpInvalid).
const NumOpcodes = int(opMax)

// InstrBytes is the fixed size of an encoded instruction.
const InstrBytes = 8

// opInfo describes an opcode for the assembler, disassembler and verifier.
type opInfo struct {
	name string
	// operand usage flags, used by the disassembler and by property tests.
	hasRd, hasRa, hasRb, hasRc bool
	hasImm                     bool
	memForm                    bool // uses the ra+index(rb)+imm address form
}

var opTable = [opMax]opInfo{
	OpInvalid: {name: "invalid"},
	OpNop:     {name: "nop"},
	OpMovi:    {name: "movi", hasRd: true, hasImm: true},
	OpMovr:    {name: "movr", hasRd: true, hasRa: true},
	OpAdd:     {name: "add", hasRd: true, hasRa: true, hasRb: true},
	OpSub:     {name: "sub", hasRd: true, hasRa: true, hasRb: true},
	OpMul:     {name: "mul", hasRd: true, hasRa: true, hasRb: true},
	OpDivs:    {name: "divs", hasRd: true, hasRa: true, hasRb: true},
	OpRems:    {name: "rems", hasRd: true, hasRa: true, hasRb: true},
	OpAnd:     {name: "and", hasRd: true, hasRa: true, hasRb: true},
	OpOr:      {name: "or", hasRd: true, hasRa: true, hasRb: true},
	OpXor:     {name: "xor", hasRd: true, hasRa: true, hasRb: true},
	OpShl:     {name: "shl", hasRd: true, hasRa: true, hasRb: true},
	OpShr:     {name: "shr", hasRd: true, hasRa: true, hasRb: true},
	OpSar:     {name: "sar", hasRd: true, hasRa: true, hasRb: true},
	OpNeg:     {name: "neg", hasRd: true, hasRa: true},
	OpAddi:    {name: "addi", hasRd: true, hasRa: true, hasImm: true},
	OpMuli:    {name: "muli", hasRd: true, hasRa: true, hasImm: true},
	OpAndi:    {name: "andi", hasRd: true, hasRa: true, hasImm: true},
	OpOri:     {name: "ori", hasRd: true, hasRa: true, hasImm: true},
	OpXori:    {name: "xori", hasRd: true, hasRa: true, hasImm: true},
	OpShli:    {name: "shli", hasRd: true, hasRa: true, hasImm: true},
	OpShri:    {name: "shri", hasRd: true, hasRa: true, hasImm: true},
	OpSari:    {name: "sari", hasRd: true, hasRa: true, hasImm: true},
	OpCmp:     {name: "cmp", hasRa: true, hasRb: true},
	OpCmpi:    {name: "cmpi", hasRa: true, hasImm: true},
	OpJmp:     {name: "jmp", hasImm: true},
	OpBeq:     {name: "beq", hasImm: true},
	OpBne:     {name: "bne", hasImm: true},
	OpBlt:     {name: "blt", hasImm: true},
	OpBge:     {name: "bge", hasImm: true},
	OpBle:     {name: "ble", hasImm: true},
	OpBgt:     {name: "bgt", hasImm: true},
	OpBltu:    {name: "bltu", hasImm: true},
	OpBgeu:    {name: "bgeu", hasImm: true},
	OpBun:     {name: "bun", hasImm: true},
	OpCall:    {name: "call", hasImm: true},
	OpCallr:   {name: "callr", hasRa: true},
	OpRet:     {name: "ret"},
	OpPush:    {name: "push", hasRa: true},
	OpPop:     {name: "pop", hasRd: true},
	OpLd:      {name: "ld", hasRd: true, hasRa: true, hasRb: true, hasImm: true, memForm: true},
	OpSt:      {name: "st", hasRa: true, hasRb: true, hasRc: true, hasImm: true, memForm: true},
	OpLdb:     {name: "ldb", hasRd: true, hasRa: true, hasRb: true, hasImm: true, memForm: true},
	OpStb:     {name: "stb", hasRa: true, hasRb: true, hasRc: true, hasImm: true, memForm: true},
	OpFld:     {name: "fld", hasRa: true, hasRb: true, hasImm: true, memForm: true},
	OpFldz:    {name: "fldz"},
	OpFld1:    {name: "fld1"},
	OpFldst:   {name: "fldst", hasImm: true},
	OpFst:     {name: "fst", hasRa: true, hasRb: true, hasImm: true, memForm: true},
	OpFstp:    {name: "fstp", hasRa: true, hasRb: true, hasImm: true, memForm: true},
	OpFaddp:   {name: "faddp"},
	OpFsubp:   {name: "fsubp"},
	OpFmulp:   {name: "fmulp"},
	OpFdivp:   {name: "fdivp"},
	OpFchs:    {name: "fchs"},
	OpFabs:    {name: "fabs"},
	OpFsqrt:   {name: "fsqrt"},
	OpFxch:    {name: "fxch", hasImm: true},
	OpFcomp:   {name: "fcomp"},
	OpFxam:    {name: "fxam"},
	OpFild:    {name: "fild", hasRa: true},
	OpFist:    {name: "fist", hasRd: true},
	OpSys:     {name: "sys", hasImm: true},
}

// Valid reports whether op is a defined, executable opcode.
func (op Op) Valid() bool {
	return op > OpInvalid && op < opMax
}

// aluiBase maps each immediate ALU opcode to the register-register
// operation it applies.  Entries for every other opcode are OpInvalid.
var aluiBase = [opMax]Op{
	OpAddi: OpAdd,
	OpMuli: OpMul,
	OpAndi: OpAnd,
	OpOri:  OpOr,
	OpXori: OpXor,
	OpShli: OpShl,
	OpShri: OpShr,
	OpSari: OpSar,
}

// AluiBase returns the register-register ALU operation of an immediate
// ALU opcode (OpAddi -> OpAdd, OpShli -> OpShl, ...), or OpInvalid when
// op has no immediate/register pairing.  It is a table lookup so
// interpreters can resolve the pairing once per decode instead of
// re-dispatching on every execution.
func (op Op) AluiBase() Op {
	if int(op) < len(aluiBase) {
		return aluiBase[op]
	}
	return OpInvalid
}

// String returns the assembler mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return "op?"
}

// IsBranch reports whether op transfers control via its immediate.
func (op Op) IsBranch() bool {
	switch op {
	case OpJmp, OpBeq, OpBne, OpBlt, OpBge, OpBle, OpBgt, OpBltu, OpBgeu, OpBun, OpCall:
		return true
	}
	return false
}

// IsMemForm reports whether op addresses memory as ra + index(rb) + imm.
func (op Op) IsMemForm() bool {
	return op.Valid() && opTable[op].memForm
}
