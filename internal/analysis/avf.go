package analysis

import (
	"fmt"
	"io"
	"text/tabwriter"

	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/profile"
)

// AVFRow is one region's static fault-sensitivity prediction: the
// fraction of the region's bits whose corruption the analysis cannot
// prove harmless.  This is the paper's working-set explanation of
// manifestation rates (§6) turned into a forecast — an architectural
// vulnerability factor in the ACE-bit sense, computed before any
// injection runs.
type AVFRow struct {
	Region    string
	Sensitive uint64 // bits/bytes the analysis must assume matter
	Total     uint64
}

// Fraction returns Sensitive/Total, or 0 for an empty region.
func (r AVFRow) Fraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Sensitive) / float64(r.Total)
}

// AVFReport holds the per-region predictions for one image.
type AVFReport struct {
	App  string
	Rows []AVFRow
}

// EstimateAVF predicts per-region fault sensitivity from the CFG and
// liveness results.  prof, when non-nil, supplies measured section
// sizes (notably the observed deepest stack extent) as denominators;
// without it the estimator falls back to link-time sizes.
//
// The models, region by region — all deliberately simple overestimates:
//
//   - Regular registers: mean over reachable instructions of the live
//     register-context bits (32 per live GPR, 32 for the always-live
//     PC, 4 architecturally-readable flag bits when flags are live) out
//     of the 320-bit register target space the injector draws from.
//   - Text: bytes of user-owned functions actually reachable from the
//     entry point, out of all user text (dead code absorbs faults).
//   - Data/BSS: bytes of user symbols referenced by at least one
//     reachable instruction's address operand, out of the section size.
//   - Stack: live frame bytes (return address, saved fp, locals the
//     function actually reloads, transient pushes) out of full frame
//     bytes, summed over reachable user functions.
func EstimateAVF(prog *Program, live *Liveness, abiStats map[string]ABIStats, prof *profile.Profile) *AVFReport {
	rep := &AVFReport{}
	rep.Rows = append(rep.Rows,
		regRow(prog, live),
		textRow(prog),
	)
	dataRow, bssRow := staticDataRows(prog)
	stack := stackRow(prog, abiStats)
	if prof != nil && prof.StackBytes > 0 && stack.Total > 0 {
		// Rescale to the measured stack extent so absolute bytes match
		// what the stack-region injector actually targets.
		frac := stack.Fraction()
		stack.Total = uint64(prof.StackBytes)
		stack.Sensitive = uint64(frac * float64(stack.Total))
	}
	rep.Rows = append(rep.Rows, dataRow, bssRow, stack)
	return rep
}

// regRow: the register-context model mirrors core.ApplyRegisterFault's
// target space: 8 GPRs + PC + flags, 32 bits each.
func regRow(prog *Program, live *Liveness) AVFRow {
	const perInstr = 10 * 32
	var instrs, liveBits uint64
	for _, f := range prog.Funcs {
		if !f.Reachable {
			continue
		}
		for i := range f.Instrs {
			mask, ok := live.LiveAt(f.Addr(i))
			if !ok {
				continue
			}
			m := RegMask(mask)
			bits := uint64(32) // PC is always consequential
			for r := 0; r < isa.NumGPR; r++ {
				if m.Has(r) {
					bits += 32
				}
			}
			if m.HasFlags() {
				bits += 4 // only Z/LT/UL/UN are ever read
			}
			instrs++
			liveBits += bits
		}
	}
	return AVFRow{Region: "Regular Reg.", Sensitive: liveBits, Total: instrs * perInstr}
}

func textRow(prog *Program) AVFRow {
	var reachable, total uint64
	for _, f := range prog.Funcs {
		if f.Sym.Owner != image.OwnerUser {
			continue
		}
		total += uint64(f.Sym.Size)
		if f.Reachable {
			reachable += uint64(f.Sym.Size)
		}
	}
	return AVFRow{Region: "Text", Sensitive: reachable, Total: total}
}

// staticDataRows marks a user data/BSS symbol sensitive when any
// reachable instruction carries its address in an immediate — movi of a
// symbol address or an absolute/displacement memory operand.  The whole
// symbol counts: field-level tracking is beyond a static pass over raw
// immediates.
func staticDataRows(prog *Program) (data, bss AVFRow) {
	referenced := referencedDataSyms(prog)
	for _, sym := range prog.Image.Symbols {
		if sym.Owner != image.OwnerUser {
			continue
		}
		var row *AVFRow
		switch sym.Kind {
		case image.SymData:
			row = &data
		case image.SymBSS:
			row = &bss
		default:
			continue
		}
		row.Total += uint64(sym.Size)
		if referenced[sym.Name] {
			row.Sensitive += uint64(sym.Size)
		}
	}
	data.Region, bss.Region = "Data", "BSS"
	return data, bss
}

// referencedDataSyms returns the user data/BSS symbols whose address
// appears in a reachable instruction's immediate.  Both the AVF
// estimator and the equivalence pass key their data-region claims on
// this one set, so the forecast and the benign partition cannot drift
// apart.
func referencedDataSyms(prog *Program) map[string]bool {
	referenced := make(map[string]bool)
	touch := func(addr uint32) {
		if sym, ok := prog.Image.FindSymbol(addr); ok && sym.Owner == image.OwnerUser &&
			(sym.Kind == image.SymData || sym.Kind == image.SymBSS) {
			referenced[sym.Name] = true
		}
	}
	for _, f := range prog.Funcs {
		if !f.Reachable {
			continue
		}
		for i, in := range f.Instrs {
			if !f.reach[i] {
				continue
			}
			if in.Op == isa.OpMovi || in.Op.IsMemForm() {
				touch(uint32(in.Imm))
			}
		}
	}
	return referenced
}

// stackRow models each reachable user function's frame: 4 bytes of
// return address and everything below it (saved fp, locals, transient
// pushes) as the full frame; the live part keeps the return address,
// saved fp, transient pushes, and only the local words the function
// reloads through fp-relative loads.
func stackRow(prog *Program, abiStats map[string]ABIStats) AVFRow {
	var liveBytes, totalBytes uint64
	for _, f := range prog.Funcs {
		if !f.Reachable || f.Sym.Owner != image.OwnerUser {
			continue
		}
		// Without ABI stats there is no link-time frame size; skipping
		// the function (rather than fabricating an extent from the zero
		// value) leaves Total=0 when nothing is known, which WriteAVF
		// reports by omitting the row instead of printing a fake 0%.
		st, ok := abiStats[f.Sym.Name]
		if !ok {
			continue
		}
		full := 4 + 4*st.MaxDepthWords
		readLocals := make(map[int32]int)
		for i, in := range f.Instrs {
			if !f.reach[i] {
				continue
			}
			if in.Ra != isa.FP || in.Imm >= 0 || !in.Op.IsMemForm() || !in.Op.IsLoad() && in.Op != isa.OpFld {
				continue
			}
			size := 4
			if in.Op == isa.OpFld {
				size = 8
			}
			readLocals[in.Imm] = size
		}
		readBytes := 0
		for _, s := range readLocals {
			readBytes += s
		}
		if readBytes > 4*st.LocalWords {
			readBytes = 4 * st.LocalWords
		}
		liveWords := st.MaxDepthWords - st.LocalWords
		if liveWords < 0 {
			liveWords = st.MaxDepthWords
		}
		live := 4 + 4*liveWords + readBytes
		if live > full {
			live = full
		}
		liveBytes += uint64(live)
		totalBytes += uint64(full)
	}
	return AVFRow{Region: "Stack", Sensitive: liveBytes, Total: totalBytes}
}

// Priors returns the per-region sensitivity fractions keyed by table
// row label ("Regular Reg.", "Text", ...) — the pilot priors the
// adaptive campaign planner seeds its first round with.  Rows with an
// empty denominator are omitted; the planner falls back to the paper's
// worst case 0.5 for regions it has no estimate for.  Values of exactly
// 0 or 1 are likewise omitted (the planner treats them as unknown), so
// the map round-trips through the journal header unchanged.
func (rep *AVFReport) Priors() map[string]float64 {
	out := make(map[string]float64, len(rep.Rows))
	for _, r := range rep.Rows {
		f := r.Fraction()
		if r.Total == 0 || !(f > 0 && f < 1) {
			continue
		}
		out[r.Region] = f
	}
	return out
}

// AVFPriors runs the full static pipeline (CFG, liveness, ABI audit,
// AVF estimation) over an image and returns the per-region pilot
// priors.  Both the single-process campaign runner and the coordinator
// call this one function, so an adaptive campaign's priors — and hence
// its round schedule — are identical however it is executed.  Analysis
// findings are not fatal here: priors only steer pilot sizing, never
// the estimates, so a program the lint pass complains about still gets
// the fractions the estimator can compute.
func AVFPriors(im *image.Image) (map[string]float64, error) {
	prog, err := Analyze(im)
	if err != nil {
		return nil, err
	}
	live := ComputeLiveness(prog)
	_, abiStats := ABICheck(prog)
	return EstimateAVF(prog, live, abiStats, nil).Priors(), nil
}

// WriteAVF prints the prediction table.  measured, when non-empty, maps
// region names to measured manifestation fractions for side-by-side
// comparison (see cmd/faultcampaign -predict).
func (rep *AVFReport) WriteAVF(w io.Writer, measured map[string]float64) {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', tabwriter.AlignRight)
	if len(measured) > 0 {
		fmt.Fprintln(tw, "region\tsensitive\ttotal\tpredicted\tmeasured\t")
	} else {
		fmt.Fprintln(tw, "region\tsensitive\ttotal\tpredicted\t")
	}
	for _, r := range rep.Rows {
		if r.Total == 0 {
			// Nothing is known about the region (e.g. the stack row with
			// no profile and no link-time frame sizes); a "0/0 = 0%" row
			// would read as a prediction, so skip it.
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\t", r.Region, r.Sensitive, r.Total, 100*r.Fraction())
		if len(measured) > 0 {
			if m, ok := measured[r.Region]; ok {
				fmt.Fprintf(tw, "%.1f%%\t", 100*m)
			} else {
				fmt.Fprintf(tw, "-\t")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
