// Package trace implements the working-set analysis of §6.1.2 (Tables
// 5-7): the Valgrind-based measurement the paper uses to explain why
// memory fault injections so rarely manifest.
//
// Definition (from the paper): the working set size at time t is the size
// of memory accessed *since* t — a non-increasing function of t.  The
// curves start high (initialization code touches startup data once),
// drop sharply at the phase shift into the computation kernel, and stay
// flat through the periodic compute phase.  A fault landing outside the
// current working set cannot manifest, which is exactly what the low
// memory-region error rates in Tables 2-4 reflect.
package trace

import (
	"sort"

	"mpifault/internal/image"
)

// lineShift is the tracking granularity: 8-byte lines for data (one
// float64), instruction slots for text.
const lineShift = 3

// WorkingSetTracer records, for every touched text slot and data line,
// the last time (in retired instructions — the analogue of the paper's
// basic-block counts) it was accessed.  It implements vm.Tracer.
type WorkingSetTracer struct {
	// TrackStores widens the data trace to include writes; the paper's
	// measurement uses loads only ("data accesses, which are memory
	// loads"), so it defaults to false.
	TrackStores bool

	now      uint64
	textLast map[uint32]uint64
	dataLast map[uint32]uint64
}

// New returns an empty tracer.
func New() *WorkingSetTracer {
	return &WorkingSetTracer{
		textLast: make(map[uint32]uint64),
		dataLast: make(map[uint32]uint64),
	}
}

// Exec records an instruction fetch.
func (t *WorkingSetTracer) Exec(pc uint32) {
	t.now++
	t.textLast[pc>>lineShift] = t.now
}

// Load records a data load of size bytes at addr.
func (t *WorkingSetTracer) Load(addr uint32, size int) {
	for line := addr >> lineShift; line <= (addr+uint32(size)-1)>>lineShift; line++ {
		t.dataLast[line] = t.now
	}
}

// Store records a data store; ignored unless TrackStores is set.
func (t *WorkingSetTracer) Store(addr uint32, size int) {
	if t.TrackStores {
		t.Load(addr, size)
	}
}

// Now returns the tracer's current time (instructions observed).
func (t *WorkingSetTracer) Now() uint64 { return t.now }

// Series is a sampled set of working-set curves, each in percent of its
// section's size — the data behind one of the paper's Tables 5-7.
type Series struct {
	// Times are the sample points on the block-count axis.
	Times []uint64
	// TextPct is the executed-text working set relative to text size.
	TextPct []float64
	// DataPct, BSSPct, HeapPct are per-section load working sets.
	DataPct []float64
	BSSPct  []float64
	HeapPct []float64
	// CombinedPct is the Data+BSS+Heap curve the paper plots.
	CombinedPct []float64
}

// Analyze computes working-set curves at n evenly spaced sample times.
// heapUsed is the number of heap bytes ever allocated (the denominator
// for the heap share); im supplies the section boundaries.
func (t *WorkingSetTracer) Analyze(im *image.Image, heapUsed uint32, n int) *Series {
	if n < 2 {
		n = 2
	}

	// Bucket last-access times by section.
	var textLasts, dataLasts, bssLasts, heapLasts []uint64
	for line, last := range t.textLast {
		addr := line << lineShift
		if addr >= image.TextBase && addr < im.TextEnd() {
			textLasts = append(textLasts, last)
		}
	}
	for line, last := range t.dataLast {
		addr := line << lineShift
		switch {
		case addr >= im.DataBase && addr < im.DataEnd():
			dataLasts = append(dataLasts, last)
		case addr >= im.BSSBase && addr < im.BSSEnd():
			bssLasts = append(bssLasts, last)
		case addr >= im.HeapBase && addr < im.HeapLimit:
			heapLasts = append(heapLasts, last)
		}
	}
	for _, s := range [][]uint64{textLasts, dataLasts, bssLasts, heapLasts} {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}

	lineBytes := float64(uint32(1) << lineShift)
	pct := func(lasts []uint64, at uint64, sectionBytes uint32) float64 {
		if sectionBytes == 0 {
			return 0
		}
		// Count of lines with lastAccess >= at.
		i := sort.Search(len(lasts), func(i int) bool { return lasts[i] >= at })
		return 100 * float64(len(lasts)-i) * lineBytes / float64(sectionBytes)
	}

	s := &Series{}
	textSize := uint32(len(im.Text))
	dataSize := uint32(len(im.Data))
	combined := dataSize + im.BSSSize + heapUsed
	for i := 0; i < n; i++ {
		at := t.now * uint64(i) / uint64(n-1)
		s.Times = append(s.Times, at)
		s.TextPct = append(s.TextPct, pct(textLasts, at, textSize))
		s.DataPct = append(s.DataPct, pct(dataLasts, at, dataSize))
		s.BSSPct = append(s.BSSPct, pct(bssLasts, at, im.BSSSize))
		s.HeapPct = append(s.HeapPct, pct(heapLasts, at, heapUsed))
		// The combined curve counts all three sections' lines against
		// their summed size.
		cnt := 0.0
		for _, ls := range [][]uint64{dataLasts, bssLasts, heapLasts} {
			j := sort.Search(len(ls), func(k int) bool { return ls[k] >= at })
			cnt += float64(len(ls) - j)
		}
		if combined > 0 {
			s.CombinedPct = append(s.CombinedPct, 100*cnt*lineBytes/float64(combined))
		} else {
			s.CombinedPct = append(s.CombinedPct, 0)
		}
	}
	return s
}
