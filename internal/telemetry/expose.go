package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Exposition: the same Snapshot rendered two ways.  The Prometheus text
// format is what a scrape expects at /metrics; the JSON form is both the
// /metrics.json endpoint and the end-of-campaign snapshot artifact CI
// uploads.  Both renderings are deterministic (names sorted) so they can
// be golden-tested.

// baseName strips a {label="..."} suffix, returning the metric family a
// # TYPE line describes.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), with one # TYPE line per metric family.
func (s Snapshot) WritePrometheus(w io.Writer) {
	writeFamily := func(names []string, kind string, value func(string) string) {
		sort.Strings(names)
		lastBase := ""
		for _, name := range names {
			if b := baseName(name); b != lastBase {
				fmt.Fprintf(w, "# TYPE %s %s\n", b, kind)
				lastBase = b
			}
			fmt.Fprintf(w, "%s %s\n", name, value(name))
		}
	}

	counters := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		counters = append(counters, name)
	}
	writeFamily(counters, "counter", func(n string) string {
		return fmt.Sprintf("%d", s.Counters[n])
	})

	gauges := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gauges = append(gauges, name)
	}
	writeFamily(gauges, "gauge", func(n string) string {
		return fmt.Sprintf("%d", s.Gauges[n])
	})

	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

// WriteJSON renders the snapshot as indented JSON (keys sorted, trailing
// newline) — the same bytes at the /metrics.json endpoint and in the
// -metrics-out file.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot
//	/              a plain-text index of the two
//
// Every request takes a fresh snapshot, so a scrape mid-campaign sees
// the live state.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "mpifault campaign telemetry\n/metrics       Prometheus text\n/metrics.json  JSON snapshot\n")
	})
	return mux
}
