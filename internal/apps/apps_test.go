package apps

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"mpifault/internal/cluster"
	"mpifault/internal/vm"
)

// runGolden builds and executes an app with its default configuration.
func runGolden(t *testing.T, name string) *cluster.Result {
	t.Helper()
	a, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	res := cluster.Run(cluster.Job{Image: im, Size: a.Default.Ranks, Budget: 500_000_000})
	if res.HangDetected {
		t.Fatalf("%s: hang: %s", name, res.HangCause)
	}
	for r, rr := range res.Ranks {
		if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit || rr.Trap.Code != 0 {
			t.Fatalf("%s: rank %d did not exit cleanly: %v (stderr: %s)",
				name, r, rr.Trap, res.Stderr[r])
		}
	}
	return res
}

func TestWavetoyGolden(t *testing.T) {
	res := runGolden(t, "wavetoy")
	if !strings.Contains(string(res.Stdout[0]), "wavetoy: evolution complete") {
		t.Fatalf("stdout = %q", res.Stdout[0])
	}
	out := res.Files["wavetoy.out"]
	if len(out) == 0 {
		t.Fatal("missing wavetoy.out")
	}
	lines := bytes.Count(out, []byte("\n"))
	if want := 8 * 256; lines != want {
		t.Fatalf("wavetoy.out has %d lines, want %d", lines, want)
	}
	// The pulse keeps most of the field near zero (§6.2: "most transferred
	// data are very close to zero").
	small := 0
	for _, ln := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		v, err := strconv.ParseFloat(ln, 64)
		if err != nil {
			t.Fatalf("non-numeric output line %q", ln)
		}
		if v < 1e-4 && v > -1e-4 {
			small++
		}
	}
	if small < lines/2 {
		t.Fatalf("only %d/%d near-zero values; pulse should be localized", small, lines)
	}
	// Traffic must be data-dominated (Table 1: 94%% user for Wavetoy).
	var agg struct{ hdr, tot float64 }
	for _, rr := range res.Ranks {
		agg.hdr += float64(rr.Stats.HeaderBytes)
		agg.tot += float64(rr.Stats.TotalBytes())
	}
	if pct := 100 * agg.hdr / agg.tot; pct > 20 {
		t.Fatalf("wavetoy header share %.1f%%, want small", pct)
	}
}

func TestMiniMDGolden(t *testing.T) {
	res := runGolden(t, "minimd")
	out := string(res.Stdout[0])
	if !strings.Contains(out, "STEP 0 ENERGY ") || !strings.Contains(out, "STEP 9 ENERGY ") {
		t.Fatalf("console output missing step lines: %q", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "nan") {
		t.Fatalf("golden run produced NaN: %q", out)
	}
}

func TestMiniCAMGolden(t *testing.T) {
	res := runGolden(t, "minicam")
	if !strings.Contains(string(res.Stdout[0]), "minicam: simulation complete") {
		t.Fatalf("stdout = %q", res.Stdout[0])
	}
	if len(res.Files["minicam.out"]) == 0 {
		t.Fatal("missing minicam.out")
	}
	// Traffic must be control-dominated (Table 1: 63%% header for CAM).
	var hdr, tot float64
	for _, rr := range res.Ranks {
		hdr += float64(rr.Stats.HeaderBytes)
		tot += float64(rr.Stats.TotalBytes())
	}
	if pct := 100 * hdr / tot; pct < 40 {
		t.Fatalf("minicam header share %.1f%%, want control-dominated", pct)
	}
}

func TestGoldenRunsDeterministic(t *testing.T) {
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		a := runGolden(t, name).CanonicalOutput()
		b := runGolden(t, name).CanonicalOutput()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: canonical output differs between identical runs", name)
		}
	}
}
