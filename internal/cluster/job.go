// Package cluster runs an MPI job: it instantiates one virtual machine per
// rank, wires each to the MPI runtime, executes all ranks concurrently,
// and watches for the failure modes the paper classifies — crashes
// (a trap on any rank aborts the whole job, as MPICH does), hangs
// (detected by a distributed-deadlock check plus an instruction budget and
// a wall-clock fallback), and detected errors.
package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"mpifault/internal/image"
	"mpifault/internal/mpi"
	"mpifault/internal/progress"
	"mpifault/internal/telemetry"
	"mpifault/internal/vm"
)

// Job describes one execution of a guest program on N ranks.
type Job struct {
	// Image is the linked guest program (all ranks run the same binary).
	Image *image.Image
	// Size is the number of MPI ranks.
	Size int
	// MPIConfig tunes the runtime (eager threshold, queue depth).
	MPIConfig mpi.Config
	// Budget bounds each rank's retired instructions; exceeding it is
	// classified as a hang (the livelock analogue of the paper's "one
	// minute beyond expected completion").  0 means unlimited.
	Budget uint64
	// WallLimit is the real-time fallback; default 30s.
	WallLimit time.Duration
	// Setup, when non-nil, runs for every rank before execution starts —
	// the fault injector arms triggers and hooks here.
	Setup func(rank int, m *vm.Machine, p *mpi.Proc)
	// Tracer, when non-nil, is attached to rank TraceRank only (the paper
	// instruments "a randomly selected MPI process").
	Tracer    vm.Tracer
	TraceRank int
	// PMPIHook, when non-nil, observes every API-layer MPI call.
	PMPIHook mpi.PMPIHook
	// ProgressDetector, when non-nil, additionally watches the §7-style
	// messages-per-second metric and declares a hang when it collapses.
	ProgressDetector *progress.Config
	// DisableDeadlockDetector turns off the exact stall detection,
	// leaving only the progress metric and wall clock (used by the
	// detector-ablation benchmarks).
	DisableDeadlockDetector bool
	// UseTCPTransport moves the Channel layer onto loopback TCP sockets
	// — the closest available analogue of ch_p4 over Ethernet.  Fault
	// injection is unaffected: the hook still runs on received bytes.
	UseTCPTransport bool
	// Metrics, when non-nil, receives job telemetry: retired
	// instructions, traps by signal, budget exhaustions, MPI message
	// and byte counts, hang verdicts by cause, stall events and the
	// peak Channel queue depth.  Aggregation happens once per job (at
	// teardown and on watchdog ticks), never per instruction, so the
	// interpreter hot path is unchanged and a nil Metrics job is
	// byte-identical to one from before this field existed.
	Metrics *telemetry.Registry
	// Causality, when non-nil, records Channel-level message events for
	// consistent-cut computation (golden recording runs only; requires
	// the in-process transport).
	Causality *mpi.CausalityRecorder
	// Checkpoints, when non-nil, makes the job pause at the given
	// consistent cuts and emit cluster snapshots (see checkpoint.go).
	// Requires the in-process transport; ignored with UseTCPTransport.
	Checkpoints *CheckpointSpec
	// Restore, when non-nil, starts the job from a cluster snapshot
	// instead of t=0: every live rank resumes mid-stream, exited ranks
	// carry their terminal results, and the snapshot's in-flight packets
	// are requeued.  The snapshot is shared read-only; any number of
	// concurrent jobs may restore from one.
	Restore *Snapshot
	// DisableSuperblocks forces every rank's machine onto the
	// per-instruction interpreter (faultcampaign -no-superblock); the
	// differential CI legs use it to cross-check compiled execution.
	DisableSuperblocks bool
}

// RankResult is the terminal state of one rank.
type RankResult struct {
	Trap   *vm.Trap
	Reason vm.StopReason
	Instrs uint64
	MinSP  uint32
	// HeapPeakUser/MPI are the allocator's per-owner high-water marks.
	HeapPeakUser uint32
	HeapPeakMPI  uint32
	// HeapUsed is the total extent the heap break ever reached, the
	// denominator for heap working-set percentages.
	HeapUsed uint32
	Stats    mpi.Stats
}

// Result is the outcome of a whole job.
type Result struct {
	Ranks []RankResult
	// HangDetected is set when the deadlock watchdog, instruction budget
	// or wall-clock limit fired.
	HangDetected bool
	// HangCause describes which detector fired.
	HangCause string
	// Stdout and Stderr are per-rank console captures.
	Stdout [][]byte
	Stderr [][]byte
	// Files maps named output files (written via SysOpen) to contents.
	Files map[string][]byte
}

// FirstFailure returns the most severe trap across ranks, preferring
// application/MPI detections over raw signals so that a deliberate abort
// isn't masked by the cascade of TrapKilled it causes elsewhere.
func (r *Result) FirstFailure() *vm.Trap {
	var sig *vm.Trap
	for i := range r.Ranks {
		t := r.Ranks[i].Trap
		if t == nil {
			continue
		}
		switch t.Kind {
		case vm.TrapAbort, vm.TrapMPIHandler:
			return t
		case vm.TrapMPIFatal, vm.TrapSegv, vm.TrapIll, vm.TrapFpe:
			if sig == nil {
				sig = t
			}
		}
	}
	return sig
}

// FailureSummary renders the job's terminal condition as one short
// line for logs and campaign journals: the most severe trap, the hang
// verdict, or "" for a clean run.
func (r *Result) FailureSummary() string {
	if t := r.FirstFailure(); t != nil {
		return t.Error()
	}
	if r.HangDetected {
		return "hang: " + r.HangCause
	}
	return ""
}

// Run executes the job to completion and returns the collected outcome.
func Run(job Job) *Result {
	if job.WallLimit == 0 {
		job.WallLimit = 30 * time.Second
	}
	mpiCfg := job.MPIConfig
	if job.Restore != nil {
		// Room to requeue the snapshot's in-flight packets on top of
		// whatever the resumed execution itself enqueues.
		mpiCfg = mpiCfg.WithQueueHeadroom(job.Restore.MaxQueued())
	}
	world := mpi.NewWorld(job.Size, mpiCfg)
	if job.Causality != nil {
		world.SetRecorder(job.Causality)
	}
	if job.Restore != nil {
		world.SetCtxCounter(job.Restore.CtxCounter)
	}
	if job.PMPIHook != nil {
		world.SetPMPIHook(job.PMPIHook)
	}
	if job.UseTCPTransport {
		tp, err := mpi.NewTCPTransport(world)
		if err != nil {
			// No sockets available: report an immediate job failure
			// rather than panicking inside rank goroutines.
			failed := &Result{
				Ranks:  make([]RankResult, job.Size),
				Stdout: make([][]byte, job.Size),
				Stderr: make([][]byte, job.Size),
				Files:  map[string][]byte{},
			}
			for r := range failed.Ranks {
				failed.Ranks[r].Trap = &vm.Trap{Kind: vm.TrapMPIFatal,
					Msg: "transport setup failed: " + err.Error()}
			}
			return failed
		}
		world.SetTransport(tp)
		defer tp.Close()
	}

	res := &Result{
		Ranks:  make([]RankResult, job.Size),
		Stdout: make([][]byte, job.Size),
		Stderr: make([][]byte, job.Size),
		Files:  make(map[string][]byte),
	}
	files := &fileStore{files: res.Files}
	if job.Restore != nil {
		for name, b := range job.Restore.Files {
			res.Files[name] = append([]byte(nil), b...)
		}
		files.names = append([]string(nil), job.Restore.FileNames...)
	}

	// stopFlag halts still-computing VMs after a job-level verdict (the
	// analogue of mpirun SIGKILLing survivors).
	var stopFlag atomic.Bool
	killAll := func() {
		stopFlag.Store(true)
		world.Kill()
	}

	machines := make([]*vm.Machine, job.Size)
	ios := make([]*rankIO, job.Size)
	for r := 0; r < job.Size; r++ {
		if job.Restore != nil && job.Restore.Ranks[r].Finished {
			// This rank had already exited at the checkpoint: carry its
			// terminal state over verbatim; no goroutine runs for it.
			rs := &job.Restore.Ranks[r]
			res.Ranks[r] = rs.Result
			res.Stdout[r] = append([]byte(nil), rs.Stdout...)
			res.Stderr[r] = append([]byte(nil), rs.Stderr...)
			world.Proc(r).MarkFinished()
			continue
		}
		var m *vm.Machine
		io := &rankIO{proc: world.Proc(r), files: files}
		if job.Restore != nil {
			rs := &job.Restore.Ranks[r]
			m = rs.VM.NewMachine()
			world.Proc(r).Restore(rs.MPI)
			io.stdout = append([]byte(nil), rs.Stdout...)
			io.stderr = append([]byte(nil), rs.Stderr...)
		} else {
			m = vm.New(job.Image)
		}
		if job.DisableSuperblocks {
			m.DisableSuperblocks()
		}
		m.Stop = &stopFlag
		m.Handler = io
		if job.Tracer != nil && r == job.TraceRank {
			m.Tracer = job.Tracer
		}
		if job.Setup != nil {
			job.Setup(r, m, world.Proc(r))
		}
		machines[r] = m
		ios[r] = io
	}
	if job.Restore != nil {
		// Requeue the snapshot's in-flight packets (deep-copied; see
		// mpi.Prefill) after every rank's runtime state is rebuilt.
		for r := 0; r < job.Size; r++ {
			world.Prefill(r, job.Restore.Queues[r])
		}
	}

	var coord *ckptRun
	if job.Checkpoints != nil && len(job.Checkpoints.Vectors) > 0 &&
		job.Restore == nil && !job.UseTCPTransport {
		coord = newCkptRun(job.Checkpoints, world, machines, ios, files,
			job.Image.HeapBase, job.Budget)
	}

	var (
		wg       sync.WaitGroup
		hangOnce sync.Once
		done     = make(chan struct{})
	)
	declareHang := func(cause string) {
		hangOnce.Do(func() {
			res.HangDetected = true
			res.HangCause = cause
			killAll()
		})
	}

	for r := 0; r < job.Size; r++ {
		if machines[r] == nil {
			continue // restored-as-finished rank
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			m := machines[r]
			var out vm.RunResult
			if coord != nil {
				out = coord.runRank(r)
			} else {
				out = m.Run(job.Budget)
			}
			world.Proc(r).MarkFinished()
			res.Ranks[r].Reason = out.Reason
			res.Ranks[r].Trap = out.Trap
			if out.Reason == vm.StopBudget {
				// Runaway execution: the paper's non-terminating mode.
				declareHang("instruction budget exceeded")
				return
			}
			if t := out.Trap; t != nil && t.Kind != vm.TrapExit && t.Kind != vm.TrapKilled {
				// Any abnormal termination aborts the whole job, as
				// MPICH's MPI_ERRORS_ARE_FATAL and signal handlers do.
				killAll()
			}
		}(r)
	}

	// Watchdog: fast deadlock detection plus a wall-clock fallback.
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		deadline := time.After(job.WallLimit)
		var lastProgress uint64
		consec := 0
		wasStalled := false
		for {
			select {
			case <-done:
				return
			case <-deadline:
				declareHang("wall-clock limit")
				return
			case <-tick.C:
				if reg := job.Metrics; reg != nil {
					// Telemetry piggybacks on the watchdog cadence: the
					// peak Channel queue depth and rank-stall events are
					// sampled here, not in any per-message path.
					var depth int64
					for r := 0; r < job.Size; r++ {
						depth += int64(world.QueueDepth(r))
					}
					reg.Gauge(telemetry.MetricQueueDepthPeak).SetMax(depth)
					stalled := world.Stalled()
					if stalled && !wasStalled {
						reg.Counter(telemetry.MetricStallEvents).Inc()
					}
					wasStalled = stalled
				}
				if job.DisableDeadlockDetector {
					continue
				}
				prog := world.Progress()
				if world.Stalled() && prog == lastProgress {
					consec++
					// An exact deadlock (all blocked, nothing in flight)
					// is certain after a short quiet confirmation.  A
					// stall with packets still in flight is only
					// genuinely stuck when every queued packet sits at a
					// rank that already exited (World.Stuck); after a
					// long quiet period that evidence is trusted.  A
					// stall that is merely a scheduling gap — the packet
					// is queued at a live rank the host has not run yet —
					// never fires, no matter how starved the process is:
					// a time-based verdict here would make campaign
					// outcomes depend on machine load.
					if (consec >= 2 && world.Deadlocked()) ||
						(consec >= 50 && world.Stuck()) {
						declareHang("distributed deadlock")
						return
					}
				} else {
					consec = 0
				}
				lastProgress = prog
			}
		}
	}()

	// Optional §7 progress-metric detector: messages per second.
	if job.ProgressDetector != nil {
		detCfg := *job.ProgressDetector
		if detCfg.Metrics == nil {
			detCfg.Metrics = job.Metrics
		}
		mon := progress.NewMonitor(detCfg, world.Progress)
		go func() {
			if mon.Run(done) {
				declareHang("progress metric collapse")
			}
		}()
	}

	wg.Wait()
	close(done)

	for r := 0; r < job.Size; r++ {
		m := machines[r]
		if m == nil {
			continue // restored-as-finished rank: results carried above
		}
		res.Ranks[r].Instrs = m.Instrs
		res.Ranks[r].MinSP = m.MinSP
		res.Ranks[r].HeapPeakUser = m.Heap.PeakUser
		res.Ranks[r].HeapPeakMPI = m.Heap.PeakMPI
		res.Ranks[r].HeapUsed = m.Heap.Brk() - job.Image.HeapBase
		res.Ranks[r].Stats = ios[r].proc.Stats
		res.Stdout[r] = ios[r].stdout
		res.Stderr[r] = ios[r].appendSignalBanner(res.Ranks[r].Trap)
	}
	if job.Metrics != nil {
		recordJobMetrics(job.Metrics, res)
	}
	return res
}

// recordJobMetrics aggregates a finished job into the registry.  It
// runs once per job, after every rank goroutine has joined, so it reads
// the terminal state without synchronization concerns and costs nothing
// on the execution path the paper's timings depend on.
func recordJobMetrics(reg *telemetry.Registry, res *Result) {
	reg.Counter(telemetry.MetricJobs).Inc()
	var instrs, ctrl, data, hdr, payload uint64
	for r := range res.Ranks {
		rr := &res.Ranks[r]
		instrs += rr.Instrs
		ctrl += rr.Stats.ControlMsgs
		data += rr.Stats.DataMsgs
		hdr += rr.Stats.HeaderBytes
		payload += rr.Stats.PayloadBytes
		if rr.Reason == vm.StopBudget {
			reg.Counter(telemetry.MetricBudgetExhausted).Inc()
		}
		if t := rr.Trap; t != nil && t.Kind != vm.TrapExit {
			reg.Counter(telemetry.TrapMetric(t.Kind.String())).Inc()
		}
	}
	reg.Counter(telemetry.MetricInstrsRetired).Add(instrs)
	reg.Counter(telemetry.MetricControlMsgs).Add(ctrl)
	reg.Counter(telemetry.MetricDataMsgs).Add(data)
	reg.Counter(telemetry.MetricHeaderBytes).Add(hdr)
	reg.Counter(telemetry.MetricPayloadBytes).Add(payload)
	if res.HangDetected {
		reg.Counter(telemetry.HangMetric(res.HangCause)).Inc()
	}
}

// CanonicalOutput concatenates the observable application output the
// paper compares against a golden run: rank 0's console plus every named
// output file (written by rank 0 in all three workloads).
func (r *Result) CanonicalOutput() []byte {
	var out []byte
	out = append(out, r.Stdout[0]...)
	// Files in deterministic name order.
	names := make([]string, 0, len(r.Files))
	for n := range r.Files {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		out = append(out, '\f')
		out = append(out, []byte(n)...)
		out = append(out, '\n')
		out = append(out, r.Files[n]...)
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
