package progress

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestDetectsStallAfterBaseline(t *testing.T) {
	var counter atomic.Uint64
	stopFeeding := make(chan struct{})
	go func() {
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stopFeeding:
				return
			case <-tick.C:
				counter.Add(10)
			}
		}
	}()

	mon := NewMonitor(Config{
		Window:          3 * time.Millisecond,
		BaselineWindows: 3,
		Threshold:       0.05,
		Consecutive:     2,
	}, counter.Load)

	stop := make(chan struct{})
	result := make(chan bool, 1)
	go func() { result <- mon.Run(stop) }()

	// Feed progress for a while, then stall.
	time.Sleep(30 * time.Millisecond)
	close(stopFeeding)

	select {
	case got := <-result:
		if !got {
			t.Fatal("monitor returned without a stall verdict")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stall never detected")
	}
	close(stop)
}

func TestNoFalsePositiveWhileProgressing(t *testing.T) {
	var counter atomic.Uint64
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				counter.Add(5)
			}
		}
	}()

	mon := NewMonitor(Config{
		Window:          2 * time.Millisecond,
		BaselineWindows: 3,
		Threshold:       0.05,
		Consecutive:     3,
	}, counter.Load)

	stop := make(chan struct{})
	result := make(chan bool, 1)
	go func() { result <- mon.Run(stop) }()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	if got := <-result; got {
		t.Fatal("false stall verdict on steady progress")
	}
	close(done)
}

func TestUnusableMetricGivesUp(t *testing.T) {
	// A counter that never moves cannot establish a baseline; the
	// monitor must exit false rather than flag a stall.
	mon := NewMonitor(Config{
		Window:          time.Millisecond,
		BaselineWindows: 2,
	}, func() uint64 { return 0 })
	stop := make(chan struct{})
	result := make(chan bool, 1)
	go func() { result <- mon.Run(stop) }()
	select {
	case got := <-result:
		if got {
			t.Fatal("zero-baseline metric must not produce a verdict")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("monitor did not give up on an unusable metric")
	}
	close(stop)
}

func TestStopTerminatesRun(t *testing.T) {
	var counter atomic.Uint64
	mon := NewMonitor(Config{Window: time.Millisecond}, counter.Load)
	stop := make(chan struct{})
	result := make(chan bool, 1)
	go func() { result <- mon.Run(stop) }()
	close(stop)
	select {
	case got := <-result:
		if got {
			t.Fatal("stopped monitor reported a stall")
		}
	case <-time.After(time.Second):
		t.Fatal("monitor ignored stop")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Window <= 0 || c.BaselineWindows <= 0 || c.Threshold <= 0 || c.Consecutive <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}
