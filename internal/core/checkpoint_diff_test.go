package core_test

// The checkpointing invariant, enforced end to end: a fixed-seed
// campaign must produce byte-identical artifacts — the campaign CSV and
// the JSONL journal — whether experiments start from golden-run
// checkpoints or from t=0.  Checkpointing is a pure wall-clock
// optimization; any observable difference is a bug.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/image"
	"mpifault/internal/report"
)

func buildWavetoy(t testing.TB) (*image.Image, int) {
	t.Helper()
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		t.Fatal(err)
	}
	return im, a.Default.Ranks
}

// runArtifacts runs a fixed campaign at the given checkpoint interval
// and returns the CSV report, the raw journal bytes, and the result.
func runArtifacts(t *testing.T, im *image.Image, ranks int, interval uint64) (string, []byte, *core.Result) {
	t.Helper()
	cfg := core.Config{
		Image: im, Ranks: ranks, Injections: 6, Seed: 1234,
		Parallelism:        2,
		WallLimit:          30 * time.Second,
		KeepExperiments:    true,
		CheckpointInterval: interval,
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := report.CreateJournal(path, report.CampaignHeader("wavetoy", cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.OnExperiment = func(e core.Experiment) {
		if err := j.Append(e); err != nil {
			t.Errorf("journal append: %v", err)
		}
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	report.WriteCampaignCSV(&csv, "wavetoy", res)
	return csv.String(), raw, res
}

func TestCheckpointDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	im, ranks := buildWavetoy(t)

	refCSV, refJournal, ref := runArtifacts(t, im, ranks, 0)
	if ref.Checkpoints != nil {
		t.Fatalf("checkpointing off, but Result.Checkpoints = %+v", ref.Checkpoints)
	}

	// A small interval exercises real restores; a huge one lands past the
	// end of the longest rank, so the campaign falls back to scratch
	// starts — the artifacts must not notice either way.
	for _, tc := range []struct {
		name     string
		interval uint64
	}{
		{"small", 50_000},
		{"default", core.DefaultCheckpointInterval},
		{"huge", 1 << 40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			csv, journal, res := runArtifacts(t, im, ranks, tc.interval)
			if csv != refCSV {
				t.Errorf("CSV differs from checkpointing-off run:\n--- off ---\n%s\n--- interval=%d ---\n%s",
					refCSV, tc.interval, csv)
			}
			if !bytes.Equal(journal, refJournal) {
				t.Errorf("journal differs from checkpointing-off run:\n--- off ---\n%s\n--- interval=%d ---\n%s",
					refJournal, tc.interval, journal)
			}
			st := res.Checkpoints
			if st == nil {
				t.Fatal("checkpointing on, but Result.Checkpoints is nil")
			}
			if tc.interval == 1<<40 {
				if !st.Fallback {
					t.Errorf("interval past program end should fall back, got %+v", st)
				}
				return
			}
			if st.Fallback || st.Taken == 0 {
				t.Fatalf("expected live checkpoints, got %+v", st)
			}
			if st.Hits == 0 {
				t.Errorf("no experiment restored from a checkpoint: %+v", st)
			}
			if st.InstrsSkipped == 0 {
				t.Errorf("restores skipped no instructions: %+v", st)
			}
		})
	}
}
