package isa

import (
	"strings"
	"testing"
)

// TestEffectsComplete asserts every opcode below opMax has an effects
// entry and that the entry is consistent with the assembler's operand
// table and the classification predicates.
func TestEffectsComplete(t *testing.T) {
	for i := 0; i < NumOpcodes; i++ {
		op := Op(i)
		if !op.HasEffects() {
			t.Errorf("%s (%d): no effects metadata", op, i)
			continue
		}
		if !op.Valid() {
			continue // OpInvalid: defined as "no effect", nothing to cross-check
		}
		info := opTable[op]
		// Slot usage must agree with the assembler's operand table.
		if got := op.readsOp(OperandRc); got != info.hasRc {
			t.Errorf("%s: reads rc = %v, opTable hasRc = %v", op, got, info.hasRc)
		}
		if op.writesOp(OperandRd) && !info.hasRd {
			t.Errorf("%s: writes rd but opTable lacks hasRd", op)
		}
		if op.readsOp(OperandRa) && !info.hasRa {
			t.Errorf("%s: reads ra but opTable lacks hasRa", op)
		}
		if op.readsOp(OperandRb) && !info.hasRb {
			t.Errorf("%s: reads rb but opTable lacks hasRb", op)
		}
		// Memory-form opcodes must either load or store.
		if info.memForm && !op.IsLoad() && !op.IsStore() {
			t.Errorf("%s: memForm but neither IsLoad nor IsStore", op)
		}
		// Conditional branches read flags; jmp/call do not.
		if op.IsBranch() && op != OpJmp && op != OpCall && !op.ReadsFlags() {
			t.Errorf("%s: conditional branch must read flags", op)
		}
		if (op == OpJmp || op == OpCall) && op.ReadsFlags() {
			t.Errorf("%s: unconditional transfer must not read flags", op)
		}
		// FP bookkeeping sanity: popping more than the required minimum
		// depth would mean the table contradicts itself.
		eff := effTable[op]
		if eff.fpPop > eff.fpMin {
			t.Errorf("%s: fpPop %d > fpMin %d", op, eff.fpPop, eff.fpMin)
		}
		fpTouch := op.readsOp(OperandFP) || op.writesOp(OperandFP)
		if (eff.fpPop != 0 || eff.fpPush != 0 || eff.fpMin != 0) && !fpTouch {
			t.Errorf("%s: FP depth effects without an FP operand", op)
		}
	}
}

func TestEffectsSpotChecks(t *testing.T) {
	if !OpSt.IsStore() || OpSt.IsLoad() {
		t.Error("st must be store-only")
	}
	if !OpLd.IsLoad() || OpLd.IsStore() {
		t.Error("ld must be load-only")
	}
	if !OpPush.IsStore() || !OpPop.IsLoad() || !OpCall.IsStore() || !OpRet.IsLoad() {
		t.Error("stack ops must touch memory")
	}
	if !OpCmp.WritesFlags() || OpCmp.ReadsFlags() {
		t.Error("cmp writes flags wholesale and reads none")
	}
	if !OpFxam.WritesFlags() || !OpFxam.ReadsFlags() {
		t.Error("fxam partially updates flags: must read and write them")
	}
	if !OpSys.IsSyscall() || OpMovi.IsSyscall() {
		t.Error("IsSyscall misclassifies")
	}
	if !OpPush.UsesSP() || !OpRet.UsesSP() || OpAdd.UsesSP() {
		t.Error("UsesSP misclassifies")
	}

	// Instr-level register extraction, including the Rc slot sharing.
	st := Instr{Op: OpSt, Ra: R1, Rb: RegNone, Imm: 8}
	st.SetRc(R4)
	src := st.SrcGPRs()
	if len(src) != 2 || !containsInt(src, int(R1)) || !containsInt(src, int(R4)) {
		t.Errorf("st r4 -> [r1+8]: SrcGPRs = %v, want [r1 r4]", src)
	}
	if d := st.DstGPRs(); len(d) != 0 {
		t.Errorf("st: DstGPRs = %v, want none", d)
	}
	pop := Instr{Op: OpPop, Rd: R2}
	if d := pop.DstGPRs(); len(d) != 2 || !containsInt(d, int(R2)) || !containsInt(d, int(SP)) {
		t.Errorf("pop r2: DstGPRs = %v, want [r2 sp]", d)
	}

	// Operand validation mirrors the interpreter: RegNone is legal only
	// as a memory-form base/index.
	ld := Instr{Op: OpLd, Rd: R0, Ra: RegNone, Rb: RegNone, Imm: 0x1000}
	if !ld.OperandsValid() {
		t.Error("absolute ld must validate")
	}
	bad := Instr{Op: OpAdd, Rd: R0, Ra: 12, Rb: R1}
	if bad.OperandsValid() {
		t.Error("add with ra=12 must not validate")
	}
	if (Instr{Op: OpPush, Ra: RegNone}).OperandsValid() {
		t.Error("push none must not validate")
	}

	// FP depth requirements, including the st(imm) adjustment.
	if min, delta := (Instr{Op: OpFaddp}).FPEffect(); min != 2 || delta != -1 {
		t.Errorf("faddp: FPEffect = (%d,%d), want (2,-1)", min, delta)
	}
	if min, delta := (Instr{Op: OpFxch, Imm: 3}).FPEffect(); min != 4 || delta != 0 {
		t.Errorf("fxch st(3): FPEffect = (%d,%d), want (4,0)", min, delta)
	}
	if min, _ := (Instr{Op: OpFldst, Imm: -1}).FPEffect(); min <= NumFPReg {
		t.Errorf("fldst st(-1): min %d must exceed the register file", min)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestDisasmRoundTrip encodes, decodes and disassembles every valid
// opcode with plausible operands and checks the decoded instruction and
// its rendering survive the trip.
func TestDisasmRoundTrip(t *testing.T) {
	resolve := func(addr uint32) string {
		if addr == 0x08048040 {
			return "some_func"
		}
		return ""
	}
	for i := 1; i < NumOpcodes; i++ {
		op := Op(i)
		in := Instr{Op: op}
		info := opTable[op]
		if info.hasRd {
			in.Rd = R0
		}
		if info.hasRa {
			in.Ra = R1
		} else if !info.hasRc {
			in.Ra = 0
		}
		if info.hasRb {
			in.Rb = R2
		}
		if info.memForm {
			in.Ra, in.Rb, in.Imm = R1, RegNone, 16
		}
		if info.hasRc {
			in.SetRc(R3)
		}
		if op.IsBranch() {
			in.Imm = 0x08048040
		} else if info.hasImm && in.Imm == 0 {
			in.Imm = 7
		}

		var buf [InstrBytes]byte
		in.Encode(buf[:])
		back := Decode(buf[:])
		if back != in {
			t.Errorf("%s: decode(encode) = %+v, want %+v", op, back, in)
		}
		plain := back.String()
		if plain == "" || !strings.HasPrefix(plain, op.String()) {
			t.Errorf("%s: String() = %q lacks mnemonic prefix", op, plain)
		}
		dis := back.Disasm(resolve)
		if !strings.HasPrefix(dis, plain) {
			t.Errorf("%s: Disasm %q does not extend String %q", op, dis, plain)
		}
		if op.IsBranch() && !strings.Contains(dis, "<some_func>") {
			t.Errorf("%s: Disasm %q lacks resolved target annotation", op, dis)
		}
		if back.Disasm(nil) != plain {
			t.Errorf("%s: Disasm(nil) = %q, want String %q", op, back.Disasm(nil), plain)
		}
	}
}
