package telemetry

import "strconv"

// Canonical metric names.  They live here rather than at the
// instrumentation sites because several are read back by other layers:
// the status line and the CI snapshot artifact consume what core and
// cluster record.
const (
	// Campaign progress (internal/core).
	MetricExperimentsPlanned  = "mpifault_experiments_planned_total"
	MetricExperimentsResumed  = "mpifault_experiments_resumed_total"
	MetricExperimentsStarted  = "mpifault_experiments_started_total"
	MetricExperimentsFinished = "mpifault_experiments_finished_total"
	MetricExperimentsInflight = "mpifault_experiments_inflight"
	MetricUnapplied           = "mpifault_experiments_unapplied_total"
	MetricMessagesCorrupted   = "mpifault_messages_corrupted_total"

	// Golden-run checkpointing (internal/core).  Hits/misses count
	// experiments started from a checkpoint vs from t=0; the
	// instructions-skipped gauge totals the golden-prefix work restored
	// experiments did not repeat; fallbacks count campaigns whose
	// checkpoint pass failed validation and reverted to scratch starts.
	MetricCheckpointsTaken    = "mpifault_checkpoints_taken_total"
	MetricCheckpointHits      = "mpifault_checkpoint_hits_total"
	MetricCheckpointMisses    = "mpifault_checkpoint_misses_total"
	MetricCheckpointFallbacks = "mpifault_checkpoint_fallbacks_total"
	MetricInstrsSkipped       = "mpifault_checkpoint_instructions_skipped"

	// Fault-forensics latency histograms (injection to manifestation,
	// in retired instructions — the §5.2 axis).
	MetricCrashLatency = "mpifault_crash_latency_instructions"
	MetricHangLatency  = "mpifault_hang_latency_instructions"

	// Trace-diff localization (internal/core with TraceDiff enabled).
	// Diffed counts the Incorrect/Hang/Crash experiments whose digest
	// streams were compared against the golden trace; localized vs
	// unlocalized splits them by whether a first divergence was found.
	// The histograms place the divergence on the message axis (index in
	// the implicated rank's stream) and the instruction axis (distance
	// from the injection, when both lie on it).
	MetricTraceDiffed        = "mpifault_trace_diffed_total"
	MetricTraceLocalized     = "mpifault_trace_localized_total"
	MetricTraceUnlocalized   = "mpifault_trace_unlocalized_total"
	MetricTraceDivergenceMsg = "mpifault_trace_divergence_msg_index"
	MetricTraceLatency       = "mpifault_trace_divergence_latency_instructions"

	// Job execution (internal/cluster, aggregated after each job so the
	// interpreter hot path carries no telemetry).
	MetricJobs            = "mpifault_jobs_total"
	MetricInstrsRetired   = "mpifault_vm_instructions_retired_total"
	MetricBudgetExhausted = "mpifault_vm_budget_exhausted_total"
	MetricStallEvents     = "mpifault_cluster_stall_events_total"
	MetricQueueDepthPeak  = "mpifault_mpi_queue_depth_peak"
	MetricControlMsgs     = "mpifault_mpi_control_messages_total"
	MetricDataMsgs        = "mpifault_mpi_data_messages_total"
	MetricHeaderBytes     = "mpifault_mpi_header_bytes_total"
	MetricPayloadBytes    = "mpifault_mpi_payload_bytes_total"

	// Campaign control plane (internal/coord).  Leases are bounded
	// ranges of the plan handed to pull-based workers; an expired lease
	// (slow or dead worker) returns to the queue and is counted as
	// stolen when another worker re-acquires it.  Results ingested vs
	// duplicate separates first arrivals from the idempotent re-runs of
	// stolen leases.
	MetricCoordLeases          = "mpifault_coord_leases_total"
	MetricCoordLeasesGranted   = "mpifault_coord_leases_granted_total"
	MetricCoordLeasesCompleted = "mpifault_coord_leases_completed_total"
	MetricCoordLeasesExpired   = "mpifault_coord_leases_expired_total"
	MetricCoordLeasesStolen    = "mpifault_coord_leases_stolen_total"
	MetricCoordLeasesActive    = "mpifault_coord_leases_active"
	MetricCoordResults         = "mpifault_coord_results_ingested_total"
	MetricCoordDuplicates      = "mpifault_coord_results_duplicate_total"
	MetricCoordSegmentBytes    = "mpifault_coord_segment_bytes_total"
	MetricCoordWorkers         = "mpifault_coord_workers"
	MetricCoordPlanTotal       = "mpifault_coord_plan_experiments_total"

	// Adaptive sequential-stopping planner (internal/core RunAdaptive).
	// Rounds counts planner barriers crossed; the open gauge tracks how
	// many strata still miss their CI target (0 = converged).
	MetricAdaptiveRounds = "mpifault_adaptive_rounds_total"
	MetricAdaptiveOpen   = "mpifault_adaptive_strata_open"

	// §7 progress-metric detector (internal/progress).
	MetricProgressRate          = "mpifault_progress_rate"
	MetricProgressBaseline      = "mpifault_progress_baseline"
	MetricProgressStalledWins   = "mpifault_progress_stalled_windows"
	MetricProgressStallVerdicts = "mpifault_progress_stall_verdicts_total"
)

// outcomeMetricPrefix prefixes the per-outcome experiment counters; the
// status line scans for it when rendering the outcome mix.
const outcomeMetricPrefix = "mpifault_experiments_outcome_total{outcome="

// OutcomeMetric names the counter of experiments that manifested as the
// given classification (e.g. "Crash").
func OutcomeMetric(outcome string) string {
	return outcomeMetricPrefix + strconv.Quote(outcome) + "}"
}

// WorkerMetric names the per-worker ingested-result counter of the
// coordinator's cluster view (e.g. worker "w1").
func WorkerMetric(worker string) string {
	return "mpifault_coord_worker_results_total{worker=" + strconv.Quote(worker) + "}"
}

// AdaptiveHalfWidthMetric names the gauge holding a stratum's current
// Wilson CI half-width in basis points (1e-4), keyed by region short
// name (e.g. "reg").
func AdaptiveHalfWidthMetric(region string) string {
	return "mpifault_adaptive_halfwidth_bp{region=" + strconv.Quote(region) + "}"
}

// TrapMetric names the counter of VM traps of the given kind (e.g.
// "SIGSEGV").
func TrapMetric(kind string) string {
	return "mpifault_vm_traps_total{signal=" + strconv.Quote(kind) + "}"
}

// HangMetric names the counter of jobs hung for the given detector cause.
func HangMetric(cause string) string {
	return "mpifault_cluster_hangs_total{cause=" + strconv.Quote(cause) + "}"
}

// LatencyBuckets is the fixed bucket layout of the crash/hang-latency
// histograms: decade buckets over the instruction axis, chosen so the
// paper's "most crashes occur within a few thousand instructions"
// (§5.2) claim is directly readable off the first three buckets.
var LatencyBuckets = []uint64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// TraceMessageBuckets is the bucket layout of the divergence
// message-index histogram: decade buckets over the position in the
// implicated rank's digest stream, so "the fault diverged the stream
// within the first handful of messages" is readable off the low
// buckets.
var TraceMessageBuckets = []uint64{1, 10, 100, 1_000, 10_000}
