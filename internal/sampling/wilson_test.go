package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

// Published Wilson score intervals from Newcombe, "Two-sided confidence
// intervals for the single proportion" (Statistics in Medicine 17, 1998),
// Table I — the standard reference values for the method.
func TestWilsonPublishedValues(t *testing.T) {
	cases := []struct {
		x, n   int
		lo, hi float64
	}{
		{81, 263, 0.2553, 0.3662},
		{15, 148, 0.0624, 0.1605},
		{0, 20, 0.0000, 0.1611},
		{1, 29, 0.0061, 0.1718},
	}
	for _, c := range cases {
		lo, hi, err := WilsonInterval(0.95, c.x, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lo-c.lo) > 5e-4 || math.Abs(hi-c.hi) > 5e-4 {
			t.Errorf("Wilson(%d/%d) = [%.4f, %.4f], published [%.4f, %.4f]",
				c.x, c.n, lo, hi, c.lo, c.hi)
		}
	}
}

func TestWilsonHonestAtZero(t *testing.T) {
	// x=0 must NOT collapse to a zero-width interval (the Wald failure
	// mode the planner avoids): the upper bound is z²/(n+z²).
	lo, hi, err := WilsonInterval(0.95, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := ZForConfidence(0.95)
	want := z * z / (50 + z*z)
	if lo != 0 || math.Abs(hi-want) > 1e-12 {
		t.Errorf("Wilson(0/50) = [%v, %v], want [0, %v]", lo, hi, want)
	}
	if hw, err := WilsonHalfWidth(0.95, 0, 50); err != nil || hw <= 0 {
		t.Errorf("half-width at x=0 must stay positive, got %v, %v", hw, err)
	}
}

func TestWilsonHalfWidthMatchesInterval(t *testing.T) {
	// Away from the clamped extremes the half-width is exactly half the
	// interval's width.
	lo, hi, err := WilsonInterval(0.95, 81, 263)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := WilsonHalfWidth(0.95, 81, 263)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((hi-lo)/2-hw) > 1e-12 {
		t.Errorf("half-width %v disagrees with interval [%v, %v]", hw, lo, hi)
	}
}

func TestWilsonCapMeetsPaperTarget(t *testing.T) {
	// The planner's guarantee: at the fixed-n cap the Wilson half-width is
	// below the Wald bound even at the worst-case p=0.5, so every stratum
	// is guaranteed to close by the time it exhausts the paper's budget.
	cap, err := SampleSize(0.95, 0.049)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := WilsonHalfWidth(0.95, cap/2, cap)
	if err != nil {
		t.Fatal(err)
	}
	if hw > 0.049 {
		t.Errorf("half-width %.5f at the cap n=%d exceeds the target 0.049", hw, cap)
	}
}

func TestNeededSamplesKnownValues(t *testing.T) {
	// At the paper contract (95 %, d=4.9 %): worst case near 400, benign
	// strata an order of magnitude cheaper.  Values confirmed against a
	// direct scan of WilsonHalfWidthAt.
	cases := []struct {
		p    float64
		want int
	}{
		{0.5, 397},
		{0.3, 333},
		{0.1, 147},
		{0.05, 87},
		{0.0, 36},
	}
	for _, c := range cases {
		n, err := NeededSamples(0.95, 0.049, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if n != c.want {
			t.Errorf("NeededSamples(p=%v) = %d, want %d", c.p, n, c.want)
		}
		// The binary search must land exactly on the boundary: n meets the
		// target, n-1 does not.
		if hw, _ := WilsonHalfWidthAt(0.95, c.p, float64(n)); hw > 0.049 {
			t.Errorf("p=%v: n=%d does not meet the target (hw %v)", c.p, n, hw)
		}
		if n > 1 {
			if hw, _ := WilsonHalfWidthAt(0.95, c.p, float64(n-1)); hw <= 0.049 {
				t.Errorf("p=%v: n=%d already meets the target, NeededSamples overshot", c.p, n-1)
			}
		}
	}
}

func TestNeededSamplesNeverExceedsWorstCase(t *testing.T) {
	worst, err := SampleSize(0.95, 0.049)
	if err != nil {
		t.Fatal(err)
	}
	f := func(p1000 uint16) bool {
		p := float64(p1000%1001) / 1000
		n, err := NeededSamples(0.95, 0.049, p)
		return err == nil && n >= 1 && n <= worst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilsonErrorPaths(t *testing.T) {
	if _, _, err := WilsonInterval(0.95, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := WilsonInterval(0.95, 5, 4); err == nil {
		t.Error("x>n accepted")
	}
	if _, err := WilsonHalfWidth(0.95, -1, 4); err == nil {
		t.Error("x<0 accepted")
	}
	if _, err := WilsonHalfWidthAt(0.95, 1.5, 10); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := WilsonHalfWidthAt(0.95, 0.5, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NeededSamples(0.95, 0.049, -0.1); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := NeededSamples(1.2, 0.049, 0.5); err == nil {
		t.Error("confidence>1 accepted")
	}
}
