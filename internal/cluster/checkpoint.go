package cluster

import (
	"sync"

	"mpifault/internal/mpi"
	"mpifault/internal/vm"
)

// Cluster checkpointing: a checkpoint is a *consistent global state* of a
// job — every rank's full machine and MPI runtime state plus every
// in-flight packet — captured while all ranks are quiescent.  A later job
// restored from it is indistinguishable, to the guest, from one that ran
// from t=0.
//
// Capture works by cooperative pausing.  The caller supplies cut vectors
// (per-rank retired-instruction targets, one vector per checkpoint,
// nondecreasing).  Each rank runs to its target and parks at a phase
// barrier; the last arriver — with every peer either parked or terminally
// finished, so nothing in the world is executing — captures all ranks and
// the Channel queues, then releases the barrier.  The vectors must be
// *consistent cuts* of the recorded execution (no receive before its
// matching send; see mpi.CausalityRecorder): pausing at such a cut can
// never deadlock, because no parked rank's progress is required for a
// peer to reach its own target.

// CheckpointSpec asks a job to emit checkpoints at the given cuts.
type CheckpointSpec struct {
	// Vectors[k][r] is rank r's retired-instruction pause target for
	// checkpoint k.  Vectors must be nondecreasing per rank across k and
	// each must be a consistent cut of the execution.
	Vectors [][]uint64
	// OnSnapshot receives each captured checkpoint, in order, from inside
	// the capture section (the world is quiescent during the call).
	OnSnapshot func(k int, s *Snapshot)
}

// RankSnapshot is one rank's state inside a checkpoint.  A rank that
// exited before the cut carries its terminal RankResult instead of live
// machine state.
type RankSnapshot struct {
	VM       *vm.Snapshot
	MPI      *mpi.ProcSnapshot
	Finished bool
	Result   RankResult
	Stdout   []byte
	Stderr   []byte
}

// Snapshot is a consistent checkpoint of a whole job.
type Snapshot struct {
	Size  int
	Ranks []RankSnapshot
	// Queues[r] holds the raw packets parked in rank r's Channel queue at
	// the cut, FIFO order.
	Queues [][][]byte
	// CtxCounter is the world's communicator-context allocation counter.
	CtxCounter int64
	// Files and FileNames mirror the job's fileStore (named output files
	// and the fd table order).
	Files     map[string][]byte
	FileNames []string
}

// RankLive reports whether rank r was still executing at the cut.
func (s *Snapshot) RankLive(r int) bool { return !s.Ranks[r].Finished }

// RankInstrs returns rank r's retired-instruction count at the cut (its
// terminal count if it had already exited).
func (s *Snapshot) RankInstrs(r int) uint64 {
	if s.Ranks[r].Finished {
		return s.Ranks[r].Result.Instrs
	}
	return s.Ranks[r].VM.Instrs()
}

// RankRecvBytes returns rank r's Channel-layer received bytes at the cut.
func (s *Snapshot) RankRecvBytes(r int) uint64 {
	if s.Ranks[r].Finished {
		return s.Ranks[r].Result.Stats.TotalBytes()
	}
	return s.Ranks[r].MPI.RecvBytes()
}

// TotalInstrs sums the retired-instruction counts across ranks — the work
// a job restored from this checkpoint does not repeat.
func (s *Snapshot) TotalInstrs() uint64 {
	var n uint64
	for r := 0; r < s.Size; r++ {
		n += s.RankInstrs(r)
	}
	return n
}

// MaxQueued returns the deepest per-rank queue in the snapshot, for
// sizing the restored world's Channel queues.
func (s *Snapshot) MaxQueued() int {
	max := 0
	for _, q := range s.Queues {
		if len(q) > max {
			max = len(q)
		}
	}
	return max
}

// ckptRun coordinates the phase barrier and capture during a
// checkpoint-emitting job.
type ckptRun struct {
	spec     *CheckpointSpec
	world    *mpi.World
	machines []*vm.Machine
	ios      []*rankIO
	files    *fileStore
	heapBase uint32
	budget   uint64

	mu        sync.Mutex
	cond      *sync.Cond
	phase     int // next unfired checkpoint index
	arrived   int
	finishedN int
	finished  []bool
	outcomes  []vm.RunResult
}

func newCkptRun(spec *CheckpointSpec, world *mpi.World, machines []*vm.Machine,
	ios []*rankIO, files *fileStore, heapBase uint32, budget uint64) *ckptRun {
	c := &ckptRun{
		spec: spec, world: world, machines: machines, ios: ios, files: files,
		heapBase: heapBase, budget: budget,
		finished: make([]bool, len(machines)),
		outcomes: make([]vm.RunResult, len(machines)),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// runRank executes rank r through every checkpoint phase and then to
// completion, returning the terminal outcome exactly as m.Run would.
func (c *ckptRun) runRank(r int) vm.RunResult {
	m := c.machines[r]
	for k := 0; k < len(c.spec.Vectors); k++ {
		t := c.spec.Vectors[k][r]
		if c.budget != 0 && t >= c.budget {
			break // the final run below handles budget exhaustion
		}
		out := m.Run(t)
		if out.Reason != vm.StopBudget {
			c.finishRank(r, out)
			return out
		}
		c.arrive(k)
	}
	out := m.Run(c.budget)
	c.finishRank(r, out)
	return out
}

// arrive parks rank r at the phase-k barrier; the last arriver captures.
func (c *ckptRun) arrive(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.arrived++
	if c.arrived+c.finishedN == len(c.machines) {
		c.captureLocked(k)
		c.arrived = 0
		c.phase = k + 1
		c.cond.Broadcast()
		return
	}
	for c.phase <= k {
		c.cond.Wait()
	}
}

// finishRank records rank r's terminal outcome.  If r was the last rank
// the current phase was waiting on, its exit completes the barrier.
func (c *ckptRun) finishRank(r int, out vm.RunResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finished[r] = true
	c.outcomes[r] = out
	c.finishedN++
	if c.arrived > 0 && c.arrived+c.finishedN == len(c.machines) {
		c.captureLocked(c.phase)
		c.arrived = 0
		c.phase++
		c.cond.Broadcast()
	}
}

// captureLocked snapshots the whole quiescent job as checkpoint k.
// Callers hold c.mu; every rank is either parked in arrive, blocked on
// this mutex inside finishRank, or already finished, so no machine or
// queue is concurrently mutated.
func (c *ckptRun) captureLocked(k int) {
	n := len(c.machines)
	s := &Snapshot{
		Size:       n,
		Ranks:      make([]RankSnapshot, n),
		Queues:     make([][][]byte, n),
		CtxCounter: c.world.CtxCounter(),
	}
	for r := 0; r < n; r++ {
		rs := &s.Ranks[r]
		rs.Stdout = append([]byte(nil), c.ios[r].stdout...)
		rs.Stderr = append([]byte(nil), c.ios[r].stderr...)
		if c.finished[r] {
			rs.Finished = true
			rs.Result = c.terminalResult(r)
		} else {
			rs.VM = c.machines[r].Snapshot()
			rs.MPI = c.world.Proc(r).Snapshot()
		}
		s.Queues[r] = c.world.DrainQueue(r)
	}
	c.files.mu.Lock()
	s.Files = make(map[string][]byte, len(c.files.files))
	for name, b := range c.files.files {
		s.Files[name] = append([]byte(nil), b...)
	}
	s.FileNames = append([]string(nil), c.files.names...)
	c.files.mu.Unlock()
	if c.spec.OnSnapshot != nil {
		c.spec.OnSnapshot(k, s)
	}
}

// terminalResult mirrors Run's end-of-job collection for one rank.
func (c *ckptRun) terminalResult(r int) RankResult {
	m := c.machines[r]
	out := c.outcomes[r]
	return RankResult{
		Trap:         out.Trap,
		Reason:       out.Reason,
		Instrs:       m.Instrs,
		MinSP:        m.MinSP,
		HeapPeakUser: m.Heap.PeakUser,
		HeapPeakMPI:  m.Heap.PeakMPI,
		HeapUsed:     m.Heap.Brk() - c.heapBase,
		Stats:        c.ios[r].proc.Stats,
	}
}
