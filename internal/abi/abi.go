// Package abi pins down the guest/host binary interface: system-call
// numbers, MPI handle constants, datatypes and reduction operators.  The
// guest MPI library (written in the assembler DSL) and the host MPI runtime
// both import this package, so the two sides cannot drift apart.
//
// System-call convention: the SYS instruction carries the call number in
// its immediate.  Arguments 1-4 travel in r0-r3; arguments beyond the
// fourth are pushed onto the guest stack (last argument pushed first, so
// the fifth argument sits at [sp], the sixth at [sp+4], ...).  The result
// is returned in r0.
package abi

// System-call numbers.
const (
	SysExit        = 1  // exit(code)          — normal termination
	SysAbort       = 2  // abort(code)         — application-detected failure
	SysWrite       = 3  // write(fd, addr, len)
	SysOpen        = 4  // open(nameAddr, nameLen) -> fd  (named output file)
	SysWriteInt    = 5  // writeint(fd, value)               — decimal text
	SysWriteF64    = 6  // writef64(fd, addr, precision)     — fixed-point text
	SysWriteF64Arr = 7  // writef64arr(fd, addr, count, precision)
	SysWriteBin    = 8  // writebin(fd, addr, len)        — raw bytes (binary output mode)
	SysMalloc      = 9  // malloc(size) -> addr, 0 on exhaustion
	SysFree        = 10 // free(addr)
	SysClock       = 11 // clock() -> low 32 bits of retired-instruction count

	SysMPIInit          = 32
	SysMPIFinalize      = 33
	SysMPICommRank      = 34 // (comm) -> rank
	SysMPICommSize      = 35 // (comm) -> size
	SysMPISend          = 36 // (buf, count, dtype, dest, tag, comm)
	SysMPIRecv          = 37 // (buf, count, dtype, source, tag, comm, statusAddr)
	SysMPIBarrier       = 38 // (comm)
	SysMPIBcast         = 39 // (buf, count, dtype, root, comm)
	SysMPIReduce        = 40 // (sbuf, rbuf, count, dtype, op, root, comm)
	SysMPIAllreduce     = 41 // (sbuf, rbuf, count, dtype, op, comm)
	SysMPIGather        = 42 // (sbuf, count, dtype, rbuf, root, comm)
	SysMPIAllgather     = 43 // (sbuf, count, dtype, rbuf, comm)
	SysMPIScatter       = 44 // (sbuf, count, dtype, rbuf, root, comm)
	SysMPIAlltoall      = 45 // (sbuf, count, dtype, rbuf, comm)
	SysMPIErrhandlerSet = 46 // (comm, handlerAddr)
	SysMPIWtime         = 47 // (resultAddr) — stores f64 seconds of virtual time
	SysMPIIsend         = 48 // (buf, count, dtype, dest, tag, comm, reqAddr)
	SysMPIIrecv         = 49 // (buf, count, dtype, source, tag, comm, reqAddr)
	SysMPIWait          = 50 // (reqAddr, statusAddr)
	SysMPIWaitall       = 51 // (count, reqArrayAddr, statusArrayAddr)
	SysMPISendrecv      = 52 // (sbuf, scount, dtype, dest, stag, rbuf, rcount, source, rtag, comm, statusAddr)
	SysMPICommSplit     = 53 // (comm, color, key, newcommAddr)
	SysMPICommDup       = 54 // (comm, newcommAddr)
)

// Standard file descriptors.
const (
	FdStdout = 1
	FdStderr = 2
	// FdFileBase is the first descriptor handed out by SysOpen.
	FdFileBase = 3
)

// MPI communicator handles.
const (
	CommWorld = 91 // MPI_COMM_WORLD (arbitrary nonzero tag value, as in MPICH)
	CommSelf  = 92
)

// MPI datatypes.
const (
	DTInt32 = 0
	DTF64   = 1
	DTByte  = 2
)

// DTSize returns the size in bytes of a datatype, or 0 if invalid.
func DTSize(dt int32) uint32 {
	switch dt {
	case DTInt32:
		return 4
	case DTF64:
		return 8
	case DTByte:
		return 1
	default:
		return 0
	}
}

// MPI reduction operators.
const (
	OpSum = iota
	OpProd
	OpMin
	OpMax
	NumOps
)

// Wildcards, as in MPI 1.1.
const (
	AnySource = -1
	AnyTag    = -1
)

// MaxUserTag is the largest tag a user send/recv may carry (MPI_TAG_UB).
const MaxUserTag = 32767

// MPI error classes (subset of MPI 1.1).
const (
	ErrSuccess = 0
	ErrBuffer  = 1
	ErrCount   = 2
	ErrType    = 3
	ErrTag     = 4
	ErrComm    = 5
	ErrRank    = 6
	ErrOp      = 7
	ErrArg     = 12
	ErrOther   = 15
)

// ErrName returns the MPICH-style name of an error class.
func ErrName(code int32) string {
	switch code {
	case ErrSuccess:
		return "MPI_SUCCESS"
	case ErrBuffer:
		return "MPI_ERR_BUFFER"
	case ErrCount:
		return "MPI_ERR_COUNT"
	case ErrType:
		return "MPI_ERR_TYPE"
	case ErrTag:
		return "MPI_ERR_TAG"
	case ErrComm:
		return "MPI_ERR_COMM"
	case ErrRank:
		return "MPI_ERR_RANK"
	case ErrOp:
		return "MPI_ERR_OP"
	case ErrArg:
		return "MPI_ERR_ARG"
	default:
		return "MPI_ERR_OTHER"
	}
}

// Exit codes with harness-level meaning.
const (
	ExitOK = 0
	// ExitAppDetected is the code the guest runtime's abort() uses after an
	// application-level consistency check fails (assertion, NaN check,
	// checksum mismatch, bound check).
	ExitAppDetected = 86
)

// Heap chunk tags — the analogue of the paper's malloc-wrapper identifier
// distinguishing user allocations from MPI-library allocations.
const (
	ChunkUser = 0x55534552 // "USER"
	ChunkMPI  = 0x4D504921 // "MPI!"
)
