package analysis

import (
	"fmt"

	"mpifault/internal/isa"
)

// abiState is the abstract machine state of the stack verifier at one
// program point: how many words the function has pushed beyond its entry
// sp, and what fp holds.
type abiState struct {
	depth       int // words pushed below the entry sp (entry = 0)
	frame       int // depth captured by "movr fp, sp"; -1 when fp is the caller's
	fpClobbered bool
}

// ABIStats summarizes one function's frame for the AVF stack model.
type ABIStats struct {
	MaxDepthWords int  // deepest simultaneous extent below the entry sp
	LocalWords    int  // words reserved by the prologue's sp adjustment
	HasFrame      bool // uses the push fp / movr fp,sp prologue
}

// ABICheck verifies every function against the calling convention
// documented in internal/asm/func.go: fp and sp preserved across the
// call, push/pop depth balanced on every CFG path, sp moved only by
// push/pop/call/ret, word-sized adjustments, and frame restores.  Both
// the framed prologue/epilogue style and frameless leaves (libc's
// malloc, the MPI stubs) verify cleanly.  It returns the findings plus
// per-function frame statistics.
func ABICheck(prog *Program) ([]Finding, map[string]ABIStats) {
	var findings []Finding
	stats := make(map[string]ABIStats, len(prog.Funcs))
	for _, f := range prog.Funcs {
		fs, st := checkABI(f)
		findings = append(findings, fs...)
		stats[f.Sym.Name] = st
	}
	return findings, stats
}

func writesRdSlot(op isa.Op) bool {
	for _, o := range op.Writes() {
		if o == isa.OperandRd {
			return true
		}
	}
	return false
}

func checkABI(f *FuncCFG) ([]Finding, ABIStats) {
	var findings []Finding
	var st ABIStats
	bad := func(i int, format string, args ...interface{}) {
		findings = append(findings, Finding{
			Pass: "abi", Func: f.Sym.Name, Addr: f.Addr(i), Msg: fmt.Sprintf(format, args...),
		})
	}
	if len(f.Blocks) == 0 {
		return findings, st
	}
	// Prologue shape, for the stack AVF model (not a check: frameless
	// functions are legal).
	if len(f.Instrs) >= 2 &&
		f.Instrs[0].Op == isa.OpPush && f.Instrs[0].Ra == isa.FP &&
		f.Instrs[1].Op == isa.OpMovr && f.Instrs[1].Rd == isa.FP && f.Instrs[1].Ra == isa.SP {
		st.HasFrame = true
		if len(f.Instrs) >= 3 {
			in := f.Instrs[2]
			if in.Op == isa.OpAddi && in.Rd == isa.SP && in.Ra == isa.SP && in.Imm < 0 {
				st.LocalWords = int(-in.Imm) / 4
			}
		}
	}

	states := make([]abiState, len(f.Blocks))
	visited := make([]bool, len(f.Blocks))
	joined := make([]bool, len(f.Blocks)) // join-mismatch reported already
	states[0] = abiState{frame: -1}
	visited[0] = true
	work := []int{0}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		s := states[bi]
		b := &f.Blocks[bi]
		broken := false
		for i := b.Start; i < b.End && !broken; i++ {
			in := f.Instrs[i]
			if !in.Op.Valid() || !in.OperandsValid() {
				broken = true // the cfg pass owns this finding
				break
			}
			switch {
			case in.Op == isa.OpPush:
				s.depth++
			case in.Op == isa.OpPop:
				if s.depth == 0 {
					bad(i, "pop underflows the frame (nothing pushed on this path)")
					broken = true
					break
				}
				s.depth--
				if in.Rd == isa.SP {
					bad(i, "pop into sp: unstructured stack-pointer write")
					broken = true
					break
				}
				if in.Rd == isa.FP {
					s.fpClobbered = false
					s.frame = -1
				}
			case in.Op == isa.OpAddi && in.Rd == isa.SP:
				if in.Ra != isa.SP {
					bad(i, "sp written from %s: only sp±imm adjustments are allowed", in)
					broken = true
					break
				}
				if in.Imm%4 != 0 {
					bad(i, "sp adjusted by %d: not word-sized", in.Imm)
				}
				s.depth -= int(in.Imm) / 4
				if s.depth < 0 {
					bad(i, "sp adjustment releases %d words beyond the entry frame", -s.depth)
					broken = true
					break
				}
			case in.Op == isa.OpMovr && in.Rd == isa.FP && in.Ra == isa.SP:
				s.frame = s.depth
				s.fpClobbered = true
			case in.Op == isa.OpMovr && in.Rd == isa.SP && in.Ra == isa.FP:
				if s.frame < 0 {
					bad(i, "sp restored from fp, but fp holds no frame on this path")
					broken = true
					break
				}
				s.depth = s.frame
			case in.Op == isa.OpRet:
				if s.depth != 0 {
					bad(i, "returns with %d words left on the frame", s.depth)
				}
				if s.fpClobbered {
					bad(i, "returns without restoring the caller's fp")
				}
			default:
				if writesRdSlot(in.Op) {
					switch in.Rd {
					case isa.SP:
						bad(i, "unstructured write to sp: %s", in)
						broken = true
					case isa.FP:
						bad(i, "unstructured write to fp: %s", in)
					}
				}
			}
			if s.depth > st.MaxDepthWords {
				st.MaxDepthWords = s.depth
			}
		}
		if broken {
			continue
		}
		for _, succ := range b.Succs {
			if !visited[succ] {
				visited[succ] = true
				states[succ] = s
				work = append(work, succ)
			} else if states[succ] != s && !joined[succ] {
				joined[succ] = true
				bad(f.Blocks[succ].Start, "inconsistent frame at join: depth %d words (fp frame %d) vs %d (fp frame %d)",
					states[succ].depth, states[succ].frame, s.depth, s.frame)
			}
		}
	}
	return findings, st
}
