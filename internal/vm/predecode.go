package vm

import (
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// Predecode cache.
//
// A campaign executes the same image thousands of times (hundreds of
// injections x several ranks x eight regions), and the interpreter used to
// re-decode the instruction bytes on every retired instruction.  Instead,
// the text segment is decoded exactly once per image into an immutable
// []isa.Instr table shared by every machine, and Step fetches decoded
// instructions by slot index.
//
// The table is only a cache of the text bytes, never the truth: a machine
// whose text has been written (the injector's RawWrite — there is no other
// way to write text) records the affected slots in a per-machine dirty
// bitmap, and dirty slots take the byte-decode path again so that corrupted
// encodings keep raising SIGILL exactly as they did before predecoding.
// Likewise a PC that is not slot-aligned (possible after a PC bit flip)
// falls back to byte decoding.

// predecoded is everything derived from an image's text bytes: the
// decoded instruction table Step fetches from, and the superblock tier
// compiled over it (see superblock.go).  One instance is built per image
// and shared immutably by every machine; per-machine deviations (text
// corruption) live in the dirty bitmap and the machine-local run-end
// clone, never here.
type predecoded struct {
	instrs []isa.Instr
	prog   []uop
	end    []uint32
}

// predecodeFor returns the image's shared predecode + superblock tables.
func predecodeFor(im *image.Image) *predecoded {
	return im.Predecoded(func() any {
		instrs := isa.DecodeAll(im.Text)
		prog, end := compileSuperblocks(instrs)
		return &predecoded{instrs: instrs, prog: prog, end: end}
	}).(*predecoded)
}

// DisablePredecode forces the machine back onto the per-instruction
// byte-decode fetch path.  The differential tests use it to check that
// predecoded execution is semantically invisible.  Superblocks are
// compiled from the predecoded table, so they go with it.
func (m *Machine) DisablePredecode() {
	m.pre = nil
	m.DisableSuperblocks()
}

// markTextDirty records that text bytes [off, off+n) were overwritten, so
// the predecode slots covering them must be byte-decoded from now on.
func (m *Machine) markTextDirty(off uint32, n int) {
	if n <= 0 {
		return
	}
	if m.textDirty == nil {
		slots := (m.text.length + isa.InstrBytes - 1) / isa.InstrBytes
		m.textDirty = make([]uint64, (slots+63)/64)
	}
	last := (off + uint32(n) - 1) / isa.InstrBytes
	for s := off / isa.InstrBytes; s <= last; s++ {
		m.textDirty[s/64] |= 1 << (s % 64)
		m.sbInvalidate(s) // no compiled run may execute into this slot
	}
}

// textSlotDirty reports whether predecode slot s has been overwritten on
// this machine.
func (m *Machine) textSlotDirty(s uint32) bool {
	d := m.textDirty
	return d != nil && d[s/64]&(1<<(s%64)) != 0
}
