package mpi

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mpifault/internal/abi"
	"mpifault/internal/vm"
)

func TestPacketRoundTrip(t *testing.T) {
	f := func(kind uint8, src uint8, tag int32, comm int32, seq uint32, n uint16) bool {
		kinds := []uint8{KindEager, KindRTS, KindCTS, KindRdvData, KindBarrier}
		p := &Packet{
			Kind: kinds[int(kind)%len(kinds)],
			Src:  int32(src % 8), Dst: 3,
			Tag: tag, Comm: comm, Seq: seq,
			Payload: make([]byte, n%4096),
		}
		for i := range p.Payload {
			p.Payload[i] = byte(i)
		}
		raw := p.Marshal()
		q, drop, err := ParsePacket(raw, 3, 8)
		if err != nil || drop {
			return false
		}
		if q.Kind != p.Kind || q.Src != p.Src || q.Tag != p.Tag ||
			q.Comm != p.Comm || q.Seq != p.Seq || len(q.Payload) != len(p.Payload) {
			return false
		}
		for i := range q.Payload {
			if q.Payload[i] != p.Payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestParseFailureModes(t *testing.T) {
	base := (&Packet{Kind: KindEager, Src: 2, Dst: 1, Tag: 5, Comm: abi.CommWorld,
		Payload: []byte{1, 2, 3, 4}}).Marshal()

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		f(b)
		return b
	}

	t.Run("bad magic is fatal", func(t *testing.T) {
		b := mutate(func(b []byte) { b[0] ^= 0x40 })
		if _, _, err := ParsePacket(b, 1, 8); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("unknown kind is fatal", func(t *testing.T) {
		b := mutate(func(b []byte) { b[4] = 200 })
		if _, _, err := ParsePacket(b, 1, 8); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("source out of range is fatal", func(t *testing.T) {
		b := mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 99) })
		if _, _, err := ParsePacket(b, 1, 8); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("dst field is ignored at the receiver", func(t *testing.T) {
		// ch_p4 over a point-to-point socket has an implicit receiver.
		b := mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 6) })
		p, drop, err := ParsePacket(b, 1, 8)
		if err != nil || drop || p == nil {
			t.Fatalf("dst corruption should be benign: %v %v", drop, err)
		}
	})
	t.Run("inflated length silently drops", func(t *testing.T) {
		b := mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 4096) })
		_, drop, err := ParsePacket(b, 1, 8)
		if err != nil || !drop {
			t.Fatalf("want drop, got drop=%v err=%v", drop, err)
		}
	})
	t.Run("deflated length is fatal desync", func(t *testing.T) {
		b := mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[32:], 1) })
		if _, _, err := ParsePacket(b, 1, 8); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("short frame is fatal", func(t *testing.T) {
		if _, _, err := ParsePacket(base[:20], 1, 8); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("tag corruption parses fine (lost message)", func(t *testing.T) {
		b := mutate(func(b []byte) { b[16] ^= 0x80 })
		p, drop, err := ParsePacket(b, 1, 8)
		if err != nil || drop || p.Tag == 5 {
			t.Fatal("tag flip must parse with the altered tag")
		}
	})
}

func TestControlClassification(t *testing.T) {
	for kind, isCtl := range map[uint8]bool{
		KindEager: false, KindRdvData: false,
		KindRTS: true, KindCTS: true, KindBarrier: true,
	} {
		p := &Packet{Kind: kind}
		if p.IsControl() != isCtl {
			t.Errorf("kind %d IsControl = %v", kind, p.IsControl())
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	var s Stats
	s.account(&Packet{Kind: KindEager, Payload: make([]byte, 100)})
	s.account(&Packet{Kind: KindRTS})
	s.account(&Packet{Kind: KindCTS})
	s.account(&Packet{Kind: KindRdvData, Payload: make([]byte, 900)})
	if s.DataMsgs != 2 || s.ControlMsgs != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.PayloadBytes != 1000 {
		t.Fatalf("payload bytes = %d", s.PayloadBytes)
	}
	if s.HeaderBytes != 4*HeaderBytes {
		t.Fatalf("header bytes = %d", s.HeaderBytes)
	}
	wantHdr := 100 * float64(4*HeaderBytes) / float64(4*HeaderBytes+1000)
	if math.Abs(s.HeaderPercent()-wantHdr) > 1e-9 {
		t.Fatalf("header%% = %v, want %v", s.HeaderPercent(), wantHdr)
	}
	var agg Stats
	agg.Add(s)
	agg.Add(s)
	if agg.TotalBytes() != 2*s.TotalBytes() {
		t.Fatal("Add broken")
	}
}

func TestReduceOps(t *testing.T) {
	mkF64 := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	rdF64 := func(b []byte) []float64 {
		out := make([]float64, len(b)/8)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return out
	}
	m := &vm.Machine{}

	out, trap := combine(mkF64(1, 5, -2), mkF64(3, 2, -7), abi.DTF64, abi.OpSum, m)
	if trap != nil {
		t.Fatal(trap)
	}
	if got := rdF64(out); got[0] != 4 || got[1] != 7 || got[2] != -9 {
		t.Fatalf("sum = %v", got)
	}

	out, _ = combine(mkF64(1, 5), mkF64(3, 2), abi.DTF64, abi.OpMax, m)
	if got := rdF64(out); got[0] != 3 || got[1] != 5 {
		t.Fatalf("max = %v", got)
	}

	out, _ = combine(mkF64(1, 5), mkF64(3, 2), abi.DTF64, abi.OpMin, m)
	if got := rdF64(out); got[0] != 1 || got[1] != 2 {
		t.Fatalf("min = %v", got)
	}

	out, _ = combine(mkF64(2, 4), mkF64(3, 0.5), abi.DTF64, abi.OpProd, m)
	if got := rdF64(out); got[0] != 6 || got[1] != 2 {
		t.Fatalf("prod = %v", got)
	}

	// NaN must propagate through SUM — that is how corrupted contributions
	// reach NAMD's NaN check after the reduce.
	out, _ = combine(mkF64(math.NaN()), mkF64(3), abi.DTF64, abi.OpSum, m)
	if got := rdF64(out); !math.IsNaN(got[0]) {
		t.Fatalf("NaN did not propagate: %v", got)
	}

	// Int32 reduction.
	i32 := func(vals ...int32) []byte {
		b := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
		}
		return b
	}
	out, _ = combine(i32(4, -9), i32(-2, 3), abi.DTInt32, abi.OpSum, m)
	if int32(binary.LittleEndian.Uint32(out)) != 2 ||
		int32(binary.LittleEndian.Uint32(out[4:])) != -6 {
		t.Fatal("int32 sum broken")
	}

	// Length mismatch is a fatal library error.
	if _, trap := combine(mkF64(1), mkF64(1, 2), abi.DTF64, abi.OpSum, m); trap == nil {
		t.Fatal("length mismatch must trap")
	}
}

func TestSysTagsAvoidUserRange(t *testing.T) {
	for op := int32(0); op <= collAllgather; op++ {
		for r := int32(0); r < 16; r++ {
			if tag := sysTag(op, r); tag <= abi.MaxUserTag {
				t.Fatalf("sysTag(%d,%d) = %d collides with user tags", op, r, tag)
			}
		}
	}
}

func TestInternalContextDistinct(t *testing.T) {
	if internalCtx(abi.CommWorld) == abi.CommWorld {
		t.Fatal("internal context must differ from the user communicator")
	}
}

func TestDeadlockedAndStalled(t *testing.T) {
	w := NewWorld(2, Config{})
	if w.Deadlocked() || w.Stalled() {
		t.Fatal("fresh world must not report deadlock")
	}
	w.procs[0].setState(StateBlocked)
	w.procs[1].setState(StateBlocked)
	if !w.Deadlocked() || !w.Stalled() {
		t.Fatal("all-blocked world must report deadlock")
	}
	w.inflight.Add(1)
	if w.Deadlocked() {
		t.Fatal("in-flight packet must veto Deadlocked")
	}
	if !w.Stalled() {
		t.Fatal("Stalled must ignore in-flight packets")
	}
	w.procs[1].setState(StateFinished)
	if !w.Stalled() {
		t.Fatal("finished ranks do not veto a stall")
	}
	w.procs[0].setState(StateFinished)
	if w.Stalled() {
		t.Fatal("no blocked rank left: not a stall")
	}
}

func TestStuck(t *testing.T) {
	w := NewWorld(2, Config{})
	if w.Stuck() {
		t.Fatal("fresh world must not be stuck")
	}
	w.procs[0].setState(StateBlocked)
	w.procs[1].setState(StateBlocked)
	if !w.Stuck() {
		t.Fatal("all blocked, nothing in flight: stuck (== deadlocked)")
	}

	// A packet queued at a live blocked rank is a scheduling gap, not a
	// hang: rank 1 will drain its queue whenever it next runs.
	w.inflight.Add(1)
	w.procs[1].in <- []byte{0}
	if w.Stuck() {
		t.Fatal("packet at a live blocked rank must not count as stuck")
	}

	// The same packet parked at a finished rank can never be pulled.
	w.procs[1].setState(StateFinished)
	if !w.Stuck() {
		t.Fatal("packet at a finished rank is permanently stuck")
	}

	// Any running rank vetoes the verdict entirely.
	w.procs[0].setState(StateRunning)
	if w.Stuck() {
		t.Fatal("a running rank must veto stuck")
	}
}

func TestAPIArgumentChecks(t *testing.T) {
	w := NewWorld(2, Config{})
	p := w.Proc(0)
	m := &vm.Machine{}

	// Before Init, everything fails.
	if tr := p.Barrier(m, abi.CommWorld); tr == nil || tr.Kind != vm.TrapMPIFatal {
		t.Fatalf("pre-init barrier: %v", tr)
	}
	if tr := p.Init(m); tr != nil {
		t.Fatal(tr)
	}
	if tr := p.Init(m); tr == nil {
		t.Fatal("double init must fail")
	}

	// Default error behaviour is fatal (MPI_ERRORS_ARE_FATAL).
	tr := p.Send(m, 0, 1, abi.DTInt32, 99, 0, abi.CommWorld)
	if tr == nil || tr.Kind != vm.TrapMPIFatal {
		t.Fatalf("bad dest: %v", tr)
	}
	if !strings.Contains(tr.Msg, "MPI_ERR_RANK") {
		t.Fatalf("message %q lacks the error class", tr.Msg)
	}

	// With a registered handler the same error becomes MPI-Detected.
	if tr := p.ErrhandlerSet(m, abi.CommWorld, 0x1234); tr != nil {
		t.Fatal(tr)
	}
	tr = p.Send(m, 0, 1, abi.DTInt32, 99, 0, abi.CommWorld)
	if tr == nil || tr.Kind != vm.TrapMPIHandler {
		t.Fatalf("bad dest with handler: %v", tr)
	}

	// Other argument checks.
	if tr := p.Send(m, 0, -1, abi.DTInt32, 1, 0, abi.CommWorld); tr == nil ||
		tr.Code != abi.ErrCount {
		t.Fatalf("negative count: %v", tr)
	}
	if tr := p.Send(m, 0, 1, 99, 1, 0, abi.CommWorld); tr == nil ||
		tr.Code != abi.ErrType {
		t.Fatalf("bad datatype: %v", tr)
	}
	if tr := p.Send(m, 0, 1, abi.DTInt32, 1, -5, abi.CommWorld); tr == nil ||
		tr.Code != abi.ErrTag {
		t.Fatalf("bad tag: %v", tr)
	}
	if tr := p.Send(m, 0, 1, abi.DTInt32, 1, 0, 1234); tr == nil ||
		tr.Code != abi.ErrComm {
		t.Fatalf("bad comm: %v", tr)
	}
	if tr := p.Reduce(m, 0, 0, 1, abi.DTF64, 99, 0, abi.CommWorld); tr == nil ||
		tr.Code != abi.ErrOp {
		t.Fatalf("bad op: %v", tr)
	}
}

func TestCommSelfSemantics(t *testing.T) {
	w := NewWorld(4, Config{})
	p := w.Proc(2)
	m := &vm.Machine{}
	p.Init(m)
	r, tr := p.CommRank(m, abi.CommSelf)
	if tr != nil || r != 0 {
		t.Fatalf("self rank = %d, %v", r, tr)
	}
	s, tr := p.CommSize(m, abi.CommSelf)
	if tr != nil || s != 1 {
		t.Fatalf("self size = %d, %v", s, tr)
	}
	rw, _ := p.CommRank(m, abi.CommWorld)
	if rw != 2 {
		t.Fatalf("world rank = %d", rw)
	}
}

func TestDTSizes(t *testing.T) {
	if abi.DTSize(abi.DTInt32) != 4 || abi.DTSize(abi.DTF64) != 8 || abi.DTSize(abi.DTByte) != 1 {
		t.Fatal("datatype sizes wrong")
	}
	if abi.DTSize(42) != 0 {
		t.Fatal("invalid datatype must size to 0")
	}
}

func TestTCPTransportFrameRoundTrip(t *testing.T) {
	w := NewWorld(3, Config{})
	tp, err := NewTCPTransport(w)
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	defer tp.Close()

	p := &Packet{Kind: KindEager, Src: 0, Dst: 2, Tag: 9,
		Comm: abi.CommWorld, Payload: []byte{1, 2, 3, 4, 5}}
	if err := tp.Send(0, 2, p.Marshal()); err != nil {
		t.Fatal(err)
	}
	// The transport's reader pushes into rank 2's queue.
	select {
	case raw := <-w.procs[2].in:
		q, drop, err := ParsePacket(raw, 2, 3)
		if err != nil || drop {
			t.Fatalf("parse: drop=%v err=%v", drop, err)
		}
		if q.Tag != 9 || len(q.Payload) != 5 || q.Payload[4] != 5 {
			t.Fatalf("packet corrupted in transit: %+v", q)
		}
	case <-timeAfter():
		t.Fatal("frame never arrived")
	}
	if w.Inflight() != 1 {
		t.Fatalf("inflight = %d (decrement happens at pull)", w.Inflight())
	}
}

func timeAfter() <-chan time.Time { return time.After(5 * time.Second) }

func TestTCPTransportSendToSelfRejected(t *testing.T) {
	w := NewWorld(2, Config{})
	tp, err := NewTCPTransport(w)
	if err != nil {
		t.Skipf("loopback sockets unavailable: %v", err)
	}
	defer tp.Close()
	if err := tp.Send(1, 1, []byte{1}); err == nil {
		t.Fatal("no connection exists on the diagonal")
	}
}
